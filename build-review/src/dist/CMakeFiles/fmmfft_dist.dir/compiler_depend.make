# Empty compiler generated dependencies file for fmmfft_dist.
# This may be replaced when dependencies are built.
