file(REMOVE_RECURSE
  "libfmmfft_dist.a"
)
