file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_dist.dir/dfft.cpp.o"
  "CMakeFiles/fmmfft_dist.dir/dfft.cpp.o.d"
  "CMakeFiles/fmmfft_dist.dir/dfmmfft.cpp.o"
  "CMakeFiles/fmmfft_dist.dir/dfmmfft.cpp.o.d"
  "CMakeFiles/fmmfft_dist.dir/schedules.cpp.o"
  "CMakeFiles/fmmfft_dist.dir/schedules.cpp.o.d"
  "libfmmfft_dist.a"
  "libfmmfft_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
