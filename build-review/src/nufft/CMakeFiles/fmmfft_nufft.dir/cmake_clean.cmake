file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_nufft.dir/nufft.cpp.o"
  "CMakeFiles/fmmfft_nufft.dir/nufft.cpp.o.d"
  "CMakeFiles/fmmfft_nufft.dir/nufmm.cpp.o"
  "CMakeFiles/fmmfft_nufft.dir/nufmm.cpp.o.d"
  "libfmmfft_nufft.a"
  "libfmmfft_nufft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_nufft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
