# Empty compiler generated dependencies file for fmmfft_nufft.
# This may be replaced when dependencies are built.
