file(REMOVE_RECURSE
  "libfmmfft_nufft.a"
)
