# CMake generated Testfile for 
# Source directory: /root/repo/src/nufft
# Build directory: /root/repo/build-review/src/nufft
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
