file(REMOVE_RECURSE
  "libfmmfft_core.a"
)
