# Empty dependencies file for fmmfft_core.
# This may be replaced when dependencies are built.
