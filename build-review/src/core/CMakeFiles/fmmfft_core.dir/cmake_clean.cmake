file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_core.dir/fmmfft.cpp.o"
  "CMakeFiles/fmmfft_core.dir/fmmfft.cpp.o.d"
  "CMakeFiles/fmmfft_core.dir/reference.cpp.o"
  "CMakeFiles/fmmfft_core.dir/reference.cpp.o.d"
  "libfmmfft_core.a"
  "libfmmfft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
