file(REMOVE_RECURSE
  "libfmmfft_exec.a"
)
