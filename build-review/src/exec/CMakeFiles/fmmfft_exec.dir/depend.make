# Empty dependencies file for fmmfft_exec.
# This may be replaced when dependencies are built.
