file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_exec.dir/executor.cpp.o"
  "CMakeFiles/fmmfft_exec.dir/executor.cpp.o.d"
  "libfmmfft_exec.a"
  "libfmmfft_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
