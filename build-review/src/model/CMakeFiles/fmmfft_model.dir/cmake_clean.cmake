file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_model.dir/arch.cpp.o"
  "CMakeFiles/fmmfft_model.dir/arch.cpp.o.d"
  "CMakeFiles/fmmfft_model.dir/counts.cpp.o"
  "CMakeFiles/fmmfft_model.dir/counts.cpp.o.d"
  "CMakeFiles/fmmfft_model.dir/tuning.cpp.o"
  "CMakeFiles/fmmfft_model.dir/tuning.cpp.o.d"
  "libfmmfft_model.a"
  "libfmmfft_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
