file(REMOVE_RECURSE
  "libfmmfft_model.a"
)
