# Empty compiler generated dependencies file for fmmfft_model.
# This may be replaced when dependencies are built.
