file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_fft.dir/fft.cpp.o"
  "CMakeFiles/fmmfft_fft.dir/fft.cpp.o.d"
  "CMakeFiles/fmmfft_fft.dir/plan3d.cpp.o"
  "CMakeFiles/fmmfft_fft.dir/plan3d.cpp.o.d"
  "CMakeFiles/fmmfft_fft.dir/real.cpp.o"
  "CMakeFiles/fmmfft_fft.dir/real.cpp.o.d"
  "libfmmfft_fft.a"
  "libfmmfft_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
