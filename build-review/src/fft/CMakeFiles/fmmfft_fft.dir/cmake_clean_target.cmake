file(REMOVE_RECURSE
  "libfmmfft_fft.a"
)
