# Empty dependencies file for fmmfft_fft.
# This may be replaced when dependencies are built.
