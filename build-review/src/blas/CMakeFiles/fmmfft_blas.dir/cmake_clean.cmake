file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_blas.dir/gemm.cpp.o"
  "CMakeFiles/fmmfft_blas.dir/gemm.cpp.o.d"
  "CMakeFiles/fmmfft_blas.dir/level1.cpp.o"
  "CMakeFiles/fmmfft_blas.dir/level1.cpp.o.d"
  "libfmmfft_blas.a"
  "libfmmfft_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
