file(REMOVE_RECURSE
  "libfmmfft_blas.a"
)
