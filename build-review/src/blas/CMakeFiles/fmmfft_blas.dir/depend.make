# Empty dependencies file for fmmfft_blas.
# This may be replaced when dependencies are built.
