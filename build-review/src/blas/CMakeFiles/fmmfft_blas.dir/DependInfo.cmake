
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/gemm.cpp" "src/blas/CMakeFiles/fmmfft_blas.dir/gemm.cpp.o" "gcc" "src/blas/CMakeFiles/fmmfft_blas.dir/gemm.cpp.o.d"
  "/root/repo/src/blas/level1.cpp" "src/blas/CMakeFiles/fmmfft_blas.dir/level1.cpp.o" "gcc" "src/blas/CMakeFiles/fmmfft_blas.dir/level1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/obs/CMakeFiles/fmmfft_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
