file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_fmm.dir/chebyshev.cpp.o"
  "CMakeFiles/fmmfft_fmm.dir/chebyshev.cpp.o.d"
  "CMakeFiles/fmmfft_fmm.dir/engine.cpp.o"
  "CMakeFiles/fmmfft_fmm.dir/engine.cpp.o.d"
  "CMakeFiles/fmmfft_fmm.dir/operators.cpp.o"
  "CMakeFiles/fmmfft_fmm.dir/operators.cpp.o.d"
  "libfmmfft_fmm.a"
  "libfmmfft_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
