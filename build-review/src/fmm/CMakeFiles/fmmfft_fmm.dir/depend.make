# Empty dependencies file for fmmfft_fmm.
# This may be replaced when dependencies are built.
