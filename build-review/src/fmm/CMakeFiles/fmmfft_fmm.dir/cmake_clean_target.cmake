file(REMOVE_RECURSE
  "libfmmfft_fmm.a"
)
