# Empty dependencies file for fmmfft_sim.
# This may be replaced when dependencies are built.
