file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_sim.dir/schedule.cpp.o"
  "CMakeFiles/fmmfft_sim.dir/schedule.cpp.o.d"
  "libfmmfft_sim.a"
  "libfmmfft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
