file(REMOVE_RECURSE
  "libfmmfft_sim.a"
)
