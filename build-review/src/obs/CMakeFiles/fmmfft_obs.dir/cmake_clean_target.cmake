file(REMOVE_RECURSE
  "libfmmfft_obs.a"
)
