file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_obs.dir/obs.cpp.o"
  "CMakeFiles/fmmfft_obs.dir/obs.cpp.o.d"
  "CMakeFiles/fmmfft_obs.dir/trace_writer.cpp.o"
  "CMakeFiles/fmmfft_obs.dir/trace_writer.cpp.o.d"
  "libfmmfft_obs.a"
  "libfmmfft_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
