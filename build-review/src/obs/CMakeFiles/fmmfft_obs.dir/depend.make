# Empty dependencies file for fmmfft_obs.
# This may be replaced when dependencies are built.
