file(REMOVE_RECURSE
  "libfmmfft_obs_compare.a"
)
