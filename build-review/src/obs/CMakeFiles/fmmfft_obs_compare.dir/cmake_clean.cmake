file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_obs_compare.dir/compare.cpp.o"
  "CMakeFiles/fmmfft_obs_compare.dir/compare.cpp.o.d"
  "libfmmfft_obs_compare.a"
  "libfmmfft_obs_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_obs_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
