# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fmmfft_obs_compare.
