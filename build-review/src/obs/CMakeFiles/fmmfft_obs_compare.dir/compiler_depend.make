# Empty compiler generated dependencies file for fmmfft_obs_compare.
# This may be replaced when dependencies are built.
