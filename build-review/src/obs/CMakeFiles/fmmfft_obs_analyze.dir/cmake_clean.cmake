file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_obs_analyze.dir/analyze.cpp.o"
  "CMakeFiles/fmmfft_obs_analyze.dir/analyze.cpp.o.d"
  "libfmmfft_obs_analyze.a"
  "libfmmfft_obs_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_obs_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
