file(REMOVE_RECURSE
  "libfmmfft_obs_analyze.a"
)
