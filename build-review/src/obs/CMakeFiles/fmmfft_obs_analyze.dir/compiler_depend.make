# Empty compiler generated dependencies file for fmmfft_obs_analyze.
# This may be replaced when dependencies are built.
