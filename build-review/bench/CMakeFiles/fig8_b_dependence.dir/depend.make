# Empty dependencies file for fig8_b_dependence.
# This may be replaced when dependencies are built.
