file(REMOVE_RECURSE
  "CMakeFiles/fig8_b_dependence.dir/fig8_b_dependence.cpp.o"
  "CMakeFiles/fig8_b_dependence.dir/fig8_b_dependence.cpp.o.d"
  "fig8_b_dependence"
  "fig8_b_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_b_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
