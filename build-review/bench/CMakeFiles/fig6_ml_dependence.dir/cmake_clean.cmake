file(REMOVE_RECURSE
  "CMakeFiles/fig6_ml_dependence.dir/fig6_ml_dependence.cpp.o"
  "CMakeFiles/fig6_ml_dependence.dir/fig6_ml_dependence.cpp.o.d"
  "fig6_ml_dependence"
  "fig6_ml_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ml_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
