# Empty compiler generated dependencies file for fig6_ml_dependence.
# This may be replaced when dependencies are built.
