file(REMOVE_RECURSE
  "CMakeFiles/fig9_q_dependence.dir/fig9_q_dependence.cpp.o"
  "CMakeFiles/fig9_q_dependence.dir/fig9_q_dependence.cpp.o.d"
  "fig9_q_dependence"
  "fig9_q_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_q_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
