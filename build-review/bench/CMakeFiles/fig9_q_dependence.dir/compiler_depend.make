# Empty compiler generated dependencies file for fig9_q_dependence.
# This may be replaced when dependencies are built.
