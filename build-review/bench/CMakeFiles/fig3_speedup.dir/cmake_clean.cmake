file(REMOVE_RECURSE
  "CMakeFiles/fig3_speedup.dir/fig3_speedup.cpp.o"
  "CMakeFiles/fig3_speedup.dir/fig3_speedup.cpp.o.d"
  "fig3_speedup"
  "fig3_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
