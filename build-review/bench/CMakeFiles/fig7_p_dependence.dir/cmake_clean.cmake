file(REMOVE_RECURSE
  "CMakeFiles/fig7_p_dependence.dir/fig7_p_dependence.cpp.o"
  "CMakeFiles/fig7_p_dependence.dir/fig7_p_dependence.cpp.o.d"
  "fig7_p_dependence"
  "fig7_p_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_p_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
