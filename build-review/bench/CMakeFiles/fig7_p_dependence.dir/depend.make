# Empty dependencies file for fig7_p_dependence.
# This may be replaced when dependencies are built.
