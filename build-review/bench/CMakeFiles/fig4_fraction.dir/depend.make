# Empty dependencies file for fig4_fraction.
# This may be replaced when dependencies are built.
