file(REMOVE_RECURSE
  "CMakeFiles/fig4_fraction.dir/fig4_fraction.cpp.o"
  "CMakeFiles/fig4_fraction.dir/fig4_fraction.cpp.o.d"
  "fig4_fraction"
  "fig4_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
