# Empty dependencies file for sec6_crossover.
# This may be replaced when dependencies are built.
