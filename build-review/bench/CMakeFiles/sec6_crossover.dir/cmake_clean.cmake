file(REMOVE_RECURSE
  "CMakeFiles/sec6_crossover.dir/sec6_crossover.cpp.o"
  "CMakeFiles/sec6_crossover.dir/sec6_crossover.cpp.o.d"
  "sec6_crossover"
  "sec6_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
