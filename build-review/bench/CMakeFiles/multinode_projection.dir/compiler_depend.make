# Empty compiler generated dependencies file for multinode_projection.
# This may be replaced when dependencies are built.
