file(REMOVE_RECURSE
  "CMakeFiles/multinode_projection.dir/multinode_projection.cpp.o"
  "CMakeFiles/multinode_projection.dir/multinode_projection.cpp.o.d"
  "multinode_projection"
  "multinode_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
