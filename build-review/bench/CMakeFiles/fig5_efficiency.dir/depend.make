# Empty dependencies file for fig5_efficiency.
# This may be replaced when dependencies are built.
