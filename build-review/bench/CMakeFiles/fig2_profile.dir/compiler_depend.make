# Empty compiler generated dependencies file for fig2_profile.
# This may be replaced when dependencies are built.
