file(REMOVE_RECURSE
  "CMakeFiles/fig2_profile.dir/fig2_profile.cpp.o"
  "CMakeFiles/fig2_profile.dir/fig2_profile.cpp.o.d"
  "fig2_profile"
  "fig2_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
