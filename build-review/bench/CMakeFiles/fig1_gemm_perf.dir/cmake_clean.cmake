file(REMOVE_RECURSE
  "CMakeFiles/fig1_gemm_perf.dir/fig1_gemm_perf.cpp.o"
  "CMakeFiles/fig1_gemm_perf.dir/fig1_gemm_perf.cpp.o.d"
  "fig1_gemm_perf"
  "fig1_gemm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gemm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
