# Empty compiler generated dependencies file for fig1_gemm_perf.
# This may be replaced when dependencies are built.
