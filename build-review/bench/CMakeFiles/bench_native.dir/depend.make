# Empty dependencies file for bench_native.
# This may be replaced when dependencies are built.
