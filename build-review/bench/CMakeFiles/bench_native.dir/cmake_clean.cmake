file(REMOVE_RECURSE
  "CMakeFiles/bench_native.dir/bench_native.cpp.o"
  "CMakeFiles/bench_native.dir/bench_native.cpp.o.d"
  "bench_native"
  "bench_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
