file(REMOVE_RECURSE
  "CMakeFiles/test_level1.dir/test_level1.cpp.o"
  "CMakeFiles/test_level1.dir/test_level1.cpp.o.d"
  "test_level1"
  "test_level1.pdb"
  "test_level1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_level1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
