# Empty dependencies file for test_level1.
# This may be replaced when dependencies are built.
