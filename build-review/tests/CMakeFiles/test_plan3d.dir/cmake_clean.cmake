file(REMOVE_RECURSE
  "CMakeFiles/test_plan3d.dir/test_plan3d.cpp.o"
  "CMakeFiles/test_plan3d.dir/test_plan3d.cpp.o.d"
  "test_plan3d"
  "test_plan3d.pdb"
  "test_plan3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
