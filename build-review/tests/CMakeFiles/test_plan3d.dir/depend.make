# Empty dependencies file for test_plan3d.
# This may be replaced when dependencies are built.
