# Empty compiler generated dependencies file for test_analyze.
# This may be replaced when dependencies are built.
