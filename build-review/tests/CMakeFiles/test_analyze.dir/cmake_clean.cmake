file(REMOVE_RECURSE
  "CMakeFiles/test_analyze.dir/test_analyze.cpp.o"
  "CMakeFiles/test_analyze.dir/test_analyze.cpp.o.d"
  "test_analyze"
  "test_analyze.pdb"
  "test_analyze[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
