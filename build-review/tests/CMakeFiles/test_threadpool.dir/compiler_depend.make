# Empty compiler generated dependencies file for test_threadpool.
# This may be replaced when dependencies are built.
