file(REMOVE_RECURSE
  "CMakeFiles/test_threadpool.dir/test_threadpool.cpp.o"
  "CMakeFiles/test_threadpool.dir/test_threadpool.cpp.o.d"
  "test_threadpool"
  "test_threadpool.pdb"
  "test_threadpool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
