file(REMOVE_RECURSE
  "CMakeFiles/test_operators.dir/test_operators.cpp.o"
  "CMakeFiles/test_operators.dir/test_operators.cpp.o.d"
  "test_operators"
  "test_operators.pdb"
  "test_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
