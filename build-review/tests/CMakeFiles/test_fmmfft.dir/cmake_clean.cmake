file(REMOVE_RECURSE
  "CMakeFiles/test_fmmfft.dir/test_fmmfft.cpp.o"
  "CMakeFiles/test_fmmfft.dir/test_fmmfft.cpp.o.d"
  "test_fmmfft"
  "test_fmmfft.pdb"
  "test_fmmfft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmmfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
