# Empty compiler generated dependencies file for test_fmmfft.
# This may be replaced when dependencies are built.
