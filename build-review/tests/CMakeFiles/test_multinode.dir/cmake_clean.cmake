file(REMOVE_RECURSE
  "CMakeFiles/test_multinode.dir/test_multinode.cpp.o"
  "CMakeFiles/test_multinode.dir/test_multinode.cpp.o.d"
  "test_multinode"
  "test_multinode.pdb"
  "test_multinode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
