# Empty compiler generated dependencies file for test_fft_real.
# This may be replaced when dependencies are built.
