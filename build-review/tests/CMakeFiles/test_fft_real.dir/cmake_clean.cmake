file(REMOVE_RECURSE
  "CMakeFiles/test_fft_real.dir/test_fft_real.cpp.o"
  "CMakeFiles/test_fft_real.dir/test_fft_real.cpp.o.d"
  "test_fft_real"
  "test_fft_real.pdb"
  "test_fft_real[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
