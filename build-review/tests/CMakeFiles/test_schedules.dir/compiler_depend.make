# Empty compiler generated dependencies file for test_schedules.
# This may be replaced when dependencies are built.
