file(REMOVE_RECURSE
  "CMakeFiles/test_schedules.dir/test_schedules.cpp.o"
  "CMakeFiles/test_schedules.dir/test_schedules.cpp.o.d"
  "test_schedules"
  "test_schedules.pdb"
  "test_schedules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
