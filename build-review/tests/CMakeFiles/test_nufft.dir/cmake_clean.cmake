file(REMOVE_RECURSE
  "CMakeFiles/test_nufft.dir/test_nufft.cpp.o"
  "CMakeFiles/test_nufft.dir/test_nufft.cpp.o.d"
  "test_nufft"
  "test_nufft.pdb"
  "test_nufft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nufft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
