# Empty dependencies file for test_nufft.
# This may be replaced when dependencies are built.
