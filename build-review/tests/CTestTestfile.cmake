# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_blas[1]_include.cmake")
include("/root/repo/build-review/tests/test_fft[1]_include.cmake")
include("/root/repo/build-review/tests/test_chebyshev[1]_include.cmake")
include("/root/repo/build-review/tests/test_operators[1]_include.cmake")
include("/root/repo/build-review/tests/test_engine[1]_include.cmake")
include("/root/repo/build-review/tests/test_fmmfft[1]_include.cmake")
include("/root/repo/build-review/tests/test_model[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_dist[1]_include.cmake")
include("/root/repo/build-review/tests/test_exec[1]_include.cmake")
include("/root/repo/build-review/tests/test_schedules[1]_include.cmake")
include("/root/repo/build-review/tests/test_fft_real[1]_include.cmake")
include("/root/repo/build-review/tests/test_level1[1]_include.cmake")
include("/root/repo/build-review/tests/test_accuracy[1]_include.cmake")
include("/root/repo/build-review/tests/test_multinode[1]_include.cmake")
include("/root/repo/build-review/tests/test_threadpool[1]_include.cmake")
include("/root/repo/build-review/tests/test_plan3d[1]_include.cmake")
include("/root/repo/build-review/tests/test_tuning[1]_include.cmake")
include("/root/repo/build-review/tests/test_nufft[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs[1]_include.cmake")
include("/root/repo/build-review/tests/test_analyze[1]_include.cmake")
