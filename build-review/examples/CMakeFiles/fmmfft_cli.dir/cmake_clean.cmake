file(REMOVE_RECURSE
  "CMakeFiles/fmmfft_cli.dir/fmmfft_cli.cpp.o"
  "CMakeFiles/fmmfft_cli.dir/fmmfft_cli.cpp.o.d"
  "fmmfft_cli"
  "fmmfft_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmmfft_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
