# Empty compiler generated dependencies file for fmmfft_cli.
# This may be replaced when dependencies are built.
