# Empty compiler generated dependencies file for nonuniform_sampling.
# This may be replaced when dependencies are built.
