file(REMOVE_RECURSE
  "CMakeFiles/nonuniform_sampling.dir/nonuniform_sampling.cpp.o"
  "CMakeFiles/nonuniform_sampling.dir/nonuniform_sampling.cpp.o.d"
  "nonuniform_sampling"
  "nonuniform_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonuniform_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
