#!/usr/bin/env python3
"""Diff a fresh bench_runner output against the committed baseline.

    tools/bench_compare.py BENCH_fmmfft.json fresh.json [--tolerance 0.15]

Fails (exit 1) when any config's fmmfft/baseline makespan regressed by more
than the tolerance, when a baseline config disappeared, or on a schema
mismatch. Improvements and new configs are reported but pass. The simulated
timings are deterministic, so the tolerance only absorbs intentional small
model recalibrations; refresh the baseline for anything larger:

    build/bench/bench_runner BENCH_fmmfft.json
"""

import argparse
import json
import sys

SCHEMA = "fmmfft.bench.v1"
# Per-config scalar metrics gated on relative increase (higher = worse).
GATED = ["fmmfft_seconds", "baseline_seconds"]
# Sanity floor: the analyzer's critical path must stay a complete account.
MIN_COVERAGE = 0.95


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != SCHEMA:
        sys.exit(f"{path}: schema {data.get('schema')!r} != expected {SCHEMA!r}")
    return {c["name"]: c for c in data["configs"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed relative increase (default 0.15)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    rows = []
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        for metric in GATED:
            old, new = b[metric], f[metric]
            rel = (new - old) / old if old > 0 else 0.0
            rows.append((name, metric, old, new, rel))
            if rel > args.tolerance:
                failures.append(
                    f"{name}: {metric} regressed {rel:+.1%} "
                    f"({old * 1e3:.3f} ms -> {new * 1e3:.3f} ms)")
        cov = f.get("critical", {}).get("coverage", 0.0)
        if cov < MIN_COVERAGE:
            failures.append(f"{name}: critical-path coverage {cov:.3f} < {MIN_COVERAGE}")

    for name in fresh.keys() - base.keys():
        print(f"note: new config {name} (not in baseline; commit a refresh to gate it)")

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'config':<{width}}  {'metric':<17} {'baseline':>12} {'fresh':>12} {'delta':>8}")
    for name, metric, old, new, rel in rows:
        print(f"{name:<{width}}  {metric:<17} {old * 1e3:>10.3f}ms {new * 1e3:>10.3f}ms "
              f"{rel:>+7.1%}")

    if failures:
        print(f"\nREGRESSION ({len(failures)} failure(s), tolerance {args.tolerance:.0%}):")
        for msg in failures:
            print(f"  {msg}")
        sys.exit(1)
    print(f"\nbench compare OK ({len(base)} configs within {args.tolerance:.0%})")


if __name__ == "__main__":
    main()
