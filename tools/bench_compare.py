#!/usr/bin/env python3
"""Diff a fresh benchmark output against the committed baseline.

    tools/bench_compare.py BENCH_fmmfft.json fresh.json [--tolerance 0.15]
    tools/bench_compare.py BENCH_native.json fresh_native.json

Two tracks, selected by the baseline's schema field:

* fmmfft.bench.v1 (simulated): fails (exit 1) when any config's
  fmmfft/baseline makespan regressed by more than the tolerance, when a
  baseline config disappeared, or on a schema mismatch. The simulated
  timings are deterministic, so the tolerance only absorbs intentional
  small model recalibrations; refresh the baseline for anything larger:

      build/bench/bench_runner BENCH_fmmfft.json

* fmmfft.bench.native.v1 (wall clock): throughput deltas are REPORT-ONLY —
  native numbers depend on the host, so a slow machine must not fail CI.
  Hard failures are reserved for correctness: schema mismatch, a baseline
  bench missing from the fresh run, or a non-positive/non-finite metric.
  EXCEPTION: rows with metric "bytes" are the traffic ledger's measured
  algorithmic bytes moved — deterministic, machine-independent — and are
  hard-gated: a fresh run moving >10% more bytes than the baseline fails.
  Refresh with:

      build/bench/bench_native BENCH_native.json

Both tracks gate bytes moved: the simulated track's per-config "traffic"
object (total bytes + comm bytes from the scheduled ops' exact counts) and
the native track's "bytes" rows fail on a >10% increase, so a PR cannot
silently regress memory traffic even when the makespan stays flat.
"""

import argparse
import json
import math
import sys

SCHEMA = "fmmfft.bench.v1"
SCHEMA_NATIVE = "fmmfft.bench.native.v1"
# Per-config scalar metrics gated on relative increase (higher = worse).
GATED = ["fmmfft_seconds", "baseline_seconds"]
# Per-config traffic sub-object metrics gated on relative byte increase.
GATED_TRAFFIC = ["bytes", "comm_bytes"]
# Bytes are algorithmic (deterministic), so the gate is tight and fixed —
# independent of the wall-clock --tolerance.
TRAFFIC_TOLERANCE = 0.10
# Sanity floor: the analyzer's critical path must stay a complete account.
MIN_COVERAGE = 0.95


def load_raw(path, schema):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != schema:
        sys.exit(f"{path}: schema {data.get('schema')!r} != expected {schema!r}")
    return data


def load(path):
    return {c["name"]: c for c in load_raw(path, SCHEMA)["configs"]}


def compare_native(baseline_path, fresh_path):
    base = {b["name"]: b for b in load_raw(baseline_path, SCHEMA_NATIVE)["benches"]}
    fresh = {b["name"]: b for b in load_raw(fresh_path, SCHEMA_NATIVE)["benches"]}

    failures = []
    width = max((len(n) for n in base), default=10)
    print(f"{'bench':<{width}}  {'metric':<14} {'baseline':>10} {'fresh':>10} {'delta':>8}")
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        if f["metric"] != b["metric"]:
            failures.append(f"{name}: metric {f['metric']!r} != baseline {b['metric']!r}")
            continue
        if not (math.isfinite(f["value"]) and f["value"] > 0):
            failures.append(f"{name}: non-positive or non-finite value {f['value']!r}")
            continue
        # seconds: lower is better; every throughput metric: higher is better.
        better_low = b["metric"] in ("seconds", "bytes")
        rel = (f["value"] - b["value"]) / b["value"] if b["value"] > 0 else 0.0
        shown = rel if not better_low else -rel
        print(f"{name:<{width}}  {b['metric']:<14} {b['value']:>10.3f} {f['value']:>10.3f} "
              f"{shown:>+7.1%}")
        # Ledger bytes are deterministic, so unlike wall rows they hard-gate.
        if b["metric"] == "bytes" and rel > TRAFFIC_TOLERANCE:
            failures.append(
                f"{name}: bytes moved regressed {rel:+.1%} "
                f"({b['value']:.0f} -> {f['value']:.0f}, gate {TRAFFIC_TOLERANCE:.0%})")
    for name in fresh.keys() - base.keys():
        print(f"note: new bench {name} (not in baseline; commit a refresh to track it)")

    print_bytes_trend(base, fresh)
    print_precision_split(base, fresh)
    print_overlap_ratios(base, fresh)

    if failures:
        print(f"\nNATIVE BENCH FAILED ({len(failures)} failure(s)):")
        for msg in failures:
            print(f"  {msg}")
        sys.exit(1)
    print(f"\nnative bench OK ({len(base)} benches present; wall deltas report-only)")


def print_bytes_trend(base, fresh):
    """Bytes-moved trend per traffic key (metric "bytes" rows).

    These rows are the memory-traffic ledger's deterministic counts, so the
    trend is a property of the code, not the host. The +10% hard gate is
    relative to the *committed* baseline: when a key decreases, committing
    the fresh run ratchets the gate down to the improved level, making the
    reduction permanent.
    """
    keys = sorted(n for n, b in base.items() if b["metric"] == "bytes")
    if not keys:
        return
    print("\nbytes-moved trend (deterministic ledger rows, vs committed baseline):")
    improved = []
    for name in keys:
        b, f = base[name], fresh.get(name)
        if f is None or f["metric"] != "bytes":
            continue
        rel = (f["value"] - b["value"]) / b["value"] if b["value"] > 0 else 0.0
        if rel < -0.005:
            marker = "improved"
            improved.append(name)
        elif rel > TRAFFIC_TOLERANCE:
            marker = "REGRESSED"
        else:
            marker = "flat"
        print(f"  {name:<28} {b['value']:>14.0f} -> {f['value']:>14.0f}  {rel:+7.1%}  {marker}")
    if improved:
        print(f"  hint: bytes decreased on {', '.join(improved)}; commit the fresh run "
              f"as BENCH_native.json to ratchet the {TRAFFIC_TOLERANCE:.0%} gate down.")


def print_precision_split(base, fresh):
    """Per-precision comm-byte split for the mixed-precision runs.

    Every `<stem>_comm_f32` / `<stem>_comm_f64` pair of "bytes" rows (the
    fp32 FMM halo/allgather payload vs the shell-width all-to-all under
    FMMFFT_PRECISION=mixed) yields one row with the fp32 share of the comm
    volume. Report-only and graceful: stems missing a key on either side —
    e.g. a baseline predating the mixed rows — are simply skipped; the
    hard gates above already police the individual rows.
    """
    def stems(src):
        return {n[: -len("_comm_f32")] for n in src
                if n.endswith("_comm_f32") and n[: -len("_comm_f32")] + "_comm_f64" in src}

    common = sorted(stems(base) | stems(fresh))
    if not common:
        return
    print("\nper-precision comm split (mixed runs, report-only):")
    for stem in common:
        row = [stem]
        for src, tag in ((base, "baseline"), (fresh, "fresh")):
            lo = src.get(stem + "_comm_f32")
            hi = src.get(stem + "_comm_f64")
            if lo is None or hi is None:
                row.append(f"{tag} n/a")
                continue
            total = lo["value"] + hi["value"]
            share = lo["value"] / total if total > 0 else 0.0
            row.append(f"{tag} f32 {lo['value']:.0f}B / f64 {hi['value']:.0f}B "
                       f"({share:.0%} narrow)")
        print("  " + "  ".join(row))


def print_overlap_ratios(base, fresh):
    """Report-only async/serial speedups for the distributed e2e pairs.

    Every `<name>_serial` bench with a matching `<name>_async` yields one
    row: serial/async wall time (>1 means the executor overlapped compute
    with copies). Ratios depend on hardware threads, so they never gate.
    """
    pairs = sorted(n[: -len("_serial")] for n in base
                   if n.endswith("_serial") and n[: -len("_serial")] + "_async" in base)
    if not pairs:
        return
    print("\nasync executor overlap (serial wall / async wall, report-only):")
    for stem in pairs:
        row = [stem]
        for src, tag in ((base, "baseline"), (fresh, "fresh")):
            s = src.get(stem + "_serial")
            a = src.get(stem + "_async")
            if s and a and a["value"] > 0:
                row.append(f"{tag} {s['value'] / a['value']:.2f}x")
        print("  " + "  ".join(row))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed relative increase (default 0.15)")
    args = ap.parse_args()

    # Dispatch on the baseline's schema so one entry point serves both the
    # simulated gate and the native report-only track.
    with open(args.baseline) as f:
        schema = json.load(f).get("schema")
    if schema == SCHEMA_NATIVE:
        compare_native(args.baseline, args.fresh)
        return

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    rows = []
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        for metric in GATED:
            old, new = b[metric], f[metric]
            rel = (new - old) / old if old > 0 else 0.0
            rows.append((name, metric, old, new, rel))
            if rel > args.tolerance:
                failures.append(
                    f"{name}: {metric} regressed {rel:+.1%} "
                    f"({old * 1e3:.3f} ms -> {new * 1e3:.3f} ms)")
        cov = f.get("critical", {}).get("coverage", 0.0)
        if cov < MIN_COVERAGE:
            failures.append(f"{name}: critical-path coverage {cov:.3f} < {MIN_COVERAGE}")
        # Bytes-moved gate: the traffic object is exact op accounting, so any
        # increase beyond the fixed tolerance is a real algorithmic change.
        bt, ft = b.get("traffic"), f.get("traffic")
        if bt is not None:
            if ft is None:
                failures.append(f"{name}: traffic object missing from fresh run")
            else:
                for metric in GATED_TRAFFIC:
                    old, new = bt[metric], ft[metric]
                    rel = (new - old) / old if old > 0 else 0.0
                    rows.append((name, "traffic." + metric, old / 1e9, new / 1e9, rel))
                    if rel > TRAFFIC_TOLERANCE:
                        failures.append(
                            f"{name}: traffic.{metric} regressed {rel:+.1%} "
                            f"({old:.0f} -> {new:.0f} bytes, "
                            f"gate {TRAFFIC_TOLERANCE:.0%})")

    for name in fresh.keys() - base.keys():
        print(f"note: new config {name} (not in baseline; commit a refresh to gate it)")

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'config':<{width}}  {'metric':<17} {'baseline':>12} {'fresh':>12} {'delta':>8}")
    for name, metric, old, new, rel in rows:
        if metric.startswith("traffic."):
            print(f"{name:<{width}}  {metric:<17} {old:>10.3f}GB {new:>10.3f}GB "
                  f"{rel:>+7.1%}")
        else:
            print(f"{name:<{width}}  {metric:<17} {old * 1e3:>10.3f}ms {new * 1e3:>10.3f}ms "
                  f"{rel:>+7.1%}")

    if failures:
        print(f"\nREGRESSION ({len(failures)} failure(s), tolerance {args.tolerance:.0%}):")
        for msg in failures:
            print(f"  {msg}")
        sys.exit(1)
    print(f"\nbench compare OK ({len(base)} configs within {args.tolerance:.0%})")


if __name__ == "__main__":
    main()
