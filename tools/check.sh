#!/usr/bin/env bash
# Tier-1 gate: configure + build (warnings surfaced), ctest under an outer
# timeout with the runtime health watchdog armed (a hung test trips the
# in-process watchdog and leaves a *.postmortem.json next to the other
# artifacts), a smoke test
# that the observability exporters produce loadable JSON, a traffic-ledger
# smoke test (measured bytes must match the §5 model exactly, including the
# A2A payload), a benchmark regression check against the committed
# BENCH_fmmfft.json baseline (including the bytes-moved gate), and a
# native-throughput check against BENCH_native.json (wall times
# report-only; schema/coverage/bytes failures are hard).
#
#   tools/check.sh [build-dir]     (default: build)
#
# Set CHECK_ARTIFACTS_DIR to keep the traffic report and roofline
# calibration JSON (CI uploads them as workflow artifacts).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${1:-build}

echo "== configure =="
cmake -B "$BUILD" -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra" >/dev/null

echo "== build =="
BUILD_LOG=$(mktemp)
trap 'rm -f "$BUILD_LOG"' EXIT
cmake --build "$BUILD" -j 2>&1 | tee "$BUILD_LOG" | grep -E "error|warning" || true
if grep -qE "(error|Error)" "$BUILD_LOG"; then
  echo "BUILD FAILED"
  exit 1
fi
WARNINGS=$(grep -c "warning" "$BUILD_LOG" || true)
echo "build OK (${WARNINGS} warnings)"

echo "== ctest (watchdog-armed) =="
# The suite runs with the runtime health layer armed: a test that stops
# making progress trips the in-process watchdog after FMMFFT_WATCHDOG_MS
# and writes a postmortem dump (stuck task, stage/device, blocking chain)
# into the artifacts dir, while the outer `timeout` guarantees CI itself
# never wedges. CTEST_TIMEOUT caps the whole suite, not one test.
CTEST_TIMEOUT=${CTEST_TIMEOUT:-1800}
POSTMORTEM_DIR=${CHECK_ARTIFACTS_DIR:-$BUILD}
mkdir -p "$POSTMORTEM_DIR"
FMMFFT_WATCHDOG_MS=${FMMFFT_WATCHDOG_MS:-60000} \
  FMMFFT_POSTMORTEM="$POSTMORTEM_DIR/ctest.postmortem.json" \
  timeout "$CTEST_TIMEOUT" \
  ctest --test-dir "$BUILD" -j "$(nproc)" --output-on-failure | tail -3

echo "== trace smoke test =="
TRACE=$(mktemp --suffix=.json)
METRICS=$(mktemp --suffix=.json)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS"' EXIT
# Explicit plan with L > B so every FMM stage (including the per-level
# M2M/M2L/L2L) appears in the trace.
FMMFFT_TRACE="$TRACE" FMMFFT_METRICS="$METRICS" FMMFFT_PRECISION=fp64 \
  "$BUILD/examples/fmmfft_cli" --log2n 14 --devices 2 --p 64 --ml 8 --b 2 --q 18 >/dev/null

for f in "$TRACE" "$METRICS"; do
  [ -s "$f" ] || { echo "SMOKE FAILED: $f is empty"; exit 1; }
done
if command -v python3 >/dev/null; then
  python3 - "$TRACE" "$METRICS" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
metrics = json.load(open(sys.argv[2]))
names = {e["name"] for e in trace}
need = {"S2M", "M2M", "S2T", "M2L", "M2L-B", "REDUCE", "L2L", "L2T",
        "2DFFT-P", "2DFFT-M", "POST", "xfer:A2A-2D", "xfer:COMM-S"}
missing = need - names
assert not missing, f"trace missing spans: {missing}"
assert metrics["counters"]["fmm.flops"] > 0
print(f"trace OK: {len(trace)} events, {len(metrics['counters'])} counters")
EOF
else
  echo "python3 not found; skipped JSON validation (files are non-empty)"
fi

echo "== traffic ledger smoke test =="
TRAFFIC=$(mktemp --suffix=.json)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS" "$TRAFFIC"' EXIT
TRAFFIC_LOG=$(mktemp)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS" "$TRAFFIC" "$TRAFFIC_LOG"' EXIT
# Pinned fp64: this is the shell-width reference the mixed smoke below
# halves against, and it must stay fp64 even on CI's mixed-precision leg.
FMMFFT_PRECISION=fp64 \
  "$BUILD/examples/fmmfft_cli" --log2n 14 --devices 2 --p 64 --ml 8 --b 2 --q 18 \
  --traffic "$TRAFFIC" | tee "$TRAFFIC_LOG" | grep -E "traffic check" || true
grep -q "traffic check: OK" "$TRAFFIC_LOG" || {
  echo "TRAFFIC SMOKE FAILED: measured bytes deviate from the §5 model"
  cat "$TRAFFIC_LOG"
  exit 1
}
if command -v python3 >/dev/null; then
  python3 - "$TRAFFIC" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
assert t["schema"] == "fmmfft.traffic.v1", t.get("schema")
scopes = t["scopes"]
need = {"fft", "post", "fmm.S2M", "fmm.M2M", "fmm.S2T", "fmm.M2L", "fmm.M2L-B",
        "fmm.REDUCE", "fmm.L2L", "fmm.L2T", "a2a.pack", "a2a.unpack",
        "comm.A2A-2D", "comm.COMM-S", "comm.COMM-MB"}
missing = need - scopes.keys()
assert not missing, f"traffic JSON missing scopes: {missing}"
# The headline exact check: A2A fabric payload == (G-1)/G * N * 16 bytes.
n, g = 1 << 14, 2
a2a = scopes["comm.A2A-2D"]["comm_bytes"]
model = (g - 1) / g * n * 2 * 8
assert a2a == model, f"A2A payload {a2a} != model {model}"
# Fused all-to-all ratchet: pack is the gather's read side, unpack the
# scatter's write side — exactly one read + one write per element. The
# staged path's extra copies (4x) would double these; fail if they return.
n16 = n * 2 * 8
pk, up = scopes["a2a.pack"], scopes["a2a.unpack"]
assert pk["bytes_read"] == n16 and pk["bytes_written"] == 0, pk
assert up["bytes_written"] == n16 and up["bytes_read"] == 0, up
assert t["total"]["bytes_read"] > 0 and t["total"]["flops"] > 0
print(f"traffic OK: {len(scopes)} scopes, A2A payload matches model exactly, "
      f"fused pack/unpack at 2x payload")
EOF
else
  echo "python3 not found; skipped traffic JSON validation (file is non-empty)"
  [ -s "$TRAFFIC" ] || { echo "TRAFFIC SMOKE FAILED: $TRAFFIC is empty"; exit 1; }
fi
if [ -n "${CHECK_ARTIFACTS_DIR:-}" ]; then
  mkdir -p "$CHECK_ARTIFACTS_DIR"
  cp "$TRAFFIC" "$CHECK_ARTIFACTS_DIR/traffic.json"
  cp "$TRAFFIC_LOG" "$CHECK_ARTIFACTS_DIR/traffic_report.txt"
fi

echo "== mixed-precision traffic smoke test =="
# Same shape under FMMFFT_PRECISION=mixed: the traffic-vs-model check must
# stay exact at the fp32 translation width, the FMM comm scopes must carry
# the ".f32" per-precision keys at exactly half the fp64 payload, and the
# shell-width all-to-all must be untouched.
TRAFFIC_MX=$(mktemp --suffix=.json)
TRAFFIC_MX_LOG=$(mktemp)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS" "$TRAFFIC" "$TRAFFIC_LOG" "$TRAFFIC_MX" "$TRAFFIC_MX_LOG"' EXIT
FMMFFT_PRECISION=mixed \
  "$BUILD/examples/fmmfft_cli" --log2n 14 --devices 2 --p 64 --ml 8 --b 2 --q 18 \
  --traffic "$TRAFFIC_MX" | tee "$TRAFFIC_MX_LOG" | grep -E "traffic check" || true
grep -q "traffic check: OK" "$TRAFFIC_MX_LOG" || {
  echo "MIXED TRAFFIC SMOKE FAILED: measured bytes deviate from the §5 model"
  cat "$TRAFFIC_MX_LOG"
  exit 1
}
if command -v python3 >/dev/null; then
  python3 - "$TRAFFIC" "$TRAFFIC_MX" <<'EOF'
import json, sys
fp64 = json.load(open(sys.argv[1]))["scopes"]
mx = json.load(open(sys.argv[2]))["scopes"]
need = {"comm.COMM-S.f32", "comm.COMM-MB.f32", "fmm.S2M.f32", "fmm.M2L.f32"}
missing = need - mx.keys()
assert not missing, f"mixed traffic JSON missing per-precision scopes: {missing}"
comm64 = sum(t["comm_bytes"] for n, t in fp64.items()
             if n.startswith("comm.COMM-"))
comm32 = sum(t["comm_bytes"] for n, t in mx.items()
             if n.startswith("comm.COMM-"))
assert comm32 * 2 == comm64, f"mixed FMM comm {comm32} != half of fp64 {comm64}"
assert mx["comm.A2A-2D"]["comm_bytes"] == fp64["comm.A2A-2D"]["comm_bytes"]
print(f"mixed traffic OK: FMM comm halved exactly ({comm64:.0f} -> {comm32:.0f} "
      f"bytes), A2A at shell width")
EOF
else
  echo "python3 not found; skipped mixed traffic validation (file is non-empty)"
  [ -s "$TRAFFIC_MX" ] || { echo "MIXED TRAFFIC SMOKE FAILED: $TRAFFIC_MX is empty"; exit 1; }
fi

echo "== 3D decomposition traffic smoke test =="
# Pencil vs slab on the same 32x32x16 transform, 4 devices: both must pass
# the exact ledger-vs-model check, and the wire payloads must match the
# closed forms — slab ships (G-1)/G of the array once; the pencil's two
# sub-communicator hops ship (pc-1)/pc then (pr-1)/pr of it. The per-device
# scaling ((pc-1)·N/(G·pc) per row hop vs (G-1)·N/G² for the slab) is what
# makes the pencil's messages fewer and larger.
TRAFFIC_3DP=$(mktemp --suffix=.json)
TRAFFIC_3DS=$(mktemp --suffix=.json)
TRAFFIC_3D_LOG=$(mktemp)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS" "$TRAFFIC" "$TRAFFIC_LOG" "$TRAFFIC_MX" "$TRAFFIC_MX_LOG" "$TRAFFIC_3DP" "$TRAFFIC_3DS" "$TRAFFIC_3D_LOG"' EXIT
FMMFFT_PRECISION=fp64 \
  "$BUILD/examples/fmmfft_cli" --fft3d 32x32x16 --devices 4 --decomp pencil --grid 2x2 \
  --traffic "$TRAFFIC_3DP" | tee "$TRAFFIC_3D_LOG" | grep -E "traffic check|decomp" || true
grep -q "traffic check: OK" "$TRAFFIC_3D_LOG" || {
  echo "3D PENCIL TRAFFIC SMOKE FAILED"; cat "$TRAFFIC_3D_LOG"; exit 1
}
FMMFFT_PRECISION=fp64 \
  "$BUILD/examples/fmmfft_cli" --fft3d 32x32x16 --devices 4 --decomp slab \
  --traffic "$TRAFFIC_3DS" | tee "$TRAFFIC_3D_LOG" | grep -E "traffic check|decomp" || true
grep -q "traffic check: OK" "$TRAFFIC_3D_LOG" || {
  echo "3D SLAB TRAFFIC SMOKE FAILED"; cat "$TRAFFIC_3D_LOG"; exit 1
}
if command -v python3 >/dev/null; then
  python3 - "$TRAFFIC_3DP" "$TRAFFIC_3DS" <<'EOF'
import json, sys
pencil = json.load(open(sys.argv[1]))["scopes"]
slab = json.load(open(sys.argv[2]))["scopes"]
n, g, pr, pc, eb = 32 * 32 * 16, 4, 2, 2, 16
row = pencil["comm.A2A-ROW"]["comm_bytes"]
col = pencil["comm.A2A-COL"]["comm_bytes"]
one = slab["comm.A2A-3D"]["comm_bytes"]
assert row == (pc - 1) / pc * n * eb, (row, "row")
assert col == (pr - 1) / pr * n * eb, (col, "col")
assert one == (g - 1) / g * n * eb, (one, "slab")
assert "comm.A2A-ROW" not in slab and "comm.A2A-3D" not in pencil
# Per-device, per-phase scaling: each row hop ships (pc-1)·N/(G·pc) elements
# in pc-1 messages of N/(G·pc) — larger than the slab's G-1 messages of
# N/G² whenever pc < G.
assert abs(row / g - (pc - 1) * n / (g * pc) * eb) < 1e-9
assert abs(one / g - (g - 1) * n / (g * g) * eb) < 1e-9
msg_pencil, msg_slab = n / (g * pc) * eb, n / (g * g) * eb
assert msg_pencil > msg_slab
print(f"3D traffic OK: slab {one:.0f}B one hop; pencil {row:.0f}+{col:.0f}B over "
      f"two hops, per-message {msg_pencil:.0f}B vs slab {msg_slab:.0f}B")
EOF
else
  echo "python3 not found; skipped 3D traffic validation (files are non-empty)"
  [ -s "$TRAFFIC_3DP" ] && [ -s "$TRAFFIC_3DS" ] || { echo "3D TRAFFIC SMOKE FAILED: empty"; exit 1; }
fi

echo "== bench regression gate =="
FRESH=$(mktemp --suffix=.json)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS" "$FRESH"' EXIT
"$BUILD/bench/bench_runner" "$FRESH" >/dev/null
if command -v python3 >/dev/null; then
  python3 tools/bench_compare.py BENCH_fmmfft.json "$FRESH" --tolerance 0.15
else
  echo "python3 not found; skipped bench comparison (runner output is non-empty)"
  [ -s "$FRESH" ] || { echo "BENCH FAILED: $FRESH is empty"; exit 1; }
fi

echo "== native bench (wall times report-only) =="
NATIVE=$(mktemp --suffix=.json)
trap 'rm -f "$BUILD_LOG" "$TRACE" "$METRICS" "$FRESH" "$NATIVE"' EXIT
"$BUILD/bench/bench_native" "$NATIVE" >/dev/null
if [ -n "${CHECK_ARTIFACTS_DIR:-}" ]; then
  mkdir -p "$CHECK_ARTIFACTS_DIR"
  # The fresh native JSON carries the machine's STREAM/FMA calibration.
  cp "$NATIVE" "$CHECK_ARTIFACTS_DIR/bench_native_calibration.json"
fi
if command -v python3 >/dev/null; then
  python3 tools/bench_compare.py BENCH_native.json "$NATIVE"
else
  echo "python3 not found; skipped native comparison (runner output is non-empty)"
  [ -s "$NATIVE" ] || { echo "NATIVE BENCH FAILED: $NATIVE is empty"; exit 1; }
fi

echo "== all checks passed =="
