// Architecture parameter sets for the roofline/performance model (§5.4, §6).
//
// gamma/beta for the GPUs are the paper's "practical" values measured from
// cuBLAS GEMM; link bandwidths are the paper's *achieved* P2P numbers
// (13.2 GB/s PCIe on 2×K40c, 36 GB/s NVLink on the P100 systems). The
// per-kernel-class efficiencies encode the paper's §6.2 findings: cuBLAS
// BatchedGEMM is the most efficient stage, the custom CUDA M2L/S2T kernels
// reach ≈60% of roofline.
#pragma once

#include <string>

#include "common/types.hpp"
#include "fmm/engine.hpp"

namespace fmmfft::model {

struct ArchParams {
  std::string name;
  int num_devices = 1;

  double gamma_f = 1e12;       ///< peak practical f32 flop/s (per device)
  double gamma_d = 5e11;       ///< peak practical f64 flop/s
  double beta_mem = 1e11;      ///< practical device memory bandwidth, B/s
  double link_bw = 1e10;       ///< achieved P2P bandwidth per pair, B/s
  double link_latency = 10e-6; ///< per-message latency, s
  double launch_overhead = 8e-6;  ///< per kernel launch, s
  double sync_overhead = 25e-6;   ///< host-side synchronization / plan
                                  ///< switch between library phases, s
  bool links_shared = false;   ///< PCIe-style shared bus (transfers serialize)

  // -- Multi-node extension (§7: "Extending the results to multiple nodes").
  // Devices [0, devices_per_node) share a node; traffic between nodes pays
  // the NIC parameters and serializes on each node's NIC engines.
  int devices_per_node = 1 << 30;  ///< default: everything on one node
  double internode_bw = 10e9;      ///< per-direction NIC bandwidth, B/s
  double internode_latency = 2e-6; ///< per-message NIC latency, s

  bool multinode() const { return devices_per_node < num_devices; }
  int node_of(int device) const { return device / devices_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  double eff_batched_gemm = 0.92;
  double eff_custom = 0.60;
  double eff_gemv = 0.50;
  double eff_fft = 0.85;

  double gamma(bool is_double) const { return is_double ? gamma_d : gamma_f; }

  double efficiency(fmm::KernelClass k) const {
    switch (k) {
      case fmm::KernelClass::BatchedGemm: return eff_batched_gemm;
      case fmm::KernelClass::Custom: return eff_custom;
      case fmm::KernelClass::Gemv: return eff_gemv;
      case fmm::KernelClass::Copy: return 1.0;
    }
    return 1.0;
  }
};

/// Eq. (3): minimum wall time of a computation with W flops and D bytes of
/// memory traffic at 100% efficiency.
inline double roofline_seconds(double w_flops, double d_bytes, const ArchParams& arch,
                               bool is_double) {
  const double g = arch.gamma(is_double);
  if (w_flops <= 0) return d_bytes / arch.beta_mem;
  const double intensity_rate = arch.beta_mem * w_flops / (d_bytes > 0 ? d_bytes : 1.0);
  return w_flops / std::min(g, intensity_rate);
}

/// One point-to-point message of `bytes` payload over an intra-node link.
inline double link_seconds(double bytes, const ArchParams& arch) {
  return arch.link_latency + bytes / arch.link_bw;
}

/// One message crossing the node boundary (NIC path).
inline double internode_link_seconds(double bytes, const ArchParams& arch) {
  return arch.internode_latency + bytes / arch.internode_bw;
}

/// Derive a multi-node system from a single-node arch: `nodes` copies of
/// `node` joined by NICs of the given bandwidth (per direction).
ArchParams multinode(const ArchParams& node, int nodes, double internode_bw = 10e9,
                     double internode_latency = 2e-6);

/// All-to-all exchange time: every device sends `bytes_per_pair` to each of
/// the other G-1 devices. Dedicated links run pairs concurrently; a shared
/// bus serializes them.
inline double all_to_all_seconds(double bytes_per_pair, const ArchParams& arch) {
  const int g = arch.num_devices;
  if (g <= 1) return 0.0;
  const double per = link_seconds(bytes_per_pair, arch);
  return arch.links_shared ? per * (g - 1) * g : per * (g - 1);
}

/// Paper presets. `g` overrides the device count (2 or 8 in the paper).
ArchParams k40c_pcie(int g = 2);
ArchParams p100_nvlink(int g = 2);
/// This host, with gamma/beta calibrated at runtime from the BLAS substrate
/// (used by the native-measurement benches).
ArchParams native_host(int g, double gemm_flops_per_s_f32, double gemm_flops_per_s_f64,
                       double stream_bytes_per_s);

}  // namespace fmmfft::model
