// Energy model (§1: compressed and dense algorithms "harmoniously improve
// the energy-efficiency of the computations as well").
//
// A simple activity-based model on top of the timeline simulation: device
// compute busy-time at compute power, transfer busy-time at link power,
// and makespan × device-count at idle/static power. Communication-bound
// algorithms burn static power while links drain — which is exactly why
// the FMM-FFT's single transpose also wins on energy.
#pragma once

#include "model/arch.hpp"

namespace fmmfft::model {

struct PowerParams {
  double compute_w = 250.0;  ///< per device while a kernel runs (P100 TDP-ish)
  double link_w = 25.0;      ///< per active transfer direction
  double idle_w = 50.0;      ///< per device static draw over the makespan
};

/// Energy in joules of a simulated run described by its busy aggregates.
inline double energy_joules(double makespan_s, double kernel_busy_s, double comm_busy_s,
                            int devices, const PowerParams& p = {}) {
  return kernel_busy_s * p.compute_w + comm_busy_s * p.link_w +
         makespan_s * devices * p.idle_w;
}

}  // namespace fmmfft::model
