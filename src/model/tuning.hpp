// Persistent tuning cache: the paper reports "the fastest FMM-FFT found by
// searching the parameter space" for every (N, system, precision); a
// production library memoizes that search. Plain-text format, one record
// per line, so caches are diffable and mergeable.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "fmm/params.hpp"
#include "model/arch.hpp"
#include "model/counts.hpp"

namespace fmmfft::model {

class TuningCache {
 public:
  struct Key {
    index_t n;
    index_t g;
    Scalar scalar;
    std::string arch;
    auto operator<=>(const Key&) const = default;
  };

  std::optional<fmm::Params> lookup(const Key& key) const;
  void store(const Key& key, const fmm::Params& prm);
  std::size_t size() const { return entries_.size(); }

  /// Serialize as "n g scalar arch : P ML B Q" lines.
  void save(std::ostream& os) const;
  /// Merge records from a stream (later records win). Ignores blank lines
  /// and lines starting with '#'; throws on malformed records.
  void load(std::istream& is);

 private:
  std::map<Key, fmm::Params> entries_;
};

/// search_best_params with memoization: on hit returns the cached plan, on
/// miss runs the model search and records the winner.
fmm::Params search_best_params_cached(TuningCache& cache, index_t n, index_t g,
                                      const Workload& w, const ArchParams& arch, int q,
                                      int b_max = 8);

}  // namespace fmmfft::model
