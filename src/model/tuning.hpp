// Persistent tuning cache: the paper reports "the fastest FMM-FFT found by
// searching the parameter space" for every (N, system, precision); a
// production library memoizes that search. Plain-text format, one record
// per line, so caches are diffable and mergeable.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "fmm/params.hpp"
#include "model/arch.hpp"
#include "model/counts.hpp"

namespace fmmfft::model {

class TuningCache {
 public:
  struct Key {
    index_t n;
    index_t g;
    Scalar scalar;
    std::string arch;
    auto operator<=>(const Key&) const = default;
  };

  std::optional<fmm::Params> lookup(const Key& key) const;
  void store(const Key& key, const fmm::Params& prm);
  std::size_t size() const { return entries_.size(); }

  /// Serialize as "n g scalar arch : P ML B Q" lines.
  void save(std::ostream& os) const;
  /// Merge records from a stream (later records win). Ignores blank lines
  /// and lines starting with '#'; throws on malformed records.
  void load(std::istream& is);

 private:
  std::map<Key, fmm::Params> entries_;
};

/// search_best_params with memoization: on hit returns the cached plan, on
/// miss runs the model search and records the winner.
fmm::Params search_best_params_cached(TuningCache& cache, index_t n, index_t g,
                                      const Workload& w, const ArchParams& arch, int q,
                                      int b_max = 8);

// ---------------------------------------------------------------------------
// Slab-vs-pencil decomposition autotuning (ROADMAP item 2). The distributed
// drivers consult `choose_decomp*` when the caller (or FMMFFT_DECOMP) says
// `auto`: the §5 link model prices the one-phase slab exchange against the
// two-phase row/column sub-communicator exchange and the cheaper one wins.

/// How a distributed multidimensional transform splits its data across G
/// devices.
enum class Decomp {
  Auto,    ///< let the cost model decide (FMMFFT_DECOMP=auto)
  Slab,    ///< 1D device partition, one G-wide all-to-all
  Pencil,  ///< pr×pc device grid, row + column sub-communicator all-to-alls
};

const char* to_string(Decomp d);
/// Parse "auto" | "slab" | "pencil" (the FMMFFT_DECOMP values). Throws on
/// anything else.
Decomp parse_decomp(const std::string& text);

/// A pr×pc processor grid (G = pr·pc). {0, 0} means "unspecified".
struct GridShape {
  int pr = 0;
  int pc = 0;
  int devices() const { return pr * pc; }
  bool specified() const { return pr > 0 && pc > 0; }
  auto operator<=>(const GridShape&) const = default;
};

/// Parse "PRxPC" (e.g. "2x4") as used by FMMFFT_GRID / --grid. Throws on
/// malformed input or non-positive factors.
GridShape parse_grid(const std::string& text);

/// The most square factorization pr·pc = g with pr ≤ pc (pencil phases want
/// both sub-communicators near √G).
GridShape default_grid(int g);
/// Like default_grid, but constrained to grids feasible for an n0×n1×n2
/// transform (falls back over squarer→flatter factorizations; returns
/// {0, 0} when no factorization divides the extents).
GridShape default_grid3d(int g, index_t n0, index_t n1, index_t n2);

/// Divisibility preconditions of the two data layouts.
bool slab_feasible_3d(index_t n0, index_t n1, index_t n2, int g);
bool pencil_feasible_3d(index_t n0, index_t n1, index_t n2, const GridShape& grid);

/// Outcome of an autotuned (or forced) decomposition decision.
struct DecompDecision {
  Decomp chosen = Decomp::Slab;  ///< never Auto on output
  GridShape grid;                ///< the pencil grid (valid iff chosen == Pencil
                                 ///< or pencil was feasible)
  double slab_seconds = 0;  ///< modeled decomposition-dependent wall times (3D:
  double pencil_seconds = 0;  ///< full transform; 2D: the exchange phase)
  bool slab_feasible = false;
  bool pencil_feasible = false;
  bool model_decided = false;  ///< true when `requested` was Auto
};

/// Decide slab vs pencil for an n0×n1×n2 transform on g devices. `requested`
/// other than Auto forces that decomposition (throws if infeasible);
/// Auto prices both (ties go to slab — fewer bytes moved) using `w`/`arch`.
/// An unspecified `requested_grid` defaults to default_grid3d.
DecompDecision choose_decomp(Decomp requested, GridShape requested_grid, index_t n0,
                             index_t n1, index_t n2, int g, const Workload& w,
                             const ArchParams& arch);

/// Same decision for the 2D M×P transform, where "pencil" means the
/// factorized two-phase exchange of the same Π_{M,P} permutation (any pr·pc
/// = g grid is feasible whenever the slab layout is). Both variants are
/// priced, but Auto always keeps the slab here: factorizing one transpose
/// doubles the fabric bytes with no feasibility or locality gain, so the
/// two-phase form is explicit-request only (the returned slab/pencil
/// seconds still expose the modeled latency trade).
DecompDecision choose_decomp_2d(Decomp requested, GridShape requested_grid, index_t m,
                                index_t p, int g, const Workload& w, const ArchParams& arch);

}  // namespace fmmfft::model
