// Closed-form operation/communication counts of the FMM-FFT (§5.1–§5.3)
// and model execution times (§5.4) for both the FMM-FFT and the baseline
// three-transpose distributed 1D FFT.
//
// Two flavours of counts exist:
//  * `exact_*` — exact sums over the engine's actual launches (every box,
//    every level, including the p = 0 identity slice of S2T). These must
//    agree launch-for-launch with fmm::Engine::stats(), which the tests
//    enforce.
//  * `paper_*` — the paper's closed forms with v(L,B,G), used to validate
//    that the closed forms track the exact counts (the paper's Eq. analysis).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fmm/params.hpp"
#include "model/arch.hpp"

namespace fmmfft::model {

/// Sum_{l=B}^{L-1} ceil(2^l / G) = 2^L/G - v(B,G) (§5, assumes L > log G).
double v_top(int b, index_t g);
double level_sum(int l, int b, index_t g);  ///< v(L,B,G) in the paper

/// Per-stage counts for one device (divide-by-G conventions as in §5).
struct StageCount {
  std::string name;
  fmm::KernelClass kernel = fmm::KernelClass::Custom;
  double flops = 0;
  double mem_scalars = 0;  ///< real scalars read+written (multiply by
                           ///< sizeof(T) for bytes)
  index_t launches = 0;
};

/// Exact per-stage counts matching fmm::Engine::stats() launch for launch.
/// `c` is the component count C (1 real, 2 complex).
std::vector<StageCount> exact_fmm_counts(const fmm::Params& prm, int c, index_t g);

/// Paper closed-form totals (§5.1 flops, §5.3 mops dominant terms).
double paper_fmm_flops(const fmm::Params& prm, int c, index_t g);
double paper_fmm_mops(const fmm::Params& prm, int c, index_t g,
                      bool include_operator_reads = false);

/// §5.2 per-process communication counts, in scalars sent per device.
struct CommCount {
  double s_halo = 0;      ///< 2·C·(P-1)·M_L
  double m_halo = 0;      ///< 4·C·(L-B)·(P-1)·Q
  double m_base = 0;      ///< 2^B·C·(P-1)·Q
  double total() const { return s_halo + m_halo + m_base; }
};
CommCount paper_fmm_comm(const fmm::Params& prm, int c, index_t g);

/// Exact per-device scalars sent over the fabric by the distributed
/// driver's collectives (dist::DistFmmFft), matching sim::Fabric's ledger
/// byte for byte. Differs from the §5.2 closed forms in two documented
/// ways: the source halo ships all C·P rows (including the p = 0 identity
/// slice the paper excludes), and the base allgather sends only to the
/// G - 1 remote peers (the local slab moves without traffic).
CommCount exact_fmm_comm(const fmm::Params& prm, int c, index_t g);

// ---------------------------------------------------------------------------
// Model wall times (Eq. 3 plus launch and link costs).

/// Workload description shared by the time models.
struct Workload {
  index_t n;
  bool is_complex;
  bool is_double;
  int c() const { return is_complex ? 2 : 1; }
  /// Bytes of one transform element as stored (complex doubles = 16).
  double element_bytes() const { return (is_double ? 8.0 : 4.0) * (is_complex ? 2.0 : 1.0); }
  double real_bytes() const { return is_double ? 8.0 : 4.0; }
};

/// Model time of one local (per-device) complex FFT batch totalling
/// `total_points` points of transforms of length `len`.
double fft_kernel_seconds(double total_points, double len, const Workload& w,
                          const ArchParams& arch, bool apply_efficiency);

/// Model FMM stage time: sum of per-launch Eq.-3 times (+ launch overhead
/// when apply_efficiency). Pure-roofline mode uses 100% efficiency and no
/// launch cost — the red "Model" bars of Fig. 3.
double fmm_stage_seconds(const fmm::Params& prm, const Workload& w, const ArchParams& arch,
                         bool apply_efficiency);

/// Model time of the distributed M×P 2D FFT (one all-to-all, overlapped).
double fft2d_seconds(const fmm::Params& prm, const Workload& w, const ArchParams& arch,
                     bool apply_efficiency);

/// Model time of the full FMM-FFT (FMM + post + 2D FFT; FMM comm hidden).
double fmmfft_seconds(const fmm::Params& prm, const Workload& w, const ArchParams& arch,
                      bool apply_efficiency);

/// Model time of the baseline three-transpose distributed 1D FFT
/// (the cuFFTXT stand-in): perfect comm/compute overlap, so
/// max(3 all-to-alls, compute) plus per-stage launch costs.
double baseline1d_seconds(const Workload& w, const ArchParams& arch, bool apply_efficiency);

// ---------------------------------------------------------------------------
// Slab-vs-pencil decomposition cost model (ROADMAP item 2). The slab
// exchange is the §5 one-phase transpose: G-1 messages of N/G² elements per
// device. The pencil exchange (AccFFT / Dalcin two-phase scheme) confines
// each phase to a √G-member row/column sub-communicator: fewer, larger
// messages per phase at the price of moving ≈2× the total bytes.

/// Fabric payload bytes ONE device sends in the one-phase slab exchange:
/// (G-1) messages of n/G² elements.
double slab_a2a_bytes_per_device(double n_elems, double element_bytes, int g);
/// ... and in the two-phase pencil exchange over a pr×pc grid: the row
/// phase sends pc-1 messages of n/(G·pc) elements, the column phase pr-1
/// messages of n/(G·pr) (G = pr·pc).
double pencil_a2a_bytes_per_device(double n_elems, double element_bytes, int pr, int pc);

/// Exchange wall time under the §5.4 link model (latency + bytes/bw per
/// message; a shared bus serializes all senders, dedicated links only the
/// per-device message queue).
double slab_a2a_seconds(double n_elems, double element_bytes, const ArchParams& arch);
double pencil_a2a_seconds(double n_elems, double element_bytes, int pr, int pc,
                          const ArchParams& arch);

/// Model time of the distributed n0×n1×n2 3D FFT. Slab: three batched FFT
/// phases plus a local reorientation pass, overlapped with the one global
/// all-to-all. Pencil (pr×pc grid): the same FFT phases overlapped with
/// the row + column sub-communicator exchanges.
double fft3d_slab_seconds(index_t n0, index_t n1, index_t n2, const Workload& w,
                          const ArchParams& arch, bool apply_efficiency);
double fft3d_pencil_seconds(index_t n0, index_t n1, index_t n2, int pr, int pc,
                            const Workload& w, const ArchParams& arch, bool apply_efficiency);

/// §6: communication-to-flop crossover ratio beta / min(gamma, beta·W/D)
/// evaluated for the FMM-FFT workload at size n — the paper computes
/// ≈0.031 byte/flop on P100 (double).
double crossover_ratio(const fmm::Params& prm, const Workload& w, const ArchParams& arch);

/// Best admissible parameters by model FMM-FFT time.
fmm::Params search_best_params(index_t n, index_t g, const Workload& w, const ArchParams& arch,
                               int q, int b_max = 8);

}  // namespace fmmfft::model
