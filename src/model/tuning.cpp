#include "model/tuning.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace fmmfft::model {
namespace {

const char* scalar_token(Scalar s) {
  switch (s) {
    case Scalar::F32: return "f32";
    case Scalar::F64: return "f64";
    case Scalar::C32: return "c32";
    case Scalar::C64: return "c64";
  }
  return "?";
}

Scalar parse_scalar(const std::string& t) {
  if (t == "f32") return Scalar::F32;
  if (t == "f64") return Scalar::F64;
  if (t == "c32") return Scalar::C32;
  if (t == "c64") return Scalar::C64;
  throw Error("unknown scalar token in tuning cache: " + t);
}

}  // namespace

std::optional<fmm::Params> TuningCache::lookup(const Key& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::store(const Key& key, const fmm::Params& prm) {
  FMMFFT_CHECK_MSG(prm.n == key.n, "tuning record size mismatch");
  entries_[key] = prm;
}

void TuningCache::save(std::ostream& os) const {
  os << "# fmmfft tuning cache: n g scalar arch : P ML B Q\n";
  for (const auto& [key, prm] : entries_)
    os << key.n << " " << key.g << " " << scalar_token(key.scalar) << " " << key.arch << " : "
       << prm.p << " " << prm.ml << " " << prm.b << " " << prm.q << "\n";
}

void TuningCache::load(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Key key;
    std::string scalar_tok, colon;
    fmm::Params prm;
    ls >> key.n >> key.g >> scalar_tok >> key.arch >> colon >> prm.p >> prm.ml >> prm.b >>
        prm.q;
    FMMFFT_CHECK_MSG(!ls.fail() && colon == ":", "malformed tuning record: " << line);
    key.scalar = parse_scalar(scalar_tok);
    prm.n = key.n;
    prm.validate_distributed(key.g);
    entries_[key] = prm;
  }
}

const char* to_string(Decomp d) {
  switch (d) {
    case Decomp::Auto: return "auto";
    case Decomp::Slab: return "slab";
    case Decomp::Pencil: return "pencil";
  }
  return "?";
}

Decomp parse_decomp(const std::string& text) {
  if (text == "auto") return Decomp::Auto;
  if (text == "slab") return Decomp::Slab;
  if (text == "pencil") return Decomp::Pencil;
  throw Error("unknown decomposition '" + text + "' (want auto|slab|pencil)");
}

GridShape parse_grid(const std::string& text) {
  const auto x = text.find_first_of("xX");
  GridShape grid;
  if (x != std::string::npos) {
    std::istringstream rs(text.substr(0, x)), cs(text.substr(x + 1));
    rs >> grid.pr;
    cs >> grid.pc;
    if (rs.fail() || cs.fail() || !rs.eof() || !cs.eof()) grid = {};
  }
  FMMFFT_CHECK_MSG(grid.pr > 0 && grid.pc > 0,
                   "malformed processor grid '" << text << "' (want PRxPC, e.g. 2x4)");
  return grid;
}

GridShape default_grid(int g) {
  if (g < 1) return {};
  for (int pr = int(std::sqrt(double(g))); pr >= 1; --pr)
    if (g % pr == 0) return {pr, g / pr};
  return {1, g};
}

bool slab_feasible_3d(index_t n0, index_t n1, index_t n2, int g) {
  return g >= 1 && n2 % g == 0 && (n0 * n1) % g == 0;
}

bool pencil_feasible_3d(index_t n0, index_t n1, index_t n2, const GridShape& grid) {
  if (!grid.specified()) return false;
  // x-pencils need pc|n1 and pr|n2, y-pencils pc|n0, z-pencils pr|n1.
  return n1 % grid.pc == 0 && n2 % grid.pr == 0 && n0 % grid.pc == 0 && n1 % grid.pr == 0;
}

GridShape default_grid3d(int g, index_t n0, index_t n1, index_t n2) {
  if (g < 1) return {};
  // Squarest feasible factorization first (both sub-communicators near √G),
  // preferring pr ≤ pc at equal aspect, then progressively flatter grids.
  std::vector<GridShape> candidates;
  for (int pr = 1; pr <= g; ++pr)
    if (g % pr == 0) candidates.push_back({pr, g / pr});
  std::stable_sort(candidates.begin(), candidates.end(), [](GridShape a, GridShape b) {
    const int da = std::abs(a.pr - a.pc), db = std::abs(b.pr - b.pc);
    if (da != db) return da < db;
    return a.pr < b.pr;
  });
  for (const GridShape& grid : candidates)
    if (pencil_feasible_3d(n0, n1, n2, grid)) return grid;
  return {};
}

namespace {

DecompDecision decide(Decomp requested, DecompDecision d) {
  switch (requested) {
    case Decomp::Slab:
      FMMFFT_CHECK_MSG(d.slab_feasible, "FMMFFT_DECOMP=slab requested but the slab layout "
                                        "does not divide this transform across the devices");
      d.chosen = Decomp::Slab;
      return d;
    case Decomp::Pencil:
      FMMFFT_CHECK_MSG(d.pencil_feasible,
                       "FMMFFT_DECOMP=pencil requested but no processor grid divides this "
                       "transform (pass --grid/FMMFFT_GRID with divisible factors)");
      d.chosen = Decomp::Pencil;
      return d;
    case Decomp::Auto:
      FMMFFT_CHECK_MSG(d.slab_feasible || d.pencil_feasible,
                       "neither slab nor pencil decomposition divides this transform");
      d.model_decided = true;
      // Ties go to slab: the one-phase exchange moves half the bytes.
      d.chosen = !d.slab_feasible ? Decomp::Pencil
                 : !d.pencil_feasible
                     ? Decomp::Slab
                     : (d.pencil_seconds < d.slab_seconds ? Decomp::Pencil : Decomp::Slab);
      return d;
  }
  throw Error("unreachable decomposition request");
}

GridShape resolve_grid(GridShape requested_grid, int g, GridShape fallback) {
  if (!requested_grid.specified()) return fallback;
  FMMFFT_CHECK_MSG(requested_grid.devices() == g,
                   "processor grid " << requested_grid.pr << "x" << requested_grid.pc
                                     << " does not match the device count " << g);
  return requested_grid;
}

}  // namespace

DecompDecision choose_decomp(Decomp requested, GridShape requested_grid, index_t n0,
                             index_t n1, index_t n2, int g, const Workload& w,
                             const ArchParams& arch) {
  ArchParams a = arch;
  a.num_devices = g;
  DecompDecision d;
  d.slab_feasible = slab_feasible_3d(n0, n1, n2, g);
  d.grid = resolve_grid(requested_grid, g, default_grid3d(g, n0, n1, n2));
  d.pencil_feasible = pencil_feasible_3d(n0, n1, n2, d.grid);
  if (d.slab_feasible) d.slab_seconds = fft3d_slab_seconds(n0, n1, n2, w, a, true);
  if (d.pencil_feasible)
    d.pencil_seconds = fft3d_pencil_seconds(n0, n1, n2, d.grid.pr, d.grid.pc, w, a, true);
  return decide(requested, d);
}

DecompDecision choose_decomp_2d(Decomp requested, GridShape requested_grid, index_t m,
                                index_t p, int g, const Workload& w,
                                const ArchParams& arch) {
  ArchParams a = arch;
  a.num_devices = g;
  DecompDecision d;
  d.slab_feasible = g >= 1 && m % g == 0 && p % g == 0;
  d.grid = resolve_grid(requested_grid, g, default_grid(g));
  // The 2D "pencil" is the factorized two-phase form of the same Π_{M,P}
  // exchange: any pr·pc = g grid works whenever the slab layout does.
  d.pencil_feasible = d.slab_feasible && d.grid.specified();
  const double n = double(m) * double(p);
  const double cbytes = 2.0 * w.real_bytes();
  if (d.slab_feasible) d.slab_seconds = slab_a2a_seconds(n, cbytes, a);
  if (d.pencil_feasible)
    d.pencil_seconds = pencil_a2a_seconds(n, cbytes, d.grid.pr, d.grid.pc, a);
  if (requested == Decomp::Auto) {
    // Unlike 3D — where the pencil layout changes feasibility and absorbs
    // the slab's local reorientation — factorizing a single Π_{M,P} can
    // only add bytes: every element crosses the fabric twice instead of
    // once. The §5 ledger-exactness story (and the paper's low-
    // communication argument) is bytes-first, so Auto keeps the one-phase
    // slab; the two-phase form runs on explicit request (FMMFFT_DECOMP=
    // pencil), where its fewer-larger-messages latency profile is wanted.
    FMMFFT_CHECK_MSG(d.slab_feasible, "2D decomposition: M=" << m << " P=" << p
                                          << " not divisible by G=" << g);
    d.chosen = Decomp::Slab;
    d.model_decided = true;
    return d;
  }
  return decide(requested, d);
}

fmm::Params search_best_params_cached(TuningCache& cache, index_t n, index_t g,
                                      const Workload& w, const ArchParams& arch, int q,
                                      int b_max) {
  const Scalar sc = w.is_complex ? (w.is_double ? Scalar::C64 : Scalar::C32)
                                 : (w.is_double ? Scalar::F64 : Scalar::F32);
  const TuningCache::Key key{n, g, sc, arch.name};
  if (auto hit = cache.lookup(key)) return *hit;
  const fmm::Params best = search_best_params(n, g, w, arch, q, b_max);
  cache.store(key, best);
  return best;
}

}  // namespace fmmfft::model
