#include "model/tuning.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace fmmfft::model {
namespace {

const char* scalar_token(Scalar s) {
  switch (s) {
    case Scalar::F32: return "f32";
    case Scalar::F64: return "f64";
    case Scalar::C32: return "c32";
    case Scalar::C64: return "c64";
  }
  return "?";
}

Scalar parse_scalar(const std::string& t) {
  if (t == "f32") return Scalar::F32;
  if (t == "f64") return Scalar::F64;
  if (t == "c32") return Scalar::C32;
  if (t == "c64") return Scalar::C64;
  throw Error("unknown scalar token in tuning cache: " + t);
}

}  // namespace

std::optional<fmm::Params> TuningCache::lookup(const Key& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::store(const Key& key, const fmm::Params& prm) {
  FMMFFT_CHECK_MSG(prm.n == key.n, "tuning record size mismatch");
  entries_[key] = prm;
}

void TuningCache::save(std::ostream& os) const {
  os << "# fmmfft tuning cache: n g scalar arch : P ML B Q\n";
  for (const auto& [key, prm] : entries_)
    os << key.n << " " << key.g << " " << scalar_token(key.scalar) << " " << key.arch << " : "
       << prm.p << " " << prm.ml << " " << prm.b << " " << prm.q << "\n";
}

void TuningCache::load(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Key key;
    std::string scalar_tok, colon;
    fmm::Params prm;
    ls >> key.n >> key.g >> scalar_tok >> key.arch >> colon >> prm.p >> prm.ml >> prm.b >>
        prm.q;
    FMMFFT_CHECK_MSG(!ls.fail() && colon == ":", "malformed tuning record: " << line);
    key.scalar = parse_scalar(scalar_tok);
    prm.n = key.n;
    prm.validate_distributed(key.g);
    entries_[key] = prm;
  }
}

fmm::Params search_best_params_cached(TuningCache& cache, index_t n, index_t g,
                                      const Workload& w, const ArchParams& arch, int q,
                                      int b_max) {
  const Scalar sc = w.is_complex ? (w.is_double ? Scalar::C64 : Scalar::C32)
                                 : (w.is_double ? Scalar::F64 : Scalar::F32);
  const TuningCache::Key key{n, g, sc, arch.name};
  if (auto hit = cache.lookup(key)) return *hit;
  const fmm::Params best = search_best_params(n, g, w, arch, q, b_max);
  cache.store(key, best);
  return best;
}

}  // namespace fmmfft::model
