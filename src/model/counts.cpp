#include "model/counts.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace fmmfft::model {

double v_top(int b, index_t g) {
  const double logg = std::log2(double(g));
  if (double(b) > logg) return double(index_t(1) << b) / double(g);
  return double(b) + 1.0 - logg;
}

double level_sum(int l, int b, index_t g) {
  return double(index_t(1) << l) / double(g) - v_top(b, g);
}

std::vector<StageCount> exact_fmm_counts(const fmm::Params& prm, int c, index_t g) {
  prm.validate_distributed(g);
  using KC = fmm::KernelClass;
  std::vector<StageCount> out;
  const double q = prm.q, ml = prm.ml;
  const double cp = double(c) * prm.p, cpm = double(c) * (prm.p - 1);
  const int l = prm.l(), b = prm.b;
  const double nb = double(prm.leaves()) / double(g);
  auto nbl = [&](int lev) { return double(prm.boxes(lev)) / double(g); };

  out.push_back({"S2M", KC::BatchedGemm, 2.0 * cpm * q * ml * nb,
                 cpm * ml * nb + cpm * q * nb + q * ml, 1});
  out.push_back({"S2T", KC::Custom, 6.0 * ml * ml * cp * nb,
                 cp * ml * (nb + 2) + 2.0 * cp * ml * nb, 1});
  for (int lev = l - 1; lev >= b; --lev)
    out.push_back({"M2M-" + std::to_string(lev), KC::BatchedGemm, 4.0 * cpm * q * q * nbl(lev),
                   3.0 * cpm * q * nbl(lev) + 2.0 * q * q, 1});
  for (int lev = l; lev > b; --lev)
    out.push_back({"M2L-" + std::to_string(lev), KC::Custom, 6.0 * q * q * cpm * nbl(lev),
                   2.0 * cpm * q * nbl(lev) + cpm * q * (nbl(lev) + 4), 1});
  const double base_boxes = double(prm.boxes(b));
  out.push_back({"M2L-B", KC::Custom, 2.0 * (base_boxes - 3) * q * q * cpm * nbl(b),
                 2.0 * cpm * q * nbl(b) + cpm * q * base_boxes, 1});
  out.push_back({"REDUCE", KC::Gemv, 2.0 * cpm * q * base_boxes,
                 cpm * q * base_boxes + cpm, 1});
  for (int lev = b; lev < l; ++lev)
    out.push_back({"L2L-" + std::to_string(lev), KC::BatchedGemm, 4.0 * cpm * q * q * nbl(lev),
                   cpm * q * nbl(lev) + 2.0 * q * q + 4.0 * cpm * q * nbl(lev), 1});
  out.push_back({"L2T", KC::BatchedGemm, 2.0 * cpm * ml * q * nb,
                 cpm * q * nb + q * ml + 2.0 * cpm * ml * nb, 1});
  return out;
}

double paper_fmm_flops(const fmm::Params& prm, int c, index_t g) {
  const double q = prm.q, ml = prm.ml, pm1 = double(prm.p - 1);
  const int b = prm.b;
  const double lg = double(prm.leaves()) / double(g);  // 2^L / G
  const double bb = double(prm.boxes(b));
  double f = 0;
  f += 2.0 * 2.0 * c * ml * double(prm.leaves()) * pm1 * q / double(g);  // S2M + L2T
  f += 2.0 * 4.0 * c * (lg - v_top(b, g)) * pm1 * q * q;                  // M2M + L2L
  f += 6.0 * c * ml * ml * double(prm.leaves()) * pm1 / double(g);        // S2T
  f += 6.0 * c * (2.0 * lg - v_top(b + 1, g)) * pm1 * q * q;              // M2L-l
  f += 2.0 * c * bb * (bb - 3.0) * pm1 * q * q / double(g);               // M2L-B
  f += c * bb * pm1 * q;                                                  // reduce
  return f;
}

double paper_fmm_mops(const fmm::Params& prm, int c, index_t g, bool include_operator_reads) {
  const double q = prm.q, ml = prm.ml, pm1 = double(prm.p - 1);
  const int l = prm.l(), b = prm.b;
  const double lg = double(prm.leaves()) / double(g);
  const double bb = double(prm.boxes(b));
  double d = 0;
  d += 2.0 * q * ml + 3.0 * c * pm1 * ml * lg + 2.0 * c * pm1 * q * lg;  // S2M + L2T
  d += 4.0 * q * q + 8.0 * c * pm1 * q * (lg - v_top(b, g));             // M2M + L2L
  d += (2.0 * lg + 2.0) * c * ml * pm1;                                   // S2T tensors
  d += 2.0 * level_sum(l + 1, b + 1, g) * c * pm1 * q;                    // M2L-l tensors
  d += (bb + bb / double(g)) * c * pm1 * q;                               // M2L-B tensors
  d += c * pm1 + c * bb * pm1 * q;                                        // reduce
  if (include_operator_reads) {
    d += 4.0 * ml * pm1;                       // S2T Toeplitz entries
    d += 4.0 * pm1 * q * q * double(l - b);    // M2L-l entries
    d += (bb - 3.0) * pm1 * q * q;             // M2L-B entries
  }
  return d;
}

CommCount paper_fmm_comm(const fmm::Params& prm, int c, index_t g) {
  CommCount cc;
  if (g <= 1) return cc;
  const double q = prm.q, ml = prm.ml, pm1 = double(prm.p - 1);
  cc.s_halo = 2.0 * c * pm1 * ml;
  cc.m_halo = 4.0 * c * double(prm.l() - prm.b) * pm1 * q;
  cc.m_base = double(prm.boxes(prm.b)) * c * pm1 * q;
  return cc;
}

CommCount exact_fmm_comm(const fmm::Params& prm, int c, index_t g) {
  CommCount cc;
  if (g <= 1) return cc;
  const double q = prm.q, ml = prm.ml;
  const double cp = double(c) * double(prm.p), cpm = double(c) * double(prm.p - 1);
  cc.s_halo = 2.0 * cp * ml;
  cc.m_halo = 4.0 * double(prm.l() - prm.b) * cpm * q;
  cc.m_base = double(prm.boxes(prm.b)) * cpm * q * double(g - 1) / double(g);
  return cc;
}

// ---------------------------------------------------------------------------

namespace {

double kernel_seconds(double flops, double bytes, fmm::KernelClass kc, const ArchParams& arch,
                      bool is_double, bool apply_efficiency) {
  const double t = roofline_seconds(flops, bytes, arch, is_double);
  if (!apply_efficiency) return t;
  return arch.launch_overhead + t / arch.efficiency(kc);
}

}  // namespace

double fft_kernel_seconds(double total_points, double len, const Workload& w,
                          const ArchParams& arch, bool apply_efficiency) {
  // FFT data is always complex regardless of the input type.
  const double cbytes = 2.0 * w.real_bytes();
  const double flops = 5.0 * total_points * (len > 1 ? std::log2(len) : 0.0);
  const double bytes = 4.0 * total_points * cbytes;  // two read+write sweeps
  const double t = roofline_seconds(flops, bytes, arch, w.is_double);
  if (!apply_efficiency) return t;
  return arch.launch_overhead + t / arch.eff_fft;
}

double fmm_stage_seconds(const fmm::Params& prm, const Workload& w, const ArchParams& arch,
                         bool apply_efficiency) {
  double t = 0;
  for (const auto& st : exact_fmm_counts(prm, w.c(), arch.num_devices))
    t += kernel_seconds(st.flops, st.mem_scalars * w.real_bytes(), st.kernel, arch, w.is_double,
                        apply_efficiency);
  // FMM halo/allgather communication is overlapped with the compute above
  // (§5.2: "reliably hidden"); it only binds when compute is tiny.
  const double comm_bytes = paper_fmm_comm(prm, w.c(), arch.num_devices).total() * w.real_bytes();
  const double comm = arch.num_devices > 1
                          ? (prm.l() - prm.b + 2) * arch.link_latency + comm_bytes / arch.link_bw
                          : 0.0;
  return std::max(t, comm);
}

double fft2d_seconds(const fmm::Params& prm, const Workload& w, const ArchParams& arch,
                     bool apply_efficiency) {
  const index_t g = arch.num_devices;
  const double local_pts = double(prm.n) / double(g);
  const double fft1 = fft_kernel_seconds(local_pts, double(prm.p), w, arch, apply_efficiency);
  const double fft2 = fft_kernel_seconds(local_pts, double(prm.m()), w, arch, apply_efficiency);
  const double cbytes = 2.0 * w.real_bytes();
  const double a2a = all_to_all_seconds(double(prm.n) / double(g * g) * cbytes, arch);
  // One all-to-all, overlapped with the element-wise/FFT compute.
  return std::max(fft1 + fft2, a2a);
}

double fmmfft_seconds(const fmm::Params& prm, const Workload& w, const ArchParams& arch,
                      bool apply_efficiency) {
  // Post-processing is fused into the 2D-FFT load: one extra sweep of T.
  const double post_bytes = 2.0 * double(prm.n) / arch.num_devices * 2.0 * w.real_bytes();
  const double post = roofline_seconds(8.0 * double(prm.n) / arch.num_devices, post_bytes, arch,
                                       w.is_double);
  return fmm_stage_seconds(prm, w, arch, apply_efficiency) + post +
         fft2d_seconds(prm, w, arch, apply_efficiency);
}

double baseline1d_seconds(const Workload& w, const ArchParams& arch, bool apply_efficiency) {
  const index_t g = arch.num_devices;
  const index_t n = w.n;
  // Balanced radix split N = M'·P' (pow2).
  const int ln = ilog2_exact(n);
  const index_t mfac = index_t(1) << (ln / 2 + ln % 2);
  const index_t pfac = n / mfac;
  const double local_pts = double(n) / double(g);
  double compute = fft_kernel_seconds(local_pts, double(mfac), w, arch, apply_efficiency) +
                   fft_kernel_seconds(local_pts, double(pfac), w, arch, apply_efficiency);
  // Twiddle multiply: 6 flops and one read+write per complex point.
  const double cbytes = 2.0 * w.real_bytes();
  compute += kernel_seconds(6.0 * local_pts, 2.0 * local_pts * cbytes,
                            fmm::KernelClass::Custom, arch, w.is_double, apply_efficiency);
  if (g == 1) return compute;
  const double a2a = all_to_all_seconds(double(n) / double(g * g) * cbytes, arch);
  // Three transposes, near-perfect overlap with compute (Fig. 2 top).
  return std::max(3.0 * a2a, compute);
}

double slab_a2a_bytes_per_device(double n_elems, double element_bytes, int g) {
  if (g <= 1) return 0.0;
  const double gd = double(g);
  return (gd - 1.0) * n_elems / (gd * gd) * element_bytes;
}

double pencil_a2a_bytes_per_device(double n_elems, double element_bytes, int pr, int pc) {
  const double gd = double(pr) * double(pc);
  if (gd <= 1) return 0.0;
  const double row = double(pc - 1) * n_elems / (gd * double(pc)) * element_bytes;
  const double col = double(pr - 1) * n_elems / (gd * double(pr)) * element_bytes;
  return row + col;
}

double slab_a2a_seconds(double n_elems, double element_bytes, const ArchParams& arch) {
  return all_to_all_seconds(n_elems / (double(arch.num_devices) * arch.num_devices) *
                                element_bytes,
                            arch);
}

double pencil_a2a_seconds(double n_elems, double element_bytes, int pr, int pc,
                          const ArchParams& arch) {
  const double gd = double(pr) * double(pc);
  if (gd <= 1) return 0.0;
  // Each phase runs its sub-communicators concurrently on dedicated links
  // (every device drains its own pc-1 / pr-1 message queue); a shared bus
  // serializes all G senders of the phase, as in all_to_all_seconds.
  const double row_msg = link_seconds(n_elems / (gd * double(pc)) * element_bytes, arch);
  const double col_msg = link_seconds(n_elems / (gd * double(pr)) * element_bytes, arch);
  const double bus = arch.links_shared ? gd : 1.0;
  return bus * (double(pc - 1) * row_msg + double(pr - 1) * col_msg);
}

namespace {

/// Shared compute side of the 3D models: three batched FFT phases over the
/// per-device N/G points.
double fft3d_compute_seconds(index_t n0, index_t n1, index_t n2, const Workload& w,
                             const ArchParams& arch, bool apply_efficiency) {
  const double local_pts = double(n0) * double(n1) * double(n2) / double(arch.num_devices);
  return fft_kernel_seconds(local_pts, double(n0), w, arch, apply_efficiency) +
         fft_kernel_seconds(local_pts, double(n1), w, arch, apply_efficiency) +
         fft_kernel_seconds(local_pts, double(n2), w, arch, apply_efficiency);
}

}  // namespace

double fft3d_slab_seconds(index_t n0, index_t n1, index_t n2, const Workload& w,
                          const ArchParams& arch, bool apply_efficiency) {
  const double n = double(n0) * double(n1) * double(n2);
  const double cbytes = 2.0 * w.real_bytes();
  double compute = fft3d_compute_seconds(n0, n1, n2, w, arch, apply_efficiency);
  // Local per-plane reorientation between the first two FFT phases (the
  // pencil path folds this into its row exchange): one read+write sweep.
  compute += kernel_seconds(0.0, 2.0 * n / double(arch.num_devices) * cbytes,
                            fmm::KernelClass::Copy, arch, w.is_double, apply_efficiency);
  if (arch.num_devices <= 1) return compute;
  return std::max(compute, slab_a2a_seconds(n, cbytes, arch));
}

double fft3d_pencil_seconds(index_t n0, index_t n1, index_t n2, int pr, int pc,
                            const Workload& w, const ArchParams& arch,
                            bool apply_efficiency) {
  const double n = double(n0) * double(n1) * double(n2);
  const double cbytes = 2.0 * w.real_bytes();
  const double compute = fft3d_compute_seconds(n0, n1, n2, w, arch, apply_efficiency);
  return std::max(compute, pencil_a2a_seconds(n, cbytes, pr, pc, arch));
}

double crossover_ratio(const fmm::Params& prm, const Workload& w, const ArchParams& arch) {
  const double wf = paper_fmm_flops(prm, w.c(), arch.num_devices);
  const double d = paper_fmm_mops(prm, w.c(), arch.num_devices) * w.real_bytes();
  const double rate = std::min(arch.gamma(w.is_double), arch.beta_mem * wf / d);
  return arch.link_bw / rate;  // bytes transferable per flop-time: §6's beta/min(gamma, beta W/D)
}

fmm::Params search_best_params(index_t n, index_t g, const Workload& w, const ArchParams& arch,
                               int q, int b_max) {
  auto cands = fmm::admissible_params(n, g, q, b_max);
  FMMFFT_CHECK_MSG(!cands.empty(), "no admissible FMM-FFT parameters for N=" << n << " G=" << g);
  const fmm::Params* best = nullptr;
  double best_t = 1e300;
  for (const auto& prm : cands) {
    const double t = fmmfft_seconds(prm, w, arch, /*apply_efficiency=*/true);
    if (t < best_t) {
      best_t = t;
      best = &prm;
    }
  }
  return *best;
}

}  // namespace fmmfft::model
