#include "model/arch.hpp"

namespace fmmfft::model {

ArchParams k40c_pcie(int g) {
  ArchParams a;
  a.name = std::to_string(g) + "xK40c-PCIe";
  a.num_devices = g;
  a.gamma_f = 2.8e12;   // §5.4
  a.gamma_d = 1.2e12;
  a.beta_mem = 100e9;
  // §6 quotes 13.2 GB/s achieved P2P. Transpose traffic is bidirectional
  // and staged through host memory on PCIe, so the *effective* sustained
  // per-direction rate a strided all-to-all sees is substantially lower.
  a.link_bw = 4.5e9;
  a.link_latency = 15e-6;
  a.launch_overhead = 8e-6;
  // The 2xK40c system is full-duplex PCIe between exactly two endpoints:
  // the opposing transfers of a transpose do not contend.
  a.links_shared = false;
  // cuBLAS 8.0 BatchedGEMM underperforms on K40 (§5.4 / Fig. 1a).
  a.eff_batched_gemm = 0.55;
  a.eff_custom = 0.60;
  a.eff_gemv = 0.50;
  a.eff_fft = 0.85;
  return a;
}

ArchParams p100_nvlink(int g) {
  ArchParams a;
  a.name = std::to_string(g) + "xP100-NVLink";
  a.num_devices = g;
  a.gamma_f = 10e12;    // §5.4
  a.gamma_d = 5e12;
  a.beta_mem = 360e9;
  // §6 quotes 36 GB/s achieved NVLink P2P, which we read as the aggregate
  // bidirectional rate of a pairwise exchange: 18 GB/s per direction.
  a.link_bw = 18e9;
  a.link_latency = 10e-6;
  a.launch_overhead = 8e-6;
  a.links_shared = false;  // point-to-point NVLink mesh
  a.eff_batched_gemm = 0.92;
  a.eff_custom = 0.60;
  a.eff_gemv = 0.50;
  a.eff_fft = 0.85;
  return a;
}

ArchParams native_host(int g, double gemm_flops_per_s_f32, double gemm_flops_per_s_f64,
                       double stream_bytes_per_s) {
  ArchParams a;
  a.name = "native-host-x" + std::to_string(g);
  a.num_devices = g;
  a.gamma_f = gemm_flops_per_s_f32;
  a.gamma_d = gemm_flops_per_s_f64;
  a.beta_mem = stream_bytes_per_s;
  // Simulated devices share host memory: model the "link" as a memcpy.
  a.link_bw = stream_bytes_per_s / 2.0;
  a.link_latency = 1e-6;
  a.launch_overhead = 0.2e-6;  // a function call, not a CUDA launch
  a.links_shared = true;
  a.eff_batched_gemm = 1.0;
  a.eff_custom = 1.0;
  a.eff_gemv = 1.0;
  a.eff_fft = 1.0;
  return a;
}

ArchParams multinode(const ArchParams& node, int nodes, double internode_bw,
                     double internode_latency) {
  ArchParams a = node;
  a.name = std::to_string(nodes) + "x(" + node.name + ")";
  a.devices_per_node = node.num_devices;
  a.num_devices = node.num_devices * nodes;
  a.internode_bw = internode_bw;
  a.internode_latency = internode_latency;
  return a;
}

}  // namespace fmmfft::model
