// Collective operations over the simulated fabric: the distributed
// block-to-cyclic transpose (one all-to-all), ring halo exchange, and
// allgather. Message granularity is one (src, dst) pair per device pair, so
// fabric byte counts correspond to real message traffic.
//
// The all-to-all is *fused*: devices share one address space in the
// simulator, so the per-pair message is a single strided gather-scatter
// from the producer's slab straight into the consumer's final layout
// (peer-to-peer strided writes, the AccFFT fused-pack discipline). Each
// element is read once and written once — no staging buffers, no extra
// round trip — and the fabric records the payload via Fabric::record so
// message accounting is identical to the staged path. The staged
// pack/copy/unpack reference is kept below as the equivalence oracle.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/permute.hpp"
#include "common/threadpool.hpp"
#include "common/types.hpp"
#include "dist/procgrid.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

namespace detail {

/// Fused message of the Π_{M,P} all-to-all for ordered pair (r → rr),
/// rows [row_lo, row_hi) of sender r's local m-range: scatter
/// out[rr][(r·mg + pm) + pp·m] = in[r][(rr·pg + pp) + pm·p] in one strided
/// cache-oblivious pass. Records the gather side as a2a.pack (reads) and
/// the scatter side as a2a.unpack (writes): one read + one write per
/// element, half the staged path's four.
template <typename T>
void a2a_pair_fused(const T* in_r, T* out_rr, int r, int rr, index_t m, index_t p,
                    index_t mg, index_t pg, index_t row_lo, index_t row_hi) {
  const index_t rows = row_hi - row_lo;
  if (rows <= 0) return;
  const double payload = double(rows) * double(pg) * sizeof(T);
  FMMFFT_TRAFFIC_RW("a2a.pack", payload, 0, 0);
  FMMFFT_TRAFFIC_RW("a2a.unpack", 0, payload, 0);
  // Element (pp, pm): src at (rr·pg + pp) + pm·p (pg×rows, ld p), dst at
  // (r·mg + pm) + pp·m — exactly a pg×rows strided transpose.
  fmmfft::detail::transpose_strided_serial(in_r + rr * pg + row_lo * p, p,
                                           out_rr + r * mg + row_lo, m, pg, rows);
}

/// Which exchange a pair message belongs to, for the traffic ledger: the
/// one-phase global all-to-all, or the row / column sub-communicator phase
/// of a pencil two-phase exchange. The ledger macro wants string literals,
/// so the scope switches between three literal call sites.
enum class A2aScope { Global, Row, Col };

inline void a2a_record(A2aScope scope, double payload) {
  switch (scope) {
    case A2aScope::Global:
      FMMFFT_TRAFFIC_RW("a2a.pack", payload, 0, 0);
      FMMFFT_TRAFFIC_RW("a2a.unpack", 0, payload, 0);
      break;
    case A2aScope::Row:
      FMMFFT_TRAFFIC_RW("a2a.row.pack", payload, 0, 0);
      FMMFFT_TRAFFIC_RW("a2a.row.unpack", 0, payload, 0);
      break;
    case A2aScope::Col:
      FMMFFT_TRAFFIC_RW("a2a.col.pack", payload, 0, 0);
      FMMFFT_TRAFFIC_RW("a2a.col.unpack", 0, payload, 0);
      break;
  }
}

/// Generalized fused pair message: `batch` independent nr×nc strided
/// transposes (y[j + i·out_ld] = x[i + j·in_ld] per batch), the building
/// block of the sub-communicator exchanges. One read + one write per
/// element, recorded under the scope's pack/unpack keys.
template <typename T>
void a2a_pair_fused_strided(const T* in, T* out, index_t nr, index_t nc, index_t in_ld,
                            index_t out_ld, index_t batch, index_t in_bstride,
                            index_t out_bstride, A2aScope scope) {
  if (nr <= 0 || nc <= 0 || batch <= 0) return;
  a2a_record(scope, double(batch) * double(nr) * double(nc) * sizeof(T));
  for (index_t b = 0; b < batch; ++b)
    fmmfft::detail::transpose_strided_serial(in + b * in_bstride, in_ld,
                                             out + b * out_bstride, out_ld, nr, nc);
}

/// Same-orientation pair message: `batch` blocks of `rows` rows of
/// `row_elems` contiguous elements, copied without reordering (the row
/// phase of the factorized 2D exchange keeps p-fastest order; only the
/// column phase transposes).
template <typename T>
void a2a_pair_copy_strided(const T* in, T* out, index_t row_elems, index_t rows,
                           index_t in_ld, index_t out_ld, index_t batch, index_t in_bstride,
                           index_t out_bstride, A2aScope scope) {
  if (row_elems <= 0 || rows <= 0 || batch <= 0) return;
  a2a_record(scope, double(batch) * double(rows) * double(row_elems) * sizeof(T));
  for (index_t b = 0; b < batch; ++b)
    for (index_t r = 0; r < rows; ++r)
      std::memcpy(out + b * out_bstride + r * out_ld, in + b * in_bstride + r * in_ld,
                  std::size_t(row_elems) * sizeof(T));
}

}  // namespace detail

/// Distributed Π_{M,P}: y[m + p·M] = x[p + m·P] with both x and y block
/// partitioned into G contiguous slabs of N/G elements. Rank r owns
/// m ∈ [r·M/G, (r+1)·M/G) on the input side and p ∈ [r·P/G, (r+1)·P/G)
/// on the output side; every ordered pair exchanges (M/G)·(P/G) elements.
/// Pairs write disjoint output blocks, so they stripe across the pool;
/// pure copies keep the result independent of the worker count.
template <typename T>
void all_to_all_permute_mp(sim::Fabric& fabric, const std::vector<T*>& in,
                           const std::vector<T*>& out, index_t m, index_t p,
                           const std::string& tag) {
  const int g = fabric.num_devices();
  FMMFFT_CHECK((index_t)in.size() == g && (index_t)out.size() == g);
  FMMFFT_CHECK(m % g == 0 && p % g == 0);
  const index_t mg = m / g, pg = p / g;
  FMMFFT_ASSERT(in[0] != out[0]);  // fused scatter requires distinct slabs
  parallel_for(
      index_t(g) * g,
      [&](index_t q0, index_t q1) {
        for (index_t q = q0; q < q1; ++q) {
          const int r = int(q / g), rr = int(q % g);  // sender r, receiver rr
          detail::a2a_pair_fused(in[(std::size_t)r], out[(std::size_t)rr], r, rr, m, p, mg,
                                 pg, 0, mg);
          fabric.record(r, rr, double(mg) * double(pg) * sizeof(T), tag,
                        sizeof(real_of_t<T>) == 4);
        }
      },
      /*grain=*/1);
}

/// Factorized two-phase Π_{M,P} over a pr×pc processor grid (the Dalcin /
/// AccFFT pencil exchange): phase 1 exchanges within each grid *row*
/// (pc-member sub-communicators, pc-1 messages of N/(G·pc) elements per
/// device), phase 2 within each grid *column* (pr-member sub-communicators,
/// pr-1 messages of N/(G·pr)). Sender (i,j) routes the block destined for
/// (ii,jj) via the intermediate (i,jj); the row hop is a same-orientation
/// copy into `work` and only the column hop transposes, so the result is
/// bit-identical to the one-phase all_to_all_permute_mp. Each phase's pairs
/// write disjoint blocks and stripe across the pool; the function returns
/// only after both phases (implicit barrier between them). `work[t]` needs
/// N/G elements per device and must be distinct from in/out.
template <typename T>
void all_to_all_permute_mp_grid(sim::Fabric& fabric, const std::vector<T*>& in,
                                const std::vector<T*>& out, const std::vector<T*>& work,
                                index_t m, index_t p, const ProcGrid& grid,
                                const std::string& row_tag = "A2A-ROW",
                                const std::string& col_tag = "A2A-COL") {
  const int g = fabric.num_devices();
  FMMFFT_CHECK((index_t)in.size() == g && (index_t)out.size() == g &&
               (index_t)work.size() == g);
  FMMFFT_CHECK(m % g == 0 && p % g == 0);
  FMMFFT_CHECK(grid.devices() == g);
  const int pr = grid.pr, pc = grid.pc;
  const index_t mg = m / g, pg = p / g;
  const index_t block = pg * mg;  // one (sender, final-receiver) pair's elements
  FMMFFT_ASSERT(in[0] != out[0] && in[0] != work[0] && out[0] != work[0]);
  const bool f32 = sizeof(real_of_t<T>) == 4;
  // Phase 1 — row sub-communicators: sender s = (i,j) ships to t = (i,jj)
  // the pr chunks of p destined for column jj, keeping p-fastest order.
  // work[t] layout: [sender column j][final row ii][pm·pg + pp].
  parallel_for(
      index_t(g) * pc,
      [&](index_t q0, index_t q1) {
        for (index_t q = q0; q < q1; ++q) {
          const int s = int(q / pc), jj = int(q % pc);
          const int i = grid.row_of(s), j = grid.col_of(s);
          const int t = grid.device(i, jj);
          detail::a2a_pair_copy_strided(
              in[(std::size_t)s] + index_t(jj) * pg, work[(std::size_t)t] + index_t(j) * pr * block,
              /*row_elems=*/pg, /*rows=*/mg, /*in_ld=*/p, /*out_ld=*/pg,
              /*batch=*/index_t(pr), /*in_bstride=*/index_t(pc) * pg, /*out_bstride=*/block,
              detail::A2aScope::Row);
          fabric.record(s, t, double(pr) * double(block) * sizeof(T), row_tag, f32);
        }
      },
      /*grain=*/1);
  // Phase 2 — column sub-communicators: t = (i,jj) scatters batch ii of
  // every sender column j into d = (ii,jj)'s final cyclic layout.
  parallel_for(
      index_t(g) * pr,
      [&](index_t q0, index_t q1) {
        for (index_t q = q0; q < q1; ++q) {
          const int t = int(q / pr), ii = int(q % pr);
          const int i = grid.row_of(t), jj = grid.col_of(t);
          const int d = grid.device(ii, jj);
          detail::a2a_pair_fused_strided(
              work[(std::size_t)t] + index_t(ii) * block, out[(std::size_t)d] + index_t(i) * pc * mg,
              /*nr=*/pg, /*nc=*/mg, /*in_ld=*/pg, /*out_ld=*/m, /*batch=*/index_t(pc),
              /*in_bstride=*/index_t(pr) * block, /*out_bstride=*/mg, detail::A2aScope::Col);
          fabric.record(t, d, double(pc) * double(block) * sizeof(T), col_tag, f32);
        }
      },
      /*grain=*/1);
}

/// Staged reference all-to-all: pack into a send buffer, fabric copy,
/// unpack — the pre-fusion data path. Kept as the bit-identity oracle for
/// the fused path (tests) and as the bench contrast. Staging lives in the
/// calling thread's ScratchArena, so steady-state calls allocate nothing.
template <typename T>
void all_to_all_permute_mp_staged(sim::Fabric& fabric, const std::vector<T*>& in,
                                  const std::vector<T*>& out, index_t m, index_t p,
                                  const std::string& tag) {
  const int g = fabric.num_devices();
  FMMFFT_CHECK((index_t)in.size() == g && (index_t)out.size() == g);
  FMMFFT_CHECK(m % g == 0 && p % g == 0);
  const index_t mg = m / g, pg = p / g;
  ScratchBlock<T> stage_src(mg * pg), stage_dst(mg * pg);
  for (int r = 0; r < g; ++r) {        // sender: owns m-range [r*mg, ...)
    for (int rr = 0; rr < g; ++rr) {   // receiver: owns p-range [rr*pg, ...)
      // Pack elements (p, m) with p in rr's range from r's input slab.
      // Input slab local index of global n = p + m*P is n - r*mg*p_total.
      index_t k = 0;
      FMMFFT_TRAFFIC_RW("a2a.pack", double(mg) * double(pg) * sizeof(T),
                        double(mg) * double(pg) * sizeof(T), 0);
      for (index_t pm = 0; pm < mg; ++pm)       // local m offset
        for (index_t pp = 0; pp < pg; ++pp)     // local p offset
          stage_src[k++] = in[(std::size_t)r][(rr * pg + pp) + pm * p];
      fabric.send(r, rr, stage_src.data(), stage_dst.data(), mg * pg, tag);
      // Unpack into rr's output slab: local index of j = m + p*M is
      // j - rr*pg*m_total.
      k = 0;
      FMMFFT_TRAFFIC_RW("a2a.unpack", double(mg) * double(pg) * sizeof(T),
                        double(mg) * double(pg) * sizeof(T), 0);
      for (index_t pm = 0; pm < mg; ++pm)
        for (index_t pp = 0; pp < pg; ++pp)
          out[(std::size_t)rr][(r * mg + pm) + pp * m] = stage_dst[k++];
    }
  }
}

/// Cyclic ring halo exchange: every rank receives `halo_elems` elements
/// from each neighbour. `lo_dst[r]` receives the *last* halo_elems of
/// rank r-1's interior (`hi_src`), `hi_dst[r]` the *first* halo_elems of
/// rank r+1's interior (`lo_src`). Sends are direct interior-to-halo
/// copies — no staging to hoist.
template <typename T>
void halo_exchange_ring(sim::Fabric& fabric, const std::vector<const T*>& lo_src,
                        const std::vector<const T*>& hi_src, const std::vector<T*>& lo_dst,
                        const std::vector<T*>& hi_dst, index_t halo_elems,
                        const std::string& tag) {
  const int g = fabric.num_devices();
  for (int r = 0; r < g; ++r) {
    const int left = (r + g - 1) % g, right = (r + 1) % g;
    fabric.send(left, r, hi_src[(std::size_t)left], lo_dst[(std::size_t)r], halo_elems, tag);
    fabric.send(right, r, lo_src[(std::size_t)right], hi_dst[(std::size_t)r], halo_elems, tag);
  }
}

/// Allgather: rank r contributes `slab_elems` at slab_src[r]; afterwards
/// every rank's `full_dst` holds all G slabs in rank order. The local slab
/// is copied locally (no traffic recorded). Sends land in the destination
/// slot directly — no staging to hoist.
template <typename T>
void allgather(sim::Fabric& fabric, const std::vector<const T*>& slab_src,
               const std::vector<T*>& full_dst, index_t slab_elems, const std::string& tag) {
  const int g = fabric.num_devices();
  for (int r = 0; r < g; ++r)
    for (int rr = 0; rr < g; ++rr)
      fabric.send(r, rr, slab_src[(std::size_t)r], full_dst[(std::size_t)rr] + r * slab_elems,
                  slab_elems, tag);
}

}  // namespace fmmfft::dist
