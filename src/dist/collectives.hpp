// Collective operations over the simulated fabric: the distributed
// block-to-cyclic transpose (one all-to-all), ring halo exchange, and
// allgather. Message granularity is one (src, dst) pair per device pair, so
// fabric byte counts correspond to real message traffic.
//
// The all-to-all is *fused*: devices share one address space in the
// simulator, so the per-pair message is a single strided gather-scatter
// from the producer's slab straight into the consumer's final layout
// (peer-to-peer strided writes, the AccFFT fused-pack discipline). Each
// element is read once and written once — no staging buffers, no extra
// round trip — and the fabric records the payload via Fabric::record so
// message accounting is identical to the staged path. The staged
// pack/copy/unpack reference is kept below as the equivalence oracle.
#pragma once

#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/permute.hpp"
#include "common/threadpool.hpp"
#include "common/types.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

namespace detail {

/// Fused message of the Π_{M,P} all-to-all for ordered pair (r → rr),
/// rows [row_lo, row_hi) of sender r's local m-range: scatter
/// out[rr][(r·mg + pm) + pp·m] = in[r][(rr·pg + pp) + pm·p] in one strided
/// cache-oblivious pass. Records the gather side as a2a.pack (reads) and
/// the scatter side as a2a.unpack (writes): one read + one write per
/// element, half the staged path's four.
template <typename T>
void a2a_pair_fused(const T* in_r, T* out_rr, int r, int rr, index_t m, index_t p,
                    index_t mg, index_t pg, index_t row_lo, index_t row_hi) {
  const index_t rows = row_hi - row_lo;
  if (rows <= 0) return;
  const double payload = double(rows) * double(pg) * sizeof(T);
  FMMFFT_TRAFFIC_RW("a2a.pack", payload, 0, 0);
  FMMFFT_TRAFFIC_RW("a2a.unpack", 0, payload, 0);
  // Element (pp, pm): src at (rr·pg + pp) + pm·p (pg×rows, ld p), dst at
  // (r·mg + pm) + pp·m — exactly a pg×rows strided transpose.
  fmmfft::detail::transpose_strided_serial(in_r + rr * pg + row_lo * p, p,
                                           out_rr + r * mg + row_lo, m, pg, rows);
}

}  // namespace detail

/// Distributed Π_{M,P}: y[m + p·M] = x[p + m·P] with both x and y block
/// partitioned into G contiguous slabs of N/G elements. Rank r owns
/// m ∈ [r·M/G, (r+1)·M/G) on the input side and p ∈ [r·P/G, (r+1)·P/G)
/// on the output side; every ordered pair exchanges (M/G)·(P/G) elements.
/// Pairs write disjoint output blocks, so they stripe across the pool;
/// pure copies keep the result independent of the worker count.
template <typename T>
void all_to_all_permute_mp(sim::Fabric& fabric, const std::vector<T*>& in,
                           const std::vector<T*>& out, index_t m, index_t p,
                           const std::string& tag) {
  const int g = fabric.num_devices();
  FMMFFT_CHECK((index_t)in.size() == g && (index_t)out.size() == g);
  FMMFFT_CHECK(m % g == 0 && p % g == 0);
  const index_t mg = m / g, pg = p / g;
  FMMFFT_ASSERT(in[0] != out[0]);  // fused scatter requires distinct slabs
  parallel_for(
      index_t(g) * g,
      [&](index_t q0, index_t q1) {
        for (index_t q = q0; q < q1; ++q) {
          const int r = int(q / g), rr = int(q % g);  // sender r, receiver rr
          detail::a2a_pair_fused(in[(std::size_t)r], out[(std::size_t)rr], r, rr, m, p, mg,
                                 pg, 0, mg);
          fabric.record(r, rr, double(mg) * double(pg) * sizeof(T), tag,
                        sizeof(real_of_t<T>) == 4);
        }
      },
      /*grain=*/1);
}

/// Staged reference all-to-all: pack into a send buffer, fabric copy,
/// unpack — the pre-fusion data path. Kept as the bit-identity oracle for
/// the fused path (tests) and as the bench contrast. Staging lives in the
/// calling thread's ScratchArena, so steady-state calls allocate nothing.
template <typename T>
void all_to_all_permute_mp_staged(sim::Fabric& fabric, const std::vector<T*>& in,
                                  const std::vector<T*>& out, index_t m, index_t p,
                                  const std::string& tag) {
  const int g = fabric.num_devices();
  FMMFFT_CHECK((index_t)in.size() == g && (index_t)out.size() == g);
  FMMFFT_CHECK(m % g == 0 && p % g == 0);
  const index_t mg = m / g, pg = p / g;
  ScratchBlock<T> stage_src(mg * pg), stage_dst(mg * pg);
  for (int r = 0; r < g; ++r) {        // sender: owns m-range [r*mg, ...)
    for (int rr = 0; rr < g; ++rr) {   // receiver: owns p-range [rr*pg, ...)
      // Pack elements (p, m) with p in rr's range from r's input slab.
      // Input slab local index of global n = p + m*P is n - r*mg*p_total.
      index_t k = 0;
      FMMFFT_TRAFFIC_RW("a2a.pack", double(mg) * double(pg) * sizeof(T),
                        double(mg) * double(pg) * sizeof(T), 0);
      for (index_t pm = 0; pm < mg; ++pm)       // local m offset
        for (index_t pp = 0; pp < pg; ++pp)     // local p offset
          stage_src[k++] = in[(std::size_t)r][(rr * pg + pp) + pm * p];
      fabric.send(r, rr, stage_src.data(), stage_dst.data(), mg * pg, tag);
      // Unpack into rr's output slab: local index of j = m + p*M is
      // j - rr*pg*m_total.
      k = 0;
      FMMFFT_TRAFFIC_RW("a2a.unpack", double(mg) * double(pg) * sizeof(T),
                        double(mg) * double(pg) * sizeof(T), 0);
      for (index_t pm = 0; pm < mg; ++pm)
        for (index_t pp = 0; pp < pg; ++pp)
          out[(std::size_t)rr][(r * mg + pm) + pp * m] = stage_dst[k++];
    }
  }
}

/// Cyclic ring halo exchange: every rank receives `halo_elems` elements
/// from each neighbour. `lo_dst[r]` receives the *last* halo_elems of
/// rank r-1's interior (`hi_src`), `hi_dst[r]` the *first* halo_elems of
/// rank r+1's interior (`lo_src`). Sends are direct interior-to-halo
/// copies — no staging to hoist.
template <typename T>
void halo_exchange_ring(sim::Fabric& fabric, const std::vector<const T*>& lo_src,
                        const std::vector<const T*>& hi_src, const std::vector<T*>& lo_dst,
                        const std::vector<T*>& hi_dst, index_t halo_elems,
                        const std::string& tag) {
  const int g = fabric.num_devices();
  for (int r = 0; r < g; ++r) {
    const int left = (r + g - 1) % g, right = (r + 1) % g;
    fabric.send(left, r, hi_src[(std::size_t)left], lo_dst[(std::size_t)r], halo_elems, tag);
    fabric.send(right, r, lo_src[(std::size_t)right], hi_dst[(std::size_t)r], halo_elems, tag);
  }
}

/// Allgather: rank r contributes `slab_elems` at slab_src[r]; afterwards
/// every rank's `full_dst` holds all G slabs in rank order. The local slab
/// is copied locally (no traffic recorded). Sends land in the destination
/// slot directly — no staging to hoist.
template <typename T>
void allgather(sim::Fabric& fabric, const std::vector<const T*>& slab_src,
               const std::vector<T*>& full_dst, index_t slab_elems, const std::string& tag) {
  const int g = fabric.num_devices();
  for (int r = 0; r < g; ++r)
    for (int rr = 0; rr < g; ++rr)
      fabric.send(r, rr, slab_src[(std::size_t)r], full_dst[(std::size_t)rr] + r * slab_elems,
                  slab_elems, tag);
}

}  // namespace fmmfft::dist
