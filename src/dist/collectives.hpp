// Collective operations over the simulated fabric: the distributed
// block-to-cyclic transpose (one all-to-all), ring halo exchange, and
// allgather. Message granularity is one staged buffer per device pair, so
// fabric byte counts correspond to real message traffic.
#pragma once

#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

/// Distributed Π_{M,P}: y[m + p·M] = x[p + m·P] with both x and y block
/// partitioned into G contiguous slabs of N/G elements. Rank r owns
/// m ∈ [r·M/G, (r+1)·M/G) on the input side and p ∈ [r·P/G, (r+1)·P/G)
/// on the output side; every ordered pair exchanges (M/G)·(P/G) elements.
template <typename T>
void all_to_all_permute_mp(sim::Fabric& fabric, const std::vector<T*>& in,
                           const std::vector<T*>& out, index_t m, index_t p,
                           const std::string& tag) {
  const int g = fabric.num_devices();
  FMMFFT_CHECK((index_t)in.size() == g && (index_t)out.size() == g);
  FMMFFT_CHECK(m % g == 0 && p % g == 0);
  const index_t mg = m / g, pg = p / g;
  Buffer<T> stage_src(mg * pg), stage_dst(mg * pg);
  for (int r = 0; r < g; ++r) {        // sender: owns m-range [r*mg, ...)
    for (int rr = 0; rr < g; ++rr) {   // receiver: owns p-range [rr*pg, ...)
      // Pack elements (p, m) with p in rr's range from r's input slab.
      // Input slab local index of global n = p + m*P is n - r*mg*p_total.
      index_t k = 0;
      FMMFFT_TRAFFIC_RW("a2a.pack", double(mg) * double(pg) * sizeof(T),
                        double(mg) * double(pg) * sizeof(T), 0);
      for (index_t pm = 0; pm < mg; ++pm)       // local m offset
        for (index_t pp = 0; pp < pg; ++pp)     // local p offset
          stage_src[k++] = in[(std::size_t)r][(rr * pg + pp) + pm * p];
      fabric.send(r, rr, stage_src.data(), stage_dst.data(), mg * pg, tag);
      // Unpack into rr's output slab: local index of j = m + p*M is
      // j - rr*pg*m_total.
      k = 0;
      FMMFFT_TRAFFIC_RW("a2a.unpack", double(mg) * double(pg) * sizeof(T),
                        double(mg) * double(pg) * sizeof(T), 0);
      for (index_t pm = 0; pm < mg; ++pm)
        for (index_t pp = 0; pp < pg; ++pp)
          out[(std::size_t)rr][(r * mg + pm) + pp * m] = stage_dst[k++];
    }
  }
}

/// Cyclic ring halo exchange: every rank receives `halo_elems` elements
/// from each neighbour. `lo_dst[r]` receives the *last* halo_elems of
/// rank r-1's interior (`hi_src`), `hi_dst[r]` the *first* halo_elems of
/// rank r+1's interior (`lo_src`).
template <typename T>
void halo_exchange_ring(sim::Fabric& fabric, const std::vector<const T*>& lo_src,
                        const std::vector<const T*>& hi_src, const std::vector<T*>& lo_dst,
                        const std::vector<T*>& hi_dst, index_t halo_elems,
                        const std::string& tag) {
  const int g = fabric.num_devices();
  for (int r = 0; r < g; ++r) {
    const int left = (r + g - 1) % g, right = (r + 1) % g;
    fabric.send(left, r, hi_src[(std::size_t)left], lo_dst[(std::size_t)r], halo_elems, tag);
    fabric.send(right, r, lo_src[(std::size_t)right], hi_dst[(std::size_t)r], halo_elems, tag);
  }
}

/// Allgather: rank r contributes `slab_elems` at slab_src[r]; afterwards
/// every rank's `full_dst` holds all G slabs in rank order. The local slab
/// is copied locally (no traffic recorded).
template <typename T>
void allgather(sim::Fabric& fabric, const std::vector<const T*>& slab_src,
               const std::vector<T*>& full_dst, index_t slab_elems, const std::string& tag) {
  const int g = fabric.num_devices();
  for (int r = 0; r < g; ++r)
    for (int rr = 0; rr < g; ++rr)
      fabric.send(r, rr, slab_src[(std::size_t)r], full_dst[(std::size_t)rr] + r * slab_elems,
                  slab_elems, tag);
}

}  // namespace fmmfft::dist
