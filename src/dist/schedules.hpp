// Builders of sim::Schedule op-DAGs mirroring the distributed executions.
//
// These are what "measurement" means on the simulated architectures: the
// same kernels, messages and dependency structure the real drivers execute
// (the drivers and builders are cross-checked by tests on launch counts and
// comm bytes), timed under an ArchParams model. They are also usable
// without executing — op counts depend only on the plan parameters — which
// is how the benches reach the paper's N = 2^27..2^29 on one host.
//
// Transposes are chunk-pipelined: each all-to-all is split into chunks that
// overlap with the neighbouring FFT compute, reproducing the near-perfect
// comm/compute overlap of the cuFFTXT profile (Fig. 2 top).
#pragma once

#include "fmm/params.hpp"
#include "model/counts.hpp"
#include "model/tuning.hpp"
#include "sim/schedule.hpp"

namespace fmmfft::dist {

/// Algorithm 1 + fused POST + distributed 2D FFT.
sim::Schedule fmmfft_schedule(const fmm::Params& prm, const model::Workload& w, int g,
                              bool fuse_post = true);

/// Baseline three-transpose distributed 1D FFT (the cuFFTXT stand-in).
sim::Schedule baseline1d_schedule(index_t n, const model::Workload& w, int g);

/// Standalone distributed M×P 2D FFT (Fig. 3's "2D cuFFTXT" budget bar).
sim::Schedule dist2dfft_schedule(index_t m, index_t p, const model::Workload& w, int g);

/// Distributed n0×n1×n2 3D FFT in either decomposition (mirrors
/// dist::Dist3dFft). Slab: FFT → local reorientation → FFT → one chunked
/// G-wide all-to-all → FFT. Pencil (`grid` must satisfy grid.devices() ==
/// g): FFT → chunked row-subgroup exchange (pc-1 peers) → FFT → chunked
/// column-subgroup exchange (pr-1 peers) → FFT. The builder takes the
/// decomposition explicitly — resolve Auto via model::choose_decomp first.
sim::Schedule fft3d_schedule(index_t n0, index_t n1, index_t n2, const model::Workload& w,
                             int g, model::Decomp decomp,
                             model::GridShape grid = {});

}  // namespace fmmfft::dist
