// Decomposition resolution for the distributed drivers: fold together the
// caller's constructor request, the FMMFFT_DECOMP / FMMFFT_GRID environment
// knobs, and (when everything still says "auto") the model::choose_decomp
// cost comparison. Lives in dist/ rather than model/ because the env
// registry and the decomp.auto.* decision metrics are obs:: facilities the
// model layer deliberately does not link.
#pragma once

#include "common/types.hpp"
#include "dist/procgrid.hpp"
#include "model/tuning.hpp"

namespace fmmfft::dist {

struct DecompChoice {
  model::Decomp decomp = model::Decomp::Slab;  ///< never Auto
  ProcGrid grid;                               ///< valid iff decomp == Pencil
  model::DecompDecision decision;              ///< the underlying model verdict
};

/// Resolve the decomposition of a distributed M×P 2D transform on g devices.
/// Precedence: explicit `requested` argument > FMMFFT_DECOMP > cost model.
/// A grid passed as `requested_grid` beats FMMFFT_GRID. When the model
/// decides (everything "auto") and metrics are enabled, records the
/// decomp.auto.* gauges (pencil 0/1, pr, pc, modeled slab/pencil seconds).
DecompChoice resolve_decomp_2d(int g, index_t m, index_t p,
                               model::Decomp requested = model::Decomp::Auto,
                               model::GridShape requested_grid = {});

/// Same resolution for an n0×n1×n2 3D transform.
DecompChoice resolve_decomp_3d(int g, index_t n0, index_t n1, index_t n2,
                               model::Decomp requested = model::Decomp::Auto,
                               model::GridShape requested_grid = {});

}  // namespace fmmfft::dist
