#include "dist/dfmmfft.hpp"

#include <cstring>

#include "common/error.hpp"
#include "dist/collectives.hpp"
#include "fmm/operators.hpp"
#include "obs/obs.hpp"

namespace fmmfft::dist {

template <typename InT>
DistFmmFft<InT>::DistFmmFft(const fmm::Params& prm, int g)
    : prm_(prm),
      g_(g),
      c_(components_v<InT>),
      fabric_(g),
      fft2d_(prm.m(), prm.p, g),
      rho_(static_cast<std::size_t>(prm.p)) {
  prm_.validate_distributed(g);
  for (int r = 0; r < g_; ++r) {
    engines_.push_back(std::make_unique<fmm::Engine<Real>>(prm_, c_, g_, r));
    slabs_.emplace_back(prm_.n / g_);
  }
  for (index_t p = 1; p < prm_.p; ++p) {
    auto r = fmm::rho(p, prm_.p, prm_.m());
    rho_[(std::size_t)p] = Out(Real(r.real()), Real(r.imag()));
  }
}

template <typename InT>
void DistFmmFft<InT>::exchange_source_halos() {
  // COMM S: one leaf box to each neighbour, cyclic (§4.2).
  const index_t elems = engines_[0]->source_box_elems();
  const index_t nb = engines_[0]->local_leaves();
  std::vector<const Real*> lo_src, hi_src;
  std::vector<Real*> lo_dst, hi_dst;
  for (auto& e : engines_) {
    lo_src.push_back(e->source_box(0));
    hi_src.push_back(e->source_box(nb - 1));
    lo_dst.push_back(e->source_box(-1));
    hi_dst.push_back(e->source_box(nb));
  }
  halo_exchange_ring(fabric_, lo_src, hi_src, lo_dst, hi_dst, elems, "COMM-S");
}

template <typename InT>
void DistFmmFft<InT>::exchange_multipole_halos(int level) {
  // COMM Mℓ: two boxes to each neighbour (§4.2).
  const index_t elems = 2 * engines_[0]->expansion_box_elems();
  const index_t nbl = engines_[0]->local_boxes(level);
  std::vector<const Real*> lo_src, hi_src;
  std::vector<Real*> lo_dst, hi_dst;
  for (auto& e : engines_) {
    lo_src.push_back(e->multipole_box(level, 0));
    hi_src.push_back(e->multipole_box(level, nbl - 2));
    lo_dst.push_back(e->multipole_box(level, -2));
    hi_dst.push_back(e->multipole_box(level, nbl));
  }
  halo_exchange_ring(fabric_, lo_src, hi_src, lo_dst, hi_dst, elems,
                     "COMM-M" + std::to_string(level));
}

template <typename InT>
void DistFmmFft<InT>::allgather_base() {
  // COMM M_B: all-to-all gather of the base-level multipoles (§4.7).
  const index_t slab = engines_[0]->local_boxes(prm_.b) * engines_[0]->expansion_box_elems();
  std::vector<const Real*> src;
  std::vector<Real*> dst;
  for (int r = 0; r < g_; ++r) {
    src.push_back(engines_[(std::size_t)r]->multipole_box(prm_.b,
                                                          engines_[(std::size_t)r]->box_offset(prm_.b)));
    dst.push_back(engines_[(std::size_t)r]->multipole_box(prm_.b, 0));
  }
  allgather(fabric_, src, dst, slab, "COMM-MB");
}

template <typename InT>
void DistFmmFft<InT>::execute(const InT* in, Out* out) {
  const index_t slab_n = prm_.n / g_;
  const int l = prm_.l(), b = prm_.b;

  // Device-resident load: natural-order slab r is exactly engine r's
  // S-tensor interior.
  for (int r = 0; r < g_; ++r) {
    engines_[(std::size_t)r]->reset_stats();
    engines_[(std::size_t)r]->zero();
    std::memcpy(engines_[(std::size_t)r]->source_box(0), in + r * slab_n,
                sizeof(InT) * static_cast<std::size_t>(slab_n));
  }

  // Algorithm 1. Stage loops run over all devices (they execute these in
  // parallel on real hardware; the schedule/timeline model accounts for
  // that — numerics here are order-independent).
  {
    FMMFFT_SPAN("FMM");
    for (auto& e : engines_) e->s2m();
    exchange_source_halos();
    for (auto& e : engines_) e->s2t();
    for (int lev = l - 1; lev >= b; --lev)
      for (auto& e : engines_) e->m2m(lev);
    for (int lev = l; lev > b; --lev) {
      exchange_multipole_halos(lev);
      for (auto& e : engines_) e->m2l_level(lev);
    }
    allgather_base();
    for (auto& e : engines_) e->m2l_base();
    for (auto& e : engines_) e->reduce();
    for (int lev = b; lev < l; ++lev)
      for (auto& e : engines_) e->l2l(lev);
    for (auto& e : engines_) e->l2t();
  }

  // POST fused with the 2D-FFT load (§4.9 line 15): slab element
  // n = p + P·mg with mg in rank r's range.
  const index_t p_total = prm_.p;
  {
    FMMFFT_SPAN("POST");
    for (int r = 0; r < g_; ++r) {
      const Real* t = engines_[(std::size_t)r]->target_box(0);
      const Real* rr = engines_[(std::size_t)r]->reduction();
      Out* s = slabs_[(std::size_t)r].data();
      const index_t m_loc = slab_n / p_total;
      for (index_t mg = 0; mg < m_loc; ++mg)
        for (index_t p = 0; p < p_total; ++p) {
          const index_t i = p + p_total * mg;
          Out tv;
          if (c_ == 2)
            tv = Out(t[2 * i], t[2 * i + 1]);
          else
            tv = Out(t[i], 0);
          if (p == 0) {
            s[i] = tv;
          } else {
            const Out rp = c_ == 2 ? Out(rr[2 * (p - 1)], rr[2 * (p - 1) + 1])
                                   : Out(0, rr[p - 1]);
            // For c == 1 rp already carries the i·r_p rotation.
            s[i] = rho_[(std::size_t)p] * (c_ == 2 ? tv + Out(0, 1) * rp : tv + rp);
          }
        }
    }
  }

  // Distributed 2D FFT (one all-to-all), output in order.
  {
    FMMFFT_SPAN("FFT-2D");
    std::vector<Out*> sp;
    for (auto& s : slabs_) sp.push_back(s.data());
    fft2d_.execute_slabs(sp, fabric_);
    for (int r = 0; r < g_; ++r)
      std::memcpy(out + r * slab_n, sp[(std::size_t)r],
                  sizeof(Out) * static_cast<std::size_t>(slab_n));
  }
}

template class DistFmmFft<float>;
template class DistFmmFft<double>;
template class DistFmmFft<std::complex<float>>;
template class DistFmmFft<std::complex<double>>;

}  // namespace fmmfft::dist
