#include "dist/dfmmfft.hpp"

#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "dist/collectives.hpp"
#include "fmm/operators.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::dist {

template <typename InT>
DistFmmFft<InT>::DistFmmFft(const fmm::Params& prm, int g, fmm::Precision prec)
    : prm_(prm),
      g_(g),
      c_(components_v<InT>),
      prec_(prec),
      fabric_(g),
      fft2d_(prm.m(), prm.p, g),
      rho_(static_cast<std::size_t>(prm.p)) {
  prm_.validate_distributed(g);
  const bool mixed = prec_ == fmm::Precision::Mixed && sizeof(Real) == 8;
  for (int r = 0; r < g_; ++r) {
    if (mixed)
      engines32_.push_back(std::make_unique<fmm::Engine<float>>(prm_, c_, g_, r));
    else
      engines_.push_back(std::make_unique<fmm::Engine<Real>>(prm_, c_, g_, r));
    slabs_.emplace_back(prm_.n / g_);
  }
  for (index_t p = 1; p < prm_.p; ++p) {
    auto r = fmm::rho(p, prm_.p, prm_.m());
    rho_[(std::size_t)p] = Out(Real(r.real()), Real(r.imag()));
  }
}

template <typename InT>
template <typename ER>
void DistFmmFft<InT>::exchange_source_halos_t() {
  // COMM S: one leaf box to each neighbour, cyclic (§4.2).
  auto& es = eset<ER>();
  const index_t elems = es[0]->source_box_elems();
  const index_t nb = es[0]->local_leaves();
  std::vector<const ER*> lo_src, hi_src;
  std::vector<ER*> lo_dst, hi_dst;
  for (auto& e : es) {
    lo_src.push_back(e->source_box(0));
    hi_src.push_back(e->source_box(nb - 1));
    lo_dst.push_back(e->source_box(-1));
    hi_dst.push_back(e->source_box(nb));
  }
  halo_exchange_ring(fabric_, lo_src, hi_src, lo_dst, hi_dst, elems, "COMM-S");
}

template <typename InT>
template <typename ER>
void DistFmmFft<InT>::exchange_multipole_halos_t(int level) {
  // COMM Mℓ: two boxes to each neighbour (§4.2).
  auto& es = eset<ER>();
  const index_t elems = 2 * es[0]->expansion_box_elems();
  const index_t nbl = es[0]->local_boxes(level);
  std::vector<const ER*> lo_src, hi_src;
  std::vector<ER*> lo_dst, hi_dst;
  for (auto& e : es) {
    lo_src.push_back(e->multipole_box(level, 0));
    hi_src.push_back(e->multipole_box(level, nbl - 2));
    lo_dst.push_back(e->multipole_box(level, -2));
    hi_dst.push_back(e->multipole_box(level, nbl));
  }
  halo_exchange_ring(fabric_, lo_src, hi_src, lo_dst, hi_dst, elems,
                     "COMM-M" + std::to_string(level));
}

template <typename InT>
template <typename ER>
void DistFmmFft<InT>::allgather_base_t() {
  // COMM M_B: all-to-all gather of the base-level multipoles (§4.7).
  auto& es = eset<ER>();
  const index_t slab = es[0]->local_boxes(prm_.b) * es[0]->expansion_box_elems();
  std::vector<const ER*> src;
  std::vector<ER*> dst;
  for (int r = 0; r < g_; ++r) {
    src.push_back(es[(std::size_t)r]->multipole_box(prm_.b,
                                                    es[(std::size_t)r]->box_offset(prm_.b)));
    dst.push_back(es[(std::size_t)r]->multipole_box(prm_.b, 0));
  }
  allgather(fabric_, src, dst, slab, "COMM-MB");
}

template <typename InT>
template <typename ER>
void DistFmmFft<InT>::post_slab_t(int r) {
  // POST fused with the 2D-FFT load (§4.9 line 15): slab element
  // n = p + P·mg with mg in rank r's range. Rows are independent
  // elementwise work, so the parallel_for split is bit-identical (and it
  // degrades to the plain loop inside an executor task). The T tensor is
  // read at the engine width ER and widened scalar-by-scalar; the rho
  // rotation and the slab it writes stay at the shell width.
  FMMFFT_SPAN("POST");
  const index_t slab_n = prm_.n / g_;
  // Streams T once (c_ engine reals per element) and writes the complex
  // shell-width slab; the tiny rho/reduction tables are excluded like the
  // FMM operator tables.
  FMMFFT_TRAFFIC_RW("post", double(c_) * double(slab_n) * sizeof(ER),
                    2.0 * double(slab_n) * sizeof(Real), 0);
  const index_t p_total = prm_.p;
  auto& es = eset<ER>();
  const ER* t = es[(std::size_t)r]->target_box(0);
  const ER* rr = es[(std::size_t)r]->reduction();
  Out* s = slabs_[(std::size_t)r].data();
  const index_t m_loc = slab_n / p_total;
  parallel_for(
      m_loc,
      [&](index_t mg_lo, index_t mg_hi) {
        for (index_t mg = mg_lo; mg < mg_hi; ++mg)
          for (index_t p = 0; p < p_total; ++p) {
            const index_t i = p + p_total * mg;
            Out tv;
            if (c_ == 2)
              tv = Out(Real(t[2 * i]), Real(t[2 * i + 1]));
            else
              tv = Out(Real(t[i]), 0);
            if (p == 0) {
              s[i] = tv;
            } else {
              const Out rp = c_ == 2 ? Out(Real(rr[2 * (p - 1)]), Real(rr[2 * (p - 1) + 1]))
                                     : Out(0, Real(rr[p - 1]));
              // For c == 1 rp already carries the i·r_p rotation.
              s[i] = rho_[(std::size_t)p] * (c_ == 2 ? tv + Out(0, 1) * rp : tv + rp);
            }
          }
      },
      /*grain=*/16);
}

namespace detail {

/// Device-resident load of slab r: same-width engines memcpy (the
/// bit-identity path); a narrower engine demotes elementwise.
template <typename InT, typename ER>
void load_slab(fmm::Engine<ER>& e, const InT* src, index_t slab_n) {
  using Real = real_of_t<InT>;
  if constexpr (std::is_same_v<ER, Real>) {
    std::memcpy(e.source_box(0), src, sizeof(InT) * static_cast<std::size_t>(slab_n));
  } else {
    constexpr index_t kC = components_v<InT>;
    const Real* s = reinterpret_cast<const Real*>(src);
    ER* d = e.source_box(0);
    for (index_t i = 0; i < kC * slab_n; ++i) d[i] = ER(s[i]);
  }
}

}  // namespace detail

template <typename InT>
void DistFmmFft<InT>::execute(const InT* in, Out* out) {
  // Auto mode keys off the per-device slab: below the floor the task
  // graph's submit/run overhead beats the compute/copy overlap it buys.
  const bool serial = exec::resolve_mode(prm_.n / g_) == exec::Mode::Serial;
  if (!engines32_.empty()) {
    if (serial)
      execute_serial_t<float>(in, out);
    else
      execute_async_t<float>(in, out);
  } else {
    if (serial)
      execute_serial_t<Real>(in, out);
    else
      execute_async_t<Real>(in, out);
  }
}

template <typename InT>
template <typename ER>
void DistFmmFft<InT>::execute_serial_t(const InT* in, Out* out) {
  const index_t slab_n = prm_.n / g_;
  const int l = prm_.l(), b = prm_.b;
  auto& es = eset<ER>();
  // Per-(stage, device) heartbeats: a stall inside one engine call is
  // attributed to that exact stage loop by the watchdog.
  obs::health::PhaseSource hb("dist.FmmFft.serial");

  // Device-resident load: natural-order slab r is exactly engine r's
  // S-tensor interior.
  for (int r = 0; r < g_; ++r) {
    hb.phase("load", r);
    es[(std::size_t)r]->reset_stats();
    es[(std::size_t)r]->zero();
    detail::load_slab(*es[(std::size_t)r], in + r * slab_n, slab_n);
  }

  // Algorithm 1. Stage loops run over all devices (they execute these in
  // parallel on real hardware; execute_async does so here too — this path
  // is the strictly-ordered reference for A/B and bit-identity checks).
  {
    FMMFFT_SPAN("FMM");
    for (int r = 0; r < g_; ++r) {
      hb.phase("s2m", r);
      es[(std::size_t)r]->s2m();
    }
    hb.phase("halo-s");
    exchange_source_halos_t<ER>();
    for (int r = 0; r < g_; ++r) {
      hb.phase("s2t", r);
      es[(std::size_t)r]->s2t();
    }
    for (int lev = l - 1; lev >= b; --lev)
      for (int r = 0; r < g_; ++r) {
        hb.phase("m2m", r);
        es[(std::size_t)r]->m2m(lev);
      }
    for (int lev = l; lev > b; --lev) {
      hb.phase("halo-m");
      exchange_multipole_halos_t<ER>(lev);
      for (int r = 0; r < g_; ++r) {
        hb.phase("m2l", r);
        es[(std::size_t)r]->m2l_level(lev);
      }
    }
    hb.phase("allgather");
    allgather_base_t<ER>();
    for (int r = 0; r < g_; ++r) {
      hb.phase("m2l_base", r);
      es[(std::size_t)r]->m2l_base();
    }
    for (int r = 0; r < g_; ++r) {
      hb.phase("reduce", r);
      es[(std::size_t)r]->reduce();
    }
    for (int lev = b; lev < l; ++lev)
      for (int r = 0; r < g_; ++r) {
        hb.phase("l2l", r);
        es[(std::size_t)r]->l2l(lev);
      }
    for (int r = 0; r < g_; ++r) {
      hb.phase("l2t", r);
      es[(std::size_t)r]->l2t();
    }
  }

  for (int r = 0; r < g_; ++r) {
    hb.phase("post", r);
    post_slab_t<ER>(r);
  }

  // Distributed 2D FFT (one all-to-all), output in order.
  {
    FMMFFT_SPAN("FFT-2D");
    hb.phase("fft2d");
    std::vector<Out*> sp;
    for (auto& s : slabs_) sp.push_back(s.data());
    fft2d_.execute_slabs(sp, fabric_);
    for (int r = 0; r < g_; ++r) {
      hb.phase("writeback", r);
      std::memcpy(out + r * slab_n, sp[(std::size_t)r],
                  sizeof(Out) * static_cast<std::size_t>(slab_n));
    }
  }
}

template <typename InT>
template <typename ER>
void DistFmmFft<InT>::execute_async_t(const InT* in, Out* out) {
  // The native twin of dist::fmmfft_schedule: every engine stage becomes an
  // ordered task on its device's compute lane (so each engine executes
  // stages in exactly execute_serial's order — the bit-identity invariant),
  // and every fabric copy becomes a task on the directed pair's link lane,
  // gated only by the task that produced its payload. Device compute then
  // overlaps both neighbouring devices' stages and in-flight copies.
  const index_t slab_n = prm_.n / g_;
  const int l = prm_.l(), b = prm_.b;
  auto& es = eset<ER>();
  exec::DeviceLanes lanes(g_);
  exec::TaskGraph graph(lanes.count());
  graph.name_lanes(lanes);
  auto dev = [](const std::string& what, int r) { return what + " d" + std::to_string(r); };

  // LOAD: slab r is engine r's S interior.
  std::vector<exec::TaskId> load((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    auto* e = es[(std::size_t)r].get();
    const InT* src = in + r * slab_n;
    load[(std::size_t)r] = graph.submit(
        dev("load", r), {lanes.compute(r), /*ordered=*/true, "fmm"}, [e, src, slab_n] {
          e->reset_stats();
          e->zero();
          detail::load_slab(*e, src, slab_n);
        });
  }

  // COMM-S rides the link lanes while S2M runs: the halo boxes it writes
  // are disjoint from the interior S2M reads.
  const index_t nb = es[0]->local_leaves();
  const index_t selems = es[0]->source_box_elems();
  std::vector<std::vector<exec::TaskId>> s_arrive((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    const int left = (r + g_ - 1) % g_, right = (r + 1) % g_;
    auto* el = es[(std::size_t)left].get();
    auto* er = es[(std::size_t)r].get();
    auto* eg = es[(std::size_t)right].get();
    s_arrive[(std::size_t)r].push_back(graph.submit(
        "comm-s " + std::to_string(left) + "->" + std::to_string(r),
        {lanes.copy(left, r), /*ordered=*/true, "sync"},
        [this, el, er, left, r, nb, selems] {
          fabric_.send(left, r, el->source_box(nb - 1), er->source_box(-1), selems, "COMM-S");
        },
        {load[(std::size_t)left]}));
    s_arrive[(std::size_t)r].push_back(graph.submit(
        "comm-s " + std::to_string(right) + "->" + std::to_string(r),
        {lanes.copy(right, r), /*ordered=*/true, "sync"},
        [this, eg, er, right, r, nb, selems] {
          fabric_.send(right, r, eg->source_box(0), er->source_box(nb), selems, "COMM-S");
        },
        {load[(std::size_t)right]}));
  }

  std::vector<exec::TaskId> s2m_id((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    auto* e = es[(std::size_t)r].get();
    s2m_id[(std::size_t)r] = graph.submit(dev("s2m", r), {lanes.compute(r), /*ordered=*/true, "fmm"},
                                          [e] { e->s2m(); });
  }
  for (int r = 0; r < g_; ++r) {
    auto* e = es[(std::size_t)r].get();
    graph.submit(dev("s2t", r), {lanes.compute(r), /*ordered=*/true, "fmm"}, [e] { e->s2t(); },
                 s_arrive[(std::size_t)r]);
  }

  // M2M up-sweep; remember which task last wrote each multipole level so
  // the level's halo exchange can start the moment that level is built.
  std::vector<std::vector<exec::TaskId>> m2m_at((std::size_t)g_);  // per device, level l-1..b
  for (int lev = l - 1; lev >= b; --lev)
    for (int r = 0; r < g_; ++r) {
      auto* e = es[(std::size_t)r].get();
      m2m_at[(std::size_t)r].push_back(graph.submit(
          dev("m2m-" + std::to_string(lev), r), {lanes.compute(r), /*ordered=*/true, "fmm"},
          [e, lev] { e->m2m(lev); }));
    }
  auto level_writer = [&](int r, int lev) -> exec::TaskId {
    // Writer of M^lev on device r: S2M for the leaf level, else the M2M
    // that built lev (stored at index l-1-lev).
    if (lev == l) return s2m_id[(std::size_t)r];
    return m2m_at[(std::size_t)r][(std::size_t)(l - 1 - lev)];
  };

  // COMM-M per level, then the level's M2L once both halves arrived.
  std::vector<std::vector<exec::TaskId>> m_arrive((std::size_t)g_);
  const index_t eelems = 2 * es[0]->expansion_box_elems();
  for (int lev = l; lev > b; --lev) {
    for (int r = 0; r < g_; ++r) m_arrive[(std::size_t)r].clear();
    for (int r = 0; r < g_; ++r) {
      const int left = (r + g_ - 1) % g_, right = (r + 1) % g_;
      const index_t nbl = es[0]->local_boxes(lev);
      const std::string tag = "COMM-M" + std::to_string(lev);
      auto* el = es[(std::size_t)left].get();
      auto* er = es[(std::size_t)r].get();
      auto* eg = es[(std::size_t)right].get();
      m_arrive[(std::size_t)r].push_back(graph.submit(
          "comm-m" + std::to_string(lev) + " " + std::to_string(left) + "->" + std::to_string(r),
          {lanes.copy(left, r), /*ordered=*/true, "sync"},
          [this, el, er, left, r, lev, nbl, eelems, tag] {
            fabric_.send(left, r, el->multipole_box(lev, nbl - 2),
                         er->multipole_box(lev, -2), eelems, tag);
          },
          {level_writer(left, lev)}));
      m_arrive[(std::size_t)r].push_back(graph.submit(
          "comm-m" + std::to_string(lev) + " " + std::to_string(right) + "->" + std::to_string(r),
          {lanes.copy(right, r), /*ordered=*/true, "sync"},
          [this, eg, er, right, r, lev, nbl, eelems, tag] {
            fabric_.send(right, r, eg->multipole_box(lev, 0),
                         er->multipole_box(lev, nbl), eelems, tag);
          },
          {level_writer(right, lev)}));
    }
    for (int r = 0; r < g_; ++r) {
      auto* e = es[(std::size_t)r].get();
      graph.submit(dev("m2l-" + std::to_string(lev), r),
                   {lanes.compute(r), /*ordered=*/true, "fmm"}, [e, lev] { e->m2l_level(lev); },
                   m_arrive[(std::size_t)r]);
    }
  }

  // COMM-MB allgather (self-slab is already in place), then base M2L.
  const index_t bslab = es[0]->local_boxes(b) * es[0]->expansion_box_elems();
  std::vector<std::vector<exec::TaskId>> g_arrive((std::size_t)g_);
  for (int r = 0; r < g_; ++r)
    for (int rr = 0; rr < g_; ++rr) {
      if (r == rr) continue;
      auto* esrc = es[(std::size_t)r].get();
      auto* edst = es[(std::size_t)rr].get();
      g_arrive[(std::size_t)rr].push_back(graph.submit(
          "comm-mb " + std::to_string(r) + "->" + std::to_string(rr),
          {lanes.copy(r, rr), /*ordered=*/true, "sync"},
          [this, esrc, edst, r, rr, bslab] {
            fabric_.send(r, rr, esrc->multipole_box(prm_.b, esrc->box_offset(prm_.b)),
                         edst->multipole_box(prm_.b, 0) + r * bslab, bslab, "COMM-MB");
          },
          {level_writer(r, b)}));
    }
  for (int r = 0; r < g_; ++r) {
    auto* e = es[(std::size_t)r].get();
    graph.submit(dev("m2l-b", r), {lanes.compute(r), /*ordered=*/true, "fmm"},
                 [e] { e->m2l_base(); }, g_arrive[(std::size_t)r]);
    graph.submit(dev("reduce", r), {lanes.compute(r), /*ordered=*/true, "fmm"},
                 [e] { e->reduce(); });
  }
  for (int lev = b; lev < l; ++lev)
    for (int r = 0; r < g_; ++r) {
      auto* e = es[(std::size_t)r].get();
      graph.submit(dev("l2l-" + std::to_string(lev), r),
                   {lanes.compute(r), /*ordered=*/true, "fmm"}, [e, lev] { e->l2l(lev); });
    }
  std::vector<exec::TaskId> post((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    auto* e = es[(std::size_t)r].get();
    graph.submit(dev("l2t", r), {lanes.compute(r), /*ordered=*/true, "fmm"}, [e] { e->l2t(); });
    post[(std::size_t)r] = graph.submit(dev("post", r), {lanes.compute(r), /*ordered=*/true, "post"},
                                        [this, r] { post_slab_t<ER>(r); });
  }

  // Distributed 2D FFT rides the same graph; each device's slab store waits
  // only for that device's write-back.
  std::vector<Out*> sp;
  for (auto& s : slabs_) sp.push_back(s.data());
  const std::vector<exec::TaskId> terminal = fft2d_.submit_slabs(graph, lanes, sp, fabric_, post);
  for (int r = 0; r < g_; ++r) {
    Out* dst = out + r * slab_n;
    const Out* src = sp[(std::size_t)r];
    graph.submit(dev("store", r), {lanes.compute(r), /*ordered=*/true, "fft"},
                 [dst, src, slab_n] {
                   std::memcpy(dst, src, sizeof(Out) * static_cast<std::size_t>(slab_n));
                 },
                 {terminal[(std::size_t)r]});
  }

  graph.run();
}

template class DistFmmFft<float>;
template class DistFmmFft<double>;
template class DistFmmFft<std::complex<float>>;
template class DistFmmFft<std::complex<double>>;

}  // namespace fmmfft::dist
