#include "dist/dfft.hpp"

#include <cstring>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/math.hpp"
#include "dist/collectives.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace fmmfft::dist {
namespace {

template <typename T>
std::vector<std::complex<T>*> ptrs(std::vector<Buffer<std::complex<T>>>& slabs) {
  std::vector<std::complex<T>*> p;
  p.reserve(slabs.size());
  for (auto& s : slabs) p.push_back(s.data());
  return p;
}

}  // namespace

template <typename T>
DistFft1d<T>::DistFft1d(index_t n, int g)
    : n_(n),
      m_(index_t(1) << ((ilog2_exact(n) + 1) / 2)),
      p_(n / m_),
      g_(g),
      fabric_(g),
      plan_m_(m_),
      plan_p_(p_),
      twiddle_(n) {
  FMMFFT_CHECK_MSG(is_pow2(n) && n >= 4, "N must be a power of two >= 4");
  FMMFFT_CHECK_MSG(g >= 1 && m_ % g == 0 && p_ % g == 0,
                   "G must divide both FFT factors (N=" << n << ", G=" << g << ")");
  const index_t slab = n_ / g_;
  for (int r = 0; r < g_; ++r) {
    slab_a_.emplace_back(slab);
    slab_b_.emplace_back(slab);
  }
  // Twiddle diag [T_{P,M}]_ii = w_N^{(i mod M) * floor(i / M)}.
  for (index_t i = 0; i < n_; ++i) {
    const long double ang = -2.0L * pi_v<long double> *
                            (long double)((__int128)(i % m_) * (i / m_) % n_) / (long double)n_;
    twiddle_[i] = std::complex<T>((T)std::cos(ang), (T)std::sin(ang));
  }
}

template <typename T>
void DistFft1d<T>::execute(const std::complex<T>* in, std::complex<T>* out) {
  using Cx = std::complex<T>;
  const index_t slab = n_ / g_;
  auto a = ptrs(slab_a_);
  auto b = ptrs(slab_b_);

  // Device-resident input: scatter is a local placement, not traffic.
  for (int r = 0; r < g_; ++r) std::memcpy(a[(std::size_t)r], in + r * slab, sizeof(Cx) * slab);

  // (1) Transpose P-major -> M-major (all-to-all #1).
  all_to_all_permute_mp(fabric_, a, b, m_, p_, "A2A-1");
  // (2) P local FFTs of size M (P/G per device, contiguous blocks).
  {
    FMMFFT_SPAN("DFFT-M");
    for (int r = 0; r < g_; ++r)
      plan_m_.execute_batched(b[(std::size_t)r], p_ / g_, fft::Direction::Forward);
  }
  // (3) Twiddle scale.
  {
    FMMFFT_SPAN("DFFT-TW");
    for (int r = 0; r < g_; ++r)
      for (index_t i = 0; i < slab; ++i) b[(std::size_t)r][i] *= twiddle_[r * slab + i];
  }
  // (4) Transpose M-major -> P-major (all-to-all #2).
  all_to_all_permute_mp(fabric_, b, a, p_, m_, "A2A-2");
  // (5) M local FFTs of size P.
  {
    FMMFFT_SPAN("DFFT-P");
    for (int r = 0; r < g_; ++r)
      plan_p_.execute_batched(a[(std::size_t)r], m_ / g_, fft::Direction::Forward);
  }
  // (6) Transpose P-major -> M-major (all-to-all #3): in-order output.
  all_to_all_permute_mp(fabric_, a, b, m_, p_, "A2A-3");

  for (int r = 0; r < g_; ++r) std::memcpy(out + r * slab, b[(std::size_t)r], sizeof(Cx) * slab);
}

template <typename T>
Dist2dFft<T>::Dist2dFft(index_t m, index_t p, int g, model::Decomp decomp,
                        model::GridShape grid)
    : m_(m), p_(p), g_(g), fabric_(g), plan_m_(m), plan_p_(p) {
  FMMFFT_CHECK_MSG(m % g == 0 && p % g == 0, "G must divide both 2D FFT dimensions");
  const DecompChoice choice = resolve_decomp_2d(g, m, p, decomp, grid);
  decomp_ = choice.decomp;
  grid_ = choice.grid;
  decision_ = choice.decision;
  for (int r = 0; r < g_; ++r) scratch_.emplace_back(m_ * p_ / g_);
  if (decomp_ == model::Decomp::Pencil)
    for (int r = 0; r < g_; ++r) work_.emplace_back(m_ * p_ / g_);
}

template <typename T>
void Dist2dFft<T>::execute_slabs(const std::vector<std::complex<T>*>& slabs,
                                 sim::Fabric& fabric) {
  // Per-device slab of the m×p grid decides Auto, as in DistFmmFft.
  if (exec::resolve_mode(m_ * p_ / g_) == exec::Mode::Serial) {
    execute_slabs_serial(slabs, fabric);
    return;
  }
  exec::DeviceLanes lanes(g_);
  exec::TaskGraph graph(lanes.count());
  graph.name_lanes(lanes);
  submit_slabs(graph, lanes, slabs, fabric);
  graph.run();
}

template <typename T>
void Dist2dFft<T>::execute_slabs_serial(const std::vector<std::complex<T>*>& slabs,
                                        sim::Fabric& fabric) {
  using Cx = std::complex<T>;
  const index_t slab = m_ * p_ / g_;
  obs::health::PhaseSource hb("dist.2dfft.serial");
  // (a) M local FFTs of size P on the p-major data (M/G per device).
  {
    FMMFFT_SPAN("2DFFT-P");
    for (int r = 0; r < g_; ++r) {
      hb.phase("fft-p", r);
      plan_p_.execute_batched(slabs[(std::size_t)r], m_ / g_, fft::Direction::Forward);
    }
  }
  // (b) Π_{M,P} all-to-all — the FMM-FFT's single transpose, one-phase or
  // factorized through the row/column sub-communicators.
  hb.phase("a2a");
  auto sc = ptrs(scratch_);
  if (decomp_ == model::Decomp::Pencil) {
    auto wk = ptrs(work_);
    all_to_all_permute_mp_grid(fabric, slabs, sc, wk, m_, p_, grid_);
  } else {
    all_to_all_permute_mp(fabric, slabs, sc, m_, p_, "A2A-2D");
  }
  // (c) P local FFTs of size M (P/G per device).
  {
    FMMFFT_SPAN("2DFFT-M");
    for (int r = 0; r < g_; ++r) {
      hb.phase("fft-m", r);
      plan_m_.execute_batched(sc[(std::size_t)r], p_ / g_, fft::Direction::Forward);
    }
  }
  for (int r = 0; r < g_; ++r) {
    hb.phase("writeback", r);
    std::memcpy(slabs[(std::size_t)r], sc[(std::size_t)r], sizeof(Cx) * slab);
  }
}

template <typename T>
std::vector<exec::TaskId> Dist2dFft<T>::submit_slabs(exec::TaskGraph& graph,
                                                     const exec::DeviceLanes& lanes,
                                                     const std::vector<std::complex<T>*>& slabs,
                                                     sim::Fabric& fabric,
                                                     const std::vector<exec::TaskId>& ready) {
  using Cx = std::complex<T>;
  FMMFFT_CHECK((index_t)slabs.size() == g_);
  FMMFFT_CHECK(ready.empty() || (int)ready.size() == g_);
  if (decomp_ == model::Decomp::Pencil)
    return submit_slabs_pencil(graph, lanes, slabs, fabric, ready);
  const index_t mg = m_ / g_, pg = p_ / g_, slab = m_ * p_ / g_;
  // Same chunk granularity the simulated schedule pipelines with
  // (schedules.cpp chunk_count): enough chunks that a copy can start while
  // the remaining row FFTs still run, floored by the rows themselves.
  const index_t nc = std::min<index_t>(std::max<index_t>(2, g_), mg);
  const index_t step = (mg + nc - 1) / nc;
  auto sc = ptrs(scratch_);

  // (a) Row FFTs, one task per chunk of contiguous p-major rows. Rows are
  // independent lines, so chunks are unordered: order cannot change bits.
  std::vector<std::vector<exec::TaskId>> fftp((std::size_t)g_);
  for (int r = 0; r < g_; ++r)
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step, hi = std::min(mg, lo + step);
      if (lo >= hi) break;
      std::vector<exec::TaskId> deps;
      if (!ready.empty()) deps.push_back(ready[(std::size_t)r]);
      Cx* base = slabs[(std::size_t)r] + lo * p_;
      const index_t rows = hi - lo;
      fftp[(std::size_t)r].push_back(graph.submit(
          "fftp d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, base, rows] {
            FMMFFT_SPAN("2DFFT-P");
            plan_p_.execute_batched(base, rows, fft::Direction::Forward);
          },
          std::move(deps)));
    }

  // (b) The single all-to-all, chunk-pipelined and fused: for every
  // (src, dst) pair and row chunk, one strided gather-scatter on src's
  // compute lane writes the chunk straight into dst's scratch slab (the
  // simulator's one-address-space twin of peer-to-peer strided writes) —
  // no staging buffers, no memmove. The pair's link lane carries a record
  // task accounting the payload, so lane structure and fabric bytes are
  // unchanged from the staged path. A chunk's pack waits only on the row
  // FFTs that produced its rows; chunks write disjoint dst regions, so
  // they overlap freely.
  std::vector<std::vector<exec::TaskId>> arrived((std::size_t)g_);
  std::vector<std::vector<exec::TaskId>> packs_from((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    for (int rr = 0; rr < g_; ++rr) {
      for (index_t c = 0; c < nc; ++c) {
        const index_t lo = c * step, hi = std::min(mg, lo + step);
        if (lo >= hi) break;
        const index_t cnt = (hi - lo) * pg;
        const Cx* in = slabs[(std::size_t)r];
        Cx* out = sc[(std::size_t)rr];
        const std::string sfx = " " + std::to_string(r) + "->" + std::to_string(rr) + " c" +
                                std::to_string(c);
        const exec::TaskId pack = graph.submit(
            "pack" + sfx, {lanes.compute(r), /*ordered=*/false, "a2a"},
            [this, in, out, lo, hi, r, rr, mg, pg] {
              detail::a2a_pair_fused(in, out, r, rr, m_, p_, mg, pg, lo, hi);
            },
            {fftp[(std::size_t)r][(std::size_t)c]});
        const exec::TaskId copy = graph.submit(
            "copy" + sfx, {lanes.copy(r, rr), /*ordered=*/true, "a2a"},
            [&fabric, r, rr, cnt] {
              fabric.record(r, rr, double(cnt) * sizeof(Cx), "A2A-2D",
                            sizeof(real_of_t<Cx>) == 4);
            },
            {pack});
        packs_from[(std::size_t)r].push_back(pack);
        arrived[(std::size_t)rr].push_back(copy);
      }
    }
  }

  // (c) Column FFTs per device once every fragment of its scratch slab has
  // arrived (join meta-task), then the slab write-back — which must also
  // wait for every pack that still reads this device's slab (WAR hazard).
  std::vector<exec::TaskId> terminal((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    const exec::TaskId join =
        graph.submit("a2a-join d" + std::to_string(r),
                     {lanes.compute(r), /*ordered=*/false, "sync"}, [] {},
                     arrived[(std::size_t)r]);
    std::vector<exec::TaskId> fftm;
    const index_t stepm = (pg + nc - 1) / nc;
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * stepm, hi = std::min(pg, lo + stepm);
      if (lo >= hi) break;
      Cx* base = sc[(std::size_t)r] + lo * m_;
      const index_t rows = hi - lo;
      fftm.push_back(graph.submit(
          "fftm d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, base, rows] {
            FMMFFT_SPAN("2DFFT-M");
            plan_m_.execute_batched(base, rows, fft::Direction::Forward);
          },
          {join}));
    }
    std::vector<exec::TaskId> deps = fftm;
    deps.insert(deps.end(), packs_from[(std::size_t)r].begin(), packs_from[(std::size_t)r].end());
    Cx* dst = slabs[(std::size_t)r];
    const Cx* src = sc[(std::size_t)r];
    terminal[(std::size_t)r] = graph.submit(
        "writeback d" + std::to_string(r), {lanes.compute(r), /*ordered=*/true, "fft"},
        [dst, src, slab] { std::memcpy(dst, src, sizeof(Cx) * (std::size_t)slab); },
        std::move(deps));
  }
  return terminal;
}

template <typename T>
std::vector<exec::TaskId> Dist2dFft<T>::submit_slabs_pencil(
    exec::TaskGraph& graph, const exec::DeviceLanes& lanes,
    const std::vector<std::complex<T>*>& slabs, sim::Fabric& fabric,
    const std::vector<exec::TaskId>& ready) {
  using Cx = std::complex<T>;
  const int pr = grid_.pr, pc = grid_.pc;
  const index_t mg = m_ / g_, pg = p_ / g_, slab = m_ * p_ / g_;
  const index_t block = pg * mg;
  const index_t nc = std::min<index_t>(std::max<index_t>(2, g_), mg);
  const index_t step = (mg + nc - 1) / nc;
  const bool f32 = sizeof(T) == 4;
  auto sc = ptrs(scratch_);
  auto wk = ptrs(work_);

  // (a) Row FFT chunks, identical to the slab path.
  std::vector<std::vector<exec::TaskId>> fftp((std::size_t)g_);
  for (int r = 0; r < g_; ++r)
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step, hi = std::min(mg, lo + step);
      if (lo >= hi) break;
      std::vector<exec::TaskId> deps;
      if (!ready.empty()) deps.push_back(ready[(std::size_t)r]);
      Cx* base = slabs[(std::size_t)r] + lo * p_;
      const index_t rows = hi - lo;
      fftp[(std::size_t)r].push_back(graph.submit(
          "fftp d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, base, rows] {
            FMMFFT_SPAN("2DFFT-P");
            plan_p_.execute_batched(base, rows, fft::Direction::Forward);
          },
          std::move(deps)));
    }

  // (b) Row phase: sender s = (i,j) ships the chunks destined for grid
  // column jj to the intermediate t = (i,jj), same orientation (pure row
  // copies into t's work buffer). A chunk waits only on the row FFT that
  // produced its rows.
  std::vector<std::vector<exec::TaskId>> arrived_row((std::size_t)g_);
  std::vector<std::vector<exec::TaskId>> packs_row_from((std::size_t)g_);
  for (int s = 0; s < g_; ++s) {
    const int i = grid_.row_of(s), j = grid_.col_of(s);
    for (int jj = 0; jj < pc; ++jj) {
      const int t = grid_.device(i, jj);
      for (index_t c = 0; c < nc; ++c) {
        const index_t lo = c * step, hi = std::min(mg, lo + step);
        if (lo >= hi) break;
        const Cx* in = slabs[(std::size_t)s] + index_t(jj) * pg + lo * p_;
        Cx* out = wk[(std::size_t)t] + index_t(j) * pr * block + lo * pg;
        const index_t rows = hi - lo;
        const std::string sfx =
            " " + std::to_string(s) + "->" + std::to_string(t) + " c" + std::to_string(c);
        const exec::TaskId pack = graph.submit(
            "row-pack" + sfx, {lanes.compute(s), /*ordered=*/false, "a2a"},
            [this, in, out, rows, pg, pc, pr, block] {
              detail::a2a_pair_copy_strided(in, out, /*row_elems=*/pg, /*rows=*/rows,
                                            /*in_ld=*/p_, /*out_ld=*/pg,
                                            /*batch=*/index_t(pr),
                                            /*in_bstride=*/index_t(pc) * pg,
                                            /*out_bstride=*/block, detail::A2aScope::Row);
            },
            {fftp[(std::size_t)s][(std::size_t)c]});
        packs_row_from[(std::size_t)s].push_back(pack);
        arrived_row[(std::size_t)t].push_back(graph.submit(
            "row-copy" + sfx, {lanes.copy(s, t), /*ordered=*/true, "a2a"},
            [&fabric, s, t, rows, pg, pr, f32] {
              fabric.record(s, t, double(pr) * double(rows) * double(pg) * sizeof(Cx),
                            "A2A-ROW", f32);
            },
            {pack}));
      }
    }
  }

  // (c) Column phase: the intermediate t = (i,jj) scatters batch ii of
  // every sender column into d = (ii,jj)'s final cyclic layout (the only
  // transposing hop). It reads t's whole work buffer, so it waits on t's
  // row join; writes go to d's scratch slab, which nothing else touches.
  std::vector<exec::TaskId> row_join((std::size_t)g_);
  for (int t = 0; t < g_; ++t)
    row_join[(std::size_t)t] =
        graph.submit("row-join d" + std::to_string(t),
                     {lanes.compute(t), /*ordered=*/false, "sync"}, [] {},
                     arrived_row[(std::size_t)t]);
  std::vector<std::vector<exec::TaskId>> arrived_col((std::size_t)g_);
  for (int t = 0; t < g_; ++t) {
    const int i = grid_.row_of(t), jj = grid_.col_of(t);
    for (int ii = 0; ii < pr; ++ii) {
      const int d = grid_.device(ii, jj);
      const Cx* in = wk[(std::size_t)t] + index_t(ii) * block;
      Cx* out = sc[(std::size_t)d] + index_t(i) * pc * mg;
      const std::string sfx = " " + std::to_string(t) + "->" + std::to_string(d);
      const exec::TaskId pack = graph.submit(
          "col-pack" + sfx, {lanes.compute(t), /*ordered=*/false, "a2a"},
          [this, in, out, pg, mg, pc, pr, block] {
            detail::a2a_pair_fused_strided(in, out, /*nr=*/pg, /*nc=*/mg, /*in_ld=*/pg,
                                           /*out_ld=*/m_, /*batch=*/index_t(pc),
                                           /*in_bstride=*/index_t(pr) * block,
                                           /*out_bstride=*/mg, detail::A2aScope::Col);
          },
          {row_join[(std::size_t)t]});
      arrived_col[(std::size_t)d].push_back(graph.submit(
          "col-copy" + sfx, {lanes.copy(t, d), /*ordered=*/true, "a2a"},
          [&fabric, t, d, pc, block, f32] {
            fabric.record(t, d, double(pc) * double(block) * sizeof(Cx), "A2A-COL", f32);
          },
          {pack}));
    }
  }

  // (d) Column FFTs and write-back, as in the slab path: the write-back
  // also waits for every row pack still reading this device's slab (WAR).
  std::vector<exec::TaskId> terminal((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    const exec::TaskId join =
        graph.submit("col-join d" + std::to_string(r),
                     {lanes.compute(r), /*ordered=*/false, "sync"}, [] {},
                     arrived_col[(std::size_t)r]);
    std::vector<exec::TaskId> fftm;
    const index_t stepm = (pg + nc - 1) / nc;
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * stepm, hi = std::min(pg, lo + stepm);
      if (lo >= hi) break;
      Cx* base = sc[(std::size_t)r] + lo * m_;
      const index_t rows = hi - lo;
      fftm.push_back(graph.submit(
          "fftm d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, base, rows] {
            FMMFFT_SPAN("2DFFT-M");
            plan_m_.execute_batched(base, rows, fft::Direction::Forward);
          },
          {join}));
    }
    std::vector<exec::TaskId> deps = fftm;
    deps.insert(deps.end(), packs_row_from[(std::size_t)r].begin(),
                packs_row_from[(std::size_t)r].end());
    Cx* dst = slabs[(std::size_t)r];
    const Cx* src = sc[(std::size_t)r];
    terminal[(std::size_t)r] = graph.submit(
        "writeback d" + std::to_string(r), {lanes.compute(r), /*ordered=*/true, "fft"},
        [dst, src, slab] { std::memcpy(dst, src, sizeof(Cx) * (std::size_t)slab); },
        std::move(deps));
  }
  return terminal;
}

template <typename T>
void Dist2dFft<T>::execute(const std::complex<T>* in, std::complex<T>* out) {
  using Cx = std::complex<T>;
  const index_t slab = m_ * p_ / g_;
  std::vector<Buffer<Cx>> local;
  std::vector<Cx*> lp;
  for (int r = 0; r < g_; ++r) {
    local.emplace_back(slab);
    std::memcpy(local.back().data(), in + r * slab, sizeof(Cx) * slab);
  }
  for (auto& l : local) lp.push_back(l.data());
  execute_slabs(lp, fabric_);
  for (int r = 0; r < g_; ++r) std::memcpy(out + r * slab, lp[(std::size_t)r], sizeof(Cx) * slab);
}

template class DistFft1d<float>;
template class DistFft1d<double>;
template class Dist2dFft<float>;
template class Dist2dFft<double>;

}  // namespace fmmfft::dist
