#include "dist/dfft.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/math.hpp"
#include "dist/collectives.hpp"
#include "obs/obs.hpp"

namespace fmmfft::dist {
namespace {

template <typename T>
std::vector<std::complex<T>*> ptrs(std::vector<Buffer<std::complex<T>>>& slabs) {
  std::vector<std::complex<T>*> p;
  p.reserve(slabs.size());
  for (auto& s : slabs) p.push_back(s.data());
  return p;
}

}  // namespace

template <typename T>
DistFft1d<T>::DistFft1d(index_t n, int g)
    : n_(n),
      m_(index_t(1) << ((ilog2_exact(n) + 1) / 2)),
      p_(n / m_),
      g_(g),
      fabric_(g),
      plan_m_(m_),
      plan_p_(p_),
      twiddle_(n) {
  FMMFFT_CHECK_MSG(is_pow2(n) && n >= 4, "N must be a power of two >= 4");
  FMMFFT_CHECK_MSG(g >= 1 && m_ % g == 0 && p_ % g == 0,
                   "G must divide both FFT factors (N=" << n << ", G=" << g << ")");
  const index_t slab = n_ / g_;
  for (int r = 0; r < g_; ++r) {
    slab_a_.emplace_back(slab);
    slab_b_.emplace_back(slab);
  }
  // Twiddle diag [T_{P,M}]_ii = w_N^{(i mod M) * floor(i / M)}.
  for (index_t i = 0; i < n_; ++i) {
    const long double ang = -2.0L * pi_v<long double> *
                            (long double)((__int128)(i % m_) * (i / m_) % n_) / (long double)n_;
    twiddle_[i] = std::complex<T>((T)std::cos(ang), (T)std::sin(ang));
  }
}

template <typename T>
void DistFft1d<T>::execute(const std::complex<T>* in, std::complex<T>* out) {
  using Cx = std::complex<T>;
  const index_t slab = n_ / g_;
  auto a = ptrs(slab_a_);
  auto b = ptrs(slab_b_);

  // Device-resident input: scatter is a local placement, not traffic.
  for (int r = 0; r < g_; ++r) std::memcpy(a[(std::size_t)r], in + r * slab, sizeof(Cx) * slab);

  // (1) Transpose P-major -> M-major (all-to-all #1).
  all_to_all_permute_mp(fabric_, a, b, m_, p_, "A2A-1");
  // (2) P local FFTs of size M (P/G per device, contiguous blocks).
  {
    FMMFFT_SPAN("DFFT-M");
    for (int r = 0; r < g_; ++r)
      plan_m_.execute_batched(b[(std::size_t)r], p_ / g_, fft::Direction::Forward);
  }
  // (3) Twiddle scale.
  {
    FMMFFT_SPAN("DFFT-TW");
    for (int r = 0; r < g_; ++r)
      for (index_t i = 0; i < slab; ++i) b[(std::size_t)r][i] *= twiddle_[r * slab + i];
  }
  // (4) Transpose M-major -> P-major (all-to-all #2).
  all_to_all_permute_mp(fabric_, b, a, p_, m_, "A2A-2");
  // (5) M local FFTs of size P.
  {
    FMMFFT_SPAN("DFFT-P");
    for (int r = 0; r < g_; ++r)
      plan_p_.execute_batched(a[(std::size_t)r], m_ / g_, fft::Direction::Forward);
  }
  // (6) Transpose P-major -> M-major (all-to-all #3): in-order output.
  all_to_all_permute_mp(fabric_, a, b, m_, p_, "A2A-3");

  for (int r = 0; r < g_; ++r) std::memcpy(out + r * slab, b[(std::size_t)r], sizeof(Cx) * slab);
}

template <typename T>
Dist2dFft<T>::Dist2dFft(index_t m, index_t p, int g)
    : m_(m), p_(p), g_(g), fabric_(g), plan_m_(m), plan_p_(p) {
  FMMFFT_CHECK_MSG(m % g == 0 && p % g == 0, "G must divide both 2D FFT dimensions");
  for (int r = 0; r < g_; ++r) scratch_.emplace_back(m_ * p_ / g_);
}

template <typename T>
void Dist2dFft<T>::execute_slabs(const std::vector<std::complex<T>*>& slabs,
                                 sim::Fabric& fabric) {
  using Cx = std::complex<T>;
  const index_t slab = m_ * p_ / g_;
  // (a) M local FFTs of size P on the p-major data (M/G per device).
  {
    FMMFFT_SPAN("2DFFT-P");
    for (int r = 0; r < g_; ++r)
      plan_p_.execute_batched(slabs[(std::size_t)r], m_ / g_, fft::Direction::Forward);
  }
  // (b) Π_{M,P} all-to-all — the FMM-FFT's single transpose.
  auto sc = ptrs(scratch_);
  all_to_all_permute_mp(fabric, slabs, sc, m_, p_, "A2A-2D");
  // (c) P local FFTs of size M (P/G per device).
  {
    FMMFFT_SPAN("2DFFT-M");
    for (int r = 0; r < g_; ++r)
      plan_m_.execute_batched(sc[(std::size_t)r], p_ / g_, fft::Direction::Forward);
  }
  for (int r = 0; r < g_; ++r) std::memcpy(slabs[(std::size_t)r], sc[(std::size_t)r], sizeof(Cx) * slab);
}

template <typename T>
void Dist2dFft<T>::execute(const std::complex<T>* in, std::complex<T>* out) {
  using Cx = std::complex<T>;
  const index_t slab = m_ * p_ / g_;
  std::vector<Buffer<Cx>> local;
  std::vector<Cx*> lp;
  for (int r = 0; r < g_; ++r) {
    local.emplace_back(slab);
    std::memcpy(local.back().data(), in + r * slab, sizeof(Cx) * slab);
  }
  for (auto& l : local) lp.push_back(l.data());
  execute_slabs(lp, fabric_);
  for (int r = 0; r < g_; ++r) std::memcpy(out + r * slab, lp[(std::size_t)r], sizeof(Cx) * slab);
}

template class DistFft1d<float>;
template class DistFft1d<double>;
template class Dist2dFft<float>;
template class Dist2dFft<double>;

}  // namespace fmmfft::dist
