// Distributed FMM-FFT (Algorithm 1 across G simulated devices).
//
// Each device runs one fmm::Engine on its slab of leaf boxes; the halo
// exchanges (COMM S, COMM Mℓ), the base-level allgather (COMM M_B) and the
// 2D FFT's single all-to-all go through the fabric ledger. Numerical
// results are exact (identical to the single-node pipeline up to floating
// point associativity); timing comes from the schedule in
// dist/schedules.hpp simulated under an architecture model.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/fmmfft.hpp"
#include "dist/dfft.hpp"
#include "fmm/engine.hpp"
#include "fmm/params.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

template <typename InT>
class DistFmmFft {
 public:
  using Real = real_of_t<InT>;
  using Out = std::complex<Real>;

  DistFmmFft(const fmm::Params& prm, int g);

  const fmm::Params& params() const { return prm_; }
  int num_devices() const { return g_; }

  /// Host-staged execute: out = F_N · in, both length N. Driver choice via
  /// exec::resolve_mode on the per-device slab size (N/G): explicit
  /// Serial/Async (FMMFFT_EXEC or exec::ScopedMode) pass through, Auto —
  /// the default — picks Serial below the work floor where the graph's
  /// overhead outweighs overlap. Both paths produce bit-identical output
  /// at any worker count.
  void execute(const InT* in, Out* out);

  const sim::Fabric& fabric() const { return fabric_; }
  sim::Fabric& fabric() { return fabric_; }

  /// Stats of device `r`'s engine for the most recent execute().
  const std::vector<fmm::StageStats>& engine_stats(int r) const {
    return engines_[(std::size_t)r]->stats();
  }

 private:
  void execute_serial(const InT* in, Out* out);
  void execute_async(const InT* in, Out* out);
  /// POST for device r (§4.9 line 15): one pass from the engine's T tensor
  /// into the 2D-FFT slab.
  void post_slab(int r);
  void exchange_source_halos();
  void exchange_multipole_halos(int level);
  void allgather_base();

  fmm::Params prm_;
  int g_;
  int c_;
  sim::Fabric fabric_;
  std::vector<std::unique_ptr<fmm::Engine<Real>>> engines_;
  Dist2dFft<Real> fft2d_;
  std::vector<Buffer<Out>> slabs_;  // post-processed data fed to the 2D FFT
  std::vector<Out> rho_;
};

}  // namespace fmmfft::dist
