// Distributed FMM-FFT (Algorithm 1 across G simulated devices).
//
// Each device runs one fmm::Engine on its slab of leaf boxes; the halo
// exchanges (COMM S, COMM Mℓ), the base-level allgather (COMM M_B) and the
// 2D FFT's single all-to-all go through the fabric ledger. Numerical
// results are exact (identical to the single-node pipeline up to floating
// point associativity); timing comes from the schedule in
// dist/schedules.hpp simulated under an architecture model.
#pragma once

#include <complex>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/types.hpp"
#include "core/fmmfft.hpp"
#include "dist/dfft.hpp"
#include "fmm/engine.hpp"
#include "fmm/params.hpp"
#include "fmm/precision.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

template <typename InT>
class DistFmmFft {
 public:
  using Real = real_of_t<InT>;
  using Out = std::complex<Real>;

  /// `prec` as in core::FmmFft: Mixed runs every engine (and with it the
  /// COMM-S/COMM-Mℓ/COMM-MB payloads) in fp32 under an fp64 shell; the 2D
  /// FFT, its all-to-all and the output stay at the shell width.
  DistFmmFft(const fmm::Params& prm, int g,
             fmm::Precision prec = fmm::default_precision());

  const fmm::Params& params() const { return prm_; }
  int num_devices() const { return g_; }
  fmm::Precision precision() const { return prec_; }

  /// Host-staged execute: out = F_N · in, both length N. Driver choice via
  /// exec::resolve_mode on the per-device slab size (N/G): explicit
  /// Serial/Async (FMMFFT_EXEC or exec::ScopedMode) pass through, Auto —
  /// the default — picks Serial below the work floor where the graph's
  /// overhead outweighs overlap. Both paths produce bit-identical output
  /// at any worker count.
  void execute(const InT* in, Out* out);

  const sim::Fabric& fabric() const { return fabric_; }
  sim::Fabric& fabric() { return fabric_; }

  /// The 2D-FFT stage driver (to inspect its slab/pencil decomposition).
  const Dist2dFft<Real>& fft2d() const { return fft2d_; }

  /// Stats of device `r`'s engine for the most recent execute().
  const std::vector<fmm::StageStats>& engine_stats(int r) const {
    return engines32_.empty() ? engines_[(std::size_t)r]->stats()
                              : engines32_[(std::size_t)r]->stats();
  }

 private:
  // The whole FMM side is templated on the engine real ER: Real for the
  // plain pipeline, float for Mixed-under-fp64. The shell (slabs, 2D FFT,
  // output) is always Real.
  template <typename ER>
  std::vector<std::unique_ptr<fmm::Engine<ER>>>& eset() {
    if constexpr (std::is_same_v<ER, Real>)
      return engines_;
    else
      return engines32_;
  }
  template <typename ER>
  void execute_serial_t(const InT* in, Out* out);
  template <typename ER>
  void execute_async_t(const InT* in, Out* out);
  /// POST for device r (§4.9 line 15): one pass from the engine's T tensor
  /// into the 2D-FFT slab, widening to the shell precision on load.
  template <typename ER>
  void post_slab_t(int r);
  template <typename ER>
  void exchange_source_halos_t();
  template <typename ER>
  void exchange_multipole_halos_t(int level);
  template <typename ER>
  void allgather_base_t();

  fmm::Params prm_;
  int g_;
  int c_;
  fmm::Precision prec_;
  sim::Fabric fabric_;
  std::vector<std::unique_ptr<fmm::Engine<Real>>> engines_;
  std::vector<std::unique_ptr<fmm::Engine<float>>> engines32_;  // Mixed only
  Dist2dFft<Real> fft2d_;
  std::vector<Buffer<Out>> slabs_;  // post-processed data fed to the 2D FFT
  std::vector<Out> rho_;
};

}  // namespace fmmfft::dist
