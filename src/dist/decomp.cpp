#include "dist/decomp.hpp"

#include "model/arch.hpp"
#include "model/counts.hpp"
#include "obs/env.hpp"
#include "obs/obs.hpp"

namespace fmmfft::dist {
namespace {

/// Layer in the env knobs: an explicit constructor argument wins, otherwise
/// FMMFFT_DECOMP / FMMFFT_GRID, otherwise Auto / unspecified.
model::Decomp env_decomp(model::Decomp requested) {
  if (requested != model::Decomp::Auto) return requested;
  const char* v = obs::env::get("FMMFFT_DECOMP");
  return v && *v ? model::parse_decomp(v) : model::Decomp::Auto;
}

model::GridShape env_grid(model::GridShape requested) {
  if (requested.specified()) return requested;
  const char* v = obs::env::get("FMMFFT_GRID");
  return v && *v ? model::parse_grid(v) : model::GridShape{};
}

/// The canonical modeling system for autotuned decisions (the simulator's
/// default P100/NVLink fabric). The decision only depends on relative
/// slab-vs-pencil exchange shape, not absolute wall times.
DecompChoice finalize(const model::DecompDecision& decision) {
  DecompChoice out;
  out.decision = decision;
  out.decomp = decision.chosen;
  if (decision.chosen == model::Decomp::Pencil)
    out.grid = ProcGrid{decision.grid.pr, decision.grid.pc};
  if (decision.model_decided && obs::metrics_enabled()) {
    auto& m = obs::Metrics::global();
    m.gauge("decomp.auto.pencil").set(decision.chosen == model::Decomp::Pencil ? 1.0 : 0.0);
    m.gauge("decomp.auto.pr").set(double(decision.grid.pr));
    m.gauge("decomp.auto.pc").set(double(decision.grid.pc));
    m.gauge("decomp.auto.slab_seconds").set(decision.slab_seconds);
    m.gauge("decomp.auto.pencil_seconds").set(decision.pencil_seconds);
  }
  return out;
}

}  // namespace

DecompChoice resolve_decomp_2d(int g, index_t m, index_t p, model::Decomp requested,
                               model::GridShape requested_grid) {
  const model::Workload w{m * p, /*is_complex=*/true, /*is_double=*/true};
  return finalize(model::choose_decomp_2d(env_decomp(requested), env_grid(requested_grid), m,
                                          p, g, w, model::p100_nvlink(g)));
}

DecompChoice resolve_decomp_3d(int g, index_t n0, index_t n1, index_t n2,
                               model::Decomp requested, model::GridShape requested_grid) {
  const model::Workload w{n0 * n1 * n2, /*is_complex=*/true, /*is_double=*/true};
  return finalize(model::choose_decomp(env_decomp(requested), env_grid(requested_grid), n0,
                                       n1, n2, g, w, model::p100_nvlink(g)));
}

}  // namespace fmmfft::dist
