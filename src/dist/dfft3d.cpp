#include "dist/dfft3d.hpp"

#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/math.hpp"
#include "dist/collectives.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace fmmfft::dist {
namespace {

template <typename T>
std::vector<std::complex<T>*> ptrs(std::vector<Buffer<std::complex<T>>>& bufs) {
  std::vector<std::complex<T>*> p;
  p.reserve(bufs.size());
  for (auto& b : bufs) p.push_back(b.data());
  return p;
}

}  // namespace

template <typename T>
Dist3dFft<T>::Dist3dFft(index_t n0, index_t n1, index_t n2, int g, model::Decomp decomp,
                        model::GridShape grid)
    : n0_(n0), n1_(n1), n2_(n2), g_(g), fabric_(g), plan0_(n0), plan1_(n1), plan2_(n2) {
  FMMFFT_CHECK_MSG(is_pow2(n0) && is_pow2(n1) && is_pow2(n2),
                   "3D FFT extents must be powers of two");
  FMMFFT_CHECK_MSG(g >= 1, "need at least one device");
  const DecompChoice choice = resolve_decomp_3d(g, n0, n1, n2, decomp, grid);
  decomp_ = choice.decomp;
  grid_ = choice.grid;
  decision_ = choice.decision;
  const index_t local = n0_ * n1_ * n2_ / g_;
  for (int r = 0; r < g_; ++r) {
    buf_a_.emplace_back(local);
    buf_b_.emplace_back(local);
  }
}

// ---------------------------------------------------------------------------
// Host staging. Residency placement, not fabric traffic (as in DistFft1d).

template <typename T>
void Dist3dFft<T>::scatter(const std::complex<T>* in) {
  using Cx = std::complex<T>;
  if (decomp_ == model::Decomp::Slab) {
    const index_t slab = n0_ * n1_ * n2_ / g_;
    for (int r = 0; r < g_; ++r)
      std::memcpy(buf_a_[(std::size_t)r].data(), in + r * slab, sizeof(Cx) * slab);
    return;
  }
  // x-pencils: device (i, j) holds all i0, i1-block j, i2-block i.
  const index_t n1pc = n1_ / grid_.pc, n2pr = n2_ / grid_.pr;
  for (int d = 0; d < g_; ++d) {
    const int i = grid_.row_of(d), j = grid_.col_of(d);
    Cx* dst = buf_a_[(std::size_t)d].data();
    for (index_t i2 = 0; i2 < n2pr; ++i2)
      for (index_t i1 = 0; i1 < n1pc; ++i1)
        std::memcpy(dst + n0_ * (i1 + n1pc * i2),
                    in + n0_ * ((j * n1pc + i1) + n1_ * (i * n2pr + i2)),
                    sizeof(Cx) * (std::size_t)n0_);
  }
}

template <typename T>
void Dist3dFft<T>::gather(std::complex<T>* out) const {
  using Cx = std::complex<T>;
  if (decomp_ == model::Decomp::Slab) {
    // After the global exchange device r owns the μ = i1 + n1·i0 range
    // [r·(n0·n1/G), ...) in z[i2 + n2·μ] order — one contiguous block.
    const index_t slab = n0_ * n1_ * n2_ / g_;
    for (int r = 0; r < g_; ++r)
      std::memcpy(out + r * slab, buf_a_[(std::size_t)r].data(), sizeof(Cx) * slab);
    return;
  }
  // z-pencils: device (ii, jj) holds all i2, i1-block ii, i0-block jj.
  const index_t n0pc = n0_ / grid_.pc, n1pr = n1_ / grid_.pr;
  for (int d = 0; d < g_; ++d) {
    const int ii = grid_.row_of(d), jj = grid_.col_of(d);
    const Cx* src = buf_a_[(std::size_t)d].data();
    for (index_t i0 = 0; i0 < n0pc; ++i0)
      for (index_t i1 = 0; i1 < n1pr; ++i1)
        std::memcpy(out + n2_ * ((ii * n1pr + i1) + n1_ * (jj * n0pc + i0)),
                    src + n2_ * (i1 + n1pr * i0), sizeof(Cx) * (std::size_t)n2_);
  }
}

// ---------------------------------------------------------------------------
// Serial paths.

template <typename T>
void Dist3dFft<T>::execute_slab_serial() {
  obs::health::PhaseSource hb("dist.3dfft.slab");
  auto a = ptrs(buf_a_);
  auto b = ptrs(buf_b_);
  const index_t n2g = n2_ / g_, plane = n0_ * n1_;
  {
    FMMFFT_SPAN("3DFFT-0");
    for (int r = 0; r < g_; ++r) {
      hb.phase("fft0", r);
      plan0_.execute_batched(a[(std::size_t)r], n1_ * n2g, fft::Direction::Forward);
    }
  }
  {
    // Local reorientation to i1-fastest, one plane at a time.
    FMMFFT_SPAN("3DFFT-T01");
    for (int r = 0; r < g_; ++r) {
      hb.phase("transpose", r);
      for (index_t t = 0; t < n2g; ++t)
        transpose_blocked(a[(std::size_t)r] + t * plane, b[(std::size_t)r] + t * plane, n0_, n1_);
    }
  }
  {
    FMMFFT_SPAN("3DFFT-1");
    for (int r = 0; r < g_; ++r) {
      hb.phase("fft1", r);
      plan1_.execute_batched(b[(std::size_t)r], n0_ * n2g, fft::Direction::Forward);
    }
  }
  // The one G-wide exchange: Π_{M=n2, P=n0·n1} on the μ = i1 + n1·i0 index.
  hb.phase("a2a");
  all_to_all_permute_mp(fabric_, b, a, n2_, plane, "A2A-3D");
  {
    FMMFFT_SPAN("3DFFT-2");
    for (int r = 0; r < g_; ++r) {
      hb.phase("fft2", r);
      plan2_.execute_batched(a[(std::size_t)r], plane / g_, fft::Direction::Forward);
    }
  }
}

template <typename T>
void Dist3dFft<T>::execute_pencil_serial() {
  using Cx = std::complex<T>;
  obs::health::PhaseSource hb("dist.3dfft.pencil");
  auto a = ptrs(buf_a_);
  auto b = ptrs(buf_b_);
  const int pr = grid_.pr, pc = grid_.pc;
  const index_t n0pc = n0_ / pc, n1pc = n1_ / pc, n1pr = n1_ / pr, n2pr = n2_ / pr;
  const bool f32 = sizeof(T) == 4;
  {
    FMMFFT_SPAN("3DFFT-0");
    for (int d = 0; d < g_; ++d) {
      hb.phase("fft0", d);
      plan0_.execute_batched(a[(std::size_t)d], n1pc * n2pr, fft::Direction::Forward);
    }
  }
  // Row sub-communicator exchange: x-pencils → y-pencils within each grid
  // row. Pair (i,j) → (i,jj) ships i0-block jj for every local (i1, i2):
  // per i2 plane this is exactly the Π_{n1,n0} fused pair message.
  hb.phase("a2a-row");
  parallel_for(
      index_t(g_) * pc,
      [&](index_t q0, index_t q1) {
        for (index_t q = q0; q < q1; ++q) {
          const int s = int(q / pc), jj = int(q % pc);
          const int i = grid_.row_of(s), j = grid_.col_of(s);
          const int t = grid_.device(i, jj);
          detail::a2a_pair_fused_strided(a[(std::size_t)s] + index_t(jj) * n0pc,
                                         b[(std::size_t)t] + index_t(j) * n1pc,
                                         /*nr=*/n0pc, /*nc=*/n1pc, /*in_ld=*/n0_,
                                         /*out_ld=*/n1_, /*batch=*/n2pr,
                                         /*in_bstride=*/n0_ * n1pc,
                                         /*out_bstride=*/n1_ * n0pc, detail::A2aScope::Row);
          fabric_.record(s, t, double(n2pr) * double(n0pc) * double(n1pc) * sizeof(Cx),
                         "A2A-ROW", f32);
        }
      },
      /*grain=*/1);
  {
    FMMFFT_SPAN("3DFFT-1");
    for (int d = 0; d < g_; ++d) {
      hb.phase("fft1", d);
      plan1_.execute_batched(b[(std::size_t)d], n0pc * n2pr, fft::Direction::Forward);
    }
  }
  // Column sub-communicator exchange: y-pencils → z-pencils within each
  // grid column. Pair (i,jj) → (ii,jj) ships i1-block ii for every local
  // (i0, i2), transposing (i1, i2) per i0 line.
  hb.phase("a2a-col");
  parallel_for(
      index_t(g_) * pr,
      [&](index_t q0, index_t q1) {
        for (index_t q = q0; q < q1; ++q) {
          const int t = int(q / pr), ii = int(q % pr);
          const int i = grid_.row_of(t);
          const int jj = grid_.col_of(t);
          const int d = grid_.device(ii, jj);
          detail::a2a_pair_fused_strided(b[(std::size_t)t] + index_t(ii) * n1pr,
                                         a[(std::size_t)d] + index_t(i) * n2pr,
                                         /*nr=*/n1pr, /*nc=*/n2pr, /*in_ld=*/n1_ * n0pc,
                                         /*out_ld=*/n2_, /*batch=*/n0pc,
                                         /*in_bstride=*/n1_,
                                         /*out_bstride=*/n2_ * n1pr, detail::A2aScope::Col);
          fabric_.record(t, d, double(n0pc) * double(n1pr) * double(n2pr) * sizeof(Cx),
                         "A2A-COL", f32);
        }
      },
      /*grain=*/1);
  {
    FMMFFT_SPAN("3DFFT-2");
    for (int d = 0; d < g_; ++d) {
      hb.phase("fft2", d);
      plan2_.execute_batched(a[(std::size_t)d], n0pc * n1pr, fft::Direction::Forward);
    }
  }
}

// ---------------------------------------------------------------------------
// Async submission.

template <typename T>
std::vector<exec::TaskId> Dist3dFft<T>::submit_slab(exec::TaskGraph& graph,
                                                    const exec::DeviceLanes& lanes) {
  using Cx = std::complex<T>;
  auto a = ptrs(buf_a_);
  auto b = ptrs(buf_b_);
  const index_t n2g = n2_ / g_, plane = n0_ * n1_, pg01 = plane / g_;
  const index_t nc = std::min<index_t>(std::max<index_t>(2, g_), n2g);
  const index_t step = (n2g + nc - 1) / nc;
  const bool f32 = sizeof(T) == 4;

  // Per-chunk fft0 → reorient → fft1 over each device's local i2 planes.
  std::vector<std::vector<exec::TaskId>> fft1((std::size_t)g_), trans((std::size_t)g_);
  for (int r = 0; r < g_; ++r)
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step, hi = std::min(n2g, lo + step);
      if (lo >= hi) break;
      Cx* ap = a[(std::size_t)r] + lo * plane;
      Cx* bp = b[(std::size_t)r] + lo * plane;
      const index_t planes = hi - lo;
      const exec::TaskId f0 = graph.submit(
          "fft0 d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, ap, planes] {
            FMMFFT_SPAN("3DFFT-0");
            plan0_.execute_batched(ap, planes * n1_, fft::Direction::Forward);
          },
          {});
      const exec::TaskId tr = graph.submit(
          "t01 d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "transpose"},
          [this, ap, bp, planes, plane] {
            FMMFFT_SPAN("3DFFT-T01");
            // Same per-plane traffic records as the serial transpose_blocked.
            for (index_t t = 0; t < planes; ++t) {
              FMMFFT_TRAFFIC_RW("transpose", double(plane) * sizeof(Cx),
                                double(plane) * sizeof(Cx), 0);
              fmmfft::detail::transpose_strided_serial(ap + t * plane, n0_, bp + t * plane,
                                                       n1_, n0_, n1_);
            }
          },
          {f0});
      trans[(std::size_t)r].push_back(tr);
      fft1[(std::size_t)r].push_back(graph.submit(
          "fft1 d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, bp, planes] {
            FMMFFT_SPAN("3DFFT-1");
            plan1_.execute_batched(bp, planes * n0_, fft::Direction::Forward);
          },
          {tr}));
    }

  // WAR gate: a pack scattering into device rr's A slab must wait until
  // rr's reorientation chunks have finished reading it.
  std::vector<exec::TaskId> war((std::size_t)g_);
  for (int r = 0; r < g_; ++r)
    war[(std::size_t)r] =
        graph.submit("t01-done d" + std::to_string(r),
                     {lanes.compute(r), /*ordered=*/false, "sync"}, [] {},
                     trans[(std::size_t)r]);

  // The one G-wide exchange, chunk-pipelined exactly like Dist2dFft: a
  // chunk's fused scatter waits only on the fft1 chunk that produced its
  // planes (plus the receiver's WAR gate); the pair's link lane carries
  // the accounting task.
  std::vector<std::vector<exec::TaskId>> arrived((std::size_t)g_);
  for (int r = 0; r < g_; ++r)
    for (int rr = 0; rr < g_; ++rr)
      for (index_t c = 0; c < nc; ++c) {
        const index_t lo = c * step, hi = std::min(n2g, lo + step);
        if (lo >= hi) break;
        const Cx* in = b[(std::size_t)r];
        Cx* out = a[(std::size_t)rr];
        const index_t cnt = (hi - lo) * pg01;
        const std::string sfx =
            " " + std::to_string(r) + "->" + std::to_string(rr) + " c" + std::to_string(c);
        const exec::TaskId pack = graph.submit(
            "pack" + sfx, {lanes.compute(r), /*ordered=*/false, "a2a"},
            [this, in, out, r, rr, lo, hi, n2g, pg01, plane] {
              detail::a2a_pair_fused(in, out, r, rr, n2_, plane, n2g, pg01, lo, hi);
            },
            {fft1[(std::size_t)r][(std::size_t)c], war[(std::size_t)rr]});
        arrived[(std::size_t)rr].push_back(graph.submit(
            "copy" + sfx, {lanes.copy(r, rr), /*ordered=*/true, "a2a"},
            [this, r, rr, cnt, f32] {
              fabric_.record(r, rr, double(cnt) * sizeof(Cx), "A2A-3D", f32);
            },
            {pack}));
      }

  // fft2 per device once its whole z slab has arrived.
  std::vector<exec::TaskId> terminal((std::size_t)g_);
  for (int r = 0; r < g_; ++r) {
    const exec::TaskId join =
        graph.submit("a2a-join d" + std::to_string(r),
                     {lanes.compute(r), /*ordered=*/false, "sync"}, [] {},
                     arrived[(std::size_t)r]);
    std::vector<exec::TaskId> fft2;
    const index_t step2 = (pg01 + nc - 1) / nc;
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step2, hi = std::min(pg01, lo + step2);
      if (lo >= hi) break;
      Cx* base = a[(std::size_t)r] + lo * n2_;
      const index_t lines = hi - lo;
      fft2.push_back(graph.submit(
          "fft2 d" + std::to_string(r) + " c" + std::to_string(c),
          {lanes.compute(r), /*ordered=*/false, "fft"},
          [this, base, lines] {
            FMMFFT_SPAN("3DFFT-2");
            plan2_.execute_batched(base, lines, fft::Direction::Forward);
          },
          {join}));
    }
    terminal[(std::size_t)r] =
        graph.submit("done d" + std::to_string(r),
                     {lanes.compute(r), /*ordered=*/false, "sync"}, [] {}, std::move(fft2));
  }
  return terminal;
}

template <typename T>
std::vector<exec::TaskId> Dist3dFft<T>::submit_pencil(exec::TaskGraph& graph,
                                                      const exec::DeviceLanes& lanes) {
  using Cx = std::complex<T>;
  auto a = ptrs(buf_a_);
  auto b = ptrs(buf_b_);
  const int pr = grid_.pr, pc = grid_.pc;
  const index_t n0pc = n0_ / pc, n1pc = n1_ / pc, n1pr = n1_ / pr, n2pr = n2_ / pr;
  const index_t nc = std::min<index_t>(std::max<index_t>(2, g_), n2pr);
  const index_t step = (n2pr + nc - 1) / nc;
  const bool f32 = sizeof(T) == 4;

  // (a) fft0 chunks over local i2 planes of the x-pencils.
  std::vector<std::vector<exec::TaskId>> fft0((std::size_t)g_);
  for (int d = 0; d < g_; ++d)
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step, hi = std::min(n2pr, lo + step);
      if (lo >= hi) break;
      Cx* base = a[(std::size_t)d] + lo * n0_ * n1pc;
      const index_t planes = hi - lo;
      fft0[(std::size_t)d].push_back(graph.submit(
          "fft0 d" + std::to_string(d) + " c" + std::to_string(c),
          {lanes.compute(d), /*ordered=*/false, "fft"},
          [this, base, planes, n1pc] {
            FMMFFT_SPAN("3DFFT-0");
            plan0_.execute_batched(base, planes * n1pc, fft::Direction::Forward);
          },
          {}));
    }

  // (b) Row-phase packs, chunked over the same i2 planes so a pair's first
  // chunks ship while the sender's remaining fft0 chunks still run.
  std::vector<std::vector<exec::TaskId>> arrived_row((std::size_t)g_);
  std::vector<std::vector<exec::TaskId>> packs_row_from((std::size_t)g_);
  for (int s = 0; s < g_; ++s) {
    const int i = grid_.row_of(s), j = grid_.col_of(s);
    for (int jj = 0; jj < pc; ++jj) {
      const int t = grid_.device(i, jj);
      for (index_t c = 0; c < nc; ++c) {
        const index_t lo = c * step, hi = std::min(n2pr, lo + step);
        if (lo >= hi) break;
        const Cx* in = a[(std::size_t)s] + index_t(jj) * n0pc + lo * n0_ * n1pc;
        Cx* out = b[(std::size_t)t] + index_t(j) * n1pc + lo * n1_ * n0pc;
        const index_t planes = hi - lo;
        const std::string sfx =
            " " + std::to_string(s) + "->" + std::to_string(t) + " c" + std::to_string(c);
        const exec::TaskId pack = graph.submit(
            "row-pack" + sfx, {lanes.compute(s), /*ordered=*/false, "a2a"},
            [this, in, out, planes, n0pc, n1pc] {
              detail::a2a_pair_fused_strided(in, out, /*nr=*/n0pc, /*nc=*/n1pc,
                                             /*in_ld=*/n0_, /*out_ld=*/n1_, /*batch=*/planes,
                                             /*in_bstride=*/n0_ * n1pc,
                                             /*out_bstride=*/n1_ * n0pc,
                                             detail::A2aScope::Row);
            },
            {fft0[(std::size_t)s][(std::size_t)c]});
        packs_row_from[(std::size_t)s].push_back(pack);
        arrived_row[(std::size_t)t].push_back(graph.submit(
            "row-copy" + sfx, {lanes.copy(s, t), /*ordered=*/true, "a2a"},
            [this, s, t, planes, n0pc, n1pc, f32] {
              fabric_.record(s, t, double(planes) * double(n0pc) * double(n1pc) * sizeof(Cx),
                             "A2A-ROW", f32);
            },
            {pack}));
      }
    }
  }

  // (c) fft1 chunks on the y-pencils once every row fragment arrived, plus
  // the WAR gate for the column phase scattering back into the A buffers.
  std::vector<exec::TaskId> fft1_join((std::size_t)g_), war((std::size_t)g_);
  const index_t lines1 = n0pc * n2pr;
  const index_t step1 = (lines1 + nc - 1) / nc;
  for (int d = 0; d < g_; ++d) {
    const exec::TaskId row_join =
        graph.submit("row-join d" + std::to_string(d),
                     {lanes.compute(d), /*ordered=*/false, "sync"}, [] {},
                     arrived_row[(std::size_t)d]);
    std::vector<exec::TaskId> fft1;
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step1, hi = std::min(lines1, lo + step1);
      if (lo >= hi) break;
      Cx* base = b[(std::size_t)d] + lo * n1_;
      const index_t lines = hi - lo;
      fft1.push_back(graph.submit(
          "fft1 d" + std::to_string(d) + " c" + std::to_string(c),
          {lanes.compute(d), /*ordered=*/false, "fft"},
          [this, base, lines] {
            FMMFFT_SPAN("3DFFT-1");
            plan1_.execute_batched(base, lines, fft::Direction::Forward);
          },
          {row_join}));
    }
    fft1_join[(std::size_t)d] =
        graph.submit("fft1-join d" + std::to_string(d),
                     {lanes.compute(d), /*ordered=*/false, "sync"}, [] {}, std::move(fft1));
    war[(std::size_t)d] = graph.submit("row-read-done d" + std::to_string(d),
                                       {lanes.compute(d), /*ordered=*/false, "sync"}, [] {},
                                       packs_row_from[(std::size_t)d]);
  }

  // (d) Column-phase packs: one fused pair message (i,jj) → (ii,jj); the
  // column transpose reads i0-strided lines of the whole y-pencil, so it
  // waits on the sender's fft1 join and the receiver's WAR gate.
  std::vector<std::vector<exec::TaskId>> arrived_col((std::size_t)g_);
  for (int t = 0; t < g_; ++t) {
    const int i = grid_.row_of(t), jj = grid_.col_of(t);
    for (int ii = 0; ii < pr; ++ii) {
      const int d = grid_.device(ii, jj);
      const Cx* in = b[(std::size_t)t] + index_t(ii) * n1pr;
      Cx* out = a[(std::size_t)d] + index_t(i) * n2pr;
      const std::string sfx = " " + std::to_string(t) + "->" + std::to_string(d);
      const exec::TaskId pack = graph.submit(
          "col-pack" + sfx, {lanes.compute(t), /*ordered=*/false, "a2a"},
          [this, in, out, n0pc, n1pr, n2pr] {
            detail::a2a_pair_fused_strided(in, out, /*nr=*/n1pr, /*nc=*/n2pr,
                                           /*in_ld=*/n1_ * n0pc, /*out_ld=*/n2_,
                                           /*batch=*/n0pc, /*in_bstride=*/n1_,
                                           /*out_bstride=*/n2_ * n1pr, detail::A2aScope::Col);
          },
          {fft1_join[(std::size_t)t], war[(std::size_t)d]});
      arrived_col[(std::size_t)d].push_back(graph.submit(
          "col-copy" + sfx, {lanes.copy(t, d), /*ordered=*/true, "a2a"},
          [this, t, d, n0pc, n1pr, n2pr, f32] {
            fabric_.record(t, d, double(n0pc) * double(n1pr) * double(n2pr) * sizeof(Cx),
                           "A2A-COL", f32);
          },
          {pack}));
    }
  }

  // (e) fft2 chunks on the z-pencils.
  std::vector<exec::TaskId> terminal((std::size_t)g_);
  const index_t lines2 = n0pc * n1pr;
  const index_t step2 = (lines2 + nc - 1) / nc;
  for (int d = 0; d < g_; ++d) {
    const exec::TaskId join =
        graph.submit("col-join d" + std::to_string(d),
                     {lanes.compute(d), /*ordered=*/false, "sync"}, [] {},
                     arrived_col[(std::size_t)d]);
    std::vector<exec::TaskId> fft2;
    for (index_t c = 0; c < nc; ++c) {
      const index_t lo = c * step2, hi = std::min(lines2, lo + step2);
      if (lo >= hi) break;
      Cx* base = a[(std::size_t)d] + lo * n2_;
      const index_t lines = hi - lo;
      fft2.push_back(graph.submit(
          "fft2 d" + std::to_string(d) + " c" + std::to_string(c),
          {lanes.compute(d), /*ordered=*/false, "fft"},
          [this, base, lines] {
            FMMFFT_SPAN("3DFFT-2");
            plan2_.execute_batched(base, lines, fft::Direction::Forward);
          },
          {join}));
    }
    terminal[(std::size_t)d] =
        graph.submit("done d" + std::to_string(d),
                     {lanes.compute(d), /*ordered=*/false, "sync"}, [] {}, std::move(fft2));
  }
  return terminal;
}

template <typename T>
void Dist3dFft<T>::execute(const std::complex<T>* in, std::complex<T>* out) {
  scatter(in);
  if (exec::resolve_mode(n0_ * n1_ * n2_ / g_) == exec::Mode::Serial) {
    if (decomp_ == model::Decomp::Slab)
      execute_slab_serial();
    else
      execute_pencil_serial();
  } else {
    exec::DeviceLanes lanes(g_);
    exec::TaskGraph graph(lanes.count());
    graph.name_lanes(lanes);
    if (decomp_ == model::Decomp::Slab)
      submit_slab(graph, lanes);
    else
      submit_pencil(graph, lanes);
    graph.run();
  }
  gather(out);
}

template class Dist3dFft<float>;
template class Dist3dFft<double>;

}  // namespace fmmfft::dist
