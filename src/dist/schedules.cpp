#include "dist/schedules.hpp"

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/math.hpp"

namespace fmmfft::dist {
namespace {

using sim::Schedule;
using KC = fmm::KernelClass;

double cbytes(const model::Workload& w) { return 2.0 * w.real_bytes(); }

int chunk_count(int g) { return std::max(2, g); }

/// Chunk-pipelined all-to-all with the local pack/unpack kernels a strided
/// distributed transpose performs around each message (cuFFTXT-style
/// layout-conversion kernels). Returns per-(device, chunk) unpack ids the
/// consumer phase should depend on.
struct ChunkedA2A {
  std::vector<std::vector<int>> arrivals;
};

ChunkedA2A chunked_all_to_all(Schedule& s, int g, int chunks, double bytes_per_pair,
                              const std::string& tag, const model::Workload& w,
                              double slab_pts,
                              const std::vector<std::vector<int>>& producer_deps) {
  s.set_stage("a2a");
  ChunkedA2A out;
  out.arrivals.assign((std::size_t)g, std::vector<int>((std::size_t)chunks, -1));
  const double chunk_bytes = bytes_per_pair / chunks;
  const double chunk_mem = 2.0 * (slab_pts / chunks) * cbytes(w);  // read + write

  // Pack kernels: one per (device, chunk), gathering the strided chunk.
  std::vector<std::vector<int>> pack((std::size_t)g, std::vector<int>((std::size_t)chunks));
  for (int d = 0; d < g; ++d)
    for (int c = 0; c < chunks; ++c) {
      std::vector<int> deps;
      if (!producer_deps.empty() && producer_deps[(std::size_t)d][(std::size_t)c] >= 0)
        deps.push_back(producer_deps[(std::size_t)d][(std::size_t)c]);
      pack[(std::size_t)d][(std::size_t)c] =
          s.add_kernel(d, tag + "-pack", KC::Copy, 0.0, chunk_mem, w.is_double, deps);
    }

  // Messages: chunk c from src to every dst, gated on src's pack.
  std::vector<std::vector<std::vector<int>>> into(
      (std::size_t)g, std::vector<std::vector<int>>((std::size_t)chunks));
  for (int c = 0; c < chunks; ++c)
    for (int src = 0; src < g; ++src)
      for (int dst = 0; dst < g; ++dst) {
        if (src == dst) continue;
        into[(std::size_t)dst][(std::size_t)c].push_back(
            s.add_comm(src, dst, tag, chunk_bytes, {pack[(std::size_t)src][(std::size_t)c]}));
      }

  // Unpack kernels: scatter chunk c into the destination layout.
  for (int d = 0; d < g; ++d)
    for (int c = 0; c < chunks; ++c) {
      auto deps = into[(std::size_t)d][(std::size_t)c];
      deps.push_back(pack[(std::size_t)d][(std::size_t)c]);  // local portion
      out.arrivals[(std::size_t)d][(std::size_t)c] =
          s.add_kernel(d, tag + "-unpack", KC::Copy, 0.0, chunk_mem, w.is_double, deps);
    }
  return out;
}

/// Sub-communicator variant: identical pack/message/unpack structure, but
/// device d exchanges only with `peers[d]` (a pencil row or column group).
/// Pack/unpack still sweep the whole local pencil — every element moves
/// (or is re-laid-out locally) in each phase.
ChunkedA2A chunked_sub_a2a(Schedule& s, int g, int chunks, double bytes_per_pair,
                           const std::string& tag, const model::Workload& w, double slab_pts,
                           const std::vector<std::vector<int>>& producer_deps,
                           const std::vector<std::vector<int>>& peers) {
  s.set_stage("a2a");
  ChunkedA2A out;
  out.arrivals.assign((std::size_t)g, std::vector<int>((std::size_t)chunks, -1));
  const double chunk_bytes = bytes_per_pair / chunks;
  const double chunk_mem = 2.0 * (slab_pts / chunks) * cbytes(w);

  std::vector<std::vector<int>> pack((std::size_t)g, std::vector<int>((std::size_t)chunks));
  for (int d = 0; d < g; ++d)
    for (int c = 0; c < chunks; ++c) {
      std::vector<int> deps;
      if (!producer_deps.empty() && producer_deps[(std::size_t)d][(std::size_t)c] >= 0)
        deps.push_back(producer_deps[(std::size_t)d][(std::size_t)c]);
      pack[(std::size_t)d][(std::size_t)c] =
          s.add_kernel(d, tag + "-pack", KC::Copy, 0.0, chunk_mem, w.is_double, deps);
    }

  std::vector<std::vector<std::vector<int>>> into(
      (std::size_t)g, std::vector<std::vector<int>>((std::size_t)chunks));
  for (int c = 0; c < chunks; ++c)
    for (int src = 0; src < g; ++src)
      for (int dst : peers[(std::size_t)src]) {
        if (src == dst) continue;
        into[(std::size_t)dst][(std::size_t)c].push_back(
            s.add_comm(src, dst, tag, chunk_bytes, {pack[(std::size_t)src][(std::size_t)c]}));
      }

  for (int d = 0; d < g; ++d)
    for (int c = 0; c < chunks; ++c) {
      auto deps = into[(std::size_t)d][(std::size_t)c];
      deps.push_back(pack[(std::size_t)d][(std::size_t)c]);
      out.arrivals[(std::size_t)d][(std::size_t)c] =
          s.add_kernel(d, tag + "-unpack", KC::Copy, 0.0, chunk_mem, w.is_double, deps);
    }
  return out;
}

/// Chunked batch-FFT phase; FFT kernels sit in the "library primitive"
/// efficiency tier, same as BatchedGEMM.
std::vector<std::vector<int>> fft_phase(Schedule& s, int g, int chunks, double total_points,
                                        double len, const model::Workload& w,
                                        const std::string& label,
                                        const std::vector<std::vector<int>>& deps) {
  s.set_stage("fft");
  std::vector<std::vector<int>> ids((std::size_t)g, std::vector<int>((std::size_t)chunks));
  const double pts = total_points / chunks;
  const double flops = 5.0 * pts * (len > 1 ? std::log2(len) : 0.0);
  const double bytes = 4.0 * pts * cbytes(w);
  for (int d = 0; d < g; ++d)
    for (int c = 0; c < chunks; ++c) {
      std::vector<int> dd;
      if (!deps.empty() && deps[(std::size_t)d][(std::size_t)c] >= 0)
        dd.push_back(deps[(std::size_t)d][(std::size_t)c]);
      ids[(std::size_t)d][(std::size_t)c] =
          s.add_kernel(d, label, KC::BatchedGemm, flops, bytes, w.is_double, dd);
    }
  return ids;
}

/// Global host-side synchronization between library phases: every device
/// stalls for sync_overhead after ALL devices complete the previous phase.
/// `sync_seconds` is resolved at simulate() time via fixed duration ops, so
/// the builder takes the value explicitly.
std::vector<std::vector<int>> global_sync(Schedule& s, int g, int chunks,
                                          const std::string& label, double seconds,
                                          const std::vector<std::vector<int>>& phase_ops) {
  s.set_stage("sync");
  std::vector<int> all;
  for (const auto& per_dev : phase_ops)
    for (int id : per_dev)
      if (id >= 0) all.push_back(id);
  const int join = s.add_meta(label + "-join", all);
  std::vector<std::vector<int>> out((std::size_t)g, std::vector<int>((std::size_t)chunks));
  for (int d = 0; d < g; ++d) {
    const int id = s.add_delay(d, label, seconds, {join});
    for (int c = 0; c < chunks; ++c) out[(std::size_t)d][(std::size_t)c] = id;
  }
  return out;
}

}  // namespace

sim::Schedule fmmfft_schedule(const fmm::Params& prm, const model::Workload& w, int g,
                              bool fuse_post) {
  prm.validate_distributed(g);
  Schedule s;
  s.set_stage("fmm");
  const int c = w.c();
  const int l = prm.l(), b = prm.b;
  const double rb = w.real_bytes();

  std::map<std::string, model::StageCount> counts;
  for (const auto& st : model::exact_fmm_counts(prm, c, g)) counts[st.name] = st;
  auto kernel = [&](int d, const std::string& name, std::vector<int> deps) {
    const auto& st = counts.at(name);
    return s.add_kernel(d, name, st.kernel, st.flops, st.mem_scalars * rb, w.is_double,
                        std::move(deps));
  };

  const double cp = double(c) * prm.p, cpm = double(c) * (prm.p - 1);
  const double s_halo_msg = cp * prm.ml * rb;           // one leaf box
  const double m_halo_msg = 2.0 * cpm * prm.q * rb;     // two expansion boxes
  const double mb_slab = cpm * prm.q * (double(prm.boxes(b)) / g) * rb;

  std::vector<int> s2m((std::size_t)g), s2t((std::size_t)g);
  std::vector<std::vector<int>> m2m((std::size_t)(l + 1), std::vector<int>((std::size_t)g, -1));
  std::vector<std::vector<int>> m2l((std::size_t)(l + 1), std::vector<int>((std::size_t)g, -1));

  // S2M on stream 0; S halo + S2T overlap with the far-field chain.
  for (int d = 0; d < g; ++d) s2m[(std::size_t)d] = kernel(d, "S2M", {});
  std::vector<std::vector<int>> s_arr((std::size_t)g);
  if (g > 1) {
    for (int d = 0; d < g; ++d) {
      s_arr[(std::size_t)((d + 1) % g)].push_back(
          s.add_comm(d, (d + 1) % g, "COMM-S", s_halo_msg, {}));
      s_arr[(std::size_t)((d + g - 1) % g)].push_back(
          s.add_comm(d, (d + g - 1) % g, "COMM-S", s_halo_msg, {}));
    }
  }
  // S2T on stream 1: overlaps the far-field BatchedGEMM chain (§4.9).
  for (int d = 0; d < g; ++d) {
    const auto& st = counts.at("S2T");
    s2t[(std::size_t)d] = s.add_kernel(d, "S2T", st.kernel, st.flops, st.mem_scalars * rb,
                                       w.is_double, s_arr[(std::size_t)d], /*stream=*/1);
  }

  for (int lev = l - 1; lev >= b; --lev)
    for (int d = 0; d < g; ++d)
      m2m[(std::size_t)lev][(std::size_t)d] = kernel(
          d, "M2M-" + std::to_string(lev),
          {lev == l - 1 ? s2m[(std::size_t)d] : m2m[(std::size_t)(lev + 1)][(std::size_t)d]});

  for (int lev = l; lev > b; --lev) {
    auto producer = [&](int d) {
      return lev == l ? s2m[(std::size_t)d] : m2m[(std::size_t)lev][(std::size_t)d];
    };
    std::vector<std::vector<int>> arr((std::size_t)g);
    if (g > 1) {
      for (int d = 0; d < g; ++d) {
        arr[(std::size_t)((d + 1) % g)].push_back(s.add_comm(
            d, (d + 1) % g, "COMM-M" + std::to_string(lev), m_halo_msg, {producer(d)}));
        arr[(std::size_t)((d + g - 1) % g)].push_back(s.add_comm(
            d, (d + g - 1) % g, "COMM-M" + std::to_string(lev), m_halo_msg, {producer(d)}));
      }
    }
    for (int d = 0; d < g; ++d) {
      auto deps = arr[(std::size_t)d];
      deps.push_back(producer(d));
      m2l[(std::size_t)lev][(std::size_t)d] = kernel(d, "M2L-" + std::to_string(lev), deps);
    }
  }

  auto base_producer = [&](int d) {
    return l == b ? s2m[(std::size_t)d] : m2m[(std::size_t)b][(std::size_t)d];
  };
  std::vector<std::vector<int>> gath((std::size_t)g);
  if (g > 1) {
    for (int src = 0; src < g; ++src)
      for (int dst = 0; dst < g; ++dst) {
        if (src == dst) continue;
        gath[(std::size_t)dst].push_back(
            s.add_comm(src, dst, "COMM-MB", mb_slab, {base_producer(src)}));
      }
  }
  std::vector<int> m2lb((std::size_t)g), reduce((std::size_t)g);
  for (int d = 0; d < g; ++d) {
    auto deps = gath[(std::size_t)d];
    deps.push_back(base_producer(d));
    m2lb[(std::size_t)d] = kernel(d, "M2L-B", deps);
    deps = gath[(std::size_t)d];
    deps.push_back(base_producer(d));
    reduce[(std::size_t)d] = kernel(d, "REDUCE", deps);
  }

  std::vector<int> prev = m2lb;
  for (int lev = b; lev < l; ++lev)
    for (int d = 0; d < g; ++d) {
      std::vector<int> deps{prev[(std::size_t)d]};
      if (lev > b && m2l[(std::size_t)lev][(std::size_t)d] >= 0)
        deps.push_back(m2l[(std::size_t)lev][(std::size_t)d]);
      prev[(std::size_t)d] = kernel(d, "L2L-" + std::to_string(lev), deps);
    }
  std::vector<int> l2t((std::size_t)g);
  for (int d = 0; d < g; ++d) {
    std::vector<int> deps{prev[(std::size_t)d], s2t[(std::size_t)d]};
    if (l > b) deps.push_back(m2l[(std::size_t)l][(std::size_t)d]);
    l2t[(std::size_t)d] = kernel(d, "L2T", deps);
  }

  // POST, fused into the 2D-FFT load (one sweep) or staged (two sweeps).
  s.set_stage("post");
  const double slab_pts = double(prm.n) / g;
  const int chunks = chunk_count(g);
  std::vector<std::vector<int>> post((std::size_t)g, std::vector<int>((std::size_t)chunks));
  for (int d = 0; d < g; ++d)
    for (int ck = 0; ck < chunks; ++ck) {
      const double pts = slab_pts / chunks;
      const double sweeps = fuse_post ? 2.0 : 4.0;
      post[(std::size_t)d][(std::size_t)ck] =
          s.add_kernel(d, "POST", KC::Custom, 8.0 * pts, sweeps * pts * cbytes(w), w.is_double,
                       {l2t[(std::size_t)d], reduce[(std::size_t)d]});
    }

  // One host sync handing off to the 2D-FFT library, then the pipelined
  // FFT-P -> single all-to-all -> FFT-M.
  auto sync = global_sync(s, g, chunks, "SYNC", -1.0, post);
  auto fft1 = fft_phase(s, g, chunks, slab_pts, double(prm.p), w, "FFT-P", sync);
  auto a2a = chunked_all_to_all(s, g, chunks, double(prm.n) / (double(g) * g) * cbytes(w),
                                "A2A-2D", w, slab_pts, fft1);
  fft_phase(s, g, chunks, slab_pts, double(prm.m()), w, "FFT-M", a2a.arrivals);
  return s;
}

sim::Schedule baseline1d_schedule(index_t n, const model::Workload& w, int g) {
  FMMFFT_CHECK(is_pow2(n));
  Schedule s;
  const int chunks = chunk_count(g);
  const index_t mfac = index_t(1) << ((ilog2_exact(n) + 1) / 2);
  const index_t pfac = n / mfac;
  const double slab_pts = double(n) / g;
  const double pair_bytes = double(n) / (double(g) * g) * cbytes(w);
  

  // Six phases, each followed by a host-side synchronization: the
  // transpose-heavy structure that makes cuFFTXT latency-bound at small N.
  auto a1 = chunked_all_to_all(s, g, chunks, pair_bytes, "A2A-1", w, slab_pts, {});
  auto sy1 = global_sync(s, g, chunks, "SYNC", -1.0, a1.arrivals);
  auto f1 = fft_phase(s, g, chunks, slab_pts, double(mfac), w, "FFT-M", sy1);
  std::vector<std::vector<int>> tw((std::size_t)g, std::vector<int>((std::size_t)chunks));
  s.set_stage("fft");  // twiddle fixup rides the FFT phase
  for (int d = 0; d < g; ++d)
    for (int c = 0; c < chunks; ++c)
      tw[(std::size_t)d][(std::size_t)c] =
          s.add_kernel(d, "TWIDDLE", KC::Custom, 6.0 * slab_pts / chunks,
                       2.0 * slab_pts / chunks * cbytes(w), w.is_double,
                       {f1[(std::size_t)d][(std::size_t)c]});
  auto sy2 = global_sync(s, g, chunks, "SYNC", -1.0, tw);
  auto a2 = chunked_all_to_all(s, g, chunks, pair_bytes, "A2A-2", w, slab_pts, sy2);
  auto sy3 = global_sync(s, g, chunks, "SYNC", -1.0, a2.arrivals);
  auto f2 = fft_phase(s, g, chunks, slab_pts, double(pfac), w, "FFT-P", sy3);
  auto sy4 = global_sync(s, g, chunks, "SYNC", -1.0, f2);
  auto a3 = chunked_all_to_all(s, g, chunks, pair_bytes, "A2A-3", w, slab_pts, sy4);
  global_sync(s, g, chunks, "SYNC", -1.0, a3.arrivals);
  return s;
}

sim::Schedule dist2dfft_schedule(index_t m, index_t p, const model::Workload& w, int g) {
  Schedule s;
  const int chunks = chunk_count(g);
  const double n = double(m) * double(p);
  const double slab_pts = n / g;
  auto f1 = fft_phase(s, g, chunks, slab_pts, double(p), w, "FFT-P", {});
  auto a2a =
      chunked_all_to_all(s, g, chunks, n / (double(g) * g) * cbytes(w), "A2A-2D", w, slab_pts, f1);
  fft_phase(s, g, chunks, slab_pts, double(m), w, "FFT-M", a2a.arrivals);
  return s;
}

sim::Schedule fft3d_schedule(index_t n0, index_t n1, index_t n2, const model::Workload& w,
                             int g, model::Decomp decomp, model::GridShape grid) {
  FMMFFT_CHECK_MSG(decomp != model::Decomp::Auto,
                   "fft3d_schedule needs a resolved decomposition — call "
                   "model::choose_decomp first");
  Schedule s;
  const int chunks = chunk_count(g);
  const double n = double(n0) * double(n1) * double(n2);
  const double slab_pts = n / g;

  if (decomp == model::Decomp::Slab) {
    FMMFFT_CHECK_MSG(model::slab_feasible_3d(n0, n1, n2, g),
                     "slab layout does not divide " << n0 << "x" << n1 << "x" << n2
                                                    << " across " << g << " devices");
    auto f0 = fft_phase(s, g, chunks, slab_pts, double(n0), w, "FFT-X", {});
    // Local i0<->i1 reorientation between the line phases: pure copies, one
    // read + one write of the slab (the term fft3d_slab_seconds prices and
    // the pencil layout folds into its row hop).
    s.set_stage("transpose");
    std::vector<std::vector<int>> tr((std::size_t)g, std::vector<int>((std::size_t)chunks));
    const double tr_mem = 2.0 * (slab_pts / chunks) * cbytes(w);
    for (int d = 0; d < g; ++d)
      for (int c = 0; c < chunks; ++c)
        tr[(std::size_t)d][(std::size_t)c] =
            s.add_kernel(d, "REORIENT", KC::Copy, 0.0, tr_mem, w.is_double,
                         {f0[(std::size_t)d][(std::size_t)c]});
    auto f1 = fft_phase(s, g, chunks, slab_pts, double(n1), w, "FFT-Y", tr);
    auto a2a = chunked_all_to_all(s, g, chunks, n / (double(g) * g) * cbytes(w), "A2A-3D", w,
                                  slab_pts, f1);
    fft_phase(s, g, chunks, slab_pts, double(n2), w, "FFT-Z", a2a.arrivals);
    return s;
  }

  FMMFFT_CHECK_MSG(grid.devices() == g, "processor grid " << grid.pr << "x" << grid.pc
                                                          << " does not cover " << g
                                                          << " devices");
  FMMFFT_CHECK_MSG(model::pencil_feasible_3d(n0, n1, n2, grid),
                   "pencil grid " << grid.pr << "x" << grid.pc << " does not divide " << n0
                                  << "x" << n1 << "x" << n2);
  // Device d sits at row d / pc, column d % pc of the grid; each exchange
  // stays inside one row (pc peers) or one column (pr peers).
  const int pr = grid.pr, pc = grid.pc;
  std::vector<std::vector<int>> row_peers((std::size_t)g), col_peers((std::size_t)g);
  for (int d = 0; d < g; ++d) {
    const int i = d / pc, j = d % pc;
    for (int jj = 0; jj < pc; ++jj) row_peers[(std::size_t)d].push_back(i * pc + jj);
    for (int ii = 0; ii < pr; ++ii) col_peers[(std::size_t)d].push_back(ii * pc + j);
  }
  auto f0 = fft_phase(s, g, chunks, slab_pts, double(n0), w, "FFT-X", {});
  auto row = chunked_sub_a2a(s, g, chunks, n / (double(g) * pc) * cbytes(w), "A2A-ROW", w,
                             slab_pts, f0, row_peers);
  auto f1 = fft_phase(s, g, chunks, slab_pts, double(n1), w, "FFT-Y", row.arrivals);
  auto col = chunked_sub_a2a(s, g, chunks, n / (double(g) * pr) * cbytes(w), "A2A-COL", w,
                             slab_pts, f1, col_peers);
  fft_phase(s, g, chunks, slab_pts, double(n2), w, "FFT-Z", col.arrivals);
  return s;
}

}  // namespace fmmfft::dist
