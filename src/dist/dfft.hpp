// Distributed FFTs over the simulated multi-device fabric.
//
//  * DistFft1d — the industry-standard baseline the paper measures against
//    (the cuFFTXT stand-in): radix-P split with THREE all-to-all
//    transposes (§3):
//      Π_{M,P} · (I_M⊗F_P) · Π_{P,M} · T_{P,M} · (I_P⊗F_M) · Π_{M,P}
//  * Dist2dFft — the M×P 2D FFT used as the second stage of the FMM-FFT
//    (and as Fig. 3's "2D cuFFTXT" budget bar): ONE all-to-all.
//
// Data is host-staged: execute() takes the full input/output arrays and
// scatters/gathers to per-device slabs internally; slab residency and all
// inter-device traffic go through the fabric ledger.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "dist/decomp.hpp"
#include "dist/procgrid.hpp"
#include "exec/executor.hpp"
#include "fft/fft.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

/// Baseline in-order distributed 1D FFT with three all-to-all transposes.
template <typename T>
class DistFft1d {
 public:
  /// n must be a power of two; factors are chosen balanced (M ≈ P ≈ √N).
  /// g devices must divide both factors.
  DistFft1d(index_t n, int g);

  index_t size() const { return n_; }
  index_t factor_m() const { return m_; }
  index_t factor_p() const { return p_; }

  void execute(const std::complex<T>* in, std::complex<T>* out);

  const sim::Fabric& fabric() const { return fabric_; }
  sim::Fabric& fabric() { return fabric_; }

 private:
  index_t n_, m_, p_;
  int g_;
  sim::Fabric fabric_;
  fft::Plan1D<T> plan_m_, plan_p_;
  std::vector<Buffer<std::complex<T>>> slab_a_, slab_b_;
  Buffer<std::complex<T>> twiddle_;  // per-slab twiddle factors, slab-major
};

/// Distributed M×P 2D FFT in the FMM-FFT's p-major layout: input element
/// (p, m) at position p + m·P, block partitioned over m; output in order.
///
/// The single Π_{M,P} exchange runs in either decomposition: slab (the
/// one-phase G-wide all-to-all, tag A2A-2D) or pencil (the factorized
/// two-phase form over a pr×pc grid — row phase A2A-ROW, column phase
/// A2A-COL — each confined to a √G-ish sub-communicator). Both move the
/// same element values with pure copies, so results are bit-identical.
template <typename T>
class Dist2dFft {
 public:
  /// `decomp`/`grid` default to the environment / cost-model resolution
  /// (dist::resolve_decomp_2d: ctor argument > FMMFFT_DECOMP > model).
  Dist2dFft(index_t m, index_t p, int g, model::Decomp decomp = model::Decomp::Auto,
            model::GridShape grid = {});

  void execute(const std::complex<T>* in, std::complex<T>* out);

  /// In-place variant over externally owned per-device slabs of N/G
  /// elements (used by the distributed FMM-FFT to avoid staging). Driver
  /// choice via exec::resolve_mode on the per-device slab size: explicit
  /// Serial/Async pass through, Auto (the default) applies the work floor.
  void execute_slabs(const std::vector<std::complex<T>*>& slabs, sim::Fabric& fabric);

  /// Async building block: submit the whole 2D FFT as tasks on `graph` —
  /// per-device row-FFT chunks, per-(pair,chunk) pack→copy→unpack for the
  /// single all-to-all, then column-FFT chunks — so copies overlap
  /// neighbouring FFT chunks exactly as dist::fft_schedule models.
  /// `ready[r]` (optional) gates device r's first task; returns the
  /// per-device terminal task (slab writes complete when it finishes).
  std::vector<exec::TaskId> submit_slabs(exec::TaskGraph& graph,
                                         const exec::DeviceLanes& lanes,
                                         const std::vector<std::complex<T>*>& slabs,
                                         sim::Fabric& fabric,
                                         const std::vector<exec::TaskId>& ready = {});

  const sim::Fabric& fabric() const { return fabric_; }
  model::Decomp decomp() const { return decomp_; }
  const ProcGrid& grid() const { return grid_; }
  const model::DecompDecision& decision() const { return decision_; }

 private:
  void execute_slabs_serial(const std::vector<std::complex<T>*>& slabs, sim::Fabric& fabric);
  std::vector<exec::TaskId> submit_slabs_pencil(exec::TaskGraph& graph,
                                                const exec::DeviceLanes& lanes,
                                                const std::vector<std::complex<T>*>& slabs,
                                                sim::Fabric& fabric,
                                                const std::vector<exec::TaskId>& ready);

  index_t m_, p_;
  int g_;
  model::Decomp decomp_ = model::Decomp::Slab;
  ProcGrid grid_;
  model::DecompDecision decision_;
  sim::Fabric fabric_;
  fft::Plan1D<T> plan_m_, plan_p_;
  std::vector<Buffer<std::complex<T>>> scratch_;
  std::vector<Buffer<std::complex<T>>> work_;  ///< pencil intermediate (N/G each)
};

}  // namespace fmmfft::dist
