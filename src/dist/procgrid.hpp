// 2D processor grid for pencil decompositions: device d = i·pc + j sits in
// row i (a pc-member row sub-communicator exchanging along dimension 0/1)
// and column j (a pr-member column sub-communicator exchanging along
// dimension 1/2). The row-major device numbering matches sim::Fabric's flat
// device ids, so sub-communicator traffic lands on the same pair ledger as
// the global all-to-all.
#pragma once

namespace fmmfft::dist {

struct ProcGrid {
  int pr = 1;  ///< grid rows (column sub-communicator size)
  int pc = 1;  ///< grid columns (row sub-communicator size)

  int devices() const { return pr * pc; }
  int device(int i, int j) const { return i * pc + j; }
  int row_of(int d) const { return d / pc; }
  int col_of(int d) const { return d % pc; }
};

}  // namespace fmmfft::dist
