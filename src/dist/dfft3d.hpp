// Distributed n0×n1×n2 3D FFT over the simulated fabric, in either of two
// decompositions (ROADMAP item 2):
//
//  * Slab — 1D partition over the slowest axis i2. Three batched FFT
//    phases with a local per-plane reorientation and ONE G-wide all-to-all
//    (the §5 one-phase transpose, tag A2A-3D). Stops scaling at G > n2.
//  * Pencil — pr×pc processor grid (AccFFT / Dalcin). Device (i, j) first
//    holds x-pencils (all i0), exchanges within its pc-member grid *row*
//    into y-pencils (all i1, tag A2A-ROW), then within its pr-member grid
//    *column* into z-pencils (all i2, tag A2A-COL). Each phase's payload
//    per device is N/√G-ish (N/(G·pc) + N/(G·pr) elements) instead of the
//    slab's N/G · (G-1)/G in one shot, and scales to G up to n·/pc · n·/pr.
//
// The decomposition is chosen per instance: constructor argument, else
// FMMFFT_DECOMP/FMMFFT_GRID, else the model::choose_decomp cost model.
// Both paths run the same per-line FFT plans over the same line values, so
// their outputs are bit-identical to each other, to the serial/async
// drivers, and to a G=1 run (the tests' memcmp oracle).
//
// Data is host-staged like DistFft1d: execute() scatters the natural-order
// input (i0 fastest) to per-device pencils/slabs and gathers the result in
// the fully reversed order out[i2 + n2·(i1 + n1·i0)] — the layout all
// decompositions share without a fourth exchange.
#pragma once

#include <complex>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "dist/decomp.hpp"
#include "dist/procgrid.hpp"
#include "exec/executor.hpp"
#include "fft/fft.hpp"
#include "sim/fabric.hpp"

namespace fmmfft::dist {

template <typename T>
class Dist3dFft {
 public:
  /// Requires pow-2 extents. `decomp`/`grid` default to the environment /
  /// cost-model resolution (dist::resolve_decomp_3d).
  Dist3dFft(index_t n0, index_t n1, index_t n2, int g,
            model::Decomp decomp = model::Decomp::Auto, model::GridShape grid = {});

  /// in: natural order x[i0 + n0·(i1 + n1·i2)]; out: reversed order
  /// y[i2 + n2·(i1 + n1·i0)]. Driver mode via exec::resolve_mode on the
  /// per-device element count (FMMFFT_EXEC serial|async|auto).
  void execute(const std::complex<T>* in, std::complex<T>* out);

  index_t n0() const { return n0_; }
  index_t n1() const { return n1_; }
  index_t n2() const { return n2_; }
  model::Decomp decomp() const { return decomp_; }
  const ProcGrid& grid() const { return grid_; }
  const model::DecompDecision& decision() const { return decision_; }
  const sim::Fabric& fabric() const { return fabric_; }
  sim::Fabric& fabric() { return fabric_; }

 private:
  void scatter(const std::complex<T>* in);
  void gather(std::complex<T>* out) const;
  void execute_slab_serial();
  void execute_pencil_serial();
  /// Async submission mirroring Dist2dFft::submit_slabs: per-device compute
  /// lanes run FFT chunks and fused pack scatters, per-link copy lanes
  /// carry the fabric accounting, and exchange chunks overlap neighbouring
  /// FFT chunks. Returns the per-device terminal task.
  std::vector<exec::TaskId> submit_slab(exec::TaskGraph& graph, const exec::DeviceLanes& lanes);
  std::vector<exec::TaskId> submit_pencil(exec::TaskGraph& graph,
                                          const exec::DeviceLanes& lanes);

  index_t n0_, n1_, n2_;
  int g_;
  model::Decomp decomp_ = model::Decomp::Slab;
  ProcGrid grid_;
  model::DecompDecision decision_;
  sim::Fabric fabric_;
  fft::Plan1D<T> plan0_, plan1_, plan2_;
  // Ping-pong pencils/slabs of N/G elements per device: A holds the input
  // orientation and the final z-pencils, B the middle orientation.
  std::vector<Buffer<std::complex<T>>> buf_a_, buf_b_;
};

}  // namespace fmmfft::dist
