#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::exec {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

Mode& tl_mode() {
  thread_local Mode m = default_mode();
  return m;
}

}  // namespace

Mode default_mode() {
  static const Mode m = [] {
    const char* env = std::getenv("FMMFFT_EXEC");
    if (env && std::strcmp(env, "serial") == 0) return Mode::Serial;
    if (env && std::strcmp(env, "async") == 0) return Mode::Async;
    return Mode::Auto;
  }();
  return m;
}

Mode mode() { return tl_mode(); }

index_t auto_work_floor() {
  static const index_t f = [] {
    if (const char* env = std::getenv("FMMFFT_EXEC_FLOOR")) {
      char* end = nullptr;
      const long long v = std::strtoll(env, &end, 10);
      if (end != env && v >= 0) return static_cast<index_t>(v);
    }
    return index_t(65536);
  }();
  return f;
}

Mode resolve_mode(index_t per_device_elems) {
  const Mode m = mode();
  if (m != Mode::Auto) return m;
  const index_t floor = auto_work_floor();
  if (obs::metrics_enabled()) obs::Metrics::global().gauge("exec.auto.floor").set(double(floor));
  if (per_device_elems < floor) {
    FMMFFT_COUNT("exec.auto.serial", 1);
    return Mode::Serial;
  }
  FMMFFT_COUNT("exec.auto.async", 1);
  return Mode::Async;
}

ScopedMode::ScopedMode(Mode m) : prev_(tl_mode()) { tl_mode() = m; }
ScopedMode::~ScopedMode() { tl_mode() = prev_; }

TaskGraph::TaskGraph(int lanes) {
  FMMFFT_CHECK(lanes >= 1);
  lane_tail_.assign(static_cast<std::size_t>(lanes), -1);
}

TaskId TaskGraph::submit(std::string label, const Options& opt, std::function<void()> fn,
                         std::vector<TaskId> deps) {
  FMMFFT_CHECK(!ran_);
  FMMFFT_CHECK(opt.lane >= 0 && opt.lane < lanes());
  const TaskId id = static_cast<TaskId>(tasks_.size());
  if (opt.ordered && lane_tail_[(std::size_t)opt.lane] >= 0)
    deps.push_back(lane_tail_[(std::size_t)opt.lane]);
  // Dedupe so each edge decrements `unmet` exactly once.
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  for (TaskId d : deps) FMMFFT_CHECK_MSG(d >= 0 && d < id, "deps must precede the task");

  Task t;
  t.fn = std::move(fn);
  t.unmet = static_cast<int>(deps.size());
  for (TaskId d : deps) tasks_[(std::size_t)d].succ.push_back(id);
  tasks_.push_back(std::move(t));

  TaskRecord rec;
  rec.stage = opt.stage;
  rec.span = rec.stage.empty() ? label : rec.stage + ":" + label;
  rec.lane = opt.lane;
  rec.ordered = opt.ordered;
  records_.push_back(std::move(rec));

  if (opt.ordered) lane_tail_[(std::size_t)opt.lane] = id;
  return id;
}

void TaskGraph::worker_loop() {
  const int total = static_cast<int>(tasks_.size());
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return head_ < ready_.size() || done_ == total || failed_; });
    if (failed_ || done_ == total) return;
    const TaskId id = ready_[head_++];
    Task& t = tasks_[(std::size_t)id];
    TaskRecord& rec = records_[(std::size_t)id];
    lk.unlock();

    rec.worker = ThreadPool::current_worker();
    rec.start_ns = now_ns();
    bool ok = true;
    std::exception_ptr err;
    {
      obs::SpanScope span(rec.span.c_str());
      FMMFFT_COUNT("exec.tasks_run", 1);
      try {
        t.fn();
      } catch (...) {
        ok = false;
        err = std::current_exception();
      }
    }
    rec.end_ns = now_ns();

    lk.lock();
    if (!ok) {
      failed_ = true;
      if (!error_) error_ = err;
      cv_.notify_all();
      return;
    }
    rec.run_seq = seq_++;
    ++done_;
    bool wake = done_ == total;
    for (TaskId s : t.succ)
      if (--tasks_[(std::size_t)s].unmet == 0) {
        ready_.push_back(s);
        wake = true;
      }
    if (wake) cv_.notify_all();
  }
}

void TaskGraph::run(ThreadPool& pool) {
  FMMFFT_CHECK_MSG(!ran_, "TaskGraph::run may be called once");
  ran_ = true;
  if (tasks_.empty()) return;
  ready_.reserve(tasks_.size());
  for (TaskId id = 0; id < size(); ++id)
    if (tasks_[(std::size_t)id].unmet == 0) ready_.push_back(id);

  FMMFFT_SPAN("exec:graph");
  FMMFFT_COUNT("exec.graphs", 1);
  FMMFFT_COUNT("exec.tasks", tasks_.size());
  if (obs::metrics_enabled())
    for (const TaskRecord& r : records_)
      if (!r.stage.empty()) obs::Metrics::global().counter("exec.stage." + r.stage).increment();

  const index_t workers =
      std::min<index_t>(pool.workers(), static_cast<index_t>(tasks_.size()));
  // Each chunk is one graph-drain worker; the pool's chunk dispatch hands
  // every chunk to a distinct thread when enough workers are idle, and
  // degrades to a single inline drain when nested or single-threaded.
  const std::function<void(index_t)> drain = [this](index_t) { worker_loop(); };
  pool.run_chunks(workers, drain);
  if (error_) std::rethrow_exception(error_);
  FMMFFT_CHECK_MSG(done_ == size(), "graph drained without completing every task");
  if (obs::traffic_enabled()) {
    // Busy seconds per stage tag: the denominator for the ledger's achieved
    // per-stage bandwidth (aux scope — time, not bytes).
    auto& ledger = obs::TrafficLedger::global();
    for (const TaskRecord& r : records_)
      if (r.end_ns > r.start_ns)
        ledger.add_seconds("exec." + (r.stage.empty() ? std::string("(untagged)") : r.stage),
                           double(r.end_ns - r.start_ns) * 1e-9);
  }
}

}  // namespace fmmfft::exec
