#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "obs/env.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::exec {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

Mode& tl_mode() {
  thread_local Mode m = default_mode();
  return m;
}

// Armed stall fault (-1 = none). Disarms after one trigger.
std::atomic<TaskId> g_stall_task{-1};
std::atomic<int> g_stall_ms{750};

void init_fault_from_env() {
  static const bool done = [] {
    const long long task = obs::env::get_int("FMMFFT_FAULT_STALL_TASK", -1);
    if (task >= 0)
      inject_stall(static_cast<TaskId>(task),
                   static_cast<int>(obs::env::get_int("FMMFFT_FAULT_STALL_MS", 750)));
    return true;
  }();
  (void)done;
}

}  // namespace

void inject_stall(TaskId id, int ms) {
  g_stall_ms.store(ms, std::memory_order_relaxed);
  g_stall_task.store(id, std::memory_order_relaxed);
}

Mode default_mode() {
  static const Mode m = [] {
    const char* v = obs::env::get("FMMFFT_EXEC");
    if (v && std::strcmp(v, "serial") == 0) return Mode::Serial;
    if (v && std::strcmp(v, "async") == 0) return Mode::Async;
    return Mode::Auto;
  }();
  return m;
}

Mode mode() { return tl_mode(); }

index_t auto_work_floor() {
  static const index_t f = [] {
    if (const char* v = obs::env::get("FMMFFT_EXEC_FLOOR")) {
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (end != v && parsed >= 0) return static_cast<index_t>(parsed);
    }
    return index_t(65536);
  }();
  return f;
}

Mode resolve_mode(index_t per_device_elems) {
  const Mode m = mode();
  if (m != Mode::Auto) return m;
  const index_t floor = auto_work_floor();
  if (obs::metrics_enabled()) obs::Metrics::global().gauge("exec.auto.floor").set(double(floor));
  if (per_device_elems < floor) {
    FMMFFT_COUNT("exec.auto.serial", 1);
    return Mode::Serial;
  }
  FMMFFT_COUNT("exec.auto.async", 1);
  return Mode::Async;
}

ScopedMode::ScopedMode(Mode m) : prev_(tl_mode()) { tl_mode() = m; }
ScopedMode::~ScopedMode() { tl_mode() = prev_; }

TaskGraph::TaskGraph(int lanes) {
  FMMFFT_CHECK(lanes >= 1);
  lane_tail_.assign(static_cast<std::size_t>(lanes), -1);
}

TaskId TaskGraph::submit(std::string label, const Options& opt, std::function<void()> fn,
                         std::vector<TaskId> deps) {
  FMMFFT_CHECK(!ran_);
  FMMFFT_CHECK(opt.lane >= 0 && opt.lane < lanes());
  const TaskId id = static_cast<TaskId>(tasks_.size());
  if (opt.ordered && lane_tail_[(std::size_t)opt.lane] >= 0)
    deps.push_back(lane_tail_[(std::size_t)opt.lane]);
  // Dedupe so each edge decrements `unmet` exactly once.
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  for (TaskId d : deps) FMMFFT_CHECK_MSG(d >= 0 && d < id, "deps must precede the task");

  Task t;
  t.fn = std::move(fn);
  t.unmet = static_cast<int>(deps.size());
  for (TaskId d : deps) tasks_[(std::size_t)d].succ.push_back(id);
  t.deps = std::move(deps);
  tasks_.push_back(std::move(t));

  TaskRecord rec;
  rec.stage = opt.stage;
  rec.span = rec.stage.empty() ? label : rec.stage + ":" + label;
  rec.lane = opt.lane;
  rec.ordered = opt.ordered;
  records_.push_back(std::move(rec));

  if (opt.ordered) lane_tail_[(std::size_t)opt.lane] = id;
  return id;
}

void TaskGraph::worker_loop() {
  const int total = static_cast<int>(tasks_.size());
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return head_ < ready_.size() || done_ == total || failed_; });
    if (failed_ || done_ == total) return;
    const TaskId id = ready_[head_++];
    Task& t = tasks_[(std::size_t)id];
    TaskRecord& rec = records_[(std::size_t)id];
    // Start fields are written under mu_ so describe_stall() reads them
    // race-free from the watchdog thread mid-run.
    rec.worker = ThreadPool::current_worker();
    rec.start_ns = now_ns();
    lk.unlock();

    progress_.fetch_add(1, std::memory_order_relaxed);
    FMMFFT_FLIGHT(TaskStart, id, rec.lane, rec.span.c_str());
    if (g_stall_task.load(std::memory_order_relaxed) == id &&
        g_stall_task.exchange(-1, std::memory_order_relaxed) == id) {
      FMMFFT_FLIGHT(Fault, id, rec.lane, "inject_stall");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(g_stall_ms.load(std::memory_order_relaxed)));
    }
    bool ok = true;
    std::exception_ptr err;
    {
      obs::SpanScope span(rec.span.c_str());
      FMMFFT_COUNT("exec.tasks_run", 1);
      try {
        t.fn();
      } catch (const std::exception& e) {
        ok = false;
        std::ostringstream os;
        os << "task " << id << " '" << rec.span << "' (stage '" << rec.stage << "', "
           << lane_name(rec.lane) << ", worker " << rec.worker << ") failed: " << e.what();
        err = std::make_exception_ptr(Error(os.str()));
      } catch (...) {
        ok = false;
        std::ostringstream os;
        os << "task " << id << " '" << rec.span << "' (stage '" << rec.stage << "', "
           << lane_name(rec.lane) << ", worker " << rec.worker
           << ") failed: unknown exception";
        err = std::make_exception_ptr(Error(os.str()));
      }
    }
    obs::health::flight(ok ? obs::health::Ev::TaskEnd : obs::health::Ev::TaskFail,
                        static_cast<std::uint32_t>(id), rec.lane, rec.stage.c_str());
    progress_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t end = now_ns();

    lk.lock();
    rec.end_ns = end;
    if (!ok) {
      failed_ = true;
      if (!error_) error_ = err;
      cv_.notify_all();
      return;
    }
    rec.run_seq = seq_++;
    ++done_;
    bool wake = done_ == total;
    for (TaskId s : t.succ)
      if (--tasks_[(std::size_t)s].unmet == 0) {
        ready_.push_back(s);
        wake = true;
      }
    if (wake) cv_.notify_all();
  }
}

void TaskGraph::run(ThreadPool& pool) {
  FMMFFT_CHECK_MSG(!ran_, "TaskGraph::run may be called once");
  ran_ = true;
  if (tasks_.empty()) return;
  init_fault_from_env();
  ready_.reserve(tasks_.size());
  for (TaskId id = 0; id < size(); ++id)
    if (tasks_[(std::size_t)id].unmet == 0) ready_.push_back(id);

  FMMFFT_SPAN("exec:graph");
  FMMFFT_COUNT("exec.graphs", 1);
  FMMFFT_COUNT("exec.tasks", tasks_.size());
  FMMFFT_FLIGHT(GraphStart, tasks_.size(), 0, "exec:graph");
  if (obs::metrics_enabled())
    for (const TaskRecord& r : records_)
      if (!r.stage.empty()) obs::Metrics::global().counter("exec.stage." + r.stage).increment();

  // Monitor this run while the watchdog is live; unregistration blocks on
  // any in-flight inspection, so the guard may not outlive the graph.
  struct SourceGuard {
    explicit SourceGuard(TaskGraph* g) {
      if (obs::health::watchdog_enabled()) {
        src = g;
        obs::health::register_source(src);
      }
    }
    ~SourceGuard() {
      if (src) obs::health::unregister_source(src);
    }
    obs::health::Source* src = nullptr;
  } guard(this);

  const index_t workers =
      std::min<index_t>(pool.workers(), static_cast<index_t>(tasks_.size()));
  // Each chunk is one graph-drain worker; the pool's chunk dispatch hands
  // every chunk to a distinct thread when enough workers are idle, and
  // degrades to a single inline drain when nested or single-threaded.
  const std::function<void(index_t)> drain = [this](index_t) { worker_loop(); };
  pool.run_chunks(workers, drain);
  FMMFFT_FLIGHT(GraphEnd, done_, 0, error_ ? "failed" : "ok");
  if (error_) {
    // Forensic dump before the rethrow unwinds the graph (gated on the
    // health layer being armed, so plain library users see no files).
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(error_);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    obs::health::emit_postmortem("task_exception", what);
    std::rethrow_exception(error_);
  }
  FMMFFT_CHECK_MSG(done_ == size(), "graph drained without completing every task");
  if (obs::traffic_enabled()) {
    // Busy seconds per stage tag: the denominator for the ledger's achieved
    // per-stage bandwidth (aux scope — time, not bytes).
    auto& ledger = obs::TrafficLedger::global();
    for (const TaskRecord& r : records_)
      if (r.end_ns > r.start_ns)
        ledger.add_seconds("exec." + (r.stage.empty() ? std::string("(untagged)") : r.stage),
                           double(r.end_ns - r.start_ns) * 1e-9);
  }
}

void TaskGraph::name_lanes(const DeviceLanes& lanes) {
  lane_names_.assign(static_cast<std::size_t>(this->lanes()), std::string());
  for (int d = 0; d < lanes.g; ++d)
    if (lanes.compute(d) < this->lanes())
      lane_names_[(std::size_t)lanes.compute(d)] = "compute d" + std::to_string(d);
  for (int s = 0; s < lanes.g; ++s)
    for (int d = 0; d < lanes.g; ++d)
      if (lanes.copy(s, d) < this->lanes())
        lane_names_[(std::size_t)lanes.copy(s, d)] =
            "copy " + std::to_string(s) + "->" + std::to_string(d);
}

std::string TaskGraph::lane_name(int lane) const {
  if (lane >= 0 && lane < static_cast<int>(lane_names_.size()) &&
      !lane_names_[(std::size_t)lane].empty())
    return lane_names_[(std::size_t)lane];
  return "lane " + std::to_string(lane);
}

std::string TaskGraph::describe_stall() const {
  std::ostringstream os;
  // Workers only hold mu_ for queue pops and bookkeeping, so a few short
  // try_lock retries normally succeed; if the mutex stays busy the graph is
  // *making* progress and a minimal report is the right answer.
  std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
  for (int i = 0; i < 200 && !lk.try_lock(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (!lk.owns_lock()) {
    os << "  graph mutex busy (progress counter " << progress() << "); "
       << size() << " tasks submitted";
    return os.str();
  }

  const int total = size();
  const std::uint64_t now = now_ns();
  os << "  graph: " << done_ << "/" << total << " tasks done, ready-queue depth "
     << (ready_.size() - head_) << (failed_ ? ", FAILED" : "");

  // The oldest running task is the stall suspect: everything behind it in
  // the dependency order is waiting on it.
  TaskId stuck = -1;
  for (TaskId id = 0; id < total; ++id) {
    const TaskRecord& r = records_[(std::size_t)id];
    if (r.start_ns == 0 || r.end_ns != 0) continue;
    os << "\n  running: task " << id << " '" << r.span << "' (stage '" << r.stage
       << "', " << lane_name(r.lane) << ", worker " << r.worker << ", "
       << (now - r.start_ns) / 1000000 << " ms)";
    if (stuck < 0 || r.start_ns < records_[(std::size_t)stuck].start_ns) stuck = id;
  }

  if (stuck >= 0) {
    const TaskRecord& r = records_[(std::size_t)stuck];
    os << "\n  stuck: task " << stuck << " '" << r.span << "' (stage '" << r.stage
       << "', " << lane_name(r.lane) << ")";
    // Chain of unfinished work blocked behind the stuck task.
    os << "\n  blocked chain:";
    TaskId cur = stuck;
    for (int hop = 0; hop < 8; ++hop) {
      TaskId next = -1;
      for (TaskId s : tasks_[(std::size_t)cur].succ)
        if (records_[(std::size_t)s].end_ns == 0) {
          next = s;
          break;
        }
      if (next < 0) break;
      const TaskRecord& nr = records_[(std::size_t)next];
      os << "\n    task " << next << " '" << nr.span << "' (stage '" << nr.stage
         << "', " << lane_name(nr.lane) << ") waits on task " << cur;
      cur = next;
    }
    if (cur == stuck) os << " (none: the stuck task is a sink)";
  } else if (done_ < total) {
    // Nothing is running: walk an unstarted task's dependencies down to the
    // unfinished root that should have been scheduled.
    TaskId leaf = -1;
    for (TaskId id = 0; id < total && leaf < 0; ++id)
      if (records_[(std::size_t)id].start_ns == 0 && tasks_[(std::size_t)id].unmet > 0)
        leaf = id;
    if (leaf >= 0) {
      os << "\n  no task running; dependency chain from task " << leaf << " '"
         << records_[(std::size_t)leaf].span << "':";
      TaskId cur = leaf;
      for (int hop = 0; hop < 8; ++hop) {
        TaskId next = -1;
        for (TaskId d : tasks_[(std::size_t)cur].deps)
          if (records_[(std::size_t)d].end_ns == 0) {
            next = d;
            break;
          }
        if (next < 0) break;
        const TaskRecord& nr = records_[(std::size_t)next];
        os << "\n    waits on task " << next << " '" << nr.span << "' (stage '"
           << nr.stage << "', " << lane_name(nr.lane) << ")";
        cur = next;
      }
    }
  }
  return os.str();
}

}  // namespace fmmfft::exec
