// Dependency-driven async task executor for the native distributed drivers.
//
// The native twin of sim::Schedule: where the simulator *models* a
// multi-device execution as ops with dependency edges timed under an
// architecture (src/sim/schedule.hpp), TaskGraph *executes* one on the host.
// Tasks bind to lanes — per-device ordered queues that serialize like CUDA
// streams (DeviceLanes numbers one compute lane per device plus one copy
// lane per directed device pair, mirroring the simulator's resources) — and
// carry explicit cross-lane dependency edges. run() drains every ready task
// on the existing fmmfft::ThreadPool, so device compute overlaps fabric
// copies exactly where the schedule builders (dist/schedules.cpp) model
// overlap.
//
// Determinism / bit-identity argument:
//  * tasks submitted `ordered` on the same lane execute in submission
//    order, one at a time — the per-device arithmetic order is exactly the
//    serial driver's;
//  * `unordered` tasks are used only for data-parallel work on disjoint
//    ranges (independent FFT lines, pack/unpack of disjoint chunks), whose
//    results do not depend on execution order;
//  * task bodies run inside ThreadPool chunks, so nested parallel_for calls
//    degrade to inline loops (ThreadPool::in_task()).
// Outputs are therefore bit-identical to the serial driver at any worker
// count; tests/test_exec.cpp enforces this byte-for-byte.
//
// Mode selection: FMMFFT_EXEC=serial keeps the old strictly-serial driver
// loops for A/B measurement (bench_native's distributed e2e track),
// FMMFFT_EXEC=async forces the executor, and the default (auto) picks per
// driver call: below a per-device work floor (FMMFFT_EXEC_FLOOR elements)
// the graph's submit/run overhead outweighs the overlap, so Auto resolves
// to Serial; at or above it, to Async. Either way the outputs are
// bit-identical — the mode only chooses *when* overlap is worth it.
// ScopedMode overrides the mode on the current thread for in-process A/B
// comparisons.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/threadpool.hpp"
#include "common/types.hpp"
#include "obs/health.hpp"

namespace fmmfft::exec {

using TaskId = int;

/// Fault injection for watchdog drills and tests: the next graph task with
/// this id sleeps `ms` milliseconds inside its body (after its TaskStart
/// flight event), then disarms. FMMFFT_FAULT_STALL_TASK /
/// FMMFFT_FAULT_STALL_MS arm the same hook from the environment.
void inject_stall(TaskId id, int ms);

enum class Mode { Serial, Async, Auto };

/// Process default from FMMFFT_EXEC ("serial" -> Serial, "async" -> Async;
/// default Auto).
Mode default_mode();
/// Mode in effect on the calling thread (default_mode unless overridden).
Mode mode();

/// Per-device work floor (tensor elements) below which Auto resolves to
/// Serial. FMMFFT_EXEC_FLOOR overrides the default of 65536 (chosen from
/// BENCH_native: the g=4 slab of an N=2^16 transform, 16384 elements, runs
/// ~7% slower through the task graph than through the serial loops).
index_t auto_work_floor();

/// Resolve the effective mode for one driver execution whose per-device
/// working set is `per_device_elems` tensor elements. Serial/Async pass
/// through; Auto applies the work floor. The decision lands in the metrics
/// JSON (exec.auto.serial / exec.auto.async counters, exec.auto.floor
/// gauge) so runs record which path executed.
Mode resolve_mode(index_t per_device_elems);

/// RAII thread-local mode override for in-process A/B comparisons.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m);
  ~ScopedMode();
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

/// Lane numbering convention for a G-device graph: one compute lane per
/// device and one copy lane per directed device pair (the simulator's
/// NVLink-style dedicated links).
struct DeviceLanes {
  int g = 1;
  explicit DeviceLanes(int g_) : g(g_) {}
  int compute(int d) const { return d; }
  int copy(int src, int dst) const { return g + src * g + dst; }
  int count() const { return g + g * g; }
};

/// Post-run record of one task's completion (the graph's "future" side:
/// who ran it, when, and in which global completion order).
struct TaskRecord {
  std::string span;   ///< obs span name ("<stage>:<label>")
  std::string stage;  ///< coarse attribution tag ("fmm", "post", "fft", "a2a")
  int lane = 0;
  bool ordered = true;
  std::uint64_t start_ns = 0;  ///< steady-clock ns (0 if never ran)
  std::uint64_t end_ns = 0;
  int worker = -1;    ///< ThreadPool::current_worker() that executed it
  int run_seq = -1;   ///< global completion order (-1 if cancelled)
};

class TaskGraph : public obs::health::Source {
 public:
  explicit TaskGraph(int lanes);

  struct Options {
    int lane = 0;
    bool ordered = true;     ///< FIFO after the previous ordered task on lane
    const char* stage = "";  ///< obs attribution tag
  };

  /// Add a task running `fn` after every task in `deps` (ids must already
  /// exist, so submission order is a topological order). Ordered tasks also
  /// wait for the previous ordered task on their lane.
  TaskId submit(std::string label, const Options& opt, std::function<void()> fn,
                std::vector<TaskId> deps = {});

  /// Execute the whole graph on `pool`, blocking until every task completed
  /// (or the graph was cancelled by a failure). The first task exception is
  /// rethrown; tasks not yet started when a failure hits never run.
  void run(ThreadPool& pool = ThreadPool::global());

  int size() const { return static_cast<int>(tasks_.size()); }
  int lanes() const { return static_cast<int>(lane_tail_.size()); }

  /// Per-task completion records; valid after run() returned.
  const std::vector<TaskRecord>& records() const { return records_; }

  /// Name the lanes after the device convention ("compute d0", "copy 0->1")
  /// so watchdog verdicts and exception messages attribute work to devices.
  void name_lanes(const DeviceLanes& lanes);
  /// Attribution label for one lane ("lane 3" when unnamed).
  std::string lane_name(int lane) const;

  // obs::health::Source — the graph registers itself for the duration of
  // run() while the watchdog is enabled. progress() advances on every task
  // start/finish; describe_stall() walks the graph state to name the stuck
  // task, its stage/device lane, and the unfinished dependency chain.
  const char* source_name() const override { return "exec.TaskGraph"; }
  std::uint64_t progress() const override {
    return progress_.load(std::memory_order_relaxed);
  }
  std::string describe_stall() const override;

 private:
  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> succ;
    std::vector<TaskId> deps;  ///< retained for stall/failure attribution
    int unmet = 0;
  };

  void worker_loop();

  std::vector<Task> tasks_;
  std::vector<TaskRecord> records_;
  std::vector<TaskId> lane_tail_;  // last ordered task per lane (-1 = none)
  std::vector<std::string> lane_names_;

  std::atomic<std::uint64_t> progress_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<TaskId> ready_;  // FIFO via head_
  std::size_t head_ = 0;
  int done_ = 0;
  int seq_ = 0;
  bool failed_ = false;
  bool ran_ = false;
  std::exception_ptr error_;
};

}  // namespace fmmfft::exec
