// 3D complex transforms, rounding out the FFT substrate (cuFFT exposes
// 1D/2D/3D; the 2D path is what the FMM-FFT consumes, the 3D path serves
// library users directly).
#pragma once

#include <complex>
#include <memory>

#include "common/types.hpp"

namespace fmmfft::fft {

enum class Direction;

/// 3D transform of an n0×n1×n2 column-major array (n0 fastest).
template <typename T>
class Plan3D {
 public:
  Plan3D(index_t n0, index_t n1, index_t n2);
  ~Plan3D();
  Plan3D(Plan3D&&) noexcept;
  Plan3D& operator=(Plan3D&&) noexcept;

  index_t size0() const;
  index_t size1() const;
  index_t size2() const;

  void execute(std::complex<T>* data, Direction dir) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fmmfft::fft
