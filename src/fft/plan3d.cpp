#include "fft/plan3d.hpp"

#include "common/error.hpp"
#include "fft/fft.hpp"

namespace fmmfft::fft {

template <typename T>
struct Plan3D<T>::Impl {
  index_t n0, n1, n2;
  Plan1D<T> p0, p1, p2;

  Impl(index_t n0_, index_t n1_, index_t n2_)
      : n0(n0_), n1(n1_), n2(n2_), p0(n0_), p1(n1_), p2(n2_) {
    FMMFFT_CHECK(n0 >= 1 && n1 >= 1 && n2 >= 1);
  }

  void run(std::complex<T>* data, Direction dir) const {
    // dim0: n1*n2 contiguous lines.
    p0.execute_batched(data, n1 * n2, dir);
    // dim1: within each k-slab, n0 lines of stride n0.
    for (index_t k = 0; k < n2; ++k)
      p1.execute_strided(data + k * n0 * n1, /*count=*/n0, /*stride=*/n0, /*dist=*/1, dir);
    // dim2: n0*n1 lines of stride n0*n1.
    p2.execute_strided(data, /*count=*/n0 * n1, /*stride=*/n0 * n1, /*dist=*/1, dir);
  }
};

template <typename T>
Plan3D<T>::Plan3D(index_t n0, index_t n1, index_t n2)
    : impl_(std::make_unique<Impl>(n0, n1, n2)) {}
template <typename T>
Plan3D<T>::~Plan3D() = default;
template <typename T>
Plan3D<T>::Plan3D(Plan3D&&) noexcept = default;
template <typename T>
Plan3D<T>& Plan3D<T>::operator=(Plan3D&&) noexcept = default;

template <typename T>
index_t Plan3D<T>::size0() const {
  return impl_->n0;
}
template <typename T>
index_t Plan3D<T>::size1() const {
  return impl_->n1;
}
template <typename T>
index_t Plan3D<T>::size2() const {
  return impl_->n2;
}
template <typename T>
void Plan3D<T>::execute(std::complex<T>* data, Direction dir) const {
  impl_->run(data, dir);
}

template class Plan3D<float>;
template class Plan3D<double>;

}  // namespace fmmfft::fft
