// FFT substrate — the library's stand-in for cuFFT.
//
// Complex-to-complex transforms only (the FMM-FFT needs exactly that: the
// post-processed FMM output is complex even for real input). Power-of-two
// sizes run a cache-friendly iterative Stockham autosort (no bit reversal)
// with radix-4 stages (plus one radix-2 cleanup stage when log2 n is odd);
// other sizes fall back to Bluestein's chirp-z algorithm built on the
// power-of-two path. Transforms are unnormalized, matching cuFFT/FFTW
// conventions: ifft(fft(x)) == n * x.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"

namespace fmmfft::fft {

enum class Direction { Forward, Inverse };

/// Direct O(n^2) DFT, long-double accumulated: the accuracy reference.
template <typename T>
void dft_reference(const std::complex<T>* x, std::complex<T>* y, index_t n,
                   Direction dir = Direction::Forward);

/// Plan for 1D transforms of a fixed size (any n >= 1). Holds twiddle
/// tables; plan once, execute many times. Thread-safe: per-execution
/// scratch comes from a thread-local arena, so any number of threads may
/// call execute() on one shared plan concurrently (on disjoint data).
/// Batched entry points parallelize across batches internally.
template <typename T>
class Plan1D {
 public:
  explicit Plan1D(index_t n);
  ~Plan1D();
  Plan1D(Plan1D&&) noexcept;
  Plan1D& operator=(Plan1D&&) noexcept;

  index_t size() const;

  /// In-place transform of `data` (length n).
  void execute(std::complex<T>* data, Direction dir) const;

  /// `count` independent transforms on contiguous batches:
  /// batch g occupies data[g*n .. g*n + n).
  void execute_batched(std::complex<T>* data, index_t count, Direction dir) const;

  /// `count` transforms with cuFFT-style advanced layout: element j of
  /// batch g lives at data[g*dist + j*stride].
  void execute_strided(std::complex<T>* data, index_t count, index_t stride, index_t dist,
                       Direction dir) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// 2D transform of an n0×n1 column-major array (n0 fastest). Implemented
/// as rows-FFT, blocked transpose, rows-FFT, transpose back.
template <typename T>
class Plan2D {
 public:
  Plan2D(index_t n0, index_t n1);
  ~Plan2D();
  Plan2D(Plan2D&&) noexcept;
  Plan2D& operator=(Plan2D&&) noexcept;

  index_t size0() const;
  index_t size1() const;

  void execute(std::complex<T>* data, Direction dir) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide LRU plan cache. Returns a shared immutable plan for size
/// n, constructing it on first use; repeated fft()/fft2d()/per-call-plan
/// paths stop rebuilding twiddle tables. Thread-safe.
template <typename T>
std::shared_ptr<const Plan1D<T>> cached_plan1d(index_t n);

/// Cumulative cache statistics (for tests and diagnostics).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};
PlanCacheStats plan_cache_stats();

/// One-shot convenience transforms (plan internally, served from the
/// process-wide plan cache).
template <typename T>
void fft(std::complex<T>* data, index_t n, Direction dir = Direction::Forward);
template <typename T>
void fft2d(std::complex<T>* data, index_t n0, index_t n1, Direction dir = Direction::Forward);

/// Scale data by 1/n (apply after an Inverse transform to invert Forward).
template <typename T>
void normalize(std::complex<T>* data, index_t n, index_t transform_size);

/// Flop count model for a complex transform of size n (5 n log2 n).
inline double fft_flops(index_t n) {
  double lg = n > 1 ? std::log2(double(n)) : 0.0;
  return 5.0 * double(n) * lg;
}

}  // namespace fmmfft::fft
