// Stockham autosort FFT with Bluestein fallback for non-pow2 sizes.
//
// Power-of-two transforms run radix-4 Stockham stages (one radix-2 cleanup
// stage first when log2(n) is odd): a radix-4 pass does the work of two
// radix-2 passes with 3/4 of the twiddle multiplies and half the sweeps
// over the data. Butterflies use explicit real/imaginary arithmetic —
// std::complex operator* compiles to a __muldc3 libcall (inf/NaN recovery
// branches) on GCC/Clang, which would dominate the inner loop.
//
// Plans are thread-safe: per-execution scratch comes from the thread-local
// ScratchArena, so any number of threads may execute one shared plan —
// which the pool-parallel execute_batched/execute_strided paths rely on.
#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <list>
#include <mutex>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/permute.hpp"
#include "common/threadpool.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::fft {
namespace {

template <typename T>
using Cx = std::complex<T>;

/// Complex multiply without the __muldc3 libcall.
template <typename T>
inline Cx<T> cmul(Cx<T> a, Cx<T> b) {
  return Cx<T>(a.real() * b.real() - a.imag() * b.imag(),
               a.real() * b.imag() + a.imag() * b.real());
}

/// Twiddle tables for the mixed radix-4/radix-2 Stockham schedule of a pow2
/// transform. When log2(n) is odd the first stage is radix-2 (storing
/// exp(-2πi·p/len) for p < len/2); every other stage is radix-4, storing
/// the interleaved triplet (w^p, w^2p, w^3p), w = exp(-2πi/len), p < len/4.
template <typename T>
struct Twiddles {
  struct Stage {
    int radix;
    index_t len;  ///< current transform length when this stage runs
    index_t off;  ///< offset into w
  };
  std::vector<Cx<T>, AlignedAllocator<Cx<T>>> w;
  std::vector<Stage> stages;

  explicit Twiddles(index_t n) {
    index_t len = n;
    index_t total = 0;
    if (len >= 2 && ilog2_exact(n) % 2 == 1) {
      stages.push_back({2, len, total});
      total += len / 2;
      len /= 2;
    }
    for (; len >= 4; len /= 4) {
      stages.push_back({4, len, total});
      total += 3 * (len / 4);
    }
    FMMFFT_CHECK(len == 1 || n == 1);
    w.resize(static_cast<std::size_t>(total));
    for (const Stage& st : stages) {
      const long double theta = 2.0L * pi_v<long double> / (long double)st.len;
      auto tw = [&](index_t p) {
        return Cx<T>((T)std::cos((long double)p * theta),
                     (T)-std::sin((long double)p * theta));
      };
      if (st.radix == 2) {
        for (index_t p = 0; p < st.len / 2; ++p) w[(std::size_t)(st.off + p)] = tw(p);
      } else {
        for (index_t p = 0; p < st.len / 4; ++p) {
          w[(std::size_t)(st.off + 3 * p)] = tw(p);
          w[(std::size_t)(st.off + 3 * p + 1)] = tw(2 * p);
          w[(std::size_t)(st.off + 3 * p + 2)] = tw(3 * p);
        }
      }
    }
  }
};

/// One pow2 Stockham transform: ping-pongs between data and scratch,
/// leaving the result in data. `Inv` selects the conjugated twiddles.
template <typename T, bool Inv>
void stockham_pow2(Cx<T>* data, Cx<T>* scratch, index_t n, const Twiddles<T>& tw) {
  if (n == 1) return;
  Cx<T>* src = data;
  Cx<T>* dst = scratch;
  index_t s = 1;
  for (const auto& st : tw.stages) {
    const Cx<T>* wstage = tw.w.data() + st.off;
    if (st.radix == 2) {
      const index_t m = st.len / 2;
      for (index_t p = 0; p < m; ++p) {
        Cx<T> wp = wstage[p];
        if constexpr (Inv) wp = std::conj(wp);
        Cx<T>* d0 = dst + s * (2 * p);
        Cx<T>* d1 = dst + s * (2 * p + 1);
        const Cx<T>* s0 = src + s * p;
        const Cx<T>* s1 = src + s * (p + m);
        for (index_t q = 0; q < s; ++q) {
          const Cx<T> a = s0[q];
          const Cx<T> b = s1[q];
          d0[q] = a + b;
          d1[q] = cmul(a - b, wp);
        }
      }
      s *= 2;
    } else {
      // Radix-4 DIF butterfly, algebraically two radix-2 stages fused:
      //   dst[4p+0] = (a+c) + (b+d)
      //   dst[4p+1] = w^p  ·((a−c) ∓ i(b−d))   (− forward / + inverse)
      //   dst[4p+2] = w^2p·((a+c) − (b+d))
      //   dst[4p+3] = w^3p·((a−c) ± i(b−d))
      const index_t m = st.len / 4;
      for (index_t p = 0; p < m; ++p) {
        Cx<T> w1 = wstage[3 * p], w2 = wstage[3 * p + 1], w3 = wstage[3 * p + 2];
        if constexpr (Inv) {
          w1 = std::conj(w1);
          w2 = std::conj(w2);
          w3 = std::conj(w3);
        }
        Cx<T>* d0 = dst + s * (4 * p);
        Cx<T>* d1 = dst + s * (4 * p + 1);
        Cx<T>* d2 = dst + s * (4 * p + 2);
        Cx<T>* d3 = dst + s * (4 * p + 3);
        const Cx<T>* s0 = src + s * p;
        const Cx<T>* s1 = src + s * (p + m);
        const Cx<T>* s2 = src + s * (p + 2 * m);
        const Cx<T>* s3 = src + s * (p + 3 * m);
        for (index_t q = 0; q < s; ++q) {
          const Cx<T> a = s0[q], b = s1[q], c = s2[q], d = s3[q];
          const Cx<T> t0 = a + c;
          const Cx<T> t1 = a - c;
          const Cx<T> t2 = b + d;
          const Cx<T> bd = b - d;
          // ∓i·(b−d): rotate by −90° forward, +90° inverse.
          const Cx<T> t3 = Inv ? Cx<T>(-bd.imag(), bd.real()) : Cx<T>(bd.imag(), -bd.real());
          d0[q] = t0 + t2;
          d1[q] = cmul(t1 + t3, w1);
          d2[q] = cmul(t0 - t2, w2);
          d3[q] = cmul(t1 - t3, w3);
        }
      }
      s *= 4;
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy_n(src, n, data);
}

}  // namespace

template <typename T>
void dft_reference(const Cx<T>* x, Cx<T>* y, index_t n, Direction dir) {
  FMMFFT_CHECK(x != y);
  const long double sgn = dir == Direction::Forward ? -1.0L : 1.0L;
  for (index_t i = 0; i < n; ++i) {
    std::complex<long double> s = 0;
    for (index_t j = 0; j < n; ++j) {
      // Reduce i*j mod n before the trig call to keep the argument small.
      long double ang = sgn * 2.0L * pi_v<long double> *
                        (long double)((__int128)i * j % n) / (long double)n;
      s += std::complex<long double>(x[j]) *
           std::complex<long double>(std::cos(ang), std::sin(ang));
    }
    y[i] = Cx<T>((T)s.real(), (T)s.imag());
  }
}

// ---------------------------------------------------------------------------
// Plan1D

template <typename T>
struct Plan1D<T>::Impl {
  index_t n;
  bool pow2;
  Twiddles<T> tw;                               // for n (pow2) or m (Bluestein)

  // Bluestein state (pow2 == false): transform size m >= 2n-1, chirp c,
  // and the precomputed forward-FFT of the chirp filter for each direction.
  index_t m = 0;
  Buffer<Cx<T>> chirp_fwd, chirp_inv;           // c[k], per direction
  Buffer<Cx<T>> filter_fft_fwd, filter_fft_inv; // FFT(b), per direction

  static index_t next_pow2(index_t v) {
    index_t p = 1;
    while (p < v) p *= 2;
    return p;
  }

  explicit Impl(index_t n_)
      : n(n_), pow2(is_pow2(n_)), tw(pow2 ? n_ : next_pow2(2 * n_ - 1)) {
    FMMFFT_CHECK_MSG(n >= 1, "FFT size must be positive");
    if (!pow2) {
      m = next_pow2(2 * n - 1);
      chirp_fwd = Buffer<Cx<T>>(n);
      chirp_inv = Buffer<Cx<T>>(n);
      filter_fft_fwd = Buffer<Cx<T>>(m);
      filter_fft_inv = Buffer<Cx<T>>(m);
      ScratchBlock<Cx<T>> scratch(m);
      for (int d = 0; d < 2; ++d) {
        const long double sgn = d == 0 ? -1.0L : 1.0L;
        auto& c = d == 0 ? chirp_fwd : chirp_inv;
        auto& bf = d == 0 ? filter_fft_fwd : filter_fft_inv;
        for (index_t k = 0; k < n; ++k) {
          // k^2 mod 2n keeps the phase argument small for huge k.
          long double ang =
              sgn * pi_v<long double> * (long double)((__int128)k * k % (2 * n)) / (long double)n;
          c[k] = Cx<T>((T)std::cos(ang), (T)std::sin(ang));
        }
        bf.fill(Cx<T>(0));
        for (index_t k = 0; k < n; ++k) {
          bf[k] = std::conj(c[k]);
          if (k > 0) bf[m - k] = std::conj(c[k]);
        }
        stockham_pow2<T, false>(bf.data(), scratch.data(), m, tw);
      }
    }
  }

  /// Transform one contiguous line in place. const and thread-safe: all
  /// mutable state is leased from the calling thread's ScratchArena.
  void run_one(Cx<T>* data, Direction dir) const {
    if (pow2) {
      ScratchBlock<Cx<T>> scratch(n);
      if (dir == Direction::Forward)
        stockham_pow2<T, false>(data, scratch.data(), n, tw);
      else
        stockham_pow2<T, true>(data, scratch.data(), n, tw);
      return;
    }
    // Bluestein: y[k] = c[k] * IFFT( FFT(x.*c) .* FFT(b) )[k] / m
    const auto& c = dir == Direction::Forward ? chirp_fwd : chirp_inv;
    const auto& bf = dir == Direction::Forward ? filter_fft_fwd : filter_fft_inv;
    ScratchBlock<Cx<T>> work(m);
    ScratchBlock<Cx<T>> scratch(m);
    for (index_t k = 0; k < n; ++k) work[k] = cmul(data[k], c[k]);
    for (index_t k = n; k < m; ++k) work[k] = Cx<T>(0);
    stockham_pow2<T, false>(work.data(), scratch.data(), m, tw);
    for (index_t k = 0; k < m; ++k) work[k] = cmul(work[k], bf[k]);
    stockham_pow2<T, true>(work.data(), scratch.data(), m, tw);
    const T inv_m = T(1) / T(m);
    for (index_t k = 0; k < n; ++k) data[k] = cmul(work[k], c[k]) * inv_m;
  }

  /// Grain for batch parallelism: amortize chunk dispatch over at least
  /// ~2^14 points' worth of transforms so tiny-n batches don't drown in
  /// scheduling overhead.
  index_t batch_grain() const {
    return std::max<index_t>(1, (index_t(1) << 14) / std::max<index_t>(1, n));
  }
};

template <typename T>
Plan1D<T>::Plan1D(index_t n) : impl_(std::make_unique<Impl>(n)) {}
template <typename T>
Plan1D<T>::~Plan1D() = default;
template <typename T>
Plan1D<T>::Plan1D(Plan1D&&) noexcept = default;
template <typename T>
Plan1D<T>& Plan1D<T>::operator=(Plan1D&&) noexcept = default;

template <typename T>
index_t Plan1D<T>::size() const {
  return impl_->n;
}

namespace {

/// One hook for all plan entry points. The flop counter records the model
/// count 5·n·log2(n) per transform (what the §5 analysis uses), not the
/// larger operation count of the Bluestein fallback for non-pow2 sizes.
/// `gather_scatter` marks the strided path's extra copy through the line
/// buffer. Traffic counts data passes only; twiddle/chirp/filter table
/// reads are excluded (§5.3 convention, same as the FMM operator tables).
inline void count_transforms(index_t n, bool pow2, index_t bluestein_m, double cx_bytes,
                             index_t count, bool gather_scatter = false) {
  FMMFFT_COUNT("fft.transforms", count);
  FMMFFT_COUNT("fft.launches", 1);
  FMMFFT_COUNT("fft.points", double(n) * double(count));
  FMMFFT_COUNT("fft.flops", fft_flops(n) * double(count));
  if (obs::traffic_enabled()) {
    double rd_cx, wr_cx;  // complex elements per transform
    if (pow2) {
      // Each Stockham stage ping-pongs the whole line; odd stage counts add
      // the copy back into data (see stockham_passes).
      const double p = double(obs::stockham_passes(ilog2_exact(n)));
      rd_cx = wr_cx = p * double(n);
    } else {
      // Bluestein: chirp-modulate into work (rd n, wr m), two size-m
      // Stockham transforms, the pointwise filter pass (rd m, wr m), and
      // the demodulated writeback (rd n, wr n).
      const double p = double(obs::stockham_passes(ilog2_exact(bluestein_m)));
      rd_cx = (2.0 * p + 1.0) * double(bluestein_m) + 2.0 * double(n);
      wr_cx = (2.0 * p + 2.0) * double(bluestein_m) + double(n);
    }
    if (gather_scatter) {  // strided gather into the line buffer + scatter
      rd_cx += 2.0 * double(n);
      wr_cx += 2.0 * double(n);
    }
    obs::TrafficLedger::global().add_rw("fft", rd_cx * double(count) * cx_bytes,
                                        wr_cx * double(count) * cx_bytes,
                                        fft_flops(n) * double(count));
  }
}

}  // namespace

template <typename T>
void Plan1D<T>::execute(Cx<T>* data, Direction dir) const {
  FMMFFT_SPAN("FFT");
  count_transforms(impl_->n, impl_->pow2, impl_->m, 2.0 * sizeof(T), 1);
  impl_->run_one(data, dir);
}

template <typename T>
void Plan1D<T>::execute_batched(Cx<T>* data, index_t count, Direction dir) const {
  FMMFFT_SPAN("FFT-batched");
  count_transforms(impl_->n, impl_->pow2, impl_->m, 2.0 * sizeof(T), count);
  const Impl& impl = *impl_;
  parallel_for(
      count,
      [&](index_t b, index_t e) {
        for (index_t g = b; g < e; ++g) impl.run_one(data + g * impl.n, dir);
      },
      impl.batch_grain());
}

template <typename T>
void Plan1D<T>::execute_strided(Cx<T>* data, index_t count, index_t stride, index_t dist,
                                Direction dir) const {
  FMMFFT_SPAN("FFT-strided");
  count_transforms(impl_->n, impl_->pow2, impl_->m, 2.0 * sizeof(T), count,
                   /*gather_scatter=*/stride != 1);
  const Impl& impl = *impl_;
  const index_t n = impl.n;
  if (stride == 1) {
    parallel_for(
        count,
        [&](index_t b, index_t e) {
          for (index_t g = b; g < e; ++g) impl.run_one(data + g * dist, dir);
        },
        impl.batch_grain());
    return;
  }
  // Gather each strided batch into contiguous scratch, transform, scatter.
  // The line buffer is an arena lease per chunk, not a per-call heap
  // allocation (and per-thread, so chunks never share it).
  parallel_for(
      count,
      [&](index_t b, index_t e) {
        ScratchBlock<Cx<T>> line(n);
        for (index_t g = b; g < e; ++g) {
          Cx<T>* base = data + g * dist;
          for (index_t j = 0; j < n; ++j) line[j] = base[j * stride];
          impl.run_one(line.data(), dir);
          for (index_t j = 0; j < n; ++j) base[j * stride] = line[j];
        }
      },
      impl.batch_grain());
}

// ---------------------------------------------------------------------------
// Plan cache

namespace {

std::mutex& plan_cache_mu() {
  static std::mutex mu;
  return mu;
}

PlanCacheStats& plan_cache_stats_locked() {
  static PlanCacheStats stats;
  return stats;
}

/// LRU map n -> shared plan, one per element type. Small and linear-scanned:
/// a run touches a handful of distinct sizes (N, M, P, Bluestein m).
template <typename T>
struct PlanCache {
  static constexpr std::size_t kCapacity = 32;
  struct Entry {
    index_t n;
    std::uint64_t tick;
    std::shared_ptr<const Plan1D<T>> plan;
  };
  std::vector<Entry> entries;
  std::uint64_t tick = 0;

  static PlanCache& instance() {
    static PlanCache cache;
    return cache;
  }
};

}  // namespace

template <typename T>
std::shared_ptr<const Plan1D<T>> cached_plan1d(index_t n) {
  auto& cache = PlanCache<T>::instance();
  std::lock_guard<std::mutex> lk(plan_cache_mu());
  for (auto& e : cache.entries) {
    if (e.n == n) {
      e.tick = ++cache.tick;
      plan_cache_stats_locked().hits++;
      return e.plan;
    }
  }
  plan_cache_stats_locked().misses++;
  auto plan = std::make_shared<const Plan1D<T>>(n);
  if (cache.entries.size() >= PlanCache<T>::kCapacity) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cache.entries.size(); ++i)
      if (cache.entries[i].tick < cache.entries[victim].tick) victim = i;
    cache.entries[victim] = cache.entries.back();
    cache.entries.pop_back();
    plan_cache_stats_locked().evictions++;
  }
  cache.entries.push_back({n, ++cache.tick, plan});
  return plan;
}

PlanCacheStats plan_cache_stats() {
  std::lock_guard<std::mutex> lk(plan_cache_mu());
  return plan_cache_stats_locked();
}

// ---------------------------------------------------------------------------
// Plan2D

template <typename T>
struct Plan2D<T>::Impl {
  index_t n0, n1;
  std::shared_ptr<const Plan1D<T>> p0, p1;

  Impl(index_t n0_, index_t n1_)
      : n0(n0_), n1(n1_), p0(cached_plan1d<T>(n0_)), p1(cached_plan1d<T>(n1_)) {}

  void run(Cx<T>* data, Direction dir) const {
    // FFT the n1 contiguous length-n0 lines, transpose, FFT the n0
    // length-n1 lines, transpose back. Scratch is an arena lease, so a
    // shared Plan2D is executable from any number of threads.
    ScratchBlock<Cx<T>> scratch(n0 * n1);
    p0->execute_batched(data, n1, dir);
    transpose_blocked(data, scratch.data(), n0, n1);
    p1->execute_batched(scratch.data(), n0, dir);
    transpose_blocked(scratch.data(), data, n1, n0);
  }
};

template <typename T>
Plan2D<T>::Plan2D(index_t n0, index_t n1) : impl_(std::make_unique<Impl>(n0, n1)) {}
template <typename T>
Plan2D<T>::~Plan2D() = default;
template <typename T>
Plan2D<T>::Plan2D(Plan2D&&) noexcept = default;
template <typename T>
Plan2D<T>& Plan2D<T>::operator=(Plan2D&&) noexcept = default;

template <typename T>
index_t Plan2D<T>::size0() const {
  return impl_->n0;
}
template <typename T>
index_t Plan2D<T>::size1() const {
  return impl_->n1;
}
template <typename T>
void Plan2D<T>::execute(Cx<T>* data, Direction dir) const {
  impl_->run(data, dir);
}

// ---------------------------------------------------------------------------

template <typename T>
void fft(Cx<T>* data, index_t n, Direction dir) {
  cached_plan1d<T>(n)->execute(data, dir);
}

template <typename T>
void fft2d(Cx<T>* data, index_t n0, index_t n1, Direction dir) {
  // Plan2D's own 1D plans come from the cache; only the (cheap) 2D shell
  // is rebuilt per call.
  Plan2D<T>(n0, n1).execute(data, dir);
}

template <typename T>
void normalize(Cx<T>* data, index_t n, index_t transform_size) {
  const T s = T(1) / T(transform_size);
  for (index_t i = 0; i < n; ++i) data[i] *= s;
}

#define FMMFFT_INSTANTIATE_FFT(T)                                                   \
  template void dft_reference<T>(const Cx<T>*, Cx<T>*, index_t, Direction);          \
  template class Plan1D<T>;                                                          \
  template class Plan2D<T>;                                                          \
  template std::shared_ptr<const Plan1D<T>> cached_plan1d<T>(index_t);               \
  template void fft<T>(Cx<T>*, index_t, Direction);                                  \
  template void fft2d<T>(Cx<T>*, index_t, index_t, Direction);                       \
  template void normalize<T>(Cx<T>*, index_t, index_t);

FMMFFT_INSTANTIATE_FFT(float)
FMMFFT_INSTANTIATE_FFT(double)

}  // namespace fmmfft::fft
