// Stockham radix-2 autosort FFT with Bluestein fallback for non-pow2 sizes.
#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/permute.hpp"
#include "obs/obs.hpp"

namespace fmmfft::fft {
namespace {

template <typename T>
using Cx = std::complex<T>;

/// Twiddle tables for all log2(n) Stockham stages of a pow2 transform.
/// Stage t operates on current length n_cur = n >> t and stores
/// exp(-2·pi·i·p / n_cur) for p < n_cur/2, concatenated per stage.
template <typename T>
struct Twiddles {
  std::vector<Cx<T>, AlignedAllocator<Cx<T>>> w;
  std::vector<index_t> stage_off;

  explicit Twiddles(index_t n) {
    index_t total = 0;
    for (index_t len = n; len >= 2; len /= 2) {
      stage_off.push_back(total);
      total += len / 2;
    }
    w.resize(static_cast<std::size_t>(total));
    index_t t = 0;
    for (index_t len = n; len >= 2; len /= 2, ++t) {
      const long double theta = 2.0L * pi_v<long double> / (long double)len;
      for (index_t p = 0; p < len / 2; ++p)
        w[static_cast<std::size_t>(stage_off[(std::size_t)t] + p)] =
            Cx<T>((T)std::cos((long double)p * theta), (T)-std::sin((long double)p * theta));
    }
  }
};

/// One pow2 Stockham transform: ping-pongs between data and scratch,
/// leaving the result in data. `Inv` selects the conjugated twiddles.
template <typename T, bool Inv>
void stockham_pow2(Cx<T>* data, Cx<T>* scratch, index_t n, const Twiddles<T>& tw) {
  if (n == 1) return;
  Cx<T>* src = data;
  Cx<T>* dst = scratch;
  index_t s = 1;
  index_t t = 0;
  for (index_t len = n; len >= 2; len /= 2, s *= 2, ++t) {
    const index_t m = len / 2;
    const Cx<T>* wstage = tw.w.data() + tw.stage_off[(std::size_t)t];
    for (index_t p = 0; p < m; ++p) {
      Cx<T> wp = wstage[p];
      if constexpr (Inv) wp = std::conj(wp);
      Cx<T>* d0 = dst + s * (2 * p);
      Cx<T>* d1 = dst + s * (2 * p + 1);
      const Cx<T>* s0 = src + s * p;
      const Cx<T>* s1 = src + s * (p + m);
      for (index_t q = 0; q < s; ++q) {
        const Cx<T> a = s0[q];
        const Cx<T> b = s1[q];
        d0[q] = a + b;
        d1[q] = (a - b) * wp;
      }
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy_n(src, n, data);
}

}  // namespace

template <typename T>
void dft_reference(const Cx<T>* x, Cx<T>* y, index_t n, Direction dir) {
  FMMFFT_CHECK(x != y);
  const long double sgn = dir == Direction::Forward ? -1.0L : 1.0L;
  for (index_t i = 0; i < n; ++i) {
    std::complex<long double> s = 0;
    for (index_t j = 0; j < n; ++j) {
      // Reduce i*j mod n before the trig call to keep the argument small.
      long double ang = sgn * 2.0L * pi_v<long double> *
                        (long double)((__int128)i * j % n) / (long double)n;
      s += std::complex<long double>(x[j]) *
           std::complex<long double>(std::cos(ang), std::sin(ang));
    }
    y[i] = Cx<T>((T)s.real(), (T)s.imag());
  }
}

// ---------------------------------------------------------------------------
// Plan1D

template <typename T>
struct Plan1D<T>::Impl {
  index_t n;
  bool pow2;
  Twiddles<T> tw;                               // for n (pow2) or m (Bluestein)
  mutable Buffer<Cx<T>> scratch;                // Stockham ping-pong buffer

  // Bluestein state (pow2 == false): transform size m >= 2n-1, chirp c,
  // and the precomputed forward-FFT of the chirp filter for each direction.
  index_t m = 0;
  Buffer<Cx<T>> chirp_fwd, chirp_inv;           // c[k], per direction
  Buffer<Cx<T>> filter_fft_fwd, filter_fft_inv; // FFT(b), per direction
  mutable Buffer<Cx<T>> work;                   // length m

  static index_t next_pow2(index_t v) {
    index_t p = 1;
    while (p < v) p *= 2;
    return p;
  }

  explicit Impl(index_t n_)
      : n(n_),
        pow2(is_pow2(n_)),
        tw(pow2 ? n_ : next_pow2(2 * n_ - 1)),
        scratch(pow2 ? n_ : next_pow2(2 * n_ - 1)) {
    FMMFFT_CHECK_MSG(n >= 1, "FFT size must be positive");
    if (!pow2) {
      m = next_pow2(2 * n - 1);
      chirp_fwd = Buffer<Cx<T>>(n);
      chirp_inv = Buffer<Cx<T>>(n);
      filter_fft_fwd = Buffer<Cx<T>>(m);
      filter_fft_inv = Buffer<Cx<T>>(m);
      work = Buffer<Cx<T>>(m);
      for (int d = 0; d < 2; ++d) {
        const long double sgn = d == 0 ? -1.0L : 1.0L;
        auto& c = d == 0 ? chirp_fwd : chirp_inv;
        auto& bf = d == 0 ? filter_fft_fwd : filter_fft_inv;
        for (index_t k = 0; k < n; ++k) {
          // k^2 mod 2n keeps the phase argument small for huge k.
          long double ang =
              sgn * pi_v<long double> * (long double)((__int128)k * k % (2 * n)) / (long double)n;
          c[k] = Cx<T>((T)std::cos(ang), (T)std::sin(ang));
        }
        bf.fill(Cx<T>(0));
        for (index_t k = 0; k < n; ++k) {
          bf[k] = std::conj(c[k]);
          if (k > 0) bf[m - k] = std::conj(c[k]);
        }
        stockham_pow2<T, false>(bf.data(), work.data(), m, tw);
      }
    }
  }

  void run_one(Cx<T>* data, Direction dir) const {
    if (pow2) {
      if (dir == Direction::Forward)
        stockham_pow2<T, false>(data, scratch.data(), n, tw);
      else
        stockham_pow2<T, true>(data, scratch.data(), n, tw);
      return;
    }
    // Bluestein: y[k] = c[k] * IFFT( FFT(x.*c) .* FFT(b) )[k] / m
    const auto& c = dir == Direction::Forward ? chirp_fwd : chirp_inv;
    const auto& bf = dir == Direction::Forward ? filter_fft_fwd : filter_fft_inv;
    for (index_t k = 0; k < n; ++k) work[k] = data[k] * c[k];
    for (index_t k = n; k < m; ++k) work[k] = Cx<T>(0);
    stockham_pow2<T, false>(work.data(), scratch.data(), m, tw);
    for (index_t k = 0; k < m; ++k) work[k] *= bf[k];
    stockham_pow2<T, true>(work.data(), scratch.data(), m, tw);
    const T inv_m = T(1) / T(m);
    for (index_t k = 0; k < n; ++k) data[k] = work[k] * c[k] * inv_m;
  }
};

template <typename T>
Plan1D<T>::Plan1D(index_t n) : impl_(std::make_unique<Impl>(n)) {}
template <typename T>
Plan1D<T>::~Plan1D() = default;
template <typename T>
Plan1D<T>::Plan1D(Plan1D&&) noexcept = default;
template <typename T>
Plan1D<T>& Plan1D<T>::operator=(Plan1D&&) noexcept = default;

template <typename T>
index_t Plan1D<T>::size() const {
  return impl_->n;
}

namespace {

/// One hook for all plan entry points. The flop counter records the model
/// count 5·n·log2(n) per transform (what the §5 analysis uses), not the
/// larger operation count of the Bluestein fallback for non-pow2 sizes.
inline void count_transforms(index_t n, index_t count) {
  FMMFFT_COUNT("fft.transforms", count);
  FMMFFT_COUNT("fft.launches", 1);
  FMMFFT_COUNT("fft.points", double(n) * double(count));
  FMMFFT_COUNT("fft.flops", fft_flops(n) * double(count));
}

}  // namespace

template <typename T>
void Plan1D<T>::execute(Cx<T>* data, Direction dir) const {
  FMMFFT_SPAN("FFT");
  count_transforms(impl_->n, 1);
  impl_->run_one(data, dir);
}

template <typename T>
void Plan1D<T>::execute_batched(Cx<T>* data, index_t count, Direction dir) const {
  FMMFFT_SPAN("FFT-batched");
  count_transforms(impl_->n, count);
  for (index_t g = 0; g < count; ++g) impl_->run_one(data + g * impl_->n, dir);
}

template <typename T>
void Plan1D<T>::execute_strided(Cx<T>* data, index_t count, index_t stride, index_t dist,
                                Direction dir) const {
  FMMFFT_SPAN("FFT-strided");
  count_transforms(impl_->n, count);
  const index_t n = impl_->n;
  if (stride == 1) {
    for (index_t g = 0; g < count; ++g) impl_->run_one(data + g * dist, dir);
    return;
  }
  // Gather each strided batch into contiguous scratch, transform, scatter.
  Buffer<Cx<T>> line(n);
  for (index_t g = 0; g < count; ++g) {
    Cx<T>* base = data + g * dist;
    for (index_t j = 0; j < n; ++j) line[j] = base[j * stride];
    impl_->run_one(line.data(), dir);
    for (index_t j = 0; j < n; ++j) base[j * stride] = line[j];
  }
}

// ---------------------------------------------------------------------------
// Plan2D

template <typename T>
struct Plan2D<T>::Impl {
  index_t n0, n1;
  Plan1D<T> p0, p1;
  mutable Buffer<Cx<T>> scratch;

  Impl(index_t n0_, index_t n1_) : n0(n0_), n1(n1_), p0(n0_), p1(n1_), scratch(n0_ * n1_) {}

  void run(Cx<T>* data, Direction dir) const {
    // FFT the n1 contiguous length-n0 lines, transpose, FFT the n0
    // length-n1 lines, transpose back.
    p0.execute_batched(data, n1, dir);
    transpose_blocked(data, scratch.data(), n0, n1);
    p1.execute_batched(scratch.data(), n0, dir);
    transpose_blocked(scratch.data(), data, n1, n0);
  }
};

template <typename T>
Plan2D<T>::Plan2D(index_t n0, index_t n1) : impl_(std::make_unique<Impl>(n0, n1)) {}
template <typename T>
Plan2D<T>::~Plan2D() = default;
template <typename T>
Plan2D<T>::Plan2D(Plan2D&&) noexcept = default;
template <typename T>
Plan2D<T>& Plan2D<T>::operator=(Plan2D&&) noexcept = default;

template <typename T>
index_t Plan2D<T>::size0() const {
  return impl_->n0;
}
template <typename T>
index_t Plan2D<T>::size1() const {
  return impl_->n1;
}
template <typename T>
void Plan2D<T>::execute(Cx<T>* data, Direction dir) const {
  impl_->run(data, dir);
}

// ---------------------------------------------------------------------------

template <typename T>
void fft(Cx<T>* data, index_t n, Direction dir) {
  Plan1D<T>(n).execute(data, dir);
}

template <typename T>
void fft2d(Cx<T>* data, index_t n0, index_t n1, Direction dir) {
  Plan2D<T>(n0, n1).execute(data, dir);
}

template <typename T>
void normalize(Cx<T>* data, index_t n, index_t transform_size) {
  const T s = T(1) / T(transform_size);
  for (index_t i = 0; i < n; ++i) data[i] *= s;
}

#define FMMFFT_INSTANTIATE_FFT(T)                                                   \
  template void dft_reference<T>(const Cx<T>*, Cx<T>*, index_t, Direction);          \
  template class Plan1D<T>;                                                          \
  template class Plan2D<T>;                                                          \
  template void fft<T>(Cx<T>*, index_t, Direction);                                  \
  template void fft2d<T>(Cx<T>*, index_t, index_t, Direction);                       \
  template void normalize<T>(Cx<T>*, index_t, index_t);

FMMFFT_INSTANTIATE_FFT(float)
FMMFFT_INSTANTIATE_FFT(double)

}  // namespace fmmfft::fft
