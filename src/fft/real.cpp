#include "fft/real.hpp"

#include <cmath>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "fft/fft.hpp"

namespace fmmfft::fft {

template <typename T>
struct RealPlan1D<T>::Impl {
  using Cx = std::complex<T>;
  index_t n, m;            // m = n/2 packed complex points
  Plan1D<T> half;
  Buffer<Cx> tw;           // e^{-2*pi*i*k/n}, k = 0..m
  mutable Buffer<Cx> work;

  explicit Impl(index_t n_) : n(n_), m(n_ / 2), half(n_ / 2), tw(n_ / 2 + 1), work(n_ / 2) {
    FMMFFT_CHECK_MSG(n >= 2 && n % 2 == 0, "real transforms need even n >= 2");
    for (index_t k = 0; k <= m; ++k) {
      const long double a = -2.0L * pi_v<long double> * (long double)k / (long double)n;
      tw[k] = Cx((T)std::cos(a), (T)std::sin(a));
    }
  }

  void r2c(const T* in, Cx* x) const {
    // Pack adjacent reals into complex points and run one half-size FFT.
    for (index_t k = 0; k < m; ++k) work[k] = Cx(in[2 * k], in[2 * k + 1]);
    half.execute(work.data(), Direction::Forward);
    // Untangle: A = FFT(evens), B = FFT(odds); X[k] = A[k] + w^k B[k].
    for (index_t k = 0; k <= m; ++k) {
      const Cx zk = work[k % m];
      const Cx zmk = std::conj(work[(m - k) % m]);
      const Cx a = (zk + zmk) * T(0.5);
      const Cx b = (zk - zmk) * Cx(0, T(-0.5));  // divide by 2i
      x[k] = a + tw[k] * b;
    }
  }

  void c2r(const Cx* x, T* out) const {
    // Re-tangle the Hermitian half-spectrum into the packed transform.
    for (index_t k = 0; k < m; ++k) {
      const Cx xk = x[k];
      const Cx xc = std::conj(x[m - k]);
      const Cx a = (xk + xc) * T(0.5);
      const Cx wb = (xk - xc) * T(0.5);
      const Cx b = wb * std::conj(tw[k]);  // multiply by e^{+2pi i k/n}
      work[k] = a + Cx(0, 1) * b;
    }
    half.execute(work.data(), Direction::Inverse);
    // Unnormalized inverse: the half FFT yields m·z; doubling gives n·x.
    for (index_t k = 0; k < m; ++k) {
      out[2 * k] = T(2) * work[k].real();
      out[2 * k + 1] = T(2) * work[k].imag();
    }
  }
};

template <typename T>
RealPlan1D<T>::RealPlan1D(index_t n) : impl_(std::make_unique<Impl>(n)) {}
template <typename T>
RealPlan1D<T>::~RealPlan1D() = default;
template <typename T>
RealPlan1D<T>::RealPlan1D(RealPlan1D&&) noexcept = default;
template <typename T>
RealPlan1D<T>& RealPlan1D<T>::operator=(RealPlan1D&&) noexcept = default;

template <typename T>
index_t RealPlan1D<T>::size() const {
  return impl_->n;
}
template <typename T>
void RealPlan1D<T>::r2c(const T* in, std::complex<T>* spectrum) const {
  impl_->r2c(in, spectrum);
}
template <typename T>
void RealPlan1D<T>::c2r(const std::complex<T>* spectrum, T* out) const {
  impl_->c2r(spectrum, out);
}

template class RealPlan1D<float>;
template class RealPlan1D<double>;

}  // namespace fmmfft::fft
