// Real-to-complex and complex-to-real transforms, built on the complex
// substrate via the classic N/2 packing trick: production FFT libraries
// (the paper's cuFFT/FFTW baselines included) expose these, and the
// FMM-FFT's C = 1 input path benchmarks against them.
//
// Conventions match FFTW/cuFFT: r2c produces the n/2+1 non-redundant
// Hermitian half-spectrum of an n-point real signal (unnormalized); c2r
// consumes it and returns n real points scaled by n (so c2r(r2c(x)) == n·x).
#pragma once

#include <complex>
#include <memory>

#include "common/types.hpp"

namespace fmmfft::fft {

template <typename T>
class RealPlan1D {
 public:
  /// n must be even and >= 2 (power of two recommended; any even size
  /// works through the Bluestein path of the complex plan).
  explicit RealPlan1D(index_t n);
  ~RealPlan1D();
  RealPlan1D(RealPlan1D&&) noexcept;
  RealPlan1D& operator=(RealPlan1D&&) noexcept;

  index_t size() const;

  /// Forward: spectrum[k] = sum_t in[t]·exp(-2πi·k·t/n), k = 0..n/2.
  void r2c(const T* in, std::complex<T>* spectrum) const;

  /// Inverse: out[t] = sum over the full Hermitian-extended spectrum;
  /// result is n times the original signal (unnormalized inverse).
  void c2r(const std::complex<T>* spectrum, T* out) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fmmfft::fft
