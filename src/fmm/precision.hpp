// Precision policy for the FMM translation pipeline.
//
// The FMM-FFT's accuracy is set a priori by the truncation rank Q
// (fmm/accuracy.hpp), not by the width of the words the translations are
// computed in — once Q's geometric error term sits above the working
// precision's rounding floor, fp32 translations are as accurate as fp64
// ones and move half the bytes. Mixed mode exploits exactly that: the
// Chebyshev operators (S2M/M2M/S2T/M2L/L2L) are built, stored, and applied
// in fp32 — halving the operator-LRU footprint, the M2L slab traffic, and
// the multipole/source halo payloads on the fabric — while the transform's
// shell (input load, POST accumulation, both 2D-FFT stages, the output)
// stays in the input's native precision. Conversions happen exactly twice,
// at the engine's stage boundaries: input -> S tensor on load, T tensor ->
// POST accumulation on the way out.
//
// Fp64 (the default) is the pre-existing pipeline, bit for bit: the engine
// runs in the shell precision and no conversion happens anywhere.
#pragma once

namespace fmmfft::fmm {

enum class Precision {
  Fp64,   ///< translations in the shell's native width (default)
  Mixed,  ///< fp32 translations under an fp64 shell
};

inline const char* to_string(Precision p) {
  return p == Precision::Mixed ? "mixed" : "fp64";
}

/// Process default from FMMFFT_PRECISION ("fp64" or unset -> Fp64,
/// "mixed" -> Mixed; anything else is a hard error). Read per call so
/// tests can flip the knob between plan constructions.
Precision default_precision();

/// Byte width of the translation-pipeline scalar for a shell whose real
/// scalar is `shell_real_bytes` wide. Mixed collapses to the native fp32
/// pipeline under an fp32 shell, so the width never exceeds the shell's.
inline double translation_real_bytes(Precision prec, double shell_real_bytes) {
  return prec == Precision::Mixed ? 4.0 : shell_real_bytes;
}

}  // namespace fmmfft::fmm
