// FMM-FFT parameter set (Table 1) and admissibility rules.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/types.hpp"

namespace fmmfft::fmm {

/// The tunable parameters of the FMM-FFT for a transform of size N = M·P.
/// There are P-1 periodic 1D FMMs of size M×M, each over a binary tree with
/// 2^L leaves of M_L points, truncated at base level B, with Q-term
/// Chebyshev expansions.
struct Params {
  index_t n = 0;   ///< Transform size N.
  index_t p = 0;   ///< Number of FMMs factor; M = N / P.
  index_t ml = 0;  ///< Points per leaf box per FMM (M_L).
  int b = 2;       ///< Base (coarsest) tree level, B >= 2.
  int q = 16;      ///< Expansion order.

  index_t m() const { return n / p; }
  int l() const { return ilog2_exact(m() / ml); }            ///< Leaf level L.
  index_t leaves() const { return index_t(1) << l(); }       ///< 2^L.
  index_t boxes(int level) const { return index_t(1) << level; }

  /// Validate the standalone (single address space) constraints; throws on
  /// violation. `g`-dependent constraints are in validate_distributed.
  void validate() const {
    FMMFFT_CHECK_MSG(n >= 4 && is_pow2(n), "N must be a power of two >= 4, got " << n);
    FMMFFT_CHECK_MSG(p >= 2 && is_pow2(p) && p < n, "P must be a power of two in [2, N), got " << p);
    FMMFFT_CHECK_MSG(ml >= 1 && is_pow2(ml), "M_L must be a power of two >= 1, got " << ml);
    FMMFFT_CHECK_MSG(m() % ml == 0, "M_L must divide M = N/P");
    FMMFFT_CHECK_MSG(b >= 2, "base level B must be >= 2, got " << b);
    FMMFFT_CHECK_MSG(l() >= b, "leaf level L=" << l() << " must be >= base level B=" << b);
    FMMFFT_CHECK_MSG(q >= 1, "expansion order Q must be >= 1");
  }

  /// Additional constraints for execution on `g` processing elements.
  void validate_distributed(index_t g) const {
    validate();
    FMMFFT_CHECK_MSG(g >= 1 && is_pow2(g), "G must be a power of two >= 1");
    FMMFFT_CHECK_MSG(boxes(b) >= g, "need 2^B >= G so every device owns a base box");
    FMMFFT_CHECK_MSG(m() % g == 0 && p % g == 0, "G must divide both M and P for the 2D FFT");
  }

  bool is_admissible(index_t g = 1) const {
    try {
      validate_distributed(g);
      return true;
    } catch (const Error&) {
      return false;
    }
  }

  std::string to_string() const {
    return "N=" + std::to_string(n) + " P=" + std::to_string(p) + " M=" + std::to_string(m()) +
           " ML=" + std::to_string(ml) + " L=" + std::to_string(l()) + " B=" + std::to_string(b) +
           " Q=" + std::to_string(q);
  }
};

/// Enumerate all admissible parameter sets for a transform of size N on G
/// devices, within the paper's practical search space: P in [32, N/ML_min],
/// M_L in [1, 1024], B in [2, min(L, b_max)], Q fixed by precision.
std::vector<Params> admissible_params(index_t n, index_t g, int q, int b_max = 8,
                                      index_t min_p = 32);

}  // namespace fmmfft::fmm
