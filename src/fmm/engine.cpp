#include "fmm/engine.hpp"

#include <algorithm>
#include <cstring>

#include "blas/blas.hpp"
#include "blas/simd.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/threadpool.hpp"
#include "common/timer.hpp"
#include "fmm/operators.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::fmm {
namespace {

template <typename T>
Buffer<T> cast_buffer(const std::vector<double>& src) {
  Buffer<T> dst(static_cast<index_t>(src.size()));
  for (index_t i = 0; i < dst.size(); ++i) dst[i] = static_cast<T>(src[(std::size_t)i]);
  return dst;
}

/// Ledger scope for a non-Copy stage: fold the per-level "-<digits>"
/// suffix ("M2M-7" -> "fmm.M2M") so launches of one kernel aggregate;
/// "M2L-B" keeps its suffix (distinct operator and traffic shape).
std::string traffic_scope(const std::string& name) {
  std::string base = name;
  const auto dash = base.rfind('-');
  if (dash != std::string::npos && dash + 1 < base.size()) {
    bool digits = true;
    for (std::size_t i = dash + 1; i < base.size(); ++i)
      digits = digits && base[i] >= '0' && base[i] <= '9';
    if (digits) base.resize(dash);
  }
  return "fmm." + base;
}

/// Feed one executed stage's exact counts into the metrics registry.
/// Halo-fill copies are tracked separately so fmm.flops / fmm.mem_bytes /
/// fmm.launches stay launch-for-launch comparable with
/// model::exact_fmm_counts (which has no Copy entries).
///
/// `f32` engines (the native fp32 shell, and the mixed-precision
/// translation pipeline under an fp64 shell) append ".f32" to their ledger
/// scopes: the bytes in one scope are then always at one element width, so
/// the §5 cross-check and the per-precision traffic reports stay exact
/// when two widths coexist in a run. Prefix sums ("fmm.") aggregate both.
void count_stage(const StageStats& st, bool f32) {
  if (obs::traffic_enabled()) {
    const char* suffix = f32 ? ".f32" : "";
    // Copy stages go to halo.cyclic (payload read once, written once) so
    // the fmm.* scopes stay compute-only, matching exact_fmm_counts.
    if (st.kernel == KernelClass::Copy) {
      obs::TrafficLedger::global().add_rw(std::string("halo.cyclic") + suffix, st.mem_bytes,
                                          st.mem_bytes, 0.0);
    } else {
      double rd = st.bytes_read, wr = st.bytes_written;
      if (rd == 0 && wr == 0) rd = wr = st.mem_bytes / 2;
      obs::TrafficLedger::global().add_rw(traffic_scope(st.name) + suffix, rd, wr, st.flops);
    }
  }
  if (!obs::metrics_enabled()) return;
  if (st.kernel == KernelClass::Copy) {
    FMMFFT_COUNT("fmm.halo_bytes", st.mem_bytes);
    return;
  }
  FMMFFT_COUNT("fmm.flops", st.flops);
  FMMFFT_COUNT("fmm.mem_bytes", st.mem_bytes);
  FMMFFT_COUNT("fmm.launches", st.launches);
  FMMFFT_HIST("fmm.launch_us", st.seconds * 1e6);
}

}  // namespace

template <typename T>
Engine<T>::Engine(const Params& prm, int components, index_t g, index_t rank)
    : prm_(prm), c_(components), g_(g), rank_(rank) {
  prm_.validate_distributed(g);
  FMMFFT_CHECK(components == 1 || components == 2);
  FMMFFT_CHECK(rank >= 0 && rank < g);

  cp_ = c_ * prm_.p;
  cpm_ = c_ * (prm_.p - 1);
  nb_leaf_ = prm_.leaves() / g_;

  s2m_op_ = cast_buffer<T>(s2m_matrix(prm_.q, prm_.ml));
  m2m_op_ = cast_buffer<T>(m2m_matrix(prm_.q));
  s2t_tab_ = cast_buffer<T>(s2t_table(prm_, c_));
  ones_q_ = Buffer<T>(prm_.q * prm_.boxes(prm_.b));
  ones_q_.fill(T(1));

  // Precompute the M2L operator slabs: the four cousin separations per
  // non-base level, and the base-level all-pairs slabs when 2^B is small
  // enough to cache (otherwise m2l_operator builds them per call).
  for (int lev = prm_.b + 1; lev <= prm_.l(); ++lev)
    for (index_t sep : level_separations())
      m2l_cache_.emplace(std::make_pair(lev, sep), cast_buffer<T>(m2l_table(prm_, lev, sep, c_)));
  const index_t base_boxes = prm_.boxes(prm_.b);
  if (base_boxes <= 32) {
    for (index_t sep = 2; sep <= base_boxes - 2; ++sep)
      m2l_cache_.emplace(std::make_pair(prm_.b, sep),
                         cast_buffer<T>(m2l_table(prm_, prm_.b, sep, c_)));
  }
  // Larger base levels build their slabs on first use into the keyed LRU
  // (m2l_operator), so repeated executes of one plan pay the build once.
  // Resolve operator slab pointers once, after the cache stops growing:
  // std::map nodes are pointer-stable, so these stay valid for the engine's
  // lifetime and the per-call path never touches the map.
  m2l_level_ops_.resize(static_cast<std::size_t>(prm_.l() - prm_.b));
  for (int lev = prm_.b + 1; lev <= prm_.l(); ++lev) {
    auto& ops = m2l_level_ops_[(std::size_t)(lev - prm_.b - 1)];
    const auto seps = level_separations();
    for (std::size_t k = 0; k < seps.size(); ++k)
      ops[k] = m2l_cache_.at({lev, seps[k]}).data();
  }
  if (base_boxes >= 4) {
    m2l_base_ops_.assign(static_cast<std::size_t>(base_boxes - 3), nullptr);
    for (index_t sep = 2; sep <= base_boxes - 2; ++sep) {
      auto it = m2l_cache_.find({prm_.b, sep});
      if (it != m2l_cache_.end()) m2l_base_ops_[(std::size_t)(sep - 2)] = it->second.data();
    }
  }

  s_ = Buffer<T>(cp_ * prm_.ml * (nb_leaf_ + 2));
  t_ = Buffer<T>(cp_ * prm_.ml * nb_leaf_);
  r_ = Buffer<T>(cpm_);

  const int l = prm_.l();
  mult_.resize(static_cast<std::size_t>(l - prm_.b + 1));
  local_.resize(static_cast<std::size_t>(l - prm_.b + 1));
  for (int lev = prm_.b; lev <= l; ++lev) {
    const index_t nbl = local_boxes(lev);
    if (lev == prm_.b)
      mult_[0] = Buffer<T>(cpm_ * prm_.q * prm_.boxes(prm_.b));  // global
    else
      mult_[(std::size_t)(lev - prm_.b)] = Buffer<T>(cpm_ * prm_.q * (nbl + 4));
    local_[(std::size_t)(lev - prm_.b)] = Buffer<T>(cpm_ * prm_.q * nbl);
  }
}

template <typename T>
void Engine<T>::record_stage(StageStats st, double seconds, double bytes_read,
                             double bytes_written) {
  st.seconds = seconds;
  st.bytes_read = bytes_read;
  st.bytes_written = bytes_written;
  count_stage(st, sizeof(T) == 4);
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.push_back(std::move(st));
}

template <typename T>
T* Engine<T>::source_box(index_t b) {
  FMMFFT_ASSERT(b >= -1 && b <= nb_leaf_);
  return s_.data() + cp_ * prm_.ml * (b + 1);
}

template <typename T>
T* Engine<T>::target_box(index_t b) {
  FMMFFT_ASSERT(b >= 0 && b < nb_leaf_);
  return t_.data() + cp_ * prm_.ml * b;
}

template <typename T>
T* Engine<T>::multipole_box(int level, index_t b) {
  auto& buf = mult_[(std::size_t)(level - prm_.b)];
  if (level == prm_.b) {
    FMMFFT_ASSERT(b >= 0 && b < prm_.boxes(prm_.b));
    return buf.data() + expansion_box_elems() * b;  // global indexing
  }
  FMMFFT_ASSERT(b >= -2 && b < local_boxes(level) + 2);
  return buf.data() + expansion_box_elems() * (b + 2);
}

template <typename T>
T* Engine<T>::local_box(int level, index_t b) {
  FMMFFT_ASSERT(b >= 0 && b < local_boxes(level));
  return local_[(std::size_t)(level - prm_.b)].data() + expansion_box_elems() * b;
}

template <typename T>
void Engine<T>::zero() {
  t_.fill(T(0));
  for (auto& l : local_) l.fill(T(0));
}

template <typename T>
void Engine<T>::s2m() {
  FMMFFT_SPAN("S2M");
  WallTimer stage_timer_;
  // M^L_{(p-1)qb} = S2M_qm S_pmb, skipping the p=0 slice (row offset c_).
  const index_t q = prm_.q, ml = prm_.ml;
  // Leaf multipoles live in the interior of M^L, or directly in this
  // rank's slab of the global base buffer when L == B.
  T* dst = prm_.l() == prm_.b ? multipole_box(prm_.b, box_offset(prm_.b))
                              : multipole_box(prm_.l(), 0);
  blas::gemm_strided_batched<T>(blas::Op::N, blas::Op::T, cpm_, q, ml, T(1),
                                source_box(0) + c_, cp_, cp_ * ml, s2m_op_.data(), q, 0, T(0),
                                dst, cpm_, cpm_ * q, nb_leaf_);
  record_stage({"S2M", KernelClass::BatchedGemm,
                2.0 * double(cpm_) * double(q) * double(ml) * double(nb_leaf_),
                double(sizeof(T)) * (double(cpm_ * ml * nb_leaf_) +
                                     double(cpm_ * q * nb_leaf_) + double(q * ml)),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) * (double(cpm_ * ml * nb_leaf_) + double(q * ml)),
               double(sizeof(T)) * double(cpm_ * q * nb_leaf_));
}

template <typename T>
void Engine<T>::m2m(int level) {
  FMMFFT_SPAN("M2M");
  WallTimer stage_timer_;
  FMMFFT_CHECK(level >= prm_.b && level < prm_.l());
  const index_t q = prm_.q, nbl = local_boxes(level);
  T* dst = level == prm_.b ? multipole_box(prm_.b, box_offset(prm_.b)) : multipole_box(level, 0);
  blas::gemm_strided_batched<T>(blas::Op::N, blas::Op::T, cpm_, q, 2 * q, T(1),
                                multipole_box(level + 1, 0), cpm_, 2 * cpm_ * q,
                                m2m_op_.data(), q, 0, T(0), dst, cpm_, cpm_ * q, nbl);
  record_stage({"M2M-" + std::to_string(level), KernelClass::BatchedGemm,
                4.0 * double(cpm_) * double(q) * double(q) * double(nbl),
                double(sizeof(T)) * (double(2 * cpm_ * q * nbl) +
                                     double(cpm_ * q * nbl) + double(2 * q * q)),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) * (double(2 * cpm_ * q * nbl) + double(2 * q * q)),
               double(sizeof(T)) * double(cpm_ * q * nbl));
}

template <typename T>
void Engine<T>::s2t() {
  FMMFFT_SPAN("S2T");
  WallTimer stage_timer_;
  // T_pib += S2T_{p(j-i)} S_pjb over the three-box neighbourhood; the p=0
  // table slice is the identity, performing the C_0 = I copy in the same
  // sweep. Operator entries come from the precomputed Toeplitz table.
  // Blocked over the flattened component-by-p dimension so the active
  // slice of the Toeplitz table stays cache-resident across all boxes.
  const index_t ml = prm_.ml;
  constexpr index_t kPcw = 64;
  // Boxes are independent targets: share them across the pool; within a
  // worker's range, block pc so the active table slice stays cached. The
  // inner pc stream is the shared SIMD mul-accumulate (this TU builds with
  // contraction off, so it is bit-identical to the scalar reference loop).
  parallel_for(
      nb_leaf_,
      [&](index_t b_lo, index_t b_hi) {
        for (index_t pc0 = 0; pc0 < cp_; pc0 += kPcw) {
          const index_t w = std::min(kPcw, cp_ - pc0);
          for (index_t b = b_lo; b < b_hi; ++b) {
            const T* sb = source_box(b) + pc0;
            T* tb = target_box(b) + pc0;
            for (index_t i = 0; i < ml; ++i) {
              T* trow = tb + cp_ * i;
              for (index_t j = -ml; j < 2 * ml; ++j)
                simd::mul_add_stream(trow, s2t_tab_.data() + (j - i + 2 * ml - 1) * cp_ + pc0,
                                     sb + cp_ * j, w);
            }
          }
        }
      },
      /*grain=*/1);
  record_stage({"S2T", KernelClass::Custom,
                2.0 * 3.0 * double(ml) * double(ml) * double(cp_) * double(nb_leaf_),
                double(sizeof(T)) * (double(cp_ * ml * (nb_leaf_ + 2)) +
                                     2.0 * double(cp_ * ml * nb_leaf_)),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) *
                   (double(cp_ * ml * (nb_leaf_ + 2)) + double(cp_ * ml * nb_leaf_)),
               double(sizeof(T)) * double(cp_ * ml * nb_leaf_));
}

template <typename T>
void Engine<T>::s2t_reference() {
  // Pre-SIMD S2T: same blocking and per-element accumulation order, scalar
  // inner loop. Identity oracle for s2t(); records no stats.
  const index_t ml = prm_.ml;
  constexpr index_t kPcw = 64;
  parallel_for(
      nb_leaf_,
      [&](index_t b_lo, index_t b_hi) {
        for (index_t pc0 = 0; pc0 < cp_; pc0 += kPcw) {
          const index_t w = std::min(kPcw, cp_ - pc0);
          for (index_t b = b_lo; b < b_hi; ++b) {
            const T* sb = source_box(b) + pc0;
            T* tb = target_box(b) + pc0;
            for (index_t i = 0; i < ml; ++i) {
              T* trow = tb + cp_ * i;
              for (index_t j = -ml; j < 2 * ml; ++j) {
                const T* srow = sb + cp_ * j;
                const T* tab = s2t_tab_.data() + (j - i + 2 * ml - 1) * cp_ + pc0;
                for (index_t pc = 0; pc < w; ++pc) trow[pc] += tab[pc] * srow[pc];
              }
            }
          }
        }
      },
      /*grain=*/1);
}

template <typename T>
const T* Engine<T>::m2l_operator(int level, index_t s) {
  auto it = m2l_cache_.find({level, s});
  if (it != m2l_cache_.end()) return it->second.data();
  // Keyed LRU for slabs too numerous to precompute. Slabs stay pinned while
  // they remain within capacity, so m2l_base can resolve every separation's
  // pointer up front and fuse the separation loop per box.
  const M2lKey key{level, s};
  auto pos = m2l_lru_pos_.find(key);
  if (pos != m2l_lru_pos_.end()) {
    m2l_lru_.splice(m2l_lru_.begin(), m2l_lru_, pos->second);
    return m2l_lru_.front().second.data();
  }
  FMMFFT_COUNT("fmm.m2l_slab_builds", 1);
  m2l_lru_.emplace_front(key, cast_buffer<T>(m2l_table(prm_, level, s, c_)));
  m2l_lru_pos_[key] = m2l_lru_.begin();
  if (m2l_lru_.size() > kM2lLruCapacity) {
    m2l_lru_pos_.erase(m2l_lru_.back().first);
    m2l_lru_.pop_back();
  }
  return m2l_lru_.front().second.data();
}

template <typename T>
void Engine<T>::apply_m2l(int level, index_t s, const T* tab, bool base) {
  // Blocked over the flattened component-by-p dimension: the active
  // Q×Q×kPcw operator slice stays cache-resident while streaming boxes.
  const index_t q = prm_.q, nbl = local_boxes(level), off = box_offset(level);
  const index_t nb_global = prm_.boxes(level);
  constexpr index_t kPcw = 64;
  // Boxes are independent targets: share across the pool, block pc inside.
  parallel_for(
      nbl,
      [&](index_t b_lo, index_t b_hi) {
        for (index_t pc0 = 0; pc0 < cpm_; pc0 += kPcw) {
          const index_t w = std::min(kPcw, cpm_ - pc0);
          for (index_t b = b_lo; b < b_hi; ++b) {
            const index_t gb = off + b;
            if (!base && !separation_applies(s, gb % 2 != 0)) continue;
            const T* msrc = (base ? multipole_box(level, mod(gb + s, nb_global))
                                  : multipole_box(level, b + s)) +
                            pc0;
            T* ldst = local_box(level, b) + pc0;
            for (index_t i = 0; i < q; ++i) {
              T* lrow = ldst + cpm_ * i;
              for (index_t j = 0; j < q; ++j) {
                const T* trow = tab + (i + q * j) * cpm_ + pc0;
                const T* mrow = msrc + cpm_ * j;
                for (index_t pc = 0; pc < w; ++pc) lrow[pc] += trow[pc] * mrow[pc];
              }
            }
          }
        }
      },
      /*grain=*/1);
}

template <typename T>
void Engine<T>::m2l_level(int level) {
  FMMFFT_SPAN("M2L");
  WallTimer stage_timer_;
  FMMFFT_CHECK(level > prm_.b && level <= prm_.l());
  const index_t q = prm_.q, nbl = local_boxes(level), off = box_offset(level);
  const auto& seps = level_separations();
  const auto& ops = m2l_level_ops_[(std::size_t)(level - prm_.b - 1)];
  constexpr index_t kPcw = 64;
  // All cousin separations fused into one pass per box: each box's L and M
  // rows are streamed once instead of once per separation. Per L element the
  // additions still run separation-major (ascending, the level_separations
  // order restricted to this parity), j-minor — exactly the order of the
  // per-separation reference passes, so results are bit-identical.
  parallel_for(
      nbl,
      [&](index_t b_lo, index_t b_hi) {
        for (index_t pc0 = 0; pc0 < cpm_; pc0 += kPcw) {
          const index_t w = std::min(kPcw, cpm_ - pc0);
          for (index_t b = b_lo; b < b_hi; ++b) {
            const bool odd = (off + b) % 2 != 0;
            T* ldst = local_box(level, b) + pc0;
            for (std::size_t kk = 0; kk < seps.size(); ++kk) {
              if (!separation_applies(seps[kk], odd)) continue;
              const T* msrc = multipole_box(level, b + seps[kk]) + pc0;
              const T* tab = ops[kk];
              for (index_t i = 0; i < q; ++i) {
                T* lrow = ldst + cpm_ * i;
                for (index_t j = 0; j < q; ++j)
                  simd::mul_add_stream(lrow, tab + (i + q * j) * cpm_ + pc0, msrc + cpm_ * j,
                                       w);
              }
            }
          }
        }
      },
      /*grain=*/1);
  // 3 cousins per box regardless of parity.
  // Mops: M^l read once (with halo) and L^l accumulated (read + write) —
  // the interaction-list reuse a tiled kernel achieves (§5.3 conventions).
  record_stage({"M2L-" + std::to_string(level), KernelClass::Custom,
                2.0 * 3.0 * double(q) * double(q) * double(cpm_) * double(nbl),
                double(sizeof(T)) * (2.0 * double(cpm_ * q * nbl) +
                                     double(cpm_ * q * (nbl + 4))),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) *
                   (double(cpm_ * q * nbl) + double(cpm_ * q * (nbl + 4))),
               double(sizeof(T)) * double(cpm_ * q * nbl));
}

template <typename T>
void Engine<T>::m2l_base() {
  FMMFFT_SPAN("M2L-B");
  WallTimer stage_timer_;
  const index_t q = prm_.q, nbl = local_boxes(prm_.b), off = box_offset(prm_.b);
  const index_t nb_global = prm_.boxes(prm_.b);
  const index_t nsep = std::max<index_t>(nb_global - 3, 0);  // s in [2, 2^B-2]
  // Resolve every separation's operator slab up front (precomputed cache or
  // LRU) so the separation loop fuses per box: L^B rows stream once instead
  // of once per separation. When the slabs outnumber the LRU capacity they
  // cannot all stay pinned — fall back to one pass per separation, building
  // each slab on the fly (the pre-LRU behavior).
  if (nsep > 0 && std::size_t(nsep) <= kM2lLruCapacity) {
    std::vector<const T*> ops((std::size_t)nsep);
    for (index_t s = 2; s <= nb_global - 2; ++s) {
      const T* tab = m2l_base_ops_.empty() ? nullptr : m2l_base_ops_[(std::size_t)(s - 2)];
      ops[(std::size_t)(s - 2)] = tab ? tab : m2l_operator(prm_.b, s);
    }
    constexpr index_t kPcw = 64;
    // Separation-major sweep: one operator slab streams across every box
    // before moving to the next, so the active Q×Q×kPcw slice stays
    // cache-resident (a box-major fusion would cycle all nsep slabs per box
    // and thrash once their combined footprint exceeds L2 — measurably
    // slower at 2^B = 64). Boxes and pc blocks are disjoint targets, so per
    // L element the additions still run s-ascending, j-minor — the same
    // order as the per-separation reference passes (bit-identical). One
    // parallel_for replaces the reference's nsep pool forks.
    parallel_for(
        nbl,
        [&](index_t b_lo, index_t b_hi) {
          for (index_t s = 2; s <= nb_global - 2; ++s) {
            const T* tab = ops[(std::size_t)(s - 2)];
            for (index_t pc0 = 0; pc0 < cpm_; pc0 += kPcw) {
              const index_t w = std::min(kPcw, cpm_ - pc0);
              for (index_t b = b_lo; b < b_hi; ++b) {
                const index_t gb = off + b;
                const T* msrc = multipole_box(prm_.b, mod(gb + s, nb_global)) + pc0;
                T* ldst = local_box(prm_.b, b) + pc0;
                for (index_t i = 0; i < q; ++i) {
                  T* lrow = ldst + cpm_ * i;
                  for (index_t j = 0; j < q; ++j)
                    simd::mul_add_stream(lrow, tab + (i + q * j) * cpm_ + pc0, msrc + cpm_ * j,
                                         w);
                }
              }
            }
          }
        },
        /*grain=*/1);
  } else if (nsep > 0) {
    for (index_t s = 2; s <= nb_global - 2; ++s) {
      const T* tab = m2l_base_ops_.empty() ? nullptr : m2l_base_ops_[(std::size_t)(s - 2)];
      apply_m2l(prm_.b, s, tab ? tab : m2l_operator(prm_.b, s), true);
    }
  }
  // Mops: the gathered global M^B streams once, L^B accumulates.
  const double nsrc = double(nb_global - 3);
  record_stage({"M2L-B", KernelClass::Custom,
                2.0 * nsrc * double(q) * double(q) * double(cpm_) * double(nbl),
                double(sizeof(T)) * (2.0 * double(cpm_ * q * nbl) +
                                     double(cpm_ * q * nb_global)),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) *
                   (double(cpm_ * q * nbl) + double(cpm_ * q * nb_global)),
               double(sizeof(T)) * double(cpm_ * q * nbl));
}

template <typename T>
void Engine<T>::m2l_level_reference(int level) {
  // Pre-fusion cousin M2L: one apply_m2l pass per separation. Identity
  // oracle for m2l_level(); records no stats.
  FMMFFT_CHECK(level > prm_.b && level <= prm_.l());
  const auto& seps = level_separations();
  const auto& ops = m2l_level_ops_[(std::size_t)(level - prm_.b - 1)];
  for (std::size_t k = 0; k < seps.size(); ++k) apply_m2l(level, seps[k], ops[k], false);
}

template <typename T>
void Engine<T>::m2l_base_reference() {
  // Pre-fusion base M2L: one apply_m2l pass per separation. Identity oracle
  // for m2l_base(); records no stats.
  const index_t nb_global = prm_.boxes(prm_.b);
  for (index_t s = 2; s <= nb_global - 2; ++s) {
    const T* tab = m2l_base_ops_.empty() ? nullptr : m2l_base_ops_[(std::size_t)(s - 2)];
    apply_m2l(prm_.b, s, tab ? tab : m2l_operator(prm_.b, s), true);
  }
}

template <typename T>
void Engine<T>::reduce() {
  FMMFFT_SPAN("REDUCE");
  WallTimer stage_timer_;
  // r_{p-1} = sum_{q,b} M^B_{(p-1)qb}: the S2M/M2M columns sum to one, so
  // base-level multipoles preserve the source sums (§4.8). One GEMV on the
  // *global* base buffer — identical on every rank after the allgather.
  const index_t cols = prm_.q * prm_.boxes(prm_.b);
  blas::gemv<T>(blas::Op::N, cpm_, cols, T(1), multipole_box(prm_.b, 0), cpm_, ones_q_.data(),
                1, T(0), r_.data(), 1);
  record_stage({"REDUCE", KernelClass::Gemv, 2.0 * double(cpm_) * double(cols),
                double(sizeof(T)) * (double(cpm_ * cols) + double(cpm_)), 1},
               stage_timer_.seconds(), double(sizeof(T)) * double(cpm_ * cols),
               double(sizeof(T)) * double(cpm_));
}

template <typename T>
void Engine<T>::l2l(int level) {
  FMMFFT_SPAN("L2L");
  WallTimer stage_timer_;
  FMMFFT_CHECK(level >= prm_.b && level < prm_.l());
  const index_t q = prm_.q, nbl = local_boxes(level);
  blas::gemm_strided_batched<T>(blas::Op::N, blas::Op::N, cpm_, 2 * q, q, T(1),
                                local_box(level, 0), cpm_, cpm_ * q, m2m_op_.data(), q, 0, T(1),
                                local_box(level + 1, 0), cpm_, 2 * cpm_ * q, nbl);
  record_stage({"L2L-" + std::to_string(level), KernelClass::BatchedGemm,
                4.0 * double(cpm_) * double(q) * double(q) * double(nbl),
                double(sizeof(T)) * (double(cpm_ * q * nbl) + double(2 * q * q) +
                                     2.0 * double(2 * cpm_ * q * nbl)),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) * (double(cpm_ * q * nbl) + double(2 * q * q) +
                                    double(2 * cpm_ * q * nbl)),
               double(sizeof(T)) * double(2 * cpm_ * q * nbl));
}

template <typename T>
void Engine<T>::l2t() {
  FMMFFT_SPAN("L2T");
  WallTimer stage_timer_;
  const index_t q = prm_.q, ml = prm_.ml;
  blas::gemm_strided_batched<T>(blas::Op::N, blas::Op::N, cpm_, ml, q, T(1),
                                local_box(prm_.l(), 0), cpm_, cpm_ * q, s2m_op_.data(), q, 0,
                                T(1), target_box(0) + c_, cp_, cp_ * ml, nb_leaf_);
  record_stage({"L2T", KernelClass::BatchedGemm,
                2.0 * double(cpm_) * double(ml) * double(q) * double(nb_leaf_),
                double(sizeof(T)) * (double(cpm_ * q * nb_leaf_) + double(q * ml) +
                                     2.0 * double(cpm_ * ml * nb_leaf_)),
                1},
               stage_timer_.seconds(),
               double(sizeof(T)) * (double(cpm_ * q * nb_leaf_) + double(q * ml) +
                                    double(cpm_ * ml * nb_leaf_)),
               double(sizeof(T)) * double(cpm_ * ml * nb_leaf_));
}

template <typename T>
void Engine<T>::fill_source_halo_cyclic() {
  FMMFFT_SPAN("HALO-S");
  WallTimer stage_timer_;
  const index_t be = source_box_elems();
  std::memcpy(source_box(-1), source_box(nb_leaf_ - 1), sizeof(T) * be);
  std::memcpy(source_box(nb_leaf_), source_box(0), sizeof(T) * be);
  record_stage({"COMM-S", KernelClass::Copy, 0.0, double(sizeof(T)) * 2 * be, 1},
               stage_timer_.seconds());
}

template <typename T>
void Engine<T>::fill_multipole_halo_cyclic(int level) {
  FMMFFT_SPAN("HALO-M");
  WallTimer stage_timer_;
  FMMFFT_CHECK(level > prm_.b && level <= prm_.l());
  const index_t nbl = local_boxes(level), ee = expansion_box_elems();
  std::memcpy(multipole_box(level, -2), multipole_box(level, nbl - 2), sizeof(T) * 2 * ee);
  std::memcpy(multipole_box(level, nbl), multipole_box(level, 0), sizeof(T) * 2 * ee);
  record_stage({"COMM-M" + std::to_string(level), KernelClass::Copy, 0.0,
                double(sizeof(T)) * 4 * ee, 1},
               stage_timer_.seconds());
}

template <typename T>
void Engine<T>::run_single_node() {
  FMMFFT_CHECK_MSG(g_ == 1, "run_single_node requires G == 1");
  zero();
  s2m();
  fill_source_halo_cyclic();
  s2t();
  for (int lev = prm_.l() - 1; lev >= prm_.b; --lev) m2m(lev);
  for (int lev = prm_.l(); lev > prm_.b; --lev) {
    fill_multipole_halo_cyclic(lev);
    m2l_level(lev);
  }
  m2l_base();
  reduce();
  for (int lev = prm_.b; lev < prm_.l(); ++lev) l2l(lev);
  l2t();
}

template class Engine<float>;
template class Engine<double>;

}  // namespace fmmfft::fmm
