// Chebyshev interpolation machinery for the interpolative FMM (§4.3).
//
// The FMM represents far-field data by values of an implicit degree-(Q-1)
// polynomial at the Q Chebyshev points of the first kind,
//
//     z_j = cos((2j+1)·pi / (2Q)),   j = 0..Q-1,
//
// and all translation operators (S2M, M2M, L2L, L2T) are evaluations of the
// Lagrange basis polynomials l_i(z) over those points. Evaluation uses the
// numerically stable barycentric form with the closed-form weights
// w_i ∝ (-1)^i · sin((2i+1)·pi/(2Q)) for first-kind points.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace fmmfft::fmm {

/// Chebyshev points of the first kind on [-1, 1], z_0 > z_1 > ... > z_{Q-1}.
std::vector<double> chebyshev_points(int q);

/// Barycentric weights for Lagrange interpolation over chebyshev_points(q).
std::vector<double> chebyshev_weights(int q);

/// Evaluate all Q Lagrange basis polynomials at point x:
/// out[i] = l_i(x), exact (out[i] = delta_ij) when x coincides with z_j.
void lagrange_eval(int q, double x, double* out);

/// Dense evaluation matrix E with E[i + j*q] = l_i(x_j) (column-major Q×n):
/// column j holds all basis values at x_j. This is the transpose-free
/// building block for the S2M and M2M operators.
std::vector<double> lagrange_matrix(int q, const double* x, index_t n);

/// Interpolate data given at the Chebyshev points to point x:
/// returns sum_i coeff[i] * l_i(x).
double lagrange_interpolate(int q, const double* coeff, double x);

}  // namespace fmmfft::fmm
