#include "fmm/precision.hpp"

#include <cstring>

#include "common/error.hpp"
#include "obs/env.hpp"

namespace fmmfft::fmm {

Precision default_precision() {
  const char* v = obs::env::get("FMMFFT_PRECISION");
  if (!v || !*v || std::strcmp(v, "fp64") == 0) return Precision::Fp64;
  if (std::strcmp(v, "mixed") == 0) return Precision::Mixed;
  FMMFFT_CHECK_MSG(false, "FMMFFT_PRECISION must be fp64 or mixed, got \"" << v << "\"");
  return Precision::Fp64;
}

}  // namespace fmmfft::fmm
