#include "fmm/operators.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "fmm/chebyshev.hpp"

namespace fmmfft::fmm {

std::vector<double> s2m_matrix(int q, index_t ml) {
  std::vector<double> pts(static_cast<std::size_t>(ml));
  for (index_t m = 0; m < ml; ++m) pts[(std::size_t)m] = -1.0 + (2.0 * m + 1.0) / double(ml);
  return lagrange_matrix(q, pts.data(), ml);
}

std::vector<double> m2m_matrix(int q) {
  auto z = chebyshev_points(q);
  std::vector<double> pts(static_cast<std::size_t>(2 * q));
  for (int k = 0; k < q; ++k) {
    pts[(std::size_t)k] = (z[(std::size_t)k] - 1.0) / 2.0;      // left child -> [-1, 0]
    pts[(std::size_t)(q + k)] = (z[(std::size_t)k] + 1.0) / 2.0; // right child -> [0, 1]
  }
  return lagrange_matrix(q, pts.data(), 2 * q);
}

std::vector<double> s2t_table(const Params& prm, int components) {
  const index_t ml = prm.ml, p_total = prm.p, n = prm.n;
  const int c = components;
  const index_t nk = 4 * ml - 1;  // k in (-2*ml, 2*ml)
  std::vector<double> tab(static_cast<std::size_t>(nk * c * p_total), 0.0);
  for (index_t ki = 0; ki < nk; ++ki) {
    const index_t k = ki - (2 * ml - 1);
    double* row = tab.data() + ki * c * p_total;
    // p = 0: identity kernel (C_0 = I_M restricted to the near field).
    if (k == 0)
      for (int cc = 0; cc < c; ++cc) row[cc] = 1.0;
    for (index_t p = 1; p < p_total; ++p) {
      const double v = cot(pi_v<double> * double(p + p_total * k) / double(n));
      for (int cc = 0; cc < c; ++cc) row[cc + c * p] = v;
    }
  }
  return tab;
}

std::vector<double> m2l_table(const Params& prm, int level, index_t s, int components) {
  const int q = prm.q, c = components;
  const index_t pm1 = prm.p - 1, n = prm.n;
  const double width = pi_v<double> / double(index_t(1) << level);
  const auto z = chebyshev_points(q);
  std::vector<double> tab(static_cast<std::size_t>(q * q * c * pm1));
  for (index_t j = 0; j < q; ++j)
    for (index_t i = 0; i < q; ++i) {
      const double geom = width * (z[(std::size_t)j] / 2.0 - z[(std::size_t)i] / 2.0 + double(s));
      double* row = tab.data() + (i + q * j) * c * pm1;
      for (index_t pp = 0; pp < pm1; ++pp) {
        const double v = cot(geom + pi_v<double> * double(pp + 1) / double(n));
        for (int cc = 0; cc < c; ++cc) row[cc + c * pp] = v;
      }
    }
  return tab;
}

std::complex<double> rho(index_t p, index_t p_total, index_t m) {
  const double a = pi_v<double> * double(p) / double(p_total);
  return std::exp(std::complex<double>(0.0, -a)) * std::sin(a) / double(m);
}

double cot_kernel(const Params& prm, index_t p, index_t target_m, index_t source_n) {
  return cot(pi_v<double> / double(prm.m()) * double(source_n - target_m) +
             pi_v<double> / double(prm.n) * double(p));
}

std::vector<std::complex<double>> dense_cp(const Params& prm, index_t p) {
  const index_t m = prm.m();
  std::vector<std::complex<double>> cpm(static_cast<std::size_t>(m * m));
  if (p == 0) {
    for (index_t i = 0; i < m; ++i) cpm[(std::size_t)(i + i * m)] = 1.0;
    return cpm;
  }
  const std::complex<double> r = rho(p, prm.p, m);
  for (index_t col = 0; col < m; ++col)      // col = source index n
    for (index_t row = 0; row < m; ++row)    // row = target index m
      cpm[(std::size_t)(row + col * m)] =
          r * std::complex<double>(cot_kernel(prm, p, row, col), 1.0);
  return cpm;
}

std::vector<Params> admissible_params(index_t n, index_t g, int q, int b_max, index_t min_p) {
  std::vector<Params> out;
  if (!is_pow2(n)) return out;
  for (index_t p = min_p; p <= n / 2; p *= 2) {
    for (index_t ml = 1; ml <= 1024; ml *= 2) {
      const index_t m = n / p;
      if (m % ml != 0 || !is_pow2(m / ml)) continue;
      const int l = ilog2_exact(m / ml);
      for (int b = 2; b <= std::min(l, b_max); ++b) {
        Params withb{n, p, ml, b, q};
        if (withb.is_admissible(g)) out.push_back(withb);
      }
    }
  }
  return out;
}

}  // namespace fmmfft::fmm
