// Builders for every dense operator of the FMM-FFT (§4.4–4.8).
//
// Operators are built in double precision and cast by the engine to the
// working type. All are real-valued. Layouts are column-major with the
// output/coefficient index fastest, chosen so each stage maps onto a single
// BatchedGEMM or an on-the-fly tiled kernel exactly as in the paper.
#pragma once

#include <complex>
#include <vector>

#include "common/types.hpp"
#include "fmm/params.hpp"

namespace fmmfft::fmm {

/// S2M operator, Q×M_L column-major: S2M[q + m*Q] = l_q(s_m) with
/// s_m = -1 + (2m+1)/M_L. Columns sum to one (partition of unity) — the
/// invariant behind the §4.8 reduction trick. L2T is its transpose.
std::vector<double> s2m_matrix(int q, index_t ml);

/// Flattened M2M = [M2M⁻ M2M⁺] operator, Q×2Q column-major:
/// M2M[q + k*Q]       = l_q((z_k - 1)/2)   (left child, box 2b)
/// M2M[q + (Q+k)*Q]   = l_q((z_k + 1)/2)   (right child, box 2b+1)
/// L2L is its transpose.
std::vector<double> m2m_matrix(int q);

/// Toeplitz S2T operator (§4.6) expanded over the flattened component-by-p
/// index pc = c + C·p:
///   table[(k + 2·M_L - 1)·C·P + pc] = cot(pi/N · (p + P·k)),  p >= 1
/// with the p = 0 slice set to the identity (1 at k = 0, else 0) so the
/// near-field kernel also performs the C_0 = I copy. k = j - i ranges over
/// (-2·M_L, 2·M_L).
std::vector<double> s2t_table(const Params& prm, int components);

/// M2L operator slab for one (level, separation s) pair (§4.7), expanded
/// over pc' = c + C·p' where p' = p - 1 indexes the stored expansions:
///   table[(i + Q*j)·C·(P-1) + pc'] = cot(pi/2^level·(z_j/2 - z_i/2 + s)
///                                        + pi/N·(p'+1))
std::vector<double> m2l_table(const Params& prm, int level, index_t s, int components);

/// Post-processing scale rho_p = exp(-i·pi·p/P)·sin(pi·p/P)/M for p >= 1;
/// rho_0 is unused (the p = 0 FMM is the identity and is not scaled).
std::complex<double> rho(index_t p, index_t p_total, index_t m);

/// Cotangent kernel entry [C~_p]_{mn} = cot(pi/M·(n-m) + pi/N·p).
double cot_kernel(const Params& prm, index_t p, index_t target_m, index_t source_n);

/// Dense M×M matrix of the full C_p = rho_p·(C~_p + i·1) for p >= 1, or the
/// identity for p = 0. Column-major complex. O(M^2) storage: test/reference
/// use only.
std::vector<std::complex<double>> dense_cp(const Params& prm, index_t p);

/// Interaction-list separations at a non-base level (§4.7): {-2,2,3} for
/// even boxes, {-3,-2,2} for odd boxes.
inline const index_t* cousin_separations(bool odd_box) {
  static const index_t even[] = {-2, 2, 3};
  static const index_t oddl[] = {-3, -2, 2};
  return odd_box ? oddl : even;
}
inline constexpr int kNumCousins = 3;

/// All distinct separations used across both parities at a non-base level.
inline const std::vector<index_t>& level_separations() {
  static const std::vector<index_t> s{-3, -2, 2, 3};
  return s;
}

/// Does separation s apply to a box of the given parity?
inline bool separation_applies(index_t s, bool odd_box) {
  if (s == -2 || s == 2) return true;
  if (s == 3) return !odd_box;
  if (s == -3) return odd_box;
  return false;
}

}  // namespace fmmfft::fmm
