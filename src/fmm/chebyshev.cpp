#include "fmm/chebyshev.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace fmmfft::fmm {

std::vector<double> chebyshev_points(int q) {
  FMMFFT_CHECK(q >= 1);
  std::vector<double> z(static_cast<std::size_t>(q));
  for (int j = 0; j < q; ++j) z[(std::size_t)j] = std::cos((2.0 * j + 1.0) * pi_v<double> / (2.0 * q));
  return z;
}

std::vector<double> chebyshev_weights(int q) {
  FMMFFT_CHECK(q >= 1);
  // For first-kind points, w_i = (-1)^i sin((2i+1)pi/(2Q)) up to a common
  // factor that cancels in the barycentric quotient.
  std::vector<double> w(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    double s = std::sin((2.0 * i + 1.0) * pi_v<double> / (2.0 * q));
    w[(std::size_t)i] = (i % 2 == 0) ? s : -s;
  }
  return w;
}

void lagrange_eval(int q, double x, double* out) {
  static thread_local int cached_q = -1;
  static thread_local std::vector<double> z, w;
  if (cached_q != q) {
    z = chebyshev_points(q);
    w = chebyshev_weights(q);
    cached_q = q;
  }
  // Exact hit: l_i(z_j) = delta_ij. Also protects the barycentric form
  // against division by zero.
  for (int i = 0; i < q; ++i) {
    if (x == z[(std::size_t)i]) {
      for (int k = 0; k < q; ++k) out[k] = 0.0;
      out[i] = 1.0;
      return;
    }
  }
  double denom = 0.0;
  for (int i = 0; i < q; ++i) {
    out[i] = w[(std::size_t)i] / (x - z[(std::size_t)i]);
    denom += out[i];
  }
  for (int i = 0; i < q; ++i) out[i] /= denom;
}

std::vector<double> lagrange_matrix(int q, const double* x, index_t n) {
  std::vector<double> e(static_cast<std::size_t>(q * n));
  for (index_t j = 0; j < n; ++j) lagrange_eval(q, x[j], e.data() + j * q);
  return e;
}

double lagrange_interpolate(int q, const double* coeff, double x) {
  std::vector<double> l(static_cast<std::size_t>(q));
  lagrange_eval(q, x, l.data());
  double s = 0;
  for (int i = 0; i < q; ++i) s += coeff[i] * l[(std::size_t)i];
  return s;
}

}  // namespace fmmfft::fmm
