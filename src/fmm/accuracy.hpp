// A-priori error control for the FMM-FFT (§2: "the ability within the
// FMM-FFT to specify the error a priori regardless of the complexity or
// distribution of the input").
//
// The interpolative FMM's error is governed by Chebyshev interpolation of
// the cotangent kernel over well-separated boxes. The nearest kernel
// singularity sits |s| >= 2 box-widths away, i.e. at distance >= 3 in the
// child's [-1, 1] coordinates, so interpolation converges inside the
// Bernstein ellipse of radius rho = 3 + sqrt(8) ≈ 5.83 and the relative
// error decays like rho^{-Q}. The constant is calibrated once against the
// measured error sweep (Fig. 9 bottom), with a safety margin.
#pragma once

#include <cmath>

#include "common/math.hpp"
#include "common/types.hpp"
#include "fmm/params.hpp"

namespace fmmfft::fmm {

/// Geometric convergence ratio of the Chebyshev far-field expansion:
/// nearest singularity at distance 3 => rho = 3 + sqrt(8).
inline double convergence_ratio() { return 3.0 + std::sqrt(8.0); }

/// Predicted relative l2 error of the full FMM-FFT at expansion order q
/// (before the machine-precision floor). Calibrated constant with margin.
inline double predict_rel_error(int q) {
  return 8.0 * std::pow(convergence_ratio(), -double(q));
}

/// Machine-precision floor of the pipeline for the given real type width.
/// (§6.1: the paper's reported runs achieve < 4e-7 single / < 2e-14 double.)
inline double error_floor(bool is_double) { return is_double ? 2e-14 : 4e-7; }

/// Predicted error including the floor.
inline double predict_rel_error(int q, bool is_double) {
  return std::max(predict_rel_error(q), error_floor(is_double));
}

/// Smallest Q whose predicted error is below eps (clamped to [2, 24]).
inline int min_q_for(double eps) {
  for (int q = 2; q <= 24; ++q)
    if (predict_rel_error(q) <= eps) return q;
  return 24;
}

/// Convenience: parameters for a transform of size n meeting a target
/// accuracy, using the paper's preferred large-N shape (M_L = 64, B = 3
/// where admissible, P chosen to keep M = N/P >= M_L·2^B).
inline Params suggest_params(index_t n, double eps, index_t g = 1) {
  const int q = min_q_for(eps);
  for (index_t ml : {64, 32, 16, 8, 4, 2, 1}) {
    for (index_t p = std::max<index_t>(32, g); p <= n / 2; p *= 2) {
      for (int b : {3, 2}) {
        Params prm{n, p, ml, b, q};
        if (n / p % ml == 0 && prm.is_admissible(g)) return prm;
      }
    }
  }
  FMMFFT_CHECK_MSG(false, "no admissible parameters for N=" << n << " G=" << g);
  return {};
}

}  // namespace fmmfft::fmm
