// A-priori error control for the FMM-FFT (§2: "the ability within the
// FMM-FFT to specify the error a priori regardless of the complexity or
// distribution of the input").
//
// The interpolative FMM's error is governed by Chebyshev interpolation of
// the cotangent kernel over well-separated boxes. The nearest kernel
// singularity sits |s| >= 2 box-widths away, i.e. at distance >= 3 in the
// child's [-1, 1] coordinates, so interpolation converges inside the
// Bernstein ellipse of radius rho = 3 + sqrt(8) ≈ 5.83 and the relative
// error decays like rho^{-Q}. The constant is calibrated once against the
// measured error sweep (Fig. 9 bottom), with a safety margin.
#pragma once

#include <cmath>

#include "common/math.hpp"
#include "common/types.hpp"
#include "fmm/params.hpp"
#include "fmm/precision.hpp"

namespace fmmfft::fmm {

/// Geometric convergence ratio of the Chebyshev far-field expansion:
/// nearest singularity at distance 3 => rho = 3 + sqrt(8).
inline double convergence_ratio() { return 3.0 + std::sqrt(8.0); }

/// Predicted relative l2 error of the full FMM-FFT at expansion order q
/// (before the machine-precision floor). Calibrated constant with margin.
inline double predict_rel_error(int q) {
  return 8.0 * std::pow(convergence_ratio(), -double(q));
}

/// Machine-precision floor of the pipeline for the given real type width.
/// (§6.1: the paper's reported runs achieve < 4e-7 single / < 2e-14 double.)
inline double error_floor(bool is_double) { return is_double ? 2e-14 : 4e-7; }

/// Floor under a precision policy: mixed mode computes every translation in
/// fp32, so its floor is the fp32 one regardless of the shell width. The
/// paper's single-precision bound carries over because the shell (FFT
/// stages, POST accumulation) contributes at worst fp32-rounding-level
/// noise on top of the fp32 translations — and in mixed mode the shell is
/// fp64, strictly tighter than the all-fp32 runs the bound was measured on.
inline double error_floor(bool is_double, Precision prec) {
  return error_floor(is_double && prec == Precision::Fp64);
}

/// Predicted error including the floor.
inline double predict_rel_error(int q, bool is_double) {
  return std::max(predict_rel_error(q), error_floor(is_double));
}

/// Predicted error under a precision policy.
inline double predict_rel_error(int q, bool is_double, Precision prec) {
  return std::max(predict_rel_error(q), error_floor(is_double, prec));
}

/// Smallest Q whose predicted error is below eps (clamped to [2, 24]).
inline int min_q_for(double eps) {
  for (int q = 2; q <= 24; ++q)
    if (predict_rel_error(q) <= eps) return q;
  return 24;
}

/// Smallest useful Q for eps under a precision policy: ranks whose
/// geometric term sits below the rounding floor buy no accuracy, so the
/// target is clamped to the floor first. This is the knob model/tuning and
/// suggest_params turn when a tolerance, not a rank, is requested —
/// e.g. eps = 1e-12 needs Q = 17 in fp64 but saturates at Q = 10 in mixed.
inline int min_q_for(double eps, bool is_double, Precision prec) {
  return min_q_for(std::max(eps, error_floor(is_double, prec)));
}

/// Convenience: parameters for a transform of size n meeting a target
/// accuracy, using the paper's preferred large-N shape (M_L = 64, B = 3
/// where admissible, P chosen to keep M = N/P >= M_L·2^B).
inline Params suggest_params(index_t n, double eps, index_t g = 1,
                             Precision prec = Precision::Fp64, bool is_double = true) {
  // The fp64/double default keeps the historical un-clamped rank choice
  // (plans must stay identical to pre-mixed-mode builds); the narrower
  // pipelines clamp eps to their rounding floor so Q never pays for
  // accuracy the translation width cannot deliver.
  const int q = (prec == Precision::Fp64 && is_double) ? min_q_for(eps)
                                                       : min_q_for(eps, is_double, prec);
  for (index_t ml : {64, 32, 16, 8, 4, 2, 1}) {
    for (index_t p = std::max<index_t>(32, g); p <= n / 2; p *= 2) {
      for (int b : {3, 2}) {
        Params prm{n, p, ml, b, q};
        if (n / p % ml == 0 && prm.is_admissible(g)) return prm;
      }
    }
  }
  FMMFFT_CHECK_MSG(false, "no admissible parameters for N=" << n << " G=" << g);
  return {};
}

}  // namespace fmmfft::fmm
