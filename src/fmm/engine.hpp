// Batched periodic 1D FMM engine for the FMM-FFT (§4, Algorithm 1).
//
// One Engine instance evaluates the P-1 interleaved cotangent-kernel FMMs
// on the slab of leaf boxes owned by one processing element. All stages
// operate on real, component-flattened tensors (pc = c + C·p fastest), so
// complex transforms reuse the real kernels with effective batch C·P.
//
// The engine performs *local compute only*: halo regions and the gathered
// base-level multipoles are inputs that the caller fills — cyclically for a
// single address space (helpers below) or via fabric communication in the
// distributed driver. This keeps one code path for both settings.
//
// Tensor inventory per engine (nb = 2^L/G local leaf boxes, cp = C·P,
// cpm = C·(P-1)):
//   S   cp  × M_L × (nb+2)       source, ±1 leaf-box halo
//   T   cp  × M_L × nb           target
//   M^ℓ cpm × Q × (2^ℓ/G + 4)    multipoles, ±2 box halo, B < ℓ <= L
//   M^B cpm × Q × 2^B            base multipoles, *global* (allgathered)
//   L^ℓ cpm × Q × (2^ℓ/G)        locals, B <= ℓ <= L
//   r   cpm                      reduction of the constant +i term
#pragma once

#include <array>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "fmm/params.hpp"

namespace fmmfft::fmm {

/// What executed a stage — used by the performance model to pick the
/// per-class efficiency (§6.2) and by the Fig. 2/Fig. 4 kernel census.
enum class KernelClass { BatchedGemm, Custom, Gemv, Copy };

inline const char* to_string(KernelClass k) {
  switch (k) {
    case KernelClass::BatchedGemm: return "B-GEMM";
    case KernelClass::Custom: return "custom";
    case KernelClass::Gemv: return "GEMV";
    case KernelClass::Copy: return "copy";
  }
  return "?";
}

/// Exact operation counts for one executed stage (one kernel launch).
struct StageStats {
  std::string name;          ///< e.g. "S2M", "M2L-7", "M2L-B"
  KernelClass kernel;
  double flops = 0;          ///< floating point operations performed
  double mem_bytes = 0;      ///< tensor bytes read + written (§5.3 rules:
                             ///< S2T/M2L operator entries generated on the
                             ///< fly are *not* counted)
  index_t launches = 1;
  double seconds = 0;        ///< native wall time of this launch
  // Read/write split of mem_bytes for the traffic ledger. Appended after
  // `seconds` (call sites brace-init the fields above positionally) and
  // filled by named assignment; zero means "split unknown", in which case
  // the ledger halves mem_bytes.
  double bytes_read = 0;
  double bytes_written = 0;
};

template <typename T>
class Engine {
  static_assert(is_real_scalar_v<T>, "Engine works on component-flattened real data");

 public:
  /// `components` is the paper's C: 1 for real input, 2 for complex.
  /// `g` devices, this engine owning slab `rank`.
  Engine(const Params& prm, int components, index_t g = 1, index_t rank = 0);

  const Params& params() const { return prm_; }
  int components() const { return c_; }
  index_t cp() const { return cp_; }
  index_t cpm() const { return cpm_; }
  index_t local_leaves() const { return nb_leaf_; }
  index_t local_boxes(int level) const { return prm_.boxes(level) / g_; }
  index_t box_offset(int level) const { return rank_ * local_boxes(level); }

  /// Pointer to S at logical box b (b = -1 and b = nb are the halo boxes).
  T* source_box(index_t b);
  const T* source_box(index_t b) const { return const_cast<Engine*>(this)->source_box(b); }
  /// Pointer to T at local box b in [0, nb).
  T* target_box(index_t b);
  const T* target_box(index_t b) const { return const_cast<Engine*>(this)->target_box(b); }
  /// Multipoles at `level`: interior box b (halo boxes at b = -2..-1 and
  /// nb..nb+1 for B < level <= L). For level == B this addresses the
  /// *global* buffer, so b is a global box index.
  T* multipole_box(int level, index_t b);
  const T* multipole_box(int level, index_t b) const {
    return const_cast<Engine*>(this)->multipole_box(level, b);
  }
  /// Locals at `level`, local box b in [0, 2^level/g).
  T* local_box(int level, index_t b);
  const T* local_box(int level, index_t b) const {
    return const_cast<Engine*>(this)->local_box(level, b);
  }
  const T* reduction() const { return r_.data(); }

  index_t source_box_elems() const { return cp_ * prm_.ml; }
  index_t expansion_box_elems() const { return cpm_ * prm_.q; }

  // -- Stage execution (local compute; halos must be filled) ---------------
  void zero();          ///< zero T, L^ℓ, M^B and copy the p=0 slice S -> T
  void s2m();
  void m2m(int level);  ///< build level from level+1 (level in [B, L-1])
  void s2t();
  void m2l_level(int level);  ///< cousin M2L at level in [B+1, L]
  void m2l_base();

  // -- Reference kernels (identity oracles for the fused/SIMD paths) -------
  // Same tensors, same per-element accumulation order, but the pre-fusion
  // loop structure: scalar S2T inner loop, and one pass per M2L separation
  // instead of the per-box fused sweep. Outputs must match the fast paths
  // bit for bit. These record no stage stats.
  void s2t_reference();
  void m2l_level_reference(int level);
  void m2l_base_reference();
  void reduce();
  void l2l(int level);  ///< push level to level+1 (level in [B, L-1])
  void l2t();

  // -- Single-address-space halo fills (G == 1 or tests) -------------------
  void fill_source_halo_cyclic();
  void fill_multipole_halo_cyclic(int level);

  /// Full local pipeline with cyclic halos; valid only when g == 1.
  void run_single_node();

  /// Per-launch operation counts recorded since the last reset. Read
  /// between graph executions, never concurrently with stage calls.
  const std::vector<StageStats>& stats() const { return stats_; }
  void reset_stats() {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.clear();
  }

 private:
  void apply_m2l(int level, index_t s, const T* tab, bool base);
  /// M2L operator slab for (level, s), from the precomputed cache or (for
  /// large base levels where caching all 2^B-3 slabs would be prohibitive)
  /// built on the fly.
  const T* m2l_operator(int level, index_t s);
  /// Append one stage's counts; safe from concurrent executor tasks
  /// (distinct engines never contend, but the stats vector is also read by
  /// driver-level aggregation while other engines still run).
  /// `bytes_read`/`bytes_written` split st.mem_bytes for the traffic
  /// ledger; pass 0/0 when only the sum is known (the ledger halves it).
  void record_stage(StageStats st, double seconds, double bytes_read = 0,
                    double bytes_written = 0);

  Params prm_;
  int c_;
  index_t g_, rank_;
  index_t cp_, cpm_, nb_leaf_;

  // Operators cast to working precision.
  Buffer<T> s2m_op_;   // Q × M_L
  Buffer<T> m2m_op_;   // Q × 2Q
  Buffer<T> s2t_tab_;  // (4·M_L - 1) × cp
  Buffer<T> ones_q_;   // length Q·2^B of ones, for the reduction GEMV
  std::map<std::pair<int, index_t>, Buffer<T>> m2l_cache_;  // (level, s)
  // Keyed LRU for operator slabs outside the precomputed cache (base levels
  // with 2^B too large to cache exhaustively): front = most recent. As long
  // as the base level's 2^B - 3 slabs fit the capacity, every slab is built
  // exactly once per plan instead of once per m2l_base call.
  using M2lKey = std::pair<int, index_t>;
  using M2lLru = std::list<std::pair<M2lKey, Buffer<T>>>;
  static constexpr std::size_t kM2lLruCapacity = 256;
  M2lLru m2l_lru_;
  std::map<M2lKey, typename M2lLru::iterator> m2l_lru_pos_;
  // Hot-path operator pointers resolved once at ctor time (map lookups are
  // off the per-call path). m2l_level_ops_[lev - B - 1][k] follows the
  // level_separations() order; m2l_base_ops_[s - 2] is null for base
  // separations too numerous to cache (built on the fly into the scratch).
  std::vector<std::array<const T*, 4>> m2l_level_ops_;
  std::vector<const T*> m2l_base_ops_;

  // Tensors.
  Buffer<T> s_, t_;
  std::vector<Buffer<T>> mult_;   // index ℓ-B; [0] is the global base buffer
  std::vector<Buffer<T>> local_;  // index ℓ-B
  Buffer<T> r_;

  std::mutex stats_mu_;
  std::vector<StageStats> stats_;
};

}  // namespace fmmfft::fmm
