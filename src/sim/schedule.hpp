// Event-driven timeline simulation of a multi-device execution.
//
// The distributed drivers emit one Op per kernel launch / P2P message with
// its true operation counts and dependencies; `simulate` then assigns start
// and end times under an architecture's roofline, launch-overhead and link
// parameters. This is the substitution for measuring on real GPUs: compute
// *results* are produced by real host execution, compute *times* come from
// this simulator configured with the paper's architecture parameters.
//
// Execution resources ("lanes"):
//  * each device has one compute lane per stream id — kernels on the same
//    (device, stream) serialize, distinct streams overlap (CUDA streams);
//  * each directed device pair has a copy lane (NVLink-style dedicated
//    links); with ArchParams::links_shared all transfers share one bus lane
//    (PCIe-style);
//  * Meta ops are zero-cost joins (events/barriers).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fmm/engine.hpp"
#include "model/arch.hpp"

namespace fmmfft::sim {

struct Op {
  enum class Kind { Kernel, Comm, Meta };
  int id = -1;
  Kind kind = Kind::Meta;
  std::string label;
  std::string stage;  ///< coarse phase tag for attribution ("fmm", "a2a",
                      ///< "fft", "sync", "post"); set via Schedule::set_stage
  int device = 0;   ///< executing device (kernel) or source (comm)
  int peer = -1;    ///< destination device (comm only)
  int stream = 0;   ///< compute lane within the device (kernel only)
  fmm::KernelClass kclass = fmm::KernelClass::Custom;
  double flops = 0;
  double bytes = 0;  ///< memory traffic (kernel) or payload (comm)
  double fixed_seconds = 0;  ///< if > 0, the op's duration is exactly this
                             ///< (host synchronization, fixed stalls)
  bool is_double = true;
  std::vector<int> deps;
};

struct OpTiming {
  double start = 0;
  double end = 0;
};

struct SimResult {
  double total_seconds = 0;
  std::vector<OpTiming> timings;                ///< indexed by op id
  /// Per op: ids of the ops that last occupied each execution resource this
  /// op uses (its kernel lane, copy engines, shared bus, NICs). Together
  /// with Op::deps these are every constraint that can bound an op's start,
  /// so obs::analyze can walk an airtight critical path through the run.
  std::vector<std::vector<int>> resource_preds;
  std::map<std::string, double> label_seconds;  ///< busy time per label
  double kernel_busy = 0;                       ///< summed kernel durations
  double comm_busy = 0;                         ///< summed transfer durations
};

class Schedule {
 public:
  /// Add a compute kernel; returns its op id. All referenced deps must
  /// already exist (ids are topologically ordered by construction).
  int add_kernel(int device, std::string label, fmm::KernelClass kclass, double flops,
                 double mem_bytes, bool is_double, std::vector<int> deps, int stream = 0);

  /// Add a P2P transfer of `payload_bytes` from src to dst.
  int add_comm(int src, int dst, std::string label, double payload_bytes,
               std::vector<int> deps);

  /// Zero-cost join of `deps` (event wait).
  int add_meta(std::string label, std::vector<int> deps);

  /// Fixed-duration stall on a device's compute lane (host-side
  /// synchronization, plan switches). Stream 0. Pass seconds < 0 to resolve
  /// to ArchParams::sync_overhead at simulation time.
  int add_delay(int device, std::string label, double seconds, std::vector<int> deps);

  /// Stage tag applied to subsequently added ops (Op::stage). Builders mark
  /// phase boundaries so the analyzer can attribute time per phase; an empty
  /// tag leaves ops unclassified.
  void set_stage(std::string stage) { stage_ = std::move(stage); }
  const std::string& stage() const { return stage_; }

  const std::vector<Op>& ops() const { return ops_; }

  index_t kernel_launches() const;
  double total_comm_bytes() const;

  SimResult simulate(const model::ArchParams& arch) const;

  /// chrome://tracing / Perfetto-compatible JSON of a simulated run.
  void write_chrome_trace(const SimResult& res, std::ostream& os) const;

 private:
  int push(Op op);
  std::vector<Op> ops_;
  std::string stage_;
};

}  // namespace fmmfft::sim
