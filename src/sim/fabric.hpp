// Byte-accounting interconnect for the *numerical* execution of distributed
// runs. Devices are simulated as separate memory arenas in one address
// space: a transfer is a memcpy plus a ledger entry (send), or — for the
// fused all-to-all, whose payload moves zero-copy as strided peer-to-peer
// writes — just the ledger entry (record). Either way tests can verify
// that the bytes that moved match the §5.2 communication model and the
// schedule emitted for the timeline simulator.
#pragma once

#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::sim {

class Fabric {
 public:
  explicit Fabric(int num_devices) : g_(num_devices) { FMMFFT_CHECK(num_devices >= 1); }

  int num_devices() const { return g_; }

  struct Transfer {
    int src, dst;
    double bytes;
    std::string tag;
  };

  /// Move `count` elements from device `src` to device `dst`. Self-copies
  /// are local and not recorded as traffic. Payloads whose real component
  /// is 4 bytes wide (fp32 shells, and the mixed-precision multipole/source
  /// halos under an fp64 shell) land under ".f32"-suffixed metric/traffic
  /// keys, so every key holds bytes at exactly one element width and the
  /// §5 cross-check stays exact when widths coexist in one run. The span
  /// and the Transfer ledger keep the plain tag (message identity, not
  /// width, is what they attribute).
  template <typename T>
  void send(int src, int dst, const T* s, T* d, index_t count, const std::string& tag) {
    FMMFFT_CHECK(src >= 0 && src < g_ && dst >= 0 && dst < g_);
    if (count == 0) return;
    FMMFFT_SPAN("xfer:", tag);
    std::memmove(d, s, sizeof(T) * static_cast<std::size_t>(count));
    account(src, dst, double(sizeof(T)) * double(count), tag,
            sizeof(real_of_t<T>) == 4);
  }

  /// Account a transfer whose payload already moved zero-copy (the fused
  /// all-to-all scatters producer slabs straight into consumer layouts, so
  /// there is no contiguous message to memmove). Ledger entries, metrics
  /// and traffic-ledger comm bytes are identical to send()'s; self-pairs
  /// are local placement and not recorded, like self send()s.
  /// `f32_payload` keys the bytes per element width like send() does.
  void record(int src, int dst, double bytes, const std::string& tag,
              bool f32_payload = false) {
    FMMFFT_CHECK(src >= 0 && src < g_ && dst >= 0 && dst < g_);
    if (src == dst || bytes <= 0) return;
    FMMFFT_SPAN("xfer:", tag);
    account(src, dst, bytes, tag, f32_payload);
  }

 private:
  void account(int src, int dst, double bytes, const std::string& tag, bool f32) {
    if (src == dst || bytes <= 0) return;
    {
      // The async executor issues copies from concurrent tasks; the ledger
      // is the only shared mutable state (the payload regions are disjoint
      // by construction of the dependency graph).
      std::lock_guard<std::mutex> lk(mu_);
      ledger_.push_back({src, dst, bytes, tag});
    }
    FMMFFT_COUNT("fabric.sends", 1);
    FMMFFT_COUNT("fabric.bytes", bytes);
    // Per-tag byte counters feed obs::compare_with_model; the name is
    // dynamic, so this bypasses the static-reference macro. The traffic
    // ledger mirrors the same convention: payload bytes, off-device only,
    // one element width per key.
    if (!obs::metrics_enabled() && !obs::traffic_enabled()) return;
    const std::string key = f32 ? tag + ".f32" : tag;
    if (obs::metrics_enabled())
      obs::Metrics::global().counter("fabric.bytes." + key).add(bytes);
    if (obs::traffic_enabled())
      obs::TrafficLedger::global().add_comm("comm." + key, bytes);
  }

 public:
  /// Readers run between graph executions (tests, reports), never
  /// concurrently with send(); the lock still guards against torn reads
  /// if they ever do.
  const std::vector<Transfer>& transfers() const { return ledger_; }

  double total_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    double b = 0;
    for (const auto& t : ledger_) b += t.bytes;
    return b;
  }

  /// Bytes sent by one device (the §5.2 counts are per process).
  double bytes_sent_by(int device) const {
    std::lock_guard<std::mutex> lk(mu_);
    double b = 0;
    for (const auto& t : ledger_)
      if (t.src == device) b += t.bytes;
    return b;
  }

  double bytes_with_tag(const std::string& tag) const {
    std::lock_guard<std::mutex> lk(mu_);
    double b = 0;
    for (const auto& t : ledger_)
      if (t.tag == tag) b += t.bytes;
    return b;
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    ledger_.clear();
  }

 private:
  int g_;
  mutable std::mutex mu_;
  std::vector<Transfer> ledger_;
};

}  // namespace fmmfft::sim
