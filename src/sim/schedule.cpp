#include "sim/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace_writer.hpp"

namespace fmmfft::sim {

int Schedule::push(Op op) {
  op.id = static_cast<int>(ops_.size());
  op.stage = stage_;
  for (int d : op.deps) FMMFFT_CHECK_MSG(d >= 0 && d < op.id, "dependency on unknown op " << d);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

int Schedule::add_kernel(int device, std::string label, fmm::KernelClass kclass, double flops,
                         double mem_bytes, bool is_double, std::vector<int> deps, int stream) {
  Op op;
  op.kind = Op::Kind::Kernel;
  op.label = std::move(label);
  op.device = device;
  op.stream = stream;
  op.kclass = kclass;
  op.flops = flops;
  op.bytes = mem_bytes;
  op.is_double = is_double;
  op.deps = std::move(deps);
  return push(std::move(op));
}

int Schedule::add_comm(int src, int dst, std::string label, double payload_bytes,
                       std::vector<int> deps) {
  FMMFFT_CHECK(src != dst);
  Op op;
  op.kind = Op::Kind::Comm;
  op.label = std::move(label);
  op.device = src;
  op.peer = dst;
  op.bytes = payload_bytes;
  op.deps = std::move(deps);
  return push(std::move(op));
}

int Schedule::add_meta(std::string label, std::vector<int> deps) {
  Op op;
  op.kind = Op::Kind::Meta;
  op.label = std::move(label);
  op.deps = std::move(deps);
  return push(std::move(op));
}

int Schedule::add_delay(int device, std::string label, double seconds, std::vector<int> deps) {
  Op op;
  op.kind = Op::Kind::Kernel;
  op.label = std::move(label);
  op.device = device;
  op.fixed_seconds = seconds;
  op.deps = std::move(deps);
  return push(std::move(op));
}

index_t Schedule::kernel_launches() const {
  index_t n = 0;
  for (const auto& op : ops_)
    if (op.kind == Op::Kind::Kernel && op.fixed_seconds == 0.0) ++n;
  return n;
}

double Schedule::total_comm_bytes() const {
  double b = 0;
  for (const auto& op : ops_)
    if (op.kind == Op::Kind::Comm) b += op.bytes;
  return b;
}

SimResult Schedule::simulate(const model::ArchParams& arch) const {
  SimResult res;
  res.timings.resize(ops_.size());
  res.resource_preds.resize(ops_.size());

  // Lane availability. Kernel lanes are keyed by (device, stream). A
  // transfer occupies the source's outbound copy engine and the
  // destination's inbound engine simultaneously (so a device's sends to
  // different peers serialize, as on real copy-engine hardware), plus one
  // global bus when links_shared (PCIe-style). Each lane also remembers the
  // op that last held it, recorded as the successor's resource predecessor.
  struct Lane {
    double t = 0;
    int last = -1;
  };
  std::map<std::pair<int, int>, Lane> kernel_lane;
  std::map<int, Lane> out_engine, in_engine;
  // Node NIC engines: all inter-node traffic of one node serializes here
  // (§7 multi-node extension) — the effect that makes internode systems
  // even more communication-bound and the FMM-FFT relatively stronger.
  std::map<int, Lane> nic_out, nic_in;
  Lane bus;

  for (const auto& op : ops_) {
    double ready = 0;
    for (int d : op.deps) ready = std::max(ready, res.timings[(std::size_t)d].end);

    auto& rpreds = res.resource_preds[(std::size_t)op.id];
    auto note = [&rpreds](const Lane& l) {
      if (l.last >= 0) rpreds.push_back(l.last);
    };

    double start = ready, dur = 0;
    switch (op.kind) {
      case Op::Kind::Kernel: {
        Lane& lane = kernel_lane[{op.device, op.stream}];
        start = std::max(ready, lane.t);
        if (op.fixed_seconds > 0)
          dur = op.fixed_seconds;
        else if (op.fixed_seconds < 0)  // sentinel: host sync, arch-resolved
          dur = arch.sync_overhead;
        else
          dur = arch.launch_overhead +
                model::roofline_seconds(op.flops, op.bytes, arch, op.is_double) /
                    arch.efficiency(op.kclass);
        note(lane);
        lane = {start + dur, op.id};
        res.kernel_busy += dur;
        break;
      }
      case Op::Kind::Comm: {
        const bool inter = !arch.same_node(op.device, op.peer);
        Lane& out = out_engine[op.device];
        Lane& in = in_engine[op.peer];
        start = std::max({ready, out.t, in.t});
        note(out);
        note(in);
        if (arch.links_shared && !inter) {
          start = std::max(start, bus.t);
          note(bus);
        }
        if (inter) {
          Lane& no = nic_out[arch.node_of(op.device)];
          Lane& ni = nic_in[arch.node_of(op.peer)];
          start = std::max({start, no.t, ni.t});
          note(no);
          note(ni);
          dur = model::internode_link_seconds(op.bytes, arch);
          no = ni = {start + dur, op.id};
        } else {
          dur = model::link_seconds(op.bytes, arch);
          if (arch.links_shared) bus = {start + dur, op.id};
        }
        out = in = {start + dur, op.id};
        res.comm_busy += dur;
        break;
      }
      case Op::Kind::Meta:
        break;
    }
    std::sort(rpreds.begin(), rpreds.end());
    rpreds.erase(std::unique(rpreds.begin(), rpreds.end()), rpreds.end());
    res.timings[(std::size_t)op.id] = {start, start + dur};
    res.label_seconds[op.label] += dur;
    res.total_seconds = std::max(res.total_seconds, start + dur);
  }
  return res;
}

void Schedule::write_chrome_trace(const SimResult& res, std::ostream& os) const {
  obs::TraceWriter tw(os);
  for (const auto& op : ops_) {
    if (op.kind == Op::Kind::Meta) continue;
    const auto& t = res.timings[(std::size_t)op.id];
    const char* track = op.kind == Op::Kind::Comm ? "comm" : "compute";
    tw.complete_event(op.label, t.start * 1e6, (t.end - t.start) * 1e6, op.device,
                      track + (op.kind == Op::Kind::Kernel ? std::to_string(op.stream)
                                                           : std::to_string(op.peer)));
  }
  tw.finish();
  os << "\n";
}

}  // namespace fmmfft::sim
