// Memory-traffic ledger: per-scope byte and flop accounting for the real
// host execution, the measurement side of ROADMAP item 4 ("count words
// moved per flop, then stop moving them").
//
// The ledger records *algorithmic* (compulsory) traffic — operand bytes a
// kernel must read and results it must write, counted from problem shapes
// at the instrumented call sites — not hardware cache-line traffic. That
// makes the totals deterministic: independent of thread count, chunking and
// executor mode, so they can be hand-counted in tests, diffed against the
// §5 model predictions (obs/compare.hpp), and hard-gated in CI
// (tools/bench_compare.py) even though wall times cannot. Cache reuse shows
// up as the gap between these bytes and the achieved/calibrated bandwidth,
// which is exactly the number an optimisation wants to move.
//
// Discipline mirrors obs.hpp's tracer/metrics hooks: everything is compiled
// in but each disabled hook costs one relaxed atomic load and a branch, with
// no allocation. Enable programmatically (obs::enable_traffic) or with
// FMMFFT_TRAFFIC=<path>, which arms an at-exit JSON dump of the ledger.
//
// Scope-name conventions (reporting relies on them):
//   fmm.S2M, fmm.M2M, ...   FMM stage tensor traffic (level suffixes folded)
//   fft                     Stockham / Bluestein passes over the data
//   transpose               permute_mp / transpose_blocked
//   a2a.pack, a2a.unpack    fused all-to-all: pack = the strided gather's
//                           reads, unpack = the scatter's writes (one read
//                           + one write per element, no staging copies)
//   a2a.row.pack/.unpack    the pencil decomposition's row-phase messages
//   a2a.col.pack/.unpack    ... and column-phase messages, same discipline
//                           (each phase reads + writes every element once,
//                           so a two-phase exchange moves 2× the one-phase
//                           ledger bytes by construction)
//   comm.<tag>              fabric payload bytes (comm_bytes, not rd/wr)
//   post                    §4.9 post-processing sweep
//   halo.cyclic             single-address-space halo copies (G = 1)
//   blas.*                  AUX: GEMM/GEMV operand traffic. Excluded from
//                           the primary total — the FMM stages already count
//                           the same tensors, blas.* is the per-kernel view.
//   exec.<stage>            AUX: task-graph busy seconds per stage (async
//                           executor); carries seconds, not bytes.
// Staging writebacks (memcpy between equal-sized buffers at driver level)
// and operator-table reads (twiddles, chirp, S2T/M2L tables, §5.3 rule) are
// deliberately not counted.
#pragma once

#include <atomic>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fmmfft::obs {

namespace detail {
// Defined in traffic.cpp; referencing it from the hook macros pulls the
// environment initializer into any binary using them (same self-
// registration trick as obs.cpp).
extern std::atomic<bool> g_traffic_enabled;
}  // namespace detail

inline bool traffic_enabled() {
  return detail::g_traffic_enabled.load(std::memory_order_relaxed);
}
void enable_traffic(bool on = true);

/// Number of butterfly stages of the pow2 Stockham schedule for n = 2^k
/// (one radix-2 stage when k is odd, radix-4 otherwise). Shared between the
/// FFT's traffic accounting and the model cross-check so the two cannot
/// drift apart.
inline index_t stockham_stages(index_t log2n) { return (log2n + 1) / 2; }
/// Data passes of one pow2 Stockham transform: each stage reads and writes
/// the full line once (ping-pong), plus one copy back when the stage count
/// is odd.
inline index_t stockham_passes(index_t log2n) {
  const index_t s = stockham_stages(log2n);
  return s + s % 2;
}

/// Accumulated traffic of one scope (or a total over scopes).
struct TrafficTotals {
  double bytes_read = 0;     ///< operand bytes the kernels must load
  double bytes_written = 0;  ///< result bytes the kernels must store
  double comm_bytes = 0;     ///< fabric payload bytes (inter-device)
  double flops = 0;
  double seconds = 0;  ///< busy seconds, where a timed lane covers the scope
  double calls = 0;    ///< hook invocations (informational; NOT
                       ///< deterministic across executor modes)

  double bytes_moved() const { return bytes_read + bytes_written + comm_bytes; }
  /// flops per byte moved; 0 when nothing moved.
  double arithmetic_intensity() const {
    const double b = bytes_moved();
    return b > 0 ? flops / b : 0.0;
  }
  /// Words moved per flop, the ROADMAP item-4 metric (default word = f64).
  double words_per_flop(double word_bytes = 8.0) const {
    return flops > 0 ? bytes_moved() / (word_bytes * flops) : 0.0;
  }
  TrafficTotals& operator+=(const TrafficTotals& o);
};

/// Measured machine roofline from the STREAM-style self-calibration: what
/// this host actually sustains, the denominator for achieved-bandwidth
/// fractions in the ledger report.
struct MachineRoofline {
  int threads = 0;           ///< pool worker threads used
  double copy_bps = 0;       ///< STREAM copy  b[i] = a[i]          (bytes/s)
  double scale_bps = 0;      ///< STREAM scale b[i] = s*a[i]        (bytes/s)
  double triad_bps = 0;      ///< STREAM triad c[i] = a[i]+s*b[i]   (bytes/s)
  double fma_flops = 0;      ///< unrolled FMA loop compute anchor  (flop/s)
  /// Bandwidth roof used for achieved-fraction reporting (triad).
  double roof_bps() const { return triad_bps; }
};

/// Run the copy/scale/triad sweep on `threads` pool workers (0 = current
/// pool width) over arrays of `elems` doubles (default 2^22: 32 MiB,
/// past any host L2/L3), best of `reps`.
MachineRoofline calibrate_roofline(int threads = 0, index_t elems = index_t(1) << 22,
                                   int reps = 3);
/// Calibrate per thread count: serial and full pool (plus midpoints when
/// the pool is wide), ascending. The measured roofline the analyzer and
/// bench reports anchor against is the widest entry.
std::vector<MachineRoofline> calibrate_roofline_sweep(index_t elems = index_t(1) << 22,
                                                      int reps = 3);
/// {"schema": "fmmfft.calibration.v1", "results": [...]} JSON.
void write_calibration_json(std::ostream& os, const std::vector<MachineRoofline>& sweep);

/// Process-wide traffic ledger. Scopes are created on first lookup and
/// never destroyed before exit, so hook sites may cache references.
class TrafficLedger {
 public:
  static constexpr int kStripes = 16;

  /// One named accounting scope. Counters are striped across cache lines so
  /// concurrent parallel_for workers / executor tasks don't serialize.
  class Scope {
   public:
    void add(double rd, double wr, double comm, double fl) {
      Cell& c = cells_[stripe()];
      if (rd != 0) c.rd.fetch_add(rd, std::memory_order_relaxed);
      if (wr != 0) c.wr.fetch_add(wr, std::memory_order_relaxed);
      if (comm != 0) c.comm.fetch_add(comm, std::memory_order_relaxed);
      if (fl != 0) c.flops.fetch_add(fl, std::memory_order_relaxed);
      c.calls.fetch_add(1.0, std::memory_order_relaxed);
    }
    void add_seconds(double s) {
      cells_[stripe()].seconds.fetch_add(s, std::memory_order_relaxed);
    }
    TrafficTotals totals() const;
    void reset();

   private:
    static int stripe();
    struct alignas(64) Cell {
      std::atomic<double> rd{0.0}, wr{0.0}, comm{0.0}, flops{0.0}, seconds{0.0}, calls{0.0};
    };
    Cell cells_[kStripes];
  };

  static TrafficLedger& global();

  /// Registry lookup (created on first use, pointer-stable). Hook macros
  /// cache the reference in a magic static per call site.
  Scope& scope(const std::string& name);

  // Dynamic-name slow paths (fabric tags, per-stage FMM names).
  void add_rw(const std::string& name, double rd, double wr, double fl = 0.0);
  void add_comm(const std::string& name, double bytes);
  void add_seconds(const std::string& name, double s);

  /// Per-scope totals by name (zero-valued scopes included).
  std::map<std::string, TrafficTotals> snapshot() const;
  /// Grand total. `primary_only` excludes the aux scopes (blas.*, exec.*)
  /// whose bytes/seconds would double-count the stage-level rows.
  TrafficTotals total(bool primary_only = true) const;
  /// True for scopes excluded from the primary total.
  static bool is_aux(const std::string& name);

  void reset();  ///< zero all values, keep the scopes registered

  /// Human-readable per-scope table: bytes moved, AI, words/flop, and —
  /// where busy seconds are known (async executor stages, `cal` given) —
  /// achieved GB/s and the fraction of the calibrated triad roof.
  std::string report(const MachineRoofline* cal = nullptr) const;
  /// {"schema": "fmmfft.traffic.v1", "scopes": {...}, "total": {...},
  ///  "aux_total": {...}, "calibration": {...}?} JSON.
  void write_json(std::ostream& os, const MachineRoofline* cal = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Scope> scopes_;
};

/// Read FMMFFT_TRAFFIC and arm the at-exit ledger dump when set. Runs
/// automatically at startup from traffic.cpp's initializer.
void init_traffic_from_env();
/// Write the current ledger as JSON to `path` (explicit counterpart of the
/// env-driven at-exit dump).
bool write_traffic_file(const std::string& path);

}  // namespace fmmfft::obs

// ---------------------------------------------------------------------------
// Hook macros — the only things hot paths touch. `name` must be a string
// literal (the registry lookup happens once per call site); dynamic names go
// through TrafficLedger::add_rw / add_comm.

#ifdef FMMFFT_OBS_DISABLE
#define FMMFFT_TRAFFIC_RW(name, rd, wr, flops) ((void)0)
#define FMMFFT_TRAFFIC_COMM(name, bytes) ((void)0)
#else
/// Record `rd` bytes read, `wr` bytes written and `flops` flops in `name`.
#define FMMFFT_TRAFFIC_RW(name, rd, wr, flops)                                       \
  do {                                                                               \
    if (::fmmfft::obs::traffic_enabled()) {                                          \
      static ::fmmfft::obs::TrafficLedger::Scope& fmmfft_obs_traffic =               \
          ::fmmfft::obs::TrafficLedger::global().scope(name);                        \
      fmmfft_obs_traffic.add(static_cast<double>(rd), static_cast<double>(wr), 0.0,  \
                             static_cast<double>(flops));                            \
    }                                                                                \
  } while (0)
/// Record `bytes` of fabric payload in `name`.
#define FMMFFT_TRAFFIC_COMM(name, bytes)                                             \
  do {                                                                               \
    if (::fmmfft::obs::traffic_enabled()) {                                          \
      static ::fmmfft::obs::TrafficLedger::Scope& fmmfft_obs_traffic =               \
          ::fmmfft::obs::TrafficLedger::global().scope(name);                        \
      fmmfft_obs_traffic.add(0.0, 0.0, static_cast<double>(bytes), 0.0);             \
    }                                                                                \
  } while (0)
#endif
