// Timeline analysis of a simulated run: critical path, slack, utilization
// and bottleneck attribution.
//
// sim::Schedule::simulate assigns every op a start/end time plus the full
// set of constraints that could have bound its start (dependency edges and
// resource predecessors). This engine interprets that data the way §5 of
// the paper argues about time:
//
//  * critical path — the longest contiguous constraint chain through the op
//    DAG, walked backwards from the makespan. Because resource edges are
//    included, the chain is airtight: its durations sum to exactly
//    SimResult::total_seconds, so the composition (compute / bandwidth /
//    launch / comm / sync seconds) is a complete account of where the
//    makespan went, and "is the all-to-all on the critical path?" (§5.3)
//    has a precise answer.
//  * slack — classic CPM latest-start minus actual start per op; zero-slack
//    ops are the ones a faster kernel would actually help.
//  * utilization — per-lane and per-device busy fractions with idle-gap
//    attribution: waiting on a transfer, waiting on a compute/meta
//    dependency, waiting on a shared engine, or draining at the end.
//  * roofline classification — every op labelled compute-, bandwidth-,
//    launch-, link-, or sync-bound under the same model::ArchParams the
//    simulator used.
//
// The Report exports as JSON (obs::JsonWriter, schema
// "fmmfft.report.v1") and as a human-readable text summary; both are wired
// into examples/fmmfft_cli (--report) and bench/fig2_profile, and
// bench/bench_runner commits per-config compositions to BENCH_fmmfft.json
// for the regression gate.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "model/arch.hpp"
#include "sim/schedule.hpp"

namespace fmmfft::obs {

/// What bounds an op's duration under the architecture model.
enum class Bound {
  Compute,    ///< roofline flop term dominates
  Bandwidth,  ///< roofline memory term dominates
  Launch,     ///< per-launch overhead exceeds the roofline time
  Link,       ///< transfer, bandwidth term dominates
  Latency,    ///< transfer, per-message latency dominates
  Sync,       ///< fixed host-side stall
  None        ///< zero-cost meta op
};
const char* bound_name(Bound b);

/// Why an op's lane sat idle immediately before it started.
enum class Wait {
  None,      ///< no gap (back-to-back or starts at t=0)
  Dep,       ///< a compute/meta dependency finished late
  Comm,      ///< a transfer it depends on arrived late
  Resource,  ///< a shared engine (bus, NIC, copy engine) was held elsewhere
};

struct OpAnalysis {
  int id = -1;
  std::string label;  ///< copied from the Op so the Report is self-contained
  std::string stage;
  std::string lane;  ///< lane_name of the op ("" for meta ops) — with
                     ///< start/end/bytes this yields per-lane bandwidth
                     ///< timelines straight from the exported ops array
  double start = 0, end = 0;
  double seconds = 0;  ///< simulated duration
  double slack = 0;    ///< latest start - actual start; 0 on the critical path
  bool critical = false;
  Bound bound = Bound::None;
  double flops = 0;  ///< copied from the Op (kernel work)
  double bytes = 0;  ///< kernel tensor bytes or transfer payload bytes
  /// flops per byte moved; 0 when the op moves nothing.
  double intensity() const { return bytes > 0 ? flops / bytes : 0.0; }
  int binding = -1;  ///< the constraint (dep or resource pred) whose finish
                     ///< set this op's start; -1 if it started unconstrained
  Wait wait = Wait::None;
  double gap = 0;  ///< idle seconds on the op's lane before it started
};

/// One execution lane (a (device, stream) compute lane or a directed
/// device-pair link) over the whole run. busy + the four idle buckets sum
/// to the makespan.
struct LaneUtil {
  std::string name;  ///< "dev0/s1" or "dev0->dev1"
  int device = -1;   ///< owning (or source) device
  bool is_comm = false;
  double busy = 0;       ///< occupied seconds (includes overhead)
  double overhead = 0;   ///< launch/sync portion of busy
  double idle_dep = 0;   ///< gaps waiting on compute/meta dependencies
  double idle_comm = 0;  ///< gaps waiting on transfers
  double idle_resource = 0;  ///< gaps waiting on shared engines
  double idle_drain = 0;     ///< leading/trailing idle (before first op,
                             ///< after last op, until the makespan)
  double bytes = 0;  ///< bytes moved by this lane's ops (kernel tensor
                     ///< traffic on compute lanes, payload on links)
  double utilization(double total_seconds) const {
    return total_seconds > 0 ? busy / total_seconds : 0.0;
  }
  /// Achieved lane bandwidth over its busy time.
  double gbps() const { return busy > 0 ? bytes / busy / 1e9 : 0.0; }
};

struct BoundSlice {
  int count = 0;
  double seconds = 0;
};

/// Traffic rollup of one Op::stage over the whole run: the "words moved
/// per flop" table (ROADMAP item 4). Bytes come from the scheduled ops'
/// exact §5 counts; on a measured run obs::TrafficLedger reports the same
/// quantities from instrumented hot paths.
struct StageTraffic {
  double flops = 0;
  double bytes = 0;       ///< kernel tensor bytes (read + written)
  double comm_bytes = 0;  ///< transfer payload bytes
  double seconds = 0;     ///< summed op durations (not wall: lanes overlap)
  int count = 0;          ///< ops in the stage
  double bytes_moved() const { return bytes + comm_bytes; }
  double intensity() const { return bytes_moved() > 0 ? flops / bytes_moved() : 0.0; }
  double words_per_flop(double word_bytes = 8.0) const {
    return flops > 0 ? bytes_moved() / (word_bytes * flops) : 0.0;
  }
  /// Achieved bandwidth over the stage's busy seconds.
  double gbps() const { return seconds > 0 ? bytes_moved() / seconds / 1e9 : 0.0; }
};

struct Report {
  std::string arch;
  double total_seconds = 0;

  std::vector<OpAnalysis> ops;  ///< indexed by op id

  // -- Critical path, in execution order.
  std::vector<int> critical_path;  ///< op ids
  double critical_seconds = 0;     ///< sum of path durations
  /// critical_seconds / total_seconds. 1.0 means the walk is airtight (it
  /// always is when the SimResult carries resource predecessors).
  double critical_coverage = 0;
  std::map<std::string, double> critical_by_stage;  ///< seconds per Op::stage
  std::map<std::string, double> critical_by_label;
  // Composition: these five sum to critical_seconds.
  double crit_compute = 0;    ///< roofline flop time of path kernels
  double crit_bandwidth = 0;  ///< roofline memory time of path kernels
  double crit_launch = 0;     ///< launch overhead of path kernels
  double crit_comm = 0;       ///< transfer time (incl. latency) on the path
  double crit_sync = 0;       ///< fixed host stalls on the path

  std::vector<LaneUtil> lanes;  ///< compute lanes first, then links
  /// Per-device aggregate over its compute lanes: busy seconds / (lanes ×
  /// makespan) is the device utilization the text summary prints.
  std::map<int, double> device_busy;
  std::map<int, int> device_lanes;

  std::map<std::string, BoundSlice> bound_census;  ///< keyed by bound_name

  /// Per-stage traffic/intensity rollup (all ops, not just critical).
  std::map<std::string, StageTraffic> stage_traffic;

  /// Seconds of ops whose Op::stage equals `stage` on the critical path.
  double critical_stage_seconds(const std::string& stage) const;
  double device_utilization(int device) const;

  std::string to_string() const;
  void write_json(std::ostream& os) const;  ///< schema "fmmfft.report.v1"
};

/// Analyze a simulated schedule. `res` must come from `sched.simulate(arch)`
/// with the same arch (the roofline classification re-derives per-op cost
/// terms from it).
Report analyze(const sim::Schedule& sched, const sim::SimResult& res,
               const model::ArchParams& arch);

}  // namespace fmmfft::obs
