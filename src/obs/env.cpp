#include "obs/env.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace fmmfft::obs::env {

const std::vector<Knob>& registry() {
  static const std::vector<Knob> knobs = {
      {"FMMFFT_TRACE", "path", "(unset)",
       "record spans, write a chrome://tracing JSON here at exit"},
      {"FMMFFT_METRICS", "path", "(unset)",
       "record counters/gauges/histograms, write the metrics JSON here at exit"},
      {"FMMFFT_TRAFFIC", "path", "(unset)",
       "record the memory-traffic ledger, write its JSON here at exit"},
      {"FMMFFT_NUM_THREADS", "int", "hardware",
       "host thread-pool size (default: all hardware threads)"},
      {"FMMFFT_EXEC", "enum", "auto",
       "distributed driver mode: serial | async | auto (work-floor heuristic)"},
      {"FMMFFT_PRECISION", "enum", "fp64",
       "FMM translation precision: fp64 | mixed (fp32 operators, kernels and "
       "comm payloads under an fp64 shell)"},
      {"FMMFFT_EXEC_FLOOR", "int", "65536",
       "per-device element floor below which auto resolves to serial"},
      {"FMMFFT_DECOMP", "enum", "auto",
       "distributed 2D/3D decomposition: auto (cost model) | slab (one-phase "
       "all-to-all) | pencil (two-phase row/column sub-communicators)"},
      {"FMMFFT_GRID", "string", "(squarest)",
       "pencil processor grid as PRxPC (e.g. 2x4); must multiply to the device "
       "count and divide the transform extents"},
      {"FMMFFT_FLIGHT", "flag", "0",
       "enable the always-on flight recorder (per-thread rings of recent events)"},
      {"FMMFFT_WATCHDOG_MS", "int", "0",
       "progress deadline in ms; >0 starts the watchdog thread (also arms the "
       "flight recorder)"},
      {"FMMFFT_SAMPLE_HZ", "float", "0",
       "span-sampler rate; >0 starts the low-rate time-in-stage sampler thread"},
      {"FMMFFT_POSTMORTEM", "path", "fmmfft.postmortem.json",
       "postmortem dump path; setting it arms crash handlers + flight recorder"},
      {"FMMFFT_FAULT_STALL_TASK", "int", "(unset)",
       "fault injection: stall the task-graph task with this id (tests/drills)"},
      {"FMMFFT_FAULT_STALL_MS", "int", "750",
       "fault injection: how long the injected stall sleeps"},
  };
  return knobs;
}

namespace {

const Knob* find(const char* name) {
  for (const Knob& k : registry())
    if (std::strcmp(k.name, name) == 0) return &k;
  return nullptr;
}

}  // namespace

const char* get(const char* name) {
  FMMFFT_CHECK_MSG(find(name) != nullptr,
                   "environment knob " << name << " is not in obs::env::registry()");
  return std::getenv(name);
}

long long get_int(const char* name, long long def) {
  const char* v = get(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end != v ? parsed : def;
}

double get_double(const char* name, double def) {
  const char* v = get(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : def;
}

std::string describe() {
  std::ostringstream os;
  std::size_t w = 0;
  for (const Knob& k : registry()) w = std::max(w, std::strlen(k.name));
  for (const Knob& k : registry()) {
    const char* cur = std::getenv(k.name);
    os << k.name << std::string(w - std::strlen(k.name) + 2, ' ')
       << (cur && *cur ? cur : "(unset)") << "  [" << k.kind << ", default " << k.def
       << "]\n" << std::string(w + 2, ' ') << k.desc << "\n";
  }
  return os.str();
}

}  // namespace fmmfft::obs::env
