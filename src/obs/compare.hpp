// Model-vs-measured cross-validation: diff the counters accumulated by the
// obs hooks during real host execution against the §5 predictions in
// src/model/counts.*. Observability that doubles as a continuous check of
// the operation-count model the paper's whole argument (and this repo's
// timing substitution) rests on.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fmm/params.hpp"

namespace fmmfft::obs {

/// One measured-vs-predicted comparison.
struct ModelCheck {
  std::string name;
  double measured = 0;
  double predicted = 0;
  double tolerance = 0;  ///< max acceptable relative deviation

  /// |measured - predicted| / max(|predicted|, 1): relative where the
  /// prediction is meaningful, absolute near zero.
  double rel_dev() const;
  bool ok() const { return rel_dev() <= tolerance; }
};

struct ModelReport {
  std::vector<ModelCheck> checks;
  bool all_ok() const;
  /// Fixed-width human-readable table.
  std::string to_string() const;
  /// {"all_ok": ..., "checks": [{name, measured, predicted, rel_dev,
  ///  tolerance, ok}, ...]}
  void write_json(std::ostream& os) const;
};

/// Compare Metrics::global() against the model for `runs` executions of an
/// FMM-FFT with parameters `prm` on `g` devices (`components` = C,
/// `real_bytes` = sizeof the working real scalar). Call after the runs, on
/// metrics collected with obs::enable_metrics() on and no other transforms
/// in between (obs::reset() gives a clean slate).
///
/// `trans_bytes` is the byte width of the FMM translation pipeline's real
/// scalar when it differs from the shell's (mixed precision: 4 under an
/// 8-byte shell). 0 — the default — means "same as real_bytes". The FMM
/// stage bytes and the COMM-* halo payloads are predicted at trans_bytes;
/// the A2A payload, FFT and POST volumes at real_bytes. The per-precision
/// ".f32" key suffixes the hooks emit are prefix-summed transparently.
///
/// Checked, each against an exact accounting (tolerance ~1e-9, pure
/// floating-point summation noise):
///  * fmm.flops / fmm.mem_bytes / fmm.launches vs model::exact_fmm_counts
///  * fft.flops vs the 5·N·log2(N) total of the 2D-FFT stage
///  * fabric COMM-* bytes vs model::exact_fmm_comm
///  * fabric A2A-2D bytes vs the single-transpose payload
/// Plus the paper's §5.2 closed form vs the same fabric bytes at the
/// documented loose tolerance (the p = 0 slice and local-slab conventions
/// differ; see model::exact_fmm_comm).
ModelReport compare_with_model(const fmm::Params& prm, int components, index_t g,
                               double real_bytes, int runs = 1, double trans_bytes = 0);

/// Compare TrafficLedger::global() against the §5 model for `runs`
/// distributed FMM-FFT executions (any G >= 1, serial or async executor —
/// the ledger records algorithmic traffic, so the totals are identical).
/// Requires traffic collected with obs::enable_traffic() on and a clean
/// ledger (obs::reset()). `trans_bytes` as in compare_with_model.
/// All checks are exact (~1e-9):
///  * comm.A2A-2D payload vs the (G-1)/G·N single-transpose volume
///  * comm.COMM-S / COMM-M* / COMM-MB vs model::exact_fmm_comm
///  * fmm.* bytes (read+written) and flops vs model::exact_fmm_counts
///  * fft bytes vs the Stockham pass count of the 2D stage (pow2 P, M)
///  * post bytes vs the single-sweep volume: the C-component T tensor read
///    at the translation width plus the complex FFT input written at the
///    shell width
/// `pr`/`pc`: the 2D-FFT stage's decomposition. 0/0 (default) = slab, one
/// A2A-2D exchange of (G-1)/G·N elements; pr > 0 = the pencil two-phase
/// exchange over a pr×pc grid, checked as comm.A2A-ROW = (pc-1)/pc·N and
/// comm.A2A-COL = (pr-1)/pr·N element payloads instead.
ModelReport compare_traffic_with_model(const fmm::Params& prm, int components, index_t g,
                                       double real_bytes, int runs = 1,
                                       double trans_bytes = 0, int pr = 0, int pc = 0);

/// Traffic cross-validation for `runs` executions of a distributed
/// n0×n1×n2 3D FFT (dist::Dist3dFft) on g devices. `pr` = 0 checks the
/// slab path (comm.A2A-3D payload exact at (G-1)/G·N elements, plus the
/// local reorientation's transpose bytes at 2·N); pr > 0 checks the
/// pr×pc pencil path (comm.A2A-ROW/COL at (pc-1)/pc·N and (pr-1)/pr·N,
/// plus the a2a.row.*/a2a.col.* pack+unpack ledger bytes at 2·N each —
/// every element read once and written once per phase). Both variants
/// check the three FFT phases' Stockham pass bytes (pow2 extents). All
/// exact to ~1e-9.
ModelReport compare_fft3d_traffic(index_t n0, index_t n1, index_t n2, index_t g,
                                  double real_bytes, int runs = 1, int pr = 0, int pc = 0);

}  // namespace fmmfft::obs
