// Shared chrome://tracing / Perfetto JSON emission and a minimal streaming
// JSON writer. Every trace/metrics artifact in the repo goes through these
// (obs::Recorder, sim::Schedule::write_chrome_trace, the figure benches)
// instead of hand-formatting JSON ad hoc.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fmmfft::obs {

/// Escape a string for inclusion inside JSON double quotes.
std::string json_escape(std::string_view s);

/// Streaming writer for well-formed JSON. Containers are explicit
/// (begin_/end_); commas and key quoting/escaping are handled here. The
/// caller is responsible for structural balance, which FMMFFT_ASSERTs guard.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Key inside an object; follow with a value or container.
  void key(std::string_view k);
  void value(double v);
  void value(std::string_view v);
  void value(bool v);
  /// Shorthand for key(k); value(v).
  void kv(std::string_view k, double v) {
    key(k);
    value(v);
  }
  void kv(std::string_view k, std::string_view v) {
    key(k);
    value(v);
  }
  /// Embed pre-serialized JSON verbatim as one value (e.g. a document
  /// another writer produced). The caller guarantees `json` is well-formed.
  void raw_value(std::string_view json);

 private:
  void comma();
  std::ostream& os_;
  /// One entry per open container: whether a value was already emitted.
  std::vector<bool> stack_;
  bool pending_key_ = false;
};

/// chrome://tracing "Trace Event Format" JSON array of complete ("X")
/// events, loadable by chrome://tracing and Perfetto. Timestamps and
/// durations are microseconds.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& os);
  ~TraceWriter();  ///< finishes the array if finish() was not called

  void complete_event(std::string_view name, double ts_us, double dur_us, int pid,
                      std::string_view tid);
  void finish();

 private:
  JsonWriter jw_;
  bool finished_ = false;
};

}  // namespace fmmfft::obs
