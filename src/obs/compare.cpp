#include "obs/compare.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/math.hpp"
#include "model/counts.hpp"
#include "obs/obs.hpp"
#include "obs/trace_writer.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::obs {

double ModelCheck::rel_dev() const {
  return std::fabs(measured - predicted) / std::max(std::fabs(predicted), 1.0);
}

bool ModelReport::all_ok() const {
  for (const auto& c : checks)
    if (!c.ok()) return false;
  return true;
}

std::string ModelReport::to_string() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line, "%-24s %16s %16s %10s %9s  %s\n", "counter", "measured",
                "predicted", "rel dev", "tol", "ok");
  os << line;
  for (const auto& c : checks) {
    std::snprintf(line, sizeof line, "%-24s %16.6e %16.6e %10.2e %9.1e  %s\n", c.name.c_str(),
                  c.measured, c.predicted, c.rel_dev(), c.tolerance, c.ok() ? "yes" : "NO");
    os << line;
  }
  return os.str();
}

void ModelReport::write_json(std::ostream& os) const {
  JsonWriter jw(os);
  jw.begin_object();
  jw.key("all_ok");
  jw.value(all_ok());
  jw.key("checks");
  jw.begin_array();
  for (const auto& c : checks) {
    jw.begin_object();
    jw.kv("name", c.name);
    jw.kv("measured", c.measured);
    jw.kv("predicted", c.predicted);
    jw.kv("rel_dev", c.rel_dev());
    jw.kv("tolerance", c.tolerance);
    jw.key("ok");
    jw.value(c.ok());
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
}

ModelReport compare_with_model(const fmm::Params& prm, int components, index_t g,
                               double real_bytes, int runs, double trans_bytes) {
  // Summation-noise tolerance for counts that must agree exactly.
  constexpr double kExact = 1e-9;
  const auto& m = Metrics::global();
  const double r = double(runs), gd = double(g);
  // Translation-pipeline width (FMM stages, halo payloads); the shell
  // (A2A, FFT, POST output) stays at real_bytes.
  const double tb = trans_bytes > 0 ? trans_bytes : real_bytes;

  double flops = 0, mem_scalars = 0, launches = 0;
  for (const auto& st : model::exact_fmm_counts(prm, components, g)) {
    flops += st.flops;
    mem_scalars += st.mem_scalars;
    launches += double(st.launches);
  }

  ModelReport rep;
  auto counter = [&](const std::string& name) { return m.counters_with_prefix(name); };
  rep.checks.push_back(
      {"fmm.flops", counter("fmm.flops"), r * gd * flops, kExact});
  rep.checks.push_back(
      {"fmm.mem_bytes", counter("fmm.mem_bytes"), r * gd * mem_scalars * tb, kExact});
  rep.checks.push_back(
      {"fmm.launches", counter("fmm.launches"), r * gd * launches, 0.0});

  // 2D-FFT stage: per device M/G size-P + P/G size-M transforms; summed
  // over devices (or the G = 1 plan) that is exactly 5·N·log2(N).
  const double n = double(prm.n);
  rep.checks.push_back(
      {"fft.flops", counter("fft.flops"), r * 5.0 * n * std::log2(n), kExact});

  // Fabric traffic, by collective, against the implementation-exact counts.
  const auto exact = model::exact_fmm_comm(prm, components, g);
  const double comm_s = counter("fabric.bytes.COMM-S");
  const double comm_mb = counter("fabric.bytes.COMM-MB");
  const double comm_ml = counter("fabric.bytes.COMM-M") - comm_mb;
  const double a2a = counter("fabric.bytes.A2A-2D");
  rep.checks.push_back({"fabric.COMM-S", comm_s, r * gd * exact.s_halo * tb, kExact});
  rep.checks.push_back({"fabric.COMM-Ml", comm_ml, r * gd * exact.m_halo * tb, kExact});
  rep.checks.push_back({"fabric.COMM-MB", comm_mb, r * gd * exact.m_base * tb, kExact});
  rep.checks.push_back({"fabric.A2A-2D", a2a,
                        g > 1 ? r * (gd - 1.0) / gd * n * 2.0 * real_bytes : 0.0, kExact});

  // The §5.2 closed forms track the fabric ledger up to two documented
  // conventions: the source halo ships the p = 0 slice too (factor
  // P/(P-1)) and the allgather's local slab is free (factor (G-1)/G).
  const auto paper = model::paper_fmm_comm(prm, components, g);
  rep.checks.push_back({"paper.s_halo", comm_s, r * gd * paper.s_halo * tb,
                        1.0 / double(prm.p - 1) + 1e-6});
  rep.checks.push_back({"paper.m_halo", comm_ml, r * gd * paper.m_halo * tb, kExact});
  rep.checks.push_back({"paper.m_base", comm_mb, r * gd * paper.m_base * tb,
                        g > 1 ? 1.0 / gd + 1e-6 : 0.0});
  return rep;
}

namespace {

// Sum a field over all ledger scopes with the given name prefix.
enum Field { kComm, kRw, kFlops };

double ledger_sum(const std::map<std::string, TrafficTotals>& snap, const std::string& prefix,
                  Field f) {
  double s = 0;
  for (const auto& [name, t] : snap) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    s += f == kComm ? t.comm_bytes : f == kRw ? t.bytes_read + t.bytes_written : t.flops;
  }
  return s;
}

}  // namespace

ModelReport compare_traffic_with_model(const fmm::Params& prm, int components, index_t g,
                                       double real_bytes, int runs, double trans_bytes,
                                       int pr, int pc) {
  constexpr double kExact = 1e-9;
  const auto snap = TrafficLedger::global().snapshot();
  const double r = double(runs), gd = double(g);
  const double n = double(prm.n);
  const double tb = trans_bytes > 0 ? trans_bytes : real_bytes;

  auto sum = [&](const std::string& prefix, Field f) { return ledger_sum(snap, prefix, f); };

  double flops = 0, mem_scalars = 0;
  for (const auto& st : model::exact_fmm_counts(prm, components, g)) {
    flops += st.flops;
    mem_scalars += st.mem_scalars;
  }

  ModelReport rep;
  // The transpose payload — the §5.3 "exact for A2A" guarantee. Slab: every
  // device ships all but its own slab once, (G-1)/G · N complex elements in
  // the one exchange. Pencil: the same permutation factorizes into a row
  // phase moving (pc-1)/pc·N and a column phase moving (pr-1)/pr·N.
  if (pr > 0) {
    rep.checks.push_back({"traffic.a2a_row_payload", sum("comm.A2A-ROW", kComm),
                          r * double(pc - 1) / double(pc) * n * 2.0 * real_bytes, kExact});
    rep.checks.push_back({"traffic.a2a_col_payload", sum("comm.A2A-COL", kComm),
                          r * double(pr - 1) / double(pr) * n * 2.0 * real_bytes, kExact});
  } else {
    rep.checks.push_back({"traffic.a2a_payload", sum("comm.A2A-2D", kComm),
                          g > 1 ? r * (gd - 1.0) / gd * n * 2.0 * real_bytes : 0.0, kExact});
  }
  const auto exact = model::exact_fmm_comm(prm, components, g);
  const double comm_mb = sum("comm.COMM-MB", kComm);
  rep.checks.push_back({"traffic.comm_s", sum("comm.COMM-S", kComm),
                        r * gd * exact.s_halo * tb, kExact});
  rep.checks.push_back({"traffic.comm_ml", sum("comm.COMM-M", kComm) - comm_mb,
                        r * gd * exact.m_halo * tb, kExact});
  rep.checks.push_back(
      {"traffic.comm_mb", comm_mb, r * gd * exact.m_base * tb, kExact});

  // FMM kernel traffic: the fmm.* scopes are compute-only (halo copies go
  // to halo.cyclic), so read+written matches the model's mem_scalars.
  rep.checks.push_back({"traffic.fmm_bytes", sum("fmm.", kRw),
                        r * gd * mem_scalars * tb, kExact});
  rep.checks.push_back({"traffic.fmm_flops", sum("fmm.", kFlops), r * gd * flops, kExact});

  // 2D-FFT stage data passes: summed over devices, M size-P rows plus P
  // size-M columns, each transform reading and writing stockham_passes
  // full lines. Predictable only for pow2 factors (no Bluestein configs in
  // the canonical set).
  const index_t p = prm.p, m = prm.m();
  if (is_pow2(p) && is_pow2(m)) {
    const double passes = double(stockham_passes(ilog2_exact(p))) +
                          double(stockham_passes(ilog2_exact(m)));
    rep.checks.push_back({"traffic.fft_bytes", sum("fft", kRw),
                          r * 2.0 * passes * n * 2.0 * real_bytes, kExact});
  }

  // POST sweep (fused shape): reads the C-component T tensor once at the
  // translation width, writes the complex FFT input once at the shell
  // width (identical when the widths agree).
  rep.checks.push_back({"traffic.post_bytes", sum("post", kRw),
                        r * n * (double(components) * tb + 2.0 * real_bytes), kExact});
  return rep;
}

ModelReport compare_fft3d_traffic(index_t n0, index_t n1, index_t n2, index_t g,
                                  double real_bytes, int runs, int pr, int pc) {
  constexpr double kExact = 1e-9;
  const auto snap = TrafficLedger::global().snapshot();
  const double r = double(runs), gd = double(g);
  const double n = double(n0) * double(n1) * double(n2);
  const double eb = 2.0 * real_bytes;  // complex element
  auto sum = [&](const std::string& prefix, Field f) { return ledger_sum(snap, prefix, f); };

  ModelReport rep;
  if (pr > 0) {
    // Pencil: per-phase fabric payloads, and the ledger's fused pack/unpack
    // bytes — each phase reads every element once and writes it once.
    rep.checks.push_back({"traffic.a2a_row_payload", sum("comm.A2A-ROW", kComm),
                          r * double(pc - 1) / double(pc) * n * eb, kExact});
    rep.checks.push_back({"traffic.a2a_col_payload", sum("comm.A2A-COL", kComm),
                          r * double(pr - 1) / double(pr) * n * eb, kExact});
    rep.checks.push_back({"traffic.a2a_row_bytes", sum("a2a.row.", kRw), r * 2.0 * n * eb,
                          kExact});
    rep.checks.push_back({"traffic.a2a_col_bytes", sum("a2a.col.", kRw), r * 2.0 * n * eb,
                          kExact});
  } else {
    // Slab: one G-wide exchange plus the local i0↔i1 reorientation pass.
    rep.checks.push_back({"traffic.a2a_payload", sum("comm.A2A-3D", kComm),
                          g > 1 ? r * (gd - 1.0) / gd * n * eb : 0.0, kExact});
    rep.checks.push_back({"traffic.transpose_bytes", sum("transpose", kRw),
                          r * 2.0 * n * eb, kExact});
  }

  // Three batched FFT phases; each pass reads and writes every line once.
  if (is_pow2(n0) && is_pow2(n1) && is_pow2(n2)) {
    const double passes = double(stockham_passes(ilog2_exact(n0))) +
                          double(stockham_passes(ilog2_exact(n1))) +
                          double(stockham_passes(ilog2_exact(n2)));
    rep.checks.push_back({"traffic.fft_bytes", sum("fft", kRw), r * 2.0 * passes * n * eb,
                          kExact});
  }
  return rep;
}

}  // namespace fmmfft::obs
