#include "obs/traffic.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/threadpool.hpp"
#include "common/timer.hpp"
#include "obs/env.hpp"
#include "obs/trace_writer.hpp"

namespace fmmfft::obs {

namespace detail {
std::atomic<bool> g_traffic_enabled{false};
}  // namespace detail

void enable_traffic(bool on) {
  detail::g_traffic_enabled.store(on, std::memory_order_relaxed);
}

// --- Scope ------------------------------------------------------------------

int TrafficLedger::Scope::stripe() {
  // Same round-robin thread->stripe assignment as obs::Counter: cheap,
  // stable per thread, and spreads concurrent writers across cache lines.
  static std::atomic<int> next{0};
  thread_local const int idx = next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

TrafficTotals TrafficLedger::Scope::totals() const {
  TrafficTotals t;
  for (const Cell& c : cells_) {
    t.bytes_read += c.rd.load(std::memory_order_relaxed);
    t.bytes_written += c.wr.load(std::memory_order_relaxed);
    t.comm_bytes += c.comm.load(std::memory_order_relaxed);
    t.flops += c.flops.load(std::memory_order_relaxed);
    t.seconds += c.seconds.load(std::memory_order_relaxed);
    t.calls += c.calls.load(std::memory_order_relaxed);
  }
  return t;
}

void TrafficLedger::Scope::reset() {
  for (Cell& c : cells_) {
    c.rd.store(0.0, std::memory_order_relaxed);
    c.wr.store(0.0, std::memory_order_relaxed);
    c.comm.store(0.0, std::memory_order_relaxed);
    c.flops.store(0.0, std::memory_order_relaxed);
    c.seconds.store(0.0, std::memory_order_relaxed);
    c.calls.store(0.0, std::memory_order_relaxed);
  }
}

TrafficTotals& TrafficTotals::operator+=(const TrafficTotals& o) {
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  comm_bytes += o.comm_bytes;
  flops += o.flops;
  seconds += o.seconds;
  calls += o.calls;
  return *this;
}

// --- TrafficLedger ----------------------------------------------------------

TrafficLedger& TrafficLedger::global() {
  static TrafficLedger ledger;
  return ledger;
}

TrafficLedger::Scope& TrafficLedger::scope(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return scopes_[name];  // std::map nodes are pointer-stable
}

void TrafficLedger::add_rw(const std::string& name, double rd, double wr, double fl) {
  scope(name).add(rd, wr, 0.0, fl);
}

void TrafficLedger::add_comm(const std::string& name, double bytes) {
  scope(name).add(0.0, 0.0, bytes, 0.0);
}

void TrafficLedger::add_seconds(const std::string& name, double s) {
  scope(name).add_seconds(s);
}

std::map<std::string, TrafficTotals> TrafficLedger::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, TrafficTotals> out;
  for (const auto& [name, sc] : scopes_) out[name] = sc.totals();
  return out;
}

bool TrafficLedger::is_aux(const std::string& name) {
  return name.rfind("blas.", 0) == 0 || name.rfind("exec.", 0) == 0;
}

TrafficTotals TrafficLedger::total(bool primary_only) const {
  TrafficTotals t;
  for (const auto& [name, totals] : snapshot()) {
    if (primary_only && is_aux(name)) continue;
    t += totals;
  }
  return t;
}

void TrafficLedger::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, sc] : scopes_) sc.reset();
}

namespace {

std::string human_bytes(double b) {
  const char* unit = "B";
  if (b >= 1e9) {
    b /= 1e9;
    unit = "GB";
  } else if (b >= 1e6) {
    b /= 1e6;
    unit = "MB";
  } else if (b >= 1e3) {
    b /= 1e3;
    unit = "KB";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", b, unit);
  return buf;
}

/// Busy seconds covering a primary scope's traffic, if a timed executor lane
/// maps onto it. The async executor names its lanes/stages; this is the
/// fixed mapping between those stage tags and ledger scopes.
double covering_seconds(const std::string& name,
                        const std::map<std::string, TrafficTotals>& snap) {
  auto sec = [&](const char* s) {
    auto it = snap.find(s);
    return it != snap.end() ? it->second.seconds : 0.0;
  };
  if (name == "fft") return sec("exec.fft");
  if (name == "post") return sec("exec.post");
  if (name.rfind("fmm.", 0) == 0) return sec("exec.fmm");
  if (name.rfind("a2a.", 0) == 0 || name == "comm.A2A-2D") return sec("exec.a2a");
  return 0.0;
}

}  // namespace

std::string TrafficLedger::report(const MachineRoofline* cal) const {
  const auto snap = snapshot();
  std::ostringstream os;
  os << "traffic ledger (algorithmic bytes; aux scopes excluded from total)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-14s %12s %12s %12s %14s %8s %9s\n", "scope",
                "read", "written", "comm", "flops", "AI", "w/flop");
  os << line;
  auto row = [&](const std::string& name, const TrafficTotals& t) {
    std::snprintf(line, sizeof(line), "  %-14s %12s %12s %12s %14.4g %8.3f %9.3f",
                  name.c_str(), human_bytes(t.bytes_read).c_str(),
                  human_bytes(t.bytes_written).c_str(), human_bytes(t.comm_bytes).c_str(),
                  t.flops, t.arithmetic_intensity(), t.words_per_flop());
    os << line;
    const double sec = t.seconds > 0 ? t.seconds : covering_seconds(name, snap);
    if (sec > 0 && t.bytes_moved() > 0) {
      const double bps = t.bytes_moved() / sec;
      std::snprintf(line, sizeof(line), "  %7.2f GB/s", bps / 1e9);
      os << line;
      if (cal && cal->roof_bps() > 0) {
        std::snprintf(line, sizeof(line), " (%.0f%% of triad roof)", 100.0 * bps / cal->roof_bps());
        os << line;
      }
    }
    os << "\n";
  };
  for (const auto& [name, t] : snap) {
    if (!is_aux(name)) row(name, t);
  }
  row("TOTAL", total(true));
  for (const auto& [name, t] : snap) {
    if (is_aux(name)) row(name, t);
  }
  if (cal) {
    std::snprintf(line, sizeof(line),
                  "  calibrated roof: copy %.1f  scale %.1f  triad %.1f GB/s, "
                  "fma %.1f GF/s (%d threads)\n",
                  cal->copy_bps / 1e9, cal->scale_bps / 1e9, cal->triad_bps / 1e9,
                  cal->fma_flops / 1e9, cal->threads);
    os << line;
  }
  return os.str();
}

namespace {

void write_totals(JsonWriter& w, const TrafficTotals& t) {
  w.begin_object();
  w.kv("bytes_read", t.bytes_read);
  w.kv("bytes_written", t.bytes_written);
  w.kv("comm_bytes", t.comm_bytes);
  w.kv("bytes_moved", t.bytes_moved());
  w.kv("flops", t.flops);
  w.kv("seconds", t.seconds);
  w.kv("calls", t.calls);
  w.kv("arithmetic_intensity", t.arithmetic_intensity());
  w.kv("words_per_flop", t.words_per_flop());
  w.end_object();
}

void write_roofline(JsonWriter& w, const MachineRoofline& r) {
  w.begin_object();
  w.kv("threads", double(r.threads));
  w.kv("copy_bps", r.copy_bps);
  w.kv("scale_bps", r.scale_bps);
  w.kv("triad_bps", r.triad_bps);
  w.kv("fma_flops", r.fma_flops);
  w.end_object();
}

}  // namespace

void TrafficLedger::write_json(std::ostream& os, const MachineRoofline* cal) const {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "fmmfft.traffic.v1");
  w.key("scopes");
  w.begin_object();
  for (const auto& [name, t] : snapshot()) {
    w.key(name);
    write_totals(w, t);
  }
  w.end_object();
  w.key("total");
  write_totals(w, total(true));
  w.key("aux_total");
  {
    TrafficTotals aux;
    for (const auto& [name, t] : snapshot())
      if (is_aux(name)) aux += t;
    write_totals(w, aux);
  }
  if (cal) {
    w.key("calibration");
    write_roofline(w, *cal);
  }
  w.end_object();
  os << "\n";
}

// --- STREAM-style self-calibration ------------------------------------------

namespace {

// Simple FMA throughput anchor: `lanes` independent chains so the loop is
// throughput- not latency-bound. Plain scalar code on purpose — the compute
// roof here is "what a straightforward loop reaches", the same ballpark the
// kernels compile to, not a hand-tuned peak.
double fma_loop(index_t iters) {
  constexpr int kLanes = 8;
  double acc[kLanes];
  for (int l = 0; l < kLanes; ++l) acc[l] = 1.0 + 1e-9 * l;
  const double a = 1.0000001, b = 1e-10;
  for (index_t i = 0; i < iters; ++i)
    for (int l = 0; l < kLanes; ++l) acc[l] = acc[l] * a + b;
  double s = 0;
  for (int l = 0; l < kLanes; ++l) s += acc[l];
  return s;
}

}  // namespace

MachineRoofline calibrate_roofline(int threads, index_t elems, int reps) {
  auto& pool = ThreadPool::global();
  const bool serial = threads == 1;
  MachineRoofline r;
  r.threads = serial ? 1 : (threads > 0 ? threads : pool.workers());

  std::vector<double> a(elems), b(elems), c(elems);
  for (index_t i = 0; i < elems; ++i) a[i] = 1.0 + 1e-9 * double(i);
  const double s = 3.0;

  auto run = [&](auto&& body) {
    if (serial) {
      ThreadPool::ScopedSerial guard;
      parallel_for(elems, body, 4096);
    } else {
      parallel_for(elems, body, 4096);
    }
  };
  auto best_of = [&](auto&& body) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      WallTimer t;
      run(body);
      best = std::min(best, t.seconds());
    }
    return best;
  };

  // STREAM convention: copy/scale move 2 arrays, triad moves 3.
  const double copy_s = best_of([&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) b[i] = a[i];
  });
  r.copy_bps = 2.0 * double(elems) * sizeof(double) / copy_s;
  const double scale_s = best_of([&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) b[i] = s * a[i];
  });
  r.scale_bps = 2.0 * double(elems) * sizeof(double) / scale_s;
  const double triad_s = best_of([&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) c[i] = a[i] + s * b[i];
  });
  r.triad_bps = 3.0 * double(elems) * sizeof(double) / triad_s;

  // Compute anchor: 2 flops per FMA, 8 lanes, replicated on each worker.
  const index_t iters = 1 << 21;
  volatile double sink = 0;
  double fma_s = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    if (serial) {
      ThreadPool::ScopedSerial guard;
      sink = sink + fma_loop(iters);
    } else {
      std::atomic<double> acc{0.0};
      pool.run_chunks(r.threads, [&](index_t) {
        const double v = fma_loop(iters);
        acc.fetch_add(v, std::memory_order_relaxed);
      });
      sink = sink + acc.load();
    }
    fma_s = std::min(fma_s, t.seconds());
  }
  r.fma_flops = 2.0 * 8.0 * double(iters) * double(serial ? 1 : r.threads) / fma_s;
  return r;
}

std::vector<MachineRoofline> calibrate_roofline_sweep(index_t elems, int reps) {
  std::vector<MachineRoofline> sweep;
  sweep.push_back(calibrate_roofline(1, elems, reps));
  const int workers = ThreadPool::global().workers();
  if (workers > 1) sweep.push_back(calibrate_roofline(workers, elems, reps));
  return sweep;
}

void write_calibration_json(std::ostream& os, const std::vector<MachineRoofline>& sweep) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "fmmfft.calibration.v1");
  w.key("results");
  w.begin_array();
  for (const auto& r : sweep) write_roofline(w, r);
  w.end_array();
  w.end_object();
  os << "\n";
}

// --- Environment wiring -----------------------------------------------------

namespace {

std::string& traffic_path() {
  static std::string path;
  return path;
}

void dump_traffic_at_exit() {
  if (!traffic_path().empty()) write_traffic_file(traffic_path());
}

}  // namespace

bool write_traffic_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  TrafficLedger::global().write_json(os);
  return os.good();
}

void init_traffic_from_env() {
  if (const char* path = env::get("FMMFFT_TRAFFIC"); path && *path) {
    // Construct the singleton (and the path string, via traffic_path())
    // *before* registering the atexit dump so both are destroyed after it
    // runs — same discipline as obs::init_from_env.
    TrafficLedger::global();
    traffic_path() = path;
    enable_traffic(true);
    std::atexit(dump_traffic_at_exit);
  }
}

namespace {
[[maybe_unused]] const bool g_traffic_env_initialized = [] {
  init_traffic_from_env();
  return true;
}();
}  // namespace

}  // namespace fmmfft::obs
