#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/env.hpp"
#include "obs/health.hpp"
#include "obs/trace_writer.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_span_hooks{false};

void update_span_hooks() {
  g_span_hooks.store(g_trace_enabled.load(std::memory_order_relaxed) ||
                         health::sampling_enabled(),
                     std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch).count());
}

namespace {
thread_local int tls_depth = 0;
}

int enter_span() { return tls_depth++; }
void leave_span() { --tls_depth; }

int open_span(const char* name) {
  if (health::sampling_enabled()) health::detail::span_push(name);
  return enter_span();
}

void close_span(const char* name, std::uint64_t start_ns, int depth) {
  leave_span();
  if (health::sampling_enabled()) health::detail::span_pop();
  if (tracing_enabled()) record_span(name, start_ns, now_ns(), depth);
}

}  // namespace detail

void enable_tracing(bool on) {
  if (on) Recorder::global();  // construct before first lock-free record
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  detail::update_span_hooks();
}
void enable_metrics(bool on) {
  if (on) Metrics::global();
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}
void enable() {
  enable_tracing(true);
  enable_metrics(true);
}
void disable() {
  enable_tracing(false);
  enable_metrics(false);
  enable_traffic(false);
}
void reset() {
  Recorder::global().clear();
  Metrics::global().reset();
  TrafficLedger::global().reset();
}

// ---------------------------------------------------------------------------
// Recorder

/// Single-producer ring: only the owning thread appends; readers take the
/// registry mutex and synchronize on the release store of `size`.
struct Recorder::Lane {
  explicit Lane(int id_) : id(id_) { events.resize(kLaneCapacity); }
  int id;
  std::vector<SpanEvent> events;
  std::atomic<std::uint32_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
};

namespace {
thread_local Recorder::Lane* tls_lane = nullptr;
}

Recorder& Recorder::global() {
  static Recorder r;
  return r;
}

Recorder::Lane* Recorder::register_lane() {
  std::lock_guard<std::mutex> lk(mu_);
  lanes_.push_back(std::make_unique<Lane>(static_cast<int>(lanes_.size())));
  return lanes_.back().get();
}

namespace detail {
void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns, int depth) {
  Recorder::Lane* lane = tls_lane;
  if (!lane) lane = tls_lane = Recorder::global().register_lane();
  const std::uint32_t n = lane->size.load(std::memory_order_relaxed);
  if (n >= Recorder::kLaneCapacity) {
    lane->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanEvent& ev = lane->events[n];
  std::strncpy(ev.name, name, sizeof ev.name - 1);
  ev.name[sizeof ev.name - 1] = '\0';
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  ev.lane = lane->id;
  ev.depth = depth;
  lane->size.store(n + 1, std::memory_order_release);
}
}  // namespace detail

std::vector<SpanEvent> Recorder::snapshot() const {
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& lane : lanes_) {
    const std::uint32_t n = lane->size.load(std::memory_order_acquire);
    out.insert(out.end(), lane->events.begin(), lane->events.begin() + n);
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.lane != b.lane ? a.lane < b.lane : a.start_ns < b.start_ns;
  });
  return out;
}

std::uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t d = 0;
  for (const auto& lane : lanes_) d += lane->dropped.load(std::memory_order_relaxed);
  return d;
}

int Recorder::lanes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(lanes_.size());
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& lane : lanes_) {
    lane->size.store(0, std::memory_order_release);
    lane->dropped.store(0, std::memory_order_relaxed);
  }
}

void Recorder::write_chrome_trace(std::ostream& os) const {
  TraceWriter tw(os);
  for (const SpanEvent& ev : snapshot())
    tw.complete_event(ev.name, double(ev.start_ns) * 1e-3,
                      double(ev.end_ns - ev.start_ns) * 1e-3, 0,
                      "lane" + std::to_string(ev.lane));
  tw.finish();
}

// ---------------------------------------------------------------------------
// Metrics

namespace {
/// Stripe assignment: threads pick distinct cells round-robin.
int stripe_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(idx % unsigned(Counter::kStripes));
}
}  // namespace

void Counter::add(double v) {
  cells_[stripe_index()].v.fetch_add(v, std::memory_order_relaxed);
}

double Counter::value() const {
  double s = 0;
  for (const Cell& c : cells_) s += c.v.load(std::memory_order_relaxed);
  return s;
}

void Counter::reset() {
  for (Cell& c : cells_) c.v.store(0.0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // NaN carries no rank information and would poison sum(); drop it. +inf
  // must not reach ilogb (ilogb(inf) == INT_MAX, and 1 + INT_MAX is signed
  // overflow): clamp everything at or above the top bucket's lower edge
  // first. Negative values (clock skew artifacts) land in bucket 0.
  if (std::isnan(v)) return;
  int k = 0;
  if (v >= std::ldexp(1.0, kBuckets - 2)) {
    k = kBuckets - 1;
  } else if (v >= 1.0) {
    k = std::min(kBuckets - 1, 1 + std::ilogb(v));
  }
  buckets_[k].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(std::isinf(v) ? std::ldexp(1.0, kBuckets - 1) : v,
                 std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::percentile(double p) const {
  // Snapshot once so the estimate is consistent under concurrent observe().
  std::uint64_t snap[kBuckets];
  std::uint64_t total = 0;
  for (int k = 0; k < kBuckets; ++k) total += snap[k] = buckets_[k].load(std::memory_order_relaxed);
  if (total == 0 || std::isnan(p)) return 0.0;
  const double rank = std::min(std::max(p, 0.0), 100.0) / 100.0 * double(total);
  double cum = 0;
  for (int k = 0; k < kBuckets; ++k) {
    if (snap[k] == 0) continue;
    const double next = cum + double(snap[k]);
    if (next >= rank) {
      const double lo = k == 0 ? 0.0 : std::ldexp(1.0, k - 1);
      const double hi = std::ldexp(1.0, k);
      const double frac = (rank - cum) / double(snap[k]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return std::ldexp(1.0, kBuckets - 1);  // unreachable: rank <= total
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return gauges_[name];
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return histograms_[name];
}

std::map<std::string, double> Metrics::counters_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = c.value();
  return out;
}

double Metrics::counters_with_prefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  double s = 0;
  for (const auto& [name, c] : counters_)
    if (name.rfind(prefix, 0) == 0) s += c.value();
  return s;
}

void Metrics::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter jw(os);
  jw.begin_object();
  jw.key("counters");
  jw.begin_object();
  for (const auto& [name, c] : counters_) jw.kv(name, c.value());
  jw.end_object();
  jw.key("gauges");
  jw.begin_object();
  for (const auto& [name, g] : gauges_) jw.kv(name, g.value());
  jw.end_object();
  jw.key("histograms");
  jw.begin_object();
  for (const auto& [name, h] : histograms_) {
    jw.key(name);
    jw.begin_object();
    jw.kv("count", double(h.count()));
    jw.kv("sum", h.sum());
    jw.kv("p50", h.percentile(50));
    jw.kv("p95", h.percentile(95));
    jw.kv("p99", h.percentile(99));
    jw.key("buckets");
    jw.begin_array();
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      const std::uint64_t n = h.bucket(k);
      if (n == 0) continue;
      jw.begin_array();
      jw.value(k == 0 ? 0.0 : std::ldexp(1.0, k - 1));  // bucket lower bound
      jw.value(double(n));
      jw.end_array();
    }
    jw.end_array();
    jw.end_object();
  }
  jw.end_object();
  jw.end_object();
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

// ---------------------------------------------------------------------------
// Environment-driven setup and at-exit dump

bool write_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  Recorder::global().write_chrome_trace(os);
  return bool(os);
}

bool write_metrics_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  Metrics::global().write_json(os);
  os << "\n";
  return bool(os);
}

namespace {

std::string g_trace_path, g_metrics_path;

void dump_at_exit() {
  if (!g_trace_path.empty() && !write_trace_file(g_trace_path))
    std::fprintf(stderr, "fmmfft: could not write FMMFFT_TRACE=%s\n", g_trace_path.c_str());
  if (!g_metrics_path.empty() && !write_metrics_file(g_metrics_path))
    std::fprintf(stderr, "fmmfft: could not write FMMFFT_METRICS=%s\n", g_metrics_path.c_str());
}

}  // namespace

void init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  const char* trace = env::get("FMMFFT_TRACE");
  const char* metrics = env::get("FMMFFT_METRICS");
  if (!trace && !metrics) return;
  // Construct the singletons *before* registering the atexit dump so they
  // are destroyed after it runs.
  Recorder::global();
  Metrics::global();
  if (trace && *trace) {
    g_trace_path = trace;
    enable_tracing(true);
  }
  if (metrics && *metrics) {
    g_metrics_path = metrics;
    enable_metrics(true);
  }
  std::atexit(dump_at_exit);
}

namespace {
// Any TU that uses the hook macros references detail::g_*_enabled, which
// pulls this object file — and with it this initializer — into the link.
[[maybe_unused]] const bool g_env_initialized = [] {
  init_from_env();
  return true;
}();
}  // namespace

}  // namespace fmmfft::obs
