// Central registry of every FMMFFT_* environment knob.
//
// One process has a dozen tuning/observability switches; reading them with
// scattered std::getenv calls means no single place lists what exists, what
// a knob defaults to, or what it does — and typos silently read nothing.
// Every environment lookup in the library goes through env::get*, which
// FMMFFT_CHECKs the name against the registry below, so an unregistered
// knob is a hard error at the call site and `fmmfft_cli --env` can print
// the complete table (name, current value, default, description).
// tests/test_health.cpp additionally scans the source tree and fails if any
// TU outside this subsystem calls std::getenv("FMMFFT_...") directly.
#pragma once

#include <string>
#include <vector>

namespace fmmfft::obs::env {

/// One registered knob. All strings are literals with static lifetime.
struct Knob {
  const char* name;  ///< "FMMFFT_TRACE"
  const char* kind;  ///< "path" | "int" | "float" | "flag" | "enum"
  const char* def;   ///< default shown in the table ("(unset)", "auto", ...)
  const char* desc;  ///< one-line description
};

/// Every FMMFFT_* knob the process understands, in display order.
const std::vector<Knob>& registry();

/// Raw lookup (nullptr when unset). The name must be registered.
const char* get(const char* name);

/// Integer knob: parsed value when set and parseable, `def` otherwise.
long long get_int(const char* name, long long def);

/// Floating-point knob: parsed value when set and parseable, `def` otherwise.
double get_double(const char* name, double def);

/// Human-readable table of the whole registry with current values
/// (the body of `fmmfft_cli --env`).
std::string describe();

}  // namespace fmmfft::obs::env
