// Runtime observability: span tracing and a metrics registry.
//
// The repo *predicts* per-stage flop/byte/comm counts (src/model/counts.*)
// and *simulates* their timing (src/sim/schedule.*); this subsystem observes
// what the real host execution actually does. Two independent facilities
// share one on/off discipline:
//
//  * Spans — RAII scopes (`FMMFFT_SPAN("M2L")`) written to per-thread ring
//    buffers and collected by the process-wide Recorder, exportable as
//    chrome://tracing / Perfetto JSON (obs/trace_writer.hpp).
//  * Metrics — named counters / gauges / histograms (flops, bytes moved,
//    GEMM calls, kernel-equivalent launches, fabric transfers), dumpable as
//    JSON and diffable against the §5 model (obs/compare.hpp).
//
// Everything is compiled in but runs as a no-op unless enabled: the
// disabled fast path of every hook is one relaxed atomic load and a branch,
// with no allocation (tests/test_obs.cpp asserts this; the cost is measured
// by bench/micro_benchmarks.cpp). Enabling is programmatic
// (obs::enable_tracing / obs::enable_metrics) or via the environment:
// FMMFFT_TRACE=<path> and FMMFFT_METRICS=<path> enable the respective
// facility at startup and write the JSON files at process exit.
// Defining FMMFFT_OBS_DISABLE removes the hooks entirely at compile time.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fmmfft::obs {

namespace detail {
// Defined in obs.cpp. Referencing these from the macros pulls obs.cpp (and
// its environment-variable initializer) into any binary using the hooks.
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_metrics_enabled;
/// True while any span consumer is live: tracing, or the health span
/// sampler. SpanScope gates on this so the sampler sees the current-span
/// stack without tracing enabled (same one-load disabled cost).
extern std::atomic<bool> g_span_hooks;
/// Recompute g_span_hooks from the tracing + sampling states.
void update_span_hooks();
std::uint64_t now_ns();  ///< steady-clock ns since the process epoch
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
inline bool span_hooks_enabled() {
  return detail::g_span_hooks.load(std::memory_order_relaxed);
}
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline bool enabled() { return tracing_enabled() || metrics_enabled(); }

void enable_tracing(bool on = true);
void enable_metrics(bool on = true);
void enable();   ///< both facilities
void disable();  ///< every facility (tracing, metrics, traffic ledger)
/// Drop all recorded spans and zero every metric. Registered counters stay
/// alive (hook sites hold references), only their values reset.
void reset();

// ---------------------------------------------------------------------------
// Spans

/// One completed span. `name` is a bounded copy so events never reference
/// caller-owned storage; `lane` is the recording thread's registration
/// order; `depth` is the nesting level within the lane (0 = outermost).
struct SpanEvent {
  static constexpr int kNameCap = 40;
  char name[kNameCap];
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  int lane = 0;
  int depth = 0;
};

namespace detail {
void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns, int depth);
int enter_span();  ///< returns this span's depth on the current lane
void leave_span();
/// Out-of-line SpanScope open/close: enter/leave the lane depth, publish to
/// the health sampler's per-thread stack while sampling, and record the
/// completed span while tracing. open_span returns the span's depth.
int open_span(const char* name);
void close_span(const char* name, std::uint64_t start_ns, int depth);
}  // namespace detail

/// RAII span scope. Construction/destruction with tracing disabled costs
/// one relaxed load + branch and never allocates.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (!span_hooks_enabled()) return;
    open(name);
  }
  /// Dynamic-suffix form for tagged spans ("COMM-M7", fabric tags). The
  /// string is copied into the event, never retained.
  SpanScope(const char* prefix, const std::string& suffix) {
    if (!span_hooks_enabled()) return;
    char buf[SpanEvent::kNameCap];
    std::snprintf(buf, sizeof buf, "%s%s", prefix, suffix.c_str());
    open(buf);
  }
  ~SpanScope() {
    if (!active_) return;
    detail::close_span(name_, start_, depth_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void open(const char* name) {
    active_ = true;
    std::strncpy(name_, name, sizeof name_ - 1);
    name_[sizeof name_ - 1] = '\0';
    depth_ = detail::open_span(name_);
    start_ = detail::now_ns();
  }
  bool active_ = false;
  int depth_ = 0;
  std::uint64_t start_ = 0;
  char name_[SpanEvent::kNameCap] = {};
};

/// Process-wide span collector. Lanes (one per recording thread) are owned
/// here and live for the process lifetime; threads cache a raw pointer in
/// thread-local storage, so recording is lock-free single-producer.
class Recorder {
 public:
  static Recorder& global();

  /// Copy of all completed spans, ordered by (lane, start time).
  std::vector<SpanEvent> snapshot() const;
  /// Spans dropped because a lane's ring filled (kLaneCapacity).
  std::uint64_t dropped() const;
  int lanes() const;
  void clear();

  /// chrome://tracing JSON of all recorded spans (obs::TraceWriter format;
  /// pid 0, one tid per lane, timestamps relative to the process epoch).
  void write_chrome_trace(std::ostream& os) const;

  static constexpr std::size_t kLaneCapacity = std::size_t(1) << 15;

  struct Lane;  ///< defined in obs.cpp; threads cache a Lane* in TLS

 private:
  friend void detail::record_span(const char*, std::uint64_t, std::uint64_t, int);
  Lane* register_lane();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

// ---------------------------------------------------------------------------
// Metrics

/// Monotonic double counter, striped across cache lines so concurrent
/// parallel_for workers don't serialize on one atomic.
class Counter {
 public:
  static constexpr int kStripes = 16;

  void add(double v);
  void increment() { add(1.0); }
  double value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<double> v{0.0};
  };
  Cell cells_[kStripes];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two bucketed histogram of non-negative samples: bucket k counts
/// samples in [2^(k-1), 2^k) (bucket 0: [0, 1)).
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  std::uint64_t bucket(int k) const { return buckets_[k].load(std::memory_order_relaxed); }
  /// Estimated p-th percentile (p in [0, 100]), linearly interpolated within
  /// the containing bucket; 0 when the histogram is empty. Resolution is the
  /// bucket width, i.e. a factor of 2.
  double percentile(double p) const;

 private:
  friend class Metrics;
  void reset();
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<double> sum_{0.0};
};

/// Process-wide metrics registry. Instruments are created on first lookup
/// and never destroyed before exit, so hook sites may cache references.
class Metrics {
 public:
  static Metrics& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Counter values by name (zero-valued counters included).
  std::map<std::string, double> counters_snapshot() const;
  /// Sum of all counters whose name starts with `prefix`.
  double counters_with_prefix(const std::string& prefix) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} JSON.
  void write_json(std::ostream& os) const;

  void reset();  ///< zero all values, keep the instruments registered

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// ---------------------------------------------------------------------------
// File output

/// Read FMMFFT_TRACE / FMMFFT_METRICS and arm the at-exit dump for any that
/// are set. Runs automatically at startup from obs.cpp's initializer;
/// calling it again is harmless.
void init_from_env();

/// Write the recorded spans / current metrics as JSON to `path` (the
/// explicit counterparts of the env-driven at-exit dump).
bool write_trace_file(const std::string& path);
bool write_metrics_file(const std::string& path);

}  // namespace fmmfft::obs

// ---------------------------------------------------------------------------
// Hook macros — the only things hot paths touch.

#ifdef FMMFFT_OBS_DISABLE
#define FMMFFT_SPAN(...) ((void)0)
#define FMMFFT_COUNT(name, delta) ((void)0)
#define FMMFFT_HIST(name, value) ((void)0)
#else
#define FMMFFT_OBS_CONCAT2(a, b) a##b
#define FMMFFT_OBS_CONCAT(a, b) FMMFFT_OBS_CONCAT2(a, b)
/// Open a span covering the rest of the enclosing scope.
/// FMMFFT_SPAN("name") or FMMFFT_SPAN("prefix", std::string_suffix).
#define FMMFFT_SPAN(...) \
  ::fmmfft::obs::SpanScope FMMFFT_OBS_CONCAT(fmmfft_obs_span_, __LINE__)(__VA_ARGS__)
/// Add `delta` to the counter named by the string literal `name`. The
/// registry lookup happens once per call site (magic static).
#define FMMFFT_COUNT(name, delta)                                                   \
  do {                                                                              \
    if (::fmmfft::obs::metrics_enabled()) {                                         \
      static ::fmmfft::obs::Counter& fmmfft_obs_counter =                           \
          ::fmmfft::obs::Metrics::global().counter(name);                           \
      fmmfft_obs_counter.add(static_cast<double>(delta));                           \
    }                                                                               \
  } while (0)
/// Observe `value` in the histogram named by the string literal `name`
/// (power-of-two buckets; p50/p95/p99 appear in the metrics JSON).
#define FMMFFT_HIST(name, value)                                                    \
  do {                                                                              \
    if (::fmmfft::obs::metrics_enabled()) {                                         \
      static ::fmmfft::obs::Histogram& fmmfft_obs_hist =                            \
          ::fmmfft::obs::Metrics::global().histogram(name);                         \
      fmmfft_obs_hist.observe(static_cast<double>(value));                          \
    }                                                                               \
  } while (0)
#endif
