#include "obs/health.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/env.hpp"
#include "obs/obs.hpp"
#include "obs/trace_writer.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::obs::health {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
std::atomic<bool> g_sampling_enabled{false};
}  // namespace detail

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::Mark: return "mark";
    case Ev::GraphStart: return "graph_start";
    case Ev::GraphEnd: return "graph_end";
    case Ev::TaskStart: return "task_start";
    case Ev::TaskEnd: return "task_end";
    case Ev::TaskFail: return "task_fail";
    case Ev::Stage: return "stage";
    case Ev::Comm: return "comm";
    case Ev::Fault: return "fault";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Flight recorder
//
// Per-thread rings in a fixed lock-free registry (atomic pointers, no
// container), so both the concurrent snapshot and the signal-handler dump
// can walk them without taking any lock or touching the heap. Each slot is
// a single-producer seqlock of relaxed atomics: `seq` is 0 while the owner
// rewrites the slot and event-number+1 once the slot is consistent.

namespace {

constexpr int kMaxRings = 128;

struct FlightRing {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> meta{0};  // kind<<56 | lane<<32 | a
    std::atomic<std::uint64_t> tag0{0}, tag1{0};
  };
  explicit FlightRing(int id_) : id(id_) {}
  int id;
  std::atomic<std::uint64_t> head{0};  // events ever written here
  Slot slots[kFlightCapacity];
};

std::atomic<FlightRing*> g_rings[kMaxRings] = {};
std::atomic<int> g_ring_count{0};
std::atomic<std::uint64_t> g_ring_overflow{0};
thread_local FlightRing* tls_ring = nullptr;
thread_local bool tls_ring_denied = false;

FlightRing* flight_ring() {
  if (tls_ring) return tls_ring;
  if (tls_ring_denied) return nullptr;
  const int idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxRings) {
    // Threads beyond the registry record nothing (sharing a ring would
    // break the single-producer seqlock).
    tls_ring_denied = true;
    g_ring_overflow.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Leaked deliberately: rings must outlive any dump, including the at-exit
  // and signal paths.
  auto* ring = new FlightRing(idx);
  g_rings[idx].store(ring, std::memory_order_release);
  return tls_ring = ring;
}

std::uint64_t pack_meta(Ev kind, int lane, std::uint32_t a) {
  return (std::uint64_t(static_cast<std::uint8_t>(kind)) << 56) |
         ((std::uint64_t(lane) & 0xFFFFFF) << 32) | a;
}

void pack_tag(const char* tag, std::uint64_t& t0, std::uint64_t& t1) {
  char buf[kFlightTagCap] = {};
  if (tag) std::strncpy(buf, tag, sizeof buf - 1);
  std::memcpy(&t0, buf, 8);
  std::memcpy(&t1, buf + 8, 8);
}

}  // namespace

namespace detail {

void flight_record(Ev kind, std::uint32_t a, int lane, const char* tag) {
  FlightRing* ring = flight_ring();
  if (!ring) return;
  const std::uint64_t n = ring->head.load(std::memory_order_relaxed);
  FlightRing::Slot& s = ring->slots[n % kFlightCapacity];
  std::uint64_t t0, t1;
  pack_tag(tag, t0, t1);
  s.seq.store(0, std::memory_order_release);  // invalidate while rewriting
  s.t_ns.store(obs::detail::now_ns(), std::memory_order_relaxed);
  s.meta.store(pack_meta(kind, lane, a), std::memory_order_relaxed);
  s.tag0.store(t0, std::memory_order_relaxed);
  s.tag1.store(t1, std::memory_order_relaxed);
  s.seq.store(n + 1, std::memory_order_release);
  ring->head.store(n + 1, std::memory_order_release);
}

}  // namespace detail

void enable_flight(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

namespace {

bool decode_slot(const FlightRing& ring, std::uint64_t n, FlightEvent& out) {
  const FlightRing::Slot& s = ring.slots[n % kFlightCapacity];
  const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
  if (seq1 != n + 1) return false;  // overwritten or mid-write
  const std::uint64_t t = s.t_ns.load(std::memory_order_relaxed);
  const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
  const std::uint64_t t0 = s.tag0.load(std::memory_order_relaxed);
  const std::uint64_t t1 = s.tag1.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != n + 1) return false;
  out.seq = n + 1;
  out.t_ns = t;
  out.kind = static_cast<Ev>(meta >> 56);
  out.lane = static_cast<int>((meta >> 32) & 0xFFFFFF);
  out.a = static_cast<std::uint32_t>(meta & 0xFFFFFFFFu);
  out.ring = ring.id;
  std::memcpy(out.tag, &t0, 8);
  std::memcpy(out.tag + 8, &t1, 8);
  out.tag[kFlightTagCap] = '\0';
  return true;
}

}  // namespace

std::vector<FlightEvent> flight_snapshot() {
  std::vector<FlightEvent> out;
  const int n = std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (int i = 0; i < n; ++i) {
    const FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (!ring) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kFlightCapacity ? head - kFlightCapacity : 0;
    for (std::uint64_t e = lo; e < head; ++e) {
      FlightEvent ev;
      if (decode_slot(*ring, e, ev)) out.push_back(ev);
    }
  }
  return out;
}

std::uint64_t flight_recorded() {
  std::uint64_t total = 0;
  const int n = std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (int i = 0; i < n; ++i)
    if (const FlightRing* ring = g_rings[i].load(std::memory_order_acquire))
      total += ring->head.load(std::memory_order_relaxed);
  return total;
}

void flight_clear() {
  const int n = std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (int i = 0; i < n; ++i)
    if (FlightRing* ring = g_rings[i].load(std::memory_order_acquire)) {
      // Invalidate every slot, then rewind. Slot order matters: a concurrent
      // reader must never see stale payload under a fresh head.
      for (auto& s : ring->slots) s.seq.store(0, std::memory_order_release);
      ring->head.store(0, std::memory_order_release);
    }
}

// ---------------------------------------------------------------------------
// Watchdog

namespace {

struct SourceTrack {
  Source* src = nullptr;
  std::uint64_t last_progress = 0;
  std::uint64_t last_change_ns = 0;
  bool fired = false;  ///< one verdict per stall episode
};

struct Watchdog {
  std::mutex mu;  // sources + tracking; held while inspecting a source
  std::condition_variable cv;
  std::vector<SourceTrack> tracks;
  std::thread thread;
  bool running = false;
  std::atomic<std::uint64_t> deadline_ms{0};
  std::atomic<std::uint64_t> fires{0};
  std::mutex verdict_mu;
  std::string verdict;
};

Watchdog& dog() {
  static Watchdog* w = new Watchdog;  // leaked: sources may outlive main
  return *w;
}

void watchdog_fire(Watchdog& w, SourceTrack& t, std::uint64_t now,
                   std::uint64_t deadline) {
  t.fired = true;
  w.fires.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << "watchdog: source '" << t.src->source_name() << "' made no progress for "
     << (now - t.last_change_ns) / 1000000 << " ms (deadline " << deadline
     << " ms)\n" << t.src->describe_stall();
  const std::string verdict = os.str();
  {
    std::lock_guard<std::mutex> lk(w.verdict_mu);
    w.verdict = verdict;
  }
  FMMFFT_COUNT("health.watchdog.fired", 1);
  std::fprintf(stderr, "fmmfft: %s\n", verdict.c_str());
  const std::string path = emit_postmortem("watchdog", verdict);
  if (!path.empty())
    std::fprintf(stderr, "fmmfft: postmortem written to %s\n", path.c_str());
}

void watchdog_loop() {
  Watchdog& w = dog();
  std::unique_lock<std::mutex> lk(w.mu);
  for (;;) {
    const std::uint64_t deadline = w.deadline_ms.load(std::memory_order_relaxed);
    if (deadline == 0) return;
    // Poll a few times per deadline so detection latency stays well under 2x.
    const auto poll = std::chrono::milliseconds(
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(deadline / 4, 250)));
    w.cv.wait_for(lk, poll);
    if (w.deadline_ms.load(std::memory_order_relaxed) == 0) return;
    const std::uint64_t now = obs::detail::now_ns();
    for (SourceTrack& t : w.tracks) {
      const std::uint64_t p = t.src->progress();
      if (p != t.last_progress) {
        t.last_progress = p;
        t.last_change_ns = now;
        t.fired = false;
      } else if (!t.fired && now - t.last_change_ns > deadline * 1000000ull) {
        watchdog_fire(w, t, now, deadline);
      }
    }
  }
}

}  // namespace

void register_source(Source* s) {
  Watchdog& w = dog();
  std::lock_guard<std::mutex> lk(w.mu);
  w.tracks.push_back({s, s->progress(), obs::detail::now_ns(), false});
}

void unregister_source(Source* s) {
  Watchdog& w = dog();
  std::lock_guard<std::mutex> lk(w.mu);  // blocks while an inspection runs
  w.tracks.erase(std::remove_if(w.tracks.begin(), w.tracks.end(),
                                [s](const SourceTrack& t) { return t.src == s; }),
                 w.tracks.end());
}

void enable_watchdog(std::uint64_t deadline_ms) {
  Watchdog& w = dog();
  std::thread finished;
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.deadline_ms.store(deadline_ms, std::memory_order_relaxed);
    if (deadline_ms > 0) {
      // A deadline verdict without history is useless: arm the recorder and
      // the dump path along with the detector.
      enable_flight(true);
      arm_postmortem(true);
      // Restart tracking so a source idle since long ago isn't an instant fire.
      const std::uint64_t now = obs::detail::now_ns();
      for (SourceTrack& t : w.tracks) {
        t.last_progress = t.src->progress();
        t.last_change_ns = now;
        t.fired = false;
      }
      if (!w.running) {
        w.running = true;
        w.thread = std::thread(watchdog_loop);
      }
    } else if (w.running) {
      w.running = false;
      finished = std::move(w.thread);
    }
  }
  w.cv.notify_all();
  if (finished.joinable()) finished.join();
}

bool watchdog_enabled() {
  return dog().deadline_ms.load(std::memory_order_relaxed) > 0;
}

std::uint64_t watchdog_deadline_ms() {
  return dog().deadline_ms.load(std::memory_order_relaxed);
}

std::uint64_t watchdog_fires() { return dog().fires.load(std::memory_order_relaxed); }

std::string last_verdict() {
  Watchdog& w = dog();
  std::lock_guard<std::mutex> lk(w.verdict_mu);
  return w.verdict;
}

// ---------------------------------------------------------------------------
// PhaseSource

PhaseSource::PhaseSource(const char* name) : name_(name) {
  if (!watchdog_enabled()) return;
  registered_ = true;
  phase_ns_.store(obs::detail::now_ns(), std::memory_order_relaxed);
  register_source(this);
}

PhaseSource::~PhaseSource() {
  if (registered_) unregister_source(this);
}

void PhaseSource::phase(const char* tag, int device) {
  FMMFFT_FLIGHT(Stage, device < 0 ? 0 : device, 0, tag);
  if (!registered_) return;
  char buf[32] = {};
  std::strncpy(buf, tag, sizeof buf - 1);
  std::uint64_t words[4];
  std::memcpy(words, buf, sizeof buf);
  label_ver_.fetch_add(1, std::memory_order_release);  // odd: mid-write
  for (int i = 0; i < 4; ++i) label_[i].store(words[i], std::memory_order_relaxed);
  device_.store(device, std::memory_order_relaxed);
  phase_ns_.store(obs::detail::now_ns(), std::memory_order_relaxed);
  label_ver_.fetch_add(1, std::memory_order_release);  // even: consistent
  beats_.fetch_add(1, std::memory_order_release);
}

std::string PhaseSource::describe_stall() const {
  char buf[33] = {};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint32_t v1 = label_ver_.load(std::memory_order_acquire);
    if (v1 % 2) continue;
    std::uint64_t words[4];
    for (int i = 0; i < 4; ++i) words[i] = label_[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (label_ver_.load(std::memory_order_relaxed) != v1) continue;
    std::memcpy(buf, words, sizeof words);
    break;
  }
  std::ostringstream os;
  const std::uint64_t entered = phase_ns_.load(std::memory_order_relaxed);
  os << "  " << name_ << ": " << beats_.load(std::memory_order_relaxed)
     << " stage beats; stuck in phase '" << (buf[0] ? buf : "(none)") << "'";
  const int dev = device_.load(std::memory_order_relaxed);
  if (dev >= 0) os << " (device " << dev << ")";
  os << ", entered " << (obs::detail::now_ns() - entered) / 1000000 << " ms ago";
  return os.str();
}

// ---------------------------------------------------------------------------
// Span sampler

namespace {

constexpr int kMaxSlots = 128;
constexpr int kSpanDepthMax = 12;
constexpr int kSpanWords = 5;  // 40 chars, matches SpanEvent::kNameCap

struct SpanSlot {
  std::atomic<std::uint32_t> ver{0};
  std::atomic<int> depth{0};
  std::atomic<std::uint64_t> words[kSpanDepthMax][kSpanWords] = {};
  int own_depth = 0;  ///< owner-thread logical depth (may exceed kSpanDepthMax)
};

std::atomic<SpanSlot*> g_slots[kMaxSlots] = {};
std::atomic<int> g_slot_count{0};
thread_local SpanSlot* tls_slot = nullptr;
thread_local bool tls_slot_denied = false;

SpanSlot* span_slot() {
  if (tls_slot) return tls_slot;
  if (tls_slot_denied) return nullptr;
  const int idx = g_slot_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxSlots) {
    tls_slot_denied = true;
    return nullptr;
  }
  auto* slot = new SpanSlot;  // leaked: must outlive the sampler thread
  g_slots[idx].store(slot, std::memory_order_release);
  return tls_slot = slot;
}

struct Sampler {
  std::mutex mu;  // counts + thread management
  std::condition_variable cv;
  std::map<std::string, std::uint64_t> counts;
  std::uint64_t samples = 0;
  std::thread thread;
  bool running = false;
  std::atomic<double> hz{0.0};
};

Sampler& sampler() {
  static Sampler* s = new Sampler;
  return *s;
}

/// Read slot's innermost open span name; "" when idle, nullopt-style false
/// on persistent tearing (counted as idle).
bool read_innermost(const SpanSlot& slot, char (&buf)[8 * kSpanWords + 1]) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint32_t v1 = slot.ver.load(std::memory_order_acquire);
    if (v1 % 2) continue;
    const int d = slot.depth.load(std::memory_order_relaxed);
    if (d <= 0) {
      buf[0] = '\0';
      return true;
    }
    const int top = std::min(d, kSpanDepthMax) - 1;
    std::uint64_t words[kSpanWords];
    for (int i = 0; i < kSpanWords; ++i)
      words[i] = slot.words[top][i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.ver.load(std::memory_order_relaxed) != v1) continue;
    std::memcpy(buf, words, sizeof words);
    buf[8 * kSpanWords] = '\0';
    return true;
  }
  return false;
}

void sampler_loop() {
  Sampler& s = sampler();
  std::unique_lock<std::mutex> lk(s.mu);
  for (;;) {
    const double hz = s.hz.load(std::memory_order_relaxed);
    if (hz <= 0) return;
    const auto period = std::chrono::microseconds(
        std::max<long>(1000, std::min<long>(long(1e6 / hz), 1000000)));
    s.cv.wait_for(lk, period);
    if (s.hz.load(std::memory_order_relaxed) <= 0) return;
    const int n = std::min(g_slot_count.load(std::memory_order_relaxed), kMaxSlots);
    for (int i = 0; i < n; ++i) {
      const SpanSlot* slot = g_slots[i].load(std::memory_order_acquire);
      if (!slot) continue;
      char name[8 * kSpanWords + 1];
      if (!read_innermost(*slot, name) || !name[0])
        ++s.counts["(idle)"];
      else
        ++s.counts[name];
      ++s.samples;
    }
  }
}

}  // namespace

namespace detail {

void span_push(const char* name) {
  SpanSlot* slot = span_slot();
  if (!slot) return;
  const int d = slot->own_depth++;
  if (d >= kSpanDepthMax) {
    slot->depth.store(slot->own_depth, std::memory_order_release);
    return;
  }
  char buf[8 * kSpanWords] = {};
  std::strncpy(buf, name, sizeof buf - 1);
  std::uint64_t words[kSpanWords];
  std::memcpy(words, buf, sizeof buf);
  slot->ver.fetch_add(1, std::memory_order_release);
  for (int i = 0; i < kSpanWords; ++i)
    slot->words[d][i].store(words[i], std::memory_order_relaxed);
  slot->depth.store(slot->own_depth, std::memory_order_relaxed);
  slot->ver.fetch_add(1, std::memory_order_release);
}

void span_pop() {
  SpanSlot* slot = tls_slot;
  if (!slot || slot->own_depth <= 0) return;
  slot->depth.store(--slot->own_depth, std::memory_order_release);
}

}  // namespace detail

void enable_sampler(double hz) {
  Sampler& s = sampler();
  std::thread finished;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.hz.store(hz > 0 ? hz : 0.0, std::memory_order_relaxed);
    if (hz > 0) {
      detail::g_sampling_enabled.store(true, std::memory_order_relaxed);
      obs::detail::update_span_hooks();
      if (!s.running) {
        s.running = true;
        s.thread = std::thread(sampler_loop);
      }
    } else {
      detail::g_sampling_enabled.store(false, std::memory_order_relaxed);
      obs::detail::update_span_hooks();
      if (s.running) {
        s.running = false;
        finished = std::move(s.thread);
      }
    }
  }
  s.cv.notify_all();
  if (finished.joinable()) finished.join();
}

bool sampler_enabled() { return sampler().hz.load(std::memory_order_relaxed) > 0; }

std::map<std::string, std::uint64_t> sampler_snapshot() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.counts;
}

std::uint64_t sampler_samples() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.samples;
}

void sampler_clear() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  s.counts.clear();
  s.samples = 0;
}

// ---------------------------------------------------------------------------
// Postmortem

namespace {

std::mutex g_pm_mu;
std::string g_pm_path;  // "" = default
std::atomic<bool> g_pm_armed{false};
// Signal-handler copy of the resolved path: plain chars, set before any
// handler can run, read-only afterwards.
char g_sig_path[1024] = "fmmfft.postmortem.json";

void write_flight_json(JsonWriter& jw) {
  jw.key("flight");
  jw.begin_object();
  jw.kv("recorded", double(flight_recorded()));
  jw.kv("rings", double(std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings)));
  jw.kv("ring_overflow", double(g_ring_overflow.load(std::memory_order_relaxed)));
  jw.key("events");
  jw.begin_array();
  for (const FlightEvent& ev : flight_snapshot()) {
    jw.begin_object();
    jw.kv("ring", double(ev.ring));
    jw.kv("seq", double(ev.seq));
    jw.kv("t_ns", double(ev.t_ns));
    jw.kv("kind", ev_name(ev.kind));
    jw.kv("a", double(ev.a));
    jw.kv("lane", double(ev.lane));
    jw.kv("tag", ev.tag);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
}

}  // namespace

std::string postmortem_path() {
  std::lock_guard<std::mutex> lk(g_pm_mu);
  return g_pm_path.empty() ? "fmmfft.postmortem.json" : g_pm_path;
}

void set_postmortem_path(const std::string& path) {
  std::lock_guard<std::mutex> lk(g_pm_mu);
  g_pm_path = path;
  if (!path.empty()) {
    std::strncpy(g_sig_path, path.c_str(), sizeof g_sig_path - 1);
    g_sig_path[sizeof g_sig_path - 1] = '\0';
  }
}

bool postmortem_armed() { return g_pm_armed.load(std::memory_order_relaxed); }
void arm_postmortem(bool on) { g_pm_armed.store(on, std::memory_order_relaxed); }

bool write_postmortem(const std::string& path, const std::string& cause,
                      const std::string& verdict) {
  std::ofstream os(path);
  if (!os) return false;
  JsonWriter jw(os);
  jw.begin_object();
  jw.kv("schema", "fmmfft.postmortem.v1");
  jw.kv("cause", cause);
  jw.kv("verdict", verdict);
  jw.kv("t_ns", double(obs::detail::now_ns()));
  jw.key("watchdog");
  jw.begin_object();
  jw.kv("deadline_ms", double(watchdog_deadline_ms()));
  jw.kv("fires", double(watchdog_fires()));
  jw.end_object();
  write_flight_json(jw);
  jw.key("sampler");
  jw.begin_object();
  jw.kv("samples", double(sampler_samples()));
  jw.key("spans");
  jw.begin_object();
  for (const auto& [name, count] : sampler_snapshot()) jw.kv(name, double(count));
  jw.end_object();
  jw.end_object();
  {
    std::ostringstream metrics;
    Metrics::global().write_json(metrics);
    jw.key("metrics");
    jw.raw_value(metrics.str());
  }
  {
    std::ostringstream traffic;
    TrafficLedger::global().write_json(traffic);
    jw.key("traffic");
    jw.raw_value(traffic.str());
  }
  jw.end_object();
  os << "\n";
  return bool(os);
}

std::string emit_postmortem(const std::string& cause, const std::string& verdict) {
  if (!postmortem_armed()) return "";
  const std::string path = postmortem_path();
  return write_postmortem(path, cause, verdict) ? path : "";
}

// ---------------------------------------------------------------------------
// Fatal-signal path: write(2) + hand-rolled formatting only. No allocation,
// no locks, no stdio — the flight rings are plain atomics, so walking them
// here is legal where the map-backed registries are not.

namespace detail {
namespace {

struct SigWriter {
  int fd;
  void str(const char* s) {
    std::size_t n = 0;
    while (s[n]) ++n;
    raw(s, n);
  }
  void raw(const char* s, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, s + off, n - off);
      if (w <= 0) return;
      off += std::size_t(w);
    }
  }
  void u64(std::uint64_t v) {
    char buf[24];
    int i = sizeof buf;
    do {
      buf[--i] = char('0' + v % 10);
      v /= 10;
    } while (v);
    raw(buf + i, sizeof buf - i);
  }
  /// Quoted JSON string; non-printable / quote / backslash become '.'.
  void qstr(const char* s) {
    str("\"");
    for (; *s; ++s) {
      const char c = (*s < 0x20 || *s == '"' || *s == '\\') ? '.' : *s;
      raw(&c, 1);
    }
    str("\"");
  }
};

}  // namespace

void write_signal_dump(int sig) {
  const int fd = ::open(g_sig_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  SigWriter w{fd};
  w.str("{\"schema\":\"fmmfft.postmortem.v1\",\"cause\":\"signal\",\"signal\":");
  w.u64(std::uint64_t(sig));
  w.str(",\"verdict\":");
  w.qstr(sig == SIGSEGV ? "fatal signal SIGSEGV"
         : sig == SIGABRT ? "fatal signal SIGABRT"
                          : "fatal signal");
  w.str(",\"flight\":{\"recorded\":");
  w.u64(flight_recorded());
  w.str(",\"events\":[");
  bool first = true;
  const int n = std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (int i = 0; i < n; ++i) {
    const FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (!ring) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kFlightCapacity ? head - kFlightCapacity : 0;
    for (std::uint64_t e = lo; e < head; ++e) {
      FlightEvent ev;
      if (!decode_slot(*ring, e, ev)) continue;
      if (!first) w.str(",");
      first = false;
      w.str("{\"ring\":");
      w.u64(std::uint64_t(ev.ring));
      w.str(",\"seq\":");
      w.u64(ev.seq);
      w.str(",\"t_ns\":");
      w.u64(ev.t_ns);
      w.str(",\"kind\":");
      w.qstr(ev_name(ev.kind));
      w.str(",\"a\":");
      w.u64(ev.a);
      w.str(",\"lane\":");
      w.u64(std::uint64_t(ev.lane));
      w.str(",\"tag\":");
      w.qstr(ev.tag);
      w.str("}");
    }
  }
  w.str("]}}\n");
  ::close(fd);
}

}  // namespace detail

namespace {

void crash_handler(int sig) {
  // Disposition already reset by SA_RESETHAND; dump, then let the default
  // action terminate the process with the original signal.
  detail::write_signal_dump(sig);
  ::raise(sig);
}

}  // namespace

void install_crash_handlers() {
  obs::detail::now_ns();  // initialize the epoch outside any handler
  {
    std::lock_guard<std::mutex> lk(g_pm_mu);
    const std::string& p = g_pm_path;
    if (!p.empty()) {
      std::strncpy(g_sig_path, p.c_str(), sizeof g_sig_path - 1);
      g_sig_path[sizeof g_sig_path - 1] = '\0';
    }
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

// ---------------------------------------------------------------------------
// Environment-driven setup

void init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  if (env::get_int("FMMFFT_FLIGHT", 0) > 0) enable_flight(true);
  const long long watchdog_ms = env::get_int("FMMFFT_WATCHDOG_MS", 0);
  const double sample_hz = env::get_double("FMMFFT_SAMPLE_HZ", 0.0);
  const char* pm = env::get("FMMFFT_POSTMORTEM");
  if (pm && *pm) {
    set_postmortem_path(pm);
    arm_postmortem(true);
    enable_flight(true);
    install_crash_handlers();
  }
  if (watchdog_ms > 0) enable_watchdog(std::uint64_t(watchdog_ms));
  if (sample_hz > 0) enable_sampler(sample_hz);
}

namespace {
// Any TU using the FMMFFT_FLIGHT hook references detail::g_flight_enabled,
// which pulls this object file — and this initializer — into the link.
[[maybe_unused]] const bool g_health_initialized = [] {
  init_from_env();
  return true;
}();
}  // namespace

}  // namespace fmmfft::obs::health
