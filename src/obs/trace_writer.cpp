#include "obs/trace_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace fmmfft::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key":
  }
  if (!stack_.empty()) {
    if (stack_.back()) os_ << ", ";
    stack_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  os_ << "{";
  stack_.push_back(false);
}

void JsonWriter::end_object() {
  FMMFFT_ASSERT(!stack_.empty() && !pending_key_);
  stack_.pop_back();
  os_ << "}";
}

void JsonWriter::begin_array() {
  comma();
  os_ << "[";
  stack_.push_back(false);
}

void JsonWriter::end_array() {
  FMMFFT_ASSERT(!stack_.empty() && !pending_key_);
  stack_.pop_back();
  os_ << "]";
}

void JsonWriter::key(std::string_view k) {
  FMMFFT_ASSERT(!pending_key_);
  comma();
  os_ << '"' << json_escape(k) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
    return;
  }
  // Shortest round-trip-ish: integers print without exponent noise.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    os_ << buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
  }
}

void JsonWriter::value(std::string_view v) {
  comma();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
}

void JsonWriter::raw_value(std::string_view json) {
  comma();
  os_ << json;
}

TraceWriter::TraceWriter(std::ostream& os) : jw_(os) { jw_.begin_array(); }

TraceWriter::~TraceWriter() {
  if (!finished_) finish();
}

void TraceWriter::complete_event(std::string_view name, double ts_us, double dur_us, int pid,
                                 std::string_view tid) {
  FMMFFT_ASSERT(!finished_);
  jw_.begin_object();
  jw_.kv("name", name);
  jw_.kv("ph", "X");
  jw_.kv("ts", ts_us);
  jw_.kv("dur", dur_us);
  jw_.kv("pid", double(pid));
  jw_.kv("tid", tid);
  jw_.end_object();
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  jw_.end_array();
}

}  // namespace fmmfft::obs
