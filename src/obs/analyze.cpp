#include "obs/analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"
#include "obs/trace_writer.hpp"

namespace fmmfft::obs {

namespace {

using sim::Op;

/// Cost terms of one op under the model, before efficiency scaling. For
/// kernels `flop_t`/`mem_t` are the two roofline terms; for transfers they
/// are the latency and bandwidth terms. max(flop_t, mem_t) reproduces
/// model::roofline_seconds / link time split.
struct CostTerms {
  double flop_t = 0;
  double mem_t = 0;
};

CostTerms cost_terms(const Op& op, const model::ArchParams& arch) {
  CostTerms t;
  if (op.kind == Op::Kind::Kernel && op.fixed_seconds == 0.0) {
    if (op.flops > 0) t.flop_t = op.flops / arch.gamma(op.is_double);
    if (op.bytes > 0) t.mem_t = op.bytes / arch.beta_mem;
  } else if (op.kind == Op::Kind::Comm) {
    const bool inter = !arch.same_node(op.device, op.peer);
    t.flop_t = inter ? arch.internode_latency : arch.link_latency;
    t.mem_t = op.bytes / (inter ? arch.internode_bw : arch.link_bw);
  }
  return t;
}

Bound classify(const Op& op, const model::ArchParams& arch) {
  switch (op.kind) {
    case Op::Kind::Meta: return Bound::None;
    case Op::Kind::Comm: {
      const CostTerms t = cost_terms(op, arch);
      return t.flop_t >= t.mem_t ? Bound::Latency : Bound::Link;
    }
    case Op::Kind::Kernel: {
      if (op.fixed_seconds != 0.0) return Bound::Sync;
      const CostTerms t = cost_terms(op, arch);
      const double roof = std::max(t.flop_t, t.mem_t) / arch.efficiency(op.kclass);
      if (arch.launch_overhead >= roof) return Bound::Launch;
      return t.flop_t >= t.mem_t ? Bound::Compute : Bound::Bandwidth;
    }
  }
  return Bound::None;
}

std::string lane_name(const Op& op) {
  if (op.kind == Op::Kind::Comm)
    return "dev" + std::to_string(op.device) + "->dev" + std::to_string(op.peer);
  return "dev" + std::to_string(op.device) + "/s" + std::to_string(op.stream);
}

std::string pct(double x, double total) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", total > 0 ? 100.0 * x / total : 0.0);
  return buf;
}

}  // namespace

const char* bound_name(Bound b) {
  switch (b) {
    case Bound::Compute: return "compute";
    case Bound::Bandwidth: return "bandwidth";
    case Bound::Launch: return "launch";
    case Bound::Link: return "link";
    case Bound::Latency: return "latency";
    case Bound::Sync: return "sync";
    case Bound::None: return "none";
  }
  return "none";
}

double Report::critical_stage_seconds(const std::string& stage) const {
  auto it = critical_by_stage.find(stage);
  return it == critical_by_stage.end() ? 0.0 : it->second;
}

double Report::device_utilization(int device) const {
  auto busy = device_busy.find(device);
  auto lanes_it = device_lanes.find(device);
  if (busy == device_busy.end() || lanes_it == device_lanes.end() || total_seconds <= 0)
    return 0.0;
  return busy->second / (lanes_it->second * total_seconds);
}

Report analyze(const sim::Schedule& sched, const sim::SimResult& res,
               const model::ArchParams& arch) {
  const auto& ops = sched.ops();
  FMMFFT_CHECK_MSG(res.timings.size() == ops.size(), "SimResult does not match Schedule");
  FMMFFT_CHECK_MSG(res.resource_preds.size() == ops.size(),
                   "SimResult lacks resource predecessors (re-run simulate())");
  const std::size_t n = ops.size();

  Report rep;
  rep.arch = arch.name;
  rep.total_seconds = res.total_seconds;
  rep.ops.resize(n);

  auto start = [&](int i) { return res.timings[(std::size_t)i].start; };
  auto end = [&](int i) { return res.timings[(std::size_t)i].end; };
  auto dur = [&](int i) { return end(i) - start(i); };

  // Binding constraint per op: among dependency and resource predecessors,
  // the one that finished last (ties prefer the data dependency, so the
  // walk favours semantic chains over engine-occupancy chains).
  for (std::size_t i = 0; i < n; ++i) {
    OpAnalysis& oa = rep.ops[i];
    oa.id = (int)i;
    oa.label = ops[i].label;
    oa.stage = ops[i].stage;
    oa.lane = ops[i].kind == Op::Kind::Meta ? std::string() : lane_name(ops[i]);
    oa.start = start((int)i);
    oa.end = end((int)i);
    oa.seconds = dur((int)i);
    oa.bound = classify(ops[i], arch);
    oa.flops = ops[i].flops;
    oa.bytes = ops[i].bytes;
    int best = -1;
    double best_end = -1.0;
    bool best_is_dep = false;
    auto consider = [&](int p, bool is_dep) {
      const double e = end(p);
      if (e > best_end || (e == best_end && is_dep && !best_is_dep)) {
        best = p;
        best_end = e;
        best_is_dep = is_dep;
      }
    };
    for (int p : ops[i].deps) consider(p, true);
    for (int p : res.resource_preds[i]) consider(p, false);
    oa.binding = best;
  }

  // -- Critical path: walk back from the op that ends at the makespan.
  int cur = -1;
  for (std::size_t i = 0; i < n; ++i)
    if (cur < 0 || end((int)i) > end(cur)) cur = (int)i;
  while (cur >= 0) {
    rep.critical_path.push_back(cur);
    rep.ops[(std::size_t)cur].critical = true;
    if (start(cur) <= 0.0) break;
    cur = rep.ops[(std::size_t)cur].binding;
  }
  std::reverse(rep.critical_path.begin(), rep.critical_path.end());

  for (int id : rep.critical_path) {
    const Op& op = ops[(std::size_t)id];
    const double d = dur(id);
    rep.critical_seconds += d;
    if (d > 0) {
      rep.critical_by_stage[op.stage.empty() ? "(untagged)" : op.stage] += d;
      rep.critical_by_label[op.label] += d;
    }
    switch (op.kind) {
      case Op::Kind::Meta: break;
      case Op::Kind::Comm: rep.crit_comm += d; break;
      case Op::Kind::Kernel: {
        if (op.fixed_seconds != 0.0) {
          rep.crit_sync += d;
          break;
        }
        const double launch = std::min(d, arch.launch_overhead);
        rep.crit_launch += launch;
        const CostTerms t = cost_terms(op, arch);
        (t.flop_t >= t.mem_t ? rep.crit_compute : rep.crit_bandwidth) += d - launch;
        break;
      }
    }
  }
  rep.critical_coverage =
      rep.total_seconds > 0 ? rep.critical_seconds / rep.total_seconds : 1.0;

  // -- Slack (CPM backward pass). Resource edges are constraints of the
  // same start >= pred.end form as dependencies, and both kinds always
  // point to lower ids, so one reverse sweep suffices.
  std::vector<double> latest_end(n, rep.total_seconds);
  for (std::size_t ii = n; ii-- > 0;) {
    const double ls = latest_end[ii] - dur((int)ii);
    rep.ops[ii].slack = ls - start((int)ii);
    for (int p : ops[ii].deps)
      latest_end[(std::size_t)p] = std::min(latest_end[(std::size_t)p], ls);
    for (int p : res.resource_preds[ii])
      latest_end[(std::size_t)p] = std::min(latest_end[(std::size_t)p], ls);
  }

  // -- Lane utilization and idle attribution.
  std::map<std::pair<int, std::string>, std::vector<int>> lanes;  // (sort key)
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind == Op::Kind::Meta) continue;
    const int kindkey = ops[i].kind == Op::Kind::Comm ? 1 : 0;
    lanes[{kindkey, lane_name(ops[i])}].push_back((int)i);
  }
  // Resolve a binding through zero-cost meta joins to the op that actually
  // finished late (the fmm/post joins would otherwise absorb attribution).
  auto resolve = [&](int b) {
    while (b >= 0 && ops[(std::size_t)b].kind == Op::Kind::Meta &&
           rep.ops[(std::size_t)b].binding >= 0)
      b = rep.ops[(std::size_t)b].binding;
    return b;
  };
  for (const auto& [key, ids] : lanes) {
    LaneUtil lane;
    lane.name = key.second;
    lane.device = ops[(std::size_t)ids.front()].device;
    lane.is_comm = key.first == 1;
    double prev_end = 0.0;
    for (int id : ids) {
      OpAnalysis& oa = rep.ops[(std::size_t)id];
      const Op& op = ops[(std::size_t)id];
      oa.gap = std::max(0.0, start(id) - prev_end);
      if (oa.gap > 0) {
        const int b = resolve(oa.binding);
        bool is_dep = false;
        if (b >= 0) {
          const auto& deps = op.deps;
          is_dep = std::find(deps.begin(), deps.end(), b) != deps.end() ||
                   std::find(deps.begin(), deps.end(), oa.binding) != deps.end();
        }
        if (b < 0)
          oa.wait = Wait::Dep;
        else if (!is_dep)
          oa.wait = Wait::Resource;
        else
          oa.wait = ops[(std::size_t)b].kind == Op::Kind::Comm ? Wait::Comm : Wait::Dep;
        (oa.wait == Wait::Comm       ? lane.idle_comm
         : oa.wait == Wait::Resource ? lane.idle_resource
                                     : lane.idle_dep) += oa.gap;
      }
      lane.busy += dur(id);
      lane.bytes += op.bytes;
      if (op.kind == Op::Kind::Kernel)
        lane.overhead += op.fixed_seconds != 0.0 ? dur(id)
                                                 : std::min(dur(id), arch.launch_overhead);
      prev_end = end(id);
    }
    lane.idle_drain = std::max(0.0, rep.total_seconds - prev_end);
    if (!lane.is_comm) {
      rep.device_busy[lane.device] += lane.busy;
      rep.device_lanes[lane.device] += 1;
    }
    rep.lanes.push_back(std::move(lane));
  }

  // -- Bound census over all non-meta ops.
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind == Op::Kind::Meta) continue;
    BoundSlice& s = rep.bound_census[bound_name(rep.ops[i].bound)];
    s.count += 1;
    s.seconds += dur((int)i);
  }

  // -- Per-stage traffic rollup (words moved per flop, ROADMAP item 4).
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind == Op::Kind::Meta) continue;
    StageTraffic& st =
        rep.stage_traffic[ops[i].stage.empty() ? "(untagged)" : ops[i].stage];
    st.flops += ops[i].flops;
    (ops[i].kind == Op::Kind::Comm ? st.comm_bytes : st.bytes) += ops[i].bytes;
    st.seconds += dur((int)i);
    st.count += 1;
  }
  return rep;
}

std::string Report::to_string() const {
  std::string out;
  char buf[256];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  line("=== timeline report: %s, makespan %.3f ms ===\n", arch.c_str(),
       total_seconds * 1e3);
  line("critical path: %d ops, coverage %s of makespan\n", (int)critical_path.size(),
       pct(critical_seconds, total_seconds).c_str());
  line("  composition: compute %s | bandwidth %s | launch %s | comm %s | sync %s\n",
       pct(crit_compute, total_seconds).c_str(), pct(crit_bandwidth, total_seconds).c_str(),
       pct(crit_launch, total_seconds).c_str(), pct(crit_comm, total_seconds).c_str(),
       pct(crit_sync, total_seconds).c_str());
  if (!critical_by_stage.empty()) {
    out += "  by stage:";
    for (const auto& [stage, sec] : critical_by_stage)
      line(" %s %s", stage.c_str(), pct(sec, total_seconds).c_str());
    out += "\n";
    const double a2a = critical_stage_seconds("a2a");
    line("  all-to-all on critical path: %s (%s of makespan)\n",
         a2a > 1e-3 * total_seconds ? "YES" : "no", pct(a2a, total_seconds).c_str());
  }
  // Top critical labels by time.
  std::vector<std::pair<std::string, double>> labels(critical_by_label.begin(),
                                                     critical_by_label.end());
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  out += "  top critical labels:";
  for (std::size_t i = 0; i < labels.size() && i < 5; ++i)
    line(" %s %s", labels[i].first.c_str(), pct(labels[i].second, total_seconds).c_str());
  out += "\n";

  out += "device utilization:";
  for (const auto& [dev, busy] : device_busy) {
    (void)busy;
    line("  dev%d %s (%d lanes)", dev, pct(device_utilization(dev), 1.0).c_str(),
         device_lanes.at(dev));
  }
  out += "\n";
  out += "lanes (busy | overhead | idle dep/comm/engine/drain, % of makespan):\n";
  for (const LaneUtil& l : lanes)
    line("  %-14s %6s | %6s | %s / %s / %s / %s\n", l.name.c_str(),
         pct(l.busy, total_seconds).c_str(), pct(l.overhead, total_seconds).c_str(),
         pct(l.idle_dep, total_seconds).c_str(), pct(l.idle_comm, total_seconds).c_str(),
         pct(l.idle_resource, total_seconds).c_str(),
         pct(l.idle_drain, total_seconds).c_str());
  out += "op bound census:";
  for (const auto& [name, s] : bound_census)
    line(" %s %d (%.3f ms)", name.c_str(), s.count, s.seconds * 1e3);
  out += "\n";
  if (!stage_traffic.empty()) {
    out += "stage traffic (words moved per flop, f64 words):\n";
    line("  %-10s %10s %10s %10s %8s %8s %8s\n", "stage", "flops", "bytes", "comm",
         "AI", "w/flop", "GB/s");
    for (const auto& [stage, st] : stage_traffic)
      line("  %-10s %10.3g %10.3g %10.3g %8.3f %8.3f %8.2f\n", stage.c_str(), st.flops,
           st.bytes, st.comm_bytes, st.intensity(), st.words_per_flop(), st.gbps());
  }
  return out;
}

void Report::write_json(std::ostream& os) const {
  JsonWriter jw(os);
  jw.begin_object();
  jw.kv("schema", "fmmfft.report.v1");
  jw.kv("arch", arch);
  jw.kv("total_seconds", total_seconds);

  jw.key("critical_path");
  jw.begin_object();
  jw.kv("seconds", critical_seconds);
  jw.kv("coverage", critical_coverage);
  jw.key("composition");
  jw.begin_object();
  jw.kv("compute", crit_compute);
  jw.kv("bandwidth", crit_bandwidth);
  jw.kv("launch", crit_launch);
  jw.kv("comm", crit_comm);
  jw.kv("sync", crit_sync);
  jw.end_object();
  jw.key("by_stage");
  jw.begin_object();
  for (const auto& [stage, sec] : critical_by_stage) jw.kv(stage, sec);
  jw.end_object();
  jw.key("by_label");
  jw.begin_object();
  for (const auto& [label, sec] : critical_by_label) jw.kv(label, sec);
  jw.end_object();
  jw.key("ops");
  jw.begin_array();
  // Indices into the top-level "ops" array; full detail lives there.
  for (int id : critical_path) jw.value(double(id));
  jw.end_array();
  jw.end_object();

  jw.key("lanes");
  jw.begin_array();
  for (const LaneUtil& l : lanes) {
    jw.begin_object();
    jw.kv("name", l.name);
    jw.kv("device", double(l.device));
    jw.key("is_comm");
    jw.value(l.is_comm);
    jw.kv("busy", l.busy);
    jw.kv("overhead", l.overhead);
    jw.kv("idle_dep", l.idle_dep);
    jw.kv("idle_comm", l.idle_comm);
    jw.kv("idle_resource", l.idle_resource);
    jw.kv("idle_drain", l.idle_drain);
    jw.kv("utilization", l.utilization(total_seconds));
    jw.kv("bytes", l.bytes);
    jw.kv("gbps", l.gbps());
    jw.end_object();
  }
  jw.end_array();

  jw.key("devices");
  jw.begin_array();
  for (const auto& [dev, busy] : device_busy) {
    jw.begin_object();
    jw.kv("device", double(dev));
    jw.kv("busy_seconds", busy);
    jw.kv("lanes", double(device_lanes.at(dev)));
    jw.kv("utilization", device_utilization(dev));
    jw.end_object();
  }
  jw.end_array();

  jw.key("bound_census");
  jw.begin_object();
  for (const auto& [name, s] : bound_census) {
    jw.key(name);
    jw.begin_object();
    jw.kv("count", double(s.count));
    jw.kv("seconds", s.seconds);
    jw.end_object();
  }
  jw.end_object();

  jw.key("stage_traffic");
  jw.begin_object();
  for (const auto& [stage, st] : stage_traffic) {
    jw.key(stage);
    jw.begin_object();
    jw.kv("flops", st.flops);
    jw.kv("bytes", st.bytes);
    jw.kv("comm_bytes", st.comm_bytes);
    jw.kv("seconds", st.seconds);
    jw.kv("count", double(st.count));
    jw.kv("arithmetic_intensity", st.intensity());
    jw.kv("words_per_flop", st.words_per_flop());
    jw.kv("gbps", st.gbps());
    jw.end_object();
  }
  jw.end_object();

  jw.key("ops");
  jw.begin_array();
  for (const OpAnalysis& oa : ops) {
    jw.begin_object();
    jw.kv("id", double(oa.id));
    jw.kv("label", oa.label);
    jw.kv("stage", oa.stage);
    jw.kv("lane", oa.lane);
    jw.kv("start", oa.start);
    jw.kv("end", oa.end);
    jw.kv("seconds", oa.seconds);
    jw.kv("slack", oa.slack);
    jw.key("critical");
    jw.value(oa.critical);
    jw.kv("bound", bound_name(oa.bound));
    jw.kv("flops", oa.flops);
    jw.kv("bytes", oa.bytes);
    jw.kv("intensity", oa.intensity());
    jw.kv("binding", double(oa.binding));
    jw.kv("gap", oa.gap);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
}

}  // namespace fmmfft::obs
