// Runtime health layer: flight recorder, watchdog, span sampler, postmortem.
//
// The tracer/metrics/ledger (obs.hpp, traffic.hpp) explain a run after it
// finishes; this subsystem observes a run *while it executes* and captures
// forensic state when it fails. Four facilities share the usual on/off
// discipline (compiled in everywhere, one relaxed atomic load + branch when
// disabled):
//
//  * Flight recorder — per-thread lock-free rings of the last
//    kFlightCapacity compact events (task start/finish, stage beats, comm
//    chunks, marks). Unlike the span Recorder's fill-once lanes these rings
//    wrap, so the *most recent* history is always available, and every slot
//    is a seqlocked bundle of relaxed atomics: dumping a ring mid-flight —
//    even from a signal handler — is race-free and never blocks a writer.
//    FMMFFT_FLIGHT=1, or armed automatically with the watchdog/postmortem.
//
//  * Watchdog — a background thread polling registered Sources (the
//    exec::TaskGraph while it runs, the distributed drivers' serial loops
//    via PhaseSource). A source whose progress counter does not advance for
//    FMMFFT_WATCHDOG_MS fires the watchdog: the source's describe_stall()
//    walks its state to name the stuck task, its stage/device/lane, and the
//    unfinished dependency chain blocking it; the verdict goes to stderr,
//    last_verdict(), and a postmortem dump.
//
//  * Span sampler — a low-rate thread (FMMFFT_SAMPLE_HZ) snapshotting each
//    worker's innermost open obs span into time-in-stage sample counts:
//    continuous attribution with tracing off (the span hooks publish to a
//    per-thread seqlock stack only while sampling is enabled).
//
//  * Postmortem dump — fmmfft.postmortem.v1 JSON (cause + verdict + flight
//    rings + sampler counts + metrics + traffic ledger), written on
//    watchdog timeout, uncaught task exception (exec::TaskGraph::run), and
//    fatal signals. The signal path (SIGSEGV/SIGABRT) is async-signal-safe:
//    a pre-resolved path, write(2), and hand-rolled formatting only, dumping
//    the cause and the flight rings (the heap-owning registries are not
//    touchable from a handler).
//
// Fault injection (FMMFFT_FAULT_STALL_TASK / exec::inject_stall) lets tests
// force a deterministic stall and assert the whole detect→attribute→dump
// pipeline end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fmmfft::obs::health {

namespace detail {
// Defined in health.cpp; referencing them from the inline hooks pulls the
// health TU (and its env initializer) into any binary using them.
extern std::atomic<bool> g_flight_enabled;
extern std::atomic<bool> g_sampling_enabled;
}  // namespace detail

inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}
inline bool sampling_enabled() {
  return detail::g_sampling_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Flight recorder

/// Compact event kinds. Values are stable (they appear in postmortems).
enum class Ev : std::uint8_t {
  Mark = 0,        ///< free-form marker (tag)
  GraphStart = 1,  ///< a = task count
  GraphEnd = 2,    ///< a = tasks completed
  TaskStart = 3,   ///< a = task id, lane = graph lane, tag = span prefix
  TaskEnd = 4,     ///< a = task id
  TaskFail = 5,    ///< a = task id (body threw)
  Stage = 6,       ///< serial-driver stage beat: a = device, tag = stage
  Comm = 7,        ///< fabric transfer: a = chunk/elems id, tag = link tag
  Fault = 8,       ///< injected fault triggered: a = task id
};
const char* ev_name(Ev kind);

/// Events kept per thread ring (power of two; older events are overwritten).
inline constexpr std::uint32_t kFlightCapacity = 4096;
/// Tag capacity per event (prefix-truncated copy, always NUL-terminated).
inline constexpr int kFlightTagCap = 16;

/// One decoded flight event (snapshot/dump side).
struct FlightEvent {
  std::uint64_t seq = 0;   ///< per-ring monotonic event number (1-based)
  std::uint64_t t_ns = 0;  ///< steady-clock ns since process epoch
  std::uint32_t a = 0;
  int lane = 0;
  Ev kind = Ev::Mark;
  int ring = 0;  ///< recording thread's ring id
  char tag[kFlightTagCap + 1] = {};
};

namespace detail {
void flight_record(Ev kind, std::uint32_t a, int lane, const char* tag);
}

/// Record one event on the calling thread's ring (~1ns when disabled).
inline void flight(Ev kind, std::uint32_t a, int lane, const char* tag) {
  if (!flight_enabled()) return;
  detail::flight_record(kind, a, lane, tag);
}

void enable_flight(bool on = true);
/// Consistent decoded copy of every ring, ordered by (ring, seq). Safe to
/// call at any moment, including while all threads keep recording.
std::vector<FlightEvent> flight_snapshot();
/// Total events ever recorded (wrapped events still count).
std::uint64_t flight_recorded();
void flight_clear();

// ---------------------------------------------------------------------------
// Watchdog

/// A monitorable execution. progress() must advance whenever real forward
/// progress happens; describe_stall() is called (from the watchdog thread)
/// after the deadline passed without advancement and should name the stuck
/// work as precisely as possible. Implementations must be callable from a
/// foreign thread at any time between register_source/unregister_source.
class Source {
 public:
  virtual ~Source() = default;
  virtual const char* source_name() const = 0;
  virtual std::uint64_t progress() const = 0;
  virtual std::string describe_stall() const = 0;
};

/// Register/unregister a source. unregister blocks until any in-flight
/// watchdog inspection of the source finished, so the pointee may be
/// destroyed immediately after unregistering.
void register_source(Source* s);
void unregister_source(Source* s);

/// Start (deadline_ms > 0) or stop (0) the watchdog thread. Starting also
/// arms the flight recorder so a verdict has history to dump.
void enable_watchdog(std::uint64_t deadline_ms);
bool watchdog_enabled();
std::uint64_t watchdog_deadline_ms();
/// Number of stalls the watchdog has fired on since process start.
std::uint64_t watchdog_fires();
/// Copy of the most recent stall verdict ("" if none fired yet).
std::string last_verdict();

/// Stage-beat source for serial driver loops: phase() bumps progress and
/// records the label/device, so a stall is attributed to the exact stage
/// loop that stopped advancing. Registration happens only while the
/// watchdog is enabled; a disabled construction costs two relaxed loads.
class PhaseSource : public Source {
 public:
  explicit PhaseSource(const char* name);
  ~PhaseSource() override;
  PhaseSource(const PhaseSource&) = delete;
  PhaseSource& operator=(const PhaseSource&) = delete;

  /// Enter a phase: one beat per (stage, device) step of the serial loops.
  /// Also emits an Ev::Stage flight event.
  void phase(const char* tag, int device = -1);

  const char* source_name() const override { return name_; }
  std::uint64_t progress() const override {
    return beats_.load(std::memory_order_relaxed);
  }
  std::string describe_stall() const override;

 private:
  const char* name_;
  bool registered_ = false;
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::uint64_t> phase_ns_{0};  ///< entry time of current phase
  std::atomic<int> device_{-1};
  // Seqlocked label: version odd while the writer is mid-copy.
  std::atomic<std::uint32_t> label_ver_{0};
  std::atomic<std::uint64_t> label_[4] = {};  ///< 32 label chars
};

// ---------------------------------------------------------------------------
// Span sampler

/// Start (hz > 0) or stop (0) the sampler thread.
void enable_sampler(double hz);
bool sampler_enabled();
/// Sample counts per innermost span name, plus "(idle)" for threads with no
/// open span. One sample ≈ 1/hz seconds of that thread's time.
std::map<std::string, std::uint64_t> sampler_snapshot();
std::uint64_t sampler_samples();
void sampler_clear();

namespace detail {
// Called by obs::SpanScope (obs.cpp) while sampling is enabled: maintain
// the calling thread's current-span stack for the sampler to read.
void span_push(const char* name);
void span_pop();
}  // namespace detail

// ---------------------------------------------------------------------------
// Postmortem

/// Resolved dump path (FMMFFT_POSTMORTEM or the default). Stable storage.
std::string postmortem_path();
void set_postmortem_path(const std::string& path);

/// True once any health facility is on or a postmortem path was configured:
/// the gate for automatic dumps (task exceptions, signals), so a library
/// user who never enabled health does not get surprise files.
bool postmortem_armed();
void arm_postmortem(bool on = true);

/// Write a fmmfft.postmortem.v1 JSON dump: cause, verdict, flight rings,
/// sampler counts, watchdog state, metrics, traffic ledger.
bool write_postmortem(const std::string& path, const std::string& cause,
                      const std::string& verdict);
/// write_postmortem to the resolved path, if armed. Returns the path
/// written ("" when disarmed or on write failure). Used by the watchdog and
/// by exec::TaskGraph's exception path.
std::string emit_postmortem(const std::string& cause, const std::string& verdict);

/// Install SIGSEGV/SIGABRT handlers that write a reduced postmortem (cause
/// + flight rings) through the async-signal-safe path, then re-raise.
void install_crash_handlers();

namespace detail {
/// The async-signal-safe dump body the installed handlers invoke: open(2) +
/// write(2) + hand-rolled formatting to the pre-resolved path. Exposed so
/// tests can validate the emitted JSON without crashing the process.
void write_signal_dump(int sig);
}  // namespace detail

/// Read the FMMFFT_FLIGHT / FMMFFT_WATCHDOG_MS / FMMFFT_SAMPLE_HZ /
/// FMMFFT_POSTMORTEM knobs and arm the corresponding facilities. Runs
/// automatically at startup from health.cpp's initializer.
void init_from_env();

}  // namespace fmmfft::obs::health

// ---------------------------------------------------------------------------
// Hook macro — what hot paths touch. Disabled cost: one relaxed load + branch.

#ifdef FMMFFT_OBS_DISABLE
#define FMMFFT_FLIGHT(kind, a, lane, tag) ((void)0)
#else
#define FMMFFT_FLIGHT(kind, a, lane, tag)                                      \
  ::fmmfft::obs::health::flight(::fmmfft::obs::health::Ev::kind,               \
                                static_cast<std::uint32_t>(a), (lane), (tag))
#endif
