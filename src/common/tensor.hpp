// Generalized column-major tensor views in the paper's notation (§4.1).
//
// A TensorView<T, R> wraps non-owning storage with R dimensions where the
// leading dimension of mode i is the product of the dimensions of all
// previous modes ("compact" layout):  ld<i> = dim<0> * ... * dim<i-1>.
// Index 0 is the fastest-varying mode, matching `A_{pmb}` style subscripts
// with p fastest.
#pragma once

#include <array>
#include <cstddef>
#include <numeric>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fmmfft {

template <typename T, int R>
class TensorView {
 public:
  TensorView() = default;

  TensorView(T* data, std::array<index_t, R> dims) : data_(data), dims_(dims) {
    index_t ld = 1;
    for (int i = 0; i < R; ++i) {
      FMMFFT_CHECK(dims_[i] >= 0);
      ld_[i] = ld;
      ld *= dims_[i];
    }
    size_ = ld;
  }

  T* data() const { return data_; }
  index_t size() const { return size_; }
  index_t dim(int i) const {
    FMMFFT_ASSERT(i >= 0 && i < R);
    return dims_[i];
  }
  index_t ld(int i) const {
    FMMFFT_ASSERT(i >= 0 && i < R);
    return ld_[i];
  }

  /// Linear offset of a multi-index. No bounds check beyond debug assert;
  /// halo regions legitimately index one box past either end on mode R-1.
  template <typename... Ix>
  index_t offset(Ix... ix) const {
    static_assert(sizeof...(Ix) == R);
    std::array<index_t, R> idx{static_cast<index_t>(ix)...};
    index_t off = 0;
    for (int i = 0; i < R; ++i) off += idx[i] * ld_[i];
    return off;
  }

  template <typename... Ix>
  T& operator()(Ix... ix) const {
    return data_[offset(ix...)];
  }

  /// Sub-view fixing the slowest mode at index `k`: returns rank R-1 view.
  TensorView<T, R - 1> slice(index_t k) const {
    static_assert(R >= 2);
    std::array<index_t, R - 1> d{};
    for (int i = 0; i < R - 1; ++i) d[i] = dims_[i];
    return TensorView<T, R - 1>(data_ + k * ld_[R - 1], d);
  }

 private:
  T* data_ = nullptr;
  std::array<index_t, R> dims_{};
  std::array<index_t, R> ld_{};
  index_t size_ = 0;
};

template <typename T>
using Tensor1 = TensorView<T, 1>;
template <typename T>
using Tensor2 = TensorView<T, 2>;
template <typename T>
using Tensor3 = TensorView<T, 3>;
template <typename T>
using Tensor4 = TensorView<T, 4>;

}  // namespace fmmfft
