// Block-to-cyclic permutations Π_{M,P} from the radix-split and FMM-FFT
// factorizations (§3):
//
//   Π_{M,P} ê_{p + m·P} = ê_{m + p·M},   0 ≤ p < P, 0 ≤ m < M
//
// i.e. as an action on a length-N vector, (Π_{M,P} x)[m + p·M] = x[p + m·P]:
// a "gather by stride P" that converts p-major interleaved data into
// m-major blocked data. In the distributed setting this permutation *is*
// the all-to-all transpose.
#pragma once

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "common/types.hpp"
#include "obs/traffic.hpp"

namespace fmmfft {

/// y := Π_{M,P} x (out-of-place). y[m + p*M] = x[p + m*P]. N = M*P.
template <typename T>
void permute_mp(const T* x, T* y, index_t m_dim, index_t p_dim) {
  FMMFFT_CHECK(x != y);
  FMMFFT_TRAFFIC_RW("transpose", double(m_dim) * double(p_dim) * sizeof(T),
                    double(m_dim) * double(p_dim) * sizeof(T), 0);
  for (index_t m = 0; m < m_dim; ++m)
    for (index_t p = 0; p < p_dim; ++p) y[m + p * m_dim] = x[p + m * p_dim];
}

/// y := Π_{P,M} x, the inverse of Π_{M,P}.
template <typename T>
void permute_pm(const T* x, T* y, index_t m_dim, index_t p_dim) {
  permute_mp(x, y, p_dim, m_dim);
}

/// Cache-blocked transpose of an r×c column-major matrix into a c×r one.
/// permute_mp(x, y, M, P) == transpose of the P×M matrix view of x.
/// Column-block stripes run on the global pool when the matrix is large;
/// stripes write disjoint ranges of y, so the split is race-free and the
/// result is independent of the worker count.
template <typename T>
void transpose_blocked(const T* x, T* y, index_t rows, index_t cols) {
  FMMFFT_CHECK(x != y);
  FMMFFT_TRAFFIC_RW("transpose", double(rows) * double(cols) * sizeof(T),
                    double(rows) * double(cols) * sizeof(T), 0);
  constexpr index_t kB = 32;
  const index_t col_blocks = (cols + kB - 1) / kB;
  // Grain: at least ~2^16 elements of work per chunk.
  const index_t grain =
      std::max<index_t>(1, (index_t(1) << 16) / std::max<index_t>(1, rows * kB));
  parallel_for(
      col_blocks,
      [&](index_t cb0, index_t cb1) {
        for (index_t cb = cb0; cb < cb1; ++cb) {
          const index_t j0 = cb * kB;
          const index_t j1 = std::min(j0 + kB, cols);
          for (index_t i0 = 0; i0 < rows; i0 += kB) {
            const index_t i1 = std::min(i0 + kB, rows);
            for (index_t j = j0; j < j1; ++j)
              for (index_t i = i0; i < i1; ++i) y[j + i * cols] = x[i + j * rows];
          }
        }
      },
      grain);
}

}  // namespace fmmfft
