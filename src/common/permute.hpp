// Block-to-cyclic permutations Π_{M,P} from the radix-split and FMM-FFT
// factorizations (§3):
//
//   Π_{M,P} ê_{p + m·P} = ê_{m + p·M},   0 ≤ p < P, 0 ≤ m < M
//
// i.e. as an action on a length-N vector, (Π_{M,P} x)[m + p·M] = x[p + m·P]:
// a "gather by stride P" that converts p-major interleaved data into
// m-major blocked data. In the distributed setting this permutation *is*
// the all-to-all transpose.
//
// All layout changes route through one cache-oblivious strided transpose
// kernel (`detail::transpose_strided_serial`): the matrix is split
// recursively along its longer axis until a tile fits a fixed byte budget,
// and the base tile runs write-sequential (inner loop along a destination
// row). The recursion keeps both footprints cache-resident at every level
// without tuning a blocking factor, which is what lifts it over the flat
// 32×32 blocked reference on large power-of-two shapes where that loop's
// strided stream aliases in the cache. The same kernel, with independent
// source and destination leading dimensions, is what the fused all-to-all
// pack/unpack in dist/collectives.hpp scatters through.
#pragma once

#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "common/types.hpp"
#include "obs/traffic.hpp"

namespace fmmfft {

namespace detail {

/// Byte budget of the base-case tile (staged twice: tile buffer + the
/// source/destination lines it touches stay comfortably inside L1).
inline constexpr std::size_t kTransposeTileBytes = 16384;

/// Largest power-of-two tile side whose square fits the byte budget.
template <typename T>
constexpr index_t transpose_tile_side() {
  index_t side = 4;
  while (2 * side * 2 * side * sizeof(T) <= kTransposeTileBytes) side *= 2;
  return side;
}

/// Base case: y[j + i·ldy] = x[i + j·ldx] for a tile of nr×nc (nr, nc ≤
/// tile side), traversed write-sequential: the inner loop walks a full
/// destination row, so stores stream into whole cache lines while the
/// strided loads stay inside the L1-resident tile the recursion carved
/// out. On the seed host this orientation benches ~2× over the
/// read-sequential one (and over staging the tile through a bounce
/// buffer): strided loads hide behind the prefetcher, strided stores
/// serialize on read-for-ownership of partially-written lines.
template <typename T>
void transpose_tile(const T* x, index_t ldx, T* y, index_t ldy, index_t nr, index_t nc) {
  for (index_t i = 0; i < nr; ++i) {
    T* dst = y + i * ldy;
    const T* src = x + i;
    for (index_t j = 0; j < nc; ++j) dst[j] = src[j * ldx];
  }
}

/// Cache-oblivious strided transpose: y[j + i·ldy] = x[i + j·ldx] for
/// i ∈ [0, nr), j ∈ [0, nc). Recursively halves the longer axis until the
/// tile fits the budget. Pure copies: the result is bit-identical for any
/// split, so callers may parallelize over disjoint sub-blocks freely.
template <typename T>
void transpose_strided_serial(const T* x, index_t ldx, T* y, index_t ldy, index_t nr,
                              index_t nc) {
  constexpr index_t side = transpose_tile_side<T>();
  if (nr <= side && nc <= side) {
    transpose_tile(x, ldx, y, ldy, nr, nc);
    return;
  }
  if (nr >= nc) {
    const index_t h = nr / 2;
    transpose_strided_serial(x, ldx, y, ldy, h, nc);
    transpose_strided_serial(x + h, ldx, y + h * ldy, ldy, nr - h, nc);
  } else {
    const index_t h = nc / 2;
    transpose_strided_serial(x, ldx, y, ldy, nr, h);
    transpose_strided_serial(x + h * ldx, ldx, y + h, ldy, nr, nc - h);
  }
}

/// Swap-transpose of a mirrored off-diagonal block pair of an in-place
/// square transpose: a holds block (I, J), b block (J, I), both with
/// leading dimension n. Afterwards a = old-bᵀ and b = old-aᵀ. Tiles are at
/// most a budget tile per side, so two stack buffers suffice.
template <typename T>
void swap_transpose_tile(T* a, T* b, index_t n, index_t nr, index_t nc) {
  constexpr index_t side = transpose_tile_side<T>();
  static_assert(std::is_trivially_copyable_v<T>);
  alignas(64) unsigned char raw_a[std::size_t(side * side) * sizeof(T)];
  alignas(64) unsigned char raw_b[std::size_t(side * side) * sizeof(T)];
  T* ta = reinterpret_cast<T*>(raw_a);
  T* tb = reinterpret_cast<T*>(raw_b);
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < nr; ++i) ta[j + i * nc] = a[i + j * n];
  for (index_t i = 0; i < nr; ++i)
    for (index_t j = 0; j < nc; ++j) tb[i + j * nr] = b[j + i * n];
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < nr; ++i) a[i + j * n] = tb[i + j * nr];
  for (index_t i = 0; i < nr; ++i)
    for (index_t j = 0; j < nc; ++j) b[j + i * n] = ta[j + i * nc];
}

}  // namespace detail

/// Cache-oblivious blocked transpose of an r×c column-major matrix into a
/// c×r one: y[j + i·cols] = x[i + j·rows]. permute_mp(x, y, M, P) == this
/// with rows = P, cols = M. The longer axis is striped across the global
/// pool; stripes write disjoint ranges of y and the kernel is a pure copy,
/// so the result is independent of the worker count.
template <typename T>
void transpose_blocked(const T* x, T* y, index_t rows, index_t cols) {
  FMMFFT_CHECK(x != y);
  if (rows <= 0 || cols <= 0) return;
  FMMFFT_TRAFFIC_RW("transpose", double(rows) * double(cols) * sizeof(T),
                    double(rows) * double(cols) * sizeof(T), 0);
  if (rows == 1 || cols == 1) {  // degenerate: the transpose is the identity copy
    std::memcpy(y, x, sizeof(T) * static_cast<std::size_t>(rows * cols));
    return;
  }
  // Grain: at least ~2^16 elements of work per chunk.
  if (rows >= cols) {
    const index_t grain = std::max<index_t>(1, (index_t(1) << 16) / cols);
    parallel_for(
        rows,
        [&](index_t i0, index_t i1) {
          detail::transpose_strided_serial(x + i0, rows, y + i0 * cols, cols, i1 - i0, cols);
        },
        grain);
  } else {
    const index_t grain = std::max<index_t>(1, (index_t(1) << 16) / rows);
    parallel_for(
        cols,
        [&](index_t j0, index_t j1) {
          detail::transpose_strided_serial(x + j0 * rows, rows, y + j0, cols, rows, j1 - j0);
        },
        grain);
  }
}

/// In-place transpose of an n×n matrix (leading dimension n): diagonal
/// tiles transpose within themselves, mirrored off-diagonal tile pairs
/// swap-transpose through stack buffers. Block row bi owns the pairs
/// (bi, bj > bi), so the parallel stripes touch disjoint tiles.
template <typename T>
void transpose_inplace(T* x, index_t n) {
  if (n <= 1) return;
  FMMFFT_TRAFFIC_RW("transpose", double(n) * double(n) * sizeof(T),
                    double(n) * double(n) * sizeof(T), 0);
  constexpr index_t side = detail::transpose_tile_side<T>();
  const index_t nb = (n + side - 1) / side;
  parallel_for(
      nb,
      [&](index_t b0, index_t b1) {
        for (index_t bi = b0; bi < b1; ++bi) {
          const index_t i0 = bi * side, i1 = std::min(n, i0 + side);
          for (index_t i = i0; i < i1; ++i)  // diagonal tile: direct swaps
            for (index_t j = i0; j < i; ++j) std::swap(x[i + j * n], x[j + i * n]);
          for (index_t bj = bi + 1; bj < nb; ++bj) {
            const index_t j0 = bj * side, j1 = std::min(n, j0 + side);
            detail::swap_transpose_tile(x + i0 + j0 * n, x + j0 + i0 * n, n, i1 - i0, j1 - j0);
          }
        }
      },
      /*grain=*/1);
}

/// Shape-checked front door for callers that carry a (rows, cols) pair: an
/// in-place transpose only exists for square matrices, and handing a
/// rectangular shape to the square kernel used to be silent UB (the kernel
/// would read the leading-dimension-n layout that isn't there). Reject it
/// with a hard error instead; rectangular layouts must go out-of-place
/// through transpose_blocked.
template <typename T>
void transpose_inplace(T* x, index_t rows, index_t cols) {
  FMMFFT_CHECK_MSG(rows == cols, "transpose_inplace needs a square matrix, got "
                                     << rows << "x" << cols
                                     << " (use transpose_blocked for rectangular shapes)");
  transpose_inplace(x, rows);
}

/// Reference blocked transpose (the pre-fusion implementation): simple
/// 32×32 blocking with a strided write stream. Kept as the equivalence
/// oracle for the cache-oblivious kernel and as the bench contrast row.
template <typename T>
void transpose_blocked_ref(const T* x, T* y, index_t rows, index_t cols) {
  FMMFFT_CHECK(x != y);
  FMMFFT_TRAFFIC_RW("transpose", double(rows) * double(cols) * sizeof(T),
                    double(rows) * double(cols) * sizeof(T), 0);
  constexpr index_t kB = 32;
  for (index_t j0 = 0; j0 < cols; j0 += kB) {
    const index_t j1 = std::min(j0 + kB, cols);
    for (index_t i0 = 0; i0 < rows; i0 += kB) {
      const index_t i1 = std::min(i0 + kB, rows);
      for (index_t j = j0; j < j1; ++j)
        for (index_t i = i0; i < i1; ++i) y[j + i * cols] = x[i + j * rows];
    }
  }
}

/// y := Π_{M,P} x (out-of-place). y[m + p*M] = x[p + m*P]. N = M*P.
/// Routed through the cache-oblivious transpose: x viewed as a P×M
/// column-major matrix, transposed into the M-major layout.
template <typename T>
void permute_mp(const T* x, T* y, index_t m_dim, index_t p_dim) {
  transpose_blocked(x, y, p_dim, m_dim);
}

/// y := Π_{P,M} x, the inverse of Π_{M,P}.
template <typename T>
void permute_pm(const T* x, T* y, index_t m_dim, index_t p_dim) {
  permute_mp(x, y, p_dim, m_dim);
}

}  // namespace fmmfft
