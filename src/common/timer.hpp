// Wall-clock timing utilities for native benchmarking.
#pragma once

#include <chrono>
#include <cstdio>

namespace fmmfft {

/// Monotonic wall timer with seconds() since construction or last reset.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Run `fn` repeatedly until at least `min_seconds` elapse (and at least
/// `min_reps` times), returning the best per-rep seconds. Benchmark helper.
/// `max_reps` bounds the loop for very fast bodies; if it fires before
/// `min_seconds` accumulate, a warning goes to stderr so the truncation is
/// visible instead of silently shortening the measurement.
template <typename F>
double time_best(F&& fn, int min_reps = 3, double min_seconds = 0.05, int max_reps = 1000) {
  double best = 1e300;
  int reps = 0;
  WallTimer total;
  while (reps < min_reps || total.seconds() < min_seconds) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
    ++reps;
    if (reps >= max_reps) {
      if (total.seconds() < min_seconds)
        std::fprintf(stderr,
                     "time_best: hit max_reps=%d after %.3fs (< min_seconds=%.3fs); "
                     "result may be noisy\n",
                     max_reps, total.seconds(), min_seconds);
      break;
    }
  }
  return best;
}

}  // namespace fmmfft
