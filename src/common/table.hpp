// ASCII table printer used by the benchmark harnesses to emit the paper's
// tables/series in a uniform, diff-friendly format.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace fmmfft {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Begin a new row; subsequent `col` calls fill it left to right.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& col(const std::string& v) {
    FMMFFT_CHECK(!rows_.empty());
    rows_.back().push_back(v);
    return *this;
  }
  Table& col(const char* v) { return col(std::string(v)); }
  Table& col(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return col(os.str());
  }
  Table& col_sci(double v, int prec = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(prec) << v;
    return col(os.str());
  }
  Table& col(long long v) { return col(std::to_string(v)); }
  Table& col(int v) { return col(std::to_string(v)); }
  Table& col(std::int64_t v) { return col(std::to_string(v)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());

    auto line = [&] {
      os << "+";
      for (auto ww : w) os << std::string(ww + 2, '-') << "+";
      os << "\n";
    };
    auto prow = [&](const std::vector<std::string>& r) {
      os << "|";
      for (std::size_t c = 0; c < w.size(); ++c) {
        std::string v = c < r.size() ? r[c] : "";
        os << " " << std::setw((int)w[c]) << v << " |";
      }
      os << "\n";
    };
    line();
    prow(headers_);
    line();
    for (const auto& r : rows_) prow(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fmmfft
