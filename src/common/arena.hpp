// Thread-local pooled scratch arena.
//
// Hot paths (FFT plan execution, strided gathers) need short-lived aligned
// workspaces. Allocating per call is too slow, and storing scratch inside a
// plan makes concurrent execute() on one shared plan a data race — the bug
// the batch-parallel execution paths would otherwise hit. ScratchBlock<T>
// leases a 64-byte-aligned block from a per-thread free list: checkout and
// release are O(free-list length) with no locking, blocks are reused across
// calls, and each thread's blocks are its own, so shared plans become
// safely executable from any number of threads.
//
// Blocks are NOT zero-initialized (unlike Buffer): a scratch lease is for
// code that fully writes before it reads.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace fmmfft {

/// Per-thread free list of aligned raw blocks. Access via ScratchArena::local().
class ScratchArena {
 public:
  static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

  ~ScratchArena() {
    for (const Slab& s : free_) ::operator delete[](s.p, std::align_val_t(kAlignment));
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Smallest cached block with capacity >= bytes, or a fresh allocation
  /// (rounded up to a power of two so sizes re-cluster into few classes).
  void* checkout(std::size_t bytes, std::size_t* capacity) {
    FMMFFT_CHECK(bytes > 0);
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i)
      if (free_[i].cap >= bytes && (best == free_.size() || free_[i].cap < free_[best].cap))
        best = i;
    if (best != free_.size()) {
      Slab s = free_[best];
      free_[best] = free_.back();
      free_.pop_back();
      *capacity = s.cap;
      return s.p;
    }
    std::size_t cap = kMinBlock;
    while (cap < bytes) cap *= 2;
    *capacity = cap;
    void* p = ::operator new[](cap, std::align_val_t(kAlignment));
    // First-touch every page on the checking-out thread: scratch is leased
    // and reused by this thread only (the arena is thread-local), so its
    // pages belong on this thread's NUMA node. One write per 4 KiB page;
    // paid once per fresh slab, amortized over every later lease.
    auto* bytes_p = static_cast<unsigned char*>(p);
    for (std::size_t off = 0; off < cap; off += 4096) bytes_p[off] = 0;
    return p;
  }

  void release(void* p, std::size_t capacity) {
    if (free_.size() >= kMaxCached) {
      // Evict the smallest cached slab: large FFT scratch is the expensive
      // thing to reallocate, so keep big blocks warm.
      std::size_t victim = 0;
      for (std::size_t i = 1; i < free_.size(); ++i)
        if (free_[i].cap < free_[victim].cap) victim = i;
      ::operator delete[](free_[victim].p, std::align_val_t(kAlignment));
      free_[victim] = free_.back();
      free_.pop_back();
    }
    free_.push_back({p, capacity});
  }

  std::size_t cached_blocks() const { return free_.size(); }
  std::size_t cached_bytes() const {
    std::size_t total = 0;
    for (const Slab& s : free_) total += s.cap;
    return total;
  }

  static constexpr std::size_t kMinBlock = 256;
  static constexpr std::size_t kMaxCached = 16;

 private:
  ScratchArena() = default;
  struct Slab {
    void* p;
    std::size_t cap;
  };
  std::vector<Slab> free_;
};

/// RAII lease of n elements of trivially-destructible T from the calling
/// thread's arena. Contents are uninitialized. Must be released on the
/// thread that checked it out (enforced by construction: the lease is a
/// scoped stack object, and worker chunks run entirely on one thread).
template <typename T>
class ScratchBlock {
 public:
  explicit ScratchBlock(index_t n) : n_(n) {
    static_assert(std::is_trivially_destructible_v<T>, "scratch blocks skip destructors");
    FMMFFT_CHECK(n > 0);
    p_ = static_cast<T*>(
        ScratchArena::local().checkout(static_cast<std::size_t>(n) * sizeof(T), &cap_));
  }
  ~ScratchBlock() { ScratchArena::local().release(p_, cap_); }

  ScratchBlock(const ScratchBlock&) = delete;
  ScratchBlock& operator=(const ScratchBlock&) = delete;

  T* data() { return p_; }
  const T* data() const { return p_; }
  index_t size() const { return n_; }
  T& operator[](index_t i) {
    FMMFFT_ASSERT(i >= 0 && i < n_);
    return p_[i];
  }

 private:
  T* p_;
  std::size_t cap_ = 0;
  index_t n_;
};

}  // namespace fmmfft
