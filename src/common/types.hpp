// Scalar types and precision traits shared across the library.
//
// All FMM operators are real-valued; complex data is processed as an
// array-of-structs flattened into real tensors (see DESIGN.md §5), so most
// kernels are templated on the real scalar type only.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace fmmfft {

using index_t = std::int64_t;

template <typename T>
inline constexpr bool is_real_scalar_v = std::is_same_v<T, float> || std::is_same_v<T, double>;

template <typename T>
struct is_complex : std::false_type {};
template <typename T>
struct is_complex<std::complex<T>> : std::true_type {};
template <typename T>
inline constexpr bool is_complex_v = is_complex<T>::value;

/// Real scalar underlying T (identity for real T, value_type for complex T).
template <typename T>
struct real_of {
  using type = T;
};
template <typename T>
struct real_of<std::complex<T>> {
  using type = T;
};
template <typename T>
using real_of_t = typename real_of<T>::type;

/// Number of real scalars per element: 1 for real input, 2 for complex.
/// This is the paper's `C` parameter (§5.1).
template <typename T>
inline constexpr int components_v = is_complex_v<T> ? 2 : 1;

/// Precision/type tags used for runtime dispatch in plans and benches.
enum class Scalar { F32, F64, C32, C64 };

inline const char* to_string(Scalar s) {
  switch (s) {
    case Scalar::F32: return "float";
    case Scalar::F64: return "double";
    case Scalar::C32: return "complex<float>";
    case Scalar::C64: return "complex<double>";
  }
  return "?";
}

template <typename T>
constexpr Scalar scalar_of() {
  if constexpr (std::is_same_v<T, float>) return Scalar::F32;
  if constexpr (std::is_same_v<T, double>) return Scalar::F64;
  if constexpr (std::is_same_v<T, std::complex<float>>) return Scalar::C32;
  if constexpr (std::is_same_v<T, std::complex<double>>) return Scalar::C64;
}

inline std::size_t bytes_of(Scalar s) {
  switch (s) {
    case Scalar::F32: return 4;
    case Scalar::F64: return 8;
    case Scalar::C32: return 8;
    case Scalar::C64: return 16;
  }
  return 0;
}

inline bool is_complex_scalar(Scalar s) { return s == Scalar::C32 || s == Scalar::C64; }
inline bool is_double_scalar(Scalar s) { return s == Scalar::F64 || s == Scalar::C64; }

}  // namespace fmmfft
