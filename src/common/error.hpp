// Error handling: checked preconditions that throw std::runtime_error with
// context. Used for API argument validation (always on) and internal
// invariants (on in debug builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fmmfft {

/// Exception thrown on violated API preconditions and invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: (" << cond << ")";
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

// Always-on check for user-facing API preconditions.
#define FMMFFT_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) ::fmmfft::detail::throw_error(#cond, __FILE__, __LINE__, {}); \
  } while (0)

#define FMMFFT_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::fmmfft::detail::throw_error(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                       \
  } while (0)

// Internal invariant; compiled out in release builds.
#ifdef NDEBUG
#define FMMFFT_ASSERT(cond) ((void)0)
#else
#define FMMFFT_ASSERT(cond) FMMFFT_CHECK(cond)
#endif

}  // namespace fmmfft
