// Minimal work-sharing thread pool and parallel_for.
//
// The paper parallelizes the FMM's independent stages with CUDA streams
// (§4.9); on the host the analogous intra-stage parallelism is loop-level.
// The pool is opt-in: the default worker count comes from
// FMMFFT_NUM_THREADS or hardware_concurrency, and `parallel_for` degrades
// to a plain loop for one worker or tiny ranges, so single-core machines
// pay nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace fmmfft {

class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    FMMFFT_CHECK(workers >= 1);
    for (int i = 0; i + 1 < workers; ++i)  // worker 0 is the calling thread
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()) + 1; }

  /// Run fn(chunk_index) for chunk_index in [0, chunks); blocks until all
  /// chunks complete. fn must not throw.
  void run_chunks(index_t chunks, const std::function<void(index_t)>& fn) {
    if (chunks <= 0) return;
    if (workers() == 1 || chunks == 1) {
      for (index_t i = 0; i < chunks; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      next_ = 0;
      total_ = chunks;
      remaining_ = chunks;
    }
    cv_.notify_all();
    help_and_wait();
  }

  /// The process-wide pool (size from FMMFFT_NUM_THREADS, default: all
  /// hardware threads).
  static ThreadPool& global() {
    static ThreadPool pool(default_workers());
    return pool;
  }

  static int default_workers() {
    if (const char* env = std::getenv("FMMFFT_NUM_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }

 private:
  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [this] { return done_ || next_ < total_; });
      if (done_) return;
      drain(lk);
    }
  }

  void help_and_wait() {
    std::unique_lock<std::mutex> lk(mu_);
    drain(lk);
    cv_done_.wait(lk, [this] { return remaining_ == 0; });
    fn_ = nullptr;
  }

  /// Pull chunk indices while any remain; called with the lock held.
  void drain(std::unique_lock<std::mutex>& lk) {
    while (next_ < total_) {
      const index_t mine = next_++;
      const auto* f = fn_;
      lk.unlock();
      (*f)(mine);
      lk.lock();
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_, cv_done_;
  const std::function<void(index_t)>* fn_ = nullptr;
  index_t next_ = 0, total_ = 0, remaining_ = 0;
  bool done_ = false;
};

/// Split [0, n) into roughly equal chunks and run body(begin, end) in
/// parallel on the global pool. Grain controls the minimum chunk size.
template <typename Body>
void parallel_for(index_t n, const Body& body, index_t grain = 1024) {
  if (n <= 0) return;
  auto& pool = ThreadPool::global();
  const index_t max_chunks = std::max<index_t>(1, n / std::max<index_t>(1, grain));
  const index_t chunks = std::min<index_t>(pool.workers(), max_chunks);
  if (chunks <= 1) {
    body(index_t(0), n);
    return;
  }
  const index_t step = (n + chunks - 1) / chunks;
  FMMFFT_SPAN("parallel_for");
  FMMFFT_COUNT("pool.parallel_for", 1);
  FMMFFT_COUNT("pool.chunks", chunks);
  std::function<void(index_t)> fn = [&](index_t c) {
    FMMFFT_SPAN("pf-chunk");  // worker-lane activity in the trace
    const index_t b = c * step;
    const index_t e = std::min(n, b + step);
    if (b < e) body(b, e);
  };
  pool.run_chunks(chunks, fn);
}

}  // namespace fmmfft
