// Minimal work-sharing thread pool and parallel_for.
//
// The paper parallelizes the FMM's independent stages with CUDA streams
// (§4.9); on the host the analogous intra-stage parallelism is loop-level.
// The pool is opt-in: the default worker count comes from
// FMMFFT_NUM_THREADS or hardware_concurrency, and `parallel_for` degrades
// to a plain loop for one worker or tiny ranges, so single-core machines
// pay nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/env.hpp"
#include "obs/obs.hpp"

namespace fmmfft {

class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    FMMFFT_CHECK(workers >= 1);
    for (int i = 0; i + 1 < workers; ++i)  // worker 0 is the calling thread
      threads_.emplace_back([this, i] {
        worker_id() = i + 1;
        worker_loop();
      });
  }

  /// Index of the pool thread executing the caller: 1..workers-1 for
  /// threads owned by a pool, 0 for any external thread (the "worker 0 is
  /// the calling thread" convention). Used by the exec::TaskGraph records
  /// and by tests asserting where work actually ran.
  static int current_worker() { return worker_id(); }

  /// True while the current thread is executing a pool chunk. Nested
  /// run_chunks/parallel_for calls must degrade to inline execution: the
  /// pool's dispatch state is per-pool, not per-call, so re-entering it
  /// from a worker would corrupt the outer dispatch.
  static bool in_task() { return task_depth() > 0; }

  /// RAII guard forcing every parallel_for on this thread to run inline.
  /// Lets one process measure serial vs parallel execution (bench_native's
  /// 1-thread end-to-end track) without re-execing under a different
  /// FMMFFT_NUM_THREADS.
  class ScopedSerial {
   public:
    ScopedSerial() { serial_depth()++; }
    ~ScopedSerial() { serial_depth()--; }
    ScopedSerial(const ScopedSerial&) = delete;
    ScopedSerial& operator=(const ScopedSerial&) = delete;
  };

  static bool serial_forced() { return serial_depth() > 0; }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()) + 1; }

  /// Run fn(chunk_index) for chunk_index in [0, chunks); blocks until all
  /// chunks complete. fn must not throw.
  void run_chunks(index_t chunks, const std::function<void(index_t)>& fn) {
    if (chunks <= 0) return;
    if (workers() == 1 || chunks == 1 || in_task()) {
      for (index_t i = 0; i < chunks; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      next_ = 0;
      total_ = chunks;
      remaining_ = chunks;
    }
    cv_.notify_all();
    help_and_wait();
  }

  /// The process-wide pool (size from FMMFFT_NUM_THREADS, default: all
  /// hardware threads).
  static ThreadPool& global() {
    static ThreadPool pool(default_workers());
    return pool;
  }

  static int default_workers() {
    if (const char* v = obs::env::get("FMMFFT_NUM_THREADS")) {
      const int n = std::atoi(v);
      if (n >= 1) return n;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }

 private:
  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [this] { return done_ || next_ < total_; });
      if (done_) return;
      drain(lk);
    }
  }

  void help_and_wait() {
    std::unique_lock<std::mutex> lk(mu_);
    drain(lk);
    cv_done_.wait(lk, [this] { return remaining_ == 0; });
    fn_ = nullptr;
  }

  /// Pull chunk indices while any remain; called with the lock held.
  void drain(std::unique_lock<std::mutex>& lk) {
    while (next_ < total_) {
      const index_t mine = next_++;
      const auto* f = fn_;
      lk.unlock();
      task_depth()++;
      (*f)(mine);
      task_depth()--;
      lk.lock();
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }

  static int& task_depth() {
    thread_local int depth = 0;
    return depth;
  }
  static int& worker_id() {
    thread_local int id = 0;
    return id;
  }
  static int& serial_depth() {
    thread_local int depth = 0;
    return depth;
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_, cv_done_;
  const std::function<void(index_t)>* fn_ = nullptr;
  index_t next_ = 0, total_ = 0, remaining_ = 0;
  bool done_ = false;
};

/// Oversubscription factor for parallel_for: more chunks than workers so a
/// slow chunk doesn't stall the whole call (tail latency); the pool's
/// work-sharing loop load-balances the surplus.
inline constexpr index_t kParallelForOversubscribe = 4;

/// Number of chunks parallel_for will split [0, n) into for a pool of
/// `workers` threads: workers × oversubscription, floored by the grain
/// (minimum chunk size) and the range itself. Pure function, unit-tested.
inline index_t parallel_for_chunks(int workers, index_t n, index_t grain) {
  if (n <= 0) return 0;
  const index_t max_chunks = std::max<index_t>(1, n / std::max<index_t>(1, grain));
  if (workers <= 1) return 1;
  return std::min<index_t>(index_t(workers) * kParallelForOversubscribe, max_chunks);
}

/// Split [0, n) into roughly equal chunks and run body(begin, end) in
/// parallel on the global pool. Grain controls the minimum chunk size.
/// Runs inline when nested inside another parallel_for chunk or under a
/// ThreadPool::ScopedSerial guard.
template <typename Body>
void parallel_for(index_t n, const Body& body, index_t grain = 1024) {
  if (n <= 0) return;
  auto& pool = ThreadPool::global();
  const bool inline_only = ThreadPool::in_task() || ThreadPool::serial_forced();
  const index_t chunks = inline_only ? 1 : parallel_for_chunks(pool.workers(), n, grain);
  if (chunks <= 1) {
    body(index_t(0), n);
    return;
  }
  const index_t step = (n + chunks - 1) / chunks;
  FMMFFT_SPAN("parallel_for");
  FMMFFT_COUNT("pool.parallel_for", 1);
  FMMFFT_COUNT("pool.chunks", chunks);
  std::function<void(index_t)> fn = [&](index_t c) {
    FMMFFT_SPAN("pf-chunk");  // worker-lane activity in the trace
    const index_t b = c * step;
    const index_t e = std::min(n, b + step);
    if (b < e) body(b, e);
  };
  pool.run_chunks(chunks, fn);
}

}  // namespace fmmfft
