// Deterministic pseudo-random input generation for tests and benches.
// The paper's accuracy experiments draw each component uniformly in [-1, 1]
// (§6.3.4); `fill_uniform` reproduces that workload.
#pragma once

#include <complex>
#include <cstdint>

#include "common/types.hpp"

namespace fmmfft {

/// Small, fast, reproducible generator (xorshift128+). Not for cryptography;
/// chosen so test inputs are identical across platforms and runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    s0_ = seed ^ 0x853C49E6748FEA9Bull;
    s1_ = seed * 0xC2B2AE3D27D4EB4Full + 1;
    for (int i = 0; i < 8; ++i) next_u64();
  }

  std::uint64_t next_u64() {
    std::uint64_t x = s0_, y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [-1, 1).
  double uniform_sym() {
    return (double)(next_u64() >> 11) * (2.0 / 9007199254740992.0) - 1.0;
  }

  /// Uniform in [0, 1).
  double uniform01() { return (double)(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  std::uint64_t s0_, s1_;
};

template <typename T>
void fill_uniform(T* data, index_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  for (index_t i = 0; i < n; ++i) {
    if constexpr (is_complex_v<T>) {
      using R = real_of_t<T>;
      data[i] = T(static_cast<R>(rng.uniform_sym()), static_cast<R>(rng.uniform_sym()));
    } else {
      data[i] = static_cast<T>(rng.uniform_sym());
    }
  }
}

}  // namespace fmmfft
