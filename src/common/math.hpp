// Small math helpers: constants, power-of-two bit tricks, cotangent, and
// integer ceiling division used throughout the flop/mop/comm models.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fmmfft {

template <typename T>
inline constexpr T pi_v = T(3.14159265358979323846264338327950288L);

constexpr bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// floor(log2(n)) for n >= 1.
constexpr int ilog2(std::int64_t n) {
  FMMFFT_ASSERT(n >= 1);
  return 63 - std::countl_zero(static_cast<std::uint64_t>(n));
}

/// Exact log2 for powers of two.
constexpr int ilog2_exact(std::int64_t n) {
  FMMFFT_ASSERT(is_pow2(n));
  return ilog2(n);
}

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Euclidean (always non-negative) modulus.
constexpr std::int64_t mod(std::int64_t a, std::int64_t m) {
  std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

template <typename T>
inline T cot(T x) {
  return T(1) / std::tan(x);
}

/// Relative l2 error ||a - b|| / ||b|| over two ranges of equal length.
template <typename T>
double rel_l2_error(const T* a, const T* b, std::int64_t n) {
  long double num = 0, den = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if constexpr (is_complex_v<T>) {
      num += std::norm(std::complex<long double>(a[i]) - std::complex<long double>(b[i]));
      den += std::norm(std::complex<long double>(b[i]));
    } else {
      long double d = (long double)a[i] - (long double)b[i];
      num += d * d;
      den += (long double)b[i] * (long double)b[i];
    }
  }
  if (den == 0) return num == 0 ? 0.0 : 1.0;
  return (double)std::sqrt(num / den);
}

}  // namespace fmmfft
