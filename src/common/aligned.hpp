// Cache-line/SIMD aligned heap buffers. The BLAS and FFT substrates assume
// 64-byte alignment of all operand storage.
//
// Large buffers are zero-initialized with a parallel_for stripe across the
// pool so pages are first-touched by the threads that will compute on them
// (first-touch NUMA placement: on multi-socket hosts the kernel backs a
// page on the touching core's node). Small buffers initialize inline — the
// fork/join would cost more than the placement is worth.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "common/types.hpp"

namespace fmmfft {

inline constexpr std::size_t kAlignment = 64;

/// std-compatible aligned allocator (64-byte).
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new[](n * sizeof(T), std::align_val_t(kAlignment));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete[](p, std::align_val_t(kAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Element count above which Buffer zero-init runs as a parallel
/// first-touch stripe (~1 MiB of payload).
template <typename T>
constexpr index_t buffer_parallel_touch_threshold() {
  return index_t((std::size_t(1) << 20) / sizeof(T));
}

/// Fixed-size aligned buffer of trivially-copyable scalars, zero-initialized.
/// Movable, non-copyable: the library treats buffers as owned workspaces.
template <typename T>
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(index_t n) : n_(n) {
    FMMFFT_CHECK(n >= 0);
    if (n > 0) {
      T* p = static_cast<T*>(::operator new[](static_cast<std::size_t>(n) * sizeof(T),
                                              std::align_val_t(kAlignment)));
      data_.reset(p);
      if (n >= buffer_parallel_touch_threshold<T>()) {
        // First-touch: stripe the zero-init across the pool, page-granular
        // grain so no page is split between touching threads. Degrades to
        // the inline loop when nested or serial-forced (parallel_for).
        const index_t grain = std::max<index_t>(1, index_t(4096 / sizeof(T)));
        parallel_for(
            n,
            [p](index_t b, index_t e) {
              std::uninitialized_value_construct_n(p + b, static_cast<std::size_t>(e - b));
            },
            grain);
      } else {
        std::uninitialized_value_construct_n(p, static_cast<std::size_t>(n));
      }
    }
  }

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  index_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T& operator[](index_t i) {
    FMMFFT_ASSERT(i >= 0 && i < n_);
    return data_.get()[i];
  }
  const T& operator[](index_t i) const {
    FMMFFT_ASSERT(i >= 0 && i < n_);
    return data_.get()[i];
  }
  T* begin() { return data_.get(); }
  T* end() { return data_.get() + n_; }
  const T* begin() const { return data_.get(); }
  const T* end() const { return data_.get() + n_; }

  void fill(const T& v) {
    for (index_t i = 0; i < n_; ++i) data_.get()[i] = v;
  }

 private:
  struct Deleter {
    void operator()(T* p) const { ::operator delete[](p, std::align_val_t(kAlignment)); }
  };
  std::unique_ptr<T[], Deleter> data_;
  index_t n_ = 0;
};

}  // namespace fmmfft
