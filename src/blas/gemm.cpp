// Blocked, packed GEMM with a register-tiled microkernel.
//
// The classic three-level blocking (GotoBLAS structure): panels of A are
// packed into row-major micropanels of height MR, panels of B into
// column-major micropanels of width NR, and an MR×NR register microkernel
// runs over the packed data. Edges are zero-padded in the packs so the
// microkernel is branch-free; stores mask the valid region.
//
// The microkernel is vectorized with portable GCC/Clang vector extensions
// (one FMA-friendly accumulate per column vector per k step); a scalar
// kernel with identical accumulation order is selected at compile time on
// toolchains without vector support. Large single GEMMs additionally
// shard their MC macro-loop across the pool (the batched entry point was
// already pool-parallel), with bit-identical results at any thread count:
// each MC×NR block is computed by exactly one task in a fixed order.
#include "blas/blas.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "blas/simd.hpp"
#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/threadpool.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::blas {
namespace {

// Blocking parameters sized for a ~32KB L1 / 1MB L2 class core. MR widens
// to 16 rows on 64-byte ISAs so the microkernel carries 8 independent FMA
// chains (4 chains can't hide a 4-cycle FMA latency). Tile shape is pure
// spatial blocking: each C element still accumulates its k products in
// ascending order, so results are bit-identical at any MR/NR.
#if FMMFFT_SIMD && FMMFFT_SIMD_BYTES == 64
constexpr index_t MR = 16;
#else
constexpr index_t MR = 8;
#endif
constexpr index_t NR = 4;
constexpr index_t MC = 64;
constexpr index_t NC = 256;
constexpr index_t KC = 256;

// ISA dispatch lives in blas/simd.hpp, shared with the FMM's custom
// kernels. GemmVec caps float vectors at MR lanes so one micropanel
// k-slice is at most a whole number of vectors.
#if FMMFFT_SIMD
#define FMMFFT_GEMM_SIMD 1
#endif

template <typename T>
inline T at(const T* a, index_t lda, Op trans, index_t i, index_t j) {
  // Element (i, j) of op(A) given the raw column-major storage of A.
  return trans == Op::N ? a[i + j * lda] : a[j + i * lda];
}

/// Pack an mc×kc block of op(A) into micropanels: panel p holds rows
/// [p*MR, p*MR+MR) for all k, contiguous as [k*MR + r]. Rows past mc are 0.
template <typename T>
void pack_a(const T* a, index_t lda, Op trans, index_t i0, index_t k0, index_t mc, index_t kc,
            T* pack) {
  index_t np = ceil_div(mc, MR);
  for (index_t p = 0; p < np; ++p) {
    T* dst = pack + p * MR * kc;
    index_t rbase = p * MR;
    for (index_t k = 0; k < kc; ++k)
      for (index_t r = 0; r < MR; ++r) {
        index_t i = rbase + r;
        dst[k * MR + r] = i < mc ? at(a, lda, trans, i0 + i, k0 + k) : T(0);
      }
  }
}

/// Pack a kc×nc block of op(B) into micropanels: panel q holds cols
/// [q*NR, q*NR+NR) for all k, contiguous as [k*NR + c]. Cols past nc are 0.
template <typename T>
void pack_b(const T* b, index_t ldb, Op trans, index_t k0, index_t j0, index_t kc, index_t nc,
            T* pack) {
  index_t nq = ceil_div(nc, NR);
  for (index_t q = 0; q < nq; ++q) {
    T* dst = pack + q * NR * kc;
    index_t cbase = q * NR;
    for (index_t k = 0; k < kc; ++k)
      for (index_t c = 0; c < NR; ++c) {
        index_t j = cbase + c;
        dst[k * NR + c] = j < nc ? at(b, ldb, trans, k0 + k, j0 + j) : T(0);
      }
  }
}

/// Masked accumulate of the finished register tile into C:
/// C[valid] += alpha * acc (C was pre-scaled by beta once per gemm).
template <typename T>
inline void store_tile(const T* acc, T alpha, T* c, index_t ldc, index_t mr, index_t nr) {
  if (mr == MR && nr == NR) {
    for (index_t j = 0; j < NR; ++j)
      for (index_t i = 0; i < MR; ++i) c[i + j * ldc] += alpha * acc[i + j * MR];
  } else {
    for (index_t j = 0; j < nr; ++j)
      for (index_t i = 0; i < mr; ++i) c[i + j * ldc] += alpha * acc[i + j * MR];
  }
}

/// First-KC-pass store for beta == 0: writes C instead of accumulating, so
/// the batch-fused path never needs a separate zeroing pass over C. The
/// explicit T(0) + x reproduces "zero, then accumulate" exactly (IEEE 0+x,
/// including the +0.0 result for x == -0.0), keeping the fast path
/// bit-identical to the per-item path.
template <typename T>
inline void store_tile_assign(const T* acc, T alpha, T* c, index_t ldc, index_t mr, index_t nr) {
  for (index_t j = 0; j < nr; ++j)
    for (index_t i = 0; i < mr; ++i) c[i + j * ldc] = T(0) + alpha * acc[i + j * MR];
}

/// Scatter variants of store_tile for the batch-fused path: row i of the
/// tile lands at crow[i] (column step ldc). Row pointers let one register
/// tile span an item boundary in the stacked batch without branching.
template <typename T>
inline void store_tile_rows(const T* acc, T alpha, T* const* crow, index_t ldc, index_t mr,
                            index_t nr) {
  for (index_t j = 0; j < nr; ++j)
    for (index_t i = 0; i < mr; ++i) crow[i][j * ldc] += alpha * acc[i + j * MR];
}

template <typename T>
inline void store_tile_rows_assign(const T* acc, T alpha, T* const* crow, index_t ldc,
                                   index_t mr, index_t nr) {
  for (index_t j = 0; j < nr; ++j)
    for (index_t i = 0; i < mr; ++i) crow[i][j * ldc] = T(0) + alpha * acc[i + j * MR];
}

/// MR×NR microkernel over packed panels: tile = sum_k apanel[k]·bpanel[k]^T.
/// Computes the full (zero-padded) register tile; callers mask on store.
#ifdef FMMFFT_GEMM_SIMD
template <typename T>
void microkernel_tile(index_t kc, const T* ap, const T* bp, T* tile) {
  using V = typename simd::GemmVec<T>::vec;
  constexpr index_t VL = index_t(sizeof(V) / sizeof(T));
  constexpr index_t NV = MR / VL;  // vectors per register-tile column
  static_assert(MR % VL == 0);
  // One accumulator vector per (row-vector, column); a k step is NV aligned
  // loads of A, NR broadcasts of B, and NV*NR fused multiply-adds. Rows are
  // independent accumulators, so vectorizing over i keeps each element's
  // addition order identical to the scalar kernel.
  V acc[NV][NR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * MR;  // micropanel k-slices stay vector-aligned
    const T* b = bp + k * NR;
    V av[NV];
    for (index_t v = 0; v < NV; ++v)
      av[v] = *reinterpret_cast<const V*>(a + v * VL);
    for (index_t j = 0; j < NR; ++j) {
      V bj;
      for (index_t l = 0; l < VL; ++l) bj[l] = b[j];  // lowered to a broadcast
      for (index_t v = 0; v < NV; ++v) acc[v][j] += av[v] * bj;
    }
  }
  for (index_t j = 0; j < NR; ++j)
    for (index_t v = 0; v < NV; ++v)
      *reinterpret_cast<V*>(tile + j * MR + v * VL) = acc[v][j];
}
#else
template <typename T>
void microkernel_tile(index_t kc, const T* ap, const T* bp, T* tile) {
  for (index_t i = 0; i < MR * NR; ++i) tile[i] = T(0);
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * MR;
    const T* b = bp + k * NR;
    for (index_t j = 0; j < NR; ++j) {
      T bj = b[j];
      for (index_t i = 0; i < MR; ++i) tile[i + j * MR] += a[i] * bj;
    }
  }
}
#endif

template <typename T>
void microkernel(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc, index_t mr,
                 index_t nr) {
  alignas(kAlignment) T tile[MR * NR];
  microkernel_tile(kc, ap, bp, tile);
  store_tile(tile, alpha, c, ldc, mr, nr);
}

/// Full-tile first-KC-pass (beta == 0) microkernel that stores 0 + alpha·acc
/// straight from registers into C, skipping the stack-tile bounce — the
/// dominant per-tile overhead when kc is small (the FMM stages run kc ≤ 36).
/// Assign-only by design: 0 + alpha·acc equals zero-then-accumulate bit for
/// bit whether or not the compiler contracts it into an FMA, but an update
/// store (c + alpha·acc) would round differently under contraction than
/// store_tile's codegen, so updates always go through the shared tile path.
#ifdef FMMFFT_GEMM_SIMD
template <typename T>
void microkernel_store(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc) {
  using V = typename simd::GemmVec<T>::vec;
  using VU = typename simd::GemmVec<T>::vec_u;
  constexpr index_t VL = index_t(sizeof(V) / sizeof(T));
  constexpr index_t NV = MR / VL;
  V acc[NV][NR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * MR;
    const T* b = bp + k * NR;
    V av[NV];
    for (index_t v = 0; v < NV; ++v)
      av[v] = *reinterpret_cast<const V*>(a + v * VL);
    for (index_t j = 0; j < NR; ++j) {
      V bj;
      for (index_t l = 0; l < VL; ++l) bj[l] = b[j];
      for (index_t v = 0; v < NV; ++v) acc[v][j] += av[v] * bj;
    }
  }
  const V vzero = {};
  for (index_t j = 0; j < NR; ++j)
    for (index_t v = 0; v < NV; ++v) {
      VU* dst = reinterpret_cast<VU*>(c + j * ldc + v * VL);
      *dst = vzero + alpha * acc[v][j];
    }
}
#else
template <typename T>
void microkernel_store(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc) {
  alignas(kAlignment) T tile[MR * NR];
  microkernel_tile(kc, ap, bp, tile);
  store_tile_assign(tile, alpha, c, ldc, MR, NR);
}
#endif

template <typename T>
struct Workspace {
  Buffer<T> apack{MC * KC};
  Buffer<T> bpack{KC * NC};
};

/// Thread-local pack buffers: GEMMs of one scalar type reuse the workspace
/// across calls, which matters for the many small batched GEMMs in the FMM.
template <typename T>
Workspace<T>& workspace() {
  thread_local Workspace<T> ws;
  return ws;
}

template <typename T>
void gemm_impl(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
               index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  FMMFFT_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;

  // Scale C by beta once, so inner kernels are pure accumulate.
  if (beta == T(0)) {
    for (index_t j = 0; j < n; ++j) std::fill_n(c + j * ldc, m, T(0));
  } else if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c[i + j * ldc] *= beta;
  }
  if (k == 0 || alpha == T(0)) return;

  // One MC-block of the macro-loop: pack the A block into this thread's
  // workspace and run the microkernel grid against an already-packed B.
  auto run_mc_block = [&](index_t i0, index_t j0, index_t k0, index_t nc, index_t kc,
                          const T* bpack) {
    const index_t mc = std::min(MC, m - i0);
    T* apack = workspace<T>().apack.data();
    pack_a(a, lda, transa, i0, k0, mc, kc, apack);
    const index_t np = ceil_div(mc, MR), nq = ceil_div(nc, NR);
    for (index_t q = 0; q < nq; ++q) {
      const index_t nr = std::min(NR, nc - q * NR);
      for (index_t p = 0; p < np; ++p) {
        const index_t mr = std::min(MR, mc - p * MR);
        microkernel(kc, alpha, apack + p * MR * kc, bpack + q * NR * kc,
                    c + (i0 + p * MR) + (j0 + q * NR) * ldc, ldc, mr, nr);
      }
    }
  };

  // Shard the MC loop across the pool when there are enough blocks to
  // amortize the fork/join. Each worker packs A into its own thread-local
  // workspace; the B panel packed by the caller is shared read-only. The
  // k0 loop stays serial, so every C block accumulates its KC panels in
  // the same order at any thread count (bit-identical results).
  auto& ws = workspace<T>();
  const index_t mc_blocks = ceil_div(m, MC);
  const bool shard_mc = mc_blocks >= 4 && !ThreadPool::in_task() &&
                        !ThreadPool::serial_forced() && ThreadPool::global().workers() > 1;
  for (index_t j0 = 0; j0 < n; j0 += NC) {
    index_t nc = std::min(NC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += KC) {
      index_t kc = std::min(KC, k - k0);
      pack_b(b, ldb, transb, k0, j0, kc, nc, ws.bpack.data());
      if (shard_mc) {
        const T* bpack = ws.bpack.data();
        parallel_for(
            mc_blocks,
            [&](index_t blk0, index_t blk1) {
              for (index_t blk = blk0; blk < blk1; ++blk)
                run_mc_block(blk * MC, j0, k0, nc, kc, bpack);
            },
            /*grain=*/1);
      } else {
        for (index_t i0 = 0; i0 < m; i0 += MC)
          run_mc_block(i0, j0, k0, nc, kc, ws.bpack.data());
      }
    }
  }
}

/// Pack an mc×kc block of the *stacked* op(A) — batch items laid end to end
/// along the row axis (virtual row v ↦ row v%m of item v/m) — into the same
/// MR-high micropanels pack_a produces. Rows past the stack are zero-padded,
/// so microkernel tiles may straddle item boundaries branch-free.
template <typename T>
void pack_a_batched(const T* a, index_t lda, index_t stride_a, Op trans, index_t m, index_t i0,
                    index_t k0, index_t mc, index_t kc, T* pack) {
  index_t np = ceil_div(mc, MR);
  for (index_t p = 0; p < np; ++p) {
    T* dst = pack + p * MR * kc;
    index_t rbase = p * MR;
    index_t rows = std::min(MR, mc - rbase);
    // Split the panel's rows into runs that stay inside one batch item;
    // each run packs a contiguous sub-block of op(A_item) with unit-stride
    // inner loops (same codegen as pack_a, no per-element item lookup).
    index_t r = 0;
    while (r < rows) {
      index_t vg = i0 + rbase + r;
      const T* ag = a + (vg / m) * stride_a;
      index_t i = vg % m;
      index_t run = std::min(rows - r, m - i);
      if (trans == Op::N) {
        const T* s0 = ag + i + k0 * lda;
        for (index_t k = 0; k < kc; ++k) {
          const T* sk = s0 + k * lda;
          for (index_t rr = 0; rr < run; ++rr) dst[k * MR + r + rr] = sk[rr];
        }
      } else {
        for (index_t rr = 0; rr < run; ++rr) {
          const T* s0 = ag + k0 + (i + rr) * lda;
          for (index_t k = 0; k < kc; ++k) dst[k * MR + r + rr] = s0[k];
        }
      }
      r += run;
    }
    for (; r < MR; ++r)
      for (index_t k = 0; k < kc; ++k) dst[k * MR + r] = T(0);
  }
}

/// Shared-operator batched GEMM (stride_b == 0): every FMM translation stage
/// (S2M/M2M/L2L/L2T) multiplies many small per-box panels by ONE operator, so
/// the B panel is packed once per (NC, KC) tile and reused across the whole
/// batch, and the batch loop is fused into the macro-kernel by stacking the
/// items along the row axis (mtot = m·batch). Small-m items then aggregate
/// into full MR-high microkernel tiles instead of each paying its own edge
/// masking and pack, and the pool parallelizes over the (item × MC-block)
/// grid — mtot/MC units — in one parallel_for instead of batch_count serial
/// gemm_impl calls.
///
/// Bit-identical to the per-item path: beta pre-scale, NC/KC decomposition,
/// pack zero-padding, the microkernel's k order, and alpha-at-store are all
/// unchanged per C element; stacking only changes which register tile an
/// element lives in, never its accumulation order.
template <typename T>
void gemm_batched_shared_b_impl(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha,
                                const T* a, index_t lda, index_t stride_a, const T* b,
                                index_t ldb, T beta, T* c, index_t ldc, index_t stride_c,
                                index_t batch_count) {
  FMMFFT_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0 || batch_count == 0) return;

  const index_t mtot = m * batch_count;  // stacked row space
  const index_t mc_blocks = ceil_div(mtot, MC);

  // Scale stacked rows [i0, i0+mc) of columns [j0, j0+nc) of C by beta.
  // Scaling an element before anything accumulates into it gives the same
  // value as a whole-matrix pre-pass, so the scale is fused into each MC
  // block's first KC step to keep the C block cache-hot for the stores
  // (the stacked rows partition across blocks — no element scales twice).
  auto scale_c_rows = [&](index_t i0, index_t mc, index_t j0, index_t nc) {
    index_t r = 0;
    while (r < mc) {
      index_t vg = i0 + r;
      T* cg = c + (vg / m) * stride_c + (vg % m);
      index_t run = std::min(mc - r, m - vg % m);
      if (beta == T(0)) {
        for (index_t j = 0; j < nc; ++j) std::fill_n(cg + (j0 + j) * ldc, run, T(0));
      } else {
        for (index_t j = 0; j < nc; ++j) {
          T* col = cg + (j0 + j) * ldc;
          for (index_t i = 0; i < run; ++i) col[i] *= beta;
        }
      }
      r += run;
    }
  };
  if (k == 0 || alpha == T(0)) {
    // The macro-loop below never runs; apply beta up front instead.
    if (beta == T(1)) return;
    parallel_for(
        mc_blocks,
        [&](index_t blk0, index_t blk1) {
          for (index_t blk = blk0; blk < blk1; ++blk)
            scale_c_rows(blk * MC, std::min(MC, mtot - blk * MC), 0, n);
        },
        /*grain=*/1);
    return;
  }

  // One MC-block of the stacked macro-loop. C rows are addressed through
  // per-tile row pointers so a tile straddling an item boundary scatters to
  // the right items; the common all-rows-in-one-item case keeps the plain
  // contiguous store.
  auto run_mc_block = [&](index_t i0, index_t j0, index_t k0, index_t nc, index_t kc,
                          const T* bpack) {
    const index_t mc = std::min(MC, mtot - i0);
    // beta == 0 needs no pass at all — the first KC step assign-stores.
    const bool assign = k0 == 0 && beta == T(0);
    if (k0 == 0 && beta != T(0) && beta != T(1)) scale_c_rows(i0, mc, j0, nc);
    T* apack = workspace<T>().apack.data();
    pack_a_batched(a, lda, stride_a, transa, m, i0, k0, mc, kc, apack);
    const index_t np = ceil_div(mc, MR), nq = ceil_div(nc, NR);
    for (index_t p = 0; p < np; ++p) {
      const index_t mr = std::min(MR, mc - p * MR);
      const index_t v0 = i0 + p * MR;
      T* crow[MR];
      const bool one_item = (v0 / m) == ((v0 + mr - 1) / m);
      if (!one_item)
        for (index_t i = 0; i < mr; ++i) {
          index_t v = v0 + i;
          crow[i] = c + (v / m) * stride_c + (v % m);
        }
      T* ctile = c + (v0 / m) * stride_c + (v0 % m);
      for (index_t q = 0; q < nq; ++q) {
        const index_t nr = std::min(NR, nc - q * NR);
        const index_t joff = (j0 + q * NR) * ldc;
        // Register-direct store only on the assign pass: there the one extra
        // rounding (0 + alpha·acc vs the tile path's zero-then-accumulate)
        // provably cannot change a bit even if the compiler contracts it.
        // Update stores must round exactly like the per-item path's
        // store_tile, so they go through the same function.
        if (one_item && mr == MR && nr == NR && assign) {
          microkernel_store(kc, alpha, apack + p * MR * kc, bpack + q * NR * kc, ctile + joff,
                            ldc);
          continue;
        }
        alignas(kAlignment) T tile[MR * NR];
        microkernel_tile(kc, apack + p * MR * kc, bpack + q * NR * kc, tile);
        if (one_item) {
          if (assign)
            store_tile_assign(tile, alpha, ctile + joff, ldc, mr, nr);
          else
            store_tile(tile, alpha, ctile + joff, ldc, mr, nr);
        } else {
          T* crowj[MR];
          for (index_t i = 0; i < mr; ++i) crowj[i] = crow[i] + joff;
          if (assign)
            store_tile_rows_assign(tile, alpha, crowj, ldc, mr, nr);
          else
            store_tile_rows(tile, alpha, crowj, ldc, mr, nr);
        }
      }
    }
  };

  // As in gemm_impl: B is packed once per (NC, KC) tile by the caller thread
  // and shared read-only; the k0 loop stays serial so every C element
  // accumulates its KC panels in order at any thread count.
  auto& ws = workspace<T>();
  for (index_t j0 = 0; j0 < n; j0 += NC) {
    index_t nc = std::min(NC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += KC) {
      index_t kc = std::min(KC, k - k0);
      pack_b(b, ldb, transb, k0, j0, kc, nc, ws.bpack.data());
      const T* bpack = ws.bpack.data();
      parallel_for(
          mc_blocks,
          [&](index_t blk0, index_t blk1) {
            for (index_t blk = blk0; blk < blk1; ++blk)
              run_mc_block(blk * MC, j0, k0, nc, kc, bpack);
          },
          /*grain=*/1);
    }
  }
}

}  // namespace

const char* simd_label() { return simd::width_label(); }

template <typename T>
void gemm(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
          index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  FMMFFT_SPAN("GEMM");
  FMMFFT_COUNT("blas.gemm_calls", 1);
  FMMFFT_COUNT("blas.launches", 1);
  FMMFFT_COUNT("blas.flops", gemm_flops(m, n, k));
  // Compulsory operand traffic: A and B in, C out (plus C in when beta != 0).
  FMMFFT_TRAFFIC_RW("blas.gemm",
                    (double(m) * double(k) + double(k) * double(n) +
                     (beta != T(0) ? double(m) * double(n) : 0.0)) *
                        sizeof(T),
                    double(m) * double(n) * sizeof(T), gemm_flops(m, n, k));
  gemm_impl(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

template <typename T>
void gemm_strided_batched(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha,
                          const T* a, index_t lda, index_t stride_a, const T* b, index_t ldb,
                          index_t stride_b, T beta, T* c, index_t ldc, index_t stride_c,
                          index_t batch_count) {
  FMMFFT_CHECK(batch_count >= 0);
  FMMFFT_SPAN("BatchedGEMM");
  FMMFFT_COUNT("blas.gemm_calls", batch_count);
  FMMFFT_COUNT("blas.launches", 1);
  // Flops are counted once here, at the public entry point — neither inner
  // path below touches the blas.* counters, so obs::compare_with_model sees
  // the same totals whichever path runs.
  FMMFFT_COUNT("blas.flops", double(batch_count) * gemm_flops(m, n, k));
  // Per problem instance, so the total is path-independent: the shared-B
  // fused path still counts B once per batch item (its actual reuse of the
  // packed B shows up as achieved bandwidth above the roof, not here).
  FMMFFT_TRAFFIC_RW("blas.gemm_batched",
                    double(batch_count) *
                        (double(m) * double(k) + double(k) * double(n) +
                         (beta != T(0) ? double(m) * double(n) : 0.0)) *
                        sizeof(T),
                    double(batch_count) * double(m) * double(n) * sizeof(T),
                    double(batch_count) * gemm_flops(m, n, k));
  if (stride_b == 0 && batch_count > 1) {
    // Shared operator: fuse the batch into one stacked macro-kernel that
    // packs B once per (NC, KC) tile (see gemm_batched_shared_b_impl).
    FMMFFT_COUNT("blas.batched_fused", 1);
    gemm_batched_shared_b_impl(transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb, beta,
                               c, ldc, stride_c, batch_count);
    return;
  }
  // Problem instances are independent; share them across the pool (each
  // worker has its own thread-local pack workspace).
  parallel_for(
      batch_count,
      [&](index_t g0, index_t g1) {
        for (index_t g = g0; g < g1; ++g)
          gemm_impl(transa, transb, m, n, k, alpha, a + g * stride_a, lda, b + g * stride_b,
                    ldb, beta, c + g * stride_c, ldc);
      },
      /*grain=*/1);
}

template <typename T>
void gemv(Op trans, index_t m, index_t n, T alpha, const T* a, index_t lda, const T* x,
          index_t incx, T beta, T* y, index_t incy) {
  FMMFFT_SPAN("GEMV");
  FMMFFT_COUNT("blas.gemv_calls", 1);
  FMMFFT_COUNT("blas.launches", 1);
  FMMFFT_COUNT("blas.flops", 2.0 * double(m) * double(n));
  FMMFFT_TRAFFIC_RW("blas.gemv",
                    (double(m) * double(n) + double(n) +
                     (beta != T(0) ? double(m) : 0.0)) *
                        sizeof(T),
                    double(m) * sizeof(T), 2.0 * double(m) * double(n));
  // op(A) is m×n. Row/column traversal is picked so A is streamed in order.
  if (trans == Op::N) {
    // BLAS semantics: beta == 0 means y is write-only (never read).
    for (index_t i = 0; i < m; ++i) y[i * incy] = beta == T(0) ? T(0) : y[i * incy] * beta;
    for (index_t j = 0; j < n; ++j) {
      T xj = alpha * x[j * incx];
      const T* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) y[i * incy] += col[i] * xj;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      const T* col = a + i * lda;  // row i of op(A) = column i of A
      T s = 0;
      for (index_t j = 0; j < n; ++j) s += col[j] * x[j * incx];
      y[i * incy] = alpha * s + (beta == T(0) ? T(0) : beta * y[i * incy]);
    }
  }
}

template <typename T>
void gemm_reference(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
                    index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s = 0;
      for (index_t l = 0; l < k; ++l) s += at(a, lda, transa, i, l) * at(b, ldb, transb, l, j);
      c[i + j * ldc] = alpha * s + beta * c[i + j * ldc];
    }
}

#define FMMFFT_INSTANTIATE_BLAS(T)                                                             \
  template void gemm<T>(Op, Op, index_t, index_t, index_t, T, const T*, index_t, const T*,     \
                        index_t, T, T*, index_t);                                              \
  template void gemm_strided_batched<T>(Op, Op, index_t, index_t, index_t, T, const T*,        \
                                        index_t, index_t, const T*, index_t, index_t, T, T*,   \
                                        index_t, index_t, index_t);                            \
  template void gemv<T>(Op, index_t, index_t, T, const T*, index_t, const T*, index_t, T, T*,  \
                        index_t);                                                              \
  template void gemm_reference<T>(Op, Op, index_t, index_t, index_t, T, const T*, index_t,     \
                                  const T*, index_t, T, T*, index_t);

FMMFFT_INSTANTIATE_BLAS(float)
FMMFFT_INSTANTIATE_BLAS(double)

}  // namespace fmmfft::blas
