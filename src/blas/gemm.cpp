// Blocked, packed GEMM with a register-tiled microkernel.
//
// The classic three-level blocking (GotoBLAS structure): panels of A are
// packed into row-major micropanels of height MR, panels of B into
// column-major micropanels of width NR, and an MR×NR register microkernel
// runs over the packed data. Edges are zero-padded in the packs so the
// microkernel is branch-free; stores mask the valid region.
//
// The microkernel is vectorized with portable GCC/Clang vector extensions
// (one FMA-friendly accumulate per column vector per k step); a scalar
// kernel with identical accumulation order is selected at compile time on
// toolchains without vector support. Large single GEMMs additionally
// shard their MC macro-loop across the pool (the batched entry point was
// already pool-parallel), with bit-identical results at any thread count:
// each MC×NR block is computed by exactly one task in a fixed order.
#include "blas/blas.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/threadpool.hpp"
#include "obs/obs.hpp"

namespace fmmfft::blas {
namespace {

// Blocking parameters sized for a ~32KB L1 / 1MB L2 class core.
constexpr index_t MR = 8;
constexpr index_t NR = 4;
constexpr index_t MC = 64;
constexpr index_t NC = 256;
constexpr index_t KC = 256;

// ---------------------------------------------------------------------------
// Vector-extension dispatch. The widest ISA-native vector, capped at MR
// lanes so one micropanel k-slice is at most a whole number of vectors.
#if !defined(FMMFFT_NO_SIMD) && (defined(__GNUC__) || defined(__clang__)) &&                   \
    (defined(__AVX512F__) || defined(__AVX__) || defined(__SSE2__) || defined(__ARM_NEON) ||   \
     defined(__VSX__) || defined(__ALTIVEC__))
#define FMMFFT_GEMM_SIMD 1
#if defined(__AVX512F__)
#define FMMFFT_VBYTES_F 32  // 8 float lanes == MR; 64B would exceed the tile height
#define FMMFFT_VBYTES_D 64
#elif defined(__AVX__)
#define FMMFFT_VBYTES_F 32
#define FMMFFT_VBYTES_D 32
#else
#define FMMFFT_VBYTES_F 16
#define FMMFFT_VBYTES_D 16
#endif

typedef float vfloat_t __attribute__((vector_size(FMMFFT_VBYTES_F)));
typedef double vdouble_t __attribute__((vector_size(FMMFFT_VBYTES_D)));

template <typename T>
struct VecTraits;
template <>
struct VecTraits<float> {
  using vec = vfloat_t;
};
template <>
struct VecTraits<double> {
  using vec = vdouble_t;
};

const char* simd_label_impl() {
  switch (FMMFFT_VBYTES_D) {
    case 64: return "vec512";
    case 32: return "vec256";
    default: return "vec128";
  }
}
#else
const char* simd_label_impl() { return "scalar"; }
#endif

template <typename T>
inline T at(const T* a, index_t lda, Op trans, index_t i, index_t j) {
  // Element (i, j) of op(A) given the raw column-major storage of A.
  return trans == Op::N ? a[i + j * lda] : a[j + i * lda];
}

/// Pack an mc×kc block of op(A) into micropanels: panel p holds rows
/// [p*MR, p*MR+MR) for all k, contiguous as [k*MR + r]. Rows past mc are 0.
template <typename T>
void pack_a(const T* a, index_t lda, Op trans, index_t i0, index_t k0, index_t mc, index_t kc,
            T* pack) {
  index_t np = ceil_div(mc, MR);
  for (index_t p = 0; p < np; ++p) {
    T* dst = pack + p * MR * kc;
    index_t rbase = p * MR;
    for (index_t k = 0; k < kc; ++k)
      for (index_t r = 0; r < MR; ++r) {
        index_t i = rbase + r;
        dst[k * MR + r] = i < mc ? at(a, lda, trans, i0 + i, k0 + k) : T(0);
      }
  }
}

/// Pack a kc×nc block of op(B) into micropanels: panel q holds cols
/// [q*NR, q*NR+NR) for all k, contiguous as [k*NR + c]. Cols past nc are 0.
template <typename T>
void pack_b(const T* b, index_t ldb, Op trans, index_t k0, index_t j0, index_t kc, index_t nc,
            T* pack) {
  index_t nq = ceil_div(nc, NR);
  for (index_t q = 0; q < nq; ++q) {
    T* dst = pack + q * NR * kc;
    index_t cbase = q * NR;
    for (index_t k = 0; k < kc; ++k)
      for (index_t c = 0; c < NR; ++c) {
        index_t j = cbase + c;
        dst[k * NR + c] = j < nc ? at(b, ldb, trans, k0 + k, j0 + j) : T(0);
      }
  }
}

/// Masked accumulate of the finished register tile into C:
/// C[valid] += alpha * acc (C was pre-scaled by beta once per gemm).
template <typename T>
inline void store_tile(const T* acc, T alpha, T* c, index_t ldc, index_t mr, index_t nr) {
  if (mr == MR && nr == NR) {
    for (index_t j = 0; j < NR; ++j)
      for (index_t i = 0; i < MR; ++i) c[i + j * ldc] += alpha * acc[i + j * MR];
  } else {
    for (index_t j = 0; j < nr; ++j)
      for (index_t i = 0; i < mr; ++i) c[i + j * ldc] += alpha * acc[i + j * MR];
  }
}

/// MR×NR microkernel over packed panels: acc = sum_k apanel[k]·bpanel[k]^T.
#ifdef FMMFFT_GEMM_SIMD
template <typename T>
void microkernel(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc, index_t mr,
                 index_t nr) {
  using V = typename VecTraits<T>::vec;
  constexpr index_t VL = index_t(sizeof(V) / sizeof(T));
  constexpr index_t NV = MR / VL;  // vectors per register-tile column
  static_assert(MR % VL == 0);
  // One accumulator vector per (row-vector, column); a k step is NV aligned
  // loads of A, NR broadcasts of B, and NV*NR fused multiply-adds. Rows are
  // independent accumulators, so vectorizing over i keeps each element's
  // addition order identical to the scalar kernel.
  V acc[NV][NR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * MR;  // micropanel k-slices stay vector-aligned
    const T* b = bp + k * NR;
    V av[NV];
    for (index_t v = 0; v < NV; ++v)
      av[v] = *reinterpret_cast<const V*>(a + v * VL);
    for (index_t j = 0; j < NR; ++j) {
      V bj;
      for (index_t l = 0; l < VL; ++l) bj[l] = b[j];  // lowered to a broadcast
      for (index_t v = 0; v < NV; ++v) acc[v][j] += av[v] * bj;
    }
  }
  alignas(kAlignment) T tile[MR * NR];
  for (index_t j = 0; j < NR; ++j)
    for (index_t v = 0; v < NV; ++v)
      *reinterpret_cast<V*>(tile + j * MR + v * VL) = acc[v][j];
  store_tile(tile, alpha, c, ldc, mr, nr);
}
#else
template <typename T>
void microkernel(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc, index_t mr,
                 index_t nr) {
  T acc[MR * NR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * MR;
    const T* b = bp + k * NR;
    for (index_t j = 0; j < NR; ++j) {
      T bj = b[j];
      for (index_t i = 0; i < MR; ++i) acc[i + j * MR] += a[i] * bj;
    }
  }
  store_tile(acc, alpha, c, ldc, mr, nr);
}
#endif

template <typename T>
struct Workspace {
  Buffer<T> apack{MC * KC};
  Buffer<T> bpack{KC * NC};
};

/// Thread-local pack buffers: GEMMs of one scalar type reuse the workspace
/// across calls, which matters for the many small batched GEMMs in the FMM.
template <typename T>
Workspace<T>& workspace() {
  thread_local Workspace<T> ws;
  return ws;
}

template <typename T>
void gemm_impl(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
               index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  FMMFFT_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;

  // Scale C by beta once, so inner kernels are pure accumulate.
  if (beta == T(0)) {
    for (index_t j = 0; j < n; ++j) std::fill_n(c + j * ldc, m, T(0));
  } else if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c[i + j * ldc] *= beta;
  }
  if (k == 0 || alpha == T(0)) return;

  // One MC-block of the macro-loop: pack the A block into this thread's
  // workspace and run the microkernel grid against an already-packed B.
  auto run_mc_block = [&](index_t i0, index_t j0, index_t k0, index_t nc, index_t kc,
                          const T* bpack) {
    const index_t mc = std::min(MC, m - i0);
    T* apack = workspace<T>().apack.data();
    pack_a(a, lda, transa, i0, k0, mc, kc, apack);
    const index_t np = ceil_div(mc, MR), nq = ceil_div(nc, NR);
    for (index_t q = 0; q < nq; ++q) {
      const index_t nr = std::min(NR, nc - q * NR);
      for (index_t p = 0; p < np; ++p) {
        const index_t mr = std::min(MR, mc - p * MR);
        microkernel(kc, alpha, apack + p * MR * kc, bpack + q * NR * kc,
                    c + (i0 + p * MR) + (j0 + q * NR) * ldc, ldc, mr, nr);
      }
    }
  };

  // Shard the MC loop across the pool when there are enough blocks to
  // amortize the fork/join. Each worker packs A into its own thread-local
  // workspace; the B panel packed by the caller is shared read-only. The
  // k0 loop stays serial, so every C block accumulates its KC panels in
  // the same order at any thread count (bit-identical results).
  auto& ws = workspace<T>();
  const index_t mc_blocks = ceil_div(m, MC);
  const bool shard_mc = mc_blocks >= 4 && !ThreadPool::in_task() &&
                        !ThreadPool::serial_forced() && ThreadPool::global().workers() > 1;
  for (index_t j0 = 0; j0 < n; j0 += NC) {
    index_t nc = std::min(NC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += KC) {
      index_t kc = std::min(KC, k - k0);
      pack_b(b, ldb, transb, k0, j0, kc, nc, ws.bpack.data());
      if (shard_mc) {
        const T* bpack = ws.bpack.data();
        parallel_for(
            mc_blocks,
            [&](index_t blk0, index_t blk1) {
              for (index_t blk = blk0; blk < blk1; ++blk)
                run_mc_block(blk * MC, j0, k0, nc, kc, bpack);
            },
            /*grain=*/1);
      } else {
        for (index_t i0 = 0; i0 < m; i0 += MC)
          run_mc_block(i0, j0, k0, nc, kc, ws.bpack.data());
      }
    }
  }
}

}  // namespace

const char* simd_label() { return simd_label_impl(); }

template <typename T>
void gemm(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
          index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  FMMFFT_SPAN("GEMM");
  FMMFFT_COUNT("blas.gemm_calls", 1);
  FMMFFT_COUNT("blas.launches", 1);
  FMMFFT_COUNT("blas.flops", gemm_flops(m, n, k));
  gemm_impl(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

template <typename T>
void gemm_strided_batched(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha,
                          const T* a, index_t lda, index_t stride_a, const T* b, index_t ldb,
                          index_t stride_b, T beta, T* c, index_t ldc, index_t stride_c,
                          index_t batch_count) {
  FMMFFT_CHECK(batch_count >= 0);
  FMMFFT_SPAN("BatchedGEMM");
  FMMFFT_COUNT("blas.gemm_calls", batch_count);
  FMMFFT_COUNT("blas.launches", 1);
  FMMFFT_COUNT("blas.flops", double(batch_count) * gemm_flops(m, n, k));
  // Problem instances are independent; share them across the pool (each
  // worker has its own thread-local pack workspace).
  parallel_for(
      batch_count,
      [&](index_t g0, index_t g1) {
        for (index_t g = g0; g < g1; ++g)
          gemm_impl(transa, transb, m, n, k, alpha, a + g * stride_a, lda, b + g * stride_b,
                    ldb, beta, c + g * stride_c, ldc);
      },
      /*grain=*/1);
}

template <typename T>
void gemv(Op trans, index_t m, index_t n, T alpha, const T* a, index_t lda, const T* x,
          index_t incx, T beta, T* y, index_t incy) {
  FMMFFT_SPAN("GEMV");
  FMMFFT_COUNT("blas.gemv_calls", 1);
  FMMFFT_COUNT("blas.launches", 1);
  FMMFFT_COUNT("blas.flops", 2.0 * double(m) * double(n));
  // op(A) is m×n. Row/column traversal is picked so A is streamed in order.
  if (trans == Op::N) {
    // BLAS semantics: beta == 0 means y is write-only (never read).
    for (index_t i = 0; i < m; ++i) y[i * incy] = beta == T(0) ? T(0) : y[i * incy] * beta;
    for (index_t j = 0; j < n; ++j) {
      T xj = alpha * x[j * incx];
      const T* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) y[i * incy] += col[i] * xj;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      const T* col = a + i * lda;  // row i of op(A) = column i of A
      T s = 0;
      for (index_t j = 0; j < n; ++j) s += col[j] * x[j * incx];
      y[i * incy] = alpha * s + (beta == T(0) ? T(0) : beta * y[i * incy]);
    }
  }
}

template <typename T>
void gemm_reference(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
                    index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s = 0;
      for (index_t l = 0; l < k; ++l) s += at(a, lda, transa, i, l) * at(b, ldb, transb, l, j);
      c[i + j * ldc] = alpha * s + beta * c[i + j * ldc];
    }
}

#define FMMFFT_INSTANTIATE_BLAS(T)                                                             \
  template void gemm<T>(Op, Op, index_t, index_t, index_t, T, const T*, index_t, const T*,     \
                        index_t, T, T*, index_t);                                              \
  template void gemm_strided_batched<T>(Op, Op, index_t, index_t, index_t, T, const T*,        \
                                        index_t, index_t, const T*, index_t, index_t, T, T*,   \
                                        index_t, index_t, index_t);                            \
  template void gemv<T>(Op, index_t, index_t, T, const T*, index_t, const T*, index_t, T, T*,  \
                        index_t);                                                              \
  template void gemm_reference<T>(Op, Op, index_t, index_t, index_t, T, const T*, index_t,     \
                                  const T*, index_t, T, T*, index_t);

FMMFFT_INSTANTIATE_BLAS(float)
FMMFFT_INSTANTIATE_BLAS(double)

}  // namespace fmmfft::blas
