// Dense BLAS substrate — the library's stand-in for cuBLAS.
//
// Provides column-major GEMM, strided BatchedGEMM (the primitive the
// FMM-FFT leans on for S2M/M2M/L2L/L2T, §4.4–4.5), and GEMV (the §4.8
// reduction). Real float/double only: complex FMM data is flattened into
// real tensors with effective batch C·P (DESIGN.md §5).
#pragma once

#include "common/types.hpp"

namespace fmmfft::blas {

enum class Op { N, T };

/// C := alpha * op(A) * op(B) + beta * C, column-major.
/// op(A) is m×k, op(B) is k×n, C is m×n.
template <typename T>
void gemm(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
          index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc);

/// Strided batched GEMM: batch_count independent GEMMs with constant
/// pointer strides between consecutive problem instances (cuBLAS
/// gemmStridedBatched semantics).
template <typename T>
void gemm_strided_batched(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha,
                          const T* a, index_t lda, index_t stride_a, const T* b, index_t ldb,
                          index_t stride_b, T beta, T* c, index_t ldc, index_t stride_c,
                          index_t batch_count);

/// y := alpha * op(A) * x + beta * y, column-major; op(A) is m×n.
template <typename T>
void gemv(Op trans, index_t m, index_t n, T alpha, const T* a, index_t lda, const T* x,
          index_t incx, T beta, T* y, index_t incy);

/// Reference (naive triple loop) GEMM used to validate the blocked kernels.
template <typename T>
void gemm_reference(Op transa, Op transb, index_t m, index_t n, index_t k, T alpha, const T* a,
                    index_t lda, const T* b, index_t ldb, T beta, T* c, index_t ldc);

/// Flop count of one GEMM (multiply-add = 2 flops).
inline double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * double(m) * double(n) * double(k);
}

/// Which microkernel the build selected: "vec512" / "vec256" / "vec128"
/// (GCC/Clang vector extensions at that width) or "scalar" (fallback).
const char* simd_label();

}  // namespace fmmfft::blas
