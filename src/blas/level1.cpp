#include "blas/level1.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fmmfft::blas {

template <typename T>
void axpy(index_t n, T alpha, const T* x, index_t incx, T* y, index_t incy) {
  if (alpha == T(0)) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
  }
}

template <typename T>
void scal(index_t n, T alpha, T* x, index_t incx) {
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

template <typename T>
void copy(index_t n, const T* x, index_t incx, T* y, index_t incy) {
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

template <typename T>
T dot(index_t n, const T* x, index_t incx, const T* y, index_t incy) {
  T s = 0;
  for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

template <typename T>
T nrm2(index_t n, const T* x, index_t incx) {
  // Scaled accumulation (LAPACK dnrm2 style) to avoid overflow/underflow.
  T scale = 0, ssq = 1;
  for (index_t i = 0; i < n; ++i) {
    const T v = std::abs(x[i * incx]);
    if (v == T(0)) continue;
    if (scale < v) {
      const T r = scale / v;
      ssq = T(1) + ssq * r * r;
      scale = v;
    } else {
      const T r = v / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename T>
T asum(index_t n, const T* x, index_t incx) {
  T s = 0;
  for (index_t i = 0; i < n; ++i) s += std::abs(x[i * incx]);
  return s;
}

template <typename T>
index_t iamax(index_t n, const T* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  T bv = std::abs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const T v = std::abs(x[i * incx]);
    if (v > bv) {
      bv = v;
      best = i;
    }
  }
  return best;
}

#define FMMFFT_INSTANTIATE_L1(T)                                           \
  template void axpy<T>(index_t, T, const T*, index_t, T*, index_t);       \
  template void scal<T>(index_t, T, T*, index_t);                          \
  template void copy<T>(index_t, const T*, index_t, T*, index_t);          \
  template T dot<T>(index_t, const T*, index_t, const T*, index_t);        \
  template T nrm2<T>(index_t, const T*, index_t);                          \
  template T asum<T>(index_t, const T*, index_t);                          \
  template index_t iamax<T>(index_t, const T*, index_t);

FMMFFT_INSTANTIATE_L1(float)
FMMFFT_INSTANTIATE_L1(double)

}  // namespace fmmfft::blas
