// Portable vector-extension substrate shared by the hot kernels.
//
// One ISA dispatch (AVX-512 / AVX / SSE2 / NEON / VSX, scalar fallback)
// serves both the register-tiled GEMM microkernel (src/blas/gemm.cpp) and
// the FMM's custom M2L/S2T contraction kernels (src/fmm/engine.cpp). The
// types are GCC/Clang `vector_size` vectors, so every per-lane operation is
// an exactly-rounded IEEE op: vectorized loops are value-identical to their
// scalar counterparts element by element, which is what lets the engine
// promise bit-identical outputs regardless of the ISA the TU was built for.
//
// Each translation unit that includes this header gets the widest vector
// its own compile flags allow — the blas/fft libraries build with
// `-march=native -ffp-contract=fast` (contraction is confined to the GEMM
// microkernel's accumulate, same order at any width), the fmm library with
// `-march=native -ffp-contract=off` (its kernels promise bit-identity with
// the unfused mul+add reference paths).
#pragma once

#include "common/types.hpp"

#if !defined(FMMFFT_NO_SIMD) && (defined(__GNUC__) || defined(__clang__)) &&                   \
    (defined(__AVX512F__) || defined(__AVX__) || defined(__SSE2__) || defined(__ARM_NEON) ||   \
     defined(__VSX__) || defined(__ALTIVEC__))
#define FMMFFT_SIMD 1
#if defined(__AVX512F__)
#define FMMFFT_SIMD_BYTES 64
#elif defined(__AVX__)
#define FMMFFT_SIMD_BYTES 32
#else
#define FMMFFT_SIMD_BYTES 16
#endif
#else
#define FMMFFT_SIMD 0
#define FMMFFT_SIMD_BYTES 0
#endif

namespace fmmfft::simd {

#if FMMFFT_SIMD

// Native-width vectors (alignment = vector size) and unaligned-access twins
// (alignment = element size) for streaming over tensors whose row strides
// are not vector-aligned (the engine's C·P / C·(P-1) pitches).
typedef float vfloat_t __attribute__((vector_size(FMMFFT_SIMD_BYTES)));
typedef double vdouble_t __attribute__((vector_size(FMMFFT_SIMD_BYTES)));
typedef float vfloat_u_t __attribute__((vector_size(FMMFFT_SIMD_BYTES), aligned(4)));
typedef double vdouble_u_t __attribute__((vector_size(FMMFFT_SIMD_BYTES), aligned(8)));

// GEMM-tile vectors: the microkernel caps float lanes at its MR = 8 tile
// height, so on AVX-512 floats drop to 32-byte vectors while doubles use
// the full 64 bytes (8 lanes == MR).
#define FMMFFT_SIMD_GEMM_BYTES_F (FMMFFT_SIMD_BYTES > 32 ? 32 : FMMFFT_SIMD_BYTES)
typedef float vfloat_gemm_t __attribute__((vector_size(FMMFFT_SIMD_GEMM_BYTES_F)));
typedef float vfloat_gemm_u_t __attribute__((vector_size(FMMFFT_SIMD_GEMM_BYTES_F), aligned(4)));

template <typename T>
struct NativeVec;
template <>
struct NativeVec<float> {
  using vec = vfloat_t;
  using vec_u = vfloat_u_t;
};
template <>
struct NativeVec<double> {
  using vec = vdouble_t;
  using vec_u = vdouble_u_t;
};

// Fixed sub-native widths for remainder step-down in the streaming helpers
// (only ever dereferenced when FMMFFT_SIMD_BYTES exceeds them).
typedef float vfloat32_u_t __attribute__((vector_size(32), aligned(4)));
typedef float vfloat16_u_t __attribute__((vector_size(16), aligned(4)));
typedef double vdouble32_u_t __attribute__((vector_size(32), aligned(8)));
typedef double vdouble16_u_t __attribute__((vector_size(16), aligned(8)));

template <typename T, int Bytes>
struct StepVec;
template <>
struct StepVec<float, 32> {
  using vec_u = vfloat32_u_t;
};
template <>
struct StepVec<float, 16> {
  using vec_u = vfloat16_u_t;
};
template <>
struct StepVec<double, 32> {
  using vec_u = vdouble32_u_t;
};
template <>
struct StepVec<double, 16> {
  using vec_u = vdouble16_u_t;
};

template <typename T>
struct GemmVec;
template <>
struct GemmVec<float> {
  using vec = vfloat_gemm_t;
  using vec_u = vfloat_gemm_u_t;
};
template <>
struct GemmVec<double> {
  using vec = vdouble_t;
  using vec_u = vdouble_u_t;
};

inline const char* width_label() {
  switch (FMMFFT_SIMD_BYTES) {
    case 64: return "vec512";
    case 32: return "vec256";
    default: return "vec128";
  }
}

/// dst[i] += x[i] * y[i] for i in [0, n). Native-width vector main loop,
/// then the remainder steps down through the sub-native power-of-two widths
/// (64→32→16 bytes) before falling to scalar, so a 6-element double tail
/// costs two vector ops instead of six scalar ones. The streams may be
/// mutually unaligned. Per element this is one multiply and one add in
/// index order — value-identical to the plain scalar loop at any vector
/// width (and to it bit-for-bit when the TU is compiled with contraction
/// off).
template <typename T>
inline void mul_add_stream(T* dst, const T* x, const T* y, index_t n) {
  using V = typename NativeVec<T>::vec_u;
  constexpr index_t VL = index_t(sizeof(V) / sizeof(T));
  index_t i = 0;
  for (; i + VL <= n; i += VL) {
    V d = *reinterpret_cast<const V*>(dst + i);
    d += *reinterpret_cast<const V*>(x + i) * *reinterpret_cast<const V*>(y + i);
    *reinterpret_cast<V*>(dst + i) = d;
  }
  if constexpr (sizeof(V) > 32) {
    using H = typename StepVec<T, 32>::vec_u;
    constexpr index_t HL = index_t(32 / sizeof(T));
    if (i + HL <= n) {
      H d = *reinterpret_cast<const H*>(dst + i);
      d += *reinterpret_cast<const H*>(x + i) * *reinterpret_cast<const H*>(y + i);
      *reinterpret_cast<H*>(dst + i) = d;
      i += HL;
    }
  }
  if constexpr (sizeof(V) > 16) {
    using Q = typename StepVec<T, 16>::vec_u;
    constexpr index_t QL = index_t(16 / sizeof(T));
    if (i + QL <= n) {
      Q d = *reinterpret_cast<const Q*>(dst + i);
      d += *reinterpret_cast<const Q*>(x + i) * *reinterpret_cast<const Q*>(y + i);
      *reinterpret_cast<Q*>(dst + i) = d;
      i += QL;
    }
  }
  for (; i < n; ++i) dst[i] += x[i] * y[i];
}

#else  // scalar fallback

inline const char* width_label() { return "scalar"; }

template <typename T>
inline void mul_add_stream(T* dst, const T* x, const T* y, index_t n) {
  for (index_t i = 0; i < n; ++i) dst[i] += x[i] * y[i];
}

#endif

}  // namespace fmmfft::simd
