// Level-1 BLAS operations rounding out the substrate: vector update,
// scaling, reductions. Used by the post-processing stage, accuracy
// utilities, and available to library users.
#pragma once

#include "common/types.hpp"

namespace fmmfft::blas {

/// y := alpha * x + y.
template <typename T>
void axpy(index_t n, T alpha, const T* x, index_t incx, T* y, index_t incy);

/// x := alpha * x.
template <typename T>
void scal(index_t n, T alpha, T* x, index_t incx);

/// y := x.
template <typename T>
void copy(index_t n, const T* x, index_t incx, T* y, index_t incy);

/// Returns sum_i x_i * y_i.
template <typename T>
T dot(index_t n, const T* x, index_t incx, const T* y, index_t incy);

/// Returns the Euclidean norm ||x||_2 (overflow-safe scaled accumulation).
template <typename T>
T nrm2(index_t n, const T* x, index_t incx);

/// Returns sum_i |x_i|.
template <typename T>
T asum(index_t n, const T* x, index_t incx);

/// Returns the index of the first element of maximum absolute value
/// (0-based), or -1 for empty input.
template <typename T>
index_t iamax(index_t n, const T* x, index_t incx);

}  // namespace fmmfft::blas
