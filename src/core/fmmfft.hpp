// Single-address-space FMM-FFT (Algorithm 1): the paper's primary
// contribution, composed from the FMM engine and the FFT substrate.
//
//   F_N x = F_{M,P} · Ĥ_{M,P} x
//
// Ĥ is the P-1 interleaved periodic FMMs evaluated by fmm::Engine; F_{M,P}
// is the M×P 2D FFT evaluated as M size-P FFTs, the Π_{M,P} permutation,
// and P size-M FFTs. The post-processing T ← ρ_p(T + i·r_p) is fused into
// the load that feeds the 2D FFT (the paper fuses it into the cuFFTXT
// load callback); an unfused path exists for the ablation benchmark.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fft/fft.hpp"
#include "fmm/engine.hpp"
#include "fmm/params.hpp"
#include "fmm/precision.hpp"

namespace fmmfft::core {

/// Aggregated per-stage timing/ops of one execution, for the component
/// benches (Figs. 2, 4, 5, 6).
struct ExecutionProfile {
  std::vector<fmm::StageStats> fmm_stages;  ///< per kernel launch, in order
  double post_seconds = 0;
  double fft_seconds = 0;
  double total_seconds = 0;
  double fmm_seconds() const {
    double s = 0;
    for (const auto& st : fmm_stages) s += st.seconds;
    return s;
  }
  double fmm_flops() const {
    double s = 0;
    for (const auto& st : fmm_stages) s += st.flops;
    return s;
  }
  index_t kernel_launches() const {
    index_t s = 0;
    for (const auto& st : fmm_stages)
      if (st.kernel != fmm::KernelClass::Copy) s += st.launches;
    return s;
  }
};

/// In-order 1D FFT of size N via the FMM-FFT factorization. InT is the
/// input scalar: float/double (the paper's C = 1) or complex of either
/// (C = 2). Output is always complex.
template <typename InT>
class FmmFft {
 public:
  using Real = real_of_t<InT>;
  using Out = std::complex<Real>;

  /// `prec` selects the FMM translation width (fmm/precision.hpp): Fp64
  /// runs the engine in the shell precision (the pre-existing pipeline,
  /// bit for bit); Mixed runs it in fp32 under an fp64 shell, converting
  /// at the load and POST boundaries only. Under an fp32 shell Mixed
  /// collapses to the native fp32 pipeline. Defaults to FMMFFT_PRECISION.
  explicit FmmFft(const fmm::Params& prm, bool fuse_post = true,
                  fmm::Precision prec = fmm::default_precision());
  ~FmmFft();
  FmmFft(FmmFft&&) noexcept;
  FmmFft& operator=(FmmFft&&) noexcept;

  const fmm::Params& params() const;
  /// The precision policy this plan was built with.
  fmm::Precision precision() const;

  /// Compute output = F_N · input. Both length N; out-of-place.
  void execute(const InT* input, Out* output);

  /// Profile of the most recent execute().
  const ExecutionProfile& profile() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fmmfft::core
