// Dense reference implementations used to validate the FMM-FFT pipeline:
//
//  * apply_hhat_dense — applies Ĥ_{M,P} = Π_{P,M} H_{P,M} Π_{M,P} with the
//    exact dense C_p matrices (O(P·M²); test sizes only).
//  * fmmfft_dense_reference — the full factorization with dense Ĥ and exact
//    FFTs: reproduces F_N x to machine precision and pins down every
//    permutation/sign convention independently of the FMM.
//  * exact_fft — F_N x via the FFT substrate (the accuracy baseline the
//    paper measures its relative l2 error against).
#pragma once

#include <complex>
#include <vector>

#include "common/types.hpp"
#include "fmm/params.hpp"

namespace fmmfft::core {

/// y := Ĥ_{M,P} x with dense C_p matrices, double-precision internally.
/// In the p-major layout Ĥ is block-free: FMM p acts on the subsequence
/// x[p + k·P], k = 0..M-1.
void apply_hhat_dense(const fmm::Params& prm, const std::complex<double>* x,
                      std::complex<double>* y);

/// y := F_N x via the dense FMM-FFT factorization (Eq. 2).
void fmmfft_dense_reference(const fmm::Params& prm, const std::complex<double>* x,
                            std::complex<double>* y);

/// y := F_N x with the FFT substrate (Stockham), double precision.
void exact_fft(index_t n, const std::complex<double>* x, std::complex<double>* y);

}  // namespace fmmfft::core
