#include "core/reference.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/permute.hpp"
#include "fft/fft.hpp"
#include "fmm/operators.hpp"

namespace fmmfft::core {

void apply_hhat_dense(const fmm::Params& prm, const std::complex<double>* x,
                      std::complex<double>* y) {
  const index_t m = prm.m(), p_total = prm.p;
  for (index_t p = 0; p < p_total; ++p) {
    if (p == 0) {
      for (index_t k = 0; k < m; ++k) y[k * p_total] = x[k * p_total];
      continue;
    }
    const auto cp = fmm::dense_cp(prm, p);
    for (index_t row = 0; row < m; ++row) {
      std::complex<double> s = 0;
      for (index_t col = 0; col < m; ++col) s += cp[(std::size_t)(row + col * m)] * x[p + col * p_total];
      y[p + row * p_total] = s;
    }
  }
}

void fmmfft_dense_reference(const fmm::Params& prm, const std::complex<double>* x,
                            std::complex<double>* y) {
  const index_t n = prm.n, m = prm.m(), p_total = prm.p;
  std::vector<std::complex<double>> tmp(static_cast<std::size_t>(n));
  // Ĥ x, then F_{M,P}: M FFTs of size P, Π_{M,P}, P FFTs of size M.
  apply_hhat_dense(prm, x, y);
  // Cached plans: the reference transform is called repeatedly at the same
  // sizes by the accuracy sweeps, so don't rebuild twiddles per call.
  fft::cached_plan1d<double>(p_total)->execute_batched(y, m, fft::Direction::Forward);
  permute_mp(y, tmp.data(), m, p_total);
  fft::cached_plan1d<double>(m)->execute_batched(tmp.data(), p_total, fft::Direction::Forward);
  std::copy(tmp.begin(), tmp.end(), y);
}

void exact_fft(index_t n, const std::complex<double>* x, std::complex<double>* y) {
  std::copy_n(x, n, y);
  fft::fft(y, n, fft::Direction::Forward);
}

}  // namespace fmmfft::core
