#include "core/fmmfft.hpp"

#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/permute.hpp"
#include "common/threadpool.hpp"
#include "common/timer.hpp"
#include "fmm/operators.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::core {

template <typename InT>
struct FmmFft<InT>::Impl {
  static constexpr int kC = components_v<InT>;
  using Real = real_of_t<InT>;
  using Out = std::complex<Real>;

  fmm::Params prm;
  bool fuse_post;
  fmm::Precision prec;
  // Exactly one engine is live: `engine` when the translation pipeline runs
  // at the shell width, `engine32` when Mixed narrows it to fp32 under an
  // fp64 shell. (Under an fp32 shell Mixed is the native pipeline already,
  // so `engine` is used there too.)
  std::unique_ptr<fmm::Engine<Real>> engine;
  std::unique_ptr<fmm::Engine<float>> engine32;
  fft::Plan1D<Real> plan_p;  // M transforms of size P
  fft::Plan1D<Real> plan_m;  // P transforms of size M
  Buffer<Out> scratch;       // permutation / unfused-post staging
  std::vector<Out> rho;      // rho_p for p = 1..P-1 (index p)
  ExecutionProfile prof;

  bool mixed() const { return prec == fmm::Precision::Mixed && sizeof(Real) == 8; }

  explicit Impl(const fmm::Params& p, bool fuse, fmm::Precision pr)
      : prm(p),
        fuse_post(fuse),
        prec(pr),
        plan_p(p.p),
        plan_m(p.m()),
        scratch(p.n),
        rho(static_cast<std::size_t>(p.p)) {
    if (mixed())
      engine32 = std::make_unique<fmm::Engine<float>>(p, kC);
    else
      engine = std::make_unique<fmm::Engine<Real>>(p, kC);
    for (index_t pp = 1; pp < prm.p; ++pp) {
      auto r = fmm::rho(pp, prm.p, prm.m());
      rho[(std::size_t)pp] = Out(Real(r.real()), Real(r.imag()));
    }
  }

  /// Read the post-processed element n = p + P·mg of the FMM output:
  /// T for p = 0 (C_0 = I), rho_p·(T + i·r_p) otherwise. ER is the engine
  /// real: the widening to the shell Real happens on the loaded scalars, so
  /// the rho multiply accumulates at full shell precision.
  template <typename ER>
  Out post_value(const ER* t, const ER* r, index_t p, index_t mg) const {
    if constexpr (kC == 2) {
      const Real re = Real(t[2 * (p + prm.p * mg)]);
      const Real im = Real(t[2 * (p + prm.p * mg) + 1]);
      if (p == 0) return Out(re, im);
      const Out rp(Real(r[2 * (p - 1)]), Real(r[2 * (p - 1) + 1]));
      return rho[(std::size_t)p] * (Out(re, im) + Out(0, 1) * rp);
    } else {
      const Real v = Real(t[p + prm.p * mg]);
      if (p == 0) return Out(v, 0);
      return rho[(std::size_t)p] * Out(v, Real(r[p - 1]));  // v + i·r_p
    }
  }

  template <typename ER>
  void execute_with(fmm::Engine<ER>& eng, const InT* input, Out* output) {
    prof = ExecutionProfile{};
    WallTimer total;

    // Load: the natural-order input vector is exactly the p-major S tensor
    // (n = p + P·(m + M_L·b)); flattened complex components interleave as
    // pc = c + C·p. Same-width engines take the raw memcpy (bit-identical
    // to the pre-mixed pipeline); a narrower engine demotes elementwise.
    if constexpr (std::is_same_v<ER, Real>) {
      std::memcpy(eng.source_box(0), input, sizeof(InT) * static_cast<std::size_t>(prm.n));
    } else {
      const Real* src = reinterpret_cast<const Real*>(input);
      ER* dst = eng.source_box(0);
      parallel_for(
          index_t(kC) * prm.n,
          [&](index_t lo, index_t hi) {
            for (index_t i = lo; i < hi; ++i) dst[i] = ER(src[i]);
          },
          /*grain=*/4096);
    }

    eng.reset_stats();
    eng.run_single_node();
    prof.fmm_stages = eng.stats();

    // Post-process (§4.9 line 15) fused with the load feeding the 2D FFT —
    // one pass from T to the FFT buffer, the CPU analogue of the cuFFTXT
    // load-callback fusion. The unfused ablation stages through `scratch`
    // and pays one extra round trip of T-sized data.
    WallTimer post_t;
    const index_t mtot = prm.m();
    {
      FMMFFT_SPAN("POST");
      const ER* t = eng.target_box(0);
      const ER* r = eng.reduction();
      Out* stage = fuse_post ? output : scratch.data();
      // Streams T once at the engine width and writes the complex FFT input
      // at the shell width; the unfused ablation pays one extra round trip
      // of the staged output. The tiny rho/reduction tables are excluded
      // like the FMM operator tables.
      FMMFFT_TRAFFIC_RW("post",
                        double(kC) * double(prm.n) * sizeof(ER) +
                            (fuse_post ? 0.0 : 2.0 * double(prm.n) * sizeof(Real)),
                        (2.0 * double(prm.n) + (fuse_post ? 0.0 : 2.0 * double(prm.n))) *
                            sizeof(Real),
                        0);
      // Rows are independent elementwise work, so splitting them across the
      // pool is bit-identical to the serial sweep.
      parallel_for(
          mtot,
          [&](index_t mg_lo, index_t mg_hi) {
            for (index_t mg = mg_lo; mg < mg_hi; ++mg)
              for (index_t p = 0; p < prm.p; ++p)
                stage[p + prm.p * mg] = post_value(t, r, p, mg);
          },
          /*grain=*/16);
      if (!fuse_post) std::memcpy(output, scratch.data(), sizeof(Out) * (std::size_t)prm.n);
    }
    prof.post_seconds = post_t.seconds();

    // 2D FFT F_{M,P}: M size-P FFTs on contiguous blocks, the Π_{M,P}
    // all-to-all permutation, then P size-M FFTs. Output is in order.
    WallTimer fft_t;
    {
      FMMFFT_SPAN("FFT-2D");
      plan_p.execute_batched(output, mtot, fft::Direction::Forward);
      permute_mp(output, scratch.data(), mtot, prm.p);
      plan_m.execute_batched(scratch.data(), prm.p, fft::Direction::Forward);
      std::memcpy(output, scratch.data(), sizeof(Out) * (std::size_t)prm.n);
    }
    prof.fft_seconds = fft_t.seconds();

    prof.total_seconds = total.seconds();
  }

  void execute(const InT* input, Out* output) {
    if (engine32)
      execute_with(*engine32, input, output);
    else
      execute_with(*engine, input, output);
  }
};

template <typename InT>
FmmFft<InT>::FmmFft(const fmm::Params& prm, bool fuse_post, fmm::Precision prec)
    : impl_(std::make_unique<Impl>(prm, fuse_post, prec)) {}
template <typename InT>
FmmFft<InT>::~FmmFft() = default;
template <typename InT>
FmmFft<InT>::FmmFft(FmmFft&&) noexcept = default;
template <typename InT>
FmmFft<InT>& FmmFft<InT>::operator=(FmmFft&&) noexcept = default;

template <typename InT>
const fmm::Params& FmmFft<InT>::params() const {
  return impl_->prm;
}

template <typename InT>
fmm::Precision FmmFft<InT>::precision() const {
  return impl_->prec;
}

template <typename InT>
void FmmFft<InT>::execute(const InT* input, Out* output) {
  impl_->execute(input, output);
}

template <typename InT>
const ExecutionProfile& FmmFft<InT>::profile() const {
  return impl_->prof;
}

template class FmmFft<float>;
template class FmmFft<double>;
template class FmmFft<std::complex<float>>;
template class FmmFft<std::complex<double>>;

}  // namespace fmmfft::core
