// Periodic 1D interpolative FMM with uniform sources and *nonuniform*
// targets — the Dutt–Rokhlin building block (§2: the FMM-FFT "appears to be
// a generalization of a previous algorithm by Dutt et al. for nonequispaced
// FFTs, which can be interpreted as Edelman's formulation with P = 1").
//
// Computes, for targets x_j in [0, 2π) and sources t_m = 2π·m/n,
//
//     out[j] = sum_m charge[m] · cot((x_j - t_m)/2)
//
// to a-priori accuracy controlled by the Chebyshev order Q. The kernel is
// 2π-periodic, so no wrap handling is needed anywhere. Source-coincident
// targets are detected at plan time; their singular self-terms are skipped
// and reported so callers can apply the analytic limit (the NUFFT does).
#pragma once

#include <complex>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace fmmfft::nufft {

template <typename T>
class NonuniformFmm {
 public:
  /// n uniform sources; targets in [0, 2π) (copied). M_L sources per leaf,
  /// base level b, Chebyshev order q.
  NonuniformFmm(index_t n, std::vector<T> targets, int q = 18, index_t ml = 16, int b = 3);
  ~NonuniformFmm();
  NonuniformFmm(NonuniformFmm&&) noexcept;
  NonuniformFmm& operator=(NonuniformFmm&&) noexcept;

  index_t num_sources() const;
  index_t num_targets() const;

  /// (target index, source index) pairs where x_j coincides with t_m;
  /// their kernel terms are omitted from apply().
  const std::vector<std::pair<index_t, index_t>>& exact_hits() const;

  /// out[j] = sum_m charge[m]·cot((x_j - t_m)/2), omitting exact hits.
  void apply(const std::complex<T>* charges, std::complex<T>* out) const;

  /// Transpose operator (nonuniform *sources*, uniform targets):
  /// out[m] = sum_j charge[j]·cot((x_j - t_m)/2), omitting exact hits.
  /// This is the spreading step of the type-1 NUFFT.
  void apply_transpose(const std::complex<T>* charges, std::complex<T>* out) const;

  /// Direct O(n·m) evaluation for validation.
  void apply_direct(const std::complex<T>* charges, std::complex<T>* out) const;

  /// Direct transpose evaluation for validation.
  void apply_transpose_direct(const std::complex<T>* charges, std::complex<T>* out) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fmmfft::nufft
