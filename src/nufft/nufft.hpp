// Nonequispaced FFT (type 2) via the FMM — the Dutt–Rokhlin algorithm the
// FMM-FFT generalizes (§2, [7] in the paper).
//
// Evaluates a Fourier series with uniform spectrum at nonuniform points:
//
//     out[j] = sum_k  c_k · exp(i·k̃·x_j),   x_j in [0, 2π)
//
// where c is in standard FFT ordering (index k in [0, n) meaning signed
// frequency k̃ = k for k < n/2, k̃ = k - n for k > n/2, and the Nyquist
// coefficient c_{n/2} taken in the symmetric convention cos(n·x/2)).
//
// Algorithm: exact trigonometric interpolation from the n uniform samples,
//     F(x) = sin(n·x/2)/n · sum_m (-1)^m f(t_m)·cot((x - t_m)/2) + Nyquist,
// with the cotangent sum compressed by the nonuniform-target FMM:
// one inverse FFT + one FMM apply per execute — O(n log n + m·Q).
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace fmmfft::nufft {

/// Type-1 (adjoint) transform: accumulate nonuniform samples into a
/// uniform spectrum,
///
///     out[k] = sum_j g_j · exp(-i·k̃·x_j)
///
/// with the same frequency/Nyquist conventions as NufftType2 (out is the
/// exact conjugate-transpose of the type-2 evaluation matrix). One FMM
/// spreading pass plus one forward FFT per execute.
template <typename T>
class NufftType1 {
 public:
  NufftType1(index_t n, std::vector<T> points, int q = 18, index_t ml = 16, int b = 3);
  ~NufftType1();
  NufftType1(NufftType1&&) noexcept;
  NufftType1& operator=(NufftType1&&) noexcept;

  index_t spectrum_size() const;
  index_t num_points() const;

  void execute(const std::complex<T>* samples, std::complex<T>* spectrum) const;

  /// Direct O(n·m) evaluation for validation.
  void reference(const std::complex<T>* samples, std::complex<T>* spectrum) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

template <typename T>
class NufftType2 {
 public:
  /// Plan for evaluating size-n spectra at the given targets in [0, 2π).
  /// q controls accuracy exactly as in the FMM-FFT (18 ≈ double precision).
  NufftType2(index_t n, std::vector<T> targets, int q = 18, index_t ml = 16, int b = 3);
  ~NufftType2();
  NufftType2(NufftType2&&) noexcept;
  NufftType2& operator=(NufftType2&&) noexcept;

  index_t spectrum_size() const;
  index_t num_targets() const;

  void execute(const std::complex<T>* spectrum, std::complex<T>* out) const;

  /// Direct O(n·m) evaluation of the same sum (same Nyquist convention).
  void reference(const std::complex<T>* spectrum, std::complex<T>* out) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fmmfft::nufft
