#include "nufft/nufft.hpp"

#include <cmath>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "fft/fft.hpp"
#include "nufft/nufmm.hpp"

namespace fmmfft::nufft {

template <typename T>
struct NufftType2<T>::Impl {
  using Cx = std::complex<T>;

  index_t n;
  std::vector<T> x;           // targets, original order
  NonuniformFmm<T> fmm;
  fft::Plan1D<T> ifft;
  std::vector<index_t> hit_src;        // target -> coincident source or -1
  mutable Buffer<Cx> samples, charges; // work: f(t_m), (-1)^m f(t_m)/n

  Impl(index_t n_, std::vector<T> targets, int q, index_t ml, int b)
      : n(n_),
        x(targets),
        fmm(n_, std::move(targets), q, ml, b),
        ifft(n_),
        samples(n_),
        charges(n_) {
    hit_src.assign(x.size(), -1);
    for (const auto& [j, m] : fmm.exact_hits()) hit_src[(std::size_t)j] = m;
  }

  void execute(const Cx* spectrum, Cx* out) const {
    // Split off the Nyquist coefficient (handled analytically) and get the
    // band-limited uniform samples with one unnormalized inverse FFT.
    const Cx cny = spectrum[n / 2];
    for (index_t k = 0; k < n; ++k) samples[k] = spectrum[k];
    samples[n / 2] = Cx(0);
    ifft.execute(samples.data(), fft::Direction::Inverse);

    for (index_t m = 0; m < n; ++m)
      charges[m] = (m % 2 == 0 ? T(1) : T(-1)) / T(n) * samples[m];

    fmm.apply(charges.data(), out);

    for (std::size_t j = 0; j < x.size(); ++j) {
      const double half_nx = double(n) / 2.0 * double(x[j]);
      if (hit_src[j] >= 0) {
        // Coincident target: interpolation collapses to the sample itself.
        const index_t m = hit_src[j];
        out[j] = samples[m] + cny * T(m % 2 == 0 ? 1.0 : -1.0);
      } else {
        out[j] = T(std::sin(half_nx)) * out[j] + cny * T(std::cos(half_nx));
      }
    }
  }

  void reference(const Cx* spectrum, Cx* out) const {
    for (std::size_t j = 0; j < x.size(); ++j) {
      std::complex<double> acc = 0;
      for (index_t k = 0; k < n; ++k) {
        const double kt = k < n / 2 ? double(k) : double(k) - double(n);
        const std::complex<double> ck(spectrum[k].real(), spectrum[k].imag());
        if (k == n / 2)
          acc += ck * std::cos(double(n) / 2.0 * double(x[j]));
        else
          acc += ck * std::exp(std::complex<double>(0.0, kt * double(x[j])));
      }
      out[j] = Cx(T(acc.real()), T(acc.imag()));
    }
  }
};

template <typename T>
struct NufftType1<T>::Impl {
  using Cx = std::complex<T>;

  index_t n;
  std::vector<T> x;
  NonuniformFmm<T> fmm;
  fft::Plan1D<T> fftp;
  std::vector<index_t> hit_src;
  mutable Buffer<Cx> weighted, spread;

  Impl(index_t n_, std::vector<T> points, int q, index_t ml, int b)
      : n(n_),
        x(points),
        fmm(n_, std::move(points), q, ml, b),
        fftp(n_),
        weighted(static_cast<index_t>(x.size())),
        spread(n_) {
    hit_src.assign(x.size(), -1);
    for (const auto& [j, m] : fmm.exact_hits()) hit_src[(std::size_t)j] = m;
  }

  void execute(const Cx* g, Cx* spectrum) const {
    // Exact conjugate-transpose of the type-2 pipeline:
    //   spectrum = FFT( D_{(-1)^m/n} · Kᵀ · D_{sin(n·x/2)} · g ) + hit rows,
    // then the Nyquist bin replaced by its cosine-convention value.
    for (std::size_t j = 0; j < x.size(); ++j)
      weighted[(index_t)j] = hit_src[j] >= 0
                                 ? Cx(0)
                                 : Cx(T(std::sin(double(n) / 2.0 * double(x[j])))) * g[j];
    fmm.apply_transpose(weighted.data(), spread.data());
    for (index_t m = 0; m < n; ++m)
      spread[m] *= (m % 2 == 0 ? T(1) : T(-1)) / T(n);
    // Grid-coincident samples contribute the full DFT row of their point.
    for (std::size_t j = 0; j < x.size(); ++j)
      if (hit_src[j] >= 0) spread[hit_src[j]] += g[j];
    for (index_t m = 0; m < n; ++m) spectrum[m] = spread[m];
    fftp.execute(spectrum, fft::Direction::Forward);
    // Nyquist bin: symmetric cosine convention, evaluated directly.
    std::complex<double> ny = 0;
    for (std::size_t j = 0; j < x.size(); ++j)
      ny += std::complex<double>(g[j].real(), g[j].imag()) *
            std::cos(double(n) / 2.0 * double(x[j]));
    spectrum[n / 2] = Cx(T(ny.real()), T(ny.imag()));
  }

  void reference(const Cx* g, Cx* spectrum) const {
    for (index_t k = 0; k < n; ++k) {
      const double kt = k < n / 2 ? double(k) : double(k) - double(n);
      std::complex<double> acc = 0;
      for (std::size_t j = 0; j < x.size(); ++j) {
        const std::complex<double> gj(g[j].real(), g[j].imag());
        if (k == n / 2)
          acc += gj * std::cos(double(n) / 2.0 * double(x[j]));
        else
          acc += gj * std::exp(std::complex<double>(0.0, -kt * double(x[j])));
      }
      spectrum[k] = Cx(T(acc.real()), T(acc.imag()));
    }
  }
};

template <typename T>
NufftType1<T>::NufftType1(index_t n, std::vector<T> points, int q, index_t ml, int b)
    : impl_(std::make_unique<Impl>(n, std::move(points), q, ml, b)) {}
template <typename T>
NufftType1<T>::~NufftType1() = default;
template <typename T>
NufftType1<T>::NufftType1(NufftType1&&) noexcept = default;
template <typename T>
NufftType1<T>& NufftType1<T>::operator=(NufftType1&&) noexcept = default;

template <typename T>
index_t NufftType1<T>::spectrum_size() const {
  return impl_->n;
}
template <typename T>
index_t NufftType1<T>::num_points() const {
  return static_cast<index_t>(impl_->x.size());
}
template <typename T>
void NufftType1<T>::execute(const std::complex<T>* samples, std::complex<T>* spectrum) const {
  impl_->execute(samples, spectrum);
}
template <typename T>
void NufftType1<T>::reference(const std::complex<T>* samples, std::complex<T>* spectrum) const {
  impl_->reference(samples, spectrum);
}

template class NufftType1<float>;
template class NufftType1<double>;

template <typename T>
NufftType2<T>::NufftType2(index_t n, std::vector<T> targets, int q, index_t ml, int b)
    : impl_(std::make_unique<Impl>(n, std::move(targets), q, ml, b)) {}
template <typename T>
NufftType2<T>::~NufftType2() = default;
template <typename T>
NufftType2<T>::NufftType2(NufftType2&&) noexcept = default;
template <typename T>
NufftType2<T>& NufftType2<T>::operator=(NufftType2&&) noexcept = default;

template <typename T>
index_t NufftType2<T>::spectrum_size() const {
  return impl_->n;
}
template <typename T>
index_t NufftType2<T>::num_targets() const {
  return static_cast<index_t>(impl_->x.size());
}
template <typename T>
void NufftType2<T>::execute(const std::complex<T>* spectrum, std::complex<T>* out) const {
  impl_->execute(spectrum, out);
}
template <typename T>
void NufftType2<T>::reference(const std::complex<T>* spectrum, std::complex<T>* out) const {
  impl_->reference(spectrum, out);
}

template class NufftType2<float>;
template class NufftType2<double>;

}  // namespace fmmfft::nufft
