#include "nufft/nufmm.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/math.hpp"
#include "fmm/chebyshev.hpp"
#include "fmm/operators.hpp"

namespace fmmfft::nufft {

template <typename T>
struct NonuniformFmm<T>::Impl {
  using Cx = std::complex<T>;

  index_t n;    // uniform sources
  int q;
  index_t ml;   // sources per leaf
  int b, l;     // base and leaf levels
  double w_leaf;

  std::vector<T> x;                    // target positions, original order
  std::vector<index_t> perm;           // sorted-by-box -> original index
  std::vector<index_t> box_start;      // leaf box -> first sorted target
  std::vector<index_t> hit_src;        // original target -> source index or -1
  std::vector<std::pair<index_t, index_t>> hits;

  std::vector<double> s2m_op;          // Q × M_L (sources at left-edge grid)
  std::vector<double> m2m_op;          // Q × 2Q
  std::map<std::pair<int, index_t>, std::vector<double>> m2l_op;  // (level, s)

  Impl(index_t n_, std::vector<T> targets, int q_, index_t ml_, int b_)
      : n(n_), q(q_), ml(ml_), b(b_), x(std::move(targets)) {
    FMMFFT_CHECK_MSG(n >= 4 && is_pow2(n), "source count must be a power of two >= 4");
    FMMFFT_CHECK_MSG(ml >= 1 && is_pow2(ml) && n % ml == 0, "invalid M_L");
    l = ilog2_exact(n / ml);
    FMMFFT_CHECK_MSG(b >= 2 && b <= l, "need 2 <= B <= L, got B=" << b << " L=" << l);
    FMMFFT_CHECK(q >= 1);
    w_leaf = 2.0 * pi_v<double> / double(index_t(1) << l);

    // Sort targets into leaf boxes (counting sort over boxes).
    const index_t nb = index_t(1) << l;
    std::vector<index_t> box_of(x.size());
    std::vector<index_t> count(static_cast<std::size_t>(nb) + 1, 0);
    for (std::size_t j = 0; j < x.size(); ++j) {
      FMMFFT_CHECK_MSG(x[j] >= T(0) && x[j] < T(2.0 * pi_v<double>),
                       "targets must lie in [0, 2*pi)");
      index_t bb = std::min<index_t>(nb - 1, index_t(double(x[j]) / w_leaf));
      box_of[j] = bb;
      ++count[(std::size_t)bb + 1];
    }
    for (index_t i = 0; i < nb; ++i) count[(std::size_t)i + 1] += count[(std::size_t)i];
    box_start.assign(count.begin(), count.end());
    perm.resize(x.size());
    {
      auto cursor = count;
      for (std::size_t j = 0; j < x.size(); ++j)
        perm[(std::size_t)cursor[(std::size_t)box_of[j]]++] = (index_t)j;
    }

    // Source-coincident targets.
    hit_src.assign(x.size(), -1);
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double m_guess = std::round(double(x[j]) * n / (2.0 * pi_v<double>));
      const index_t m = mod(index_t(m_guess), n);
      const double tm = 2.0 * pi_v<double> * double(m) / double(n);
      if (std::abs(double(x[j]) - tm) < 1e-14) {
        hit_src[j] = m;
        hits.emplace_back((index_t)j, m);
      }
    }

    // Operators. Sources sit at the left-edge grid of each leaf:
    // local param of source i is -1 + 2 i / M_L.
    {
      std::vector<double> pts(static_cast<std::size_t>(ml));
      for (index_t i = 0; i < ml; ++i) pts[(std::size_t)i] = -1.0 + 2.0 * double(i) / double(ml);
      s2m_op = fmm::lagrange_matrix(q, pts.data(), ml);
    }
    m2m_op = fmm::m2m_matrix(q);
    // M2L: K(x, y) = cot((x - y)/2) with x = ct + w z_i/2, y = cs + w z_j/2,
    // cs - ct = s·w  =>  arg = (w/2)(z_i/2 - z_j/2 - s).
    const auto z = fmm::chebyshev_points(q);
    auto build = [&](int lev, index_t s) {
      const double w = 2.0 * pi_v<double> / double(index_t(1) << lev);
      std::vector<double> tab(static_cast<std::size_t>(q) * q);
      for (int j = 0; j < q; ++j)
        for (int i = 0; i < q; ++i)
          tab[(std::size_t)(i + q * j)] =
              cot(w / 2.0 * (z[(std::size_t)i] / 2.0 - z[(std::size_t)j] / 2.0 - double(s)));
      return tab;
    };
    for (int lev = b + 1; lev <= l; ++lev)
      for (index_t s : fmm::level_separations()) m2l_op[{lev, s}] = build(lev, s);
    for (index_t s = 2; s <= (index_t(1) << b) - 2; ++s) m2l_op[{b, s}] = build(b, s);
  }

  void apply(const Cx* charges, Cx* out) const {
    const index_t nb_leaf = index_t(1) << l;
    // Expansions per level, q coefficients per box.
    std::vector<std::vector<Cx>> mult((std::size_t)l + 1), loc((std::size_t)l + 1);
    for (int lev = b; lev <= l; ++lev) {
      mult[(std::size_t)lev].assign((std::size_t)(q * (index_t(1) << lev)), Cx(0));
      loc[(std::size_t)lev].assign((std::size_t)(q * (index_t(1) << lev)), Cx(0));
    }

    // S2M at the leaves.
    for (index_t bb = 0; bb < nb_leaf; ++bb) {
      Cx* m = mult[(std::size_t)l].data() + q * bb;
      const Cx* ch = charges + bb * ml;
      for (index_t i = 0; i < ml; ++i) {
        const double* col = s2m_op.data() + i * q;
        for (int qq = 0; qq < q; ++qq) m[qq] += T(col[qq]) * ch[i];
      }
    }
    // M2M up to the base.
    for (int lev = l - 1; lev >= b; --lev) {
      const index_t nbl = index_t(1) << lev;
      for (index_t bb = 0; bb < nbl; ++bb) {
        Cx* dst = mult[(std::size_t)lev].data() + q * bb;
        for (int child = 0; child < 2; ++child) {
          const Cx* src = mult[(std::size_t)(lev + 1)].data() + q * (2 * bb + child);
          const double* op = m2m_op.data() + (std::size_t)(child * q) * q;
          for (int k = 0; k < q; ++k)
            for (int qq = 0; qq < q; ++qq) dst[qq] += T(op[qq + k * q]) * src[k];
        }
      }
    }
    // M2L: cousins at levels l..b+1, all non-neighbours at the base.
    for (int lev = l; lev > b; --lev) {
      const index_t nbl = index_t(1) << lev;
      for (index_t bb = 0; bb < nbl; ++bb) {
        const index_t* seps = fmm::cousin_separations(bb % 2 != 0);
        for (int si = 0; si < fmm::kNumCousins; ++si) {
          const auto& tab = m2l_op.at({lev, seps[si]});
          const Cx* src = mult[(std::size_t)lev].data() + q * mod(bb + seps[si], nbl);
          Cx* dst = loc[(std::size_t)lev].data() + q * bb;
          for (int j = 0; j < q; ++j)
            for (int i = 0; i < q; ++i) dst[i] += T(tab[(std::size_t)(i + q * j)]) * src[j];
        }
      }
    }
    {
      const index_t nbl = index_t(1) << b;
      for (index_t bb = 0; bb < nbl; ++bb)
        for (index_t s = 2; s <= nbl - 2; ++s) {
          const auto& tab = m2l_op.at({b, s});
          const Cx* src = mult[(std::size_t)b].data() + q * mod(bb + s, nbl);
          Cx* dst = loc[(std::size_t)b].data() + q * bb;
          for (int j = 0; j < q; ++j)
            for (int i = 0; i < q; ++i) dst[i] += T(tab[(std::size_t)(i + q * j)]) * src[j];
        }
    }
    // L2L down to the leaves.
    for (int lev = b; lev < l; ++lev) {
      const index_t nbl = index_t(1) << lev;
      for (index_t bb = 0; bb < nbl; ++bb) {
        const Cx* src = loc[(std::size_t)lev].data() + q * bb;
        for (int child = 0; child < 2; ++child) {
          Cx* dst = loc[(std::size_t)(lev + 1)].data() + q * (2 * bb + child);
          const double* op = m2m_op.data() + (std::size_t)(child * q) * q;
          // L2L = M2M^T acting on the parent coefficients.
          for (int k = 0; k < q; ++k)
            for (int qq = 0; qq < q; ++qq) dst[qq] += T(op[k + qq * q]) * src[k];
        }
      }
    }

    // L2T + near field, per sorted target.
    std::vector<double> lag(static_cast<std::size_t>(q));
    for (index_t bb = 0; bb < nb_leaf; ++bb) {
      const Cx* lcoef = loc[(std::size_t)l].data() + q * bb;
      for (index_t si = box_start[(std::size_t)bb]; si < box_start[(std::size_t)bb + 1]; ++si) {
        const index_t j = perm[(std::size_t)si];
        const double xj = double(x[(std::size_t)j]);
        // Far field: evaluate the local expansion at the target's param.
        const double zt = 2.0 * (xj - double(bb) * w_leaf) / w_leaf - 1.0;
        fmm::lagrange_eval(q, std::clamp(zt, -1.0, 1.0), lag.data());
        Cx acc(0);
        for (int qq = 0; qq < q; ++qq) acc += T(lag[(std::size_t)qq]) * lcoef[qq];
        // Near field: direct cotangent sums over the three neighbour boxes.
        for (index_t db = -1; db <= 1; ++db) {
          const index_t sb = mod(bb + db, nb_leaf);
          for (index_t i = 0; i < ml; ++i) {
            const index_t m = sb * ml + i;
            if (hit_src[(std::size_t)j] == m) continue;
            // Use the unwrapped position of the neighbour box so the
            // argument stays near zero (cot is 2π-periodic anyway).
            const double tm = (double(bb + db) * ml + double(i)) * 2.0 * pi_v<double> / double(n);
            acc += T(cot((xj - tm) / 2.0)) * charges[m];
          }
        }
        out[j] = acc;
      }
    }
  }

  void apply_transpose(const Cx* charges, Cx* out) const {
    // The transpose swaps source and target roles. With the kernel written
    // as cot((target - source)/2) this is the same tree algorithm with
    //   S2M  <- gather from the nonuniform points (Lagrange at z_j),
    //   M2L  <- the forward tables negated (antisymmetric kernel),
    //   L2T  <- evaluation at the uniform grid (the forward S2M matrix),
    // and M2M/L2L unchanged (basis translations are kernel-independent).
    const index_t nb_leaf = index_t(1) << l;
    std::vector<std::vector<Cx>> mult((std::size_t)l + 1), loc((std::size_t)l + 1);
    for (int lev = b; lev <= l; ++lev) {
      mult[(std::size_t)lev].assign((std::size_t)(q * (index_t(1) << lev)), Cx(0));
      loc[(std::size_t)lev].assign((std::size_t)(q * (index_t(1) << lev)), Cx(0));
    }

    // S2M from the nonuniform points.
    std::vector<double> lag(static_cast<std::size_t>(q));
    for (index_t bb = 0; bb < nb_leaf; ++bb) {
      Cx* m = mult[(std::size_t)l].data() + q * bb;
      for (index_t si = box_start[(std::size_t)bb]; si < box_start[(std::size_t)bb + 1]; ++si) {
        const index_t j = perm[(std::size_t)si];
        const double zj = 2.0 * (double(x[(std::size_t)j]) - double(bb) * w_leaf) / w_leaf - 1.0;
        fmm::lagrange_eval(q, std::clamp(zj, -1.0, 1.0), lag.data());
        for (int qq = 0; qq < q; ++qq) m[qq] += T(lag[(std::size_t)qq]) * charges[j];
      }
    }
    // M2M (identical to the forward pass).
    for (int lev = l - 1; lev >= b; --lev) {
      const index_t nbl = index_t(1) << lev;
      for (index_t bb = 0; bb < nbl; ++bb) {
        Cx* dst = mult[(std::size_t)lev].data() + q * bb;
        for (int child = 0; child < 2; ++child) {
          const Cx* src = mult[(std::size_t)(lev + 1)].data() + q * (2 * bb + child);
          const double* op = m2m_op.data() + (std::size_t)(child * q) * q;
          for (int k = 0; k < q; ++k)
            for (int qq = 0; qq < q; ++qq) dst[qq] += T(op[qq + k * q]) * src[k];
        }
      }
    }
    // M2L with negated tables.
    for (int lev = l; lev > b; --lev) {
      const index_t nbl = index_t(1) << lev;
      for (index_t bb = 0; bb < nbl; ++bb) {
        const index_t* seps = fmm::cousin_separations(bb % 2 != 0);
        for (int si = 0; si < fmm::kNumCousins; ++si) {
          const auto& tab = m2l_op.at({lev, seps[si]});
          const Cx* src = mult[(std::size_t)lev].data() + q * mod(bb + seps[si], nbl);
          Cx* dst = loc[(std::size_t)lev].data() + q * bb;
          for (int j = 0; j < q; ++j)
            for (int i = 0; i < q; ++i) dst[i] -= T(tab[(std::size_t)(i + q * j)]) * src[j];
        }
      }
    }
    {
      const index_t nbl = index_t(1) << b;
      for (index_t bb = 0; bb < nbl; ++bb)
        for (index_t s = 2; s <= nbl - 2; ++s) {
          const auto& tab = m2l_op.at({b, s});
          const Cx* src = mult[(std::size_t)b].data() + q * mod(bb + s, nbl);
          Cx* dst = loc[(std::size_t)b].data() + q * bb;
          for (int j = 0; j < q; ++j)
            for (int i = 0; i < q; ++i) dst[i] -= T(tab[(std::size_t)(i + q * j)]) * src[j];
        }
    }
    // L2L (identical to the forward pass).
    for (int lev = b; lev < l; ++lev) {
      const index_t nbl = index_t(1) << lev;
      for (index_t bb = 0; bb < nbl; ++bb) {
        const Cx* src = loc[(std::size_t)lev].data() + q * bb;
        for (int child = 0; child < 2; ++child) {
          Cx* dst = loc[(std::size_t)(lev + 1)].data() + q * (2 * bb + child);
          const double* op = m2m_op.data() + (std::size_t)(child * q) * q;
          for (int k = 0; k < q; ++k)
            for (int qq = 0; qq < q; ++qq) dst[qq] += T(op[k + qq * q]) * src[k];
        }
      }
    }
    // L2T at the uniform grid + direct near field.
    for (index_t bb = 0; bb < nb_leaf; ++bb) {
      const Cx* lcoef = loc[(std::size_t)l].data() + q * bb;
      for (index_t i = 0; i < ml; ++i) {
        const index_t m = bb * ml + i;
        Cx acc(0);
        const double* col = s2m_op.data() + i * q;
        for (int qq = 0; qq < q; ++qq) acc += T(col[qq]) * lcoef[qq];
        // Near field: nonuniform charges in the three neighbour boxes.
        const double tm_unwrapped = double(m) * 2.0 * pi_v<double> / double(n);
        for (index_t db = -1; db <= 1; ++db) {
          const index_t sb = mod(bb + db, nb_leaf);
          // Unwrap the neighbour box so arguments stay near zero.
          const double shift = (double(bb + db) - double(sb)) * w_leaf;
          for (index_t si = box_start[(std::size_t)sb]; si < box_start[(std::size_t)sb + 1];
               ++si) {
            const index_t j = perm[(std::size_t)si];
            if (hit_src[(std::size_t)j] == m) continue;
            const double xj = double(x[(std::size_t)j]) + shift;
            acc += T(cot((xj - tm_unwrapped) / 2.0)) * charges[j];
          }
        }
        out[m] = acc;
      }
    }
  }

  void apply_transpose_direct(const Cx* charges, Cx* out) const {
    for (index_t m = 0; m < n; ++m) {
      Cx acc(0);
      const double tm = 2.0 * pi_v<double> * double(m) / double(n);
      for (std::size_t j = 0; j < x.size(); ++j) {
        if (hit_src[j] == m) continue;
        acc += T(cot((double(x[j]) - tm) / 2.0)) * charges[j];
      }
      out[m] = acc;
    }
  }

  void apply_direct(const Cx* charges, Cx* out) const {
    for (std::size_t j = 0; j < x.size(); ++j) {
      Cx acc(0);
      for (index_t m = 0; m < n; ++m) {
        if (hit_src[j] == m) continue;
        const double tm = 2.0 * pi_v<double> * double(m) / double(n);
        acc += T(cot((double(x[j]) - tm) / 2.0)) * charges[m];
      }
      out[j] = acc;
    }
  }
};

template <typename T>
NonuniformFmm<T>::NonuniformFmm(index_t n, std::vector<T> targets, int q, index_t ml, int b)
    : impl_(std::make_unique<Impl>(n, std::move(targets), q, ml, b)) {}
template <typename T>
NonuniformFmm<T>::~NonuniformFmm() = default;
template <typename T>
NonuniformFmm<T>::NonuniformFmm(NonuniformFmm&&) noexcept = default;
template <typename T>
NonuniformFmm<T>& NonuniformFmm<T>::operator=(NonuniformFmm&&) noexcept = default;

template <typename T>
index_t NonuniformFmm<T>::num_sources() const {
  return impl_->n;
}
template <typename T>
index_t NonuniformFmm<T>::num_targets() const {
  return static_cast<index_t>(impl_->x.size());
}
template <typename T>
const std::vector<std::pair<index_t, index_t>>& NonuniformFmm<T>::exact_hits() const {
  return impl_->hits;
}
template <typename T>
void NonuniformFmm<T>::apply(const std::complex<T>* charges, std::complex<T>* out) const {
  impl_->apply(charges, out);
}
template <typename T>
void NonuniformFmm<T>::apply_transpose(const std::complex<T>* charges,
                                       std::complex<T>* out) const {
  impl_->apply_transpose(charges, out);
}
template <typename T>
void NonuniformFmm<T>::apply_direct(const std::complex<T>* charges, std::complex<T>* out) const {
  impl_->apply_direct(charges, out);
}
template <typename T>
void NonuniformFmm<T>::apply_transpose_direct(const std::complex<T>* charges,
                                              std::complex<T>* out) const {
  impl_->apply_transpose_direct(charges, out);
}

template class NonuniformFmm<float>;
template class NonuniformFmm<double>;

}  // namespace fmmfft::nufft
