// Figure 9 — dependence on the expansion order Q.
//
// Paper (top): N=2^28, P=128, M_L=64, B=3, G=2 — flop count and model time
// grow only weakly with Q (the far field is a minority of the work at
// M_L=64). Paper (bottom): achieved relative l2 error of the full
// double-complex FMM-FFT vs Q against cuFFTXT, showing odd/even
// staircasing and saturation at machine precision around Q=18; lower-Q
// (less accurate) transforms could be ~1.5x faster.
//
// Here: (top) the same model sweep; (bottom) native error measurement of
// the real pipeline against the exact FFT, uniform [-1,1] inputs, both
// precisions.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 9: Q dependence — performance (top) and accuracy (bottom)",
                      "Fig. 9 — N=2^28, P=128, ML=64, B=3, G=2 (top); error vs Q (bottom)");

  const index_t n = index_t(1) << 28;
  const int g = 2;
  const auto arch = model::p100_nvlink(g);
  const model::Workload w{n, true, true};

  std::printf("(top) model sweep\n");
  Table t({"Q", "FMM ops [GFlop]", "model [ms]"});
  for (int q = 2; q <= 24; q += 2) {
    fmm::Params prm{n, 128, 64, 3, q};
    if (!prm.is_admissible(g)) continue;
    t.row()
        .col(q)
        .col(model::paper_fmm_flops(prm, w.c(), g) / 1e9, 1)
        .col(model::fmm_stage_seconds(prm, w, arch, false) * 1e3, 1);
  }
  t.print();

  std::printf("\n(bottom) native accuracy of the full FMM-FFT vs the exact FFT\n");
  const index_t na = index_t(1) << 16;
  std::vector<std::complex<double>> x((std::size_t)na), ref(x.size());
  fill_uniform(x.data(), na, 777);
  core::exact_fft(na, x.data(), ref.data());
  std::vector<std::complex<float>> xf(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    xf[i] = {float(x[i].real()), float(x[i].imag())};

  Table e({"Q", "rel l2 error (CD)", "rel l2 error (CF)"});
  for (int q = 2; q <= 24; ++q) {
    fmm::Params prm{na, 128, 16, 3, q};
    std::vector<std::complex<double>> got(x.size());
    core::FmmFft<std::complex<double>> plan(prm);
    plan.execute(x.data(), got.data());
    const double err_d = rel_l2_error(got.data(), ref.data(), na);

    double err_f = 0;
    {
      core::FmmFft<std::complex<float>> planf(prm);
      std::vector<std::complex<float>> gotf(x.size());
      planf.execute(xf.data(), gotf.data());
      std::vector<std::complex<double>> gd(x.size());
      for (std::size_t i = 0; i < gd.size(); ++i)
        gd[i] = {double(gotf[i].real()), double(gotf[i].imag())};
      err_f = rel_l2_error(gd.data(), ref.data(), na);
    }
    e.row().col(q).col_sci(err_d).col_sci(err_f);
  }
  e.print();
  std::printf("expected shape (paper): error staircases down with odd/even Q pairs,\n"
              "saturating near machine precision (CD ~1e-15 at Q>=18, CF ~1e-7 at Q>=8).\n");
  return 0;
}
