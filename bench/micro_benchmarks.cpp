// google-benchmark microbenchmarks for the substrates: GEMM, BatchedGEMM,
// FFT plans, and the FMM engine's individual stages. These complement the
// figure harnesses with statistically robust per-kernel numbers.
#include <benchmark/benchmark.h>

#include <complex>
#include <cstring>

#include "blas/blas.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fmm/engine.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace {

using namespace fmmfft;

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Buffer<double> a(n * n), b(n * n), c(n * n);
  fill_uniform(a.data(), n * n, 1);
  fill_uniform(b.data(), n * n, 2);
  for (auto _ : state) {
    blas::gemm<double>(blas::Op::N, blas::Op::N, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                       c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] =
      benchmark::Counter(blas::gemm_flops(n, n, n) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedGemm(benchmark::State& state) {
  const index_t n = state.range(0), batch = 64;
  Buffer<double> a(n * n * batch), b(n * n * batch), c(n * n * batch);
  fill_uniform(a.data(), a.size(), 1);
  fill_uniform(b.data(), b.size(), 2);
  for (auto _ : state) {
    blas::gemm_strided_batched<double>(blas::Op::N, blas::Op::N, n, n, n, 1.0, a.data(), n,
                                       n * n, b.data(), n, n * n, 0.0, c.data(), n, n * n,
                                       batch);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] =
      benchmark::Counter(batch * blas::gemm_flops(n, n, n) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedGemm)->Arg(16)->Arg(32)->Arg(64);

void BM_Fft1d(benchmark::State& state) {
  const index_t n = index_t(1) << state.range(0);
  fft::Plan1D<double> plan(n);
  Buffer<std::complex<double>> x(n);
  fill_uniform(x.data(), n, 3);
  for (auto _ : state) {
    plan.execute(x.data(), fft::Direction::Forward);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      fft::fft_flops(n) * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft1d)->Arg(10)->Arg(14)->Arg(18);

void BM_FmmStage(benchmark::State& state) {
  // Full single-node FMM pipeline at a moderate size.
  fmm::Params prm{1 << 16, 64, 8, 3, 16};
  fmm::Engine<double> eng(prm, 2);
  Buffer<std::complex<double>> x(prm.n);
  fill_uniform(x.data(), prm.n, 4);
  std::memcpy(eng.source_box(0), x.data(), sizeof(std::complex<double>) * prm.n);
  for (auto _ : state) {
    eng.reset_stats();
    eng.run_single_node();
    benchmark::DoNotOptimize(eng.target_box(0));
  }
  double flops = 0;
  for (const auto& st : eng.stats()) flops += st.flops;
  state.counters["GFlop/s"] =
      benchmark::Counter(flops * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FmmStage);

// Observability hook overhead. The disabled path must be one relaxed load
// and a branch per hook; the enabled path shows what turning it on costs.
void BM_SpanDisabled(benchmark::State& state) {
  obs::disable();
  for (auto _ : state) {
    FMMFFT_SPAN("bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::enable_tracing(true);
  obs::Recorder::global().clear();
  for (auto _ : state) {
    FMMFFT_SPAN("bench");
    benchmark::ClobberMemory();
    if (state.iterations() % (obs::Recorder::kLaneCapacity / 2) == 0)
      obs::Recorder::global().clear();  // keep the ring from saturating
  }
  obs::disable();
  obs::Recorder::global().clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_FlightDisabled(benchmark::State& state) {
  obs::health::enable_flight(false);
  for (auto _ : state) {
    FMMFFT_FLIGHT(Mark, 1, 0, "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FlightDisabled);

void BM_FlightEnabled(benchmark::State& state) {
  // The ring wraps by design, so no periodic clear is needed here.
  obs::health::enable_flight(true);
  for (auto _ : state) {
    FMMFFT_FLIGHT(Mark, 1, 0, "bench");
    benchmark::ClobberMemory();
  }
  obs::health::enable_flight(false);
  obs::health::flight_clear();
}
BENCHMARK(BM_FlightEnabled);

void BM_CountDisabled(benchmark::State& state) {
  obs::disable();
  for (auto _ : state) {
    FMMFFT_COUNT("bench.count", 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CountDisabled);

void BM_CountEnabled(benchmark::State& state) {
  obs::enable_metrics(true);
  for (auto _ : state) {
    FMMFFT_COUNT("bench.count", 1);
    benchmark::ClobberMemory();
  }
  obs::disable();
  obs::Metrics::global().reset();
}
BENCHMARK(BM_CountEnabled);

}  // namespace

BENCHMARK_MAIN();
