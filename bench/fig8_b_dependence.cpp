// Figure 8 — dependence of performance on the base level B.
//
// Paper: N=2^27, P=256, M_L=64, G=2, CD, B = 3..11. Raising B trades the
// latency/communication-dominated top of the tree for a dense all-pairs
// M2L after one allgather; only for B >= 11 do the extra base-level flops
// start to hurt. Conclusion: B > 2 combats local-essential-tree
// replication and latency "for free" at small/moderate G.
//
// Here: flops and model/simulated time per B on 2xP100, plus a native
// sweep (real wall times, smaller N) confirming the flat region and the
// eventual blow-up.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "dist/schedules.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 8: base-level B dependence of the FMM stage",
                      "Fig. 8 — N=2^27, P=256, ML=64, G=2, CD; B=3..11");

  const index_t n = index_t(1) << 27;
  const int g = 2;
  const auto arch = model::p100_nvlink(g);
  const model::Workload w{n, true, true};

  Table t({"B", "base boxes", "FMM ops [GFlop]", "model [ms]", "simulated [ms]", "launches"});
  for (int b = 3; b <= 11; ++b) {
    fmm::Params prm{n, 256, 64, b, 16};
    if (!prm.is_admissible(g)) continue;
    const double flops = model::paper_fmm_flops(prm, w.c(), g);
    const double model_t = model::fmm_stage_seconds(prm, w, arch, false);
    auto sched = dist::fmmfft_schedule(prm, w, g);
    auto res = sched.simulate(arch);
    double fmm_sim = 0;
    for (const auto& [label, sec] : res.label_seconds)
      if (label.rfind("FFT-", 0) != 0 && label.rfind("A2A", 0) != 0 &&
          label.rfind("COMM", 0) != 0 && label != "POST" &&
          label.find("arrive") == std::string::npos)
        fmm_sim += sec;
    t.row()
        .col(b)
        .col((long long)prm.boxes(b))
        .col(flops / 1e9, 1)
        .col(model_t * 1e3, 1)
        .col(fmm_sim / g * 1e3, 1)
        .col((long long)sched.kernel_launches());
  }
  t.print();
  std::printf("expected shape (paper): flat through B~10, the 2^B(2^B-3) base-level\n"
              "flops only bite at B >= 11; fewer launches at higher B.\n");

  std::printf("\nnative sweep (N=2^18, P=64, ML=4, L=10, real wall times):\n");
  Table tn({"B", "FMM ops [GFlop]", "measured [ms]"});
  const index_t nn = index_t(1) << 18;
  for (int b = 2; b <= 9; ++b) {
    fmm::Params prm{nn, 64, 4, b, 16};
    if (!prm.is_admissible(1)) continue;
    std::vector<std::complex<double>> x((std::size_t)nn), y(x.size());
    fill_uniform(x.data(), nn, b);
    core::FmmFft<std::complex<double>> plan(prm);
    plan.execute(x.data(), y.data());
    tn.row()
        .col(b)
        .col(plan.profile().fmm_flops() / 1e9, 2)
        .col(plan.profile().fmm_seconds() * 1e3, 1);
  }
  tn.print();
  return 0;
}
