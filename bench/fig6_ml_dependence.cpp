// Figure 6 — dependence of FMM-stage performance on M_L.
//
// Paper: N=2^27, P=256, B=3, G=2, CD. Total flops grow with M_L (S2T is
// O(M_L)) while the far field shrinks; the flop-optimal M_L is NOT the
// time-optimal one because S2T's computational intensity also grows with
// M_L. The paper's optimum is M_L = 64, higher than the flop-count optimum
// of ~32 used by Edelman/Langston.
//
// Here: the same sweep — flops from the §5.1 counts, model time from the
// Eq.-3 roofline, "measured" from the schedule simulation on 2xP100 — plus
// a native sweep with real wall times at host scale.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "dist/schedules.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 6: M_L dependence of the FMM stage",
                      "Fig. 6 — N=2^27, P=256, B=3, G=2, CD");

  const index_t n = index_t(1) << 27;
  const int g = 2;
  const auto arch = model::p100_nvlink(g);
  const model::Workload w{n, true, true};

  Table t({"ML", "L", "FMM ops [GFlop]", "model [ms]", "simulated [ms]"});
  double best_flops_ml = 0, best_flops = 1e300;
  double best_time_ml = 0, best_time = 1e300;
  for (index_t ml = 1; ml <= 1024; ml *= 2) {
    fmm::Params prm{n, 256, ml, 3, 16};
    if (!prm.is_admissible(g)) continue;
    const double flops = model::paper_fmm_flops(prm, w.c(), g);
    const double model_t = model::fmm_stage_seconds(prm, w, arch, false);
    // Simulated FMM-only time: schedule the full pipeline and take the
    // FMM-stage busy time per device.
    auto res = dist::fmmfft_schedule(prm, w, g).simulate(arch);
    double meas = 0;
    for (const auto& [label, sec] : res.label_seconds)
      if (label.rfind("FFT-", 0) != 0 && label.rfind("A2A", 0) != 0 &&
          label.rfind("COMM", 0) != 0 && label != "POST" &&
          label.find("arrive") == std::string::npos)
        meas += sec;
    meas /= g;
    if (flops < best_flops) {
      best_flops = flops;
      best_flops_ml = double(ml);
    }
    if (meas < best_time) {
      best_time = meas;
      best_time_ml = double(ml);
    }
    t.row()
        .col((long long)ml)
        .col(prm.l())
        .col(flops / 1e9, 1)
        .col(model_t * 1e3, 1)
        .col(meas * 1e3, 1);
  }
  t.print();
  std::printf("flop-optimal ML = %.0f, time-optimal ML = %.0f "
              "(paper: time optimum at ML=64 > flop optimum ~32)\n",
              best_flops_ml, best_time_ml);

  std::printf("\nnative sweep (N=2^20, P=64, B=3, real wall times):\n");
  Table tn({"ML", "FMM ops [GFlop]", "measured [ms]"});
  const index_t nn = index_t(1) << 20;
  for (index_t ml = 2; ml <= 256; ml *= 2) {
    fmm::Params prm{nn, 64, ml, 3, 16};
    if (!prm.is_admissible(1)) continue;
    std::vector<std::complex<double>> x((std::size_t)nn), y(x.size());
    fill_uniform(x.data(), nn, ml);
    core::FmmFft<std::complex<double>> plan(prm);
    plan.execute(x.data(), y.data());
    tn.row()
        .col((long long)ml)
        .col(plan.profile().fmm_flops() / 1e9, 2)
        .col(plan.profile().fmm_seconds() * 1e3, 1);
  }
  tn.print();
  return 0;
}
