// Figure 3 — speedup of the FMM-FFT over the baseline 1D FFT.
//
// Paper: six panels — {complex-float, complex-double} × {2xK40c/PCIe,
// 2xP100/NVLink, 8xP100/NVLink} — for N = 2^12..2^29. For each N the
// fastest FMM-FFT over the parameter search is reported together with the
// roofline-model bound ("FMM-FFT Model") and the 2D-FFT budget bar.
// Headline numbers: ~1.0-1.05x on 2xK40c at large N, 1.2-1.3x on 2xP100,
// 1.8-2.14x on 8xP100; >1.4x in the latency-bound small-N regime.
//
// Here: per (precision, system, N) we search the admissible parameter
// space with the §5 model, simulate the FMM-FFT and baseline schedules
// under the paper's architecture parameters, and report
//   measured  = simulated-schedule speedup,
//   model     = pure-roofline speedup bound (100% efficiency, no latency),
//   2D FFT    = speedup of the one-transpose 2D FFT (the budget bar).
// Accuracy of the underlying numerics is asserted natively per precision.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "dist/schedules.hpp"

namespace {

using namespace fmmfft;

void panel(const char* title, const model::ArchParams& arch, bool is_double, int lg_max) {
  std::printf("\n--- %s ---\n", title);
  Table t({"N", "best params (P,ML,B,Q)", "FMM-FFT [ms]", "1D FFT [ms]", "speedup",
           "model bound", "2D-FFT speedup"});
  const int g = arch.num_devices;
  const int q = is_double ? 16 : 8;
  for (int lg = 12; lg <= lg_max; ++lg) {
    const index_t n = index_t(1) << lg;
    const model::Workload w{n, true, is_double};
    fmm::Params prm;
    try {
      prm = model::search_best_params(n, g, w, arch, q);
    } catch (const Error&) {
      continue;  // no admissible parameters at this tiny size
    }
    const double t_fmm = dist::fmmfft_schedule(prm, w, g).simulate(arch).total_seconds;
    const double t_base = dist::baseline1d_schedule(n, w, g).simulate(arch).total_seconds;
    const double model_fmm = model::fmmfft_seconds(prm, w, arch, /*apply_efficiency=*/false);
    const double model_base = model::baseline1d_seconds(w, arch, /*apply_efficiency=*/false);
    const index_t m2d = prm.m();
    const double t_2d =
        dist::dist2dfft_schedule(m2d, n / m2d, w, g).simulate(arch).total_seconds;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%lld,%lld,%d,%d", (long long)prm.p, (long long)prm.ml,
                  prm.b, prm.q);
    t.row()
        .col("2^" + std::to_string(lg))
        .col(buf)
        .col(t_fmm * 1e3, 3)
        .col(t_base * 1e3, 3)
        .col(t_base / t_fmm, 2)
        .col(model_base / model_fmm, 2)
        .col(t_base / t_2d, 2);
  }
  t.print();
}

template <typename Cx>
void accuracy_check(const char* label, double bound) {
  const fmm::Params prm{1 << 16, 128, 16, 3, std::is_same_v<Cx, std::complex<double>> ? 18 : 8};
  std::vector<Cx> x((std::size_t)prm.n), got(x.size());
  fill_uniform(x.data(), prm.n, 42);
  core::FmmFft<Cx> plan(prm);
  plan.execute(x.data(), got.data());
  std::vector<std::complex<double>> xd(x.size()), ref(x.size()), gd(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xd[i] = {double(x[i].real()), double(x[i].imag())};
    gd[i] = {double(got[i].real()), double(got[i].imag())};
  }
  core::exact_fft(prm.n, xd.data(), ref.data());
  const double err = rel_l2_error(gd.data(), ref.data(), prm.n);
  std::printf("accuracy (%s, native execution): rel l2 = %.2e (paper bound: < %.0e) %s\n",
              label, err, bound, err < bound ? "OK" : "VIOLATED");
}

}  // namespace

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 3: FMM-FFT speedup over the 1D FFT baseline",
                      "Fig. 3 — six panels, speedup vs N with model bound and 2D-FFT budget");

  accuracy_check<std::complex<float>>("ComplexFloat", 4e-7);
  accuracy_check<std::complex<double>>("ComplexDouble", 2e-14);

  panel("ComplexFloat,  2xK40c, PCIe    (paper: 1.66..1.04)", model::k40c_pcie(2), false, 27);
  panel("ComplexDouble, 2xK40c, PCIe    (paper: 1.69..1.05)", model::k40c_pcie(2), true, 27);
  panel("ComplexFloat,  2xP100, NVLINK  (paper: 1.20..1.29)", model::p100_nvlink(2), false, 28);
  panel("ComplexDouble, 2xP100, NVLINK  (paper: 1.15..1.29)", model::p100_nvlink(2), true, 27);
  panel("ComplexFloat,  8xP100, NVLINK  (paper: 1.44..2.09)", model::p100_nvlink(8), false, 29);
  panel("ComplexDouble, 8xP100, NVLINK  (paper: 1.78..2.14)", model::p100_nvlink(8), true, 28);

  std::printf(
      "\nexpected shape (paper): consistent >1x wins on P100 growing with G; marginal\n"
      "(~1.0x) on 2xK40c at large N but >1.4x in the small-N latency regime; the\n"
      "2D-FFT budget approaches ~3x at large N.\n");
  return 0;
}
