// Figure 2 — execution profiles of the baseline 1D FFT vs the FMM-FFT.
//
// Paper: nvvp timelines of double-complex N=2^27 on 2xP100/NVLink. The 1D
// cuFFTXT profile is dominated by three all-to-all transposes (yellow);
// the FMM-FFT profile shows 255 FMMs of size 524k computed in 32 ms with
// 35 kernel launches, followed by a 2D FFT with one overlapped transpose.
//
// Here: the same configuration simulated on the 2xP100 model. We print the
// kernel-launch census (which must be exactly the paper's 35), per-label
// busy time, comm/compute balance for both algorithms, and write Chrome
// trace JSONs for visual inspection. A native-scale run (N=2^20, real
// numerics) cross-checks the census and records measured stage times.
#include <complex>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dist/dfmmfft.hpp"
#include "dist/schedules.hpp"
#include "obs/analyze.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 2: 1D FFT vs FMM-FFT execution profiles",
                      "Fig. 2 — profiles, N=2^27, CD, 2xP100, P=256 ML=64 B=3 Q=16");

  const fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};
  const model::Workload w{prm.n, true, true};
  const int g = 2;
  const auto arch = model::p100_nvlink(g);

  auto fsched = dist::fmmfft_schedule(prm, w, g);
  auto bsched = dist::baseline1d_schedule(prm.n, w, g);
  auto fres = fsched.simulate(arch);
  auto bres = bsched.simulate(arch);

  // Kernel-launch census of the FMM stage on device 0 (paper: 35 total).
  std::map<std::string, int> census;
  for (const auto& op : fsched.ops()) {
    if (op.kind != sim::Op::Kind::Kernel || op.device != 0) continue;
    if (op.label == "POST" || op.label == "SYNC" || op.label.rfind("FFT-", 0) == 0 ||
        op.label.rfind("A2A", 0) == 0)
      continue;
    std::string key = op.label;
    if (key.rfind("M2M-", 0) == 0) key = "M2M (per level)";
    if (key.rfind("L2L-", 0) == 0) key = "L2L (per level)";
    if (key.rfind("M2L-", 0) == 0 && key != "M2L-B") key = "M2L-l (per level)";
    census[key]++;
  }
  int total = 0;
  std::printf("FMM kernel launch census, per device (paper: 35 launches):\n");
  for (const auto& [k, v] : census) {
    std::printf("  %-18s %d\n", k.c_str(), v);
    total += v;
  }
  std::printf("  %-18s %d   <-- paper: S2M 1, M2M 10, S2T 1, M2L 11, Reduce 1, L2L 10, L2T 1\n\n",
              "TOTAL", total);
  std::printf("P-1 = %lld FMMs of size %lld x %lld\n\n", (long long)(prm.p - 1),
              (long long)prm.m(), (long long)prm.m());

  auto busy = [](const sim::SimResult& r, const char* prefix) {
    double s = 0;
    for (const auto& [label, sec] : r.label_seconds)
      if (label.rfind(prefix, 0) == 0) s += sec;
    return s;
  };

  Table t({"algorithm", "makespan [ms]", "kernel busy [ms]", "comm busy [ms]",
           "comm/makespan per dev"});
  t.row()
      .col("1D FFT (3 transposes)")
      .col(bres.total_seconds * 1e3, 2)
      .col(bres.kernel_busy * 1e3, 2)
      .col(bres.comm_busy * 1e3, 2)
      .col(bres.comm_busy / g / bres.total_seconds, 2);
  t.row()
      .col("FMM-FFT (1 transpose)")
      .col(fres.total_seconds * 1e3, 2)
      .col(fres.kernel_busy * 1e3, 2)
      .col(fres.comm_busy * 1e3, 2)
      .col(fres.comm_busy / g / fres.total_seconds, 2);
  t.print();

  double fmm_kernels = 0;
  for (const auto& [label, sec] : fres.label_seconds)
    if (label.rfind("FFT-", 0) != 0 && label.rfind("A2A", 0) != 0 &&
        label.rfind("COMM", 0) != 0 && label.find("arrive") == std::string::npos)
      fmm_kernels += sec;
  std::printf("\nsimulated FMM stage busy time: %.1f ms per device (paper measured: 32 ms)\n",
              fmm_kernels / g * 1e3);
  std::printf("FMM halo/gather comm: %.3f ms total (hidden under compute)\n",
              busy(fres, "COMM-") * 1e3);

  // Timeline analysis: where the makespan goes, and — the paper's §5.3
  // question — whether the all-to-all sits on the critical path.
  const obs::Report frep = obs::analyze(fsched, fres, arch);
  const obs::Report brep = obs::analyze(bsched, bres, arch);
  std::printf("\n--- FMM-FFT timeline analysis ---\n%s", frep.to_string().c_str());
  std::printf("\n--- 1D FFT baseline timeline analysis ---\n%s", brep.to_string().c_str());

  // Traces and reports go under artifacts/, not the repo root.
  std::filesystem::create_directories("artifacts");
  {
    std::ofstream os("artifacts/fig2_fmmfft_trace.json");
    fsched.write_chrome_trace(fres, os);
  }
  {
    std::ofstream os("artifacts/fig2_baseline_trace.json");
    bsched.write_chrome_trace(bres, os);
  }
  {
    std::ofstream os("artifacts/fig2_fmmfft_report.json");
    frep.write_json(os);
    os << "\n";
  }
  {
    std::ofstream os("artifacts/fig2_baseline_report.json");
    brep.write_json(os);
    os << "\n";
  }
  std::printf(
      "\nChrome traces written: artifacts/fig2_fmmfft_trace.json, "
      "artifacts/fig2_baseline_trace.json\n"
      "Analyzer reports written: artifacts/fig2_fmmfft_report.json, "
      "artifacts/fig2_baseline_report.json\n");

  // Native-scale cross-check with real numerics.
  {
    const fmm::Params small{index_t(1) << 20, 256, 16, 3, 16};
    std::vector<std::complex<double>> x((std::size_t)small.n), y(x.size());
    fill_uniform(x.data(), small.n, 9);
    dist::DistFmmFft<std::complex<double>> plan(small, g);
    plan.execute(x.data(), y.data());
    int launches = 0;
    double sec = 0;
    for (const auto& st : plan.engine_stats(0))
      if (st.kernel != fmm::KernelClass::Copy) {
        ++launches;
        sec += st.seconds;
      }
    std::printf("\nnative cross-check (N=2^20, real numerics, G=2): %d FMM launches/device, "
                "%.1f ms measured FMM compute on this host\n",
                launches, sec * 1e3);
  }
  return 0;
}
