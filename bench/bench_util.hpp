// Shared helpers for the figure-reproduction benches: native host
// calibration (gamma/beta measured from the BLAS substrate), workload
// construction, and uniform headers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "model/arch.hpp"
#include "model/counts.hpp"

namespace fmmfft::bench {

/// Measure this host's practical GEMM flop rates and stream bandwidth, the
/// native analogue of §5.4's "practical architecture parameters".
struct NativeRates {
  double gemm_f32 = 0;  ///< flop/s
  double gemm_f64 = 0;
  double stream_bw = 0;  ///< bytes/s
};

inline NativeRates calibrate_native() {
  NativeRates r;
  const index_t n = 192;
  {
    Buffer<float> a(n * n), b(n * n), c(n * n);
    fill_uniform(a.data(), n * n, 1);
    fill_uniform(b.data(), n * n, 2);
    double sec = time_best([&] {
      blas::gemm<float>(blas::Op::N, blas::Op::N, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
                        c.data(), n);
    });
    r.gemm_f32 = blas::gemm_flops(n, n, n) / sec;
  }
  {
    Buffer<double> a(n * n), b(n * n), c(n * n);
    fill_uniform(a.data(), n * n, 3);
    fill_uniform(b.data(), n * n, 4);
    double sec = time_best([&] {
      blas::gemm<double>(blas::Op::N, blas::Op::N, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                         c.data(), n);
    });
    r.gemm_f64 = blas::gemm_flops(n, n, n) / sec;
  }
  {
    const index_t len = 1 << 22;  // 32 MiB of doubles: past L2/L3
    Buffer<double> a(len), b(len);
    fill_uniform(a.data(), len, 5);
    double sec = time_best([&] {
      for (index_t i = 0; i < len; ++i) b[i] = a[i] * 1.0000001 + 0.5;
    });
    r.stream_bw = 2.0 * double(len) * sizeof(double) / sec;
  }
  return r;
}

inline model::ArchParams native_arch(int g) {
  auto r = calibrate_native();
  return model::native_host(g, r.gemm_f32, r.gemm_f64, r.stream_bw);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=====================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=====================================================================\n");
}

}  // namespace fmmfft::bench
