// Benchmark regression runner: simulate the canonical paper configurations
// (the Fig. 3/5 shapes) and emit a schema-versioned JSON of per-config
// makespans, critical-path composition and utilization.
//
// Timings come from the event-driven schedule simulation, a pure function
// of the plan and the architecture parameters — so the numbers are exactly
// reproducible across machines and runs, and the committed
// BENCH_fmmfft.json baseline turns any change to the schedule builders,
// simulator or model into a visible diff. tools/bench_compare.py diffs a
// fresh run against the baseline (tools/check.sh runs it as a gate); to
// refresh after an intentional perf change:
//
//   build/bench/bench_runner BENCH_fmmfft.json
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "dist/schedules.hpp"
#include "obs/analyze.hpp"
#include "obs/trace_writer.hpp"

namespace {

using namespace fmmfft;

struct Config {
  std::string name;
  model::ArchParams arch;
  fmm::Params prm;
  model::Workload w;
};

std::vector<Config> canonical_configs() {
  std::vector<Config> cfgs;
  auto add = [&](std::string name, model::ArchParams arch, index_t n, int q,
                 const fmm::Params* fixed = nullptr) {
    const model::Workload w{n, /*is_complex=*/true, /*is_double=*/true};
    fmm::Params prm = fixed ? *fixed
                            : model::search_best_params(n, arch.num_devices, w, arch, q);
    cfgs.push_back({std::move(name), std::move(arch), prm, w});
  };
  // Fig. 2's canonical point, pinned to the paper's plan (35 launches).
  const fmm::Params fig2{index_t(1) << 27, 256, 64, 3, 16};
  add("2xP100-n27-fig2", model::p100_nvlink(2), fig2.n, 16, &fig2);
  // Fig. 3 panels at their large-N endpoints, best-params as in the paper.
  add("2xK40c-n24-best", model::k40c_pcie(2), index_t(1) << 24, 16);
  add("8xP100-n27-best", model::p100_nvlink(8), index_t(1) << 27, 16);
  // Fig. 5's small-N regime, where launch/sync overheads dominate.
  add("8xP100-n20-best", model::p100_nvlink(8), index_t(1) << 20, 16);
  return cfgs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fmmfft.json";
  bench::print_header("Benchmark regression runner",
                      "canonical Fig. 2/3/5 shapes, simulated (deterministic)");

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::JsonWriter jw(os);
  jw.begin_object();
  jw.kv("schema", "fmmfft.bench.v1");
  jw.key("configs");
  jw.begin_array();

  Table t({"config", "fmmfft [ms]", "baseline [ms]", "speedup", "crit comm %", "mean util %"});
  for (const Config& c : canonical_configs()) {
    const int g = c.arch.num_devices;
    auto fsched = dist::fmmfft_schedule(c.prm, c.w, g);
    auto bsched = dist::baseline1d_schedule(c.prm.n, c.w, g);
    const auto fres = fsched.simulate(c.arch);
    const auto bres = bsched.simulate(c.arch);
    const auto rep = obs::analyze(fsched, fres, c.arch);

    double mean_util = 0;
    for (const auto& [dev, busy] : rep.device_busy) {
      (void)busy;
      mean_util += rep.device_utilization(dev);
    }
    if (!rep.device_busy.empty()) mean_util /= double(rep.device_busy.size());

    jw.begin_object();
    jw.kv("name", c.name);
    jw.kv("arch", c.arch.name);
    jw.kv("devices", double(g));
    jw.kv("log2n", double(ilog2_exact(c.prm.n)));
    jw.key("params");
    jw.begin_object();
    jw.kv("p", double(c.prm.p));
    jw.kv("ml", double(c.prm.ml));
    jw.kv("b", double(c.prm.b));
    jw.kv("q", double(c.prm.q));
    jw.end_object();
    jw.kv("fmmfft_seconds", fres.total_seconds);
    jw.kv("baseline_seconds", bres.total_seconds);
    jw.kv("speedup", bres.total_seconds / fres.total_seconds);
    jw.kv("kernel_launches", double(fsched.kernel_launches()));
    jw.kv("comm_bytes", fsched.total_comm_bytes());
    // Traffic track (bytes-moved regression gate): totals over the analyzer's
    // per-stage rollup of the scheduled ops' exact §5 byte/flop counts.
    double tr_flops = 0, tr_bytes = 0, tr_comm = 0;
    for (const auto& [stage, st] : rep.stage_traffic) {
      (void)stage;
      tr_flops += st.flops;
      tr_bytes += st.bytes;
      tr_comm += st.comm_bytes;
    }
    const auto a2a_it = rep.stage_traffic.find("a2a");
    const double a2a_bytes = a2a_it != rep.stage_traffic.end() ? a2a_it->second.comm_bytes : 0.0;
    // §5.3 exact transpose payload: every device ships all but its own slab.
    const double a2a_model =
        g > 1 ? (double(g) - 1.0) / double(g) * double(c.prm.n) * 2.0 * sizeof(double) : 0.0;
    if (std::fabs(a2a_bytes - a2a_model) > 1e-6 * std::max(a2a_model, 1.0)) {
      std::fprintf(stderr, "%s: A2A payload %.17g != model %.17g\n", c.name.c_str(), a2a_bytes,
                   a2a_model);
      return 1;
    }
    jw.key("traffic");
    jw.begin_object();
    jw.kv("flops", tr_flops);
    jw.kv("bytes", tr_bytes);
    jw.kv("comm_bytes", tr_comm);
    jw.kv("a2a_bytes", a2a_bytes);
    jw.kv("words_per_flop", tr_flops > 0 ? (tr_bytes + tr_comm) / (8.0 * tr_flops) : 0.0);
    jw.end_object();
    jw.key("critical");
    jw.begin_object();
    jw.kv("coverage", rep.critical_coverage);
    jw.kv("compute", rep.crit_compute);
    jw.kv("bandwidth", rep.crit_bandwidth);
    jw.kv("launch", rep.crit_launch);
    jw.kv("comm", rep.crit_comm);
    jw.kv("sync", rep.crit_sync);
    jw.kv("a2a_seconds", rep.critical_stage_seconds("a2a"));
    jw.end_object();
    jw.kv("mean_device_utilization", mean_util);
    jw.end_object();

    t.row()
        .col(c.name)
        .col(fres.total_seconds * 1e3, 3)
        .col(bres.total_seconds * 1e3, 3)
        .col(bres.total_seconds / fres.total_seconds, 2)
        .col(100.0 * rep.crit_comm / fres.total_seconds, 1)
        .col(100.0 * mean_util, 1);
  }
  jw.end_array();
  jw.end_object();
  os << "\n";
  t.print();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
