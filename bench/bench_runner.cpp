// Benchmark regression runner: simulate the canonical paper configurations
// (the Fig. 3/5 shapes) and emit a schema-versioned JSON of per-config
// makespans, critical-path composition and utilization.
//
// Timings come from the event-driven schedule simulation, a pure function
// of the plan and the architecture parameters — so the numbers are exactly
// reproducible across machines and runs, and the committed
// BENCH_fmmfft.json baseline turns any change to the schedule builders,
// simulator or model into a visible diff. tools/bench_compare.py diffs a
// fresh run against the baseline (tools/check.sh runs it as a gate); to
// refresh after an intentional perf change:
//
//   build/bench/bench_runner BENCH_fmmfft.json
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "dist/schedules.hpp"
#include "model/tuning.hpp"
#include "obs/analyze.hpp"
#include "obs/trace_writer.hpp"

namespace {

using namespace fmmfft;

struct Config {
  std::string name;
  model::ArchParams arch;
  fmm::Params prm;
  model::Workload w;
};

std::vector<Config> canonical_configs() {
  std::vector<Config> cfgs;
  auto add = [&](std::string name, model::ArchParams arch, index_t n, int q,
                 const fmm::Params* fixed = nullptr) {
    const model::Workload w{n, /*is_complex=*/true, /*is_double=*/true};
    fmm::Params prm = fixed ? *fixed
                            : model::search_best_params(n, arch.num_devices, w, arch, q);
    cfgs.push_back({std::move(name), std::move(arch), prm, w});
  };
  // Fig. 2's canonical point, pinned to the paper's plan (35 launches).
  const fmm::Params fig2{index_t(1) << 27, 256, 64, 3, 16};
  add("2xP100-n27-fig2", model::p100_nvlink(2), fig2.n, 16, &fig2);
  // Fig. 3 panels at their large-N endpoints, best-params as in the paper.
  add("2xK40c-n24-best", model::k40c_pcie(2), index_t(1) << 24, 16);
  add("8xP100-n27-best", model::p100_nvlink(8), index_t(1) << 27, 16);
  // Fig. 5's small-N regime, where launch/sync overheads dominate.
  add("8xP100-n20-best", model::p100_nvlink(8), index_t(1) << 20, 16);
  return cfgs;
}

/// Pencil-vs-slab 3D rows: the "fmmfft" leg is the pencil schedule, the
/// "baseline" leg the slab schedule on the same shape, so the committed
/// JSON gates both decompositions' makespans and the pencil's bytes.
struct Config3d {
  std::string name;
  model::ArchParams arch;
  index_t n0, n1, n2;
  model::GridShape grid;
};

std::vector<Config3d> canonical_configs_3d() {
  return {
      {"8xP100-3d-256-pencil", model::p100_nvlink(8), 256, 256, 256, {2, 4}},
      {"16xP100-3d-256-pencil", model::p100_nvlink(16), 256, 256, 256, {4, 4}},
      {"2xK40c-3d-128-pencil", model::k40c_pcie(2), 128, 128, 128, {1, 2}},
  };
}

/// Shared JSON/table row emitter: identical schema for the FMM and the 3D
/// configs, with a config-specific exact all-to-all payload model enforced
/// as a hard check (the §5.3 bytes are deterministic, so any mismatch is a
/// builder bug, not noise).
bool emit_row(obs::JsonWriter& jw, Table& t, const std::string& name,
              const model::ArchParams& arch, index_t n,
              const std::vector<std::pair<std::string, double>>& params,
              const sim::Schedule& fsched, const sim::SimResult& fres, double baseline_seconds,
              double a2a_model) {
  const int g = arch.num_devices;
  const auto rep = obs::analyze(fsched, fres, arch);

  double mean_util = 0;
  for (const auto& [dev, busy] : rep.device_busy) {
    (void)busy;
    mean_util += rep.device_utilization(dev);
  }
  if (!rep.device_busy.empty()) mean_util /= double(rep.device_busy.size());

  double tr_flops = 0, tr_bytes = 0, tr_comm = 0;
  for (const auto& [stage, st] : rep.stage_traffic) {
    (void)stage;
    tr_flops += st.flops;
    tr_bytes += st.bytes;
    tr_comm += st.comm_bytes;
  }
  const auto a2a_it = rep.stage_traffic.find("a2a");
  const double a2a_bytes = a2a_it != rep.stage_traffic.end() ? a2a_it->second.comm_bytes : 0.0;
  if (std::fabs(a2a_bytes - a2a_model) > 1e-6 * std::max(a2a_model, 1.0)) {
    std::fprintf(stderr, "%s: A2A payload %.17g != model %.17g\n", name.c_str(), a2a_bytes,
                 a2a_model);
    return false;
  }

  jw.begin_object();
  jw.kv("name", name);
  jw.kv("arch", arch.name);
  jw.kv("devices", double(g));
  jw.kv("log2n", double(ilog2_exact(n)));
  jw.key("params");
  jw.begin_object();
  for (const auto& [k, v] : params) jw.kv(k, v);
  jw.end_object();
  jw.kv("fmmfft_seconds", fres.total_seconds);
  jw.kv("baseline_seconds", baseline_seconds);
  jw.kv("speedup", baseline_seconds / fres.total_seconds);
  jw.kv("kernel_launches", double(fsched.kernel_launches()));
  jw.kv("comm_bytes", fsched.total_comm_bytes());
  // Traffic track (bytes-moved regression gate): totals over the analyzer's
  // per-stage rollup of the scheduled ops' exact §5 byte/flop counts.
  jw.key("traffic");
  jw.begin_object();
  jw.kv("flops", tr_flops);
  jw.kv("bytes", tr_bytes);
  jw.kv("comm_bytes", tr_comm);
  jw.kv("a2a_bytes", a2a_bytes);
  jw.kv("words_per_flop", tr_flops > 0 ? (tr_bytes + tr_comm) / (8.0 * tr_flops) : 0.0);
  jw.end_object();
  jw.key("critical");
  jw.begin_object();
  jw.kv("coverage", rep.critical_coverage);
  jw.kv("compute", rep.crit_compute);
  jw.kv("bandwidth", rep.crit_bandwidth);
  jw.kv("launch", rep.crit_launch);
  jw.kv("comm", rep.crit_comm);
  jw.kv("sync", rep.crit_sync);
  jw.kv("a2a_seconds", rep.critical_stage_seconds("a2a"));
  jw.end_object();
  jw.kv("mean_device_utilization", mean_util);
  jw.end_object();

  t.row()
      .col(name)
      .col(fres.total_seconds * 1e3, 3)
      .col(baseline_seconds * 1e3, 3)
      .col(baseline_seconds / fres.total_seconds, 2)
      .col(100.0 * rep.crit_comm / fres.total_seconds, 1)
      .col(100.0 * mean_util, 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fmmfft.json";
  bench::print_header("Benchmark regression runner",
                      "canonical Fig. 2/3/5 shapes + 3D pencil-vs-slab, simulated "
                      "(deterministic)");

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::JsonWriter jw(os);
  jw.begin_object();
  jw.kv("schema", "fmmfft.bench.v1");
  jw.key("configs");
  jw.begin_array();

  Table t({"config", "fmmfft [ms]", "baseline [ms]", "speedup", "crit comm %", "mean util %"});
  for (const Config& c : canonical_configs()) {
    const int g = c.arch.num_devices;
    auto fsched = dist::fmmfft_schedule(c.prm, c.w, g);
    auto bsched = dist::baseline1d_schedule(c.prm.n, c.w, g);
    const auto fres = fsched.simulate(c.arch);
    const auto bres = bsched.simulate(c.arch);
    // §5.3 exact transpose payload: every device ships all but its own slab.
    const double a2a_model =
        g > 1 ? (double(g) - 1.0) / double(g) * double(c.prm.n) * 2.0 * sizeof(double) : 0.0;
    if (!emit_row(jw, t, c.name, c.arch, c.prm.n,
                  {{"p", double(c.prm.p)},
                   {"ml", double(c.prm.ml)},
                   {"b", double(c.prm.b)},
                   {"q", double(c.prm.q)}},
                  fsched, fres, bres.total_seconds, a2a_model))
      return 1;
  }
  for (const Config3d& c : canonical_configs_3d()) {
    const int g = c.arch.num_devices;
    const model::Workload w{c.n0 * c.n1 * c.n2, /*is_complex=*/true, /*is_double=*/true};
    auto psched =
        dist::fft3d_schedule(c.n0, c.n1, c.n2, w, g, model::Decomp::Pencil, c.grid);
    auto ssched = dist::fft3d_schedule(c.n0, c.n1, c.n2, w, g, model::Decomp::Slab);
    const auto pres = psched.simulate(c.arch);
    const auto sres = ssched.simulate(c.arch);
    // Two-phase payload: every element crosses once per sub-communicator hop
    // (minus the diagonal), so row + col totals sum the two §5.3 terms.
    const double n = double(c.n0) * double(c.n1) * double(c.n2);
    const double eb = 2.0 * sizeof(double);
    const double a2a_model = n * eb *
                             ((double(c.grid.pc) - 1.0) / double(c.grid.pc) +
                              (double(c.grid.pr) - 1.0) / double(c.grid.pr));
    if (!emit_row(jw, t, c.name, c.arch, index_t(n),
                  {{"n0", double(c.n0)},
                   {"n1", double(c.n1)},
                   {"n2", double(c.n2)},
                   {"pr", double(c.grid.pr)},
                   {"pc", double(c.grid.pc)}},
                  psched, pres, sres.total_seconds, a2a_model))
      return 1;
  }
  jw.end_array();
  jw.end_object();
  os << "\n";
  t.print();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
