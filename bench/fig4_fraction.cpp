// Figure 4 — fraction of FMM time spent in each kernel vs N.
//
// Paper: double-complex on 2xP100; stacked fractions of M2L-B, M2L-l, S2T,
// BatchedGEMM (S2M/M2M/L2L/L2T) and GEMV. At small N the fastest config
// keeps L = B, so M2L-B and S2T carry the work; at large N, M2L-B is
// negligible and BatchedGEMM + S2T dominate.
//
// Here: the same sweep on the simulated 2xP100, using the model-searched
// best parameters per N (exactly how the paper picks its configs), plus a
// native-measurement variant at host-feasible sizes built from real
// per-stage wall times.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "dist/schedules.hpp"

namespace {

using namespace fmmfft;

struct Fractions {
  double m2lb = 0, m2ll = 0, s2t = 0, bgemm = 0, gemv = 0;
  void add(const std::string& name, fmm::KernelClass k, double sec) {
    if (name == "M2L-B")
      m2lb += sec;
    else if (name.rfind("M2L-", 0) == 0)
      m2ll += sec;
    else if (name == "S2T")
      s2t += sec;
    else if (k == fmm::KernelClass::Gemv)
      gemv += sec;
    else if (k == fmm::KernelClass::BatchedGemm)
      bgemm += sec;
  }
  double total() const { return m2lb + m2ll + s2t + bgemm + gemv; }
};

void emit(Table& t, const std::string& n_label, const std::string& params, const Fractions& f) {
  const double tot = f.total() > 0 ? f.total() : 1;
  t.row()
      .col(n_label)
      .col(params)
      .col(f.m2lb / tot, 3)
      .col(f.m2ll / tot, 3)
      .col(f.s2t / tot, 3)
      .col(f.bgemm / tot, 3)
      .col(f.gemv / tot, 3);
}

}  // namespace

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 4: fraction of FMM time per kernel",
                      "Fig. 4 — CD, 2xP100, best params per N");

  const int g = 2;
  const auto arch = model::p100_nvlink(g);

  Table t({"N", "P,ML,B", "M2L-B", "M2L-l", "S2T", "B-GEMM", "GEMV"});
  for (int lg = 12; lg <= 27; ++lg) {
    const index_t n = index_t(1) << lg;
    const model::Workload w{n, true, true};
    fmm::Params prm;
    try {
      prm = model::search_best_params(n, g, w, arch, 16);
    } catch (const Error&) {
      continue;
    }
    Fractions f;
    for (const auto& st : model::exact_fmm_counts(prm, w.c(), g)) {
      const double sec = arch.launch_overhead +
                         model::roofline_seconds(st.flops, st.mem_scalars * w.real_bytes(),
                                                 arch, true) /
                             arch.efficiency(st.kernel);
      f.add(st.name, st.kernel, sec);
    }
    emit(t, "2^" + std::to_string(lg),
         std::to_string(prm.p) + "," + std::to_string(prm.ml) + "," + std::to_string(prm.b), f);
  }
  t.print();
  std::printf("expected shape (paper): M2L-B + S2T dominate small N (L = B configs);\n"
              "B-GEMM + S2T dominate large N; GEMV negligible throughout.\n");

  // Native measurement: real per-stage wall times on this host.
  std::printf("\nnative per-stage wall-time fractions (real execution on this host):\n");
  Table tn({"N", "P,ML,B", "M2L-B", "M2L-l", "S2T", "B-GEMM", "GEMV"});
  for (int lg : {14, 16, 18, 20}) {
    const index_t n = index_t(1) << lg;
    fmm::Params prm{n, 64, 16, 3, 16};
    if (!prm.is_admissible(1)) prm = fmm::Params{n, 64, 8, 3, 16};
    std::vector<std::complex<double>> x((std::size_t)n), y(x.size());
    fill_uniform(x.data(), n, lg);
    core::FmmFft<std::complex<double>> plan(prm);
    plan.execute(x.data(), y.data());
    Fractions f;
    for (const auto& st : plan.profile().fmm_stages)
      if (st.kernel != fmm::KernelClass::Copy) f.add(st.name, st.kernel, st.seconds);
    emit(tn, "2^" + std::to_string(lg),
         std::to_string(prm.p) + "," + std::to_string(prm.ml) + "," + std::to_string(prm.b), f);
  }
  tn.print();
  return 0;
}
