// Multi-node projection — the paper's §7 outlook, quantified.
//
// "Extending the results to multiple nodes is necessary ... the performance
// on multiple nodes is very likely to improve relative performance and
// energy efficiency due to higher internode communication costs."
//
// This bench joins M copies of the 8xP100 node with EDR-InfiniBand-class
// NICs (10 GB/s per direction, shared per node) and simulates the same
// schedules. As the NIC becomes the bottleneck, the baseline's three
// all-to-alls hurt 3x while the FMM-FFT pays once: the projected speedup
// grows well past the single-node 2.1x.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dist/schedules.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Multi-node projection (paper §7 outlook)",
                      "conclusion: internode costs should raise the FMM-FFT's advantage");

  const index_t n = index_t(1) << 28;
  const model::Workload w{n, true, true};

  Table t({"nodes", "devices", "arch", "FMM-FFT [ms]", "1D FFT [ms]", "speedup"});
  for (int nodes : {1, 2, 4, 8, 16}) {
    auto arch = nodes == 1 ? model::p100_nvlink(8)
                           : model::multinode(model::p100_nvlink(8), nodes);
    const int g = arch.num_devices;
    fmm::Params prm;
    try {
      prm = model::search_best_params(n, g, w, arch, 16);
    } catch (const Error&) {
      continue;
    }
    const double t_fmm = dist::fmmfft_schedule(prm, w, g).simulate(arch).total_seconds;
    const double t_base = dist::baseline1d_schedule(n, w, g).simulate(arch).total_seconds;
    t.row()
        .col(nodes)
        .col(g)
        .col(arch.name)
        .col(t_fmm * 1e3, 2)
        .col(t_base * 1e3, 2)
        .col(t_base / t_fmm, 2);
  }
  t.print();
  std::printf("expected shape: speedup grows with node count as the shared NICs make the\n"
              "baseline's three transposes progressively more expensive than one.\n");
  return 0;
}
