// Figure 5 — achieved fraction of roofline-model performance per stage.
//
// Paper: efficiency = Eq.-3 minimum wall time / measured time, for each
// FMM stage, the whole FMM, and the whole FMM-FFT (2D FFT assumed 100%
// efficient). Findings: BatchedGEMM most efficient and dominant at large
// N; M2L-l/S2T ≈ 60% (hand-written CUDA); M2L-B least efficient but
// negligible at large N; whole FMM-FFT ≈ 90% of peak at large N.
//
// Here, two complementary reproductions:
//  (a) simulated 2xP100 — the efficiency recovered from the schedule
//      simulation (per-class efficiencies + launch latency), showing the
//      same small-N latency collapse and large-N plateaus;
//  (b) native — real measured stage times on this host against the
//      calibrated host roofline: a genuine efficiency measurement of this
//      library's kernels.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "dist/schedules.hpp"

namespace {

using namespace fmmfft;

struct Buckets {
  double model[5] = {}, meas[5] = {};  // M2L-B, M2L-l, S2T, B-GEMM, FMM
  static int index(const std::string& name, fmm::KernelClass k) {
    if (name == "M2L-B") return 0;
    if (name.rfind("M2L-", 0) == 0) return 1;
    if (name == "S2T") return 2;
    if (k == fmm::KernelClass::BatchedGemm) return 3;
    return -1;  // GEMV folded into FMM total only
  }
};

}  // namespace

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 5: achieved fraction of roofline performance per stage",
                      "Fig. 5 — efficiency of M2L-B, M2L-l, S2T, B-GEMM, FMM, FMM-FFT");

  const int g = 2;
  const auto arch = model::p100_nvlink(g);

  std::printf("(a) simulated 2xP100, CD, best params per N\n");
  Table t({"N", "M2L-B", "M2L-l", "S2T", "B-GEMM", "FMM", "FMM-FFT"});
  for (int lg = 16; lg <= 27; ++lg) {
    const index_t n = index_t(1) << lg;
    const model::Workload w{n, true, true};
    fmm::Params prm;
    try {
      prm = model::search_best_params(n, g, w, arch, 16);
    } catch (const Error&) {
      continue;
    }
    Buckets b;
    for (const auto& st : model::exact_fmm_counts(prm, w.c(), g)) {
      const double ideal = model::roofline_seconds(st.flops, st.mem_scalars * w.real_bytes(),
                                                   arch, true);
      const double sim = arch.launch_overhead + ideal / arch.efficiency(st.kernel);
      const int i = Buckets::index(st.name, st.kernel);
      if (i >= 0) {
        b.model[i] += ideal;
        b.meas[i] += sim;
      }
      b.model[4] += ideal;
      b.meas[4] += sim;
    }
    // FMM-FFT total with the measured 2D FFT treated as 100% efficient.
    const double fft2d = dist::dist2dfft_schedule(prm.m(), prm.p, w, g)
                             .simulate(arch)
                             .total_seconds;
    const double fmmfft_model = b.model[4] + fft2d;
    const double fmmfft_meas = b.meas[4] + fft2d;
    auto frac = [&](int i) { return b.meas[i] > 0 ? b.model[i] / b.meas[i] : 0.0; };
    t.row()
        .col("2^" + std::to_string(lg))
        .col(frac(0), 3)
        .col(frac(1), 3)
        .col(frac(2), 3)
        .col(frac(3), 3)
        .col(frac(4), 3)
        .col(fmmfft_model / fmmfft_meas, 3);
  }
  t.print();

  std::printf("\n(b) native: measured stage times on this host vs calibrated host roofline\n");
  auto narch = bench::native_arch(1);
  Table tn({"N", "M2L-B", "M2L-l", "S2T", "B-GEMM", "FMM"});
  for (int lg : {14, 16, 18, 20}) {
    const index_t n = index_t(1) << lg;
    fmm::Params prm{n, 64, lg >= 18 ? index_t(16) : index_t(8), 3, 16};
    if (!prm.is_admissible(1)) continue;
    std::vector<std::complex<double>> x((std::size_t)n), y(x.size());
    fill_uniform(x.data(), n, lg);
    core::FmmFft<std::complex<double>> plan(prm);
    plan.execute(x.data(), y.data());  // warm-up
    plan.execute(x.data(), y.data());
    Buckets b;
    for (const auto& st : plan.profile().fmm_stages) {
      if (st.kernel == fmm::KernelClass::Copy) continue;
      const double ideal = model::roofline_seconds(st.flops, st.mem_bytes, narch, true);
      const int i = Buckets::index(st.name, st.kernel);
      if (i >= 0) {
        b.model[i] += ideal;
        b.meas[i] += st.seconds;
      }
      b.model[4] += ideal;
      b.meas[4] += st.seconds;
    }
    auto frac = [&](int i) { return b.meas[i] > 0 ? b.model[i] / b.meas[i] : 0.0; };
    tn.row()
        .col("2^" + std::to_string(lg))
        .col(frac(0), 3)
        .col(frac(1), 3)
        .col(frac(2), 3)
        .col(frac(3), 3)
        .col(frac(4), 3);
  }
  tn.print();
  std::printf("expected shape (paper): B-GEMM most efficient; custom M2L/S2T lower;\n"
              "M2L-B the least efficient but negligible at large N; FMM-FFT ~90%%.\n");
  return 0;
}
