// Figure 7 — dependence of performance on P (the number of FMMs).
//
// Paper: N=2^27, M_L=64, B=3, G=2, CD, P swept 2^2..2^18. The FMM stage is
// nearly flat in P (doubling P doubles per-contraction work but removes a
// tree level); the visible effects are (i) small P degrades the 2D FFT
// (large aspect ratio ~3x slower; cuFFTXT rejects dims < 32) and (ii)
// P=32's small GEMM rows (62) degrade BatchedGEMM slightly.
//
// Here: flops, model time, simulated FMM time, and simulated 2D-FFT time
// per P on 2xP100, plus a native sweep at host scale.
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "dist/schedules.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 7: P dependence of the FMM stage and 2D FFT",
                      "Fig. 7 — N=2^27, ML=64, B=3, G=2, CD");

  const index_t n = index_t(1) << 27;
  const int g = 2;
  const auto arch = model::p100_nvlink(g);
  const model::Workload w{n, true, true};

  Table t({"P", "M", "FMM ops [GFlop]", "FMM model [ms]", "FMM sim [ms]", "2D FFT sim [ms]"});
  for (index_t p = 4; p <= (index_t(1) << 18); p *= 4) {
    fmm::Params prm{n, p, 64, 3, 16};
    if (!prm.is_admissible(g)) continue;
    const double flops = model::paper_fmm_flops(prm, w.c(), g);
    const double model_t = model::fmm_stage_seconds(prm, w, arch, false);
    auto res = dist::fmmfft_schedule(prm, w, g).simulate(arch);
    double fmm_sim = 0;
    for (const auto& [label, sec] : res.label_seconds)
      if (label.rfind("FFT-", 0) != 0 && label.rfind("A2A", 0) != 0 &&
          label.rfind("COMM", 0) != 0 && label != "POST" &&
          label.find("arrive") == std::string::npos)
        fmm_sim += sec;
    const double fft2d = dist::dist2dfft_schedule(prm.m(), p, w, g).simulate(arch).total_seconds;
    t.row()
        .col((long long)p)
        .col((long long)prm.m())
        .col(flops / 1e9, 1)
        .col(model_t * 1e3, 1)
        .col(fmm_sim / g * 1e3, 1)
        .col(fft2d * 1e3, 1);
  }
  t.print();
  std::printf("expected shape (paper): FMM time nearly flat in P; extreme aspect ratios\n"
              "degrade the 2D FFT; the paper's library also rejects 2D dims < 32.\n");

  std::printf("\nnative sweep (N=2^18, ML=8, B=3, real wall times):\n");
  Table tn({"P", "FMM ops [GFlop]", "FMM measured [ms]", "2D FFT measured [ms]"});
  const index_t nn = index_t(1) << 18;
  for (index_t p = 32; p <= 4096; p *= 2) {
    fmm::Params prm{nn, p, 8, 3, 16};
    if (!prm.is_admissible(1)) continue;
    std::vector<std::complex<double>> x((std::size_t)nn), y(x.size());
    fill_uniform(x.data(), nn, p);
    core::FmmFft<std::complex<double>> plan(prm);
    plan.execute(x.data(), y.data());
    tn.row()
        .col((long long)p)
        .col(plan.profile().fmm_flops() / 1e9, 2)
        .col(plan.profile().fmm_seconds() * 1e3, 1)
        .col(plan.profile().fft_seconds * 1e3, 1);
  }
  tn.print();
  return 0;
}
