// Section 6 in-text analysis — crossover ratios and model intensity.
//
// The paper computes: the theoretical crossover ratio
// beta/min(gamma, beta·W/D) ≈ 0.031 byte/flop on P100 (vs Edelman's 0.036),
// communication-to-flop ratios of ~0.0012 (K40c) and ~0.0009 (P100), and a
// model intensity of 7.8 flop/byte for the double-precision FMM making the
// stage slightly memory-bound (roofline peak 2.7 TFlop/s of 5 on P100).
//
// This bench evaluates the same quantities from our §5 counts and the
// architecture presets, showing where the FMM-FFT sits on each roofline.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "model/counts.hpp"

int main() {
  using namespace fmmfft;
  bench::print_header("Section 6 analysis: crossover ratios and model intensity",
                      "§6 in-text numbers (0.031 byte/flop crossover, 7.8 flop/byte intensity)");

  const fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};

  Table t({"system", "precision", "FMM intensity [flop/B]", "roofline rate [TF/s]",
           "link/rate [B/flop]", "comm:flop of algorithm [B/flop]"});
  for (auto arch : {model::k40c_pcie(2), model::p100_nvlink(2), model::p100_nvlink(8)}) {
    for (bool dbl : {false, true}) {
      const model::Workload w{prm.n, true, dbl};
      const double wf = model::paper_fmm_flops(prm, w.c(), arch.num_devices);
      const double d = model::paper_fmm_mops(prm, w.c(), arch.num_devices) * w.real_bytes();
      const double intensity = wf / d;
      const double rate = std::min(arch.gamma(dbl), arch.beta_mem * intensity);
      // Algorithm's own comm volume per flop: one transpose + halos.
      const double comm_bytes =
          double(prm.n) / arch.num_devices * (arch.num_devices - 1.0) / arch.num_devices *
              w.element_bytes() +
          model::paper_fmm_comm(prm, w.c(), arch.num_devices).total() * w.real_bytes();
      t.row()
          .col(arch.name)
          .col(dbl ? "double" : "float")
          .col(intensity, 2)
          .col(rate / 1e12, 2)
          .col_sci(model::crossover_ratio(prm, w, arch))
          .col_sci(comm_bytes / wf);
    }
  }
  t.print();
  std::printf(
      "paper reference points: FMM model intensity ~7.8 flop/byte (double), putting\n"
      "the P100 FMM at ~2.7 TF/s of its 5 TF/s double peak — slightly memory bound;\n"
      "the true predictor of FMM-FFT success is the communication:memory-bandwidth\n"
      "ratio, not communication:compute (§6).\n");
  return 0;
}
