// Figure 1 — GEMM vs BatchedGEMM performance with roofline parameters.
//
// Paper: cuBLAS SGEMM/DGEMM of shape N²×N×N vs BatchedSGEMM/BatchedDGEMM of
// N problems of shape N×N×N on K40c and P100, with the §5.4 practical
// architecture parameters (gamma_f, gamma_d, beta) overlaid.
//
// Here: the same two workload families measured natively on this host's
// BLAS substrate (the cuBLAS stand-in), with the host's calibrated
// parameters printed alongside the paper's K40c/P100 values. Expected
// shape: both curves approach the practical gamma for large N; batched
// trails pure GEMM at small N where per-problem overhead dominates.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace fmmfft;

template <typename T>
double gemm_big_rate(index_t n) {
  // One GEMM of shape N²×N×N.
  Buffer<T> a(n * n * n), b(n * n), c(n * n * n);
  fill_uniform(a.data(), a.size(), 1);
  fill_uniform(b.data(), b.size(), 2);
  double sec = time_best(
      [&] {
        blas::gemm<T>(blas::Op::N, blas::Op::N, n * n, n, n, T(1), a.data(), n * n, b.data(), n,
                      T(0), c.data(), n * n);
      },
      2, 0.05);
  return blas::gemm_flops(n * n, n, n) / sec;
}

template <typename T>
double gemm_batched_rate(index_t n) {
  // N problems of shape N×N×N: identical total flops to the big GEMM.
  Buffer<T> a(n * n * n), b(n * n * n), c(n * n * n);
  fill_uniform(a.data(), a.size(), 3);
  fill_uniform(b.data(), b.size(), 4);
  double sec = time_best(
      [&] {
        blas::gemm_strided_batched<T>(blas::Op::N, blas::Op::N, n, n, n, T(1), a.data(), n,
                                      n * n, b.data(), n, n * n, T(0), c.data(), n, n * n, n);
      },
      2, 0.05);
  return n * blas::gemm_flops(n, n, n) / sec;
}

}  // namespace

int main() {
  using namespace fmmfft;
  bench::print_header("Figure 1: GEMM vs BatchedGEMM performance (native substrate)",
                      "Fig. 1a/1b — cuBLAS GEMM and BatchedGEMM with roofline parameters");

  auto rates = bench::calibrate_native();
  std::printf("native practical parameters (cf. paper Sec 5.4):\n");
  std::printf("  gamma_f = %.2f GFlop/s   (paper: K40c 2800, P100 10000)\n",
              rates.gemm_f32 / 1e9);
  std::printf("  gamma_d = %.2f GFlop/s   (paper: K40c 1200, P100  5000)\n",
              rates.gemm_f64 / 1e9);
  std::printf("  beta    = %.2f GB/s      (paper: K40c  100, P100   360)\n\n",
              rates.stream_bw / 1e9);

  Table t({"N", "SGEMM N2xNxN [GF/s]", "BatchedSGEMM [GF/s]", "DGEMM N2xNxN [GF/s]",
           "BatchedDGEMM [GF/s]"});
  for (index_t n : {8, 16, 32, 48, 64, 96, 128, 192}) {
    t.row()
        .col((long long)n)
        .col(gemm_big_rate<float>(n) / 1e9, 2)
        .col(gemm_batched_rate<float>(n) / 1e9, 2)
        .col(gemm_big_rate<double>(n) / 1e9, 2)
        .col(gemm_batched_rate<double>(n) / 1e9, 2);
  }
  t.print();
  std::printf("expected shape (paper): both families saturate toward gamma for large N;\n"
              "batched lags at small N. The FMM-FFT's S2M/M2M/L2L/L2T ride the batched "
              "curve.\n");
  return 0;
}
