// Native-throughput benchmark track: measure what the host kernels actually
// sustain, as a complement to the simulated BENCH_fmmfft.json trajectory
// (which by construction cannot observe native kernel speedups).
//
// Emits schema-versioned JSON (fmmfft.bench.native.v1):
//   * GEMM GFLOP/s — square sizes plus the FMM's tall-skinny batched shapes
//     (m = C·P rows against Q/M_L-sized operators, §4.4–4.5)
//   * batched FFT points/s — pow2 and Bluestein sizes at FMM-shaped batches
//   * blocked transpose GB/s — the Plan2D / Π_{M,P} data-movement primitive
//   * end-to-end single-node FmmFft wall seconds, serial and with the pool
//
// Wall-clock numbers are machine- and load-dependent, so the committed
// BENCH_native.json baseline is compared report-only by
// tools/bench_compare.py --native (schema and structure hard-fail, timings
// never do). Refresh with:  build/bench/bench_native BENCH_native.json
#include <complex>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "blas/blas.hpp"
#include "common/permute.hpp"
#include "common/table.hpp"
#include "common/threadpool.hpp"
#include "core/fmmfft.hpp"
#include "dist/collectives.hpp"
#include "dist/dfft3d.hpp"
#include "dist/dfmmfft.hpp"
#include "exec/executor.hpp"
#include "fft/fft.hpp"
#include "fmm/engine.hpp"
#include "fmm/params.hpp"
#include "obs/health.hpp"
#include "obs/trace_writer.hpp"
#include "obs/traffic.hpp"

namespace {

using namespace fmmfft;

struct Result {
  std::string name;
  std::string metric;  // "gflops" | "mpoints_per_s" | "gbytes_per_s" | "seconds"
  double value;
  double seconds;  // best wall time of one rep, always recorded
};

std::vector<Result> g_results;

void record(const std::string& name, const std::string& metric, double value, double seconds) {
  g_results.push_back({name, metric, value, seconds});
}

template <typename T>
void bench_gemm_single(const std::string& name, index_t m, index_t n, index_t k) {
  Buffer<T> a(m * k), b(k * n), c(m * n);
  fill_uniform(a.data(), m * k, 1);
  fill_uniform(b.data(), k * n, 2);
  double sec = time_best([&] {
    blas::gemm<T>(blas::Op::N, blas::Op::N, m, n, k, T(1), a.data(), m, b.data(), k, T(0),
                  c.data(), m);
  });
  record(name, "gflops", blas::gemm_flops(m, n, k) / sec / 1e9, sec);
}

/// `shared_b` benches the engine-accurate call: one operator B shared by
/// every item (stride_b = 0), which dispatches into the batch-fused
/// shared-B fast path. `shared_b = false` keeps a per-item B for contrast
/// (the per-item parallel_for dispatch).
template <typename T>
void bench_gemm_batched(const std::string& name, index_t m, index_t n, index_t k, index_t batch,
                        bool shared_b) {
  const index_t b_copies = shared_b ? 1 : batch;
  Buffer<T> a(m * k * batch), b(k * n * b_copies), c(m * n * batch);
  fill_uniform(a.data(), m * k * batch, 3);
  fill_uniform(b.data(), k * n * b_copies, 4);
  const index_t stride_b = shared_b ? 0 : k * n;
  double sec = time_best([&] {
    blas::gemm_strided_batched<T>(blas::Op::N, blas::Op::N, m, n, k, T(1), a.data(), m, m * k,
                                  b.data(), k, stride_b, T(0), c.data(), m, m * n, batch);
  });
  record(name, "gflops", double(batch) * blas::gemm_flops(m, n, k) / sec / 1e9, sec);
}

template <typename T>
void bench_fft_batched(const std::string& name, index_t n, index_t batch) {
  Buffer<std::complex<T>> data(n * batch);
  fill_uniform(data.data(), n * batch, 5);
  fft::Plan1D<T> plan(n);
  double sec = time_best(
      [&] { plan.execute_batched(data.data(), batch, fft::Direction::Forward); });
  record(name, "mpoints_per_s", double(n) * double(batch) / sec / 1e6, sec);
}

void bench_transpose(const std::string& name, index_t rows, index_t cols) {
  using Cx = std::complex<double>;
  Buffer<Cx> x(rows * cols), y(rows * cols);
  fill_uniform(x.data(), rows * cols, 6);
  double sec = time_best([&] { transpose_blocked(x.data(), y.data(), rows, cols); });
  // Read + write of the full array.
  record(name, "gbytes_per_s", 2.0 * double(rows) * double(cols) * sizeof(Cx) / sec / 1e9, sec);
}

/// Contrast row: the pre-fusion 32×32 blocked kernel on the same shape, so
/// the committed baselines document the cache-oblivious kernel's margin.
void bench_transpose_ref(const std::string& name, index_t rows, index_t cols) {
  using Cx = std::complex<double>;
  Buffer<Cx> x(rows * cols), y(rows * cols);
  fill_uniform(x.data(), rows * cols, 6);
  double sec = time_best([&] { transpose_blocked_ref(x.data(), y.data(), rows, cols); });
  record(name, "gbytes_per_s", 2.0 * double(rows) * double(cols) * sizeof(Cx) / sec / 1e9, sec);
}

void bench_transpose_inplace(const std::string& name, index_t n) {
  using Cx = std::complex<double>;
  Buffer<Cx> x(n * n);
  fill_uniform(x.data(), n * n, 6);
  // Self-inverse, so repeated reps measure the same operation.
  double sec = time_best([&] { transpose_inplace(x.data(), n); });
  record(name, "gbytes_per_s", 2.0 * double(n) * double(n) * sizeof(Cx) / sec / 1e9, sec);
}

/// Fused zero-copy all-to-all vs the staged pack/copy/unpack reference on
/// one representative G=4 slab geometry (payload GB/s, higher is better).
void bench_a2a(index_t m, index_t p, int g) {
  using Cx = std::complex<double>;
  sim::Fabric fabric(g);
  const index_t slab = m * p / g;
  Buffer<Cx> bin(m * p), bout(m * p);
  fill_uniform(bin.data(), m * p, 9);
  std::vector<Cx*> in, out;
  for (int r = 0; r < g; ++r) {
    in.push_back(bin.data() + r * slab);
    out.push_back(bout.data() + r * slab);
  }
  const double bytes = 2.0 * double(m) * double(p) * sizeof(Cx);  // rd + wr
  double sec = time_best([&] {
    dist::all_to_all_permute_mp(fabric, in, out, m, p, "A2A-B");
    fabric.reset();
  });
  record("a2a_fused_g4", "gbytes_per_s", bytes / sec / 1e9, sec);
  sec = time_best([&] {
    dist::all_to_all_permute_mp_staged(fabric, in, out, m, p, "A2A-B");
    fabric.reset();
  });
  record("a2a_staged_g4", "gbytes_per_s", bytes / sec / 1e9, sec);
}

/// The factorized two-phase Π_{M,P} over a 2×2 grid on the same geometry as
/// bench_a2a: two sub-communicator hops touch every element twice, so the
/// numerator counts 2× the one-phase sweep (rate comparable per phase, not
/// per permutation).
void bench_a2a_grid(index_t m, index_t p, int g) {
  using Cx = std::complex<double>;
  sim::Fabric fabric(g);
  const index_t slab = m * p / g;
  Buffer<Cx> bin(m * p), bout(m * p), bwork(m * p);
  fill_uniform(bin.data(), m * p, 9);
  std::vector<Cx*> in, out, work;
  for (int r = 0; r < g; ++r) {
    in.push_back(bin.data() + r * slab);
    out.push_back(bout.data() + r * slab);
    work.push_back(bwork.data() + r * slab);
  }
  const dist::ProcGrid grid{2, 2};
  const double bytes = 2.0 * 2.0 * double(m) * double(p) * sizeof(Cx);  // 2 phases, rd + wr
  double sec = time_best([&] {
    dist::all_to_all_permute_mp_grid(fabric, in, out, work, m, p, grid);
    fabric.reset();
  });
  record("a2a_pencil_2x2", "gbytes_per_s", bytes / sec / 1e9, sec);
}

/// Standalone M2L / S2T kernel benches: the SIMD + separation-fused fast
/// paths against the scalar per-separation reference loops, on live engine
/// state (sources loaded, multipole tree built, halos filled). Both paths
/// produce bit-identical outputs; the delta here is pure kernel speed.
template <typename T>
void bench_engine_kernels_typed(const std::string& suffix, bool with_ref) {
  using E = fmm::Engine<T>;
  auto prime = [](E& eng, const fmm::Params& prm) {
    fill_uniform(eng.source_box(0), eng.source_box_elems() * eng.local_leaves(), 8);
    eng.zero();
    eng.s2m();
    eng.fill_source_halo_cyclic();
    for (int lev = prm.l() - 1; lev >= prm.b; --lev) eng.m2m(lev);
    if (prm.l() > prm.b) eng.fill_multipole_halo_cyclic(prm.l());
  };

  {
    // The e2e CD configuration: leaf level L=6 with 64 boxes of M_L=16.
    const fmm::Params prm{index_t(1) << 16, 64, 16, 2, 14};
    E eng(prm, 2);
    prime(eng, prm);
    double sec = time_best([&] { eng.s2t(); });
    record("fmm_s2t_n16" + suffix, "seconds", sec, sec);
    if (with_ref) {
      sec = time_best([&] { eng.s2t_reference(); });
      record("fmm_s2t_n16_ref", "seconds", sec, sec);
    }
    sec = time_best([&] { eng.m2l_level(prm.l()); });
    record("fmm_m2l_leaf_n16" + suffix, "seconds", sec, sec);
    if (with_ref) {
      sec = time_best([&] { eng.m2l_level_reference(prm.l()); });
      record("fmm_m2l_leaf_n16_ref", "seconds", sec, sec);
    }
    eng.reset_stats();
  }
  {
    // Big-base configuration: B=6 gives 64 base boxes (61 separations), so
    // m2l_base runs the LRU-backed fused sweep over many operator slabs.
    const fmm::Params prm{index_t(1) << 14, 64, 4, 6, 10};
    E eng(prm, 2);
    prime(eng, prm);
    double sec = time_best([&] { eng.m2l_base(); });
    record("fmm_m2l_base_bb64" + suffix, "seconds", sec, sec);
    if (with_ref) {
      sec = time_best([&] { eng.m2l_base_reference(); });
      record("fmm_m2l_base_bb64_ref", "seconds", sec, sec);
    }
    eng.reset_stats();
  }
}

void bench_engine_kernels() {
  bench_engine_kernels_typed<double>("", /*with_ref=*/true);
  // The mixed-precision translation kernels: same shapes, fp32 operators
  // and expansions — the per-kernel speedup behind FMMFFT_PRECISION=mixed.
  bench_engine_kernels_typed<float>("_f32", /*with_ref=*/false);
}

void bench_fmmfft_e2e() {
  // FMM-shaped single-node run: N=2^16, P=64 interleaved FMMs of M=1024,
  // M_L=16 (L=6), Q=14 — complex double, the paper's CD configuration.
  const fmm::Params prm{index_t(1) << 16, 64, 16, 2, 14};
  using Cx = std::complex<double>;
  // Pin the precision: the rows are named fp64/mixed, so an ambient
  // FMMFFT_PRECISION (CI's mixed leg) must not re-label them silently.
  core::FmmFft<Cx> plan(prm, /*fuse_post=*/true, fmm::Precision::Fp64);
  Buffer<Cx> in(prm.n), out(prm.n);
  fill_uniform(in.data(), prm.n, 7);

  {
    ThreadPool::ScopedSerial serial;
    double sec = time_best([&] { plan.execute(in.data(), out.data()); });
    record("fmmfft_e2e_n16_serial", "seconds", sec, sec);
  }
  double sec = time_best([&] { plan.execute(in.data(), out.data()); });
  record("fmmfft_e2e_n16_pool", "seconds", sec, sec);

  // Mixed-precision contrast on the same plan and input: fp32 translation
  // under the fp64 shell (FMMFFT_PRECISION=mixed).
  core::FmmFft<Cx> mixed(prm, /*fuse_post=*/true, fmm::Precision::Mixed);
  sec = time_best([&] { mixed.execute(in.data(), out.data()); });
  record("fmmfft_e2e_n16_mixed_pool", "seconds", sec, sec);
}

/// Distributed end-to-end: the serial reference driver vs the async
/// task-graph executor on the same DistFmmFft instance, g devices. Outputs
/// must be byte-identical — the executor's whole point is reordering
/// without renumbering. Returns false on a mismatch.
bool bench_dist_e2e(int g, fmm::Precision prec = fmm::Precision::Fp64) {
  // Shapes divide by every g in {2, 4}: m = 1024, p = 64, 8 base boxes.
  const fmm::Params prm{index_t(1) << 16, 64, 8, 3, 14};
  using Cx = std::complex<double>;
  dist::DistFmmFft<Cx> plan(prm, g, prec);
  Buffer<Cx> in(prm.n), out_serial(prm.n), out_async(prm.n);
  fill_uniform(in.data(), prm.n, 40 + g);
  const std::string base = "dfmmfft_e2e_g" + std::to_string(g) +
                           (prec == fmm::Precision::Mixed ? "_mixed" : "");

  {
    exec::ScopedMode sm(exec::Mode::Serial);
    double sec = time_best([&] { plan.execute(in.data(), out_serial.data()); });
    record(base + "_serial", "seconds", sec, sec);
  }
  {
    exec::ScopedMode sm(exec::Mode::Async);
    double sec = time_best([&] { plan.execute(in.data(), out_async.data()); });
    record(base + "_async", "seconds", sec, sec);
  }
  if (std::memcmp(out_serial.data(), out_async.data(),
                  sizeof(Cx) * static_cast<std::size_t>(prm.n)) != 0) {
    std::fprintf(stderr, "FATAL: %s serial/async outputs differ\n", base.c_str());
    return false;
  }
  return true;
}

/// Measured algorithmic traffic rows (metric "bytes"): the ledger's bytes
/// moved over one execution of each end-to-end shape. Unlike the wall-clock
/// rows these are deterministic — a pure function of the plan — so
/// tools/bench_compare.py --native hard-gates them: a change that silently
/// moves >10% more bytes on these shapes fails the bench gate.
void bench_traffic_bytes() {
  using Cx = std::complex<double>;
  const bool was_enabled = obs::traffic_enabled();
  obs::enable_traffic(true);
  {
    const fmm::Params prm{index_t(1) << 16, 64, 16, 2, 14};
    core::FmmFft<Cx> plan(prm, /*fuse_post=*/true, fmm::Precision::Fp64);
    Buffer<Cx> in(prm.n), out(prm.n);
    fill_uniform(in.data(), prm.n, 7);
    obs::TrafficLedger::global().reset();
    WallTimer t;
    plan.execute(in.data(), out.data());
    const double sec = t.seconds();
    record("traffic_fmmfft_n16", "bytes", obs::TrafficLedger::global().total().bytes_moved(),
           sec);
  }
  {
    const fmm::Params prm{index_t(1) << 16, 64, 8, 3, 14};
    dist::DistFmmFft<Cx> plan(prm, 2, fmm::Precision::Fp64);
    Buffer<Cx> in(prm.n), out(prm.n);
    fill_uniform(in.data(), prm.n, 42);
    obs::TrafficLedger::global().reset();
    WallTimer t;
    plan.execute(in.data(), out.data());
    const double sec = t.seconds();
    const auto total = obs::TrafficLedger::global().total();
    record("traffic_dfmmfft_g2", "bytes", total.bytes_moved(), sec);
    record("traffic_dfmmfft_g2_comm", "bytes", total.comm_bytes, sec);
    // Per-key row for the fused all-to-all: the bytes the pack/unpack
    // scopes move on this shape. The committed baseline is the post-fusion
    // value (2× payload), so reintroducing staging copies (4×) fails the
    // +10% hard gate — a ratchet, not just a trend.
    const auto snap = obs::TrafficLedger::global().snapshot();
    double a2a = 0;
    if (snap.count("a2a.pack")) a2a += snap.at("a2a.pack").bytes_moved();
    if (snap.count("a2a.unpack")) a2a += snap.at("a2a.unpack").bytes_moved();
    record("traffic_dfmmfft_g2_a2a", "bytes", a2a, sec);
  }
  {
    // Same distributed shape under FMMFFT_PRECISION=mixed. The per-precision
    // comm split makes the mixed win auditable per key: the fp32 rows carry
    // the halved FMM halo/allgather payload, the fp64 row is the untouched
    // shell-width all-to-all. All of these are hard-gated like the rows
    // above — regressing the mixed byte diet fails the bench gate.
    const fmm::Params prm{index_t(1) << 16, 64, 8, 3, 14};
    dist::DistFmmFft<Cx> plan(prm, 2, fmm::Precision::Mixed);
    Buffer<Cx> in(prm.n), out(prm.n);
    fill_uniform(in.data(), prm.n, 42);
    obs::TrafficLedger::global().reset();
    WallTimer t;
    plan.execute(in.data(), out.data());
    const double sec = t.seconds();
    const auto total = obs::TrafficLedger::global().total();
    record("traffic_dfmmfft_g2_mixed", "bytes", total.bytes_moved(), sec);
    record("traffic_dfmmfft_g2_mixed_comm", "bytes", total.comm_bytes, sec);
    double comm_f32 = 0, comm_f64 = 0;
    for (const auto& [name, tt] : obs::TrafficLedger::global().snapshot()) {
      if (name.rfind("comm.", 0) != 0) continue;
      const bool f32 = name.size() > 4 && name.compare(name.size() - 4, 4, ".f32") == 0;
      (f32 ? comm_f32 : comm_f64) += tt.comm_bytes;
    }
    record("traffic_dfmmfft_g2_mixed_comm_f32", "bytes", comm_f32, sec);
    record("traffic_dfmmfft_g2_mixed_comm_f64", "bytes", comm_f64, sec);
  }
  {
    // Pencil 3D transform on a 2x2 grid: the two sub-communicator hops'
    // wire payloads (comm.*) and pack/unpack sweeps (a2a.row/col) are exact
    // functions of the shape, so all four rows hard-gate. Wire bytes per
    // phase: (pc-1)/pc (row) and (pr-1)/pr (col) of the N-element array.
    const index_t n0 = 32, n1 = 32, n2 = 16;
    dist::Dist3dFft<double> plan(n0, n1, n2, 4, model::Decomp::Pencil, {2, 2});
    Buffer<Cx> in(n0 * n1 * n2), out(n0 * n1 * n2);
    fill_uniform(in.data(), n0 * n1 * n2, 43);
    obs::TrafficLedger::global().reset();
    WallTimer t;
    plan.execute(in.data(), out.data());
    const double sec = t.seconds();
    record("traffic_dfft3d_pencil_comm_row", "bytes",
           plan.fabric().bytes_with_tag("A2A-ROW"), sec);
    record("traffic_dfft3d_pencil_comm_col", "bytes",
           plan.fabric().bytes_with_tag("A2A-COL"), sec);
    const auto snap = obs::TrafficLedger::global().snapshot();
    auto scope_sum = [&](const char* prefix) {
      double b = 0;
      for (const auto& [name, tt] : snap)
        if (name.rfind(prefix, 0) == 0) b += tt.bytes_moved();
      return b;
    };
    record("traffic_dfft3d_pencil_row_rw", "bytes", scope_sum("a2a.row."), sec);
    record("traffic_dfft3d_pencil_col_rw", "bytes", scope_sum("a2a.col."), sec);
  }
  obs::TrafficLedger::global().reset();
  obs::enable_traffic(was_enabled);
}

/// Flight-recorder hook overhead (metric "ns" per event). The "off" row is
/// the always-on tax every hot path pays for FMMFFT_FLIGHT — it must stay
/// at the one-relaxed-load-and-branch level the health layer promises, and
/// is gated alongside the other obs overhead checks (test_obs's zero-alloc
/// test asserts the same path allocates nothing). The "on" row shows the
/// seqlocked ring-write cost when the recorder is armed.
void bench_flight_overhead() {
  using obs::health::Ev;
  const int iters = 1 << 22;
  obs::health::enable_flight(false);
  const double off = time_best([&] {
    for (int i = 0; i < iters; ++i) FMMFFT_FLIGHT(Mark, i, 0, "bench");
  });
  record("obs_flight_hook_off", "ns", off / iters * 1e9, off);
  obs::health::enable_flight(true);
  const double on = time_best([&] {
    for (int i = 0; i < iters; ++i) FMMFFT_FLIGHT(Mark, i, 0, "bench");
  });
  record("obs_flight_hook_on", "ns", on / iters * 1e9, on);
  obs::health::enable_flight(false);
  obs::health::flight_clear();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_native.json";
  bench::print_header("Native throughput track",
                      "host kernel rates behind the §4 stages (wall clock, this machine)");

  // GEMM: square (Fig. 1 regime) and the FMM's batched tall-skinny shapes.
  bench_gemm_single<double>("gemm_f64_256", 256, 256, 256);
  bench_gemm_single<double>("gemm_f64_512", 512, 512, 512);
  bench_gemm_single<float>("gemm_f32_256", 256, 256, 256);
  // S2M/L2T shape: C·P rows × Q coeffs × M_L leaf points (C=2, P=256, Q=18,
  // M_L=8), one problem per leaf box — every box against the SAME operator
  // (stride_b = 0), exactly how the engine calls gemm_strided_batched.
  bench_gemm_batched<double>("gemm_f64_batched_s2m", 512, 18, 8, 64, /*shared_b=*/true);
  // M2M/L2L shape: the flattened two-child operator, k = 2Q.
  bench_gemm_batched<double>("gemm_f64_batched_m2m", 512, 18, 36, 32, /*shared_b=*/true);
  // fp32 twins of both batched shapes: the GEMM side of the mixed-precision
  // translation pipeline (FMMFFT_PRECISION=mixed).
  bench_gemm_batched<float>("gemm_f32_batched_s2m", 512, 18, 8, 64, /*shared_b=*/true);
  bench_gemm_batched<float>("gemm_f32_batched_m2m", 512, 18, 36, 32, /*shared_b=*/true);
  // Per-item-B contrast: same shapes through the per-item dispatch path.
  bench_gemm_batched<double>("gemm_f64_batched_s2m_peritem", 512, 18, 8, 64, false);
  bench_gemm_batched<double>("gemm_f64_batched_m2m_peritem", 512, 18, 36, 32, false);

  // Batched FFTs at the 2D-FFT stage's shapes: many size-P lines, fewer
  // size-M lines, plus a Bluestein (non-pow2) size.
  bench_fft_batched<double>("fft_f64_512x256", 512, 256);
  bench_fft_batched<double>("fft_f64_4096x64", 4096, 64);
  bench_fft_batched<double>("fft_f64_16384x16", 16384, 16);
  bench_fft_batched<float>("fft_f32_4096x64", 4096, 64);
  bench_fft_batched<double>("fft_f64_blue1000x64", 1000, 64);

  // The Π_{M,P} permutation / Plan2D transpose primitive: cache-oblivious
  // kernel, the pre-fusion 32×32 reference, the in-place square variant,
  // and the fused vs staged all-to-all built on it.
  bench_transpose("transpose_c64_1024", 1024, 1024);
  bench_transpose_ref("transpose_ref_c64_1024", 1024, 1024);
  bench_transpose_inplace("transpose_inplace_c64_1024", 1024);
  bench_a2a(1024, 1024, 4);
  bench_a2a_grid(1024, 1024, 4);

  bench_engine_kernels();

  bench_fmmfft_e2e();

  // Distributed e2e, serial driver vs async executor (overlap headroom
  // scales with hardware threads; byte-identity is checked regardless).
  for (int g : {2, 4})
    if (!bench_dist_e2e(g)) return 1;
  if (!bench_dist_e2e(2, fmm::Precision::Mixed)) return 1;

  bench_traffic_bytes();

  bench_flight_overhead();

  // STREAM-style machine roofline: measured copy/scale/triad bandwidth and
  // peak FMA rate at 1 thread and at the pool width. Anchors the achieved
  // GB/s columns of the ledger report on this machine.
  const auto calibration = obs::calibrate_roofline_sweep();

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::JsonWriter jw(os);
  jw.begin_object();
  jw.kv("schema", "fmmfft.bench.native.v1");
  jw.kv("threads", double(ThreadPool::global().workers()));
  jw.key("calibration");
  jw.begin_array();
  for (const auto& r : calibration) {
    jw.begin_object();
    jw.kv("threads", double(r.threads));
    jw.kv("copy_bps", r.copy_bps);
    jw.kv("scale_bps", r.scale_bps);
    jw.kv("triad_bps", r.triad_bps);
    jw.kv("fma_flops", r.fma_flops);
    jw.end_object();
  }
  jw.end_array();
  jw.key("benches");
  jw.begin_array();
  for (const Result& r : g_results) {
    jw.begin_object();
    jw.kv("name", r.name);
    jw.kv("metric", r.metric);
    jw.kv("value", r.value);
    jw.kv("seconds", r.seconds);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  os << "\n";

  Table t({"bench", "metric", "value", "best rep [ms]"});
  for (const Result& r : g_results)
    t.row().col(r.name).col(r.metric).col(r.value, 2).col(r.seconds * 1e3, 3);
  t.print();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
