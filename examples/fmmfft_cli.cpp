// Command-line driver for the library: plan, execute, verify and time an
// FMM-FFT from the shell — the artifact a downstream user scripts against.
//
//   fmmfft_cli --log2n 18 [--precision c64|c32|f64|f32] [--devices G]
//              [--p P --ml ML --b B --q Q | --eps 1e-12]
//              [--simulate 2xk40|2xp100|8xp100] [--seed S]
//              [--trace FILE] [--metrics FILE] [--report FILE]
//
// Without explicit parameters the plan comes from the a-priori error model
// (fmm::suggest_params). With --simulate, the run is also scheduled on the
// chosen paper architecture, compared against the 1D-FFT baseline, and the
// timeline analyzer prints a critical-path / bottleneck summary.
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "dist/dfft3d.hpp"
#include "dist/dfmmfft.hpp"
#include "dist/schedules.hpp"
#include "fft/plan3d.hpp"
#include "fmm/accuracy.hpp"
#include "model/counts.hpp"
#include "model/tuning.hpp"
#include "obs/analyze.hpp"
#include "obs/compare.hpp"
#include "obs/env.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace {

using namespace fmmfft;

struct Options {
  int log2n = 16;
  std::string precision = "c64";
  int devices = 1;
  index_t p = 0, ml = 0;
  int b = 0, q = 0;
  double eps = 1e-12;
  std::string simulate;
  std::uint64_t seed = 1;
  std::string trace, metrics, report, traffic;
  std::string decomp, grid;  // routed through FMMFFT_DECOMP / FMMFFT_GRID
  std::string fft3d;         // "N0xN1xN2": run the distributed 3D FFT instead
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s --log2n K [options]\n"
      "\n"
      "plan / execution:\n"
      "  --log2n K              transform size n = 2^K (K in [10, 26])\n"
      "  --precision c64|c32|f64|f32   input element type (default c64)\n"
      "  --devices G            split the run across G simulated devices\n"
      "  --p P --ml ML --b B --q Q     pin the FMM plan explicitly\n"
      "  --eps E                or derive the plan from a target error (default 1e-12)\n"
      "  --seed S               RNG seed for the input vector\n"
      "\n"
      "distributed decomposition (sets FMMFFT_DECOMP / FMMFFT_GRID):\n"
      "  --decomp slab|pencil|auto\n"
      "                         how distributed 2D/3D transforms split across\n"
      "                         devices: slab = 1D partition, one G-wide\n"
      "                         all-to-all; pencil = PRxPC grid with two-phase\n"
      "                         row/column sub-communicator exchanges; auto\n"
      "                         (default) asks the Sec. 5 cost model\n"
      "  --grid PRxPC           pin the pencil processor grid (e.g. 2x4); must\n"
      "                         multiply to G and divide the transform extents\n"
      "  --fft3d N0xN1xN2       run a distributed 3D FFT of that shape (pow2\n"
      "                         extents) instead of the FMM-FFT: verifies\n"
      "                         against the single-node reference transform,\n"
      "                         prints the decomposition decision and the\n"
      "                         per-phase exchange payloads\n"
      "\n"
      "modeling:\n"
      "  --simulate 2xk40|2xp100|8xp100\n"
      "                         schedule the plan on a paper architecture and\n"
      "                         compare against the 1D-FFT baseline; prints the\n"
      "                         timeline analyzer's critical-path summary\n"
      "\n"
      "observability (both --flag FILE and --flag=FILE forms accepted):\n"
      "  --trace FILE           record spans, write a chrome://tracing JSON\n"
      "  --metrics FILE         record counters/histograms (with p50/p95/p99),\n"
      "                         write a metrics JSON and the model-vs-measured check\n"
      "  --report FILE          write the timeline analyzer report JSON for the\n"
      "                         simulated run (defaults to 2xp100 without --simulate)\n"
      "  --traffic FILE         record the memory-traffic ledger (bytes read/written,\n"
      "                         comm payload, flops per stage), write its JSON and the\n"
      "                         traffic-vs-model check (same as FMMFFT_TRAFFIC=FILE)\n"
      "\n"
      "  --env                  print every FMMFFT_* environment knob (name,\n"
      "                         current value, default, description) and exit\n"
      "  --help                 this message\n",
      argv0);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    // String-valued flags accepting both "--flag value" and "--flag=value".
    auto opt = [&](const char* flag, std::string* out) -> bool {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) != 0) return false;
      if (argv[i][len] == '=') return *out = argv[i] + len + 1, true;
      if (argv[i][len] == '\0') return *out = need(flag), true;
      return false;
    };
    if (!std::strcmp(argv[i], "--help")) {
      print_usage(argv[0]);
      std::exit(0);
    }
    if (!std::strcmp(argv[i], "--env")) {
      std::printf("%s", fmmfft::obs::env::describe().c_str());
      std::exit(0);
    }
    if (opt("--trace", &o.trace) || opt("--metrics", &o.metrics) ||
        opt("--report", &o.report) || opt("--traffic", &o.traffic) ||
        opt("--decomp", &o.decomp) || opt("--grid", &o.grid) || opt("--fft3d", &o.fft3d))
      continue;
    if (!std::strcmp(argv[i], "--log2n")) o.log2n = std::atoi(need("--log2n"));
    else if (!std::strcmp(argv[i], "--precision")) o.precision = need("--precision");
    else if (!std::strcmp(argv[i], "--devices")) o.devices = std::atoi(need("--devices"));
    else if (!std::strcmp(argv[i], "--p")) o.p = std::atoll(need("--p"));
    else if (!std::strcmp(argv[i], "--ml")) o.ml = std::atoll(need("--ml"));
    else if (!std::strcmp(argv[i], "--b")) o.b = std::atoi(need("--b"));
    else if (!std::strcmp(argv[i], "--q")) o.q = std::atoi(need("--q"));
    else if (!std::strcmp(argv[i], "--eps")) o.eps = std::atof(need("--eps"));
    else if (!std::strcmp(argv[i], "--simulate")) o.simulate = need("--simulate");
    else if (!std::strcmp(argv[i], "--seed")) o.seed = std::strtoull(need("--seed"), nullptr, 10);
    else usage(argv[0]);
  }
  if (o.fft3d.empty() && (o.log2n < 10 || o.log2n > 26)) {
    std::printf("--log2n must be in [10, 26] for native execution\n");
    std::exit(2);
  }
  // --decomp/--grid route through the obs::env registry (like FMMFFT_EXEC):
  // validate here for an early diagnostic, then publish as the env knobs so
  // every Dist2dFft/Dist3dFft constructed below resolves them uniformly.
  try {
    if (!o.decomp.empty()) {
      (void)model::parse_decomp(o.decomp);
      setenv("FMMFFT_DECOMP", o.decomp.c_str(), 1);
    }
    if (!o.grid.empty()) {
      (void)model::parse_grid(o.grid);
      setenv("FMMFFT_GRID", o.grid.c_str(), 1);
    }
  } catch (const std::exception& e) {
    std::printf("%s\n", e.what());
    std::exit(2);
  }
  return o;
}

// --fft3d N0xN1xN2: distributed 3D FFT instead of the FMM-FFT pipeline.
// Real = the working scalar of the requested precision (c32 -> float).
template <typename Real>
int run_fft3d(const Options& o) {
  using Cx = std::complex<Real>;
  long long e0 = 0, e1 = 0, e2 = 0;
  if (std::sscanf(o.fft3d.c_str(), "%lldx%lldx%lld", &e0, &e1, &e2) != 3 || e0 <= 0 ||
      e1 <= 0 || e2 <= 0) {
    std::printf("--fft3d expects N0xN1xN2 (e.g. 64x64x32), got '%s'\n", o.fft3d.c_str());
    return 2;
  }
  const index_t n0 = e0, n1 = e1, n2 = e2;
  const index_t n = n0 * n1 * n2;

  if (!o.trace.empty()) obs::enable_tracing(true);
  if (!o.traffic.empty()) obs::enable_traffic(true);

  dist::Dist3dFft<Real> plan(n0, n1, n2, o.devices);
  const auto& dec = plan.decision();
  std::printf("3D FFT %lldx%lldx%lld (N=%lld)  devices=%d  decomp=%s", (long long)n0,
              (long long)n1, (long long)n2, (long long)n, o.devices,
              model::to_string(plan.decomp()));
  if (plan.decomp() == model::Decomp::Pencil)
    std::printf("  grid=%dx%d", plan.grid().pr, plan.grid().pc);
  if (dec.model_decided)
    std::printf("  (model: slab %.3f ms vs pencil %.3f ms)", dec.slab_seconds * 1e3,
                dec.pencil_seconds * 1e3);
  std::printf("\n");

  std::vector<Cx> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, o.seed);
  std::vector<Cx> y(static_cast<std::size_t>(n));

  WallTimer t;
  plan.execute(x.data(), y.data());
  const double secs = t.seconds();

  const double row = plan.fabric().bytes_with_tag("A2A-ROW");
  const double col = plan.fabric().bytes_with_tag("A2A-COL");
  const double slab = plan.fabric().bytes_with_tag("A2A-3D");
  std::printf("execute %.1f ms, exchange payloads: ", secs * 1e3);
  if (plan.decomp() == model::Decomp::Pencil)
    std::printf("row %.2f MB + col %.2f MB (%.2f + %.2f MB/device)\n", row / 1e6, col / 1e6,
                row / 1e6 / o.devices, col / 1e6 / o.devices);
  else
    std::printf("%.2f MB (%.2f MB/device)\n", slab / 1e6, slab / 1e6 / o.devices);

  int rc = 0;
  if (!o.traffic.empty()) {
    const int pr = plan.decomp() == model::Decomp::Pencil ? plan.grid().pr : 0;
    const int pc = plan.decomp() == model::Decomp::Pencil ? plan.grid().pc : 0;
    const auto report =
        obs::compare_fft3d_traffic(n0, n1, n2, o.devices, sizeof(Real), 1, pr, pc);
    std::printf("\ntraffic vs model (FMMFFT_TRAFFIC):\n%s", report.to_string().c_str());
    std::printf("traffic check: %s\n", report.all_ok() ? "OK" : "DEVIATION");
    if (!report.all_ok()) rc = 1;
    std::printf("\n%s", obs::TrafficLedger::global().report().c_str());
    if (obs::write_traffic_file(o.traffic))
      std::printf("wrote traffic ledger to %s\n", o.traffic.c_str());
    else
      std::printf("WARNING: could not write traffic ledger to %s\n", o.traffic.c_str());
  }
  if (!o.trace.empty()) {
    if (obs::write_trace_file(o.trace))
      std::printf("wrote trace to %s\n", o.trace.c_str());
    else
      std::printf("WARNING: could not write trace to %s\n", o.trace.c_str());
  }

  // Verify against the single-node reference transform. Plan3D works on the
  // natural layout (i0 fastest); the distributed driver hands back the fully
  // reversed layout y[i2 + n2·(i1 + n1·i0)], so compare through the remap.
  std::vector<Cx> ref(x);
  fft::Plan3D<Real> p3(n0, n1, n2);
  p3.execute(ref.data(), fft::Direction::Forward);
  double num = 0, den = 0;
  for (index_t i2 = 0; i2 < n2; ++i2)
    for (index_t i1 = 0; i1 < n1; ++i1)
      for (index_t i0 = 0; i0 < n0; ++i0) {
        const Cx a = y[(std::size_t)(i2 + n2 * (i1 + n1 * i0))];
        const Cx b = ref[(std::size_t)(i0 + n0 * (i1 + n1 * i2))];
        num += std::norm(a - b);
        den += std::norm(b);
      }
  const double err = std::sqrt(num / den);
  std::printf("rel l2 error vs reference 3D transform: %.2e\n", err);
  const double tol = sizeof(Real) == 8 ? 1e-12 : 1e-4;
  if (err > tol) rc = 1;
  return rc;
}

template <typename InT>
int run(const Options& o) {
  using Real = real_of_t<InT>;
  using Out = std::complex<Real>;
  const index_t n = index_t(1) << o.log2n;

  // Translation precision (FMMFFT_PRECISION): Mixed narrows the FMM
  // pipeline and its comm payloads to fp32 under an fp64 shell.
  const fmm::Precision prec = fmm::default_precision();
  fmm::Params prm;
  if (o.p > 0) {
    prm = fmm::Params{n, o.p, o.ml, o.b, o.q};
    prm.validate_distributed(o.devices);
  } else {
    prm = fmm::suggest_params(n, o.eps, o.devices, prec, sizeof(Real) == 8);
  }
  std::printf("plan: %s  devices=%d  precision=%s  translation=%s\n", prm.to_string().c_str(),
              o.devices, o.precision.c_str(), fmm::to_string(prec));
  std::printf("predicted rel l2 error: %.1e\n",
              fmm::predict_rel_error(prm.q, sizeof(Real) == 8, prec));

  if (!o.trace.empty()) obs::enable_tracing(true);
  if (!o.metrics.empty()) obs::enable_metrics(true);
  if (!o.traffic.empty()) obs::enable_traffic(true);

  std::vector<InT> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, o.seed);
  std::vector<Out> y(static_cast<std::size_t>(n));

  WallTimer t;
  int pr = 0, pc = 0;  // the 2D-FFT stage's pencil grid (0/0 = slab)
  if (o.devices > 1) {
    dist::DistFmmFft<InT> plan(prm, o.devices, prec);
    const double setup = t.seconds();
    t.reset();
    plan.execute(x.data(), y.data());
    std::printf("setup %.1f ms, execute %.1f ms, comm %.2f MB over the fabric\n", setup * 1e3,
                t.seconds() * 1e3, plan.fabric().total_bytes() / 1e6);
    if (plan.fft2d().decomp() == model::Decomp::Pencil) {
      pr = plan.fft2d().grid().pr;
      pc = plan.fft2d().grid().pc;
      std::printf("2D FFT exchange: pencil %dx%d (row %.2f MB + col %.2f MB)\n", pr, pc,
                  plan.fabric().bytes_with_tag("A2A-ROW") / 1e6,
                  plan.fabric().bytes_with_tag("A2A-COL") / 1e6);
    }
  } else {
    core::FmmFft<InT> plan(prm, /*fuse_post=*/true, prec);
    const double setup = t.seconds();
    t.reset();
    plan.execute(x.data(), y.data());
    std::printf("setup %.1f ms, execute %.1f ms (FMM %.1f ms in %lld launches, 2D FFT %.1f ms)\n",
                setup * 1e3, t.seconds() * 1e3, plan.profile().fmm_seconds() * 1e3,
                (long long)plan.profile().kernel_launches(), plan.profile().fft_seconds * 1e3);
  }

  // Model-vs-measured check must run now: the exact-FFT verification below
  // would add its own fft.flops to the counters.
  if (obs::metrics_enabled()) {
    const auto report =
        obs::compare_with_model(prm, is_complex_v<InT> ? 2 : 1, o.devices, sizeof(Real), 1,
                                fmm::translation_real_bytes(prec, sizeof(Real)));
    std::printf("\nmodel vs measured (FMMFFT_METRICS):\n%s", report.to_string().c_str());
    std::printf("model check: %s\n", report.all_ok() ? "OK" : "DEVIATION");
  }

  // Dump observability artifacts now, before the exact-FFT verification
  // below contaminates the counters with its own fft.flops.
  if (!o.trace.empty()) {
    if (obs::write_trace_file(o.trace))
      std::printf("wrote trace to %s\n", o.trace.c_str());
    else
      std::printf("WARNING: could not write trace to %s\n", o.trace.c_str());
  }
  if (!o.metrics.empty()) {
    if (obs::write_metrics_file(o.metrics))
      std::printf("wrote metrics to %s\n", o.metrics.c_str());
    else
      std::printf("WARNING: could not write metrics to %s\n", o.metrics.c_str());
  }
  if (!o.traffic.empty()) {
    // Same ordering constraint: the exact-FFT verification below would add
    // its own fft bytes to the ledger. pr/pc: when the 2D-FFT stage resolved
    // to the pencil exchange, check the per-phase payloads instead of A2A-2D.
    const auto report = obs::compare_traffic_with_model(
        prm, is_complex_v<InT> ? 2 : 1, o.devices, sizeof(Real), 1,
        fmm::translation_real_bytes(prec, sizeof(Real)), pr, pc);
    std::printf("\ntraffic vs model (FMMFFT_TRAFFIC):\n%s", report.to_string().c_str());
    std::printf("traffic check: %s\n", report.all_ok() ? "OK" : "DEVIATION");
    std::printf("\n%s", obs::TrafficLedger::global().report().c_str());
    if (obs::write_traffic_file(o.traffic))
      std::printf("wrote traffic ledger to %s\n", o.traffic.c_str());
    else
      std::printf("WARNING: could not write traffic ledger to %s\n", o.traffic.c_str());
  }

  // Verify against the exact transform in double precision.
  std::vector<std::complex<double>> xd(x.size()), ref(x.size()), yd(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if constexpr (is_complex_v<InT>)
      xd[i] = {double(x[i].real()), double(x[i].imag())};
    else
      xd[i] = {double(x[i]), 0.0};
    yd[i] = {double(y[i].real()), double(y[i].imag())};
  }
  core::exact_fft(n, xd.data(), ref.data());
  const double err = rel_l2_error(yd.data(), ref.data(), n);
  std::printf("measured rel l2 error: %.2e\n", err);

  if (!o.simulate.empty() || !o.report.empty()) {
    // --report without --simulate analyzes the default paper architecture.
    const std::string which = o.simulate.empty() ? "2xp100" : o.simulate;
    model::ArchParams arch = which == "2xk40"    ? model::k40c_pcie(2)
                             : which == "8xp100" ? model::p100_nvlink(8)
                                                 : model::p100_nvlink(2);
    const model::Workload w{n, is_complex_v<InT>, sizeof(Real) == 8};
    auto fsched = dist::fmmfft_schedule(prm, w, arch.num_devices);
    const auto fres = fsched.simulate(arch);
    const double tb =
        dist::baseline1d_schedule(n, w, arch.num_devices).simulate(arch).total_seconds;
    std::printf("simulated on %s: FMM-FFT %.3f ms vs 1D FFT %.3f ms -> speedup %.2fx\n",
                arch.name.c_str(), fres.total_seconds * 1e3, tb * 1e3,
                tb / fres.total_seconds);

    const obs::Report rep = obs::analyze(fsched, fres, arch);
    std::printf("\n%s", rep.to_string().c_str());
    if (!o.report.empty()) {
      std::ofstream os(o.report);
      if (os) {
        rep.write_json(os);
        os << "\n";
        std::printf("wrote analyzer report to %s\n", o.report.c_str());
      } else {
        std::printf("WARNING: could not write report to %s\n", o.report.c_str());
      }
    }
  }
  return err < fmm::predict_rel_error(prm.q, sizeof(Real) == 8, prec) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (!o.fft3d.empty()) {
    if (o.precision == "c64" || o.precision == "f64") return run_fft3d<double>(o);
    if (o.precision == "c32" || o.precision == "f32") return run_fft3d<float>(o);
    usage(argv[0]);
  }
  if (o.precision == "c64") return run<std::complex<double>>(o);
  if (o.precision == "c32") return run<std::complex<float>>(o);
  if (o.precision == "f64") return run<double>(o);
  if (o.precision == "f32") return run<float>(o);
  usage(argv[0]);
}
