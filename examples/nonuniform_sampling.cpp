// Nonequispaced sampling with the FMM-based NUFFT (the Dutt–Rokhlin
// algorithm the FMM-FFT generalizes, paper §2).
//
// Scenario: a signal acquired as a uniform spectrum must be evaluated on a
// measurement grid that is anything but uniform — here, Chebyshev-clustered
// points such as arise in spectral methods and synthetic-aperture resampling.
// Compares the O(n log n + m) FMM path against direct O(n·m) evaluation.
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nufft/nufft.hpp"

int main() {
  using namespace fmmfft;
  using Cd = std::complex<double>;

  const index_t n = 1 << 14;   // spectrum size
  const index_t m = 20000;     // nonuniform evaluation points

  // Chebyshev-clustered targets in [0, 2π): dense near the interval ends.
  std::vector<double> targets(static_cast<std::size_t>(m));
  for (index_t j = 0; j < m; ++j)
    targets[(std::size_t)j] =
        pi_v<double> * (1.0 - std::cos(pi_v<double> * (j + 0.5) / double(m)));

  std::vector<Cd> spectrum(static_cast<std::size_t>(n));
  fill_uniform(spectrum.data(), n, 2026);

  WallTimer t;
  nufft::NufftType2<double> plan(n, targets, /*q=*/18, /*ml=*/16, /*b=*/3);
  const double t_plan = t.seconds();

  std::vector<Cd> fast(static_cast<std::size_t>(m));
  t.reset();
  plan.execute(spectrum.data(), fast.data());
  const double t_fast = t.seconds();

  std::vector<Cd> exact(static_cast<std::size_t>(m));
  t.reset();
  plan.reference(spectrum.data(), exact.data());
  const double t_direct = t.seconds();

  std::printf("NUFFT type 2: n = %lld spectrum, m = %lld clustered targets\n", (long long)n,
              (long long)m);
  std::printf("plan %.1f ms;  FMM path %.1f ms;  direct %.1f ms  (%.0fx)\n", t_plan * 1e3,
              t_fast * 1e3, t_direct * 1e3, t_direct / t_fast);
  const double err = rel_l2_error(fast.data(), exact.data(), m);
  std::printf("relative l2 error vs direct evaluation: %.2e\n", err);
  return err < 1e-9 ? 0 : 1;
}
