// Multi-device scaling of the FMM-FFT on the simulated fabric.
//
// Runs the distributed FMM-FFT for G = 1, 2, 4, 8 devices on the same
// input, confirms all device counts produce the same (correct) transform,
// compares the communication ledger against the three-transpose baseline,
// and reports simulated wall times under the paper's 8xP100 architecture.
#include <complex>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/reference.hpp"
#include "dist/dfft.hpp"
#include "dist/dfmmfft.hpp"
#include "dist/schedules.hpp"

int main() {
  using namespace fmmfft;
  using Cx = std::complex<double>;

  const index_t n = 1 << 20;
  const fmm::Params params{n, 64, 32, 3, 18};
  std::vector<Cx> x(static_cast<std::size_t>(n)), ref(x.size());
  fill_uniform(x.data(), n, 11);
  core::exact_fft(n, x.data(), ref.data());

  std::printf("distributed FMM-FFT, %s\n\n", params.to_string().c_str());
  Table t({"G", "rel l2 error", "FMM-FFT comm [MB]", "baseline comm [MB]", "comm ratio",
           "sim t(FMM-FFT) [ms]", "sim t(1D FFT) [ms]", "sim speedup"});
  for (int g : {1, 2, 4, 8}) {
    if (!params.is_admissible(g)) continue;
    dist::DistFmmFft<Cx> plan(params, g);
    std::vector<Cx> y(x.size());
    plan.execute(x.data(), y.data());
    const double err = rel_l2_error(y.data(), ref.data(), n);

    dist::DistFft1d<double> base(n, g);
    std::vector<Cx> yb(x.size());
    base.execute(x.data(), yb.data());

    const double fmm_mb = plan.fabric().total_bytes() / 1e6;
    const double base_mb = base.fabric().total_bytes() / 1e6;

    const model::Workload w{n, true, true};
    auto arch = model::p100_nvlink(g);
    const double t_fmm = dist::fmmfft_schedule(params, w, g).simulate(arch).total_seconds;
    const double t_base = dist::baseline1d_schedule(n, w, g).simulate(arch).total_seconds;

    t.row()
        .col(g)
        .col_sci(err)
        .col(fmm_mb, 2)
        .col(base_mb, 2)
        .col(g > 1 ? fmm_mb / base_mb : 0.0, 2)
        .col(t_fmm * 1e3, 3)
        .col(t_base * 1e3, 3)
        .col(g > 1 ? t_base / t_fmm : 1.0, 2);
  }
  t.print();
  std::printf("\nevery G produces the same in-order transform; the FMM-FFT replaces three\n"
              "transposes with one plus fixed-size halos, so its share of the baseline's\n"
              "bytes falls toward 1/3 as N grows (the halo volume is independent of N).\n");
  return 0;
}
