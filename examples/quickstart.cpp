// Quickstart: compute an in-order 1D FFT with the FMM-FFT and check it
// against the exact transform.
//
//   $ ./examples/quickstart
//
// Walks through the minimal API surface: pick parameters, build a plan,
// execute, inspect the profile.
#include <complex>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"

int main() {
  using namespace fmmfft;
  using Cx = std::complex<double>;

  // 1. Choose a transform size and the FMM-FFT parameters.
  //    N = M·P; each of the P-1 FMMs has 2^L leaves of M_L points, a base
  //    level B, and Q-term Chebyshev expansions. Q=18 reaches double
  //    precision; Q=8 suffices for single precision.
  const index_t n = 1 << 16;
  fmm::Params params{n, /*P=*/128, /*M_L=*/16, /*B=*/3, /*Q=*/18};
  params.validate();
  std::printf("plan: %s\n", params.to_string().c_str());

  // 2. Build the plan once (operators, twiddles, workspaces)...
  core::FmmFft<Cx> plan(params);

  // 3. ...and execute it on any number of inputs.
  std::vector<Cx> x(static_cast<std::size_t>(n)), y(x.size());
  fill_uniform(x.data(), n, /*seed=*/2026);
  plan.execute(x.data(), y.data());

  // 4. Verify against the exact FFT.
  std::vector<Cx> ref(x.size());
  core::exact_fft(n, x.data(), ref.data());
  std::printf("relative l2 error vs exact FFT: %.3e (paper bound: < 2e-14)\n",
              rel_l2_error(y.data(), ref.data(), n));

  // 5. Inspect where the time went.
  const auto& prof = plan.profile();
  std::printf("FMM stage: %.2f ms in %lld kernel launches (%.2f GFlop)\n",
              prof.fmm_seconds() * 1e3, (long long)prof.kernel_launches(),
              prof.fmm_flops() / 1e9);
  std::printf("post+2D FFT: %.2f ms;  total: %.2f ms\n",
              (prof.post_seconds + prof.fft_seconds) * 1e3, prof.total_seconds * 1e3);
  return 0;
}
