// Parameter tuning explorer: how the paper's "fastest FMM-FFT found by
// searching the parameter space" (Fig. 3) is produced.
//
// Enumerates every admissible (P, M_L, B) for a transform size, ranks them
// with the §5 roofline model under the paper's 2xP100 architecture, then
// actually executes the top candidates natively and reports model rank vs
// measured time and accuracy.
#include <algorithm>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "model/counts.hpp"

int main() {
  using namespace fmmfft;
  using Cx = std::complex<double>;

  const index_t n = 1 << 18;
  const int q = 18;
  const model::Workload w{n, true, true};
  const auto arch = model::p100_nvlink(2);

  auto cands = fmm::admissible_params(n, /*g=*/2, q, /*b_max=*/6);
  std::printf("N = 2^18: %zu admissible parameter sets (G=2, Q=%d)\n", cands.size(), q);

  std::vector<std::pair<double, fmm::Params>> ranked;
  for (const auto& prm : cands)
    ranked.emplace_back(model::fmmfft_seconds(prm, w, arch, true), prm);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::printf("\ntop 8 by model time (2xP100):\n");
  Table t({"rank", "P", "ML", "B", "model [ms]", "FMM GFlop", "comm scalars/dev"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
    const auto& [sec, prm] = ranked[i];
    t.row()
        .col((long long)(i + 1))
        .col((long long)prm.p)
        .col((long long)prm.ml)
        .col(prm.b)
        .col(sec * 1e3, 3)
        .col(model::paper_fmm_flops(prm, w.c(), 2) / 1e9, 2)
        .col(model::paper_fmm_comm(prm, w.c(), 2).total(), 0);
  }
  t.print();

  // Execute the best, the median, and the worst candidate natively.
  std::vector<Cx> x(static_cast<std::size_t>(n)), ref(x.size());
  fill_uniform(x.data(), n, 3);
  core::exact_fft(n, x.data(), ref.data());

  std::printf("\nnative execution of best / median / worst model candidates:\n");
  Table e({"candidate", "P", "ML", "B", "measured [ms]", "rel l2 error"});
  const std::size_t picks[] = {0, ranked.size() / 2, ranked.size() - 1};
  const char* names[] = {"best", "median", "worst"};
  for (int i = 0; i < 3; ++i) {
    const auto& prm = ranked[picks[i]].second;
    core::FmmFft<Cx> plan(prm);
    std::vector<Cx> y(x.size());
    plan.execute(x.data(), y.data());
    plan.execute(x.data(), y.data());  // warm second run
    e.row()
        .col(names[i])
        .col((long long)prm.p)
        .col((long long)prm.ml)
        .col(prm.b)
        .col(plan.profile().total_seconds * 1e3, 2)
        .col_sci(rel_l2_error(y.data(), ref.data(), n));
  }
  e.print();
  std::printf("\nthe model is a ranking device: its best candidate should land near the\n"
              "front of the native ordering even though absolute times differ by platform.\n");
  return 0;
}
