// Spectral low-pass filtering of a long 1D signal with the FMM-FFT.
//
// The workload the paper's introduction motivates: long 1D transforms in
// signal analysis. A multi-tone signal is buried in broadband noise; we
// transform with the FMM-FFT, keep only the low band, and invert. The
// inverse reuses the forward plan through the conjugation identity
// ifft(X) = conj(fft(conj(X)))/N, so the entire round trip exercises the
// low-communication path.
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/fmmfft.hpp"

int main() {
  using namespace fmmfft;
  using Cx = std::complex<double>;

  const index_t n = 1 << 18;
  fmm::Params params{n, 256, 16, 3, 18};
  core::FmmFft<Cx> plan(params);

  // Clean signal: three tones well inside the kept band.
  const double tones[][2] = {{40.0, 1.0}, {170.0, 0.6}, {801.0, 0.3}};  // (bin, amplitude)
  std::vector<Cx> clean(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    double v = 0;
    for (auto& [k, a] : tones) v += a * std::cos(2.0 * pi_v<double> * k * t / double(n));
    clean[(std::size_t)t] = Cx(v, 0);
  }

  // Add broadband noise.
  Rng rng(7);
  std::vector<Cx> noisy = clean;
  for (auto& v : noisy) v += Cx(0.8 * rng.uniform_sym(), 0.0);

  auto energy = [&](const std::vector<Cx>& a, const std::vector<Cx>& b) {
    double e = 0;
    for (std::size_t i = 0; i < a.size(); ++i) e += std::norm(a[i] - b[i]);
    return e;
  };
  auto snr_db = [&](const std::vector<Cx>& sig) {
    double es = 0;
    for (auto& v : clean) es += std::norm(v);
    return 10.0 * std::log10(es / energy(sig, clean));
  };
  std::printf("input SNR:     %6.2f dB\n", snr_db(noisy));

  // Forward transform (FMM-FFT), low-pass to |k| <= 1024, inverse via the
  // conjugation identity — both directions through the FMM-FFT plan.
  std::vector<Cx> spec(noisy.size()), filtered(noisy.size());
  plan.execute(noisy.data(), spec.data());
  const index_t cutoff = 1024;
  for (index_t k = 0; k < n; ++k) {
    const index_t f = std::min(k, n - k);  // two-sided frequency
    if (f > cutoff) spec[(std::size_t)k] = Cx(0);
  }
  for (auto& v : spec) v = std::conj(v);
  plan.execute(spec.data(), filtered.data());
  for (auto& v : filtered) v = std::conj(v) / double(n);

  std::printf("filtered SNR:  %6.2f dB   (tones at bins 40/170/801, cutoff 1024)\n",
              snr_db(filtered));
  std::printf("FMM stage per transform: %.2f ms, %lld launches\n",
              plan.profile().fmm_seconds() * 1e3, (long long)plan.profile().kernel_launches());

  // Sanity: the kept tones survive nearly unchanged.
  double worst = 0;
  for (auto& [k, a] : tones) {
    Cx bin = 0;
    for (index_t t = 0; t < n; ++t)
      bin += filtered[(std::size_t)t] *
             std::exp(Cx(0, -2.0 * pi_v<double> * k * t / double(n)));
    const double rec = 2.0 * std::abs(bin) / double(n);
    worst = std::max(worst, std::abs(rec - a) / a);
    std::printf("tone @%4.0f: amplitude %.3f (expected %.3f)\n", k, rec, a);
  }
  std::printf("worst tone amplitude error: %.2f%%\n", worst * 100.0);
  return worst < 0.05 ? 0 : 1;
}
