// Tests for the thread pool and parallel_for, including multi-threaded
// consistency of the parallelized BLAS/FMM paths.
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "blas/blas.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fmm/engine.hpp"

namespace fmmfft {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(64);
  std::function<void(index_t)> fn = [&](index_t i) { hits[(std::size_t)i]++; };
  pool.run_chunks(64, fn);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<index_t> sum{0};
    std::function<void(index_t)> fn = [&](index_t i) { sum += i; };
    pool.run_chunks(100, fn);
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPool, SingleWorkerInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  index_t sum = 0;  // no atomics needed: inline execution
  std::function<void(index_t)> fn = [&](index_t i) { sum += i; };
  pool.run_chunks(10, fn);
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ZeroChunksIsNoOp) {
  ThreadPool pool(2);
  std::function<void(index_t)> fn = [&](index_t) { FAIL(); };
  pool.run_chunks(0, fn);
}

TEST(ParallelFor, CoversRangeWithoutOverlap) {
  const index_t n = 100000;
  std::vector<std::atomic<unsigned char>> mark(static_cast<std::size_t>(n));
  parallel_for(n, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) mark[(std::size_t)i]++;
  });
  for (auto& m : mark) EXPECT_EQ(m.load(), 1);
}

TEST(ParallelFor, GrainLimitsSplitting) {
  // With grain >= n the body must run exactly once over the whole range.
  std::atomic<int> calls{0};
  parallel_for(
      1000,
      [&](index_t b, index_t e) {
        ++calls;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 1000);
      },
      /*grain=*/100000);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, EmptyRange) {
  parallel_for(0, [&](index_t, index_t) { FAIL(); });
}

TEST(ParallelFor, ChunkCountOversubscribesAndRespectsGrain) {
  // One worker always means one chunk, whatever the range.
  EXPECT_EQ(parallel_for_chunks(1, 1 << 20, 1), 1);
  // Plenty of work: workers × oversubscription chunks.
  EXPECT_EQ(parallel_for_chunks(4, 1 << 20, 1), 4 * kParallelForOversubscribe);
  // The grain floors chunk size: 10 items at grain 4 -> at most 2 chunks.
  EXPECT_EQ(parallel_for_chunks(8, 10, 4), 2);
  // Range smaller than the grain collapses to a single chunk.
  EXPECT_EQ(parallel_for_chunks(8, 3, 100), 1);
  // Empty range produces no chunks.
  EXPECT_EQ(parallel_for_chunks(8, 0, 1), 0);
}

TEST(ParallelFor, ScopedSerialForcesInline) {
  ThreadPool::ScopedSerial serial;
  EXPECT_TRUE(ThreadPool::serial_forced());
  std::atomic<int> calls{0};
  const auto me = std::this_thread::get_id();
  parallel_for(
      100000,
      [&](index_t b, index_t e) {
        ++calls;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 100000);
        EXPECT_EQ(std::this_thread::get_id(), me);
      },
      /*grain=*/1);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, SerialForcedClearsOnScopeExit) {
  {
    ThreadPool::ScopedSerial serial;
    ThreadPool::ScopedSerial nested;  // guards nest
    EXPECT_TRUE(ThreadPool::serial_forced());
  }
  EXPECT_FALSE(ThreadPool::serial_forced());
}

TEST(ParallelFor, NestedCallRunsInlineWithoutDeadlock) {
  // A parallel_for inside a pool chunk must degrade to inline execution:
  // the pool's dispatch state is per-pool, so re-entering it from a worker
  // would corrupt the outer dispatch (or deadlock a 1-worker pool).
  const index_t outer = 64, inner = 1000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(outer * inner));
  parallel_for(
      outer,
      [&](index_t ob, index_t oe) {
        for (index_t o = ob; o < oe; ++o)
          parallel_for(
              inner,
              [&](index_t ib, index_t ie) {
                for (index_t i = ib; i < ie; ++i) hits[(std::size_t)(o * inner + i)]++;
              },
              /*grain=*/1);
      },
      /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelBlas, BatchedGemmMatchesSerialLoop) {
  // The pool-sharded batched GEMM must be bit-identical to per-batch GEMMs
  // (each batch is computed by exactly one worker with its own workspace).
  const index_t m = 24, n = 16, k = 12, batch = 33;
  std::vector<double> a(m * k * batch), b(k * n * batch), c0(m * n * batch, 0),
      c1(m * n * batch, 0);
  fill_uniform(a.data(), (index_t)a.size(), 1);
  fill_uniform(b.data(), (index_t)b.size(), 2);
  blas::gemm_strided_batched<double>(blas::Op::N, blas::Op::N, m, n, k, 1.0, a.data(), m, m * k,
                                     b.data(), k, k * n, 0.0, c0.data(), m, m * n, batch);
  for (index_t g = 0; g < batch; ++g)
    blas::gemm<double>(blas::Op::N, blas::Op::N, m, n, k, 1.0, a.data() + g * m * k, m,
                       b.data() + g * k * n, k, 0.0, c1.data() + g * m * n, m);
  EXPECT_EQ(c0, c1);
}

TEST(ParallelEngine, RepeatedRunsAreBitIdentical) {
  // Box-sharded custom kernels must be deterministic run to run.
  fmm::Params prm{1 << 12, 32, 8, 2, 10};
  std::vector<std::complex<double>> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 5);
  std::vector<double> first;
  for (int round = 0; round < 3; ++round) {
    fmm::Engine<double> eng(prm, 2);
    std::memcpy(eng.source_box(0), x.data(), sizeof(x[0]) * x.size());
    eng.run_single_node();
    std::vector<double> t(eng.target_box(0), eng.target_box(0) + 2 * prm.n);
    if (round == 0)
      first = t;
    else
      EXPECT_EQ(t, first) << "round " << round;
  }
}

TEST(ThreadPool, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::default_workers(), 1);
  EXPECT_GE(ThreadPool::global().workers(), 1);
}

}  // namespace
}  // namespace fmmfft
