// Tests for the exec:: task-graph executor and the bit-identity guarantee
// of the async distributed drivers: dependency semantics (diamond), ordered
// per-lane FIFO, exception propagation with cancellation, and byte-for-byte
// serial-vs-async agreement of DistFmmFft / Dist2dFft at g = 1, 2, 4.
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "dist/dfft.hpp"
#include "dist/dfmmfft.hpp"
#include "exec/executor.hpp"

namespace fmmfft::exec {
namespace {

using Cd = std::complex<double>;

TEST(TaskGraph, DiamondDependencies) {
  // A -> {B, C} -> D: D sees both updates, and run_seq respects the edges.
  TaskGraph g(1);
  int x = 0, y = 0, z = 0;
  const TaskId a = g.submit("A", {0, false, "t"}, [&] { x = 1; });
  const TaskId bb = g.submit("B", {0, false, "t"}, [&] { y = x + 1; }, {a});
  const TaskId cc = g.submit("C", {0, false, "t"}, [&] { z = x + 2; }, {a});
  const TaskId d = g.submit("D", {0, false, "t"}, [&] { x = y + z; }, {bb, cc});
  ThreadPool pool(4);
  g.run(pool);
  EXPECT_EQ(x, 5);
  const auto& rec = g.records();
  EXPECT_LT(rec[(std::size_t)a].run_seq, rec[(std::size_t)bb].run_seq);
  EXPECT_LT(rec[(std::size_t)a].run_seq, rec[(std::size_t)cc].run_seq);
  EXPECT_GT(rec[(std::size_t)d].run_seq, rec[(std::size_t)bb].run_seq);
  EXPECT_GT(rec[(std::size_t)d].run_seq, rec[(std::size_t)cc].run_seq);
  for (const auto& r : rec) {
    EXPECT_GE(r.worker, 0);
    EXPECT_LE(r.start_ns, r.end_ns);
    EXPECT_GT(r.end_ns, 0u);
  }
}

TEST(TaskGraph, OrderedLaneIsFifo) {
  // Ordered tasks on one lane run in submission order even with many
  // workers; a second lane's tasks interleave freely but stay FIFO too.
  TaskGraph g(2);
  std::vector<int> lane0, lane1;
  for (int i = 0; i < 16; ++i) {
    g.submit("l0", {0, true, "t"}, [&lane0, i] { lane0.push_back(i); });
    g.submit("l1", {1, true, "t"}, [&lane1, i] { lane1.push_back(i); });
  }
  ThreadPool pool(4);
  g.run(pool);
  ASSERT_EQ(lane0.size(), 16u);
  ASSERT_EQ(lane1.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(lane0[(std::size_t)i], i);
    EXPECT_EQ(lane1[(std::size_t)i], i);
  }
}

TEST(TaskGraph, UnorderedTasksAllRun) {
  TaskGraph g(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i)
    g.submit("u", {0, false, "t"}, [&count] { count.fetch_add(1); });
  ThreadPool pool(4);
  g.run(pool);
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(g.size(), 64);
}

TEST(TaskGraph, ExceptionPropagatesAndCancels) {
  // The thrower's exception surfaces from run(); its dependents never run.
  TaskGraph g(1);
  bool ran_after = false;
  const TaskId boom =
      g.submit("boom", {0, true, "t"}, [] { throw std::runtime_error("task failed"); });
  const TaskId after =
      g.submit("after", {0, true, "t"}, [&ran_after] { ran_after = true; }, {boom});
  ThreadPool pool(2);
  // The rethrown error carries the failing task's span/stage/lane labels on
  // top of the original message.
  try {
    g.run(pool);
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'t:boom'"), std::string::npos) << what;
    EXPECT_NE(what.find("stage 't'"), std::string::npos) << what;
    EXPECT_NE(what.find("lane 0"), std::string::npos) << what;
    EXPECT_NE(what.find("task failed"), std::string::npos) << what;
  }
  EXPECT_FALSE(ran_after);
  EXPECT_EQ(g.records()[(std::size_t)after].run_seq, -1);
}

TEST(TaskGraph, RejectsForwardAndSelfDeps) {
  TaskGraph g(1);
  EXPECT_THROW(g.submit("bad", {0, false, "t"}, [] {}, {0}), Error);  // self/forward id
  const TaskId a = g.submit("a", {0, false, "t"}, [] {});
  EXPECT_THROW(g.submit("bad2", {0, false, "t"}, [] {}, {a + 7}), Error);
}

TEST(TaskGraph, RunIsSingleUse) {
  TaskGraph g(1);
  g.submit("a", {0, false, "t"}, [] {});
  ThreadPool pool(1);
  g.run(pool);
  EXPECT_THROW(g.run(pool), Error);
}

TEST(TaskGraph, SpanNamesCarryStagePrefix) {
  TaskGraph g(1);
  const TaskId a = g.submit("load d0", {0, true, "fmm"}, [] {});
  const TaskId bb = g.submit("bare", {0, true, ""}, [] {});
  EXPECT_EQ(g.records()[(std::size_t)a].span, "fmm:load d0");
  EXPECT_EQ(g.records()[(std::size_t)bb].span, "bare");
}

TEST(Mode, ScopedOverrideRestores) {
  const Mode outer = mode();
  {
    ScopedMode sm(Mode::Serial);
    EXPECT_EQ(mode(), Mode::Serial);
    {
      ScopedMode sm2(Mode::Async);
      EXPECT_EQ(mode(), Mode::Async);
    }
    EXPECT_EQ(mode(), Mode::Serial);
  }
  EXPECT_EQ(mode(), outer);
}

TEST(Mode, AutoResolvesByWorkFloor) {
  // Auto picks the serial driver below the per-device work floor (where the
  // graph's submit/run overhead beats the overlap) and the executor at or
  // above it; explicit modes pass through resolve_mode untouched.
  const index_t floor = auto_work_floor();
  ASSERT_GT(floor, 0);
  {
    ScopedMode sm(Mode::Auto);
    EXPECT_EQ(resolve_mode(floor - 1), Mode::Serial);
    EXPECT_EQ(resolve_mode(floor), Mode::Async);
    EXPECT_EQ(resolve_mode(0), Mode::Serial);
  }
  {
    ScopedMode sm(Mode::Serial);
    EXPECT_EQ(resolve_mode(index_t(1) << 30), Mode::Serial);
  }
  {
    ScopedMode sm(Mode::Async);
    EXPECT_EQ(resolve_mode(0), Mode::Async);
  }
}

TEST(DeviceLanes, NumberingIsDisjoint) {
  DeviceLanes lanes(4);
  EXPECT_EQ(lanes.count(), 4 + 16);
  std::vector<bool> seen((std::size_t)lanes.count(), false);
  for (int d = 0; d < 4; ++d) {
    ASSERT_FALSE(seen[(std::size_t)lanes.compute(d)]);
    seen[(std::size_t)lanes.compute(d)] = true;
  }
  for (int s = 0; s < 4; ++s)
    for (int d = 0; d < 4; ++d) {
      ASSERT_FALSE(seen[(std::size_t)lanes.copy(s, d)]);
      seen[(std::size_t)lanes.copy(s, d)] = true;
    }
}

// -- Serial-vs-async bit-identity -------------------------------------------

TEST(Dist2dFftAsync, BitIdenticalToSerial) {
  const index_t m = 64, p = 16;
  for (int g : {1, 2, 4}) {
    std::vector<Cd> x((std::size_t)(m * p)), serial(x.size()), async(x.size());
    fill_uniform(x.data(), m * p, 70 + g);
    dist::Dist2dFft<double> plan_s(m, p, g);
    dist::Dist2dFft<double> plan_a(m, p, g);
    {
      ScopedMode sm(Mode::Serial);
      plan_s.execute(x.data(), serial.data());
    }
    {
      ScopedMode sm(Mode::Async);
      plan_a.execute(x.data(), async.data());
    }
    EXPECT_EQ(std::memcmp(serial.data(), async.data(), sizeof(Cd) * serial.size()), 0)
        << "Dist2dFft serial vs async differ at g=" << g;
    // Chunked copies move exactly the bytes of the single-message path.
    EXPECT_DOUBLE_EQ(plan_a.fabric().bytes_with_tag("A2A-2D"),
                     plan_s.fabric().bytes_with_tag("A2A-2D"));
  }
}

TEST(DistFmmFftAsync, BitIdenticalToSerial) {
  fmm::Params prm{1 << 14, 64, 4, 3, 18};
  for (int g : {1, 2, 4}) {
    std::vector<Cd> x((std::size_t)prm.n), serial(x.size()), async(x.size());
    fill_uniform(x.data(), prm.n, 100 + g);
    dist::DistFmmFft<Cd> plan(prm, g);
    {
      ScopedMode sm(Mode::Serial);
      plan.execute(x.data(), serial.data());
    }
    const double serial_bytes = plan.fabric().total_bytes();
    plan.fabric().reset();
    {
      ScopedMode sm(Mode::Async);
      plan.execute(x.data(), async.data());
    }
    EXPECT_EQ(std::memcmp(serial.data(), async.data(), sizeof(Cd) * serial.size()), 0)
        << "DistFmmFft serial vs async differ at g=" << g;
    EXPECT_DOUBLE_EQ(plan.fabric().total_bytes(), serial_bytes) << "g=" << g;
    // Per-engine stage stats keep the serial order on every lane.
    for (int r = 0; r < g; ++r) {
      const auto& st = plan.engine_stats(r);
      ASSERT_FALSE(st.empty());
      EXPECT_EQ(st.front().name, "S2M");
      EXPECT_EQ(st.back().name, "L2T");
    }
  }
}

TEST(DistFmmFftAsync, RealInputBitIdenticalToSerial) {
  fmm::Params prm{1 << 14, 64, 8, 2, 14};
  const int g = 4;
  std::vector<double> x((std::size_t)prm.n);
  fill_uniform(x.data(), prm.n, 9);
  std::vector<Cd> serial((std::size_t)prm.n), async(serial.size());
  dist::DistFmmFft<double> plan(prm, g);
  {
    ScopedMode sm(Mode::Serial);
    plan.execute(x.data(), serial.data());
  }
  {
    ScopedMode sm(Mode::Async);
    plan.execute(x.data(), async.data());
  }
  EXPECT_EQ(std::memcmp(serial.data(), async.data(), sizeof(Cd) * serial.size()), 0);
}

}  // namespace
}  // namespace fmmfft::exec
