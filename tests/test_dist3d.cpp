// Tests for the distributed 3D FFT: slab and pencil decompositions against
// the single-node reference transform and against each other (bit-identity
// across decompositions, processor grids, executor modes and a G = 1 run),
// fabric payload volumes per exchange phase, ledger-vs-model traffic
// exactness, the FMMFFT_DECOMP/FMMFFT_GRID environment knobs, and the
// autotuner's recorded decision.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "dist/dfft3d.hpp"
#include "exec/executor.hpp"
#include "fft/plan3d.hpp"
#include "obs/compare.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

namespace fmmfft::dist {
namespace {

using Cd = std::complex<double>;
using Cf = std::complex<float>;

/// RAII: clean traffic ledger with collection on, wipe + disable on exit.
struct TrafficSession {
  TrafficSession() {
    obs::disable();
    obs::reset();
    obs::enable_traffic(true);
  }
  ~TrafficSession() {
    obs::disable();
    obs::reset();
  }
};

/// Run one transform with the given decomposition and return the output in
/// the driver's reversed layout y[i2 + n2·(i1 + n1·i0)].
template <typename T>
std::vector<std::complex<T>> run3d(index_t n0, index_t n1, index_t n2, int g,
                                   model::Decomp decomp, model::GridShape grid = {}) {
  const index_t n = n0 * n1 * n2;
  std::vector<std::complex<T>> x(static_cast<std::size_t>(n)), y(x.size());
  fill_uniform(x.data(), n, 1234);  // same seed everywhere: same input
  Dist3dFft<T> fft(n0, n1, n2, g, decomp, grid);
  fft.execute(x.data(), y.data());
  return y;
}

/// Reference via the single-node Plan3D (natural layout), remapped to the
/// driver's reversed output order.
template <typename T>
std::vector<std::complex<T>> reference3d(index_t n0, index_t n1, index_t n2) {
  const index_t n = n0 * n1 * n2;
  std::vector<std::complex<T>> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, 1234);
  fft::Plan3D<T> plan(n0, n1, n2);
  plan.execute(x.data(), fft::Direction::Forward);
  std::vector<std::complex<T>> rev(x.size());
  for (index_t i2 = 0; i2 < n2; ++i2)
    for (index_t i1 = 0; i1 < n1; ++i1)
      for (index_t i0 = 0; i0 < n0; ++i0)
        rev[(std::size_t)(i2 + n2 * (i1 + n1 * i0))] =
            x[(std::size_t)(i0 + n0 * (i1 + n1 * i2))];
  return rev;
}

TEST(Dist3d, SlabMatchesReferenceTransform) {
  const index_t n0 = 16, n1 = 8, n2 = 8;
  const auto ref = reference3d<double>(n0, n1, n2);
  for (int g : {1, 2, 4}) {
    const auto y = run3d<double>(n0, n1, n2, g, model::Decomp::Slab);
    EXPECT_LT(rel_l2_error(y.data(), ref.data(), n0 * n1 * n2), 1e-13) << "g=" << g;
  }
}

TEST(Dist3d, PencilGridsBitIdenticalToSlabAndG1) {
  // The tentpole invariant: every decomposition runs the same per-line
  // transforms over the same line values, so outputs agree bit-for-bit —
  // across grids, against the slab path, and against a single device.
  const index_t n0 = 16, n1 = 16, n2 = 8;
  const auto g1 = run3d<double>(n0, n1, n2, 1, model::Decomp::Slab);
  const auto slab4 = run3d<double>(n0, n1, n2, 4, model::Decomp::Slab);
  ASSERT_EQ(g1.size(), slab4.size());
  EXPECT_EQ(0, std::memcmp(g1.data(), slab4.data(), g1.size() * sizeof(Cd)));
  for (model::GridShape grid : {model::GridShape{1, 4}, {2, 2}, {4, 1}}) {
    const auto p4 = run3d<double>(n0, n1, n2, 4, model::Decomp::Pencil, grid);
    EXPECT_EQ(0, std::memcmp(g1.data(), p4.data(), g1.size() * sizeof(Cd)))
        << "grid " << grid.pr << "x" << grid.pc;
  }
}

TEST(Dist3d, SixteenDevicesBitIdentical) {
  const index_t n0 = 16, n1 = 16, n2 = 16;
  const auto g1 = run3d<double>(n0, n1, n2, 1, model::Decomp::Slab);
  const auto slab = run3d<double>(n0, n1, n2, 16, model::Decomp::Slab);
  const auto pencil = run3d<double>(n0, n1, n2, 16, model::Decomp::Pencil, {4, 4});
  EXPECT_EQ(0, std::memcmp(g1.data(), slab.data(), g1.size() * sizeof(Cd)));
  EXPECT_EQ(0, std::memcmp(g1.data(), pencil.data(), g1.size() * sizeof(Cd)));
}

TEST(Dist3d, SerialAndAsyncBitIdenticalBothDecomps) {
  const index_t n0 = 16, n1 = 16, n2 = 8;
  for (model::Decomp d : {model::Decomp::Slab, model::Decomp::Pencil}) {
    const model::GridShape grid = d == model::Decomp::Pencil ? model::GridShape{2, 2}
                                                             : model::GridShape{};
    std::vector<Cd> serial, async;
    {
      exec::ScopedMode sm(exec::Mode::Serial);
      serial = run3d<double>(n0, n1, n2, 4, d, grid);
    }
    {
      exec::ScopedMode sm(exec::Mode::Async);
      async = run3d<double>(n0, n1, n2, 4, d, grid);
    }
    EXPECT_EQ(0, std::memcmp(serial.data(), async.data(), serial.size() * sizeof(Cd)))
        << model::to_string(d);
  }
}

TEST(Dist3d, FloatLegBitIdenticalAndAccurate) {
  const index_t n0 = 16, n1 = 16, n2 = 8;
  const auto ref = reference3d<float>(n0, n1, n2);
  const auto g1 = run3d<float>(n0, n1, n2, 1, model::Decomp::Slab);
  const auto slab = run3d<float>(n0, n1, n2, 4, model::Decomp::Slab);
  const auto pencil = run3d<float>(n0, n1, n2, 4, model::Decomp::Pencil, {2, 2});
  EXPECT_EQ(0, std::memcmp(g1.data(), slab.data(), g1.size() * sizeof(Cf)));
  EXPECT_EQ(0, std::memcmp(g1.data(), pencil.data(), g1.size() * sizeof(Cf)));
  EXPECT_LT(rel_l2_error(pencil.data(), ref.data(), n0 * n1 * n2), 1e-5);
}

TEST(Dist3d, FabricPayloadsPerPhase) {
  // Pencil: row phase ships (pc-1)/pc·N elements in total, column phase
  // (pr-1)/pr·N; each device sends exactly its share of both. Slab: one
  // (G-1)/G·N exchange. The per-device pencil payload is the
  // N/√G-per-phase scaling the decomposition exists for.
  const index_t n0 = 16, n1 = 16, n2 = 8;
  const double n = double(n0 * n1 * n2);
  const int g = 4, pr = 2, pc = 2;
  std::vector<Cd> x(static_cast<std::size_t>(n0 * n1 * n2)), y(x.size());
  fill_uniform(x.data(), n0 * n1 * n2, 7);

  Dist3dFft<double> pencil(n0, n1, n2, g, model::Decomp::Pencil, {pr, pc});
  pencil.execute(x.data(), y.data());
  const double row = double(pc - 1) / pc * n * sizeof(Cd);
  const double col = double(pr - 1) / pr * n * sizeof(Cd);
  EXPECT_DOUBLE_EQ(pencil.fabric().bytes_with_tag("A2A-ROW"), row);
  EXPECT_DOUBLE_EQ(pencil.fabric().bytes_with_tag("A2A-COL"), col);
  EXPECT_DOUBLE_EQ(pencil.fabric().total_bytes(), row + col);
  for (int d = 0; d < g; ++d)
    EXPECT_DOUBLE_EQ(pencil.fabric().bytes_sent_by(d), (row + col) / g) << "d=" << d;

  Dist3dFft<double> slab(n0, n1, n2, g, model::Decomp::Slab);
  slab.execute(x.data(), y.data());
  const double one = double(g - 1) / g * n * sizeof(Cd);
  EXPECT_DOUBLE_EQ(slab.fabric().bytes_with_tag("A2A-3D"), one);
  EXPECT_DOUBLE_EQ(slab.fabric().total_bytes(), one);
  // Per device and per phase the pencil message volume is strictly smaller.
  EXPECT_LT(row / g, one / g);
  EXPECT_LT(col / g, one / g);
}

TEST(Dist3d, TrafficExactToModelBothDecomps) {
  const index_t n0 = 16, n1 = 16, n2 = 8;
  std::vector<Cd> x(static_cast<std::size_t>(n0 * n1 * n2)), y(x.size());
  fill_uniform(x.data(), n0 * n1 * n2, 3);
  {
    TrafficSession s;
    Dist3dFft<double> slab(n0, n1, n2, 4, model::Decomp::Slab);
    slab.execute(x.data(), y.data());
    const auto rep = obs::compare_fft3d_traffic(n0, n1, n2, 4, sizeof(double), 1);
    EXPECT_TRUE(rep.all_ok()) << rep.to_string();
  }
  {
    TrafficSession s;
    Dist3dFft<double> pencil(n0, n1, n2, 4, model::Decomp::Pencil, {2, 2});
    pencil.execute(x.data(), y.data());
    const auto rep = obs::compare_fft3d_traffic(n0, n1, n2, 4, sizeof(double), 1, 2, 2);
    EXPECT_TRUE(rep.all_ok()) << rep.to_string();
  }
  {
    // The ledger totals are executor-invariant: the async graph must
    // account byte-for-byte what the serial path does.
    TrafficSession s;
    exec::ScopedMode sm(exec::Mode::Async);
    Dist3dFft<double> pencil(n0, n1, n2, 4, model::Decomp::Pencil, {2, 2});
    pencil.execute(x.data(), y.data());
    const auto rep = obs::compare_fft3d_traffic(n0, n1, n2, 4, sizeof(double), 1, 2, 2);
    EXPECT_TRUE(rep.all_ok()) << rep.to_string();
  }
}

TEST(Dist3d, EnvKnobsSelectDecomposition) {
  const index_t n0 = 16, n1 = 16, n2 = 8;
  setenv("FMMFFT_DECOMP", "pencil", 1);
  setenv("FMMFFT_GRID", "1x4", 1);
  {
    Dist3dFft<double> fft(n0, n1, n2, 4);
    EXPECT_EQ(fft.decomp(), model::Decomp::Pencil);
    EXPECT_EQ(fft.grid().pr, 1);
    EXPECT_EQ(fft.grid().pc, 4);
  }
  setenv("FMMFFT_DECOMP", "slab", 1);
  {
    Dist3dFft<double> fft(n0, n1, n2, 4);
    EXPECT_EQ(fft.decomp(), model::Decomp::Slab);
  }
  unsetenv("FMMFFT_DECOMP");
  unsetenv("FMMFFT_GRID");
  // An explicit constructor argument outranks the environment.
  setenv("FMMFFT_DECOMP", "slab", 1);
  {
    Dist3dFft<double> fft(n0, n1, n2, 4, model::Decomp::Pencil, {2, 2});
    EXPECT_EQ(fft.decomp(), model::Decomp::Pencil);
  }
  unsetenv("FMMFFT_DECOMP");
}

TEST(Dist3d, ForcedInfeasibleDecompositionThrows) {
  // Slab needs G | n2; pencil needs the grid to divide the pencil extents.
  EXPECT_THROW((Dist3dFft<double>(16, 16, 8, 16, model::Decomp::Slab)), Error);
  EXPECT_THROW((Dist3dFft<double>(16, 16, 8, 16, model::Decomp::Pencil, {16, 1})), Error);
  EXPECT_THROW((Dist3dFft<double>(16, 16, 8, 6, model::Decomp::Pencil, {2, 2})), Error);
  EXPECT_THROW((Dist3dFft<double>(17, 16, 8, 1, model::Decomp::Slab)), Error);  // pow2 only
}

TEST(Dist3d, AutoDecisionRecordedInMetrics) {
  obs::disable();
  obs::reset();
  obs::enable_metrics(true);
  Dist3dFft<double> fft(16, 16, 16, 16);  // Auto: model decides
  EXPECT_TRUE(fft.decision().model_decided);
  auto& m = obs::Metrics::global();
  EXPECT_EQ(m.gauge("decomp.auto.pencil").value(),
            fft.decomp() == model::Decomp::Pencil ? 1.0 : 0.0);
  if (fft.decomp() == model::Decomp::Pencil) {
    EXPECT_EQ(m.gauge("decomp.auto.pr").value(), double(fft.grid().pr));
    EXPECT_EQ(m.gauge("decomp.auto.pc").value(), double(fft.grid().pc));
  }
  EXPECT_GT(m.gauge("decomp.auto.slab_seconds").value(), 0.0);
  EXPECT_GT(m.gauge("decomp.auto.pencil_seconds").value(), 0.0);
  obs::disable();
  obs::reset();
}

TEST(Dist3d, AutoPencilBeatsSlabAtSixteenDevices) {
  // Beyond the modeled crossover the tuner must pick the two-phase path.
  Dist3dFft<double> fft(64, 64, 64, 16);
  EXPECT_TRUE(fft.decision().model_decided);
  EXPECT_EQ(fft.decomp(), model::Decomp::Pencil);
  EXPECT_LT(fft.decision().pencil_seconds, fft.decision().slab_seconds);
}

}  // namespace
}  // namespace fmmfft::dist
