// Tests for the level-1 BLAS operations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/level1.hpp"
#include "common/rng.hpp"

namespace fmmfft::blas {
namespace {

TEST(Axpy, BasicAndStrided) {
  std::vector<double> x{1, 2, 3, 4}, y{10, 20, 30, 40};
  axpy<double>(4, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36, 48}));
  std::vector<double> ys{0, -1, 0, -1, 0, -1};
  axpy<double>(3, 1.0, x.data(), 1, ys.data(), 2);
  EXPECT_EQ(ys, (std::vector<double>{1, -1, 2, -1, 3, -1}));
}

TEST(Axpy, AlphaZeroIsNoOp) {
  std::vector<double> x{1, 2}, y{5, 6};
  axpy<double>(2, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{5, 6}));
}

TEST(Scal, ScalesInPlace) {
  std::vector<float> x{1, 2, 3, 4};
  scal<float>(2, 3.0f, x.data(), 2);  // only even indices
  EXPECT_EQ(x, (std::vector<float>{3, 2, 9, 4}));
}

TEST(Copy, StridedCopy) {
  std::vector<double> x{1, 2, 3}, y(6, 0.0);
  copy<double>(3, x.data(), 1, y.data(), 2);
  EXPECT_EQ(y, (std::vector<double>{1, 0, 2, 0, 3, 0}));
}

TEST(Dot, MatchesManualSum) {
  std::vector<double> x(100), y(100);
  fill_uniform(x.data(), 100, 1);
  fill_uniform(y.data(), 100, 2);
  double expect = 0;
  for (int i = 0; i < 100; ++i) expect += x[(std::size_t)i] * y[(std::size_t)i];
  EXPECT_NEAR(dot<double>(100, x.data(), 1, y.data(), 1), expect, 1e-12);
}

TEST(Nrm2, MatchesStdAndIsOverflowSafe) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2<double>(2, x.data(), 1), 5.0);
  // Values whose squares would overflow double.
  std::vector<double> big{1e200, 1e200};
  EXPECT_NEAR(nrm2<double>(2, big.data(), 1), std::sqrt(2.0) * 1e200, 1e186);
  // And underflow-prone values.
  std::vector<double> tiny{1e-200, 1e-200};
  EXPECT_NEAR(nrm2<double>(2, tiny.data(), 1), std::sqrt(2.0) * 1e-200, 1e-214);
  EXPECT_DOUBLE_EQ(nrm2<double>(0, x.data(), 1), 0.0);
}

TEST(Asum, SumsAbsoluteValues) {
  std::vector<double> x{-1, 2, -3};
  EXPECT_DOUBLE_EQ(asum<double>(3, x.data(), 1), 6.0);
}

TEST(Iamax, FindsFirstMaximum) {
  std::vector<double> x{1, -7, 3, 7};
  EXPECT_EQ(iamax<double>(4, x.data(), 1), 1);  // first |7|
  EXPECT_EQ(iamax<double>(0, x.data(), 1), -1);
  std::vector<double> s{1, 99, 5, 99, 2, 99};
  EXPECT_EQ(iamax<double>(3, s.data(), 2), 1);  // among {1,5,2}: 5 at logical index 1
}

}  // namespace
}  // namespace fmmfft::blas
