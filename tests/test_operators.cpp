// Tests for the FMM operator builders: S2M/M2M column-sum invariants, S2T
// Toeplitz consistency with the cotangent kernel, M2L entries, rho values,
// dense C_p structure, parameter validation and enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/math.hpp"
#include "fmm/chebyshev.hpp"
#include "fmm/operators.hpp"
#include "fmm/params.hpp"

namespace fmmfft::fmm {
namespace {

TEST(Params, DerivedQuantities) {
  Params prm{1 << 12, 32, 8, 2, 10};
  prm.validate();
  EXPECT_EQ(prm.m(), 128);
  EXPECT_EQ(prm.l(), 4);
  EXPECT_EQ(prm.leaves(), 16);
  EXPECT_EQ(prm.boxes(2), 4);
  EXPECT_NE(prm.to_string().find("L=4"), std::string::npos);
}

TEST(Params, ValidationRejectsBadShapes) {
  EXPECT_THROW((Params{100, 10, 2, 2, 8}.validate()), Error);       // N not pow2
  EXPECT_THROW((Params{1 << 12, 3, 8, 2, 8}.validate()), Error);    // P not pow2
  EXPECT_THROW((Params{1 << 12, 32, 64, 2, 8}.validate()), Error);  // L < B (M=128, 2^L=2)
  EXPECT_THROW((Params{1 << 12, 32, 8, 1, 8}.validate()), Error);   // B < 2
  EXPECT_THROW((Params{1 << 12, 32, 8, 5, 8}.validate()), Error);   // B > L
  EXPECT_NO_THROW((Params{1 << 12, 32, 8, 4, 8}.validate()));       // B == L ok
}

TEST(Params, DistributedConstraints) {
  Params prm{1 << 14, 64, 8, 2, 8};  // M=256, L=5
  EXPECT_TRUE(prm.is_admissible(1));
  EXPECT_TRUE(prm.is_admissible(4));   // 2^B = 4 >= G
  EXPECT_FALSE(prm.is_admissible(8));  // 2^B = 4 < 8
  Params b3{1 << 14, 64, 8, 3, 8};
  EXPECT_TRUE(b3.is_admissible(8));
}

TEST(Params, AdmissibleEnumerationRespectsRules) {
  auto all = admissible_params(1 << 16, 2, 16);
  EXPECT_FALSE(all.empty());
  for (const auto& prm : all) {
    EXPECT_NO_THROW(prm.validate_distributed(2));
    EXPECT_GE(prm.p, 32);
    EXPECT_EQ(prm.n, 1 << 16);
  }
  // Larger G shrinks (or keeps) the space.
  auto g8 = admissible_params(1 << 16, 8, 16);
  EXPECT_LE(g8.size(), all.size());
}

TEST(S2M, ColumnsSumToOne) {
  for (auto [q, ml] : {std::pair{8, 16}, {16, 64}, {16, 4}, {3, 1}}) {
    auto s2m = s2m_matrix(q, ml);
    for (index_t m = 0; m < ml; ++m) {
      double s = 0;
      for (int qi = 0; qi < q; ++qi) s += s2m[(std::size_t)(qi + m * q)];
      EXPECT_NEAR(s, 1.0, 1e-12) << "q=" << q << " ml=" << ml << " m=" << m;
    }
  }
}

TEST(S2M, EntriesAreLagrangeValuesAtLeafPoints) {
  const int q = 8;
  const index_t ml = 16;
  auto s2m = s2m_matrix(q, ml);
  for (index_t m = 0; m < ml; ++m) {
    double sm = -1.0 + (2.0 * m + 1.0) / ml;
    std::vector<double> l(q);
    lagrange_eval(q, sm, l.data());
    for (int qi = 0; qi < q; ++qi) EXPECT_EQ(s2m[(std::size_t)(qi + m * q)], l[qi]);
  }
}

TEST(S2M, L2TTransposeRoundTripPreservesLowDegreeData) {
  // L2T = S2M^T: pushing polynomial values of degree < Q through
  // S2M (samples -> coefficients) and evaluating back via interpolation at
  // the leaf points must reproduce them exactly.
  const int q = 8;
  const index_t ml = 4;
  auto s2m = s2m_matrix(q, ml);
  auto f = [](double x) { return ((2 * x - 1) * x + 3) * x - 0.5; };
  // When M_L <= Q the Lagrange *transpose* is not an inverse; instead test
  // evaluation: coefficients sampled from f at Chebyshev nodes, L2T gives
  // f at leaf points exactly for deg(f) < Q.
  auto z = chebyshev_points(q);
  std::vector<double> coeff(q);
  for (int qi = 0; qi < q; ++qi) coeff[qi] = f(z[(std::size_t)qi]);
  for (index_t m = 0; m < ml; ++m) {
    double sm = -1.0 + (2.0 * m + 1.0) / ml;
    double val = 0;
    for (int qi = 0; qi < q; ++qi) val += s2m[(std::size_t)(qi + m * q)] * coeff[qi];
    EXPECT_NEAR(val, f(sm), 1e-11);
  }
}

TEST(M2M, ColumnsSumToOne) {
  for (int q : {4, 8, 16}) {
    auto m2m = m2m_matrix(q);
    for (int k = 0; k < 2 * q; ++k) {
      double s = 0;
      for (int qi = 0; qi < q; ++qi) s += m2m[(std::size_t)(qi + k * q)];
      EXPECT_NEAR(s, 1.0, 1e-12);
    }
  }
}

TEST(M2M, ChildHalvesMapIntoParentInterval) {
  // M2M- evaluates at (z_k - 1)/2 in [-1, 0]; M2M+ at (z_k + 1)/2 in [0, 1].
  const int q = 6;
  auto z = chebyshev_points(q);
  auto m2m = m2m_matrix(q);
  std::vector<double> l(q);
  for (int k = 0; k < q; ++k) {
    lagrange_eval(q, (z[k] - 1.0) / 2.0, l.data());
    for (int qi = 0; qi < q; ++qi) EXPECT_EQ(m2m[(std::size_t)(qi + k * q)], l[qi]);
    lagrange_eval(q, (z[k] + 1.0) / 2.0, l.data());
    for (int qi = 0; qi < q; ++qi) EXPECT_EQ(m2m[(std::size_t)(qi + (q + k) * q)], l[qi]);
  }
}

TEST(S2T, TableMatchesCotKernelAndIdentity) {
  Params prm{1 << 10, 32, 4, 2, 4};  // M=32, ML=4, L=3
  prm.validate();
  for (int c : {1, 2}) {
    auto tab = s2t_table(prm, c);
    const index_t nk = 4 * prm.ml - 1;
    ASSERT_EQ((index_t)tab.size(), nk * c * prm.p);
    for (index_t ki = 0; ki < nk; ++ki) {
      index_t k = ki - (2 * prm.ml - 1);
      for (index_t p = 0; p < prm.p; ++p)
        for (int cc = 0; cc < c; ++cc) {
          double v = tab[(std::size_t)(ki * c * prm.p + cc + c * p)];
          if (p == 0) {
            EXPECT_EQ(v, k == 0 ? 1.0 : 0.0);
          } else {
            EXPECT_NEAR(v, cot(pi_v<double> * double(p + prm.p * k) / double(prm.n)), 1e-12);
          }
        }
    }
  }
}

TEST(S2T, TableEqualsKernelAtPointPairs) {
  // S2T_{p,(j-i)} must equal cot_kernel between integer points j-i apart.
  Params prm{1 << 10, 32, 4, 2, 4};
  auto tab = s2t_table(prm, 1);
  for (index_t p = 1; p < prm.p; ++p)
    for (index_t k = -(2 * prm.ml - 1); k <= 2 * prm.ml - 1; ++k) {
      // cot_kernel takes (n - m) on the M-point grid of one FMM; the S2T
      // table index k is exactly that offset.
      double expect = cot_kernel(prm, p, 0, k);
      double got = tab[(std::size_t)((k + 2 * prm.ml - 1) * prm.p + p)];
      EXPECT_NEAR(got, expect, 1e-12) << "p=" << p << " k=" << k;
    }
}

TEST(M2L, EntriesMatchFormula) {
  Params prm{1 << 12, 64, 4, 2, 6};  // M=64, L=4
  const int level = 3, c = 2;
  const index_t s = -2;
  auto z = chebyshev_points(prm.q);
  auto tab = m2l_table(prm, level, s, c);
  for (index_t j = 0; j < prm.q; ++j)
    for (index_t i = 0; i < prm.q; ++i)
      for (index_t pp = 0; pp < prm.p - 1; ++pp) {
        double expect = cot(pi_v<double> / 8.0 * (z[(std::size_t)j] / 2 - z[(std::size_t)i] / 2 + double(s)) +
                            pi_v<double> * double(pp + 1) / double(prm.n));
        for (int cc = 0; cc < c; ++cc) {
          double got = tab[(std::size_t)((i + prm.q * j) * c * (prm.p - 1) + cc + c * pp)];
          EXPECT_NEAR(got, expect, 1e-12);
        }
      }
}

TEST(Rho, MatchesClosedForm) {
  const index_t p_total = 16, m = 64;
  for (index_t p = 1; p < p_total; ++p) {
    auto r = rho(p, p_total, m);
    double a = pi_v<double> * double(p) / double(p_total);
    EXPECT_NEAR(r.real(), std::cos(a) * std::sin(a) / m, 1e-14);
    EXPECT_NEAR(r.imag(), -std::sin(a) * std::sin(a) / m, 1e-14);
  }
}

TEST(DenseCp, P0IsIdentity) {
  Params prm{1 << 8, 16, 4, 2, 4};
  auto c0 = dense_cp(prm, 0);
  const index_t m = prm.m();
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_EQ(c0[(std::size_t)(i + j * m)], std::complex<double>(i == j ? 1.0 : 0.0));
}

TEST(DenseCp, EntriesMatchDefinition) {
  Params prm{1 << 8, 16, 4, 2, 4};
  const index_t p = 3, m = prm.m();
  auto cp = dense_cp(prm, p);
  auto r = rho(p, prm.p, m);
  for (index_t col : {index_t(0), index_t(5), m - 1})
    for (index_t row : {index_t(0), index_t(2), m - 1}) {
      auto expect = r * std::complex<double>(cot(pi_v<double> / double(m) * double(col - row) +
                                                 pi_v<double> * double(p) / double(prm.n)),
                                             1.0);
      auto got = cp[(std::size_t)(row + col * m)];
      EXPECT_NEAR(std::abs(got - expect), 0.0, 1e-14);
    }
}

TEST(InteractionLists, CousinSeparations) {
  const index_t* even = cousin_separations(false);
  const index_t* odd = cousin_separations(true);
  EXPECT_EQ(std::vector<index_t>(even, even + 3), (std::vector<index_t>{-2, 2, 3}));
  EXPECT_EQ(std::vector<index_t>(odd, odd + 3), (std::vector<index_t>{-3, -2, 2}));
  for (index_t s : level_separations()) {
    bool any = separation_applies(s, false) || separation_applies(s, true);
    EXPECT_TRUE(any);
  }
  EXPECT_FALSE(separation_applies(0, false));
  EXPECT_FALSE(separation_applies(1, true));
  EXPECT_TRUE(separation_applies(3, false));
  EXPECT_FALSE(separation_applies(3, true));
  EXPECT_TRUE(separation_applies(-3, true));
  EXPECT_FALSE(separation_applies(-3, false));
}

TEST(DenseCp, RowSumsRelateToReduction) {
  // The imaginary +i in C_p contributes rho_p * i * sum(x) to every output:
  // check by applying C_p to a constant vector and comparing to the
  // analytic row sum of cot + i over one period being pure M·i ... the
  // cotangent row sums cancel pairwise over the period for p's symmetric
  // structure only in aggregate; we simply verify the +i term directly.
  Params prm{1 << 8, 16, 4, 2, 4};
  const index_t p = 5, m = prm.m();
  auto cp = dense_cp(prm, p);
  auto r = rho(p, prm.p, m);
  // Difference of applying C_p to x and to x with the +i removed equals
  // rho * i * sum(x).
  std::vector<std::complex<double>> x(m);
  for (index_t k = 0; k < m; ++k) x[(std::size_t)k] = std::complex<double>(0.3 * k - 1, 0.1 * k);
  std::complex<double> sum = 0;
  for (auto& v : x) sum += v;
  for (index_t row : {index_t(0), m / 2}) {
    std::complex<double> full = 0, cot_only = 0;
    for (index_t col = 0; col < m; ++col) {
      full += cp[(std::size_t)(row + col * m)] * x[(std::size_t)col];
      cot_only += (cp[(std::size_t)(row + col * m)] - r * std::complex<double>(0, 1)) * x[(std::size_t)col];
    }
    auto diff = full - cot_only;
    auto expect = r * std::complex<double>(0, 1) * sum;
    EXPECT_NEAR(std::abs(diff - expect), 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace fmmfft::fmm
