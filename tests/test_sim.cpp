// Tests for the timeline simulator: lane serialization, dependency
// causality, stream overlap, comm/compute overlap, shared-bus contention,
// and the Chrome trace writer.
#include <gtest/gtest.h>

#include <sstream>

#include "model/arch.hpp"
#include "sim/fabric.hpp"
#include "sim/schedule.hpp"

namespace fmmfft::sim {
namespace {

using fmm::KernelClass;

model::ArchParams flat_arch(int g) {
  model::ArchParams a;
  a.name = "test";
  a.num_devices = g;
  a.gamma_f = a.gamma_d = 1e9;  // 1 flop = 1 ns
  a.beta_mem = 1e12;
  a.link_bw = 1e9;  // 1 byte = 1 ns
  a.link_latency = 0;
  a.launch_overhead = 0;
  a.links_shared = false;
  a.eff_batched_gemm = a.eff_custom = a.eff_gemv = a.eff_fft = 1.0;
  return a;
}

TEST(Schedule, KernelsOnSameStreamSerialize) {
  Schedule s;
  int a = s.add_kernel(0, "a", KernelClass::Custom, 1e6, 0, true, {});
  int b = s.add_kernel(0, "b", KernelClass::Custom, 1e6, 0, true, {});
  auto res = s.simulate(flat_arch(1));
  EXPECT_DOUBLE_EQ(res.timings[a].end, 1e-3);
  EXPECT_DOUBLE_EQ(res.timings[b].start, 1e-3);
  EXPECT_DOUBLE_EQ(res.total_seconds, 2e-3);
}

TEST(Schedule, DistinctStreamsOverlap) {
  Schedule s;
  s.add_kernel(0, "a", KernelClass::Custom, 1e6, 0, true, {}, /*stream=*/0);
  s.add_kernel(0, "b", KernelClass::Custom, 1e6, 0, true, {}, /*stream=*/1);
  auto res = s.simulate(flat_arch(1));
  EXPECT_DOUBLE_EQ(res.total_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(res.kernel_busy, 2e-3);
}

TEST(Schedule, DependenciesEnforceCausality) {
  Schedule s;
  int a = s.add_kernel(0, "a", KernelClass::Custom, 1e6, 0, true, {});
  int b = s.add_kernel(1, "b", KernelClass::Custom, 1e6, 0, true, {a});
  auto res = s.simulate(flat_arch(2));
  EXPECT_GE(res.timings[b].start, res.timings[a].end);
  EXPECT_DOUBLE_EQ(res.total_seconds, 2e-3);
}

TEST(Schedule, CausalityHoldsForEveryOp) {
  // Property: no op starts before all its dependencies end.
  Schedule s;
  int prev = s.add_kernel(0, "k0", KernelClass::Custom, 1e5, 0, true, {});
  for (int i = 1; i < 20; ++i) {
    if (i % 3 == 0)
      prev = s.add_comm(i % 2, (i + 1) % 2, "c", 1e3, {prev});
    else
      prev = s.add_kernel(i % 2, "k", KernelClass::Custom, 1e5 * (i % 4 + 1), 0, true, {prev});
  }
  auto res = s.simulate(flat_arch(2));
  for (const auto& op : s.ops())
    for (int d : op.deps)
      EXPECT_GE(res.timings[op.id].start, res.timings[d].end) << "op " << op.id;
}

TEST(Schedule, CommOverlapsCompute) {
  // A transfer between devices 1->0 runs concurrently with device-0 compute.
  Schedule s;
  s.add_kernel(0, "k", KernelClass::Custom, 2e6, 0, true, {});
  s.add_comm(1, 0, "c", 2e6, {});
  auto res = s.simulate(flat_arch(2));
  EXPECT_DOUBLE_EQ(res.total_seconds, 2e-3);  // not 4e-3
  EXPECT_DOUBLE_EQ(res.comm_busy, 2e-3);
}

TEST(Schedule, SharedBusSerializesTransfers) {
  auto arch = flat_arch(4);
  Schedule dedicated;
  dedicated.add_comm(0, 1, "c", 1e6, {});
  dedicated.add_comm(2, 3, "c", 1e6, {});
  EXPECT_DOUBLE_EQ(dedicated.simulate(arch).total_seconds, 1e-3);
  arch.links_shared = true;
  EXPECT_DOUBLE_EQ(dedicated.simulate(arch).total_seconds, 2e-3);
}

TEST(Schedule, RooflinePicksMemoryBound) {
  auto arch = flat_arch(1);
  Schedule s;
  // 1e3 flops but 1e9 bytes at beta=1e12 -> memory time 1e-3 dominates.
  s.add_kernel(0, "m", KernelClass::Custom, 1e3, 1e9, true, {});
  EXPECT_NEAR(s.simulate(arch).total_seconds, 1e-3, 1e-9);
}

TEST(Schedule, EfficiencyAndLaunchOverheadApply) {
  auto arch = flat_arch(1);
  arch.launch_overhead = 1e-4;
  arch.eff_custom = 0.5;
  Schedule s;
  s.add_kernel(0, "k", KernelClass::Custom, 1e6, 0, true, {});
  EXPECT_NEAR(s.simulate(arch).total_seconds, 1e-4 + 2e-3, 1e-12);
}

TEST(Schedule, LatencyDominatesSmallMessages) {
  auto arch = flat_arch(2);
  arch.link_latency = 1e-5;
  Schedule s;
  s.add_comm(0, 1, "tiny", 8, {});
  EXPECT_NEAR(s.simulate(arch).total_seconds, 1e-5 + 8e-9, 1e-12);
}

TEST(Schedule, MetaOpsAreFree) {
  Schedule s;
  int a = s.add_kernel(0, "a", KernelClass::Custom, 1e6, 0, true, {});
  int m = s.add_meta("join", {a});
  int b = s.add_kernel(0, "b", KernelClass::Custom, 1e6, 0, true, {m});
  auto res = s.simulate(flat_arch(1));
  EXPECT_DOUBLE_EQ(res.timings[m].start, res.timings[m].end);
  EXPECT_DOUBLE_EQ(res.timings[b].start, res.timings[a].end);
}

TEST(Schedule, CountersAndLabels) {
  Schedule s;
  s.add_kernel(0, "k", KernelClass::BatchedGemm, 1e6, 0, true, {});
  s.add_kernel(0, "k", KernelClass::BatchedGemm, 1e6, 0, true, {});
  s.add_comm(0, 1, "c", 5e5, {});
  EXPECT_EQ(s.kernel_launches(), 2);
  EXPECT_DOUBLE_EQ(s.total_comm_bytes(), 5e5);
  auto res = s.simulate(flat_arch(2));
  EXPECT_DOUBLE_EQ(res.label_seconds.at("k"), 2e-3);
  EXPECT_DOUBLE_EQ(res.label_seconds.at("c"), 5e-4);
}

TEST(Schedule, RejectsForwardDependencies) {
  Schedule s;
  EXPECT_THROW(s.add_kernel(0, "bad", KernelClass::Custom, 1, 0, true, {3}), Error);
}

TEST(Schedule, ChromeTraceIsWellFormedJson) {
  Schedule s;
  int a = s.add_kernel(0, "S2M", KernelClass::BatchedGemm, 1e6, 1e3, true, {});
  s.add_comm(0, 1, "COMM-S", 1e4, {a});
  auto res = s.simulate(flat_arch(2));
  std::ostringstream os;
  s.write_chrome_trace(res, os);
  std::string j = os.str();
  EXPECT_EQ(j.front(), '[');
  EXPECT_NE(j.find("\"S2M\""), std::string::npos);
  EXPECT_NE(j.find("\"COMM-S\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Fabric, LedgerAccounting) {
  Fabric f(3);
  std::vector<double> a{1, 2, 3}, b(3);
  f.send(0, 1, a.data(), b.data(), 3, "x");
  f.send(1, 2, a.data(), b.data(), 2, "y");
  f.send(2, 2, a.data(), b.data(), 3, "local");  // not recorded
  EXPECT_EQ(b, a);
  EXPECT_EQ(f.transfers().size(), 2u);
  EXPECT_DOUBLE_EQ(f.total_bytes(), 5 * 8.0);
  EXPECT_DOUBLE_EQ(f.bytes_sent_by(0), 24.0);
  EXPECT_DOUBLE_EQ(f.bytes_with_tag("y"), 16.0);
  f.reset();
  EXPECT_TRUE(f.transfers().empty());
}

TEST(Fabric, BoundsChecked) {
  Fabric f(2);
  double x = 0, y = 0;
  EXPECT_THROW(f.send(0, 5, &x, &y, 1, "t"), Error);
  EXPECT_THROW(f.send(-1, 0, &x, &y, 1, "t"), Error);
}

}  // namespace
}  // namespace fmmfft::sim
