// Tests for the real-to-complex / complex-to-real transforms.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/real.hpp"

namespace fmmfft::fft {
namespace {

using Cd = std::complex<double>;

class RealSizes : public ::testing::TestWithParam<int> {};

TEST_P(RealSizes, R2CMatchesComplexReference) {
  const index_t n = GetParam();
  std::vector<double> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, n);
  std::vector<Cd> xc(x.size()), full(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = Cd(x[i], 0);
  dft_reference(xc.data(), full.data(), n);

  RealPlan1D<double> plan(n);
  std::vector<Cd> half(static_cast<std::size_t>(n / 2 + 1));
  plan.r2c(x.data(), half.data());
  for (index_t k = 0; k <= n / 2; ++k)
    EXPECT_NEAR(std::abs(half[(std::size_t)k] - full[(std::size_t)k]), 0.0, 1e-10)
        << "n=" << n << " k=" << k;
}

TEST_P(RealSizes, RoundTripIsScaledIdentity) {
  const index_t n = GetParam();
  std::vector<double> x(static_cast<std::size_t>(n)), back(x.size());
  fill_uniform(x.data(), n, 3 * n);
  RealPlan1D<double> plan(n);
  std::vector<Cd> half(static_cast<std::size_t>(n / 2 + 1));
  plan.r2c(x.data(), half.data());
  plan.c2r(half.data(), back.data());
  for (auto& v : back) v /= double(n);
  EXPECT_LT(rel_l2_error(back.data(), x.data(), n), 1e-13) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealSizes, ::testing::Values(2, 4, 8, 16, 64, 256, 1024, 4096));
INSTANTIATE_TEST_SUITE_P(NonPow2Even, RealSizes, ::testing::Values(6, 10, 12, 18, 30, 100, 486));

TEST(RealFft, FloatPrecision) {
  const index_t n = 512;
  std::vector<float> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, 5);
  RealPlan1D<float> plan(n);
  std::vector<std::complex<float>> half(static_cast<std::size_t>(n / 2 + 1));
  plan.r2c(x.data(), half.data());
  std::vector<Cd> xc(x.size()), full(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = Cd(x[i], 0);
  dft_reference(xc.data(), full.data(), n);
  for (index_t k = 0; k <= n / 2; ++k)
    EXPECT_NEAR(std::abs(Cd(half[(std::size_t)k].real(), half[(std::size_t)k].imag()) -
                         full[(std::size_t)k]),
                0.0, 2e-3);
  EXPECT_EQ(plan.size(), n);
}

TEST(RealFft, DcAndNyquistAreReal) {
  const index_t n = 128;
  std::vector<double> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, 6);
  RealPlan1D<double> plan(n);
  std::vector<Cd> half(static_cast<std::size_t>(n / 2 + 1));
  plan.r2c(x.data(), half.data());
  EXPECT_NEAR(half[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(half[(std::size_t)(n / 2)].imag(), 0.0, 1e-12);
  double sum = 0;
  for (double v : x) sum += v;
  EXPECT_NEAR(half[0].real(), sum, 1e-10);
}

TEST(RealFft, PureToneLandsInOneBin) {
  const index_t n = 256, bin = 17;
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) x[(std::size_t)t] = std::cos(2.0 * pi_v<double> * bin * t / n);
  RealPlan1D<double> plan(n);
  std::vector<Cd> half(static_cast<std::size_t>(n / 2 + 1));
  plan.r2c(x.data(), half.data());
  for (index_t k = 0; k <= n / 2; ++k) {
    const double expect = k == bin ? n / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(half[(std::size_t)k]), expect, 1e-9) << "k=" << k;
  }
}

TEST(RealFft, RejectsOddSizes) {
  EXPECT_THROW(RealPlan1D<double>(7), Error);
  EXPECT_THROW(RealPlan1D<double>(1), Error);
  EXPECT_THROW(RealPlan1D<double>(0), Error);
}

}  // namespace
}  // namespace fmmfft::fft
