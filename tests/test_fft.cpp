// Unit and property tests for the FFT substrate: Stockham vs direct DFT,
// Bluestein sizes, round trips, batched/strided layouts, 2D transforms,
// and classic FFT identities (linearity, Parseval, shift, impulse).
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <thread>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fft/fft.hpp"

namespace fmmfft::fft {
namespace {

template <typename T>
using Cx = std::complex<T>;

template <typename T>
std::vector<Cx<T>> random_signal(index_t n, std::uint64_t seed) {
  std::vector<Cx<T>> v(static_cast<std::size_t>(n));
  fill_uniform(v.data(), n, seed);
  return v;
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, ForwardMatchesReferenceDouble) {
  const index_t n = GetParam();
  auto x = random_signal<double>(n, n);
  std::vector<Cx<double>> ref(n);
  dft_reference(x.data(), ref.data(), n);
  fft(x.data(), n, Direction::Forward);
  EXPECT_LT(rel_l2_error(x.data(), ref.data(), n), 1e-12) << "n=" << n;
}

TEST_P(FftSizes, ForwardMatchesReferenceFloat) {
  const index_t n = GetParam();
  auto x = random_signal<float>(n, n + 1);
  std::vector<Cx<float>> ref(n);
  dft_reference(x.data(), ref.data(), n);
  fft(x.data(), n, Direction::Forward);
  EXPECT_LT(rel_l2_error(x.data(), ref.data(), n), 2e-5) << "n=" << n;
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const index_t n = GetParam();
  auto x = random_signal<double>(n, 2 * n);
  auto orig = x;
  Plan1D<double> plan(n);
  plan.execute(x.data(), Direction::Forward);
  plan.execute(x.data(), Direction::Inverse);
  normalize(x.data(), n, n);
  EXPECT_LT(rel_l2_error(x.data(), orig.data(), n), 1e-13) << "n=" << n;
}

// Every power of two through 2^12 — both radix-4 stage counts (even log2)
// and the radix-2 cleanup path (odd log2) at every depth.
INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                                           4096));
INSTANTIATE_TEST_SUITE_P(Bluestein, FftSizes,
                         ::testing::Values(3, 5, 6, 7, 12, 15, 17, 100, 243, 1000));

TEST(Fft, LargePow2MatchesReference) {
  // 2^13 (odd log2: radix-2 cleanup + six radix-4 stages) and 2^14 (seven
  // radix-4 stages) against the direct DFT; double only — the O(n^2)
  // reference dominates the runtime.
  for (index_t n : {index_t(8192), index_t(16384)}) {
    auto x = random_signal<double>(n, 77 + n);
    std::vector<Cx<double>> ref(static_cast<std::size_t>(n));
    dft_reference(x.data(), ref.data(), n);
    fft(x.data(), n, Direction::Forward);
    EXPECT_LT(rel_l2_error(x.data(), ref.data(), n), 1e-11) << "n=" << n;
  }
}

TEST(Fft, ImpulseGivesAllOnes) {
  const index_t n = 64;
  std::vector<Cx<double>> x(n, Cx<double>(0));
  x[0] = Cx<double>(1, 0);
  fft(x.data(), n);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), 1.0, 1e-14);
    EXPECT_NEAR(x[i].imag(), 0.0, 1e-14);
  }
}

TEST(Fft, ShiftedImpulseGivesTwiddleRamp) {
  const index_t n = 32, shift = 5;
  std::vector<Cx<double>> x(n, Cx<double>(0));
  x[shift] = Cx<double>(1, 0);
  fft(x.data(), n);
  for (index_t i = 0; i < n; ++i) {
    double ang = -2.0 * pi_v<double> * double(i * shift) / double(n);
    EXPECT_NEAR(x[i].real(), std::cos(ang), 1e-13);
    EXPECT_NEAR(x[i].imag(), std::sin(ang), 1e-13);
  }
}

TEST(Fft, Linearity) {
  const index_t n = 128;
  auto a = random_signal<double>(n, 1);
  auto b = random_signal<double>(n, 2);
  std::vector<Cx<double>> sum(n);
  for (index_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  Plan1D<double> plan(n);
  plan.execute(a.data(), Direction::Forward);
  plan.execute(b.data(), Direction::Forward);
  plan.execute(sum.data(), Direction::Forward);
  std::vector<Cx<double>> combo(n);
  for (index_t i = 0; i < n; ++i) combo[i] = 2.0 * a[i] + 3.0 * b[i];
  EXPECT_LT(rel_l2_error(sum.data(), combo.data(), n), 1e-13);
}

TEST(Fft, ParsevalEnergyConservation) {
  const index_t n = 512;
  auto x = random_signal<double>(n, 3);
  double et = 0;
  for (auto& z : x) et += std::norm(z);
  fft(x.data(), n);
  double ef = 0;
  for (auto& z : x) ef += std::norm(z);
  EXPECT_NEAR(ef, et * n, et * n * 1e-12);
}

TEST(Fft, RealInputConjugateSymmetry) {
  const index_t n = 256;
  std::vector<Cx<double>> x(n);
  Rng rng(7);
  for (auto& z : x) z = Cx<double>(rng.uniform_sym(), 0.0);
  fft(x.data(), n);
  for (index_t k = 1; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), x[n - k].real(), 1e-11);
    EXPECT_NEAR(x[k].imag(), -x[n - k].imag(), 1e-11);
  }
}

TEST(Fft, BatchedMatchesIndividual) {
  const index_t n = 64, count = 9;
  auto data = random_signal<double>(n * count, 4);
  auto expect = data;
  Plan1D<double> plan(n);
  plan.execute_batched(data.data(), count, Direction::Forward);
  for (index_t g = 0; g < count; ++g) plan.execute(expect.data() + g * n, Direction::Forward);
  EXPECT_EQ(data, expect);
}

TEST(Fft, StridedAdvancedLayout) {
  // Transform along the slow dimension of an 8×16 column-major array:
  // 8 batches, stride 8, dist 1 — equivalent to transpose+batched+transpose.
  const index_t n0 = 8, n1 = 16;
  auto data = random_signal<double>(n0 * n1, 5);
  auto expect = data;
  Plan1D<double> plan(n1);
  plan.execute_strided(data.data(), n0, /*stride=*/n0, /*dist=*/1, Direction::Forward);
  for (index_t i = 0; i < n0; ++i) {
    std::vector<Cx<double>> line(n1);
    for (index_t j = 0; j < n1; ++j) line[j] = expect[i + j * n0];
    plan.execute(line.data(), Direction::Forward);
    for (index_t j = 0; j < n1; ++j)
      EXPECT_EQ(data[i + j * n0], line[j]) << "i=" << i << " j=" << j;
  }
}

TEST(Fft, StridedWithUnitStrideUsesDist) {
  const index_t n = 32, count = 4;
  auto data = random_signal<double>(n * count, 6);
  auto expect = data;
  Plan1D<double> plan(n);
  plan.execute_strided(data.data(), count, 1, n, Direction::Forward);
  plan.execute_batched(expect.data(), count, Direction::Forward);
  EXPECT_EQ(data, expect);
}

TEST(Fft2D, MatchesRowColumnReference) {
  const index_t n0 = 16, n1 = 8;
  auto x = random_signal<double>(n0 * n1, 8);
  auto ref = x;
  // Reference: DFT along dim0 then dim1 by explicit loops.
  {
    std::vector<Cx<double>> tmp(std::max(n0, n1));
    for (index_t j = 0; j < n1; ++j) {
      dft_reference(ref.data() + j * n0, tmp.data(), n0);
      std::copy_n(tmp.data(), n0, ref.data() + j * n0);
    }
    for (index_t i = 0; i < n0; ++i) {
      std::vector<Cx<double>> line(n1), out(n1);
      for (index_t j = 0; j < n1; ++j) line[j] = ref[i + j * n0];
      dft_reference(line.data(), out.data(), n1);
      for (index_t j = 0; j < n1; ++j) ref[i + j * n0] = out[j];
    }
  }
  fft2d(x.data(), n0, n1, Direction::Forward);
  EXPECT_LT(rel_l2_error(x.data(), ref.data(), n0 * n1), 1e-12);
}

TEST(Fft2D, RoundTrip) {
  const index_t n0 = 32, n1 = 64;
  auto x = random_signal<double>(n0 * n1, 9);
  auto orig = x;
  Plan2D<double> plan(n0, n1);
  plan.execute(x.data(), Direction::Forward);
  plan.execute(x.data(), Direction::Inverse);
  normalize(x.data(), n0 * n1, n0 * n1);
  EXPECT_LT(rel_l2_error(x.data(), orig.data(), n0 * n1), 1e-13);
  EXPECT_EQ(plan.size0(), n0);
  EXPECT_EQ(plan.size1(), n1);
}

TEST(Fft2D, SeparabilityProperty) {
  // 2D FFT of an outer product is the outer product of 1D FFTs.
  const index_t n0 = 16, n1 = 32;
  auto u = random_signal<double>(n0, 10);
  auto v = random_signal<double>(n1, 11);
  std::vector<Cx<double>> x(n0 * n1);
  for (index_t j = 0; j < n1; ++j)
    for (index_t i = 0; i < n0; ++i) x[i + j * n0] = u[i] * v[j];
  fft2d(x.data(), n0, n1);
  auto fu = u, fv = v;
  fft(fu.data(), n0);
  fft(fv.data(), n1);
  std::vector<Cx<double>> expect(n0 * n1);
  for (index_t j = 0; j < n1; ++j)
    for (index_t i = 0; i < n0; ++i) expect[i + j * n0] = fu[i] * fv[j];
  EXPECT_LT(rel_l2_error(x.data(), expect.data(), n0 * n1), 1e-12);
}

TEST(Fft, PlanReuseIsConsistent) {
  const index_t n = 128;
  Plan1D<double> plan(n);
  auto x = random_signal<double>(n, 12);
  auto y = x;
  plan.execute(x.data(), Direction::Forward);
  plan.execute(y.data(), Direction::Forward);
  EXPECT_EQ(x, y);
  EXPECT_EQ(plan.size(), n);
}

TEST(Fft, SharedPlanConcurrentExecuteIsRaceFree) {
  // Regression: scratch used to live inside the plan, so concurrent
  // execute() on one shared plan was a data race that silently corrupted
  // results. Scratch is now a thread-local arena lease — hammer one plan
  // from many threads and check every transform against the reference.
  const index_t n = 256;
  const int kThreads = 8, kReps = 16;
  Plan1D<double> plan(n);
  auto x = random_signal<double>(n, 21);
  std::vector<Cx<double>> ref(static_cast<std::size_t>(n));
  dft_reference(x.data(), ref.data(), n);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int r = 0; r < kReps; ++r) {
        auto mine = x;
        plan.execute(mine.data(), Direction::Forward);
        if (rel_l2_error(mine.data(), ref.data(), n) > 1e-12) failures++;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Fft, BatchedIsBitIdenticalSerialVsPool) {
  // Pool-chunked batches must produce exactly the serial result: each
  // batch is transformed by one task with a fixed arithmetic order.
  const index_t n = 512, count = 64;
  auto pool_run = random_signal<double>(n * count, 22);
  auto serial_run = pool_run;
  Plan1D<double> plan(n);
  plan.execute_batched(pool_run.data(), count, Direction::Forward);
  {
    ThreadPool::ScopedSerial serial;
    plan.execute_batched(serial_run.data(), count, Direction::Forward);
  }
  EXPECT_EQ(pool_run, serial_run);
}

TEST(Fft, PlanCacheReturnsSharedPlans) {
  const auto before = plan_cache_stats();
  auto p1 = cached_plan1d<double>(3072);  // unlikely to be cached by other tests
  const auto after_miss = plan_cache_stats();
  auto p2 = cached_plan1d<double>(3072);
  const auto after_hit = plan_cache_stats();
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(p1->size(), 3072);
  EXPECT_EQ(after_miss.misses, before.misses + 1);
  EXPECT_EQ(after_hit.hits, after_miss.hits + 1);
  // One-shot fft() goes through the cache: a repeat at the same size must
  // be a hit, not a rebuild.
  std::vector<Cx<double>> x(64, Cx<double>(1, 0));
  fft(x.data(), 64);
  const auto s1 = plan_cache_stats();
  fft(x.data(), 64);
  const auto s2 = plan_cache_stats();
  EXPECT_EQ(s2.hits, s1.hits + 1);
  EXPECT_EQ(s2.misses, s1.misses);
}

TEST(Fft, FlopModel) {
  EXPECT_EQ(fft_flops(1), 0.0);
  EXPECT_NEAR(fft_flops(1024), 5.0 * 1024 * 10, 1e-9);
}

TEST(Fft, ThrowsOnInvalidSize) {
  EXPECT_THROW(Plan1D<double>(0), Error);
  EXPECT_THROW(Plan1D<double>(-4), Error);
}

}  // namespace
}  // namespace fmmfft::fft
