// Unit tests for the common substrate: tensors, permutations, buffers,
// math helpers, RNG determinism.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/aligned.hpp"
#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/permute.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/tensor.hpp"
#include "common/types.hpp"

namespace fmmfft {
namespace {

TEST(Types, ComponentsAndTraits) {
  EXPECT_EQ(components_v<float>, 1);
  EXPECT_EQ(components_v<double>, 1);
  EXPECT_EQ(components_v<std::complex<float>>, 2);
  EXPECT_EQ(components_v<std::complex<double>>, 2);
  EXPECT_TRUE((std::is_same_v<real_of_t<std::complex<double>>, double>));
  EXPECT_TRUE((std::is_same_v<real_of_t<float>, float>));
}

TEST(Types, ScalarTags) {
  EXPECT_EQ(scalar_of<float>(), Scalar::F32);
  EXPECT_EQ(scalar_of<std::complex<double>>(), Scalar::C64);
  EXPECT_EQ(bytes_of(Scalar::C32), 8u);
  EXPECT_EQ(bytes_of(Scalar::F64), 8u);
  EXPECT_TRUE(is_complex_scalar(Scalar::C64));
  EXPECT_FALSE(is_complex_scalar(Scalar::F32));
  EXPECT_TRUE(is_double_scalar(Scalar::F64));
  EXPECT_STREQ(to_string(Scalar::C64), "complex<double>");
}

TEST(Math, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2_exact(1 << 20), 20);
}

TEST(Math, CeilDivAndMod) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(mod(-1, 8), 7);
  EXPECT_EQ(mod(-9, 8), 7);
  EXPECT_EQ(mod(9, 8), 1);
}

TEST(Math, RelL2Error) {
  std::vector<double> a{1, 2, 3}, b{1, 2, 3};
  EXPECT_EQ(rel_l2_error(a.data(), b.data(), 3), 0.0);
  a[0] = 1.1;
  EXPECT_NEAR(rel_l2_error(a.data(), b.data(), 3), 0.1 / std::sqrt(14.0), 1e-12);
  std::vector<std::complex<double>> ca{{1, 1}}, cb{{1, 1}};
  EXPECT_EQ(rel_l2_error(ca.data(), cb.data(), 1), 0.0);
}

TEST(Error, ChecksThrow) {
  EXPECT_THROW(FMMFFT_CHECK(false), Error);
  EXPECT_NO_THROW(FMMFFT_CHECK(true));
  try {
    FMMFFT_CHECK_MSG(1 == 2, "context " << 42);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Buffer, ZeroInitAndMove) {
  Buffer<double> b(17);
  for (index_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0.0);
  b[3] = 5;
  Buffer<double> c = std::move(b);
  EXPECT_EQ(c.size(), 17);
  EXPECT_EQ(c[3], 5.0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) % kAlignment, 0u);
}

TEST(Buffer, FillAndIterate) {
  Buffer<float> b(8);
  b.fill(2.5f);
  float s = std::accumulate(b.begin(), b.end(), 0.0f);
  EXPECT_EQ(s, 20.0f);
  EXPECT_TRUE(Buffer<float>().empty());
}

TEST(Tensor, CompactStrides) {
  Buffer<double> storage(2 * 3 * 4);
  Tensor3<double> t(storage.data(), {2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.ld(0), 1);
  EXPECT_EQ(t.ld(1), 2);
  EXPECT_EQ(t.ld(2), 6);
  t(1, 2, 3) = 7.0;
  EXPECT_EQ(storage[1 + 2 * 2 + 3 * 6], 7.0);
}

TEST(Tensor, SliceSlowestMode) {
  Buffer<int> storage(6 * 5);
  Tensor2<int> t(storage.data(), {6, 5});
  t(2, 3) = 11;
  auto s = t.slice(3);
  EXPECT_EQ(s.dim(0), 6);
  EXPECT_EQ(s(2), 11);
}

TEST(Tensor, NegativeHaloOffset) {
  // Halo regions index one box before the start on the slowest mode.
  Buffer<double> storage(4 * 6);
  Tensor2<double> t(storage.data() + 4, {4, 4});  // one halo box each side
  t(0, -1) = 1.5;                                  // legal: lands in storage[0]
  EXPECT_EQ(storage[0], 1.5);
  t(3, 4) = 2.5;
  EXPECT_EQ(storage[4 * 5 + 3], 2.5);
}

TEST(Permute, MPDefinition) {
  // (Pi_{M,P} x)[m + p*M] = x[p + m*P]
  const index_t M = 4, P = 3;
  std::vector<int> x(M * P), y(M * P);
  std::iota(x.begin(), x.end(), 0);
  permute_mp(x.data(), y.data(), M, P);
  for (index_t p = 0; p < P; ++p)
    for (index_t m = 0; m < M; ++m) EXPECT_EQ(y[m + p * M], x[p + m * P]);
}

TEST(Permute, PMIsInverse) {
  const index_t M = 8, P = 5;
  std::vector<double> x(M * P), y(M * P), z(M * P);
  fill_uniform(x.data(), M * P, 42);
  permute_mp(x.data(), y.data(), M, P);
  permute_pm(y.data(), z.data(), M, P);
  EXPECT_EQ(x, z);
}

TEST(Permute, TransposeMatchesPermute) {
  const index_t M = 13, P = 7;
  std::vector<double> x(M * P), y(M * P), z(M * P);
  fill_uniform(x.data(), M * P, 7);
  permute_mp(x.data(), y.data(), M, P);
  // x viewed as P×M column-major; its transpose is the M-major layout.
  transpose_blocked(x.data(), z.data(), P, M);
  EXPECT_EQ(y, z);
}

// Index-exact oracle for y[j + i*cols] = x[i + j*rows].
template <typename T>
std::vector<T> transpose_oracle(const std::vector<T>& x, index_t rows, index_t cols) {
  std::vector<T> y(x.size());
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) y[(std::size_t)(j + i * cols)] = x[(std::size_t)(i + j * rows)];
  return y;
}

TEST(Permute, TransposeExhaustiveShapes) {
  // Square, rectangular, odd, prime, sub-tile, tile-straddling, and
  // degenerate shapes — the cache-oblivious kernel, the 32×32 reference
  // and permute_mp must all agree with the index-exact oracle.
  const index_t shapes[][2] = {{1, 1},   {1, 17},  {17, 1},  {2, 2},    {7, 7},
                               {13, 13}, {31, 37}, {64, 64}, {96, 64},  {64, 96},
                               {127, 3}, {3, 127}, {101, 97}, {256, 33}, {33, 256}};
  for (const auto& s : shapes) {
    const index_t r = s[0], c = s[1];
    std::vector<double> x(std::size_t(r * c));
    fill_uniform(x.data(), r * c, int(r * 1000 + c));
    const auto want = transpose_oracle(x, r, c);
    std::vector<double> y(x.size(), -1.0), yref(x.size(), -2.0), ymp(x.size(), -3.0);
    transpose_blocked(x.data(), y.data(), r, c);
    transpose_blocked_ref(x.data(), yref.data(), r, c);
    permute_mp(x.data(), ymp.data(), /*m_dim=*/c, /*p_dim=*/r);
    EXPECT_EQ(y, want) << "blocked " << r << "x" << c;
    EXPECT_EQ(yref, want) << "ref " << r << "x" << c;
    EXPECT_EQ(ymp, want) << "permute_mp " << r << "x" << c;
  }
}

TEST(Permute, TransposeExhaustiveShapesComplex) {
  // The c64 tile side differs from double's budget arithmetic only via
  // sizeof; check the type the FFT paths actually move.
  using Cx = std::complex<double>;
  for (index_t r : {5, 32, 33, 100}) {
    for (index_t c : {3, 32, 65, 128}) {
      std::vector<Cx> x(std::size_t(r * c));
      fill_uniform(x.data(), r * c, int(r + c));
      const auto want = transpose_oracle(x, r, c);
      std::vector<Cx> y(x.size());
      transpose_blocked(x.data(), y.data(), r, c);
      EXPECT_EQ(y, want) << r << "x" << c;
    }
  }
}

TEST(Permute, TransposeExhaustiveShapesF32) {
  // fp32 doubles the tile side vs fp64 under the same budget — cover the
  // width the mixed-precision FMM pipeline moves, sub-tile to straddling.
  for (index_t r : {1, 7, 33, 64, 129}) {
    for (index_t c : {3, 32, 65, 128}) {
      std::vector<float> x(std::size_t(r * c));
      fill_uniform(x.data(), r * c, std::uint64_t(2 * r + c));
      const auto want = transpose_oracle(x, r, c);
      std::vector<float> y(x.size(), -1.0f), yref(x.size(), -2.0f);
      transpose_blocked(x.data(), y.data(), r, c);
      transpose_blocked_ref(x.data(), yref.data(), r, c);
      EXPECT_EQ(y, want) << "blocked f32 " << r << "x" << c;
      EXPECT_EQ(yref, want) << "ref f32 " << r << "x" << c;
    }
  }
}

TEST(Permute, TransposeInplaceAndStridedC32) {
  // c32 shares fp64's 8-byte element budget; check the in-place square
  // path and the strided fused-A2A kernel at that width.
  using Cx = std::complex<float>;
  for (index_t n : {1, 31, 32, 33, 100}) {
    std::vector<Cx> x(std::size_t(n * n));
    fill_uniform(x.data(), n * n, std::uint64_t(n + 1));
    std::vector<Cx> want(x.size());
    transpose_blocked(x.data(), want.data(), n, n);
    std::vector<Cx> y = x;
    transpose_inplace(y.data(), n);
    EXPECT_EQ(y, want) << "n=" << n;
    transpose_inplace(y.data(), n);
    EXPECT_EQ(y, x) << "round trip n=" << n;
  }
  const index_t ldx = 21, ldy = 17, nr = 12, nc = 15;
  std::vector<Cx> x(std::size_t(ldx * nc));
  fill_uniform(x.data(), ldx * nc, 11);
  std::vector<Cx> y(std::size_t(ldy * nr), Cx(0)), want(y.size(), Cx(0));
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < nr; ++i)
      want[(std::size_t)(j + i * ldy)] = x[(std::size_t)(i + j * ldx)];
  detail::transpose_strided_serial(x.data(), ldx, y.data(), ldy, nr, nc);
  EXPECT_EQ(y, want);
}

TEST(Permute, TransposeInplaceMatchesOutOfPlace) {
  // Square in-place vs out-of-place across sub-tile, tile-exact, straddling
  // and prime sides; a double round trip restores the input.
  for (index_t n : {1, 2, 7, 31, 32, 33, 64, 96, 101, 128}) {
    std::vector<double> x(std::size_t(n * n));
    fill_uniform(x.data(), n * n, int(n));
    std::vector<double> want(x.size());
    transpose_blocked(x.data(), want.data(), n, n);
    std::vector<double> y = x;
    transpose_inplace(y.data(), n);
    EXPECT_EQ(y, want) << "n=" << n;
    transpose_inplace(y.data(), n);
    EXPECT_EQ(y, x) << "round trip n=" << n;
  }
}

TEST(Permute, TransposeInplaceRejectsRectangular) {
  // The shape-checked overload must hard-error on non-square matrices
  // (in-place cycle-following over a rectangle would silently corrupt) and
  // agree with the square overload when the shape is legal.
  std::vector<double> x(std::size_t(6 * 4));
  fill_uniform(x.data(), 24, 7);
  EXPECT_THROW(transpose_inplace(x.data(), index_t(6), index_t(4)), Error);
  EXPECT_THROW(transpose_inplace(x.data(), index_t(1), index_t(24)), Error);
  std::vector<double> sq(std::size_t(4 * 4)), want(sq.size());
  fill_uniform(sq.data(), 16, 8);
  transpose_blocked(sq.data(), want.data(), 4, 4);
  std::vector<double> y = sq;
  transpose_inplace(y.data(), index_t(4), index_t(4));
  EXPECT_EQ(y, want);
}

TEST(Permute, TransposeStridedSubmatrix) {
  // The strided kernel under the fused all-to-all: transpose an interior
  // nr×nc window of a larger matrix with independent source/destination
  // leading dimensions.
  const index_t ldx = 37, ldy = 29, nr = 20, nc = 24;
  std::vector<double> x(std::size_t(ldx * nc));
  fill_uniform(x.data(), ldx * nc, 5);
  std::vector<double> y(std::size_t(ldy * nr), 0.0), want(y.size(), 0.0);
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < nr; ++i)
      want[(std::size_t)(j + i * ldy)] = x[(std::size_t)(i + j * ldx)];
  detail::transpose_strided_serial(x.data(), ldx, y.data(), ldy, nr, nc);
  EXPECT_EQ(y, want);
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(5);
  for (int i = 0; i < 1000; ++i) {
    double v = c.uniform_sym();
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FillUniformComplex) {
  std::vector<std::complex<float>> v(64);
  fill_uniform(v.data(), 64, 9);
  bool nonzero = false;
  for (auto& z : v) {
    EXPECT_LE(std::abs(z.real()), 1.0f);
    EXPECT_LE(std::abs(z.imag()), 1.0f);
    if (z != std::complex<float>(0)) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(ScratchArena, ReusesAlignedBlocksAcrossLeases) {
  auto& arena = ScratchArena::local();
  const std::size_t cached_before = arena.cached_blocks();
  const void* first;
  {
    ScratchBlock<double> blk(1000);
    first = blk.data();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(blk.data()) % kAlignment, 0u);
    EXPECT_EQ(blk.size(), 1000);
    for (index_t i = 0; i < blk.size(); ++i) blk[i] = double(i);
    EXPECT_EQ(blk[999], 999.0);
  }
  EXPECT_GE(arena.cached_blocks(), cached_before);  // released back, not freed
  {
    // Same size checks the block back out instead of allocating.
    ScratchBlock<double> blk(1000);
    EXPECT_EQ(blk.data(), first);
  }
}

TEST(ScratchArena, NestedLeasesAreDistinct) {
  ScratchBlock<int> a(64);
  ScratchBlock<int> b(64);
  EXPECT_NE(a.data(), b.data());
}

TEST(ScratchArena, CacheStaysBounded) {
  // Leasing more distinct sizes than the cache capacity must evict rather
  // than grow without bound.
  for (int round = 0; round < 3; ++round)
    for (index_t n = 1; n <= 64; ++n) ScratchBlock<double> blk(n * 1024);
  EXPECT_LE(ScratchArena::local().cached_blocks(), ScratchArena::kMaxCached);
}

TEST(Table, PrintsAllCells) {
  Table t({"a", "bb"});
  t.row().col(1).col(2.5, 1);
  t.row().col("x").col_sci(1234.5);
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("1.23e+03"), std::string::npos);
}

}  // namespace
}  // namespace fmmfft
