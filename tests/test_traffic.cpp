// Tests for the memory-traffic ledger: exact hand-counted bytes/flops on a
// small GEMM, a Stockham FFT, and a distributed all-to-all; serial-vs-async
// executor identity of the algorithmic totals; the traffic-vs-model
// cross-check on a real distributed run; the zero-allocation disabled path;
// and finite STREAM/FMA roofline calibration.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "dist/collectives.hpp"
#include "dist/dfmmfft.hpp"
#include "exec/executor.hpp"
#include "fft/fft.hpp"
#include "json_validator.hpp"
#include "obs/compare.hpp"
#include "obs/obs.hpp"
#include "obs/traffic.hpp"

// Global allocation counter for the disabled-path test. Counting every
// operator new in the binary is fine; the test only compares deltas.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

// GCC pairs new/delete at call sites and flags free() here even though the
// replaced operator new above allocates with malloc; the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace fmmfft::obs {
namespace {

using fmmfft::testing::JsonValidator;

/// RAII: clean ledger with collection on, wipe + disable on exit.
struct TrafficSession {
  TrafficSession() {
    disable();
    reset();
    enable_traffic(true);
  }
  ~TrafficSession() {
    disable();
    reset();
  }
};

TEST(Ledger, GemmBytesHandCounted) {
  TrafficSession s;
  const index_t m = 4, n = 4, k = 4;
  std::vector<double> a(std::size_t(m * k), 1.0), b(std::size_t(k * n), 2.0),
      c(std::size_t(m * n), 0.0);
  blas::gemm<double>(blas::Op::N, blas::Op::N, m, n, k, 1.0, a.data(), m, b.data(), k, 0.0,
                     c.data(), m);
  const auto snap = TrafficLedger::global().snapshot();
  ASSERT_TRUE(snap.count("blas.gemm"));
  const auto& t = snap.at("blas.gemm");
  // beta = 0: reads A (4x4) and B (4x4), writes C (4x4), 2mnk flops.
  EXPECT_DOUBLE_EQ(t.bytes_read, 32 * 8.0);
  EXPECT_DOUBLE_EQ(t.bytes_written, 16 * 8.0);
  EXPECT_DOUBLE_EQ(t.flops, 128.0);
  EXPECT_DOUBLE_EQ(t.calls, 1.0);

  // blas.* is an aux scope (its operand traffic double-counts the FMM stage
  // accounting): excluded from the primary total.
  EXPECT_TRUE(TrafficLedger::is_aux("blas.gemm"));
  EXPECT_DOUBLE_EQ(TrafficLedger::global().total(/*primary_only=*/true).bytes_moved(), 0.0);
  EXPECT_DOUBLE_EQ(TrafficLedger::global().total(false).bytes_moved(), 48 * 8.0);
}

TEST(Ledger, StockhamFftBytesHandCounted) {
  TrafficSession s;
  // n = 8: 2 radix-4 stages, even, no copy-back -> 2 passes. Each pass reads
  // and writes all 8 complex elements (16 B each in double).
  {
    fft::Plan1D<double> plan(8);
    std::vector<std::complex<double>> x(8, {1.0, 0.0});
    plan.execute(x.data(), fft::Direction::Forward);
  }
  auto snap = TrafficLedger::global().snapshot();
  ASSERT_TRUE(snap.count("fft"));
  EXPECT_DOUBLE_EQ(snap.at("fft").bytes_read, 2 * 8 * 16.0);
  EXPECT_DOUBLE_EQ(snap.at("fft").bytes_written, 2 * 8 * 16.0);
  EXPECT_DOUBLE_EQ(snap.at("fft").flops, fft::fft_flops(8));

  // n = 2: a single stage, odd, so the ping-pong ends in scratch and a
  // copy-back pass rides along -> 2 passes over 2 elements.
  TrafficLedger::global().reset();
  {
    fft::Plan1D<double> plan(2);
    std::vector<std::complex<double>> x(2, {1.0, 0.0});
    plan.execute(x.data(), fft::Direction::Forward);
  }
  snap = TrafficLedger::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.at("fft").bytes_read, 2 * 2 * 16.0);
  EXPECT_DOUBLE_EQ(snap.at("fft").bytes_written, 2 * 2 * 16.0);
}

TEST(Ledger, AllToAllBytesHandCounted) {
  TrafficSession s;
  // m = p = 4 over g = 2: each ordered pair exchanges (m/g)(p/g) = 4
  // doubles; 4 pairs total, 2 of them off-device.
  const index_t m = 4, p = 4;
  sim::Fabric fabric(2);
  std::vector<double> buf_in(16), buf_out(16);
  for (int i = 0; i < 16; ++i) buf_in[(std::size_t)i] = double(i);
  const std::vector<double*> in = {buf_in.data(), buf_in.data() + 8};
  const std::vector<double*> out = {buf_out.data(), buf_out.data() + 8};
  dist::all_to_all_permute_mp(fabric, in, out, m, p, "A2A-T");

  const auto snap = TrafficLedger::global().snapshot();
  // Fused path: pack is the strided gather's read side, unpack the
  // scatter's write side — one read + one write per element, 4 pairs x 4
  // doubles each. The staged path's extra copy (pack-write + unpack-read)
  // is gone: those columns are exactly zero.
  EXPECT_DOUBLE_EQ(snap.at("a2a.pack").bytes_read, 4 * 4 * 8.0);
  EXPECT_DOUBLE_EQ(snap.at("a2a.pack").bytes_written, 0.0);
  EXPECT_DOUBLE_EQ(snap.at("a2a.unpack").bytes_read, 0.0);
  EXPECT_DOUBLE_EQ(snap.at("a2a.unpack").bytes_written, 4 * 4 * 8.0);
  // Fabric payload counts off-device sends only: 2 pairs x 4 doubles, which
  // is the (G-1)/G share of the 16-element permutation.
  EXPECT_DOUBLE_EQ(snap.at("comm.A2A-T").comm_bytes, 2 * 4 * 8.0);

  // Permutation correctness unaffected by the accounting.
  EXPECT_DOUBLE_EQ(buf_out[1], buf_in[4]);
}

TEST(Ledger, FusedAllToAllHalvesStagedBytes) {
  // The staged reference moves every element four times (pack rd+wr,
  // unpack rd+wr); the fused path moves it twice. Same fabric payload,
  // bit-identical outputs.
  const index_t m = 16, p = 8;
  const int g = 4;
  std::vector<double> buf_in(std::size_t(m * p)), out_fused(buf_in.size()),
      out_staged(buf_in.size());
  for (std::size_t i = 0; i < buf_in.size(); ++i) buf_in[i] = double(i) * 0.5;
  const index_t slab = m * p / g;
  std::vector<double*> in, of, os;
  for (int r = 0; r < g; ++r) {
    in.push_back(buf_in.data() + r * slab);
    of.push_back(out_fused.data() + r * slab);
    os.push_back(out_staged.data() + r * slab);
  }

  double fused_moved = 0, staged_moved = 0, fused_comm = 0, staged_comm = 0;
  {
    TrafficSession s;
    sim::Fabric fabric(g);
    dist::all_to_all_permute_mp(fabric, in, of, m, p, "A2A-T");
    const auto snap = TrafficLedger::global().snapshot();
    fused_moved = snap.at("a2a.pack").bytes_moved() + snap.at("a2a.unpack").bytes_moved();
    fused_comm = snap.at("comm.A2A-T").comm_bytes;
  }
  {
    TrafficSession s;
    sim::Fabric fabric(g);
    dist::all_to_all_permute_mp_staged(fabric, in, os, m, p, "A2A-T");
    const auto snap = TrafficLedger::global().snapshot();
    staged_moved = snap.at("a2a.pack").bytes_moved() + snap.at("a2a.unpack").bytes_moved();
    staged_comm = snap.at("comm.A2A-T").comm_bytes;
  }
  EXPECT_DOUBLE_EQ(fused_moved, 2.0 * double(m) * double(p) * 8.0);
  EXPECT_DOUBLE_EQ(staged_moved, 4.0 * double(m) * double(p) * 8.0);
  EXPECT_DOUBLE_EQ(fused_moved, 0.5 * staged_moved);
  EXPECT_DOUBLE_EQ(fused_comm, staged_comm);  // §5.2 message payload unchanged
  EXPECT_EQ(out_fused, out_staged);
}

TEST(Ledger, SerialAndAsyncTotalsAreIdentical) {
  // The ledger records algorithmic traffic, so totals must be a pure
  // function of the problem — bit-identical across executor modes (exec.*
  // scopes carry wall seconds and are excluded).
  const fmm::Params prm{1 << 14, 64, 8, 2, 18};
  using In = std::complex<double>;
  std::vector<In> x(std::size_t(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 11);

  auto run = [&](exec::Mode mode) {
    TrafficSession s;
    exec::ScopedMode sm(mode);
    dist::DistFmmFft<In> plan(prm, 2);
    plan.execute(x.data(), y.data());
    std::map<std::string, TrafficTotals> snap;
    for (auto& [name, t] : TrafficLedger::global().snapshot())
      if (name.rfind("exec.", 0) != 0) snap.emplace(name, t);
    return snap;
  };
  const auto serial = run(exec::Mode::Serial);
  const auto async = run(exec::Mode::Async);

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), async.size());
  for (const auto& [name, t] : serial) {
    ASSERT_TRUE(async.count(name)) << name;
    const auto& u = async.at(name);
    EXPECT_EQ(t.bytes_read, u.bytes_read) << name;
    EXPECT_EQ(t.bytes_written, u.bytes_written) << name;
    EXPECT_EQ(t.comm_bytes, u.comm_bytes) << name;
    EXPECT_EQ(t.flops, u.flops) << name;
  }
}

TEST(Ledger, TrafficMatchesModelOnDistributedRun) {
  TrafficSession s;
  const fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const int g = 2;
  using In = std::complex<double>;
  std::vector<In> x(std::size_t(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 7);
  dist::DistFmmFft<In> plan(prm, g);
  plan.execute(x.data(), y.data());

  // The plan honors the ambient FMMFFT_PRECISION (CI runs a mixed leg),
  // so hand the model the matching translation width.
  const double tb = fmm::translation_real_bytes(fmm::default_precision(), sizeof(double));
  const auto report = compare_traffic_with_model(prm, /*components=*/2, g, sizeof(double), 1, tb);
  EXPECT_TRUE(report.all_ok()) << report.to_string();
  ASSERT_GE(report.checks.size(), 8u);

  // Ledger JSON is loadable and carries the expected schema.
  std::ostringstream os;
  TrafficLedger::global().write_json(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"fmmfft.traffic.v1\""), std::string::npos);

  // A second run doubles every count; runs=2 must still agree exactly.
  plan.execute(x.data(), y.data());
  EXPECT_TRUE(compare_traffic_with_model(prm, 2, g, sizeof(double), /*runs=*/2, tb).all_ok());
}

TEST(Ledger, MixedTrafficMatchesModelAndHalvesCommBytes) {
  // Mixed precision must stay exact against the model with trans_bytes = 4
  // and ship exactly half the fp64 run's FMM comm payload; the all-to-all
  // (shell width) is untouched. Per-precision ".f32" scope keys make the
  // two byte populations separately visible.
  const fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const int g = 2;
  using In = std::complex<double>;
  std::vector<In> x(std::size_t(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 7);

  struct Sums {
    double fmm_comm = 0, a2a = 0;
    bool any_f32 = false;
  };
  auto run = [&](fmm::Precision prec, double trans_bytes) {
    TrafficSession s;
    dist::DistFmmFft<In> plan(prm, g, prec);
    plan.execute(x.data(), y.data());
    EXPECT_TRUE(compare_traffic_with_model(prm, 2, g, sizeof(double), 1, trans_bytes).all_ok());
    Sums sums;
    for (const auto& [name, t] : TrafficLedger::global().snapshot()) {
      if (name.rfind("comm.COMM-", 0) == 0) sums.fmm_comm += t.comm_bytes;
      if (name.rfind("comm.A2A-2D", 0) == 0) sums.a2a += t.comm_bytes;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".f32") == 0)
        sums.any_f32 = true;
    }
    return sums;
  };

  const Sums fp64 = run(fmm::Precision::Fp64, 0);
  const Sums mixed = run(fmm::Precision::Mixed, 4.0);
  ASSERT_GT(fp64.fmm_comm, 0.0);
  EXPECT_FALSE(fp64.any_f32);
  EXPECT_TRUE(mixed.any_f32);
  EXPECT_EQ(mixed.fmm_comm, fp64.fmm_comm / 2);  // exact byte counts
  EXPECT_EQ(mixed.a2a, fp64.a2a);                // shell width untouched
}

TEST(Disabled, TrafficHooksDoNotAllocate) {
  disable();
  reset();
  // Warm up: materialize the scope node and the call-site reference cache
  // while enabled, so the disabled loop measures only the steady state.
  enable_traffic(true);
  FMMFFT_TRAFFIC_RW("warm.rw", 1, 1, 1);
  FMMFFT_TRAFFIC_COMM("warm.comm", 1);
  enable_traffic(false);

  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    FMMFFT_TRAFFIC_RW("warm.rw", 64, 64, 128);
    FMMFFT_TRAFFIC_COMM("warm.comm", 64);
    FMMFFT_TRAFFIC_RW("never.materialized", 64, 64, 128);
  }
  EXPECT_EQ(g_allocs.load(), before);
  // The disabled hooks recorded nothing beyond the two warm-up adds.
  EXPECT_DOUBLE_EQ(TrafficLedger::global().total(false).bytes_moved(), 3.0);
  reset();
}

TEST(Disabled, CollectivesSteadyStateDoesNotAllocate) {
  // With observability off (the disabled-observability bench rows), a
  // steady-state all-to-all must allocate nothing: the fused path writes
  // straight into the destination slabs, the staged reference leases its
  // stage from the thread-local ScratchArena, and the fabric ledger's
  // vector keeps its capacity across reset(). Serial-forced so
  // parallel_for takes its direct-call path (no std::function).
  disable();
  reset();
  ThreadPool::ScopedSerial serial;
  const index_t m = 16, p = 8;
  const int g = 4;
  std::vector<double> buf_in(std::size_t(m * p), 1.0), buf_out(buf_in.size());
  const index_t slab = m * p / g;
  std::vector<double*> in, out;
  for (int r = 0; r < g; ++r) {
    in.push_back(buf_in.data() + r * slab);
    out.push_back(buf_out.data() + r * slab);
  }
  sim::Fabric fabric(g);
  // Warm-up: grow the ledger vector, fault in the arena slabs.
  dist::all_to_all_permute_mp(fabric, in, out, m, p, "A2A-T");
  dist::all_to_all_permute_mp_staged(fabric, in, out, m, p, "A2A-T");
  fabric.reset();

  const std::uint64_t before = g_allocs.load();
  for (int rep = 0; rep < 100; ++rep) {
    dist::all_to_all_permute_mp(fabric, in, out, m, p, "A2A-T");
    dist::all_to_all_permute_mp_staged(fabric, in, out, m, p, "A2A-T");
    fabric.reset();
  }
  EXPECT_EQ(g_allocs.load(), before);
}

TEST(Calibration, RooflineRatesAreFiniteAndPositive) {
  // Tiny arrays / one rep: validity, not measurement quality.
  const auto r = calibrate_roofline(/*threads=*/1, /*elems=*/index_t(1) << 14, /*reps=*/1);
  EXPECT_EQ(r.threads, 1);
  for (double v : {r.copy_bps, r.scale_bps, r.triad_bps, r.fma_flops, r.roof_bps()}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }

  const auto sweep = calibrate_roofline_sweep(index_t(1) << 14, 1);
  ASSERT_GE(sweep.size(), 1u);
  std::ostringstream os;
  write_calibration_json(os, sweep);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"fmmfft.calibration.v1\""), std::string::npos);
}

}  // namespace
}  // namespace fmmfft::obs
