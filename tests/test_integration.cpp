// Cross-module integration and property tests:
//  * stage-level parity between distributed engine slabs and the
//    single-node engine (multipoles, locals, targets, reductions);
//  * transform-level property sweeps across precision/params/devices;
//  * composition properties tying the FMM-FFT to its substrates
//    (time-shift theorem, convolution theorem via the NUFFT-free path).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "common/math.hpp"
#include "common/permute.hpp"
#include "common/rng.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "dist/dfmmfft.hpp"
#include "fft/fft.hpp"
#include "fmm/engine.hpp"

namespace fmmfft {
namespace {

using Cd = std::complex<double>;

// CI runs one leg of the suite under FMMFFT_PRECISION=mixed; plans built
// with the ambient default then carry the fp32 translation envelope, so
// the property tests pick their tolerance from the active policy.
bool ambient_mixed() { return fmm::default_precision() == fmm::Precision::Mixed; }

/// Drive G distributed engines through Algorithm 1 by hand (cyclic halos
/// via explicit cross-engine copies) and compare every intermediate tensor
/// against the single-node engine.
TEST(StageParity, DistributedSlabsMatchSingleNode) {
  fmm::Params prm{1 << 12, 32, 4, 2, 10};  // M=128, L=5
  const int g = 4, c = 2;
  std::vector<Cd> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 42);

  // Reference single-node engine driven through the same *partial* stage
  // sequence (S2M + halo + S2T) so intermediate tensors are comparable.
  fmm::Engine<double> ref(prm, c);
  std::memcpy(ref.source_box(0), x.data(), sizeof(Cd) * x.size());
  ref.zero();
  ref.s2m();
  ref.fill_source_halo_cyclic();
  ref.s2t();

  // Distributed run through the real driver.
  dist::DistFmmFft<Cd> dplan(prm, g);
  std::vector<Cd> y(x.size());
  dplan.execute(x.data(), y.data());

  // The distributed driver executed correctly if its final transform
  // matches; stage parity is checked through the single-node engine's
  // internal tensors re-derived per-slab below.
  const index_t nb = prm.leaves() / g;
  fmm::Engine<double> slab(prm, c, g, 1);  // rank 1's slab, driven by hand
  slab.zero();
  std::memcpy(slab.source_box(0), x.data() + 1 * (prm.n / g), sizeof(Cd) * (std::size_t)(prm.n / g));
  // Halos from the single-node source tensor (global boxes g*nb-1 and 2*nb).
  fmm::Engine<double> full(prm, c);
  std::memcpy(full.source_box(0), x.data(), sizeof(Cd) * x.size());
  std::memcpy(slab.source_box(-1), full.source_box(1 * nb - 1),
              sizeof(double) * (std::size_t)slab.source_box_elems());
  std::memcpy(slab.source_box(nb), full.source_box(2 * nb),
              sizeof(double) * (std::size_t)slab.source_box_elems());
  slab.s2m();
  slab.s2t();

  // S2T parity: slab boxes [0, nb) correspond to global boxes [nb, 2nb).
  for (index_t b = 0; b < nb; ++b) {
    const double* a = slab.target_box(b);
    const double* r = ref.target_box(nb + b);
    for (index_t i = 0; i < slab.source_box_elems(); ++i)
      ASSERT_NEAR(a[i], r[i], 1e-12) << "S2T box " << b << " elem " << i;
  }
  // Leaf multipole parity (interior only).
  for (index_t b = 0; b < nb; ++b) {
    const double* a = slab.multipole_box(prm.l(), b);
    const double* r = ref.multipole_box(prm.l(), nb + b);
    for (index_t i = 0; i < slab.expansion_box_elems(); ++i)
      ASSERT_NEAR(a[i], r[i], 1e-12) << "M^L box " << b;
  }
}

TEST(StageParity, ReductionIdenticalAcrossRanks) {
  // After the allgather every rank computes r from the same global M^B.
  fmm::Params prm{1 << 12, 32, 4, 3, 12};
  const int g = 4;
  std::vector<Cd> x(static_cast<std::size_t>(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 7);
  dist::DistFmmFft<Cd> plan(prm, g);
  plan.execute(x.data(), y.data());
  // Engine stats exist for each rank; reductions must agree bitwise.
  // (Access via a fresh single-node engine for the expected value.)
  core::FmmFft<Cd> single(prm);
  std::vector<Cd> ys(x.size());
  single.execute(x.data(), ys.data());
  EXPECT_LT(rel_l2_error(y.data(), ys.data(), prm.n), 1e-14);
}

struct SweepCase {
  index_t n, p, ml;
  int b, q, g;
};

class TransformSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TransformSweep, DistributedDoubleComplex) {
  const auto cse = GetParam();
  fmm::Params prm{cse.n, cse.p, cse.ml, cse.b, cse.q};
  if (!prm.is_admissible(cse.g)) GTEST_SKIP() << "inadmissible";
  std::vector<Cd> x(static_cast<std::size_t>(cse.n)), got(x.size()), expect(x.size());
  fill_uniform(x.data(), cse.n, cse.n + cse.g);
  dist::DistFmmFft<Cd> plan(prm, cse.g);
  plan.execute(x.data(), got.data());
  core::exact_fft(cse.n, x.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), cse.n), ambient_mixed() ? 4e-7 : 2e-14)
      << prm.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransformSweep,
    ::testing::Values(SweepCase{1 << 12, 32, 2, 2, 18, 2}, SweepCase{1 << 12, 64, 4, 2, 18, 4},
                      SweepCase{1 << 13, 32, 8, 2, 18, 2}, SweepCase{1 << 13, 64, 2, 3, 18, 8},
                      SweepCase{1 << 14, 128, 4, 2, 18, 4}, SweepCase{1 << 14, 32, 32, 2, 18, 2},
                      SweepCase{1 << 15, 64, 16, 3, 18, 8}, SweepCase{1 << 15, 256, 4, 3, 18, 2},
                      SweepCase{1 << 16, 512, 4, 2, 18, 4}, SweepCase{1 << 16, 32, 64, 3, 18, 8}));

TEST(TransformProperties, TimeShiftTheorem) {
  // FFT(x shifted by s)[k] = FFT(x)[k] · exp(-2πi·k·s/N), through the
  // full FMM-FFT pipeline.
  fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const index_t n = prm.n, s = 137;
  std::vector<Cd> x(static_cast<std::size_t>(n)), xs(x.size());
  fill_uniform(x.data(), n, 21);
  for (index_t t = 0; t < n; ++t) xs[(std::size_t)t] = x[(std::size_t)((t + s) % n)];
  core::FmmFft<Cd> plan(prm);
  std::vector<Cd> fx(x.size()), fxs(x.size());
  plan.execute(x.data(), fx.data());
  plan.execute(xs.data(), fxs.data());
  double worst = 0;
  for (index_t k = 0; k < n; ++k) {
    const Cd tw = std::exp(Cd(0, 2.0 * pi_v<double> * double((__int128)k * s % n) / double(n)));
    worst = std::max(worst, std::abs(fxs[(std::size_t)k] - fx[(std::size_t)k] * tw));
  }
  const double scale = std::sqrt(double(n));
  EXPECT_LT(worst / scale, ambient_mixed() ? 1e-4 : 1e-12);
}

TEST(TransformProperties, CircularConvolutionTheorem) {
  // ifft(FMMFFT(x) .* FMMFFT(h)) equals direct circular convolution.
  fmm::Params prm{1 << 12, 32, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), h(x.size());
  fill_uniform(x.data(), n, 31);
  // Short kernel keeps the direct reference cheap.
  std::fill(h.begin(), h.end(), Cd(0));
  for (int i = 0; i < 9; ++i) h[(std::size_t)i] = Cd(1.0 / (i + 1), 0.1 * i);

  core::FmmFft<Cd> plan(prm);
  std::vector<Cd> fx(x.size()), fh(x.size()), prod(x.size());
  plan.execute(x.data(), fx.data());
  plan.execute(h.data(), fh.data());
  for (std::size_t i = 0; i < prod.size(); ++i) prod[i] = fx[i] * fh[i];
  fft::fft(prod.data(), n, fft::Direction::Inverse);
  fft::normalize(prod.data(), n, n);

  for (index_t t : {index_t(0), index_t(5), n / 2, n - 1}) {
    Cd direct = 0;
    for (int i = 0; i < 9; ++i) direct += h[(std::size_t)i] * x[(std::size_t)mod(t - i, n)];
    EXPECT_NEAR(std::abs(prod[(std::size_t)t] - direct), 0.0, ambient_mixed() ? 1e-3 : 1e-10)
        << "t=" << t;
  }
}

TEST(TransformProperties, ConjugationIdentityGivesInverse) {
  // ifft(X) = conj(fmmfft(conj(X)))/N — the inverse-transform recipe the
  // spectral_filter example uses.
  fmm::Params prm{1 << 12, 32, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), spec(x.size()), back(x.size());
  fill_uniform(x.data(), n, 44);
  core::FmmFft<Cd> plan(prm);
  plan.execute(x.data(), spec.data());
  for (auto& v : spec) v = std::conj(v);
  plan.execute(spec.data(), back.data());
  for (index_t i = 0; i < n; ++i) back[(std::size_t)i] = std::conj(back[(std::size_t)i]) / double(n);
  EXPECT_LT(rel_l2_error(back.data(), x.data(), n), ambient_mixed() ? 4e-6 : 1e-13);
}

TEST(TransformProperties, PermutationFactorizationConsistency) {
  // Π_{P,M}·Π_{M,P} = I and the distributed transpose agrees with the
  // serial permutation for every admissible (M, P) pair used in the grid.
  for (auto [m, p] : {std::pair<index_t, index_t>{128, 32}, {64, 64}, {4096, 32}}) {
    std::vector<double> v(static_cast<std::size_t>(m * p)), w(v.size()), u(v.size());
    fill_uniform(v.data(), m * p, m + p);
    permute_mp(v.data(), w.data(), m, p);
    permute_pm(w.data(), u.data(), m, p);
    EXPECT_EQ(u, v) << "m=" << m << " p=" << p;
  }
}

TEST(TransformProperties, EnergiesAcrossPrecisions) {
  // Parseval must hold to the respective precision for all four input types.
  fmm::Params prm{1 << 12, 32, 8, 2, 18};
  const index_t n = prm.n;
  {
    std::vector<Cd> x(static_cast<std::size_t>(n)), y(x.size());
    fill_uniform(x.data(), n, 3);
    double ein = 0;
    for (auto& v : x) ein += std::norm(v);
    core::FmmFft<Cd> plan(prm);
    plan.execute(x.data(), y.data());
    double eout = 0;
    for (auto& v : y) eout += std::norm(v);
    EXPECT_NEAR(eout / (ein * n), 1.0, ambient_mixed() ? 2e-6 : 1e-12);
  }
  {
    fmm::Params pf = prm;
    pf.q = 8;
    std::vector<std::complex<float>> x(static_cast<std::size_t>(n)), y(x.size());
    fill_uniform(x.data(), n, 4);
    double ein = 0;
    for (auto& v : x) ein += std::norm(v);
    core::FmmFft<std::complex<float>> plan(pf);
    plan.execute(x.data(), y.data());
    double eout = 0;
    for (auto& v : y) eout += std::norm(v);
    EXPECT_NEAR(eout / (ein * n), 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace fmmfft
