// Tests for the nonequispaced FFT subsystem: the nonuniform-target FMM
// against direct cotangent sums, and the type-2 NUFFT against direct
// Fourier-series evaluation — random, clustered, and grid-coincident
// target distributions, both precisions, error-vs-Q decay.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "nufft/nufft.hpp"
#include "nufft/nufmm.hpp"

namespace fmmfft::nufft {
namespace {

using Cd = std::complex<double>;

std::vector<double> random_targets(index_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(m));
  for (auto& v : x) v = rng.uniform01() * 2.0 * pi_v<double> * 0.999999;
  return x;
}

std::vector<double> clustered_targets(index_t m) {
  // Chebyshev-style clustering near 0 and 2π: the hard case for uniform-box
  // schemes, routine for the FMM.
  std::vector<double> x(static_cast<std::size_t>(m));
  for (index_t j = 0; j < m; ++j)
    x[(std::size_t)j] = pi_v<double> * (1.0 - std::cos(pi_v<double> * (j + 0.5) / double(m)));
  return x;
}

TEST(NuFmm, MatchesDirectSumRandomTargets) {
  const index_t n = 1 << 10, m = 500;
  NonuniformFmm<double> fmm(n, random_targets(m, 1), 18, 8, 3);
  std::vector<Cd> q(static_cast<std::size_t>(n)), got(static_cast<std::size_t>(m)),
      ref(static_cast<std::size_t>(m));
  fill_uniform(q.data(), n, 2);
  fmm.apply(q.data(), got.data());
  fmm.apply_direct(q.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), m), 1e-12);
  EXPECT_EQ(fmm.num_sources(), n);
  EXPECT_EQ(fmm.num_targets(), m);
}

TEST(NuFmm, MatchesDirectSumClusteredTargets) {
  const index_t n = 1 << 10, m = 300;
  NonuniformFmm<double> fmm(n, clustered_targets(m), 18, 8, 3);
  std::vector<Cd> q(static_cast<std::size_t>(n)), got(static_cast<std::size_t>(m)),
      ref(static_cast<std::size_t>(m));
  fill_uniform(q.data(), n, 3);
  fmm.apply(q.data(), got.data());
  fmm.apply_direct(q.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), m), 1e-12);
}

TEST(NuFmm, ErrorDecreasesWithQ) {
  const index_t n = 1 << 10, m = 200;
  auto targets = random_targets(m, 4);
  std::vector<Cd> q(static_cast<std::size_t>(n)), ref(static_cast<std::size_t>(m));
  fill_uniform(q.data(), n, 5);
  NonuniformFmm<double>(n, targets, 18, 8, 3).apply_direct(q.data(), ref.data());
  double prev = 1e300;
  for (int qq : {4, 8, 12, 16}) {
    NonuniformFmm<double> fmm(n, targets, qq, 8, 3);
    std::vector<Cd> got(static_cast<std::size_t>(m));
    fmm.apply(q.data(), got.data());
    const double err = rel_l2_error(got.data(), ref.data(), m);
    EXPECT_LT(err, prev) << "q=" << qq;
    prev = err;
  }
  EXPECT_LT(prev, 1e-11);
}

TEST(NuFmm, DetectsAndSkipsGridHits) {
  const index_t n = 256;
  std::vector<double> targets{2.0 * pi_v<double> * 5 / n, 1.0,
                              2.0 * pi_v<double> * 200 / n};
  NonuniformFmm<double> fmm(n, targets, 18, 8, 3);
  ASSERT_EQ(fmm.exact_hits().size(), 2u);
  EXPECT_EQ(fmm.exact_hits()[0].first, 0);
  EXPECT_EQ(fmm.exact_hits()[0].second, 5);
  EXPECT_EQ(fmm.exact_hits()[1].second, 200);
  // apply() must produce finite values for the coincident targets.
  std::vector<Cd> q(static_cast<std::size_t>(n)), got(3);
  fill_uniform(q.data(), n, 6);
  fmm.apply(q.data(), got.data());
  for (auto& v : got) EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  std::vector<Cd> ref(3);
  fmm.apply_direct(q.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), 3), 1e-12);
}

TEST(NuFmm, RejectsBadConfig) {
  EXPECT_THROW(NonuniformFmm<double>(100, {0.5}, 8, 8, 3), Error);   // n not pow2
  EXPECT_THROW(NonuniformFmm<double>(256, {7.0}, 8, 8, 3), Error);   // target out of range
  EXPECT_THROW(NonuniformFmm<double>(256, {0.5}, 8, 8, 9), Error);   // B > L
}

class NufftTargets : public ::testing::TestWithParam<int> {};

TEST_P(NufftTargets, MatchesDirectSeriesEvaluation) {
  const index_t n = 1 << GetParam(), m = 400;
  NufftType2<double> plan(n, random_targets(m, GetParam()), 18, 16, 3);
  std::vector<Cd> c(static_cast<std::size_t>(n)), got(static_cast<std::size_t>(m)),
      ref(static_cast<std::size_t>(m));
  fill_uniform(c.data(), n, 10 + GetParam());
  plan.execute(c.data(), got.data());
  plan.reference(c.data(), ref.data());
  // Tolerance grows mildly with n: the near-field cotangent terms scale
  // like n for targets close to grid points, amplifying rounding before
  // the sin(n·x/2) factor restores the O(1) result.
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), m), GetParam() >= 13 ? 1e-9 : 1e-11)
      << "n=2^" << GetParam();
  EXPECT_EQ(plan.spectrum_size(), n);
  EXPECT_EQ(plan.num_targets(), m);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NufftTargets, ::testing::Values(8, 10, 12, 14));

TEST(Nufft, GridTargetsReproduceInverseFft) {
  // When the targets ARE the uniform grid, the NUFFT must agree with the
  // plain inverse DFT at those points.
  const index_t n = 512;
  std::vector<double> targets(static_cast<std::size_t>(n));
  for (index_t m = 0; m < n; ++m) targets[(std::size_t)m] = 2.0 * pi_v<double> * m / n;
  NufftType2<double> plan(n, targets, 18, 8, 3);
  std::vector<Cd> c(static_cast<std::size_t>(n)), got(c.size()), ref(c.size());
  fill_uniform(c.data(), n, 20);
  plan.execute(c.data(), got.data());
  plan.reference(c.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), n), 1e-12);
}

TEST(Nufft, PureToneEvaluatesExactly) {
  const index_t n = 256, m = 100;
  auto targets = random_targets(m, 9);
  std::vector<Cd> c(static_cast<std::size_t>(n), Cd(0));
  const index_t k = 7;
  c[(std::size_t)k] = Cd(1, 0);
  NufftType2<double> plan(n, targets, 18, 8, 3);
  std::vector<Cd> got(static_cast<std::size_t>(m));
  plan.execute(c.data(), got.data());
  for (index_t j = 0; j < m; ++j) {
    const Cd expect = std::exp(Cd(0, double(k) * targets[(std::size_t)j]));
    EXPECT_NEAR(std::abs(got[(std::size_t)j] - expect), 0.0, 1e-11);
  }
}

TEST(Nufft, NegativeFrequencyAndNyquist) {
  const index_t n = 128, m = 64;
  auto targets = random_targets(m, 11);
  NufftType2<double> plan(n, targets, 18, 8, 3);
  // Negative frequency bin.
  std::vector<Cd> c(static_cast<std::size_t>(n), Cd(0));
  c[(std::size_t)(n - 3)] = Cd(0.5, -0.25);  // k̃ = -3
  std::vector<Cd> got(static_cast<std::size_t>(m));
  plan.execute(c.data(), got.data());
  for (index_t j = 0; j < m; ++j) {
    const Cd expect = Cd(0.5, -0.25) * std::exp(Cd(0, -3.0 * targets[(std::size_t)j]));
    EXPECT_NEAR(std::abs(got[(std::size_t)j] - expect), 0.0, 1e-11);
  }
  // Nyquist bin uses the symmetric cosine convention.
  std::fill(c.begin(), c.end(), Cd(0));
  c[(std::size_t)(n / 2)] = Cd(1, 0);
  plan.execute(c.data(), got.data());
  for (index_t j = 0; j < m; ++j)
    EXPECT_NEAR(std::abs(got[(std::size_t)j] -
                         Cd(std::cos(n / 2.0 * targets[(std::size_t)j]), 0)),
                0.0, 1e-12);
}

TEST(Nufft, FloatPrecision) {
  const index_t n = 1 << 10, m = 200;
  auto td = random_targets(m, 12);
  std::vector<float> tf(td.begin(), td.end());
  NufftType2<float> plan(n, tf, 8, 16, 3);
  std::vector<std::complex<float>> c(static_cast<std::size_t>(n)), got(static_cast<std::size_t>(m)),
      ref(static_cast<std::size_t>(m));
  fill_uniform(c.data(), n, 13);
  plan.execute(c.data(), got.data());
  plan.reference(c.data(), ref.data());
  std::vector<Cd> gd(got.size()), rd(ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    gd[i] = Cd(got[i].real(), got[i].imag());
    rd[i] = Cd(ref[i].real(), ref[i].imag());
  }
  EXPECT_LT(rel_l2_error(gd.data(), rd.data(), m), 5e-4);
}


TEST(NuFmmTranspose, MatchesDirectTransposeSum) {
  const index_t n = 1 << 10, m = 400;
  NonuniformFmm<double> fmm(n, random_targets(m, 31), 18, 8, 3);
  std::vector<Cd> g(static_cast<std::size_t>(m)), got(static_cast<std::size_t>(n)),
      ref(static_cast<std::size_t>(n));
  fill_uniform(g.data(), m, 32);
  fmm.apply_transpose(g.data(), got.data());
  fmm.apply_transpose_direct(g.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), n), 1e-12);
}

TEST(NuFmmTranspose, AdjointProperty) {
  // <K q, g> == <q, K^T g> for the real kernel with complex vectors
  // (bilinear pairing, no conjugation): checks forward/transpose agree.
  const index_t n = 512, m = 200;
  NonuniformFmm<double> fmm(n, random_targets(m, 33), 18, 8, 3);
  std::vector<Cd> q(static_cast<std::size_t>(n)), g(static_cast<std::size_t>(m));
  fill_uniform(q.data(), n, 34);
  fill_uniform(g.data(), m, 35);
  std::vector<Cd> kq(static_cast<std::size_t>(m)), ktg(static_cast<std::size_t>(n));
  fmm.apply(q.data(), kq.data());
  fmm.apply_transpose(g.data(), ktg.data());
  Cd lhs = 0, rhs = 0;
  for (index_t j = 0; j < m; ++j) lhs += kq[(std::size_t)j] * g[(std::size_t)j];
  for (index_t i = 0; i < n; ++i) rhs += q[(std::size_t)i] * ktg[(std::size_t)i];
  EXPECT_NEAR(std::abs(lhs - rhs) / std::abs(lhs), 0.0, 1e-11);
}

TEST(NufftType1, MatchesDirectAdjoint) {
  const index_t n = 1 << 10, m = 300;
  NufftType1<double> plan(n, random_targets(m, 41), 18, 16, 3);
  std::vector<Cd> g(static_cast<std::size_t>(m)), got(static_cast<std::size_t>(n)),
      ref(static_cast<std::size_t>(n));
  fill_uniform(g.data(), m, 42);
  plan.execute(g.data(), got.data());
  plan.reference(g.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), n), 1e-11);
  EXPECT_EQ(plan.spectrum_size(), n);
  EXPECT_EQ(plan.num_points(), m);
}

TEST(NufftType1, HandlesGridCoincidentPoints) {
  const index_t n = 256;
  std::vector<double> pts{2.0 * pi_v<double> * 10 / n, 0.7, 2.0 * pi_v<double> * 99 / n, 2.5};
  NufftType1<double> plan(n, pts, 18, 8, 3);
  std::vector<Cd> g{{1, 0.5}, {-2, 0}, {0.3, -1}, {0, 2}};
  std::vector<Cd> got(static_cast<std::size_t>(n)), ref(static_cast<std::size_t>(n));
  plan.execute(g.data(), got.data());
  plan.reference(g.data(), ref.data());
  EXPECT_LT(rel_l2_error(got.data(), ref.data(), n), 1e-11);
}

TEST(NufftType1, AdjointOfType2) {
  // <A c, g> with conjugation = <c, A^H g>: type-1 IS type-2's
  // conjugate-transpose by construction.
  const index_t n = 512, m = 150;
  auto pts = random_targets(m, 51);
  NufftType2<double> fwd(n, pts, 18, 8, 3);
  NufftType1<double> adj(n, pts, 18, 8, 3);
  std::vector<Cd> c(static_cast<std::size_t>(n)), g(static_cast<std::size_t>(m));
  fill_uniform(c.data(), n, 52);
  fill_uniform(g.data(), m, 53);
  std::vector<Cd> ac(static_cast<std::size_t>(m)), ahg(static_cast<std::size_t>(n));
  fwd.execute(c.data(), ac.data());
  adj.execute(g.data(), ahg.data());
  Cd lhs = 0, rhs = 0;
  for (index_t j = 0; j < m; ++j) lhs += ac[(std::size_t)j] * std::conj(g[(std::size_t)j]);
  for (index_t k = 0; k < n; ++k) rhs += c[(std::size_t)k] * std::conj(ahg[(std::size_t)k]);
  EXPECT_NEAR(std::abs(lhs - rhs) / std::abs(lhs), 0.0, 1e-10);
}

}  // namespace
}  // namespace fmmfft::nufft
