// Tests for the multi-node extension (§7 outlook): hierarchical fabric
// parameters, NIC serialization in the simulator, energy model, and the
// projected growth of the FMM-FFT advantage with node count.
#include <gtest/gtest.h>

#include "dist/schedules.hpp"
#include "model/arch.hpp"
#include "model/counts.hpp"
#include "model/energy.hpp"
#include "sim/schedule.hpp"

namespace fmmfft::model {
namespace {

TEST(Multinode, DerivedArchTopology) {
  auto node = p100_nvlink(8);
  auto sys = multinode(node, 4, 12e9, 1.5e-6);
  EXPECT_EQ(sys.num_devices, 32);
  EXPECT_EQ(sys.devices_per_node, 8);
  EXPECT_TRUE(sys.multinode());
  EXPECT_FALSE(node.multinode());
  EXPECT_EQ(sys.node_of(0), 0);
  EXPECT_EQ(sys.node_of(7), 0);
  EXPECT_EQ(sys.node_of(8), 1);
  EXPECT_TRUE(sys.same_node(0, 7));
  EXPECT_FALSE(sys.same_node(7, 8));
  EXPECT_DOUBLE_EQ(sys.internode_bw, 12e9);
  // Intra-node parameters are inherited unchanged.
  EXPECT_DOUBLE_EQ(sys.link_bw, node.link_bw);
  EXPECT_DOUBLE_EQ(sys.gamma_d, node.gamma_d);
}

TEST(Multinode, InternodeLinkSeconds) {
  auto sys = multinode(p100_nvlink(2), 2, 10e9, 2e-6);
  EXPECT_NEAR(internode_link_seconds(10e9, sys), 1.0 + 2e-6, 1e-6);
  EXPECT_LT(link_seconds(1e6, sys), internode_link_seconds(1e6, sys));
}

TEST(Multinode, SimulatorRoutesOverNic) {
  // Same transfer intra vs inter: inter must be slower (10 vs 18 GB/s).
  auto sys = multinode(p100_nvlink(2), 2);
  {
    sim::Schedule s;
    s.add_comm(0, 1, "intra", 1e9, {});
    sim::Schedule x;
    x.add_comm(1, 2, "inter", 1e9, {});
    const double ti = s.simulate(sys).total_seconds;
    const double tx = x.simulate(sys).total_seconds;
    EXPECT_NEAR(ti, sys.link_latency + 1e9 / sys.link_bw, 1e-9);
    EXPECT_NEAR(tx, sys.internode_latency + 1e9 / sys.internode_bw, 1e-9);
    EXPECT_GT(tx, ti);
  }
}

TEST(Multinode, NicSerializesAcrossDevicePairs) {
  // Two transfers leaving node 0 from different devices share its NIC.
  auto sys = multinode(p100_nvlink(2), 2);
  sim::Schedule s;
  s.add_comm(0, 2, "a", 1e9, {});
  s.add_comm(1, 3, "b", 1e9, {});
  const double one = sys.internode_latency + 1e9 / sys.internode_bw;
  EXPECT_NEAR(s.simulate(sys).total_seconds, 2 * one, 1e-9);
  // Intra-node transfers on another node are unaffected by NIC pressure.
  sim::Schedule m;
  m.add_comm(0, 2, "a", 1e9, {});
  m.add_comm(2, 3, "intra", 1e9, {});
  EXPECT_LT(m.simulate(sys).total_seconds, 2 * one);
}

TEST(Multinode, SpeedupGrowsWithNodes) {
  // The §7 claim the projection bench quantifies.
  const index_t n = index_t(1) << 26;
  const Workload w{n, true, true};
  double prev = 0;
  for (int nodes : {1, 2, 4}) {
    auto arch = nodes == 1 ? p100_nvlink(8) : multinode(p100_nvlink(8), nodes);
    auto prm = search_best_params(n, arch.num_devices, w, arch, 16);
    const double t_fmm =
        dist::fmmfft_schedule(prm, w, arch.num_devices).simulate(arch).total_seconds;
    const double t_base =
        dist::baseline1d_schedule(n, w, arch.num_devices).simulate(arch).total_seconds;
    const double speedup = t_base / t_fmm;
    EXPECT_GT(speedup, prev * 0.95) << nodes << " nodes";  // non-decreasing (5% slack)
    if (nodes > 1) {
      EXPECT_GT(speedup, 2.0) << nodes << " nodes";
    }
    prev = speedup;
  }
}

TEST(Energy, ActivityModel) {
  PowerParams p{200.0, 20.0, 50.0};
  // 1 s makespan, 0.5 s kernels, 0.25 s comm, 2 devices:
  EXPECT_DOUBLE_EQ(energy_joules(1.0, 0.5, 0.25, 2, p), 0.5 * 200 + 0.25 * 20 + 1.0 * 2 * 50);
  EXPECT_DOUBLE_EQ(energy_joules(0, 0, 0, 8, p), 0.0);
}

TEST(Energy, FmmFftWinsOnEnergyWhenCommBound) {
  // Comm-bound baseline burns idle power while links drain; the FMM-FFT's
  // shorter makespan wins on joules even though it computes more.
  const index_t n = index_t(1) << 27;
  const Workload w{n, true, true};
  auto arch = p100_nvlink(8);
  auto prm = search_best_params(n, 8, w, arch, 16);
  auto rf = dist::fmmfft_schedule(prm, w, 8).simulate(arch);
  auto rb = dist::baseline1d_schedule(n, w, 8).simulate(arch);
  const double ef = energy_joules(rf.total_seconds, rf.kernel_busy, rf.comm_busy, 8);
  const double eb = energy_joules(rb.total_seconds, rb.kernel_busy, rb.comm_busy, 8);
  EXPECT_LT(ef, eb);
}

}  // namespace
}  // namespace fmmfft::model
