// Tests for the distributed layer: collectives over the fabric, the
// three-transpose baseline 1D FFT, the one-transpose 2D FFT, and the
// distributed FMM-FFT — all validated against exact references and against
// the single-node pipeline, plus §5.2 communication-volume checks.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/math.hpp"
#include "common/permute.hpp"
#include "common/rng.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "dist/collectives.hpp"
#include "dist/dfft.hpp"
#include "dist/dfmmfft.hpp"
#include "exec/executor.hpp"
#include "model/counts.hpp"

namespace fmmfft::dist {
namespace {

using Cd = std::complex<double>;

// CI runs one leg of the suite under FMMFFT_PRECISION=mixed; plans built
// with the ambient default then carry the fp32 translation envelope and
// ship ".f32"-keyed halo payloads at half width.
bool ambient_mixed() { return fmm::default_precision() == fmm::Precision::Mixed; }

TEST(Collectives, AllToAllMatchesPermuteMP) {
  const index_t m = 16, p = 8;
  for (int g : {1, 2, 4, 8}) {
    sim::Fabric fabric(g);
    std::vector<double> x(m * p), expect(m * p);
    fill_uniform(x.data(), m * p, g);
    permute_mp(x.data(), expect.data(), m, p);
    const index_t slab = m * p / g;
    std::vector<Buffer<double>> ain, aout;
    std::vector<double*> in, out;
    for (int r = 0; r < g; ++r) {
      ain.emplace_back(slab);
      aout.emplace_back(slab);
      std::copy_n(x.data() + r * slab, slab, ain.back().data());
    }
    for (int r = 0; r < g; ++r) {
      in.push_back(ain[(std::size_t)r].data());
      out.push_back(aout[(std::size_t)r].data());
    }
    all_to_all_permute_mp(fabric, in, out, m, p, "t");
    for (int r = 0; r < g; ++r)
      for (index_t i = 0; i < slab; ++i)
        EXPECT_EQ(out[(std::size_t)r][i], expect[(std::size_t)(r * slab + i)])
            << "g=" << g << " r=" << r << " i=" << i;
    // Traffic: every ordered pair exchanges slab/g elements.
    EXPECT_DOUBLE_EQ(fabric.total_bytes(), double(g) * (g - 1) * (slab / g) * sizeof(double));
  }
}

TEST(Collectives, FusedMatchesStagedBitIdentical) {
  // The fused zero-copy all-to-all must reproduce the staged
  // pack/copy/unpack reference bit-for-bit at every device count, with
  // identical fabric accounting (same per-pair payloads, same tags).
  for (int g : {1, 2, 4}) {
    for (auto [m, p] : {std::pair<index_t, index_t>{16, 8}, {8, 16}, {64, 4}, {4, 64}}) {
      sim::Fabric fab_fused(g), fab_staged(g);
      std::vector<double> x(std::size_t(m * p));
      fill_uniform(x.data(), m * p, 31 + g);
      const index_t slab = m * p / g;
      std::vector<double> yf(x.size(), -1.0), ys(x.size(), -2.0);
      std::vector<double*> in, of, os;
      for (int r = 0; r < g; ++r) {
        in.push_back(x.data() + r * slab);
        of.push_back(yf.data() + r * slab);
        os.push_back(ys.data() + r * slab);
      }
      all_to_all_permute_mp(fab_fused, in, of, m, p, "A2A-EQ");
      all_to_all_permute_mp_staged(fab_staged, in, os, m, p, "A2A-EQ");
      EXPECT_EQ(yf, ys) << "g=" << g << " m=" << m << " p=" << p;
      // Same messages on the wire: pair-by-pair byte totals agree.
      EXPECT_DOUBLE_EQ(fab_fused.total_bytes(), fab_staged.total_bytes());
      for (int r = 0; r < g; ++r)
        EXPECT_DOUBLE_EQ(fab_fused.bytes_sent_by(r), fab_staged.bytes_sent_by(r));
      EXPECT_DOUBLE_EQ(fab_fused.bytes_with_tag("A2A-EQ"), fab_staged.bytes_with_tag("A2A-EQ"));
    }
  }
}

TEST(Collectives, GridTwoPhaseMatchesOnePhaseBitIdentical) {
  // The factorized row+column exchange is the same Π_{M,P} permutation as
  // the one-phase fused path (both are pure copies), so outputs must agree
  // bit-for-bit at every grid shape, with the documented per-phase payload
  // split: row (pc-1)/pc·N elements, column (pr-1)/pr·N.
  const index_t m = 32, p = 16;
  struct Case {
    int g;
    ProcGrid grid;
  };
  for (const auto& c : {Case{4, {1, 4}}, Case{4, {2, 2}}, Case{4, {4, 1}}, Case{8, {2, 4}},
                        Case{8, {4, 2}}, Case{16, {4, 4}}}) {
    const int g = c.g;
    sim::Fabric fab_one(g), fab_two(g);
    std::vector<double> x(std::size_t(m * p));
    fill_uniform(x.data(), m * p, 40 + g + c.grid.pr);
    const index_t slab = m * p / g;
    std::vector<double> y1(x.size(), -1.0), y2(x.size(), -2.0), wk(x.size(), 0.0);
    std::vector<double*> in, o1, o2, w;
    for (int r = 0; r < g; ++r) {
      in.push_back(x.data() + r * slab);
      o1.push_back(y1.data() + r * slab);
      o2.push_back(y2.data() + r * slab);
      w.push_back(wk.data() + r * slab);
    }
    all_to_all_permute_mp(fab_one, in, o1, m, p, "A2A-2D");
    all_to_all_permute_mp_grid(fab_two, in, o2, w, m, p, c.grid);
    EXPECT_EQ(y1, y2) << "g=" << g << " grid=" << c.grid.pr << "x" << c.grid.pc;
    const double n = double(m * p);
    EXPECT_DOUBLE_EQ(fab_two.bytes_with_tag("A2A-ROW"),
                     double(c.grid.pc - 1) / c.grid.pc * n * sizeof(double));
    EXPECT_DOUBLE_EQ(fab_two.bytes_with_tag("A2A-COL"),
                     double(c.grid.pr - 1) / c.grid.pr * n * sizeof(double));
    // Every device sends the same share of each phase (symmetric grids and
    // uniform blocks), and nothing else crosses the fabric.
    EXPECT_DOUBLE_EQ(fab_two.total_bytes(), fab_two.bytes_with_tag("A2A-ROW") +
                                                fab_two.bytes_with_tag("A2A-COL"));
    for (int r = 0; r < g; ++r)
      EXPECT_DOUBLE_EQ(fab_two.bytes_sent_by(r), fab_two.total_bytes() / g) << "r=" << r;
  }
}

TEST(Collectives, HaloExchangeRing) {
  const int g = 4;
  const index_t h = 3;
  sim::Fabric fabric(g);
  // interior[r] = r*100 + k
  std::vector<std::vector<double>> interior((std::size_t)g, std::vector<double>(10));
  std::vector<std::vector<double>> lo((std::size_t)g, std::vector<double>(h)),
      hi((std::size_t)g, std::vector<double>(h));
  std::vector<const double*> lo_src, hi_src;
  std::vector<double*> lo_dst, hi_dst;
  for (int r = 0; r < g; ++r) {
    std::iota(interior[(std::size_t)r].begin(), interior[(std::size_t)r].end(), r * 100.0);
    lo_src.push_back(interior[(std::size_t)r].data());
    hi_src.push_back(interior[(std::size_t)r].data() + 10 - h);
    lo_dst.push_back(lo[(std::size_t)r].data());
    hi_dst.push_back(hi[(std::size_t)r].data());
  }
  halo_exchange_ring(fabric, lo_src, hi_src, lo_dst, hi_dst, h, "halo");
  for (int r = 0; r < g; ++r) {
    const int left = (r + g - 1) % g, right = (r + 1) % g;
    for (index_t k = 0; k < h; ++k) {
      EXPECT_EQ(lo[(std::size_t)r][(std::size_t)k], left * 100.0 + 7 + k);
      EXPECT_EQ(hi[(std::size_t)r][(std::size_t)k], right * 100.0 + k);
    }
  }
  EXPECT_DOUBLE_EQ(fabric.total_bytes(), g * 2.0 * h * sizeof(double));
}

TEST(Collectives, Allgather) {
  const int g = 4;
  const index_t slab = 5;
  sim::Fabric fabric(g);
  std::vector<std::vector<double>> src((std::size_t)g, std::vector<double>(slab)),
      dst((std::size_t)g, std::vector<double>(slab * g));
  std::vector<const double*> sp;
  std::vector<double*> dp;
  for (int r = 0; r < g; ++r) {
    std::iota(src[(std::size_t)r].begin(), src[(std::size_t)r].end(), r * 10.0);
    sp.push_back(src[(std::size_t)r].data());
    dp.push_back(dst[(std::size_t)r].data());
  }
  allgather(fabric, sp, dp, slab, "ag");
  for (int r = 0; r < g; ++r)
    for (int rr = 0; rr < g; ++rr)
      for (index_t k = 0; k < slab; ++k)
        EXPECT_EQ(dst[(std::size_t)r][(std::size_t)(rr * slab + k)], rr * 10.0 + k);
  EXPECT_DOUBLE_EQ(fabric.total_bytes(), g * (g - 1.0) * slab * sizeof(double));
}

class Baseline1dSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Baseline1dSizes, MatchesExactFft) {
  auto [lg_n, g] = GetParam();
  const index_t n = index_t(1) << lg_n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), got(x.size()), expect(x.size());
  fill_uniform(x.data(), n, lg_n * 10 + g);
  DistFft1d<double> fftd(n, g);
  fftd.execute(x.data(), got.data());
  core::exact_fft(n, x.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), n), 1e-12)
      << "n=" << n << " g=" << g << " M=" << fftd.factor_m() << " P=" << fftd.factor_p();
}

INSTANTIATE_TEST_SUITE_P(Grid, Baseline1dSizes,
                         ::testing::Values(std::pair{8, 1}, std::pair{10, 2}, std::pair{12, 2},
                                           std::pair{12, 4}, std::pair{14, 8},
                                           std::pair{16, 4}, std::pair{13, 2},
                                           std::pair{15, 8}));

TEST(Baseline1d, ThreeAllToAllsOfExpectedVolume) {
  const index_t n = 1 << 12;
  const int g = 4;
  std::vector<Cd> x(static_cast<std::size_t>(n)), y(x.size());
  fill_uniform(x.data(), n, 3);
  DistFft1d<double> fftd(n, g);
  fftd.execute(x.data(), y.data());
  const auto& fab = fftd.fabric();
  // Each all-to-all moves g(g-1) * N/g^2 elements.
  const double per_a2a = g * (g - 1.0) * double(n) / (g * g) * sizeof(Cd);
  EXPECT_DOUBLE_EQ(fab.bytes_with_tag("A2A-1"), per_a2a);
  EXPECT_DOUBLE_EQ(fab.bytes_with_tag("A2A-2"), per_a2a);
  EXPECT_DOUBLE_EQ(fab.bytes_with_tag("A2A-3"), per_a2a);
  EXPECT_DOUBLE_EQ(fab.total_bytes(), 3 * per_a2a);
}

TEST(Dist2d, MatchesSerial2dFft) {
  const index_t m = 64, p = 32;
  for (int g : {1, 2, 4}) {
    std::vector<Cd> x(static_cast<std::size_t>(m * p)), got(x.size());
    fill_uniform(x.data(), m * p, 17 + g);
    Dist2dFft<double> fftd(m, p, g);
    got = x;
    fftd.execute(x.data(), got.data());
    // Reference: same operation on one device via the serial path —
    // p-major layout means dim0 of the 2D array is p.
    std::vector<Cd> ref = x;
    fft::Plan1D<double> fp(p), fm(m);
    fp.execute_batched(ref.data(), m, fft::Direction::Forward);
    std::vector<Cd> tmp(ref.size());
    permute_mp(ref.data(), tmp.data(), m, p);
    fm.execute_batched(tmp.data(), p, fft::Direction::Forward);
    EXPECT_LT(rel_l2_error(got.data(), tmp.data(), m * p), 1e-13) << "g=" << g;
  }
}

TEST(Dist2d, SingleAllToAll) {
  const index_t m = 64, p = 32;
  const int g = 4;
  std::vector<Cd> x(static_cast<std::size_t>(m * p)), y(x.size());
  fill_uniform(x.data(), m * p, 5);
  Dist2dFft<double> fftd(m, p, g);
  fftd.execute(x.data(), y.data());
  EXPECT_DOUBLE_EQ(fftd.fabric().bytes_with_tag("A2A-2D"),
                   g * (g - 1.0) * double(m * p) / (g * g) * sizeof(Cd));
  EXPECT_DOUBLE_EQ(fftd.fabric().total_bytes(), fftd.fabric().bytes_with_tag("A2A-2D"));
}

TEST(Dist2d, PencilBitIdenticalToSlabAllGridsAndModes) {
  // Same FFT lines, same per-line plans — only the exchange factorizes, and
  // it factorizes into pure copies. Slab and every pencil grid must agree
  // bit-for-bit under both executors.
  const index_t m = 64, p = 32;
  const int g = 4;
  std::vector<Cd> x(static_cast<std::size_t>(m * p));
  fill_uniform(x.data(), m * p, 23);
  auto run = [&](model::Decomp d, model::GridShape grid, exec::Mode mode) {
    std::vector<Cd> y(x.size());
    exec::ScopedMode sm(mode);
    Dist2dFft<double> fftd(m, p, g, d, grid);
    fftd.execute(x.data(), y.data());
    return y;
  };
  const auto slab = run(model::Decomp::Slab, {}, exec::Mode::Serial);
  for (model::GridShape grid : {model::GridShape{1, 4}, {2, 2}, {4, 1}}) {
    for (exec::Mode mode : {exec::Mode::Serial, exec::Mode::Async}) {
      const auto y = run(model::Decomp::Pencil, grid, mode);
      EXPECT_EQ(0, std::memcmp(slab.data(), y.data(), slab.size() * sizeof(Cd)))
          << grid.pr << "x" << grid.pc << " mode=" << int(mode);
    }
  }
  EXPECT_EQ(slab, run(model::Decomp::Slab, {}, exec::Mode::Async));
}

TEST(Dist2d, PencilTwoPhaseVolumes) {
  const index_t m = 64, p = 32;
  const int g = 4, pr = 2, pc = 2;
  std::vector<Cd> x(static_cast<std::size_t>(m * p)), y(x.size());
  fill_uniform(x.data(), m * p, 9);
  Dist2dFft<double> fftd(m, p, g, model::Decomp::Pencil, {pr, pc});
  EXPECT_EQ(fftd.decomp(), model::Decomp::Pencil);
  fftd.execute(x.data(), y.data());
  const double n = double(m * p);
  EXPECT_DOUBLE_EQ(fftd.fabric().bytes_with_tag("A2A-ROW"),
                   double(pc - 1) / pc * n * sizeof(Cd));
  EXPECT_DOUBLE_EQ(fftd.fabric().bytes_with_tag("A2A-COL"),
                   double(pr - 1) / pr * n * sizeof(Cd));
  EXPECT_DOUBLE_EQ(fftd.fabric().bytes_with_tag("A2A-2D"), 0.0);
}

TEST(Dist2d, PencilFloatLegMatchesSlab) {
  const index_t m = 32, p = 16;
  std::vector<std::complex<float>> x(static_cast<std::size_t>(m * p)), ys(x.size()),
      yp(x.size());
  fill_uniform(x.data(), m * p, 55);
  Dist2dFft<float> slab(m, p, 4, model::Decomp::Slab);
  Dist2dFft<float> pencil(m, p, 4, model::Decomp::Pencil, {2, 2});
  slab.execute(x.data(), ys.data());
  pencil.execute(x.data(), yp.data());
  EXPECT_EQ(0, std::memcmp(ys.data(), yp.data(), ys.size() * sizeof(ys[0])));
}

struct DistCase {
  index_t n, p, ml;
  int b, q, g;
};

class DistFmmFftGrid : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistFmmFftGrid, MatchesExactFftAndSingleNode) {
  const auto c = GetParam();
  fmm::Params prm{c.n, c.p, c.ml, c.b, c.q};
  std::vector<Cd> x(static_cast<std::size_t>(c.n)), got(x.size()), expect(x.size()),
      single(x.size());
  fill_uniform(x.data(), c.n, 1000 + c.g);

  DistFmmFft<Cd> dplan(prm, c.g);
  dplan.execute(x.data(), got.data());

  core::exact_fft(c.n, x.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), c.n), ambient_mixed() ? 4e-7 : 2e-14)
      << prm.to_string() << " g=" << c.g;

  core::FmmFft<Cd> splan(prm);
  splan.execute(x.data(), single.data());
  EXPECT_LT(rel_l2_error(got.data(), single.data(), c.n), ambient_mixed() ? 1e-7 : 1e-14)
      << "distributed vs single-node, g=" << c.g;
}

INSTANTIATE_TEST_SUITE_P(Grid, DistFmmFftGrid,
                         ::testing::Values(DistCase{1 << 12, 32, 4, 2, 18, 2},
                                           DistCase{1 << 14, 64, 8, 2, 18, 2},
                                           DistCase{1 << 14, 64, 4, 3, 18, 4},
                                           DistCase{1 << 16, 64, 8, 3, 18, 8},
                                           DistCase{1 << 16, 256, 8, 3, 18, 4},
                                           DistCase{1 << 14, 64, 8, 2, 18, 1}));

TEST(DistFmmFft, MixedMatchesExactAndSingleNodeMixed) {
  // Mixed across devices: fp32 engines and fp32 halo payloads under the
  // fp64 shell must stay inside the single-precision bound and agree with
  // the single-node mixed pipeline to fp32 roundoff.
  fmm::Params prm{1 << 14, 64, 8, 2, 14};
  std::vector<Cd> x(static_cast<std::size_t>(prm.n)), got(x.size()), expect(x.size()),
      single(x.size());
  fill_uniform(x.data(), prm.n, 606);

  DistFmmFft<Cd> dplan(prm, 2, fmm::Precision::Mixed);
  EXPECT_EQ(dplan.precision(), fmm::Precision::Mixed);
  dplan.execute(x.data(), got.data());

  core::exact_fft(prm.n, x.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), prm.n), 4e-7);

  core::FmmFft<Cd> splan(prm, /*fuse_post=*/true, fmm::Precision::Mixed);
  splan.execute(x.data(), single.data());
  EXPECT_LT(rel_l2_error(got.data(), single.data(), prm.n), 1e-7);
}

TEST(DistFmmFft, MixedSerialAndAsyncAreBitIdentical) {
  // The executor-mode invariant must survive the templated fp32 stage
  // tasks and comm lambdas.
  fmm::Params prm{1 << 14, 64, 8, 2, 14};
  std::vector<Cd> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 99);
  auto run = [&](exec::Mode mode) {
    std::vector<Cd> y(x.size());
    exec::ScopedMode sm(mode);
    DistFmmFft<Cd> plan(prm, 2, fmm::Precision::Mixed);
    plan.execute(x.data(), y.data());
    return y;
  };
  EXPECT_EQ(run(exec::Mode::Serial), run(exec::Mode::Async));
}

TEST(DistFmmFft, RealInputAcrossDevices) {
  fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<double> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, 8);
  std::vector<Cd> got(static_cast<std::size_t>(n)), xc(got.size()), expect(got.size());
  DistFmmFft<double> plan(prm, 4);
  plan.execute(x.data(), got.data());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = Cd(x[i], 0);
  core::exact_fft(n, xc.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), n), ambient_mixed() ? 4e-7 : 2e-14);
}

TEST(DistFmmFft, CommVolumeMatchesPaperModel) {
  // §5.2: per-process sends — S halo 2C(P-1)ML (we send full CP boxes),
  // M^l halos 4C(L-B)(P-1)Q, base gather 2^B·C(P-1)Q·(G-1)/G, plus the one
  // 2D-FFT all-to-all. Fabric bytes must match within the p=0-slice slack.
  fmm::Params prm{1 << 18, 64, 16, 3, 12};  // M=4096, L=8, B=3
  const int g = 4, c = 2;
  std::vector<Cd> x(static_cast<std::size_t>(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 2);
  DistFmmFft<Cd> plan(prm, g);
  plan.execute(x.data(), y.data());
  const auto& fab = plan.fabric();

  // Under the ambient mixed policy the FMM halos ship fp32 words while the
  // 2D-FFT all-to-all stays at the fp64 shell width; the §5.2 word counts
  // are identical either way. (The Transfer ledger keys by plain tag at
  // any width; only the metric/traffic keys carry the ".f32" suffix.)
  const double rb = ambient_mixed() ? sizeof(float) : sizeof(double);
  // Our implementation sends full C·P boxes (the paper counts C·(P-1)).
  const double s_expect = g * 2.0 * c * prm.p * prm.ml * rb;
  EXPECT_DOUBLE_EQ(fab.bytes_with_tag("COMM-S"), s_expect);

  double m_expect = 0;
  for (int lev = prm.b + 1; lev <= prm.l(); ++lev)
    m_expect += g * 2.0 * (2.0 * c * (prm.p - 1) * prm.q) * rb;
  double m_got = 0;
  for (int lev = prm.b + 1; lev <= prm.l(); ++lev)
    m_got += fab.bytes_with_tag("COMM-M" + std::to_string(lev));
  EXPECT_DOUBLE_EQ(m_got, m_expect);

  const double mb_expect =
      g * (g - 1.0) * (c * (prm.p - 1.0) * prm.q * (double(prm.boxes(prm.b)) / g)) * rb;
  EXPECT_DOUBLE_EQ(fab.bytes_with_tag("COMM-MB"), mb_expect);

  const double a2a = g * (g - 1.0) * double(prm.n) / (g * g) * sizeof(Cd);
  EXPECT_DOUBLE_EQ(fab.bytes_with_tag("A2A-2D"), a2a);

  // FMM comm is already below the single transpose at this modest N; the
  // asymptotic claim is checked at paper scale in the model test below.
  EXPECT_LT(fab.total_bytes() - a2a, 0.60 * a2a);
}

TEST(DistFmmFft, FmmCommMuchSmallerThanBaselineComm) {
  // The central claim: ~1 transpose instead of 3 (asymptotically; the FMM
  // halo volume is O(P·Q·L), independent of N).
  fmm::Params prm{1 << 18, 64, 16, 3, 12};
  const int g = 4;
  std::vector<Cd> x(static_cast<std::size_t>(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 4);
  DistFmmFft<Cd> plan(prm, g);
  plan.execute(x.data(), y.data());
  DistFft1d<double> base(prm.n, g);
  base.execute(x.data(), y.data());
  const double fmm_bytes = plan.fabric().total_bytes();
  const double base_bytes = base.fabric().total_bytes();
  EXPECT_LT(fmm_bytes, 0.55 * base_bytes);
  EXPECT_GT(fmm_bytes, 0.30 * base_bytes);  // at least the one transpose
}

TEST(DistFmmFft, CommAdvantageApproachesThreeXAtPaperScale) {
  // At N = 2^27 (no execution, model counts only) the FMM-FFT's total
  // communication approaches 1/3 of the baseline's three transposes.
  fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};
  const int g = 8, c = 2;
  const double rb = 8.0;
  const double fmm_halo = model::paper_fmm_comm(prm, c, g).total() * rb;
  const double transpose = double(prm.n) / g * (g - 1.0) / g * 16.0;  // per device
  EXPECT_LT(fmm_halo / transpose, 0.02);
  const double ratio = (fmm_halo + transpose) / (3.0 * transpose);
  EXPECT_NEAR(ratio, 1.0 / 3.0, 0.01);
}

TEST(DistFmmFft, EngineStatsExposedPerDevice) {
  fmm::Params prm{1 << 12, 32, 4, 2, 12};
  std::vector<Cd> x(static_cast<std::size_t>(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 6);
  DistFmmFft<Cd> plan(prm, 2);
  plan.execute(x.data(), y.data());
  for (int r = 0; r < 2; ++r) {
    const auto& st = plan.engine_stats(r);
    EXPECT_FALSE(st.empty());
    double flops = 0;
    for (const auto& s : st) flops += s.flops;
    EXPECT_GT(flops, 0);
  }
}

TEST(DistFmmFft, RejectsInvalidDeviceCounts) {
  fmm::Params prm{1 << 12, 32, 8, 2, 12};  // 2^B = 4
  EXPECT_THROW((DistFmmFft<Cd>(prm, 8)), Error);  // 2^B < G
  EXPECT_THROW((DistFft1d<double>(1 << 12, 128)), Error);
}

}  // namespace
}  // namespace fmmfft::dist
