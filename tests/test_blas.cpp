// Unit and property tests for the BLAS substrate: blocked GEMM vs the naive
// reference across shapes/transposes/alpha-beta, strided batched GEMM, GEMV.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "blas/blas.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "obs/obs.hpp"

namespace fmmfft::blas {
namespace {

template <typename T>
std::vector<T> random_vec(index_t n, std::uint64_t seed) {
  std::vector<T> v(static_cast<std::size_t>(n));
  fill_uniform(v.data(), n, seed);
  return v;
}

using Shape = std::tuple<int, int, int, Op, Op>;

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, MatchesReferenceDouble) {
  auto [m, n, k, ta, tb] = GetParam();
  index_t lda = ta == Op::N ? m + 2 : k + 1;
  index_t ldb = tb == Op::N ? k + 3 : n + 2;
  index_t ldc = m + 1;
  auto a = random_vec<double>(lda * (ta == Op::N ? k : m), 1);
  auto b = random_vec<double>(ldb * (tb == Op::N ? n : k), 2);
  auto c0 = random_vec<double>(ldc * n, 3);
  auto c1 = c0;
  const double alpha = 1.25, beta = -0.5;
  gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c0.data(), ldc);
  gemm_reference(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c1.data(), ldc);
  EXPECT_LT(rel_l2_error(c0.data(), c1.data(), (index_t)c0.size()), 1e-13);
}

TEST_P(GemmShapes, MatchesReferenceFloat) {
  auto [m, n, k, ta, tb] = GetParam();
  index_t lda = ta == Op::N ? m : k;
  index_t ldb = tb == Op::N ? k : n;
  index_t ldc = m;
  auto a = random_vec<float>(lda * (ta == Op::N ? k : m), 4);
  auto b = random_vec<float>(ldb * (tb == Op::N ? n : k), 5);
  auto c0 = random_vec<float>(ldc * n, 6);
  auto c1 = c0;
  gemm<float>(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f, c0.data(), ldc);
  gemm_reference<float>(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f, c1.data(),
                        ldc);
  EXPECT_LT(rel_l2_error(c0.data(), c1.data(), (index_t)c0.size()), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(
        Shape{1, 1, 1, Op::N, Op::N}, Shape{8, 4, 16, Op::N, Op::N},
        Shape{7, 5, 3, Op::N, Op::N}, Shape{65, 67, 129, Op::N, Op::N},
        Shape{16, 16, 300, Op::N, Op::N}, Shape{130, 40, 70, Op::N, Op::N},
        Shape{33, 17, 9, Op::T, Op::N}, Shape{12, 40, 25, Op::N, Op::T},
        Shape{50, 50, 50, Op::T, Op::T}, Shape{100, 1, 64, Op::N, Op::N},
        Shape{1, 100, 64, Op::N, Op::N}, Shape{9, 9, 1, Op::N, Op::N},
        Shape{256, 8, 16, Op::N, Op::N}, Shape{8, 256, 16, Op::T, Op::N}));

TEST(Gemm, MicrokernelEdgeSizes) {
  // Exercise the masked edge handling of the register-tiled microkernel:
  // every m, n within ±1 of the MR=8 / NR=4 register tile (and one tile
  // beyond), across k values that stress the accumulation loop.
  for (index_t m : {7, 8, 9, 15, 16, 17})
    for (index_t n : {3, 4, 5, 7, 8, 9})
      for (index_t k : {1, 2, 8, 37}) {
        auto a = random_vec<double>(m * k, 100 + m);
        auto b = random_vec<double>(k * n, 200 + n);
        auto c0 = random_vec<double>(m * n, 300 + k);
        auto c1 = c0;
        gemm(Op::N, Op::N, m, n, k, 1.5, a.data(), m, b.data(), k, -0.25, c0.data(), m);
        gemm_reference(Op::N, Op::N, m, n, k, 1.5, a.data(), m, b.data(), k, -0.25, c1.data(),
                       m);
        EXPECT_LT(rel_l2_error(c0.data(), c1.data(), m * n), 1e-13)
            << "m=" << m << " n=" << n << " k=" << k;
      }
}

TEST(Gemm, AlphaBetaCorners) {
  // alpha/beta corner values take distinct paths through the store tile
  // (beta==0 skip-read, beta==1 plain add, alpha==0 scale-only).
  const index_t m = 13, n = 6, k = 9;
  auto a = random_vec<double>(m * k, 60);
  auto b = random_vec<double>(k * n, 61);
  for (double alpha : {0.0, 1.0, -1.0, 0.75})
    for (double beta : {0.0, 1.0, -1.0, 0.5}) {
      auto c0 = random_vec<double>(m * n, 62);
      auto c1 = c0;
      gemm(Op::N, Op::N, m, n, k, alpha, a.data(), m, b.data(), k, beta, c0.data(), m);
      gemm_reference(Op::N, Op::N, m, n, k, alpha, a.data(), m, b.data(), k, beta, c1.data(), m);
      EXPECT_LT(rel_l2_error(c0.data(), c1.data(), m * n), 1e-13)
          << "alpha=" << alpha << " beta=" << beta;
    }
}

TEST(Gemm, SimdLabelIsKnown) {
  const std::string label = simd_label();
  EXPECT_TRUE(label == "vec512" || label == "vec256" || label == "vec128" || label == "scalar")
      << label;
}

TEST(Gemm, LargeSingleGemmShardingIsDeterministic) {
  // Big single GEMMs shard MC row-blocks across the pool; the k-loop stays
  // serial inside each block, so the result must not depend on the split.
  const index_t m = 384, n = 64, k = 96;
  auto a = random_vec<double>(m * k, 70);
  auto b = random_vec<double>(k * n, 71);
  std::vector<double> c0(m * n, 0), c1(m * n, 0);
  gemm(Op::N, Op::N, m, n, k, 1.0, a.data(), m, b.data(), k, 0.0, c0.data(), m);
  {
    ThreadPool::ScopedSerial serial;
    gemm(Op::N, Op::N, m, n, k, 1.0, a.data(), m, b.data(), k, 0.0, c1.data(), m);
  }
  EXPECT_EQ(c0, c1);
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  const index_t m = 6, n = 5, k = 4;
  auto a = random_vec<double>(m * k, 10);
  auto b = random_vec<double>(k * n, 11);
  std::vector<double> c(m * n, std::numeric_limits<double>::quiet_NaN());
  gemm(Op::N, Op::N, m, n, k, 1.0, a.data(), m, b.data(), k, 0.0, c.data(), m);
  for (double v : c) EXPECT_TRUE(std::isfinite(v));
}

TEST(Gemm, AlphaZeroScalesOnly) {
  const index_t m = 5, n = 5, k = 5;
  auto a = random_vec<double>(m * k, 12);
  auto b = random_vec<double>(k * n, 13);
  auto c = random_vec<double>(m * n, 14);
  auto expect = c;
  for (auto& v : expect) v *= 2.0;
  gemm(Op::N, Op::N, m, n, k, 0.0, a.data(), m, b.data(), k, 2.0, c.data(), m);
  EXPECT_EQ(c, expect);
}

TEST(Gemm, EmptyDimensionsAreNoOps) {
  std::vector<double> c(4, 1.0);
  gemm<double>(Op::N, Op::N, 0, 2, 3, 1.0, nullptr, 1, nullptr, 3, 0.0, c.data(), 1);
  gemm<double>(Op::N, Op::N, 2, 0, 3, 1.0, nullptr, 2, nullptr, 3, 0.0, c.data(), 2);
  // k == 0 with beta: C := beta*C
  std::vector<double> c2(4, 3.0);
  gemm<double>(Op::N, Op::N, 2, 2, 0, 1.0, nullptr, 2, nullptr, 1, 0.5, c2.data(), 2);
  for (double v : c2) EXPECT_EQ(v, 1.5);
}

TEST(Gemm, LinearityProperty) {
  // gemm(A, x+y) == gemm(A, x) + gemm(A, y)
  const index_t m = 31, n = 9, k = 17;
  auto a = random_vec<double>(m * k, 20);
  auto b1 = random_vec<double>(k * n, 21);
  auto b2 = random_vec<double>(k * n, 22);
  std::vector<double> bsum(k * n);
  for (index_t i = 0; i < k * n; ++i) bsum[i] = b1[i] + b2[i];
  std::vector<double> c1(m * n, 0), c2(m * n, 0), cs(m * n, 0);
  gemm(Op::N, Op::N, m, n, k, 1.0, a.data(), m, b1.data(), k, 0.0, c1.data(), m);
  gemm(Op::N, Op::N, m, n, k, 1.0, a.data(), m, b2.data(), k, 1.0, c1.data(), m);
  gemm(Op::N, Op::N, m, n, k, 1.0, a.data(), m, bsum.data(), k, 0.0, cs.data(), m);
  EXPECT_LT(rel_l2_error(c1.data(), cs.data(), m * n), 1e-13);
  (void)c2;
}

TEST(BatchedGemm, MatchesLoopOfGemms) {
  const index_t m = 12, n = 7, k = 9, batch = 5;
  auto a = random_vec<double>(m * k * batch, 30);
  auto b = random_vec<double>(k * n * batch, 31);
  auto c0 = random_vec<double>(m * n * batch, 32);
  auto c1 = c0;
  gemm_strided_batched(Op::N, Op::N, m, n, k, 2.0, a.data(), m, m * k, b.data(), k, k * n, 0.5,
                       c0.data(), m, m * n, batch);
  for (index_t g = 0; g < batch; ++g)
    gemm(Op::N, Op::N, m, n, k, 2.0, a.data() + g * m * k, m, b.data() + g * k * n, k, 0.5,
         c1.data() + g * m * n, m);
  EXPECT_EQ(c0, c1);
}

TEST(BatchedGemm, SharedOperandViaZeroStride) {
  // stride_a = 0 broadcasts one operator across the batch — exactly how the
  // S2M/M2M stages apply one small operator to every box.
  const index_t q = 4, ml = 6, batch = 8;
  auto op = random_vec<double>(q * ml, 40);
  auto s = random_vec<double>(ml * batch, 41);
  std::vector<double> out(q * batch, 0);
  gemm_strided_batched(Op::N, Op::N, q, 1, ml, 1.0, op.data(), q, 0, s.data(), ml, ml, 0.0,
                       out.data(), q, q, batch);
  for (index_t g = 0; g < batch; ++g) {
    for (index_t i = 0; i < q; ++i) {
      double expect = 0;
      for (index_t j = 0; j < ml; ++j) expect += op[i + j * q] * s[j + g * ml];
      EXPECT_NEAR(out[i + g * q], expect, 1e-12);
    }
  }
}

// -- Shared-B batch-fused fast path ------------------------------------------
// stride_b == 0 with batch > 1 dispatches into the batch-fused path: all
// items stack into one virtual m·batch row space, B packs once per (NC, KC)
// tile, and small-m items aggregate into full microkernel tiles. Per C
// element the arithmetic order is exactly a plain gemm's (beta-scale once,
// then k ascending through the serial KC panels), so the results must equal
// a loop of gemm calls BIT FOR BIT — at any worker count and for tiles that
// straddle item boundaries.
template <typename T>
void check_shared_b_exact(Op tb, index_t m, index_t n, index_t k, index_t batch, T alpha, T beta,
                          std::uint64_t seed) {
  const index_t lda = m + 1, ldb = (tb == Op::N ? k : n) + 1, ldc = m + 2;
  auto a = random_vec<T>(lda * k * batch, seed);
  auto b = random_vec<T>(ldb * (tb == Op::N ? n : k), seed + 1);
  auto c0 = random_vec<T>(ldc * n * batch, seed + 2);
  auto c1 = c0;
  gemm_strided_batched(Op::N, tb, m, n, k, alpha, a.data(), lda, lda * k, b.data(), ldb, 0, beta,
                       c0.data(), ldc, ldc * n, batch);
  for (index_t g = 0; g < batch; ++g)
    gemm(Op::N, tb, m, n, k, alpha, a.data() + g * lda * k, lda, b.data(), ldb, beta,
         c1.data() + g * ldc * n, ldc);
  EXPECT_EQ(c0, c1) << "tb=" << int(tb) << " m=" << m << " n=" << n << " k=" << k
                    << " batch=" << batch << " alpha=" << alpha << " beta=" << beta;
}

TEST(BatchedGemmSharedB, ExactlyMatchesLoopOfGemms) {
  const std::tuple<index_t, index_t, index_t, index_t> shapes[] = {
      {3, 5, 7, 11},    // m << MR: every microkernel tile straddles items
      {17, 4, 9, 6},    // odd tails in every dimension
      {64, 18, 8, 32},  // the S2M shape, MC-aligned rows
      {65, 7, 3, 4},    // crosses an MC block boundary with a one-row tail
  };
  for (Op tb : {Op::N, Op::T})
    for (const auto& [m, n, k, batch] : shapes)
      for (double beta : {0.0, 1.0, 0.5})
        check_shared_b_exact<double>(tb, m, n, k, batch, 1.25, beta, 60 + index_t(beta * 8));
}

TEST(BatchedGemmSharedB, SerialAndPoolBitIdentical) {
  // The (item × MC-block) grid is partitioned across workers, but each
  // C element is owned by exactly one grid cell and the KC loop is serial,
  // so the partition cannot change any result bit.
  const index_t m = 13, n = 18, k = 36, batch = 24;
  auto a = random_vec<double>(m * k * batch, 70);
  auto b = random_vec<double>(k * n, 71);
  std::vector<double> c0(static_cast<std::size_t>(m * n * batch), 0.0), c1 = c0;
  {
    ThreadPool::ScopedSerial serial;
    gemm_strided_batched(Op::N, Op::N, m, n, k, 1.0, a.data(), m, m * k, b.data(), k, 0, 0.0,
                         c0.data(), m, m * n, batch);
  }
  gemm_strided_batched(Op::N, Op::N, m, n, k, 1.0, a.data(), m, m * k, b.data(), k, 0, 0.0,
                       c1.data(), m, m * n, batch);
  EXPECT_EQ(c0, c1);
}

TEST(BatchedGemmSharedB, AlphaZeroAndFloatCoverage) {
  // alpha == 0 short-circuits to the beta pass (k never touched, so NaNs in
  // A/B must not propagate); float exercises the narrower GEMM vectors.
  const index_t m = 9, n = 6, k = 5, batch = 7;
  auto a = random_vec<double>(m * k * batch, 80);
  a[0] = std::numeric_limits<double>::quiet_NaN();
  auto b = random_vec<double>(k * n, 81);
  b[0] = std::numeric_limits<double>::quiet_NaN();
  auto c0 = random_vec<double>(m * n * batch, 82);
  auto c1 = c0;
  gemm_strided_batched(Op::N, Op::N, m, n, k, 0.0, a.data(), m, m * k, b.data(), k, 0, 0.5,
                       c0.data(), m, m * n, batch);
  for (index_t g = 0; g < batch; ++g)
    gemm(Op::N, Op::N, m, n, k, 0.0, a.data() + g * m * k, m, b.data(), k, 0.5,
         c1.data() + g * m * n, m);
  EXPECT_EQ(c0, c1);
  check_shared_b_exact<float>(Op::N, 11, 5, 6, 9, 1.5f, 0.25f, 90);
  check_shared_b_exact<float>(Op::T, 33, 4, 10, 5, 1.0f, 0.0f, 91);
}

TEST(BatchedGemmSharedB, FlopsCountedOnceAtEntry) {
  // obs::compare_with_model cross-checks measured counters against the
  // model, so blas.flops must be exactly batch · gemm_flops per call — added
  // once at the public entry point, by BOTH dispatch paths (the fused
  // shared-B path and the per-item loop), with no inner double-counting.
  obs::enable_metrics(true);
  auto& flops = obs::Metrics::global().counter("blas.flops");
  auto& fused = obs::Metrics::global().counter("blas.batched_fused");
  const index_t m = 10, n = 6, k = 7, batch = 5;
  auto a = random_vec<double>(m * k * batch, 95);
  auto b = random_vec<double>(k * n * batch, 96);
  std::vector<double> c(static_cast<std::size_t>(m * n * batch), 0.0);
  flops.reset();
  fused.reset();
  gemm_strided_batched(Op::N, Op::N, m, n, k, 1.0, a.data(), m, m * k, b.data(), k, 0, 0.0,
                       c.data(), m, m * n, batch);
  EXPECT_DOUBLE_EQ(flops.value(), double(batch) * gemm_flops(m, n, k));
  EXPECT_DOUBLE_EQ(fused.value(), 1.0);
  flops.reset();
  gemm_strided_batched(Op::N, Op::N, m, n, k, 1.0, a.data(), m, m * k, b.data(), k, k * n, 0.0,
                       c.data(), m, m * n, batch);
  EXPECT_DOUBLE_EQ(flops.value(), double(batch) * gemm_flops(m, n, k));
  EXPECT_DOUBLE_EQ(fused.value(), 1.0);  // per-item path is not "fused"
  obs::disable();
  obs::reset();
}

TEST(Gemv, NoTransMatchesGemm) {
  const index_t m = 23, n = 11;
  auto a = random_vec<double>(m * n, 50);
  auto x = random_vec<double>(n, 51);
  std::vector<double> y0(m, 0), y1(m, 0);
  gemv(Op::N, m, n, 1.0, a.data(), m, x.data(), 1, 0.0, y0.data(), 1);
  gemm(Op::N, Op::N, m, 1, n, 1.0, a.data(), m, x.data(), n, 0.0, y1.data(), m);
  EXPECT_LT(rel_l2_error(y0.data(), y1.data(), m), 1e-14);
}

TEST(Gemv, TransposeAndStrides) {
  const index_t m = 9, n = 14;
  auto a = random_vec<double>(m * n, 52);
  auto x = random_vec<double>(2 * m, 53);
  std::vector<double> y(3 * n, 7.0);
  // y[j*3] = sum_i A[i,j] * x[i*2], beta = 0
  gemv(Op::T, n, m, 1.0, a.data(), m, x.data(), 2, 0.0, y.data(), 3);
  for (index_t j = 0; j < n; ++j) {
    double expect = 0;
    for (index_t i = 0; i < m; ++i) expect += a[i + j * m] * x[2 * i];
    EXPECT_NEAR(y[3 * j], expect, 1e-12);
    if (j < n - 1) {
      EXPECT_EQ(y[3 * j + 1], 7.0);  // strided gaps untouched
      EXPECT_EQ(y[3 * j + 2], 7.0);
    }
  }
}

TEST(Gemv, OnesVectorComputesColumnSums) {
  // The §4.8 reduction computes r_p with a GEMV against a ones vector.
  const index_t m = 6, n = 8;
  auto a = random_vec<double>(m * n, 54);
  std::vector<double> ones(m, 1.0), r(n, 0.0);
  gemv(Op::T, n, m, 1.0, a.data(), m, ones.data(), 1, 0.0, r.data(), 1);
  for (index_t j = 0; j < n; ++j) {
    double expect = 0;
    for (index_t i = 0; i < m; ++i) expect += a[i + j * m];
    EXPECT_NEAR(r[j], expect, 1e-12);
  }
}

TEST(GemmFlops, CountFormula) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48.0);
}

}  // namespace
}  // namespace fmmfft::blas
