// Tests for the Chebyshev interpolation machinery: node/weight identities,
// Lagrange cardinality, partition of unity, and interpolation exactness on
// low-degree polynomials (the property that drives FMM accuracy).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "fmm/chebyshev.hpp"

namespace fmmfft::fmm {
namespace {

class ChebOrders : public ::testing::TestWithParam<int> {};

TEST_P(ChebOrders, PointsAreChebyshevRootsDescending) {
  const int q = GetParam();
  auto z = chebyshev_points(q);
  ASSERT_EQ((int)z.size(), q);
  for (int j = 0; j < q; ++j) {
    // T_q(z_j) = cos(q * arccos(z_j)) = 0
    EXPECT_NEAR(std::cos(q * std::acos(z[j])), 0.0, 1e-12);
    if (j > 0) {
      EXPECT_LT(z[j], z[j - 1]);
    }
    EXPECT_LT(std::abs(z[j]), 1.0);
  }
}

TEST_P(ChebOrders, LagrangeCardinality) {
  const int q = GetParam();
  auto z = chebyshev_points(q);
  std::vector<double> l(q);
  for (int j = 0; j < q; ++j) {
    lagrange_eval(q, z[j], l.data());
    for (int i = 0; i < q; ++i) EXPECT_NEAR(l[i], i == j ? 1.0 : 0.0, 1e-12);
  }
}

TEST_P(ChebOrders, PartitionOfUnity) {
  // sum_i l_i(x) = 1 for any x — the invariant behind the §4.8 reduction.
  const int q = GetParam();
  std::vector<double> l(q);
  for (double x : {-1.0, -0.73, -0.2, 0.0, 0.31, 0.9, 1.0}) {
    lagrange_eval(q, x, l.data());
    double s = 0;
    for (double v : l) s += v;
    EXPECT_NEAR(s, 1.0, 1e-12) << "x=" << x << " q=" << q;
  }
}

TEST_P(ChebOrders, ReproducesPolynomialsUpToDegree) {
  // Interpolation through Q points is exact for degree <= Q-1.
  const int q = GetParam();
  auto z = chebyshev_points(q);
  for (int deg = 0; deg < q; ++deg) {
    std::vector<double> coeff(q);
    for (int j = 0; j < q; ++j) coeff[j] = std::pow(z[j], deg);
    for (double x : {-0.95, -0.4, 0.15, 0.77}) {
      EXPECT_NEAR(lagrange_interpolate(q, coeff.data(), x), std::pow(x, deg), 1e-10)
          << "q=" << q << " deg=" << deg;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ChebOrders, ::testing::Values(1, 2, 3, 4, 8, 12, 16, 20, 24));

TEST(Chebyshev, WeightsAlternateInSign) {
  auto w = chebyshev_weights(8);
  for (int i = 0; i + 1 < 8; ++i) EXPECT_LT(w[i] * w[i + 1], 0.0);
}

TEST(Chebyshev, InterpolationConvergesForSmoothFunction) {
  // Geometric error decay in Q for an analytic function on [-1,1]: the
  // mechanism behind the FMM's a-priori error control.
  auto f = [](double x) { return 1.0 / (x + 3.0); };  // poles away from [-1,1]
  double prev_err = 1e300;
  for (int q : {2, 4, 8, 16}) {
    auto z = chebyshev_points(q);
    std::vector<double> coeff(q);
    for (int j = 0; j < q; ++j) coeff[j] = f(z[j]);
    double err = 0;
    for (int k = 0; k <= 100; ++k) {
      double x = -1.0 + 2.0 * k / 100.0;
      err = std::max(err, std::abs(lagrange_interpolate(q, coeff.data(), x) - f(x)));
    }
    EXPECT_LT(err, prev_err * 0.5) << "q=" << q;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-10);
}

TEST(Chebyshev, LagrangeMatrixColumnsMatchPointEvaluations) {
  const int q = 5;
  const double xs[] = {-0.8, 0.1, 0.9};
  auto e = lagrange_matrix(q, xs, 3);
  std::vector<double> l(q);
  for (int j = 0; j < 3; ++j) {
    lagrange_eval(q, xs[j], l.data());
    for (int i = 0; i < q; ++i) EXPECT_EQ(e[(std::size_t)(i + j * q)], l[i]);
  }
}

TEST(Chebyshev, EvalNearNodeIsStable) {
  // Barycentric form must not blow up immediately next to a node.
  const int q = 12;
  auto z = chebyshev_points(q);
  std::vector<double> l(q);
  lagrange_eval(q, z[5] + 1e-15, l.data());
  double s = 0;
  for (double v : l) {
    EXPECT_TRUE(std::isfinite(v));
    s += v;
  }
  EXPECT_NEAR(s, 1.0, 1e-9);
}

}  // namespace
}  // namespace fmmfft::fmm
