// Integration tests for the batched FMM engine: the P-1 interleaved FMMs
// (plus post-processing) must match the dense Ĥ_{M,P} application to the
// accuracy implied by the Chebyshev order Q.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "fmm/engine.hpp"
#include "fmm/operators.hpp"

namespace fmmfft::fmm {
namespace {

using Cx = std::complex<double>;

/// Run the engine on complex input and emulate POST, returning Ĥx.
std::vector<Cx> engine_apply_hhat(const Params& prm, const std::vector<Cx>& x) {
  Engine<double> eng(prm, 2);
  std::memcpy(eng.source_box(0), x.data(), sizeof(Cx) * x.size());
  eng.run_single_node();
  const double* t = eng.target_box(0);
  const double* r = eng.reduction();
  std::vector<Cx> y(x.size());
  const index_t p_total = prm.p, m = prm.m();
  for (index_t mg = 0; mg < m; ++mg)
    for (index_t p = 0; p < p_total; ++p) {
      Cx tv(t[2 * (p + p_total * mg)], t[2 * (p + p_total * mg) + 1]);
      if (p == 0) {
        y[(std::size_t)(p + p_total * mg)] = tv;
      } else {
        Cx rp(r[2 * (p - 1)], r[2 * (p - 1) + 1]);
        y[(std::size_t)(p + p_total * mg)] = rho(p, p_total, m) * (tv + Cx(0, 1) * rp);
      }
    }
  return y;
}

struct Case {
  index_t n, p, ml;
  int b, q;
  double tol;
};

class EngineVsDense : public ::testing::TestWithParam<Case> {};

TEST_P(EngineVsDense, MatchesDenseHhat) {
  const auto c = GetParam();
  Params prm{c.n, c.p, c.ml, c.b, c.q};
  prm.validate();
  std::vector<Cx> x(static_cast<std::size_t>(c.n));
  fill_uniform(x.data(), c.n, 77);
  auto got = engine_apply_hhat(prm, x);
  std::vector<Cx> expect(x.size());
  core::apply_hhat_dense(prm, x.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), c.n), c.tol) << prm.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, EngineVsDense,
    ::testing::Values(
        // L == B: near field + base-level M2L only (no tree traversal).
        Case{1 << 10, 32, 8, 2, 8, 1e-6},
        Case{1 << 10, 32, 4, 3, 10, 1e-8},
        // Deep trees exercising M2M/M2L-l/L2L.
        Case{1 << 12, 32, 4, 2, 12, 1e-9},
        Case{1 << 12, 32, 2, 3, 12, 1e-9},
        Case{1 << 14, 64, 8, 2, 14, 1e-11},
        Case{1 << 14, 64, 4, 4, 14, 1e-11},
        // Larger P (more FMMs, smaller M).
        Case{1 << 14, 256, 4, 2, 12, 1e-9},
        // M_L = 1: every point its own leaf.
        Case{1 << 10, 64, 1, 2, 6, 5e-4},
        // Base level deeper than 2 with all-pairs M2L over 16 boxes.
        Case{1 << 14, 64, 4, 4, 10, 1e-7}));

TEST(Engine, RealInputMatchesComplexReal) {
  // C = 1 pipeline must agree with the real part flowing through C = 2.
  Params prm{1 << 12, 32, 4, 2, 12};
  std::vector<double> xr(1 << 12);
  fill_uniform(xr.data(), xr.size(), 5);
  std::vector<Cx> xc(xr.size());
  for (std::size_t i = 0; i < xr.size(); ++i) xc[i] = Cx(xr[i], 0.0);

  Engine<double> eng(prm, 1);
  std::memcpy(eng.source_box(0), xr.data(), sizeof(double) * xr.size());
  eng.run_single_node();

  Engine<double> eng2(prm, 2);
  std::memcpy(eng2.source_box(0), xc.data(), sizeof(Cx) * xc.size());
  eng2.run_single_node();

  const double* t1 = eng.target_box(0);
  const double* t2 = eng2.target_box(0);
  const index_t n = prm.n;
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(t1[i], t2[2 * i], 1e-12);         // real parts agree
    EXPECT_NEAR(t2[2 * i + 1], 0.0, 1e-12);       // imag stays zero
  }
  const double* r1 = eng.reduction();
  const double* r2 = eng2.reduction();
  for (index_t p = 0; p < prm.p - 1; ++p) EXPECT_NEAR(r1[p], r2[2 * p], 1e-10);
}

TEST(Engine, ReductionEqualsSourceSums) {
  // §4.8: the base multipoles preserve column sums, so r_{p-1} = sum_m,b S.
  Params prm{1 << 12, 64, 4, 2, 10};
  std::vector<Cx> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 9);
  Engine<double> eng(prm, 2);
  std::memcpy(eng.source_box(0), x.data(), sizeof(Cx) * x.size());
  eng.run_single_node();
  const double* r = eng.reduction();
  const index_t m = prm.m();
  for (index_t p = 1; p < prm.p; ++p) {
    Cx sum = 0;
    for (index_t k = 0; k < m; ++k) sum += x[(std::size_t)(p + k * prm.p)];
    EXPECT_NEAR(r[2 * (p - 1)], sum.real(), 1e-9 * m) << "p=" << p;
    EXPECT_NEAR(r[2 * (p - 1) + 1], sum.imag(), 1e-9 * m);
  }
}

TEST(Engine, ErrorDecreasesWithQ) {
  Params base{1 << 12, 32, 8, 2, 4};
  std::vector<Cx> x(static_cast<std::size_t>(base.n));
  fill_uniform(x.data(), base.n, 12);
  std::vector<Cx> expect(x.size());
  core::apply_hhat_dense(base, x.data(), expect.data());
  double prev = 1e9;
  for (int q : {4, 8, 12, 16}) {
    Params prm = base;
    prm.q = q;
    auto got = engine_apply_hhat(prm, x);
    double err = rel_l2_error(got.data(), expect.data(), prm.n);
    EXPECT_LT(err, prev) << "q=" << q;
    prev = err;
  }
  EXPECT_LT(prev, 1e-12);
}

TEST(Engine, LinearityOfHhat) {
  Params prm{1 << 10, 32, 4, 2, 10};
  std::vector<Cx> a(static_cast<std::size_t>(prm.n)), b(a.size()), sum(a.size());
  fill_uniform(a.data(), prm.n, 21);
  fill_uniform(b.data(), prm.n, 22);
  for (std::size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + 2.0 * b[i];
  auto ya = engine_apply_hhat(prm, a);
  auto yb = engine_apply_hhat(prm, b);
  auto ys = engine_apply_hhat(prm, sum);
  std::vector<Cx> combo(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) combo[i] = ya[i] + 2.0 * yb[i];
  EXPECT_LT(rel_l2_error(ys.data(), combo.data(), prm.n), 1e-11);
}

TEST(Engine, StatsRecordExpectedLaunchCensus) {
  // Fig. 2 accounting: S2M 1, M2M L-B, S2T 1, M2L-l (L-B), M2L-B 1,
  // REDUCE 1, L2L L-B, L2T 1 compute launches.
  Params prm{1 << 14, 64, 4, 2, 8};  // M=256, L=6, B=2
  Engine<double> eng(prm, 2);
  std::vector<Cx> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 1);
  std::memcpy(eng.source_box(0), x.data(), sizeof(Cx) * x.size());
  eng.run_single_node();
  int s2m = 0, m2m = 0, s2t = 0, m2ll = 0, m2lb = 0, red = 0, l2l = 0, l2t = 0;
  for (const auto& st : eng.stats()) {
    if (st.name == "S2M") ++s2m;
    else if (st.name.rfind("M2M-", 0) == 0) ++m2m;
    else if (st.name == "S2T") ++s2t;
    else if (st.name == "M2L-B") ++m2lb;
    else if (st.name.rfind("M2L-", 0) == 0) ++m2ll;
    else if (st.name == "REDUCE") ++red;
    else if (st.name.rfind("L2L-", 0) == 0) ++l2l;
    else if (st.name == "L2T") ++l2t;
  }
  const int depth = prm.l() - prm.b;  // 4
  EXPECT_EQ(s2m, 1);
  EXPECT_EQ(m2m, depth);
  EXPECT_EQ(s2t, 1);
  EXPECT_EQ(m2ll, depth);
  EXPECT_EQ(m2lb, 1);
  EXPECT_EQ(red, 1);
  EXPECT_EQ(l2l, depth);
  EXPECT_EQ(l2t, 1);
}

TEST(Engine, StatsFlopFormulas) {
  // Exact per-stage flop counts (§5.1 with the engine's conventions).
  Params prm{1 << 12, 32, 8, 2, 8};  // M=128, L=4
  const int c = 2;
  Engine<double> eng(prm, c);
  std::vector<Cx> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 2);
  std::memcpy(eng.source_box(0), x.data(), sizeof(Cx) * x.size());
  eng.run_single_node();
  const double cpm = c * (prm.p - 1), cp = c * prm.p;
  for (const auto& st : eng.stats()) {
    if (st.name == "S2M") {
      EXPECT_DOUBLE_EQ(st.flops, 2.0 * cpm * prm.q * prm.ml * prm.leaves());
    }
    if (st.name == "S2T") {
      EXPECT_DOUBLE_EQ(st.flops, 6.0 * prm.ml * prm.ml * cp * prm.leaves());
    }
    if (st.name == "M2L-B") {
      EXPECT_DOUBLE_EQ(st.flops,
                       2.0 * (prm.boxes(prm.b) - 3) * prm.q * prm.q * cpm * prm.boxes(prm.b));
    }
  }
}

// -- Fused/SIMD kernel identity ----------------------------------------------
// The vectorized, separation-fused S2T / M2L fast paths promise BIT-identical
// outputs to the pre-fusion reference loops (same per-element accumulation
// order). Two engines get identical tensor state — sources with halos,
// every multipole level with halo boxes, the global base buffer — then one
// runs the fast kernels and the other the references; every output tensor
// must memcmp equal.

void prime_pair(Engine<double>& ea, Engine<double>& eb) {
  const Params& prm = ea.params();
  const index_t se = ea.source_box_elems(), ee = ea.expansion_box_elems();
  for (index_t b = -1; b <= ea.local_leaves(); ++b) {
    const std::uint64_t seed = 900 + std::uint64_t(b + 1);
    fill_uniform(ea.source_box(b), se, seed);
    fill_uniform(eb.source_box(b), se, seed);
  }
  ea.zero();
  eb.zero();
  for (int lev = prm.b; lev <= prm.l(); ++lev) {
    const index_t b_lo = lev == prm.b ? 0 : -2;
    const index_t b_hi = lev == prm.b ? prm.boxes(prm.b) : ea.local_boxes(lev) + 2;
    for (index_t b = b_lo; b < b_hi; ++b) {
      const std::uint64_t seed = 5000 * std::uint64_t(lev) + std::uint64_t(b + 2);
      fill_uniform(ea.multipole_box(lev, b), ee, seed);
      fill_uniform(eb.multipole_box(lev, b), ee, seed);
    }
  }
}

void expect_kernels_match(const Params& prm, index_t g, index_t rank) {
  Engine<double> ea(prm, 2, g, rank), eb(prm, 2, g, rank);
  prime_pair(ea, eb);
  ea.s2t();
  eb.s2t_reference();
  const std::size_t tbytes =
      sizeof(double) * std::size_t(ea.source_box_elems() * ea.local_leaves());
  EXPECT_EQ(0, std::memcmp(ea.target_box(0), eb.target_box(0), tbytes))
      << prm.to_string() << " g=" << g << " rank=" << rank << " (S2T)";
  for (int lev = prm.l(); lev > prm.b; --lev) {
    ea.m2l_level(lev);
    eb.m2l_level_reference(lev);
  }
  ea.m2l_base();
  eb.m2l_base_reference();
  for (int lev = prm.b; lev <= prm.l(); ++lev) {
    const std::size_t lbytes =
        sizeof(double) * std::size_t(ea.expansion_box_elems() * ea.local_boxes(lev));
    EXPECT_EQ(0, std::memcmp(ea.local_box(lev, 0), eb.local_box(lev, 0), lbytes))
        << prm.to_string() << " g=" << g << " rank=" << rank << " (M2L level " << lev << ")";
  }
}

TEST(EngineKernelIdentity, FusedMatchesReferenceAcrossConfigs) {
  // Deep tree with the small precomputed base (the e2e CD shape, scaled).
  expect_kernels_match(Params{1 << 14, 64, 4, 2, 10}, 1, 0);
  // Big base: 2^B = 64 boxes, 61 separations — the LRU-backed fused sweep.
  expect_kernels_match(Params{1 << 14, 64, 4, 6, 10}, 1, 0);
}

TEST(EngineKernelIdentity, FusedMatchesReferenceOnDeviceSlabs) {
  // Per-device slabs shift box offsets and parities; every rank must match.
  const Params prm{index_t(1) << 16, 64, 8, 3, 14};
  for (index_t g : {index_t(1), index_t(2), index_t(4)})
    for (index_t rank = 0; rank < g; ++rank) expect_kernels_match(prm, g, rank);
}

TEST(EngineKernelIdentity, BaseSeparationsBeyondLruCapacity) {
  // 2^B = 512 base boxes -> 509 separations, more than the operator LRU can
  // pin at once: m2l_base falls back to one pass per separation and must
  // still match the reference bit for bit.
  expect_kernels_match(Params{4096, 4, 2, 9, 4}, 1, 0);
}

TEST(Engine, RejectsInvalidConfigs) {
  Params prm{1 << 12, 32, 8, 2, 8};
  EXPECT_THROW(Engine<double>(prm, 3), Error);            // bad component count
  EXPECT_THROW(Engine<double>(prm, 2, 2, 2), Error);      // rank >= g
  Params bad = prm;
  bad.b = 9;
  EXPECT_THROW(Engine<double>(bad, 2), Error);            // B > L
}

}  // namespace
}  // namespace fmmfft::fmm
