// End-to-end validation of the FMM-FFT: the dense factorization identity,
// the full approximate pipeline against the exact FFT across the admissible
// parameter grid and all four precisions, and the paper's headline accuracy
// bounds (§6.1: < 4e-7 rel l2 in single-complex, < 2e-14 in double-complex).
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "fmm/accuracy.hpp"
#include "fft/fft.hpp"

namespace fmmfft::core {
namespace {

using Cd = std::complex<double>;
using Cf = std::complex<float>;

// CI runs one leg of the suite under FMMFFT_PRECISION=mixed; plans built
// with the ambient default then land at the §6.1 single-precision envelope
// instead of the fp64 one, so the precision-generic tests pick their bound
// from the active policy.
bool ambient_mixed() { return fmm::default_precision() == fmm::Precision::Mixed; }

TEST(Factorization, DenseIdentityIsExact) {
  // F_N = (I_P⊗F_M) Π_{M,P} (I_M⊗F_P) Π_{P,M} H Π_{M,P} to machine eps.
  for (auto [n, p] : {std::pair<index_t, index_t>{64, 4}, {256, 8}, {1024, 32}, {4096, 64}}) {
    fmm::Params prm{n, p, std::max<index_t>(1, n / p / 4), 2, 8};
    std::vector<Cd> x(static_cast<std::size_t>(n)), got(x.size()), expect(x.size());
    fill_uniform(x.data(), n, n + p);
    fmmfft_dense_reference(prm, x.data(), got.data());
    exact_fft(n, x.data(), expect.data());
    EXPECT_LT(rel_l2_error(got.data(), expect.data(), n), 1e-12) << "n=" << n << " p=" << p;
  }
}

struct Case {
  index_t n, p, ml;
  int b, q;
};

class FullPipeline : public ::testing::TestWithParam<Case> {};

TEST_P(FullPipeline, DoubleComplexMeetsPaperBound) {
  const auto c = GetParam();
  fmm::Params prm{c.n, c.p, c.ml, c.b, c.q};
  std::vector<Cd> x(static_cast<std::size_t>(c.n)), got(x.size()), expect(x.size());
  fill_uniform(x.data(), c.n, 1234);
  FmmFft<Cd> plan(prm);
  plan.execute(x.data(), got.data());
  exact_fft(c.n, x.data(), expect.data());
  // Paper §6.1: all reported double-complex runs achieve < 2e-14 rel l2;
  // under the ambient mixed policy the fp32 translation bound applies.
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), c.n), ambient_mixed() ? 4e-7 : 2e-14)
      << prm.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, FullPipeline,
    ::testing::Values(Case{1 << 12, 32, 8, 2, 18},   // L=B? M=128,ML=8 -> L=4
                      Case{1 << 12, 32, 4, 3, 18},
                      Case{1 << 14, 64, 8, 2, 18},
                      Case{1 << 14, 32, 16, 3, 18},
                      Case{1 << 16, 256, 8, 2, 18},
                      Case{1 << 16, 64, 32, 3, 18},
                      Case{1 << 18, 256, 16, 3, 18},
                      Case{1 << 14, 64, 4, 4, 18},   // deeper base level
                      Case{1 << 16, 128, 4, 5, 18}));

TEST(FullPipeline, SerialAndPoolRunsAreBitIdentical) {
  // The parallelized kernels (sharded GEMM, batch-parallel FFT, striped
  // transpose) keep a fixed arithmetic order per output element, so a full
  // fmmfft run must not change with the worker count. ScopedSerial forces
  // the 1-thread execution path inside one process; CI additionally runs
  // the suite under FMMFFT_NUM_THREADS=1 and =4.
  fmm::Params prm{1 << 14, 64, 8, 2, 14};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), pool_out(x.size()), serial_out(x.size());
  fill_uniform(x.data(), n, 4321);
  FmmFft<Cd> plan(prm);
  plan.execute(x.data(), pool_out.data());
  {
    ThreadPool::ScopedSerial serial;
    plan.execute(x.data(), serial_out.data());
  }
  EXPECT_EQ(pool_out, serial_out);
}

TEST(FullPipeline, MixedPrecisionMeetsFp32Envelope) {
  // Mixed under an fp64 shell: the fp32 translation pipeline must land
  // inside the paper's single-precision bound, actually diverge from the
  // fp64 result (the narrow path is engaged), and report its policy.
  fmm::Params prm{1 << 14, 64, 8, 2, 14};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), expect(x.size());
  fill_uniform(x.data(), n, 515);
  exact_fft(n, x.data(), expect.data());

  FmmFft<Cd> plan64(prm, /*fuse_post=*/true, fmm::Precision::Fp64);
  FmmFft<Cd> planmx(prm, /*fuse_post=*/true, fmm::Precision::Mixed);
  EXPECT_EQ(plan64.precision(), fmm::Precision::Fp64);
  EXPECT_EQ(planmx.precision(), fmm::Precision::Mixed);
  std::vector<Cd> got64(x.size()), gotmx(x.size());
  plan64.execute(x.data(), got64.data());
  planmx.execute(x.data(), gotmx.data());
  EXPECT_LT(rel_l2_error(got64.data(), expect.data(), n),
            fmm::predict_rel_error(prm.q, /*is_double=*/true));
  EXPECT_LT(rel_l2_error(gotmx.data(), expect.data(), n), 4e-7);  // §6.1 f32 bound
  EXPECT_NE(got64, gotmx);
}

TEST(FullPipeline, MixedSerialAndPoolRunsAreBitIdentical) {
  // The worker-count invariant must survive the fp32 engine and the
  // elementwise demoting load.
  fmm::Params prm{1 << 14, 64, 8, 2, 14};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), pool_out(x.size()), serial_out(x.size());
  fill_uniform(x.data(), n, 4321);
  FmmFft<Cd> plan(prm, /*fuse_post=*/true, fmm::Precision::Mixed);
  plan.execute(x.data(), pool_out.data());
  {
    ThreadPool::ScopedSerial serial;
    plan.execute(x.data(), serial_out.data());
  }
  EXPECT_EQ(pool_out, serial_out);
}

TEST(FullPipeline, MixedCollapsesToNativeUnderF32Shell) {
  // With an fp32 shell there is nothing to narrow: Mixed must take the
  // same engine and produce bit-identical output to the default plan.
  fmm::Params prm{1 << 14, 64, 8, 2, 10};
  const index_t n = prm.n;
  std::vector<Cf> x(static_cast<std::size_t>(n)), a(x.size()), b(x.size());
  fill_uniform(x.data(), n, 77);
  FmmFft<Cf> native(prm);
  FmmFft<Cf> mixed(prm, /*fuse_post=*/true, fmm::Precision::Mixed);
  native.execute(x.data(), a.data());
  mixed.execute(x.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(FullPipeline, SingleComplexMeetsPaperBound) {
  fmm::Params prm{1 << 16, 128, 16, 3, 8};  // Q=8: the paper's f32 tuning
  const index_t n = prm.n;
  std::vector<Cf> x(static_cast<std::size_t>(n));
  std::vector<Cf> got(x.size());
  fill_uniform(x.data(), n, 99);
  FmmFft<Cf> plan(prm);
  plan.execute(x.data(), got.data());
  std::vector<Cd> xd(x.size()), expect(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xd[i] = Cd(x[i].real(), x[i].imag());
  exact_fft(n, xd.data(), expect.data());
  std::vector<Cd> gotd(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) gotd[i] = Cd(got[i].real(), got[i].imag());
  // Paper §6.1: < 4e-7 relative l2 error in single-complex.
  EXPECT_LT(rel_l2_error(gotd.data(), expect.data(), n), 4e-7);
}

TEST(FullPipeline, RealInputMatchesComplexifiedFft) {
  fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<double> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, 31);
  std::vector<Cd> got(static_cast<std::size_t>(n));
  FmmFft<double> plan(prm);
  plan.execute(x.data(), got.data());
  std::vector<Cd> xc(x.size()), expect(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = Cd(x[i], 0);
  exact_fft(n, xc.data(), expect.data());
  EXPECT_LT(rel_l2_error(got.data(), expect.data(), n), ambient_mixed() ? 4e-7 : 2e-14);
}

TEST(FullPipeline, RealFloatInput) {
  fmm::Params prm{1 << 14, 64, 8, 2, 8};
  const index_t n = prm.n;
  std::vector<float> x(static_cast<std::size_t>(n));
  fill_uniform(x.data(), n, 32);
  std::vector<Cf> got(static_cast<std::size_t>(n));
  FmmFft<float> plan(prm);
  plan.execute(x.data(), got.data());
  std::vector<Cd> xc(x.size()), expect(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = Cd(x[i], 0);
  std::vector<Cd> gotd(got.size());
  exact_fft(n, xc.data(), expect.data());
  for (std::size_t i = 0; i < got.size(); ++i) gotd[i] = Cd(got[i].real(), got[i].imag());
  EXPECT_LT(rel_l2_error(gotd.data(), expect.data(), n), 4e-7);
}

TEST(FullPipeline, UnfusedPostGivesIdenticalResults) {
  fmm::Params prm{1 << 12, 32, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), a(x.size()), b(x.size());
  fill_uniform(x.data(), n, 7);
  FmmFft<Cd> fused(prm, /*fuse_post=*/true);
  FmmFft<Cd> unfused(prm, /*fuse_post=*/false);
  fused.execute(x.data(), a.data());
  unfused.execute(x.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(FullPipeline, LinearityOfWholeTransform) {
  fmm::Params prm{1 << 12, 32, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<Cd> u(static_cast<std::size_t>(n)), v(u.size()), w(u.size());
  fill_uniform(u.data(), n, 11);
  fill_uniform(v.data(), n, 12);
  for (std::size_t i = 0; i < u.size(); ++i) w[i] = 3.0 * u[i] - Cd(0, 2) * v[i];
  FmmFft<Cd> plan(prm);
  std::vector<Cd> fu(u.size()), fv(u.size()), fw(u.size());
  plan.execute(u.data(), fu.data());
  plan.execute(v.data(), fv.data());
  plan.execute(w.data(), fw.data());
  std::vector<Cd> combo(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) combo[i] = 3.0 * fu[i] - Cd(0, 2) * fv[i];
  EXPECT_LT(rel_l2_error(fw.data(), combo.data(), n), ambient_mixed() ? 1e-6 : 1e-12);
}

TEST(FullPipeline, ParsevalHolds) {
  fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), y(x.size());
  fill_uniform(x.data(), n, 13);
  double ein = 0;
  for (auto& z : x) ein += std::norm(z);
  FmmFft<Cd> plan(prm);
  plan.execute(x.data(), y.data());
  double eout = 0;
  for (auto& z : y) eout += std::norm(z);
  EXPECT_NEAR(eout, ein * n, ein * n * (ambient_mixed() ? 2e-6 : 1e-10));
}

TEST(FullPipeline, PlanReuseAcrossInputs) {
  fmm::Params prm{1 << 12, 32, 8, 2, 18};
  const index_t n = prm.n;
  FmmFft<Cd> plan(prm);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Cd> x(static_cast<std::size_t>(n)), got(x.size()), expect(x.size());
    fill_uniform(x.data(), n, 100 + trial);
    plan.execute(x.data(), got.data());
    exact_fft(n, x.data(), expect.data());
    EXPECT_LT(rel_l2_error(got.data(), expect.data(), n), ambient_mixed() ? 4e-7 : 2e-14)
        << "trial " << trial;
  }
}

TEST(FullPipeline, ProfileIsPopulated) {
  fmm::Params prm{1 << 14, 64, 8, 2, 16};
  const index_t n = prm.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), y(x.size());
  fill_uniform(x.data(), n, 3);
  FmmFft<Cd> plan(prm);
  plan.execute(x.data(), y.data());
  const auto& prof = plan.profile();
  EXPECT_FALSE(prof.fmm_stages.empty());
  EXPECT_GT(prof.fmm_flops(), 0.0);
  EXPECT_GT(prof.total_seconds, 0.0);
  EXPECT_GE(prof.total_seconds, prof.fft_seconds);
  EXPECT_GT(prof.kernel_launches(), 0);
  EXPECT_EQ(plan.params().n, n);
}

TEST(ErrorSweep, OddEvenAccuracyImprovesWithQ) {
  // Fig. 9 (bottom): error decays with Q down to machine precision.
  fmm::Params base{1 << 12, 32, 8, 2, 2};
  const index_t n = base.n;
  std::vector<Cd> x(static_cast<std::size_t>(n)), expect(x.size());
  fill_uniform(x.data(), n, 55);
  exact_fft(n, x.data(), expect.data());
  double e4 = 0, e10 = 0, e18 = 0;
  for (int q : {4, 10, 18}) {
    fmm::Params prm = base;
    prm.q = q;
    FmmFft<Cd> plan(prm);
    std::vector<Cd> got(x.size());
    plan.execute(x.data(), got.data());
    double err = rel_l2_error(got.data(), expect.data(), n);
    if (q == 4) e4 = err;
    if (q == 10) e10 = err;
    if (q == 18) e18 = err;
  }
  EXPECT_GT(e4, e10);
  if (ambient_mixed()) {
    // Q=10 already sits at the fp32 translation floor, so the Q=10 vs
    // Q=18 ordering is noise; both must just stay inside the envelope.
    EXPECT_LT(e10, 4e-7);
    EXPECT_LT(e18, 4e-7);
  } else {
    EXPECT_GT(e10, e18);
    EXPECT_LT(e18, 1e-13);
  }
}

}  // namespace
}  // namespace fmmfft::core
