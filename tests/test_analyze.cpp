// Tests for the timeline analyzer: exact critical path and slack on a
// hand-built DAG, resource-edge (lane serialization) chains, idle-gap
// attribution, roofline classification, airtight coverage on the real
// distributed schedules, and JSON export validity.
#include <gtest/gtest.h>

#include <sstream>

#include "dist/schedules.hpp"
#include "json_validator.hpp"
#include "model/arch.hpp"
#include "obs/analyze.hpp"
#include "sim/schedule.hpp"

namespace fmmfft::obs {
namespace {

using fmm::KernelClass;
using fmmfft::testing::JsonValidator;

/// 1 flop = 1 s, 1 byte over the link = 1 s, no latency/overheads: every
/// simulated duration is a small integer or exact binary fraction, so the
/// analyzer's outputs can be asserted exactly.
model::ArchParams unit_arch(int g) {
  model::ArchParams a;
  a.name = "unit";
  a.num_devices = g;
  a.gamma_f = a.gamma_d = 1.0;
  a.beta_mem = 1e30;  // memory term never binds unless bytes are huge
  a.link_bw = 1.0;
  a.link_latency = 0;
  a.launch_overhead = 0;
  a.sync_overhead = 0;
  a.links_shared = false;
  a.eff_batched_gemm = a.eff_custom = a.eff_gemv = a.eff_fft = 1.0;
  return a;
}

// The canonical 5-op DAG:
//   a: dev0 kernel, 3 s            [0, 3]
//   b: dev1 kernel, 1 s            [0, 1]
//   c: comm dev1->dev0, 1.5 s, {b} [1, 2.5]
//   d: dev0 kernel, 2 s, {a, c}    [3, 5]   (a finishes last -> binds)
//   e: dev1 kernel, 1 s, {b}       [1, 2]
// Critical path a -> d, makespan 5 s.
struct Dag5 {
  sim::Schedule s;
  int a, b, c, d, e;
  Dag5() {
    s.set_stage("alpha");
    a = s.add_kernel(0, "a", KernelClass::Custom, 3.0, 0, true, {});
    b = s.add_kernel(1, "b", KernelClass::Custom, 1.0, 0, true, {});
    s.set_stage("beta");
    c = s.add_comm(1, 0, "c", 1.5, {b});
    d = s.add_kernel(0, "d", KernelClass::Custom, 2.0, 0, true, {a, c});
    e = s.add_kernel(1, "e", KernelClass::Custom, 1.0, 0, true, {b});
  }
};

TEST(Analyze, CriticalPathAndSlackExactOn5OpDag) {
  Dag5 dag;
  auto res = dag.s.simulate(unit_arch(2));
  ASSERT_DOUBLE_EQ(res.total_seconds, 5.0);
  auto rep = analyze(dag.s, res, unit_arch(2));

  ASSERT_EQ(rep.critical_path, (std::vector<int>{dag.a, dag.d}));
  EXPECT_DOUBLE_EQ(rep.critical_seconds, 5.0);
  EXPECT_DOUBLE_EQ(rep.critical_coverage, 1.0);

  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)dag.a].slack, 0.0);
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)dag.d].slack, 0.0);
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)dag.b].slack, 0.5);  // via c -> d
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)dag.c].slack, 0.5);
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)dag.e].slack, 3.0);
  EXPECT_TRUE(rep.ops[(std::size_t)dag.a].critical);
  EXPECT_TRUE(rep.ops[(std::size_t)dag.d].critical);
  EXPECT_FALSE(rep.ops[(std::size_t)dag.b].critical);
  EXPECT_FALSE(rep.ops[(std::size_t)dag.c].critical);
  EXPECT_FALSE(rep.ops[(std::size_t)dag.e].critical);

  // Composition: the whole path is pure compute under unit_arch.
  EXPECT_DOUBLE_EQ(rep.crit_compute, 5.0);
  EXPECT_DOUBLE_EQ(rep.crit_bandwidth + rep.crit_launch + rep.crit_comm + rep.crit_sync, 0.0);
  EXPECT_DOUBLE_EQ(rep.critical_stage_seconds("alpha"), 3.0);
  EXPECT_DOUBLE_EQ(rep.critical_stage_seconds("beta"), 2.0);
  EXPECT_DOUBLE_EQ(rep.critical_stage_seconds("a2a"), 0.0);
}

TEST(Analyze, IdleAttributionAndLaneUtilization) {
  Dag5 dag;
  auto res = dag.s.simulate(unit_arch(2));
  auto rep = analyze(dag.s, res, unit_arch(2));

  ASSERT_EQ(rep.lanes.size(), 3u);  // dev0/s0, dev1/s0, dev1->dev0
  auto lane = [&](const std::string& name) -> const LaneUtil& {
    for (const auto& l : rep.lanes)
      if (l.name == name) return l;
    ADD_FAILURE() << "no lane " << name;
    static LaneUtil none;
    return none;
  };
  const auto& d0 = lane("dev0/s0");
  EXPECT_DOUBLE_EQ(d0.busy, 5.0);
  EXPECT_DOUBLE_EQ(d0.idle_dep + d0.idle_comm + d0.idle_resource + d0.idle_drain, 0.0);
  EXPECT_DOUBLE_EQ(d0.utilization(rep.total_seconds), 1.0);

  const auto& d1 = lane("dev1/s0");
  EXPECT_DOUBLE_EQ(d1.busy, 2.0);
  EXPECT_DOUBLE_EQ(d1.idle_drain, 3.0);

  // The link sat idle 1 s waiting on kernel b (a dependency, not comm).
  const auto& link = lane("dev1->dev0");
  EXPECT_TRUE(link.is_comm);
  EXPECT_DOUBLE_EQ(link.busy, 1.5);
  EXPECT_DOUBLE_EQ(link.idle_dep, 1.0);
  EXPECT_DOUBLE_EQ(link.idle_drain, 2.5);
  EXPECT_EQ(rep.ops[(std::size_t)dag.c].wait, Wait::Dep);

  // busy + idle buckets tile the makespan on every lane.
  for (const auto& l : rep.lanes)
    EXPECT_DOUBLE_EQ(l.busy + l.idle_dep + l.idle_comm + l.idle_resource + l.idle_drain,
                     rep.total_seconds)
        << l.name;

  // Per-device aggregates.
  EXPECT_DOUBLE_EQ(rep.device_utilization(0), 1.0);
  EXPECT_DOUBLE_EQ(rep.device_utilization(1), 0.4);
}

TEST(Analyze, ResourceEdgesFormCriticalPath) {
  // Two independent kernels on one lane: the second's only constraint is
  // lane occupancy, and the chain must still be airtight.
  sim::Schedule s;
  int k1 = s.add_kernel(0, "k1", KernelClass::Custom, 2.0, 0, true, {});
  int k2 = s.add_kernel(0, "k2", KernelClass::Custom, 3.0, 0, true, {});
  auto res = s.simulate(unit_arch(1));
  auto rep = analyze(s, res, unit_arch(1));
  EXPECT_EQ(rep.critical_path, (std::vector<int>{k1, k2}));
  EXPECT_DOUBLE_EQ(rep.critical_coverage, 1.0);
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)k1].slack, 0.0);
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)k2].slack, 0.0);
}

TEST(Analyze, CommOnCriticalPathAndWaitComm) {
  // producer(dev1) -> comm -> consumer(dev0): the consumer's gap is
  // attributed to the transfer, and the path contains all three ops.
  sim::Schedule s;
  int p = s.add_kernel(1, "prod", KernelClass::Custom, 1.0, 0, true, {});
  int c = s.add_comm(1, 0, "xfer", 2.0, {p});
  int k = s.add_kernel(0, "cons", KernelClass::Custom, 1.0, 0, true, {c});
  auto res = s.simulate(unit_arch(2));
  auto rep = analyze(s, res, unit_arch(2));
  EXPECT_EQ(rep.critical_path, (std::vector<int>{p, c, k}));
  EXPECT_DOUBLE_EQ(rep.crit_comm, 2.0);
  EXPECT_DOUBLE_EQ(rep.crit_compute, 2.0);
  EXPECT_EQ(rep.ops[(std::size_t)k].wait, Wait::Comm);
  EXPECT_DOUBLE_EQ(rep.ops[(std::size_t)k].gap, 3.0);
}

TEST(Analyze, RooflineClassification) {
  auto arch = unit_arch(2);
  arch.beta_mem = 1.0;       // 1 byte/s memory: bandwidth term visible
  arch.launch_overhead = 10.0;
  arch.link_latency = 5.0;
  sim::Schedule s;
  int compute = s.add_kernel(0, "c", KernelClass::Custom, 100.0, 1.0, true, {});
  int bw = s.add_kernel(0, "b", KernelClass::Custom, 1.0, 100.0, true, {});
  int launch = s.add_kernel(0, "l", KernelClass::Custom, 1.0, 1.0, true, {});
  int link = s.add_comm(0, 1, "x", 100.0, {});
  int lat = s.add_comm(1, 0, "t", 1.0, {});
  int sync = s.add_delay(0, "s", 1.0, {});
  auto res = s.simulate(arch);
  auto rep = analyze(s, res, arch);
  EXPECT_EQ(rep.ops[(std::size_t)compute].bound, Bound::Compute);
  EXPECT_EQ(rep.ops[(std::size_t)bw].bound, Bound::Bandwidth);
  EXPECT_EQ(rep.ops[(std::size_t)launch].bound, Bound::Launch);
  EXPECT_EQ(rep.ops[(std::size_t)link].bound, Bound::Link);
  EXPECT_EQ(rep.ops[(std::size_t)lat].bound, Bound::Latency);
  EXPECT_EQ(rep.ops[(std::size_t)sync].bound, Bound::Sync);
  EXPECT_EQ(rep.bound_census.at("compute").count, 1);
  EXPECT_EQ(rep.bound_census.at("sync").count, 1);
}

TEST(Analyze, AirtightCoverageOnRealSchedules) {
  // Acceptance: on a 2-device run the critical path + idle attribution
  // account for >= 95% of total_seconds. With resource edges recorded the
  // walk is airtight, so coverage is 1.0 up to rounding.
  const fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};
  const model::Workload w{prm.n, true, true};
  const auto arch = model::p100_nvlink(2);
  for (const auto& sched :
       {dist::fmmfft_schedule(prm, w, 2), dist::baseline1d_schedule(prm.n, w, 2)}) {
    auto res = sched.simulate(arch);
    auto rep = analyze(sched, res, arch);
    EXPECT_GE(rep.critical_coverage, 0.95);
    EXPECT_NEAR(rep.critical_coverage, 1.0, 1e-9);
    // The five composition buckets are a complete account of the path.
    EXPECT_NEAR(rep.crit_compute + rep.crit_bandwidth + rep.crit_launch + rep.crit_comm +
                    rep.crit_sync,
                rep.critical_seconds, 1e-9 * rep.critical_seconds);
    // Every op got a stage tag from the builders.
    EXPECT_EQ(rep.critical_by_stage.count("(untagged)"), 0u);
    // Idle attribution tiles every lane.
    for (const auto& l : rep.lanes)
      EXPECT_NEAR(l.busy + l.idle_dep + l.idle_comm + l.idle_resource + l.idle_drain,
                  rep.total_seconds, 1e-9 * rep.total_seconds)
          << l.name;
  }
}

TEST(Analyze, BaselineAllToAllDominatesCriticalPathFmmFftDoesNot) {
  // §5.3: the baseline's three transposes sit on its critical path; the
  // FMM-FFT's single transpose is largely hidden under compute.
  const fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};
  const model::Workload w{prm.n, true, true};
  const auto arch = model::p100_nvlink(2);
  auto fs = dist::fmmfft_schedule(prm, w, 2);
  auto bs = dist::baseline1d_schedule(prm.n, w, 2);
  auto frep = analyze(fs, fs.simulate(arch), arch);
  auto brep = analyze(bs, bs.simulate(arch), arch);
  const double ffrac = frep.critical_stage_seconds("a2a") / frep.total_seconds;
  const double bfrac = brep.critical_stage_seconds("a2a") / brep.total_seconds;
  EXPECT_GT(bfrac, 0.3) << "baseline should be transpose-dominated";
  EXPECT_LT(ffrac, bfrac);
}

TEST(Analyze, ReportJsonIsValidAndTextNonEmpty) {
  Dag5 dag;
  auto res = dag.s.simulate(unit_arch(2));
  auto rep = analyze(dag.s, res, unit_arch(2));
  std::ostringstream os;
  rep.write_json(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("fmmfft.report.v1"), std::string::npos);
  EXPECT_NE(os.str().find("\"critical_path\""), std::string::npos);
  const std::string txt = rep.to_string();
  EXPECT_NE(txt.find("critical path"), std::string::npos);
  EXPECT_NE(txt.find("device utilization"), std::string::npos);
}

}  // namespace
}  // namespace fmmfft::obs
