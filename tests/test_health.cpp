// Runtime health layer: flight recorder, env registry, watchdog (no false
// positive / guaranteed fire with stall attribution), span sampler, and
// postmortem dumps (writer path + async-signal-safe path).
#include <gtest/gtest.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "exec/executor.hpp"
#include "json_validator.hpp"
#include "obs/env.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

// The death test forks, which TSan instrumentation does not support.
#if defined(__SANITIZE_THREAD__)
#define FMMFFT_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FMMFFT_TSAN_BUILD 1
#endif
#endif

namespace health = fmmfft::obs::health;
namespace env = fmmfft::obs::env;
using fmmfft::ThreadPool;
using fmmfft::exec::DeviceLanes;
using fmmfft::exec::TaskGraph;
using fmmfft::exec::TaskId;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void sleep_ms(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

/// Scoped health teardown so one test's armed facilities never leak into
/// the next.
struct HealthQuiesce {
  ~HealthQuiesce() {
    health::enable_watchdog(0);
    health::enable_sampler(0);
    health::enable_flight(false);
    health::arm_postmortem(false);
    fmmfft::obs::detail::update_span_hooks();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Flight recorder

TEST(Flight, DisabledRecordsNothing) {
  HealthQuiesce q;
  health::enable_flight(false);
  const std::uint64_t before = health::flight_recorded();
  for (int i = 0; i < 100; ++i) FMMFFT_FLIGHT(Mark, i, 0, "off");
  EXPECT_EQ(health::flight_recorded(), before);
}

TEST(Flight, RecordsAndDecodes) {
  HealthQuiesce q;
  health::enable_flight(true);
  health::flight_clear();
  FMMFFT_FLIGHT(TaskStart, 42, 3, "fmm:m2l d1");
  FMMFFT_FLIGHT(Comm, 7, 5, "A2A-2D c2");
  const auto events = health::flight_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, health::Ev::TaskStart);
  EXPECT_EQ(events[0].a, 42u);
  EXPECT_EQ(events[0].lane, 3);
  EXPECT_STREQ(events[0].tag, "fmm:m2l d1");
  EXPECT_EQ(events[1].kind, health::Ev::Comm);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
}

TEST(Flight, TagIsPrefixTruncated) {
  HealthQuiesce q;
  health::enable_flight(true);
  health::flight_clear();
  FMMFFT_FLIGHT(Mark, 0, 0, "0123456789abcdefOVERFLOW");
  const auto events = health::flight_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].tag, "0123456789abcde");  // kFlightTagCap-1 chars + NUL
}

TEST(Flight, RingWrapsKeepingMostRecent) {
  HealthQuiesce q;
  health::enable_flight(true);
  health::flight_clear();
  const std::uint32_t n = health::kFlightCapacity + 500;
  for (std::uint32_t i = 0; i < n; ++i) FMMFFT_FLIGHT(Mark, i, 0, "wrap");
  EXPECT_GE(health::flight_recorded(), std::uint64_t(n));
  const auto events = health::flight_snapshot();
  ASSERT_LE(events.size(), std::size_t(health::kFlightCapacity));
  ASSERT_FALSE(events.empty());
  // The newest event survived; the oldest surviving one is past the wrap.
  std::uint32_t amax = 0, amin = n;
  for (const auto& ev : events) {
    amax = std::max(amax, ev.a);
    amin = std::min(amin, ev.a);
  }
  EXPECT_EQ(amax, n - 1);
  EXPECT_GE(amin, n - health::kFlightCapacity);
}

TEST(Flight, ConcurrentWritersGetDistinctRings) {
  HealthQuiesce q;
  health::enable_flight(true);
  health::flight_clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) FMMFFT_FLIGHT(Mark, i, 0, "mt");
    });
  // Concurrent snapshots while writers run must stay consistent.
  for (int s = 0; s < 20; ++s) (void)health::flight_snapshot();
  for (auto& t : threads) t.join();
  const auto events = health::flight_snapshot();
  std::size_t mine = 0;
  std::vector<int> rings;
  for (const auto& ev : events)
    if (std::string(ev.tag) == "mt") {
      ++mine;
      rings.push_back(ev.ring);
    }
  EXPECT_EQ(mine, 800u);
  std::sort(rings.begin(), rings.end());
  rings.erase(std::unique(rings.begin(), rings.end()), rings.end());
  EXPECT_EQ(rings.size(), 4u);  // one single-producer ring per thread
}

// ---------------------------------------------------------------------------
// Env registry

TEST(EnvRegistry, KnownKnobsResolve) {
  // Unset registered knobs return defaults without throwing.
  for (const auto& k : env::registry()) (void)env::get(k.name);
  ::setenv("FMMFFT_WATCHDOG_MS", "123", 1);
  EXPECT_EQ(env::get_int("FMMFFT_WATCHDOG_MS", 0), 123);
  ::setenv("FMMFFT_SAMPLE_HZ", "2.5", 1);
  EXPECT_DOUBLE_EQ(env::get_double("FMMFFT_SAMPLE_HZ", 0.0), 2.5);
  ::setenv("FMMFFT_WATCHDOG_MS", "notanumber", 1);
  EXPECT_EQ(env::get_int("FMMFFT_WATCHDOG_MS", 7), 7);
  ::unsetenv("FMMFFT_WATCHDOG_MS");
  ::unsetenv("FMMFFT_SAMPLE_HZ");
}

TEST(EnvRegistry, UnregisteredKnobIsHardError) {
  EXPECT_THROW((void)env::get("FMMFFT_NOT_A_KNOB"), fmmfft::Error);
  EXPECT_THROW((void)env::get_int("FMMFFT_NOT_A_KNOB", 0), fmmfft::Error);
}

TEST(EnvRegistry, DescribeListsEveryKnob) {
  const std::string table = env::describe();
  for (const auto& k : env::registry()) {
    EXPECT_NE(table.find(k.name), std::string::npos) << k.name;
    EXPECT_NE(table.find(k.desc), std::string::npos) << k.name;
  }
}

TEST(EnvRegistry, NoStrayGetenvInSources) {
  // Every FMMFFT_* environment read in the library must go through
  // obs::env; a stray std::getenv("FMMFFT_...") bypasses the registry.
  namespace fs = std::filesystem;
  const fs::path root = fs::path(FMMFFT_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::exists(root));
  std::vector<std::string> offenders;
  for (const auto& ent : fs::recursive_directory_iterator(root)) {
    if (!ent.is_regular_file()) continue;
    const auto ext = ent.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    const auto fname = ent.path().filename();
    if (fname == "env.cpp" || fname == "env.hpp") continue;  // the registry itself
    std::ifstream is(ent.path());
    std::string line;
    int ln = 0;
    while (std::getline(is, line)) {
      ++ln;
      if (line.find("getenv") != std::string::npos &&
          line.find("FMMFFT_") != std::string::npos)
        offenders.push_back(ent.path().string() + ":" + std::to_string(ln) + ": " + line);
    }
  }
  EXPECT_TRUE(offenders.empty()) << "FMMFFT_* knob read outside obs::env:\n"
                                 << [&] {
                                      std::string s;
                                      for (const auto& o : offenders) s += o + "\n";
                                      return s;
                                    }();
}

// ---------------------------------------------------------------------------
// Watchdog

namespace {

/// Source whose progress is driven by the test.
struct TickSource : health::Source {
  std::atomic<std::uint64_t> ticks{0};
  const char* source_name() const override { return "test.tick"; }
  std::uint64_t progress() const override { return ticks.load(); }
  std::string describe_stall() const override { return "  tick source stalled"; }
};

}  // namespace

TEST(Watchdog, NoFalsePositiveWhileProgressing) {
  HealthQuiesce q;
  health::enable_watchdog(80);
  const std::uint64_t fires_before = health::watchdog_fires();
  {
    TickSource src;
    health::register_source(&src);
    // Slow but steady: each beat lands well inside the deadline.
    for (int i = 0; i < 12; ++i) {
      sleep_ms(25);
      src.ticks.fetch_add(1);
    }
    health::unregister_source(&src);
  }
  EXPECT_EQ(health::watchdog_fires(), fires_before);
}

TEST(Watchdog, FiresOnSilentSource) {
  HealthQuiesce q;
  health::enable_watchdog(50);
  const std::uint64_t fires_before = health::watchdog_fires();
  {
    TickSource src;
    health::register_source(&src);
    for (int i = 0; i < 100 && health::watchdog_fires() == fires_before; ++i) sleep_ms(10);
    health::unregister_source(&src);
  }
  EXPECT_GT(health::watchdog_fires(), fires_before);
  EXPECT_NE(health::last_verdict().find("test.tick"), std::string::npos);
  EXPECT_NE(health::last_verdict().find("tick source stalled"), std::string::npos);
}

TEST(Watchdog, PhaseSourceAttributesStageAndDevice) {
  HealthQuiesce q;
  health::enable_watchdog(50);
  const std::uint64_t fires_before = health::watchdog_fires();
  {
    health::PhaseSource hb("test.phases");
    hb.phase("m2l", 2);
    for (int i = 0; i < 100 && health::watchdog_fires() == fires_before; ++i) sleep_ms(10);
  }
  EXPECT_GT(health::watchdog_fires(), fires_before);
  const std::string v = health::last_verdict();
  EXPECT_NE(v.find("test.phases"), std::string::npos) << v;
  EXPECT_NE(v.find("'m2l'"), std::string::npos) << v;
  EXPECT_NE(v.find("device 2"), std::string::npos) << v;
}

TEST(Watchdog, InjectedGraphStallIsAttributedWithChain) {
  HealthQuiesce q;
  const std::string pm = "test_health.watchdog.postmortem.json";
  std::remove(pm.c_str());
  health::set_postmortem_path(pm);
  health::enable_watchdog(60);
  const std::uint64_t fires_before = health::watchdog_fires();

  DeviceLanes lanes(2);
  TaskGraph g(lanes.count());
  g.name_lanes(lanes);
  // stall -> chain of dependents across lanes; the stalled task blocks all.
  const TaskId stall =
      g.submit("stall d0", {lanes.compute(0), true, "fmm"}, [] {});
  const TaskId copy = g.submit("halo 0->1", {lanes.copy(0, 1), true, "sync"},
                               [] {}, {stall});
  g.submit("m2l d1", {lanes.compute(1), true, "fmm"}, [] {}, {copy});
  fmmfft::exec::inject_stall(stall, 900);

  ThreadPool pool(2);
  g.run(pool);  // completes after the injected stall elapses

  EXPECT_GT(health::watchdog_fires(), fires_before);
  const std::string v = health::last_verdict();
  EXPECT_NE(v.find("exec.TaskGraph"), std::string::npos) << v;
  EXPECT_NE(v.find("'fmm:stall d0'"), std::string::npos) << v;
  EXPECT_NE(v.find("stage 'fmm'"), std::string::npos) << v;
  EXPECT_NE(v.find("compute d0"), std::string::npos) << v;
  // The unfinished dependency chain behind the stuck task, lane-attributed.
  EXPECT_NE(v.find("blocked chain"), std::string::npos) << v;
  EXPECT_NE(v.find("'sync:halo 0->1'"), std::string::npos) << v;
  EXPECT_NE(v.find("copy 0->1"), std::string::npos) << v;

  // The watchdog emitted a postmortem naming the same stall.
  const std::string dump = read_file(pm);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(fmmfft::testing::JsonValidator(dump).valid());
  EXPECT_NE(dump.find("fmmfft.postmortem.v1"), std::string::npos);
  EXPECT_NE(dump.find("watchdog"), std::string::npos);
  EXPECT_NE(dump.find("stall d0"), std::string::npos);
  EXPECT_NE(dump.find("compute d0"), std::string::npos);
  std::remove(pm.c_str());
}

TEST(Watchdog, SlowButProgressingGraphDoesNotFire) {
  HealthQuiesce q;
  health::enable_watchdog(150);
  const std::uint64_t fires_before = health::watchdog_fires();
  TaskGraph g(1);
  // Each task is far slower than a poll interval, but every completion
  // advances the progress counter inside the deadline.
  for (int i = 0; i < 10; ++i)
    g.submit("slow " + std::to_string(i), {0, true, "t"}, [] { sleep_ms(50); });
  ThreadPool pool(2);
  g.run(pool);
  EXPECT_EQ(health::watchdog_fires(), fires_before);
}

// ---------------------------------------------------------------------------
// Span sampler

TEST(Sampler, CountsSpansWithoutTracing) {
  HealthQuiesce q;
  ASSERT_FALSE(fmmfft::obs::tracing_enabled());
  health::sampler_clear();
  health::enable_sampler(500);
  {
    FMMFFT_SPAN("health-sample-span");
    sleep_ms(120);
  }
  health::enable_sampler(0);
  const auto counts = health::sampler_snapshot();
  ASSERT_NE(counts.find("health-sample-span"), counts.end());
  EXPECT_GT(counts.at("health-sample-span"), 0u);
  EXPECT_GT(health::sampler_samples(), 0u);
  // Sampling alone must not have recorded any trace spans.
  EXPECT_FALSE(fmmfft::obs::tracing_enabled());
}

TEST(Sampler, InnermostSpanWins) {
  HealthQuiesce q;
  health::sampler_clear();
  health::enable_sampler(500);
  {
    FMMFFT_SPAN("outer-span");
    {
      FMMFFT_SPAN("inner-span");
      sleep_ms(120);
    }
  }
  health::enable_sampler(0);
  const auto counts = health::sampler_snapshot();
  ASSERT_NE(counts.find("inner-span"), counts.end());
  EXPECT_GT(counts.at("inner-span"), 0u);
}

// ---------------------------------------------------------------------------
// Postmortem

TEST(Postmortem, WriterEmitsValidSchema) {
  HealthQuiesce q;
  health::enable_flight(true);
  health::flight_clear();
  FMMFFT_FLIGHT(Mark, 1, 0, "pm-test");
  const std::string path = "test_health.postmortem.json";
  ASSERT_TRUE(health::write_postmortem(path, "unit_test", "synthetic verdict"));
  const std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(fmmfft::testing::JsonValidator(dump).valid()) << dump.substr(0, 400);
  EXPECT_NE(dump.find("fmmfft.postmortem.v1"), std::string::npos);
  EXPECT_NE(dump.find("unit_test"), std::string::npos);
  EXPECT_NE(dump.find("synthetic verdict"), std::string::npos);
  EXPECT_NE(dump.find("pm-test"), std::string::npos);  // flight ring event
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  EXPECT_NE(dump.find("fmmfft.traffic.v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Postmortem, DisarmedEmitsNothing) {
  HealthQuiesce q;
  health::arm_postmortem(false);
  EXPECT_EQ(health::emit_postmortem("unit_test", "nope"), "");
}

TEST(Postmortem, TaskExceptionEmitsLabeledDump) {
  HealthQuiesce q;
  const std::string pm = "test_health.exception.postmortem.json";
  std::remove(pm.c_str());
  health::set_postmortem_path(pm);
  health::arm_postmortem(true);

  DeviceLanes lanes(1);
  TaskGraph g(lanes.count());
  g.name_lanes(lanes);
  g.submit("boom", {lanes.compute(0), true, "fft"},
           [] { throw std::runtime_error("kaput"); });
  ThreadPool pool(1);
  std::string what;
  try {
    g.run(pool);
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  // Satellite: the rethrown error names the failing task's labels.
  EXPECT_NE(what.find("'fft:boom'"), std::string::npos) << what;
  EXPECT_NE(what.find("stage 'fft'"), std::string::npos) << what;
  EXPECT_NE(what.find("compute d0"), std::string::npos) << what;
  EXPECT_NE(what.find("kaput"), std::string::npos) << what;

  const std::string dump = read_file(pm);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(fmmfft::testing::JsonValidator(dump).valid());
  EXPECT_NE(dump.find("task_exception"), std::string::npos);
  EXPECT_NE(dump.find("kaput"), std::string::npos);
  std::remove(pm.c_str());
}

TEST(Postmortem, SignalDumpPathIsValidJson) {
  HealthQuiesce q;
  health::enable_flight(true);
  health::flight_clear();
  FMMFFT_FLIGHT(TaskStart, 9, 1, "sig\"quote");  // exercises tag sanitizing
  const std::string pm = "test_health.sigdump.json";
  std::remove(pm.c_str());
  health::set_postmortem_path(pm);
  health::detail::write_signal_dump(SIGABRT);
  const std::string dump = read_file(pm);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(fmmfft::testing::JsonValidator(dump).valid()) << dump.substr(0, 400);
  EXPECT_NE(dump.find("\"cause\":\"signal\""), std::string::npos);
  EXPECT_NE(dump.find("SIGABRT"), std::string::npos);
  EXPECT_NE(dump.find("task_start"), std::string::npos);
  std::remove(pm.c_str());
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(FMMFFT_TSAN_BUILD)
TEST(PostmortemDeathTest, FatalSignalWritesDump) {
  HealthQuiesce q;
  health::enable_flight(true);
  const std::string pm = "test_health.death.postmortem.json";
  std::remove(pm.c_str());
  health::set_postmortem_path(pm);
  health::install_crash_handlers();
  EXPECT_DEATH(std::abort(), "");
  // The death-test child inherited the handlers and wrote the dump into our
  // working directory before terminating.
  const std::string dump = read_file(pm);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(fmmfft::testing::JsonValidator(dump).valid());
  EXPECT_NE(dump.find("\"cause\":\"signal\""), std::string::npos);
  std::remove(pm.c_str());
}
#endif
