// Tests for the schedule builders: launch census vs the paper's Fig. 2
// accounting, comm-byte agreement between the schedule and the executed
// fabric ledger, overlap behaviour under simulation, and the regimes the
// paper reports (baseline comm-bound, FMM-FFT winning at large N).
#include <gtest/gtest.h>

#include <complex>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "dist/dfft3d.hpp"
#include "dist/dfmmfft.hpp"
#include "dist/schedules.hpp"
#include "model/counts.hpp"

namespace fmmfft::dist {
namespace {

using Cd = std::complex<double>;

model::Workload wl(index_t n, bool cplx = true, bool dbl = true) { return {n, cplx, dbl}; }

TEST(FmmFftSchedule, Fig2LaunchCensus) {
  // Paper Fig. 2: N=2^27, P=256, ML=64, B=3 -> 255 FMMs of 524k in 35
  // launches per device: S2M 1, M2M 10, S2T 1, M2L 11, Reduce 1, L2L 10,
  // L2T 1.
  fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};
  EXPECT_EQ(prm.m(), index_t(524288));
  EXPECT_EQ(prm.l(), 13);
  const int g = 2;
  auto sched = fmmfft_schedule(prm, wl(prm.n), g);
  index_t fmm_kernels = 0;
  for (const auto& op : sched.ops()) {
    if (op.kind != sim::Op::Kind::Kernel || op.device != 0) continue;
    if (op.label == "POST" || op.label == "SYNC" || op.label.rfind("FFT-", 0) == 0 ||
        op.label.rfind("A2A", 0) == 0)
      continue;  // the 2D-FFT stage and its transpose machinery
    ++fmm_kernels;
  }
  EXPECT_EQ(fmm_kernels, 35);
}

TEST(FmmFftSchedule, CommBytesMatchExecutedFabric) {
  // The schedule is the timing twin of the execution: its total comm bytes
  // must equal the fabric ledger of a real run.
  fmm::Params prm{1 << 14, 64, 4, 3, 12};
  const int g = 4;
  auto sched = fmmfft_schedule(prm, wl(prm.n), g);

  std::vector<Cd> x(static_cast<std::size_t>(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 1);
  // The schedule models fp64-shell comm widths, so pin the plan to Fp64
  // (the ambient FMMFFT_PRECISION would otherwise halve the halo bytes).
  DistFmmFft<Cd> plan(prm, g, fmm::Precision::Fp64);
  plan.execute(x.data(), y.data());

  EXPECT_NEAR(sched.total_comm_bytes() / plan.fabric().total_bytes(), 1.0, 1e-12);
}

TEST(Baseline1dSchedule, CommBytesMatchExecutedFabric) {
  const index_t n = 1 << 14;
  const int g = 4;
  auto sched = baseline1d_schedule(n, wl(n), g);
  std::vector<Cd> x(static_cast<std::size_t>(n)), y(x.size());
  fill_uniform(x.data(), n, 2);
  DistFft1d<double> fftd(n, g);
  fftd.execute(x.data(), y.data());
  EXPECT_NEAR(sched.total_comm_bytes() / fftd.fabric().total_bytes(), 1.0, 1e-12);
}

TEST(Baseline1dSchedule, CommBoundAtLargeN) {
  // Fig. 2 top: the baseline's timeline is dominated by the transposes.
  const index_t n = index_t(1) << 27;
  auto arch = model::p100_nvlink(2);
  auto sched = baseline1d_schedule(n, wl(n), 2);
  auto res = sched.simulate(arch);
  double comm = 0;
  for (const auto& [label, sec] : res.label_seconds)
    if (label.rfind("A2A", 0) == 0) comm += sec;
  // Per-device comm busy-time exceeds half the makespan: comm bound.
  EXPECT_GT(comm / 2 / res.total_seconds, 0.5);
}

TEST(FmmFftSchedule, ComputeBoundAtLargeN) {
  // Fig. 2 bottom: the FMM portion is a wall of compute; its own halo and
  // gather traffic is negligible (the one remaining transpose lives in the
  // 2D-FFT stage).
  fmm::Params prm{index_t(1) << 27, 256, 64, 3, 16};
  auto arch = model::p100_nvlink(2);
  auto sched = fmmfft_schedule(prm, wl(prm.n), 2);
  auto res = sched.simulate(arch);
  double fmm_comm = 0;
  for (const auto& [label, sec] : res.label_seconds)
    if (label.rfind("COMM-", 0) == 0) fmm_comm += sec;
  EXPECT_GT(res.kernel_busy, 50.0 * fmm_comm);
  // And the total comm (incl. the single transpose) stays well under the
  // compute wall, unlike the baseline profile.
  EXPECT_GT(res.kernel_busy, 2.0 * res.comm_busy);
}

TEST(Simulated, FmmFftBeatsBaselineAtLargeN8xP100) {
  const index_t n = index_t(1) << 27;
  auto arch = model::p100_nvlink(8);
  auto w = wl(n);
  auto prm = model::search_best_params(n, 8, w, arch, 16);
  double t_fmm = fmmfft_schedule(prm, w, 8).simulate(arch).total_seconds;
  double t_base = baseline1d_schedule(n, w, 8).simulate(arch).total_seconds;
  const double speedup = t_base / t_fmm;
  EXPECT_GT(speedup, 1.4) << "expected ~2x on 8xP100 (paper: 2.04-2.14)";
  EXPECT_LT(speedup, 3.0);
}

TEST(Simulated, SpeedupGrowsWithDeviceCount) {
  const index_t n = index_t(1) << 26;
  auto w = wl(n);
  double s2, s8;
  {
    auto arch = model::p100_nvlink(2);
    auto prm = model::search_best_params(n, 2, w, arch, 16);
    s2 = baseline1d_schedule(n, w, 2).simulate(arch).total_seconds /
         fmmfft_schedule(prm, w, 2).simulate(arch).total_seconds;
  }
  {
    auto arch = model::p100_nvlink(8);
    auto prm = model::search_best_params(n, 8, w, arch, 16);
    s8 = baseline1d_schedule(n, w, 8).simulate(arch).total_seconds /
         fmmfft_schedule(prm, w, 8).simulate(arch).total_seconds;
  }
  EXPECT_GT(s8, s2);
}

TEST(Simulated, K40GainsAreMarginal) {
  // §6.1: "On 2xK40c, the FMM-FFT is only marginally faster" at large N.
  const index_t n = index_t(1) << 26;
  auto arch = model::k40c_pcie(2);
  auto w = wl(n);
  auto prm = model::search_best_params(n, 2, w, arch, 16);
  const double speedup = baseline1d_schedule(n, w, 2).simulate(arch).total_seconds /
                         fmmfft_schedule(prm, w, 2).simulate(arch).total_seconds;
  EXPECT_GT(speedup, 0.8);
  EXPECT_LT(speedup, 1.6);
}

TEST(Simulated, Dist2dFasterThan1dBaseline) {
  // §6.1: distributed 2D FFTs approach 3x the 1D FFT by avoiding two of
  // the three transposes.
  const index_t n = index_t(1) << 26;
  auto arch = model::p100_nvlink(8);
  auto w = wl(n);
  const index_t m = index_t(1) << 13;
  double t2d = dist2dfft_schedule(m, n / m, w, 8).simulate(arch).total_seconds;
  double t1d = baseline1d_schedule(n, w, 8).simulate(arch).total_seconds;
  EXPECT_GT(t1d / t2d, 2.0);
  EXPECT_LT(t1d / t2d, 3.5);
}

TEST(FmmFftSchedule, UnfusedPostCostsMore) {
  fmm::Params prm{1 << 20, 256, 16, 3, 16};
  auto arch = model::p100_nvlink(2);
  auto w = wl(prm.n);
  double fused = fmmfft_schedule(prm, w, 2, true).simulate(arch).total_seconds;
  double unfused = fmmfft_schedule(prm, w, 2, false).simulate(arch).total_seconds;
  EXPECT_GT(unfused, fused);
}

TEST(FmmFftSchedule, CausalityAndCoverage) {
  fmm::Params prm{1 << 16, 64, 8, 3, 12};
  auto sched = fmmfft_schedule(prm, wl(prm.n), 4);
  auto res = sched.simulate(model::p100_nvlink(4));
  for (const auto& op : sched.ops())
    for (int d : op.deps)
      EXPECT_GE(res.timings[(std::size_t)op.id].start, res.timings[(std::size_t)d].end);
  // All four devices appear.
  bool dev[4] = {};
  for (const auto& op : sched.ops())
    if (op.kind == sim::Op::Kind::Kernel) dev[op.device] = true;
  EXPECT_TRUE(dev[0] && dev[1] && dev[2] && dev[3]);
}

TEST(Fft3dSchedule, CommBytesMatchExecutedFabricBothDecomps) {
  // The 3D builder is the timing twin of Dist3dFft: total comm bytes AND the
  // per-tag split must equal the fabric ledger of a real run, in both
  // decompositions.
  const index_t n0 = 16, n1 = 16, n2 = 8;
  const int g = 4;
  auto per_tag = [](const sim::Schedule& s, const std::string& tag) {
    double b = 0;
    for (const auto& op : s.ops())
      if (op.kind == sim::Op::Kind::Comm && op.label == tag) b += op.bytes;
    return b;
  };
  std::vector<Cd> x(std::size_t(n0 * n1 * n2)), y(x.size());
  fill_uniform(x.data(), index_t(x.size()), 3);
  {
    auto sched = fft3d_schedule(n0, n1, n2, wl(n0 * n1 * n2), g, model::Decomp::Slab);
    Dist3dFft<double> plan(n0, n1, n2, g, model::Decomp::Slab);
    plan.execute(x.data(), y.data());
    EXPECT_NEAR(sched.total_comm_bytes() / plan.fabric().total_bytes(), 1.0, 1e-12);
    EXPECT_NEAR(per_tag(sched, "A2A-3D") / plan.fabric().bytes_with_tag("A2A-3D"), 1.0, 1e-12);
  }
  {
    const model::GridShape grid{2, 2};
    auto sched = fft3d_schedule(n0, n1, n2, wl(n0 * n1 * n2), g, model::Decomp::Pencil, grid);
    Dist3dFft<double> plan(n0, n1, n2, g, model::Decomp::Pencil, grid);
    plan.execute(x.data(), y.data());
    EXPECT_NEAR(sched.total_comm_bytes() / plan.fabric().total_bytes(), 1.0, 1e-12);
    EXPECT_NEAR(per_tag(sched, "A2A-ROW") / plan.fabric().bytes_with_tag("A2A-ROW"), 1.0,
                1e-12);
    EXPECT_NEAR(per_tag(sched, "A2A-COL") / plan.fabric().bytes_with_tag("A2A-COL"), 1.0,
                1e-12);
  }
}

TEST(Fft3dSchedule, CausalityAndSubCommunicatorFanout) {
  const index_t n = 64;
  auto sched = fft3d_schedule(n, n, n, wl(n * n * n), 16, model::Decomp::Pencil, {4, 4});
  auto res = sched.simulate(model::p100_nvlink(16));
  for (const auto& op : sched.ops())
    for (int d : op.deps)
      EXPECT_GE(res.timings[(std::size_t)op.id].start, res.timings[(std::size_t)d].end);
  // Each device talks to exactly pc-1 = 3 row peers and pr-1 = 3 column
  // peers (per chunk) — never to the other 12 devices, that's the point.
  std::map<int, std::set<int>> partners;
  for (const auto& op : sched.ops())
    if (op.kind == sim::Op::Kind::Comm) partners[op.device].insert(op.peer);
  for (const auto& [dev, peers] : partners) {
    (void)dev;
    EXPECT_EQ(peers.size(), 6u);
  }
}

TEST(Fft3dSchedule, PencilBeatsSlabAtSixteenDevicesInSimulation) {
  // The bench rows' story: at G = 16 the 4x4 pencil's 2(√G-1) sub-exchange
  // beats the slab's G-wide all-to-all + local reorientation.
  const index_t n = 256;
  auto w = wl(n * n * n);
  auto arch = model::p100_nvlink(16);
  double slab =
      fft3d_schedule(n, n, n, w, 16, model::Decomp::Slab).simulate(arch).total_seconds;
  double pencil = fft3d_schedule(n, n, n, w, 16, model::Decomp::Pencil, {4, 4})
                      .simulate(arch)
                      .total_seconds;
  EXPECT_LT(pencil, slab);
}

TEST(FmmFftSchedule, SmallNFewerLaunchesWithLEqualsB) {
  // §6.2: at small N the fastest config keeps L == B, minimizing launches.
  fmm::Params deep{1 << 14, 64, 4, 2, 16};   // L=6, B=2
  fmm::Params shallow{1 << 14, 64, 4, 6, 16};  // L=6=B
  auto s_deep = fmmfft_schedule(deep, wl(1 << 14), 2);
  auto s_shallow = fmmfft_schedule(shallow, wl(1 << 14), 2);
  EXPECT_LT(s_shallow.kernel_launches(), s_deep.kernel_launches());
}

}  // namespace
}  // namespace fmmfft::dist
