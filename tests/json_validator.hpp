// Minimal recursive-descent JSON validator shared by the observability
// tests — enough to prove the exporters emit syntactically valid JSON
// without a parsing dependency.
#pragma once

#include <cctype>
#include <string>

namespace fmmfft::testing {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}
  bool valid() {
    i_ = 0;
    return value() && (skip_ws(), i_ == s_.size());
  }

 private:
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') return ++i_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') return ++i_, true;
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') return ++i_, true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') return ++i_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++i_; i_ < s_.size(); ++i_) {
      if (s_[i_] == '\\') ++i_;
      else if (s_[i_] == '"') return ++i_, true;
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    while (i_ < s_.size() && (std::isdigit((unsigned char)s_[i_]) || s_[i_] == '-' ||
                              s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E'))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    for (; *lit; ++lit, ++i_)
      if (i_ >= s_.size() || s_[i_] != *lit) return false;
    return true;
  }
  void skip_ws() {
    while (i_ < s_.size() && std::isspace((unsigned char)s_[i_])) ++i_;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace fmmfft::testing
