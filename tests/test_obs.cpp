// Tests for the observability subsystem: span recording and nesting across
// threads, striped-counter arithmetic under parallel_for, JSON validity of
// both exporters, the zero-allocation disabled path, and the
// model-vs-measured cross-check on a real distributed run.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "dist/dfmmfft.hpp"
#include "json_validator.hpp"
#include "obs/compare.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "obs/trace_writer.hpp"

// Global allocation counter for the disabled-path test. Counting every
// operator new in the binary is fine; the test only compares deltas.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

// GCC pairs new/delete at call sites and flags free() here even though the
// replaced operator new above allocates with malloc; the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace fmmfft::obs {
namespace {

using fmmfft::testing::JsonValidator;

/// RAII: enable the requested facilities on a clean slate, disable + wipe on
/// exit so tests don't leak state into each other.
struct ObsSession {
  explicit ObsSession(bool trace, bool metrics) {
    disable();
    reset();
    if (trace) enable_tracing(true);
    if (metrics) enable_metrics(true);
  }
  ~ObsSession() {
    disable();
    reset();
  }
};

TEST(Span, NestingDepthAndContainment) {
  ObsSession s(true, false);
  {
    FMMFFT_SPAN("outer");
    { FMMFFT_SPAN("inner"); }
    { FMMFFT_SPAN("prefix:", std::string("tag")); }
  }
  auto evs = Recorder::global().snapshot();
  ASSERT_EQ(evs.size(), 3u);
  // snapshot sorts by (lane, start): outer first.
  EXPECT_STREQ(evs[0].name, "outer");
  EXPECT_EQ(evs[0].depth, 0);
  EXPECT_STREQ(evs[1].name, "inner");
  EXPECT_EQ(evs[1].depth, 1);
  EXPECT_STREQ(evs[2].name, "prefix:tag");
  EXPECT_EQ(evs[2].depth, 1);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_GE(evs[i].start_ns, evs[0].start_ns);
    EXPECT_LE(evs[i].end_ns, evs[0].end_ns);
  }
  EXPECT_EQ(Recorder::global().dropped(), 0u);
}

TEST(Span, ThreadsGetDistinctLanesAndStaySorted) {
  ObsSession s(true, false);
  constexpr int kThreads = 4, kSpans = 100;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) { FMMFFT_SPAN("w"); }
    });
  for (auto& t : ts) t.join();
  auto evs = Recorder::global().snapshot();
  EXPECT_EQ(evs.size(), std::size_t(kThreads * kSpans));
  // Per lane: exactly kSpans events, starts non-decreasing, no overlap of
  // same-depth spans (they are sequential on one thread).
  std::map<int, std::vector<SpanEvent>> by_lane;
  for (const auto& e : evs) by_lane[e.lane].push_back(e);
  for (const auto& [lane, l] : by_lane) {
    EXPECT_EQ(l.size(), std::size_t(kSpans)) << "lane " << lane;
    for (std::size_t i = 1; i < l.size(); ++i) {
      EXPECT_GE(l[i].start_ns, l[i - 1].start_ns);
      EXPECT_GE(l[i].start_ns, l[i - 1].end_ns);  // sequential, depth 0
    }
  }
}

TEST(Span, LongNamesAreTruncatedNotOverflowed) {
  ObsSession s(true, false);
  const std::string big(100, 'x');
  { FMMFFT_SPAN("p:", big); }
  auto evs = Recorder::global().snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(std::string(evs[0].name).size(), std::size_t(SpanEvent::kNameCap - 1));
}

TEST(Counter, ParallelForArithmetic) {
  ObsSession s(false, true);
  const index_t n = 200000;
  parallel_for(
      n,
      [](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) FMMFFT_COUNT("test.iters", 1);
      },
      /*grain=*/64);
  EXPECT_DOUBLE_EQ(Metrics::global().counter("test.iters").value(), double(n));

  // Direct striped-counter hammering from raw threads.
  Counter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1.0);
    });
  for (auto& t : ts) t.join();
  EXPECT_DOUBLE_EQ(c.value(), 80000.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Metrics, PrefixSumAndReset) {
  ObsSession s(false, true);
  Metrics::global().counter("a.x").add(1);
  Metrics::global().counter("a.y").add(2);
  Metrics::global().counter("b.z").add(4);
  EXPECT_DOUBLE_EQ(Metrics::global().counters_with_prefix("a."), 3.0);
  EXPECT_DOUBLE_EQ(Metrics::global().counters_with_prefix(""), 7.0);
  Metrics::global().reset();
  EXPECT_DOUBLE_EQ(Metrics::global().counters_with_prefix(""), 0.0);
  // Instruments survive a reset; references stay valid.
  EXPECT_DOUBLE_EQ(Metrics::global().counter("a.x").value(), 0.0);
}

TEST(Metrics, HistogramBuckets) {
  Histogram h;
  h.observe(0.5);   // bucket 0: [0, 1)
  h.observe(1.0);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1028.5);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
}

TEST(Metrics, HistogramPercentiles) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  // 100 identical samples land in bucket 1 = [1, 2): percentiles interpolate
  // linearly across that bucket.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(95), 1.95);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1.99);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 2.0);

  // Two buckets, 50/50 split: the median sits exactly at the boundary and
  // the tail percentiles walk into the upper bucket [4, 8).
  Histogram h2;
  for (int i = 0; i < 50; ++i) h2.observe(1.0);  // bucket 1: [1, 2)
  for (int i = 0; i < 50; ++i) h2.observe(4.0);  // bucket 3: [4, 8)
  EXPECT_DOUBLE_EQ(h2.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(h2.percentile(75), 6.0);
  EXPECT_DOUBLE_EQ(h2.percentile(99), 4.0 + 0.98 * 4.0);

  // The JSON export carries the percentile summary.
  ObsSession s(false, true);
  for (int i = 0; i < 4; ++i) Metrics::global().histogram("pct.h").observe(1.0);
  std::ostringstream os;
  Metrics::global().write_json(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(os.str().find("\"p95\""), std::string::npos);
  EXPECT_NE(os.str().find("\"p99\""), std::string::npos);
}

TEST(Metrics, HistogramDegenerateInputsStayFinite) {
  // Empty histogram: every percentile is 0, never NaN.
  Histogram empty;
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_TRUE(std::isfinite(empty.percentile(p))) << p;
    EXPECT_DOUBLE_EQ(empty.percentile(p), 0.0);
  }

  // Single sample: percentiles interpolate within one bucket, all finite.
  Histogram one;
  one.observe(3.0);
  EXPECT_EQ(one.count(), 1u);
  for (double p : {0.0, 50.0, 99.0, 100.0}) EXPECT_TRUE(std::isfinite(one.percentile(p))) << p;
  EXPECT_GE(one.percentile(50), 2.0);
  EXPECT_LE(one.percentile(50), 4.0);

  // NaN observations are dropped; infinities clamp to the top bucket
  // instead of overflowing ilogb into UB, and the sum stays finite.
  Histogram weird;
  weird.observe(std::nan(""));
  EXPECT_EQ(weird.count(), 0u);
  weird.observe(std::numeric_limits<double>::infinity());
  weird.observe(-1.0);  // negative: below-one bucket
  EXPECT_EQ(weird.count(), 2u);
  EXPECT_TRUE(std::isfinite(weird.sum()));
  EXPECT_TRUE(std::isfinite(weird.percentile(99)));
  EXPECT_TRUE(std::isfinite(weird.percentile(std::nan(""))));

  // The JSON emitter stays loadable with a registered-but-empty histogram.
  ObsSession s(false, true);
  Metrics::global().histogram("empty.h");
  Metrics::global().histogram("single.h").observe(1.0);
  std::ostringstream os;
  Metrics::global().write_json(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(Json, ExportersEmitValidJson) {
  ObsSession s(true, true);
  {
    FMMFFT_SPAN("needs \"escaping\"\n");
    FMMFFT_COUNT("json.count", 3.5);
  }
  Metrics::global().gauge("json.gauge").set(-2.25);
  Metrics::global().histogram("json.hist").observe(7);

  std::ostringstream trace;
  Recorder::global().write_chrome_trace(trace);
  EXPECT_TRUE(JsonValidator(trace.str()).valid()) << trace.str();
  EXPECT_NE(trace.str().find("\"ph\": \"X\""), std::string::npos);

  std::ostringstream metrics;
  Metrics::global().write_json(metrics);
  EXPECT_TRUE(JsonValidator(metrics.str()).valid()) << metrics.str();
  EXPECT_NE(metrics.str().find("json.count"), std::string::npos);
  EXPECT_NE(metrics.str().find("json.gauge"), std::string::npos);
  EXPECT_NE(metrics.str().find("json.hist"), std::string::npos);
}

TEST(Json, ControlCharsAndNonAsciiBytesInLabels) {
  ObsSession s(true, false);
  {
    // Control characters must come out as \u00XX escapes; bytes >= 0x80
    // (e.g. UTF-8 multibyte sequences) must pass through untouched.
    FMMFFT_SPAN("ctl:", std::string("\x01\x02\x1f bell\x07"));
    FMMFFT_SPAN("utf8:", std::string("\xc3\xa9\xe2\x86\x92"));  // é→
  }
  std::ostringstream os;
  Recorder::global().write_chrome_trace(os);
  const std::string t = os.str();
  EXPECT_TRUE(JsonValidator(t).valid()) << t;
  EXPECT_NE(t.find("\\u0001"), std::string::npos);
  EXPECT_NE(t.find("\\u0002"), std::string::npos);
  EXPECT_NE(t.find("\\u001f"), std::string::npos);
  EXPECT_NE(t.find("\\u0007"), std::string::npos);
  EXPECT_NE(t.find("\xc3\xa9"), std::string::npos);
  // No raw control byte may survive into the output.
  for (const char c : t) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Json, EmptyTraceDumpIsAnEmptyArray) {
  ObsSession s(true, false);
  std::ostringstream os;
  Recorder::global().write_chrome_trace(os);
  EXPECT_EQ(os.str(), "[]");
  EXPECT_TRUE(JsonValidator(os.str()).valid());
}

TEST(Json, ConcurrentRecordWhileDumpStaysValid) {
  ObsSession s(true, false);
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t)
    ts.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        FMMFFT_SPAN("churn");
      }
    });
  // Dump repeatedly while the writers churn: every snapshot must be
  // self-consistent (only completed spans appear) and valid JSON.
  std::size_t prev = 0;
  for (int i = 0; i < 20; ++i) {
    std::ostringstream os;
    Recorder::global().write_chrome_trace(os);
    EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
    const auto evs = Recorder::global().snapshot();
    EXPECT_GE(evs.size(), prev);  // events only accumulate
    prev = evs.size();
    for (const auto& e : evs) EXPECT_GE(e.end_ns, e.start_ns);
  }
  stop.store(true);
  for (auto& t : ts) t.join();
}

TEST(Disabled, HooksDoNotAllocate) {
  disable();
  health::enable_flight(false);
  reset();
  // Warm up: make sure any lazy TLS setup behind the hooks has happened.
  { FMMFFT_SPAN("warm"); }
  FMMFFT_COUNT("warm", 1);
  FMMFFT_FLIGHT(Mark, 0, 0, "warm");
  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    FMMFFT_SPAN("disabled");
    FMMFFT_SPAN("disabled:", std::string());  // suffix form short-circuits too
    FMMFFT_COUNT("disabled.count", i);
    FMMFFT_FLIGHT(Mark, i, 0, "disabled");
  }
  EXPECT_EQ(g_allocs.load(), before);
}

TEST(Compare, ModelMatchesMeasuredOnDistributedRun) {
  ObsSession s(false, true);
  const fmm::Params prm{1 << 14, 64, 8, 2, 18};
  const int g = 2;
  using In = std::complex<double>;
  std::vector<In> x(std::size_t(prm.n)), y(x.size());
  fill_uniform(x.data(), prm.n, 7);
  dist::DistFmmFft<In> plan(prm, g);
  plan.execute(x.data(), y.data());

  // The plan honors the ambient FMMFFT_PRECISION (CI runs a mixed leg),
  // so hand the model the matching translation width.
  const double tb = fmm::translation_real_bytes(fmm::default_precision(), sizeof(double));
  const auto report = compare_with_model(prm, /*components=*/2, g, sizeof(double), 1, tb);
  EXPECT_TRUE(report.all_ok()) << report.to_string();
  ASSERT_GE(report.checks.size(), 8u);

  std::ostringstream os;
  report.write_json(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();

  // A second run doubles every counter; runs=2 must still agree.
  plan.fabric().reset();
  plan.execute(x.data(), y.data());
  EXPECT_TRUE(compare_with_model(prm, 2, g, sizeof(double), /*runs=*/2, tb).all_ok());
}

}  // namespace
}  // namespace fmmfft::obs
