// Tests for a-priori error control (fmm/accuracy.hpp): the predicted
// envelope must bound the measured FMM-FFT error across Q — the paper's
// "specify the error a priori" property — and suggest_params must deliver
// plans meeting requested accuracies.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "fmm/accuracy.hpp"

namespace fmmfft::fmm {
namespace {

using Cd = std::complex<double>;

TEST(ErrorModel, PredictionsDecreaseGeometrically) {
  for (int q = 2; q < 24; ++q)
    EXPECT_GT(predict_rel_error(q), predict_rel_error(q + 1));
  EXPECT_NEAR(predict_rel_error(8) / predict_rel_error(9), convergence_ratio(), 1e-9);
}

TEST(ErrorModel, MinQForTargets) {
  EXPECT_LE(predict_rel_error(min_q_for(1e-6)), 1e-6);
  EXPECT_LE(predict_rel_error(min_q_for(1e-12)), 1e-12);
  EXPECT_GE(min_q_for(1e-12), min_q_for(1e-6));
  EXPECT_EQ(min_q_for(1e-30), 24);  // clamped
}

TEST(ErrorModel, FloorByPrecision) {
  EXPECT_LT(error_floor(true), error_floor(false));
  EXPECT_EQ(predict_rel_error(24, true), std::max(predict_rel_error(24), 2e-14));
}

TEST(ErrorModel, EnvelopeBoundsMeasuredError) {
  // Measured FMM-FFT error must sit below the predicted envelope for all Q.
  const index_t n = 1 << 14;
  std::vector<Cd> x(static_cast<std::size_t>(n)), ref(x.size());
  fill_uniform(x.data(), n, 99);
  core::exact_fft(n, x.data(), ref.data());
  for (int qq = 3; qq <= 20; ++qq) {
    Params prm{n, 64, 8, 3, qq};
    core::FmmFft<Cd> plan(prm);
    std::vector<Cd> got(x.size());
    plan.execute(x.data(), got.data());
    const double err = rel_l2_error(got.data(), ref.data(), n);
    EXPECT_LT(err, predict_rel_error(qq, true)) << "Q=" << qq;
  }
}

TEST(ErrorModel, SuggestParamsMeetsTarget) {
  for (double eps : {1e-4, 1e-8, 1e-13}) {
    const index_t n = 1 << 14;
    Params prm = suggest_params(n, eps);
    EXPECT_TRUE(prm.is_admissible(1));
    std::vector<Cd> x(static_cast<std::size_t>(n)), got(x.size()), ref(x.size());
    fill_uniform(x.data(), n, 7);
    core::exact_fft(n, x.data(), ref.data());
    core::FmmFft<Cd> plan(prm);
    plan.execute(x.data(), got.data());
    EXPECT_LT(rel_l2_error(got.data(), ref.data(), n), eps) << "eps=" << eps;
  }
}

TEST(ErrorModel, SuggestParamsRespectsDeviceCount) {
  Params prm = suggest_params(1 << 16, 1e-10, 8);
  EXPECT_TRUE(prm.is_admissible(8));
  EXPECT_THROW(suggest_params(64, 1e-10, 8), Error);  // too small to split
}

}  // namespace
}  // namespace fmmfft::fmm
